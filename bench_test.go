// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the evaluation (delegating to internal/experiments),
// plus kernel-level micro-benchmarks that compare the real CPU cost of the
// dense, CSR, factorized and IPE executors on identical weights.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Individual experiments: go test -bench=BenchmarkFig4 (etc.). The
// experiment benchmarks run the Fast configuration; use cmd/inspire-bench
// for full-scale tables.
package repro

import (
	"io"
	"testing"

	"repro/internal/accel"
	"repro/internal/autotune"
	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Out: io.Discard, Fast: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Workloads regenerates Table 1 (workload characteristics).
func BenchmarkTable1Workloads(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Arithmetic regenerates Table 2 (per-layer op reduction).
func BenchmarkTable2Arithmetic(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Encoding regenerates Table 3 (encoding cost).
func BenchmarkTable3Encoding(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4Energy regenerates Table 4 (traffic & energy).
func BenchmarkTable4Energy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig4PerLayer regenerates Fig 4 (per-layer speedups).
func BenchmarkFig4PerLayer(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5EndToEnd regenerates Fig 5 (end-to-end latency).
func BenchmarkFig5EndToEnd(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6aBits regenerates Fig 6a (bit-width sensitivity).
func BenchmarkFig6aBits(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6bDict regenerates Fig 6b (dictionary budget sensitivity).
func BenchmarkFig6bDict(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkFig6cSparsity regenerates Fig 6c (sparsity sensitivity).
func BenchmarkFig6cSparsity(b *testing.B) { benchExperiment(b, "fig6c") }

// BenchmarkFig7Tuning regenerates Fig 7 (tuner convergence).
func BenchmarkFig7Tuning(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Ablation regenerates Fig 8 (encoder ablation).
func BenchmarkFig8Ablation(b *testing.B) { benchExperiment(b, "fig8") }

// --- Kernel micro-benchmarks -------------------------------------------

// benchLayer builds the shared 64x576 (64 out-channels, 64·3·3 reduction)
// quantized layer used by the executor comparison.
func benchLayer(b *testing.B) (*quant.Quantized, []float32) {
	b.Helper()
	r := tensor.NewRNG(1)
	w := tensor.New(64, 576)
	tensor.FillGaussian(w, r, tensor.KaimingStd(576))
	q := quant.Quantize(w, 4, quant.PerTensor)
	x := make([]float32, 576)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	return q, x
}

// BenchmarkExecDenseMatVec is the dense CPU baseline of the executor
// comparison: a 64x576 GEMV.
func BenchmarkExecDenseMatVec(b *testing.B) {
	q, x := benchLayer(b)
	deq := q.Dequantize()
	y := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatVec(deq.Data(), x, y, 64, 576)
	}
}

// BenchmarkExecCSRMatVec measures the CSR executor on the same weights.
func BenchmarkExecCSRMatVec(b *testing.B) {
	q, x := benchLayer(b)
	c := baseline.NewCSRFromQuantized(q)
	y := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MatVec(x, y)
	}
}

// BenchmarkExecFactorizedMatVec measures the UCNN-style executor.
func BenchmarkExecFactorizedMatVec(b *testing.B) {
	q, x := benchLayer(b)
	f := baseline.NewFactorized(q)
	y := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MatVec(x, y)
	}
}

// BenchmarkExecIPEMatVec measures the index-pair encoded executor — the
// real-CPU counterpart of the modeled speedups.
func BenchmarkExecIPEMatVec(b *testing.B) {
	q, x := benchLayer(b)
	prog, _, err := ipe.Encode(q, ipe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float32, 64)
	scratch := make([]float32, prog.NumSymbols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.ExecuteScratch(x, y, scratch)
	}
}

// BenchmarkEncodeMidLayer measures encoder throughput on a 128x1152 layer.
func BenchmarkEncodeMidLayer(b *testing.B) {
	r := tensor.NewRNG(2)
	w := tensor.New(128, 1152)
	tensor.FillGaussian(w, r, tensor.KaimingStd(1152))
	q := quant.Quantize(w, 4, quant.PerTensor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ipe.Encode(q, ipe.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGemm measures the blocked GEMM on 128^3.
func BenchmarkGemm(b *testing.B) {
	r := tensor.NewRNG(3)
	const n = 128
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
		bb[i] = float32(r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(a, bb, c, n, n, n)
	}
}

// BenchmarkConvIm2col measures the im2col convolution path on a ResNet
// stage-2 shape.
func BenchmarkConvIm2col(b *testing.B) {
	r := tensor.NewRNG(4)
	spec := tensor.ConvSpec{InC: 64, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.1)
	in := tensor.New(1, 64, 16, 16)
	tensor.FillGaussian(in, r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DIm2col(in, w, nil, spec)
	}
}

// BenchmarkAccelSimulateTiles measures the event simulator on a 4096-tile
// pipeline.
func BenchmarkAccelSimulateTiles(b *testing.B) {
	c := accel.Default()
	p := accel.KernelProfile{Adds: 1 << 24, Muls: 1 << 24, DRAMBytes: 1 << 26, SRAMAccesses: 1 << 25}
	tiles := accel.SplitTiles(p, 4096, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SimulateTiles("bench", tiles)
	}
}

// BenchmarkTunerGenetic measures the genetic tuner on a real schedule
// space (120 evaluations).
func BenchmarkTunerGenetic(b *testing.B) {
	wl := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 64, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N:    1, H: 16, W: 16,
	}
	sp := schedule.NewSpace(wl, accel.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		autotune.Genetic{}.Tune(sp, 120, uint64(i))
	}
}

// BenchmarkPlanMemoryResNet measures the arena planner on ResNet-18.
func BenchmarkPlanMemoryResNet(b *testing.B) {
	g := nn.ResNet18(1, 32, 10, 1)
	if err := graph.Optimize(g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runtime.PlanMemory(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileLeNetAuto measures full compilation (all candidates,
// auto selection) of LeNet-5.
func BenchmarkCompileLeNetAuto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := nn.LeNet5(1, 1)
		if _, err := runtime.Compile(g, runtime.Options{Bits: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Storage regenerates Table 5 (weight storage comparison).
func BenchmarkTable5Storage(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6Sharing regenerates Table 6 (cross-layer dictionary
// sharing).
func BenchmarkTable6Sharing(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig9Banks regenerates Fig 9 (bank-conflict sensitivity).
func BenchmarkFig9Banks(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Hardware regenerates Fig 10 (hardware sensitivity).
func BenchmarkFig10Hardware(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Distributions regenerates Fig 11 (distribution
// sensitivity).
func BenchmarkFig11Distributions(b *testing.B) { benchExperiment(b, "fig11") }

// benchPlan compiles the LeNet-5 benchmark graph once per benchmark and
// returns it with a matching Gaussian input.
func benchPlan(b *testing.B, batch int) (*runtime.Plan, *tensor.Tensor) {
	b.Helper()
	g := nn.LeNet5(1, 41)
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.New(batch, 1, 28, 28)
	tensor.FillGaussian(in, tensor.NewRNG(42), 1)
	return plan, in
}

// BenchmarkRunSteadyState measures one warm Executor doing repeated
// inference: destination-passing into the planned arena, so allocs/op must
// report 0 after the warm-up run.
func BenchmarkRunSteadyState(b *testing.B) {
	plan, in := benchPlan(b, 1)
	e := plan.NewExecutor()
	if _, err := e.Run(in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatchPooled measures parallel batched inference with workers
// drawing warm Executors from the plan's pool.
func BenchmarkRunBatchPooled(b *testing.B) {
	plan, in := benchPlan(b, 8)
	if _, err := plan.RunBatch(in, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.RunBatch(in, 0); err != nil {
			b.Fatal(err)
		}
	}
}
