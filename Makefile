GO ?= go
FUZZTIME ?= 30s

# Every native fuzz target in the module, as pkg:Target pairs (go test
# accepts one -fuzz target per invocation, so `make fuzz` loops).
FUZZ_TARGETS := \
	./internal/ipe:FuzzUnmarshalBinary \
	./internal/ipe:FuzzEncodeRoundTrip \
	./internal/graph:FuzzGraphDeserialize \
	./internal/runtime:FuzzPlanner \
	./internal/sched:FuzzTilePlanner \
	./internal/conformance:FuzzConformanceConv \
	./internal/conformance:FuzzConformanceDense \
	./internal/conformance:FuzzConformanceProgram \
	./internal/conformance:FuzzConformanceGraph \
	./internal/conformance:FuzzConformanceSharedDict \
	./internal/registry:FuzzRegistrySwap \
	./internal/autotune:FuzzStoreDecode \
	./internal/tensor:FuzzGemmBlockedMatchesNaive

# Serving-path coverage gate: the packages behind the HTTP front end, their
# committed floor, and where the profile lands. 80.3% measured when the
# floor was set; the gate fails below 75% so refactors keep their tests.
COVER_PKGS := ./internal/serve ./internal/runtime ./internal/registry
COVER_FLOOR := 75.0

.PHONY: verify build test race vet staticcheck fuzz cover cover-floor bench bench-smoke bench-micro bench-json bench-json3 bench-check serve-smoke multi-model-smoke autotune-sim

verify: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Intra-op sharding makes every kernel package concurrency-sensitive, so the
# race detector runs over the whole module (and gates verify).
race:
	$(GO) test -race ./...

vet: staticcheck
	$(GO) vet ./...

# staticcheck when available (CI installs it; local runs without it just get
# go vet). honnef.co/go/tools is the de-facto second linter tier for Go.
# Pinned to the correctness (SA) and simplification (S) classes; the ST
# style class is opinion, not signal, for this codebase.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck -checks 'SA*,S1*' ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Run every fuzz target for FUZZTIME each (override: make fuzz FUZZTIME=5s).
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "--- fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME); \
	done

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Coverage floor over the serving path (serve, runtime, registry): fails
# when total statement coverage drops below COVER_FLOOR. Blocking in CI.
cover-floor:
	$(GO) test -coverprofile=cover-serving.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover-serving.out | tail -n 1 | awk '{print $$NF}' | tr -d '%'); \
	echo "serving-path coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "cover-floor: coverage $$total% is below the committed $(COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in the module: a smoke check that the
# measured kernels still compile and execute, not a measurement. Cheap
# enough to gate CI.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# One iteration of each microkernel benchmark (packed GEMM, blocked IPE
# emit, int8/int16 GEMM): a blocking compile-and-execute check on the
# register-blocked hot loops, not a timing gate.
bench-micro:
	$(GO) test -run '^$$' -bench 'GemmVariants|GemmInt|EmitBlocked' -benchtime 1x \
		./internal/tensor ./internal/quant ./internal/ipe

# Paired serial-vs-sharded wall-time measurements for the intra-op pool.
bench-json:
	$(GO) run ./cmd/inspire-perf > BENCH_2.json

# Interpreted-vs-compiled executor measurements over the LeNet-5 and
# SqueezeNet layer shapes, with per-layer runtime metrics and the
# fused-vs-unfused graph-scheduler comparison attached (the committed
# baseline cmd/benchdiff gates against).
bench-json3:
	$(GO) run ./cmd/inspire-perf -compiled -metrics -sched > BENCH_3.json

# Perf-regression gate: one quick interleaving of the BENCH_3 measurement
# against the committed baseline, failing on a >25% geomean slowdown — or,
# via -improve, on a >=1.5x geomean speedup (the committed baseline is
# stale and should be regenerated with `make bench-json3`).
# Cross-machine variance makes absolute ns incomparable, so CI runs this as
# a non-blocking signal; locally it is most meaningful right after a fresh
# `make bench-json3` on the same box.
bench-check:
	$(GO) run ./cmd/inspire-perf -compiled -metrics -sched -quick > /tmp/bench_current.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_3.json -current /tmp/bench_current.json -improve

# Deterministic online-autotuner suite under the race detector: the bandit
# simulations (stable winner / regime shift / noisy near-tie over the fixed
# seed matrix), the tuning-cache robustness tests, and the live-plan routing
# integration test. Everything is seeded, so a failure reproduces exactly.
autotune-sim:
	$(GO) test -race -count=1 -run 'TestSim|TestStore|FuzzStoreDecode|TestTun|TestStartTuner' \
		./internal/autotune ./internal/runtime

# End-to-end serving smoke: boot inspire-serve on an ephemeral port, fire a
# short concurrent load at both models, and fail on any dropped (429) or
# failed request. Exercises the full path (HTTP -> batcher -> RunBatch ->
# metrics) in a few seconds; heavier runs are manual (see README).
serve-smoke:
	@set -e; \
	dir=$$(mktemp -d /tmp/inspire-smoke.XXXXXX); \
	trap 'rm -rf $$dir' EXIT; \
	$(GO) build -o $$dir/inspire-serve ./cmd/inspire-serve; \
	$(GO) build -o $$dir/inspire-load ./cmd/inspire-load; \
	$$dir/inspire-serve -addr 127.0.0.1:0 -addrfile $$dir/addr & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf $$dir' EXIT; \
	i=0; while [ $$i -lt 100 ] && ! [ -s $$dir/addr ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s $$dir/addr ] || { echo "serve-smoke: server never bound"; exit 1; }; \
	addr=$$(cat $$dir/addr); \
	$$dir/inspire-load -url http://$$addr -models lenet5,squeezenet \
		-clients 32 -duration 3s -fail

# Multi-model hot-swap smoke: boot inspire-serve with both models sharing
# one dictionary store, fire concurrent load at both endpoints, and POST a
# new lenet5 weight version halfway through the run. -fail trips on any
# dropped (429) or failed request, any response naming the wrong model, any
# client observing a version regression, or a failed swap — the zero-drop
# hot-swap contract, end to end over real HTTP. Blocking in CI.
multi-model-smoke:
	@set -e; \
	dir=$$(mktemp -d /tmp/inspire-mm-smoke.XXXXXX); \
	trap 'rm -rf $$dir' EXIT; \
	$(GO) build -o $$dir/inspire-serve ./cmd/inspire-serve; \
	$(GO) build -o $$dir/inspire-load ./cmd/inspire-load; \
	$$dir/inspire-serve -addr 127.0.0.1:0 -addrfile $$dir/addr -force ipe & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf $$dir' EXIT; \
	i=0; while [ $$i -lt 100 ] && ! [ -s $$dir/addr ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s $$dir/addr ] || { echo "multi-model-smoke: server never bound"; exit 1; }; \
	addr=$$(cat $$dir/addr); \
	$$dir/inspire-load -url http://$$addr -models lenet5,squeezenet \
		-clients 16 -duration 5s -swap-model lenet5 -swap-seed 5 -fail
