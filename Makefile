GO ?= go

.PHONY: verify build test race vet bench bench-json

verify: build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Intra-op sharding makes every kernel package concurrency-sensitive, so the
# race detector runs over the whole module (and gates verify).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Paired serial-vs-sharded wall-time measurements for the intra-op pool.
bench-json:
	$(GO) run ./cmd/inspire-perf > BENCH_2.json
