GO ?= go
FUZZTIME ?= 30s

# Every native fuzz target in the module, as pkg:Target pairs (go test
# accepts one -fuzz target per invocation, so `make fuzz` loops).
FUZZ_TARGETS := \
	./internal/ipe:FuzzUnmarshalBinary \
	./internal/ipe:FuzzEncodeRoundTrip \
	./internal/graph:FuzzGraphDeserialize \
	./internal/runtime:FuzzPlanner \
	./internal/conformance:FuzzConformanceConv \
	./internal/conformance:FuzzConformanceDense \
	./internal/conformance:FuzzConformanceProgram \
	./internal/conformance:FuzzConformanceGraph

.PHONY: verify build test race vet fuzz cover bench bench-smoke bench-json bench-json3

verify: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Intra-op sharding makes every kernel package concurrency-sensitive, so the
# race detector runs over the whole module (and gates verify).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run every fuzz target for FUZZTIME each (override: make fuzz FUZZTIME=5s).
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "--- fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME); \
	done

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in the module: a smoke check that the
# measured kernels still compile and execute, not a measurement. Cheap
# enough to gate CI.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Paired serial-vs-sharded wall-time measurements for the intra-op pool.
bench-json:
	$(GO) run ./cmd/inspire-perf > BENCH_2.json

# Interpreted-vs-compiled executor measurements over the LeNet-5 and
# SqueezeNet layer shapes.
bench-json3:
	$(GO) run ./cmd/inspire-perf -compiled > BENCH_3.json
