GO ?= go

.PHONY: verify build test race vet bench

verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The executor and the encoded kernels are the concurrency-sensitive
# packages (pooled executors, parallel compile, RunBatch workers).
race:
	$(GO) test -race ./internal/runtime/... ./internal/ipe/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
