// Package benchfmt defines the JSON schemas of the perf reports
// (BENCH_2.json, BENCH_3.json) shared between the producer
// (cmd/inspire-perf) and the consumers (cmd/benchdiff, CI's bench-check
// regression gate). Field names are the wire contract: committed baselines
// must keep parsing across PRs, so change them only additively.
package benchfmt

import "repro/internal/metrics"

// Pair is one serial-vs-sharded measurement of the BENCH_2 report.
type Pair struct {
	Name       string  `json:"name"`
	SerialNsOp int64   `json:"serial_ns_op"`
	ParNsOp    int64   `json:"parallel_ns_op"`
	Speedup    float64 `json:"speedup"`
	Shards     int     `json:"shards"`
}

// ShardingReport is the BENCH_2 envelope.
type ShardingReport struct {
	Benchmark  string `json:"benchmark"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	Results    []Pair `json:"results"`
}

// CompiledPair is one layer-program measurement of the BENCH_3 report.
type CompiledPair struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"` // "matrix" (conv im2col) or "vector" (dense)
	InterpNsOp   int64   `json:"interpreted_ns_op"`
	CompiledNsOp int64   `json:"compiled_ns_op"`
	Speedup      float64 `json:"speedup"`
	K            int     `json:"k"`
	M            int     `json:"m"`
	Cols         int     `json:"cols"`
	NumSymbols   int     `json:"num_symbols"`
	NumSlots     int     `json:"num_slots"`
	// Footprint is the compiled scratch residency relative to the
	// interpreter: (K + NumSlots) / NumSymbols.
	Footprint float64 `json:"scratch_footprint"`
	// Metrics is the layer's runtime-observability attachment (per-layer
	// executor timing under the metrics recorder), present when the report
	// was produced with -metrics. CI diffs it alongside the benchmark
	// timings.
	Metrics *metrics.LayerSnapshot `json:"metrics,omitempty"`
}

// CompiledReport is the BENCH_3 envelope.
type CompiledReport struct {
	Benchmark            string         `json:"benchmark"`
	GOOS                 string         `json:"goos"`
	GOARCH               string         `json:"goarch"`
	NumCPU               int            `json:"num_cpu"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	Note                 string         `json:"note"`
	GeomeanMatrixSpeedup float64        `json:"geomean_matrix_speedup"`
	GeomeanSpeedup       float64        `json:"geomean_speedup"`
	Results              []CompiledPair `json:"results"`
	// MetricsSnapshot is the whole-process observability dump (every layer
	// of the full plans, pool telemetry, executor stats), present when the
	// report was produced with -metrics.
	MetricsSnapshot *metrics.Snapshot `json:"metrics,omitempty"`
	// Scheduler is the fused-vs-unfused graph-scheduler comparison,
	// present when the report was produced with -sched.
	Scheduler *SchedulerReport `json:"scheduler,omitempty"`
}

// SchedRegion is one fused region's scheduler decision as recorded in the
// BENCH_3 scheduler section: the execution mode the planner chose and its
// memory model for the region.
type SchedRegion struct {
	Name string `json:"name"`
	// Mode is "tiled", "elementwise", or "spilled".
	Mode string `json:"mode"`
	// TilesPerImage is the tile-grid size for one batch element (tiled
	// mode only).
	TilesPerImage int `json:"tiles_per_image,omitempty"`
	// RetainedBytes are intermediate bytes kept on-chip (never allocated
	// in the arena); SpilledBytes are intermediates of regions the planner
	// declined to fuse.
	RetainedBytes int64 `json:"retained_bytes"`
	SpilledBytes  int64 `json:"spilled_bytes,omitempty"`
	// FusedDRAMBytes / UnfusedDRAMBytes are the modeled off-chip traffic
	// for the region's members with and without fusion.
	FusedDRAMBytes   int64 `json:"fused_dram_bytes"`
	UnfusedDRAMBytes int64 `json:"unfused_dram_bytes"`
}

// SchedPair is one model's fused-vs-unfused comparison: end-to-end
// executor wall time (bit-identical outputs by construction), the arena
// high-water mark of each plan, the modeled whole-network DRAM traffic,
// and the per-region scheduler decisions of the fused plan.
type SchedPair struct {
	Name        string  `json:"name"`
	UnfusedNsOp int64   `json:"unfused_ns_op"`
	FusedNsOp   int64   `json:"fused_ns_op"`
	Speedup     float64 `json:"speedup"`
	// Arena high-water marks in bytes; ArenaReduction = 1 - fused/unfused.
	UnfusedArenaBytes int64   `json:"unfused_arena_bytes"`
	FusedArenaBytes   int64   `json:"fused_arena_bytes"`
	ArenaReduction    float64 `json:"arena_reduction"`
	// Modeled whole-network DRAM traffic; DRAMReduction = 1 - fused/unfused.
	UnfusedDRAMBytes int64         `json:"unfused_dram_bytes"`
	FusedDRAMBytes   int64         `json:"fused_dram_bytes"`
	DRAMReduction    float64       `json:"dram_reduction"`
	Regions          []SchedRegion `json:"regions,omitempty"`
}

// SchedulerReport is the BENCH_3 scheduler section: the graph-level
// scheduler (operator fusion + memory-aware tiling) measured against the
// unfused plans on the evaluation models.
type SchedulerReport struct {
	Note           string      `json:"note"`
	GeomeanSpeedup float64     `json:"geomean_speedup"`
	Results        []SchedPair `json:"results"`
}
