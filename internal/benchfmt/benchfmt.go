// Package benchfmt defines the JSON schemas of the perf reports
// (BENCH_2.json, BENCH_3.json) shared between the producer
// (cmd/inspire-perf) and the consumers (cmd/benchdiff, CI's bench-check
// regression gate). Field names are the wire contract: committed baselines
// must keep parsing across PRs, so change them only additively.
package benchfmt

import "repro/internal/metrics"

// Pair is one serial-vs-sharded measurement of the BENCH_2 report.
type Pair struct {
	Name       string  `json:"name"`
	SerialNsOp int64   `json:"serial_ns_op"`
	ParNsOp    int64   `json:"parallel_ns_op"`
	Speedup    float64 `json:"speedup"`
	Shards     int     `json:"shards"`
}

// ShardingReport is the BENCH_2 envelope.
type ShardingReport struct {
	Benchmark  string `json:"benchmark"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	Results    []Pair `json:"results"`
}

// CompiledPair is one layer-program measurement of the BENCH_3 report.
type CompiledPair struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"` // "matrix" (conv im2col) or "vector" (dense)
	InterpNsOp   int64   `json:"interpreted_ns_op"`
	CompiledNsOp int64   `json:"compiled_ns_op"`
	Speedup      float64 `json:"speedup"`
	K            int     `json:"k"`
	M            int     `json:"m"`
	Cols         int     `json:"cols"`
	NumSymbols   int     `json:"num_symbols"`
	NumSlots     int     `json:"num_slots"`
	// Footprint is the compiled scratch residency relative to the
	// interpreter: (K + NumSlots) / NumSymbols.
	Footprint float64 `json:"scratch_footprint"`
	// Metrics is the layer's runtime-observability attachment (per-layer
	// executor timing under the metrics recorder), present when the report
	// was produced with -metrics. CI diffs it alongside the benchmark
	// timings.
	Metrics *metrics.LayerSnapshot `json:"metrics,omitempty"`
}

// CompiledReport is the BENCH_3 envelope.
type CompiledReport struct {
	Benchmark            string         `json:"benchmark"`
	GOOS                 string         `json:"goos"`
	GOARCH               string         `json:"goarch"`
	NumCPU               int            `json:"num_cpu"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	Note                 string         `json:"note"`
	GeomeanMatrixSpeedup float64        `json:"geomean_matrix_speedup"`
	GeomeanSpeedup       float64        `json:"geomean_speedup"`
	Results              []CompiledPair `json:"results"`
	// MetricsSnapshot is the whole-process observability dump (every layer
	// of the full plans, pool telemetry, executor stats), present when the
	// report was produced with -metrics.
	MetricsSnapshot *metrics.Snapshot `json:"metrics,omitempty"`
}
