package sched

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// FuzzTilePlanner drives Plan with random conv/pool geometries and SRAM
// budgets and checks the planner's two invariants with Verify: every
// window's working set fits the budget, and the windows exactly cover the
// pool output with all in-bounds taps inside their conv windows. "No legal
// tile" is a valid outcome (the region spills); a plan that fails Verify
// is a bug.
func FuzzTilePlanner(f *testing.F) {
	f.Add(1, 6, 5, 1, 0, 28, 28, 1, 2, 2, 0, 512, 1)
	f.Add(3, 16, 3, 2, 1, 33, 17, 2, 3, 2, 1, 16, 2)
	f.Add(4, 4, 1, 1, 0, 8, 8, 1, 2, 2, 2, 4, 1)
	f.Fuzz(func(t *testing.T, inC, outC, k, stride, pad, inH, inW, batch,
		poolK, poolS, poolP, sramKiB, groups int) {
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		inC = clamp(inC, 1, 16)
		outC = clamp(outC, 1, 32)
		groups = clamp(groups, 1, 4)
		inC, outC = inC*groups, outC*groups
		p := Problem{
			Spec: tensor.ConvSpec{
				InC: inC, OutC: outC,
				KH: clamp(k, 1, 7), KW: clamp(k, 1, 7),
				StrideH: clamp(stride, 1, 3), StrideW: clamp(stride, 1, 3),
				PadH: clamp(pad, 0, 3), PadW: clamp(pad, 0, 3),
				Groups: groups,
			},
			InH: clamp(inH, 1, 64), InW: clamp(inW, 1, 64),
			Batch: clamp(batch, 1, 4),
			Pool: graph.PoolAttrs{
				KH: clamp(poolK, 1, 4), KW: clamp(poolK, 1, 4),
				StrideH: clamp(poolS, 1, 4), StrideW: clamp(poolS, 1, 4),
				PadH: clamp(poolP, 0, 2), PadW: clamp(poolP, 0, 2),
			},
		}
		// Model a plausible resident-weight footprint for the spec.
		p.WeightBytes = int64(p.Spec.WeightShape().NumElements()) * 4
		if p.Validate() != nil {
			t.Skip("degenerate geometry")
		}
		hw := accel.Default()
		hw.SRAMBytes = int64(clamp(sramKiB, 1, 1024)) << 10
		tp, err := Plan(p, hw)
		if err != nil {
			return // no legal tile: the region spills, nothing to verify
		}
		if err := p.Verify(tp, hw); err != nil {
			t.Fatalf("plan violates invariants for %+v at %d bytes: %v", p, hw.SRAMBytes, err)
		}
		if tp.WorkingSetBytes > hw.SRAMBytes {
			t.Fatalf("working set %d over budget %d", tp.WorkingSetBytes, hw.SRAMBytes)
		}
		if tp.FusedDRAMBytes <= 0 || tp.UnfusedDRAMBytes <= 0 {
			t.Fatalf("non-positive DRAM model in %+v", tp)
		}
	})
}
