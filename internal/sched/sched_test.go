package sched

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// lenetPool1 is LeNet-5's conv1→pool1 region: 1×28×28 input, 6 5×5
// filters, 2×2/2 max pool.
func lenetPool1() Problem {
	return Problem{
		Spec:        tensor.ConvSpec{InC: 1, OutC: 6, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
		InH:         28, InW: 28, Batch: 1,
		Pool:        graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2},
		WeightBytes: 6 * 1 * 5 * 5 * 4,
	}
}

func TestPlanSingleTileWhenItFits(t *testing.T) {
	p := lenetPool1()
	tp, err := Plan(p, accel.Default())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if tp.TilesPerImage != 1 || tp.TileOH != tp.PoolOH || tp.TileOW != tp.PoolOW {
		t.Fatalf("expected one full tile at 512KiB, got %+v", tp)
	}
	if tp.ConvOH != 24 || tp.ConvOW != 24 || tp.PoolOH != 12 || tp.PoolOW != 12 {
		t.Fatalf("bad geometry: %+v", tp)
	}
	// One full tile reads the input once: fused DRAM is input + weights +
	// pool output, strictly below the unfused conv+pool pair.
	if tp.FusedDRAMBytes >= tp.UnfusedDRAMBytes {
		t.Fatalf("fused DRAM %d not below unfused %d", tp.FusedDRAMBytes, tp.UnfusedDRAMBytes)
	}
	if err := p.Verify(tp, accel.Default()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestPlanTilesUnderTightBudget(t *testing.T) {
	p := lenetPool1()
	hw := accel.Default()
	hw.SRAMBytes = 4 << 10
	tp, err := Plan(p, hw)
	if err != nil {
		t.Fatalf("Plan at 4KiB: %v", err)
	}
	if tp.TilesPerImage < 2 {
		t.Fatalf("expected multiple tiles at 4KiB, got %+v", tp)
	}
	if err := p.Verify(tp, hw); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestPlanFailsWhenWeightsAloneOverflow(t *testing.T) {
	p := lenetPool1()
	hw := accel.Default()
	hw.SRAMBytes = p.WeightBytes // no room for any activation tile
	if _, err := Plan(p, hw); err == nil {
		t.Fatal("expected no legal tile when weights fill the budget")
	}
}

func TestPlanHandlesPoolPadding(t *testing.T) {
	// Pool padding equal to the kernel makes corner pool pixels tap only
	// padding: their conv windows are empty and the plan must still cover
	// them.
	p := Problem{
		Spec: tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		InH:  9, InW: 9, Batch: 2,
		Pool: graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2},
	}
	hw := accel.Default()
	tp, err := Plan(p, hw)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if err := p.Verify(tp, hw); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestWindowsPartitionPoolOutput(t *testing.T) {
	p := lenetPool1()
	hw := accel.Default()
	hw.SRAMBytes = 6 << 10
	tp, err := Plan(p, hw)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	ws := p.Windows(tp)
	pixels := 0
	for _, w := range ws {
		pixels += w.PoolPixels()
	}
	if pixels != tp.PoolOH*tp.PoolOW {
		t.Fatalf("windows cover %d pool pixels, want %d", pixels, tp.PoolOH*tp.PoolOW)
	}
}

func TestValidateRejectsDegenerateProblems(t *testing.T) {
	bad := []Problem{
		{},
		{Spec: tensor.ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
			InH: 1, InW: 1, Batch: 1, Pool: graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2}},
		{Spec: tensor.ConvSpec{InC: 1, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
			InH: 4, InW: 4, Batch: 1, Pool: graph.PoolAttrs{KH: 0, KW: 2, StrideH: 2, StrideW: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}
