// Package sched is the memory-aware tiling planner behind the graph-level
// scheduler. Given a fused conv→(relu)→pool region and an accelerator
// configuration, it picks a pool-output tile shape whose working set —
// input halo window, resident weights or IPE instruction stream, conv
// output tile and pool output tile — fits the scratchpad, minimizing the
// modeled DRAM traffic of streaming the region tile by tile. The executor
// then evaluates the conv tile into scratch and pools it directly into the
// region's output buffer, so the full conv activation never exists.
//
// The planner is pure arithmetic over shapes: it never looks at tensor
// data, so plans are deterministic and cheap enough to run at compile time
// for every region. Tiles partition the pool output exactly; the conv
// window backing a tile contains every in-bounds tap of its pool pixels by
// construction, which is what keeps tiled execution bit-identical to the
// unfused kernels (each output element sees the same taps in the same
// order).
package sched

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/tensor"
)

const wordBytes = 4

// Problem describes one conv→pool region to tile: the convolution head,
// its input geometry, and the pool tail, plus the byte size of whatever
// the head implementation keeps resident (dense weights, or the IPE
// dictionary and index stream).
type Problem struct {
	// Spec is the head convolution (normalized by Validate).
	Spec tensor.ConvSpec
	// InH, InW are the conv input spatial dims; Batch the batch size.
	InH, InW, Batch int
	// Pool is the tail pooling geometry.
	Pool graph.PoolAttrs
	// WeightBytes is the head's resident parameter footprint in bytes.
	WeightBytes int64
}

// Validate rejects degenerate problems (invalid conv spec, empty conv or
// pool outputs, non-positive dims).
func (p Problem) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.InH <= 0 || p.InW <= 0 || p.Batch <= 0 {
		return fmt.Errorf("sched: non-positive input dims %dx%d batch %d", p.InH, p.InW, p.Batch)
	}
	convOH, convOW := p.Spec.OutDims(p.InH, p.InW)
	if convOH <= 0 || convOW <= 0 {
		return fmt.Errorf("sched: empty conv output %dx%d", convOH, convOW)
	}
	q := p.Pool
	if q.KH <= 0 || q.KW <= 0 || q.StrideH <= 0 || q.StrideW <= 0 || q.PadH < 0 || q.PadW < 0 {
		return fmt.Errorf("sched: invalid pool attrs %+v", q)
	}
	if oh, ow := p.poolOutDims(); oh <= 0 || ow <= 0 {
		return fmt.Errorf("sched: empty pool output %dx%d", oh, ow)
	}
	if p.WeightBytes < 0 {
		return fmt.Errorf("sched: negative weight bytes %d", p.WeightBytes)
	}
	return nil
}

func (p Problem) convOutDims() (int, int) { return p.Spec.OutDims(p.InH, p.InW) }

func (p Problem) poolOutDims() (int, int) {
	convOH, convOW := p.convOutDims()
	oh := (convOH+2*p.Pool.PadH-p.Pool.KH)/p.Pool.StrideH + 1
	ow := (convOW+2*p.Pool.PadW-p.Pool.KW)/p.Pool.StrideW + 1
	return oh, ow
}

// Window is one tile of a plan: a pool-output rectangle and the conv-output
// rectangle that backs it (clamped to the conv dims; possibly empty when
// the pool padding exceeds the kernel). Half-open on all sides.
type Window struct {
	PY0, PY1, PX0, PX1 int // pool-output rows/cols
	CY0, CY1, CX0, CX1 int // conv-output rows/cols backing them
}

// PoolPixels returns the number of pool outputs the window covers.
func (w Window) PoolPixels() int { return (w.PY1 - w.PY0) * (w.PX1 - w.PX0) }

// ConvPixels returns the number of conv outputs the window materializes.
func (w Window) ConvPixels() int { return (w.CY1 - w.CY0) * (w.CX1 - w.CX0) }

// TilePlan is the planner's output for one region: the chosen pool-output
// tile shape plus the modeled footprint and traffic that justified it.
// Byte totals cover the whole batch.
type TilePlan struct {
	// TileOH, TileOW are the pool-output tile dims (edge tiles clamp).
	TileOH, TileOW int
	// PoolOH, PoolOW and ConvOH, ConvOW are the full output geometries.
	PoolOH, PoolOW, ConvOH, ConvOW int
	// TilesPerImage is the tile-grid size for one batch element.
	TilesPerImage int
	// TileFloats is the conv-tile scratch capacity the executor needs:
	// OutC times the largest conv window of the grid.
	TileFloats int
	// WorkingSetBytes is the peak per-tile on-chip footprint: input halo
	// + resident weights + conv tile + pool tile.
	WorkingSetBytes int64
	// FusedDRAMBytes models tiled execution: every tile's input halo
	// streams in, weights are resident (cross once), and only the pool
	// output streams out.
	FusedDRAMBytes int64
	// UnfusedDRAMBytes models the layer-by-layer execution of the same
	// pair under the same constants: conv reads input + weights and
	// writes its output; the pool reads it back and writes its own.
	UnfusedDRAMBytes int64
	// RetainedBytes is the conv activation the fused pass never
	// materializes (batch × OutC × ConvOH × ConvOW × 4).
	RetainedBytes int64
}

// Plan picks the tile shape for a problem: among power-of-two tile
// candidates over the pool output (plus the full extents), keep those whose
// working set fits hw.SRAMBytes and take the one with the least modeled
// fused DRAM traffic, breaking ties toward larger tiles (fewer, bigger
// windows re-read less halo and keep kernels wide). An error means no legal
// tile exists and the region must spill to layer-by-layer execution.
func Plan(p Problem, hw accel.Config) (TilePlan, error) {
	if err := p.Validate(); err != nil {
		return TilePlan{}, err
	}
	if hw.SRAMBytes <= 0 {
		return TilePlan{}, fmt.Errorf("sched: non-positive SRAM budget %d", hw.SRAMBytes)
	}
	poolOH, poolOW := p.poolOutDims()
	convOH, convOW := p.convOutDims()
	best := TilePlan{}
	found := false
	for _, th := range tileOptions(poolOH) {
		for _, tw := range tileOptions(poolOW) {
			cand, ok := p.evaluate(th, tw, hw.SRAMBytes)
			if !ok {
				continue
			}
			if !found || better(cand, best) {
				best, found = cand, true
			}
		}
	}
	if !found {
		return TilePlan{}, fmt.Errorf("sched: no tile of the %dx%d pool output fits %d bytes (weights %d)",
			poolOH, poolOW, hw.SRAMBytes, p.WeightBytes)
	}
	best.PoolOH, best.PoolOW = poolOH, poolOW
	best.ConvOH, best.ConvOW = convOH, convOW
	return best, nil
}

// better orders candidate plans: least fused DRAM, then larger tile area,
// then taller tiles (a deterministic total order).
func better(a, b TilePlan) bool {
	if a.FusedDRAMBytes != b.FusedDRAMBytes {
		return a.FusedDRAMBytes < b.FusedDRAMBytes
	}
	aa, ba := a.TileOH*a.TileOW, b.TileOH*b.TileOW
	if aa != ba {
		return aa > ba
	}
	return a.TileOH > b.TileOH
}

// evaluate models one tile-shape candidate, walking the whole tile grid so
// edge clamping is exact, and reports whether it fits the budget.
func (p Problem) evaluate(th, tw int, budget int64) (TilePlan, bool) {
	spec := p.Spec.Normalize()
	poolOH, poolOW := p.poolOutDims()
	convOH, convOW := p.convOutDims()
	var haloFloats, maxWS int64
	maxTileFloats := 0
	tiles := 0
	for py := 0; py < poolOH; py += th {
		for px := 0; px < poolOW; px += tw {
			w := p.window(py, min(py+th, poolOH), px, min(px+tw, poolOW))
			tiles++
			// Input halo behind the conv window, clamped to the input.
			iy0, iy1 := inputRange(w.CY0, w.CY1, spec.StrideH, spec.PadH, spec.KH, p.InH)
			ix0, ix1 := inputRange(w.CX0, w.CX1, spec.StrideW, spec.PadW, spec.KW, p.InW)
			inF := int64(spec.InC) * int64(iy1-iy0) * int64(ix1-ix0)
			haloFloats += inF
			convF := int64(spec.OutC) * int64(w.ConvPixels())
			poolF := int64(spec.OutC) * int64(w.PoolPixels())
			if tf := int(convF); tf > maxTileFloats {
				maxTileFloats = tf
			}
			ws := (inF+convF+poolF)*wordBytes + p.WeightBytes
			if ws > maxWS {
				maxWS = ws
			}
		}
	}
	if maxWS > budget {
		return TilePlan{}, false
	}
	batch := int64(p.Batch)
	poolOutBytes := batch * int64(spec.OutC) * int64(poolOH) * int64(poolOW) * wordBytes
	convOutBytes := batch * int64(spec.OutC) * int64(convOH) * int64(convOW) * wordBytes
	inFullBytes := batch * int64(spec.InC) * int64(p.InH) * int64(p.InW) * wordBytes
	return TilePlan{
		TileOH:          th,
		TileOW:          tw,
		TilesPerImage:   tiles,
		TileFloats:      maxTileFloats,
		WorkingSetBytes: maxWS,
		FusedDRAMBytes:  batch*haloFloats*wordBytes + p.WeightBytes + poolOutBytes,
		UnfusedDRAMBytes: inFullBytes + p.WeightBytes + // conv pass
			2*convOutBytes + poolOutBytes, // conv write + pool read, pool write
		RetainedBytes: convOutBytes,
	}, true
}

// window maps a pool-output rectangle to its Window, deriving the conv
// rectangle that contains every in-bounds tap of the pool pixels.
func (p Problem) window(py0, py1, px0, px1 int) Window {
	convOH, convOW := p.convOutDims()
	cy0, cy1 := tapRange(py0, py1, p.Pool.StrideH, p.Pool.PadH, p.Pool.KH, convOH)
	cx0, cx1 := tapRange(px0, px1, p.Pool.StrideW, p.Pool.PadW, p.Pool.KW, convOW)
	return Window{py0, py1, px0, px1, cy0, cy1, cx0, cx1}
}

// tapRange returns the half-open input range [lo, hi) that the output range
// [o0, o1) of a windowed op (stride/pad/kernel) taps, clamped to [0, n).
// The range may be empty when the padding swallows every tap.
func tapRange(o0, o1, stride, pad, k, n int) (int, int) {
	lo := o0*stride - pad
	hi := (o1-1)*stride - pad + k
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n // every tap past the end: empty, pinned in bounds
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// inputRange is tapRange for the conv's input dimension.
func inputRange(c0, c1, stride, pad, k, n int) (int, int) {
	if c1 <= c0 {
		return 0, 0
	}
	return tapRange(c0, c1, stride, pad, k, n)
}

// Windows enumerates the tile grid of a plan for one batch element, in
// row-major tile order. The executor walks this list per image.
func (p Problem) Windows(tp TilePlan) []Window {
	poolOH, poolOW := p.poolOutDims()
	out := make([]Window, 0, tp.TilesPerImage)
	for py := 0; py < poolOH; py += tp.TileOH {
		for px := 0; px < poolOW; px += tp.TileOW {
			out = append(out, p.window(py, min(py+tp.TileOH, poolOH), px, min(px+tp.TileOW, poolOW)))
		}
	}
	return out
}

// Verify checks a plan against its problem and budget: every window's
// working set fits, windows exactly partition the pool output, conv
// windows stay within the conv dims and contain every in-bounds tap of
// their pool pixels. The fuzz target runs this on random problems.
func (p Problem) Verify(tp TilePlan, hw accel.Config) error {
	poolOH, poolOW := p.poolOutDims()
	convOH, convOW := p.convOutDims()
	ws := p.Windows(tp)
	if len(ws) != tp.TilesPerImage {
		return fmt.Errorf("sched: %d windows, plan says %d", len(ws), tp.TilesPerImage)
	}
	covered := make([]bool, poolOH*poolOW)
	spec := p.Spec.Normalize()
	for _, w := range ws {
		if w.PY0 < 0 || w.PY1 > poolOH || w.PX0 < 0 || w.PX1 > poolOW || w.PY0 >= w.PY1 || w.PX0 >= w.PX1 {
			return fmt.Errorf("sched: pool window %+v out of %dx%d", w, poolOH, poolOW)
		}
		if w.CY0 < 0 || w.CY1 > convOH || w.CX0 < 0 || w.CX1 > convOW || w.CY0 > w.CY1 || w.CX0 > w.CX1 {
			return fmt.Errorf("sched: conv window %+v out of %dx%d", w, convOH, convOW)
		}
		if tf := spec.OutC * w.ConvPixels(); tf > tp.TileFloats {
			return fmt.Errorf("sched: conv window %+v needs %d floats, plan allots %d", w, tf, tp.TileFloats)
		}
		for py := w.PY0; py < w.PY1; py++ {
			for px := w.PX0; px < w.PX1; px++ {
				if covered[py*poolOW+px] {
					return fmt.Errorf("sched: pool output (%d,%d) covered twice", py, px)
				}
				covered[py*poolOW+px] = true
				// Every in-bounds tap of this pool pixel must fall in
				// the conv window.
				for ky := 0; ky < p.Pool.KH; ky++ {
					cy := py*p.Pool.StrideH - p.Pool.PadH + ky
					if cy < 0 || cy >= convOH {
						continue
					}
					if cy < w.CY0 || cy >= w.CY1 {
						return fmt.Errorf("sched: tap row %d of pool (%d,%d) outside conv window %+v", cy, py, px, w)
					}
				}
				for kx := 0; kx < p.Pool.KW; kx++ {
					cx := px*p.Pool.StrideW - p.Pool.PadW + kx
					if cx < 0 || cx >= convOW {
						continue
					}
					if cx < w.CX0 || cx >= w.CX1 {
						return fmt.Errorf("sched: tap col %d of pool (%d,%d) outside conv window %+v", cx, py, px, w)
					}
				}
			}
		}
		iy0, iy1 := inputRange(w.CY0, w.CY1, spec.StrideH, spec.PadH, spec.KH, p.InH)
		ix0, ix1 := inputRange(w.CX0, w.CX1, spec.StrideW, spec.PadW, spec.KW, p.InW)
		inF := int64(spec.InC) * int64(iy1-iy0) * int64(ix1-ix0)
		wsB := (inF + int64(spec.OutC)*int64(w.ConvPixels()) + int64(spec.OutC)*int64(w.PoolPixels())) * wordBytes
		if wsB+p.WeightBytes > hw.SRAMBytes {
			return fmt.Errorf("sched: window %+v working set %d + weights %d exceeds budget %d",
				w, wsB, p.WeightBytes, hw.SRAMBytes)
		}
	}
	for i, c := range covered {
		if !c {
			return fmt.Errorf("sched: pool output (%d,%d) never covered", i/poolOW, i%poolOW)
		}
	}
	return nil
}

// tileOptions returns the candidate tile extents for a dimension: powers of
// two below it, plus the extent itself.
func tileOptions(extent int) []int {
	var out []int
	for v := 1; v < extent; v *= 2 {
		out = append(out, v)
	}
	return append(out, extent)
}
