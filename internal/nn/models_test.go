package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func evalModel(t *testing.T, g *graph.Graph, inShape tensor.Shape, seed uint64) *tensor.Tensor {
	t.Helper()
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(seed)
	in := tensor.New(inShape...)
	tensor.FillGaussian(in, r, 1)
	out, err := graph.Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertProbabilities(t *testing.T, out *tensor.Tensor, classes int) {
	t.Helper()
	if !out.Shape().Equal(tensor.Shape{out.Dim(0), classes}) {
		t.Fatalf("output shape = %v, want [n %d]", out.Shape(), classes)
	}
	for b := 0; b < out.Dim(0); b++ {
		var s float64
		for i := 0; i < classes; i++ {
			v := float64(out.At(b, i))
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("invalid probability %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d probabilities sum to %v", b, s)
		}
	}
}

func TestLeNet5Forward(t *testing.T) {
	g := LeNet5(2, 1)
	out := evalModel(t, g, tensor.Shape{2, 1, 28, 28}, 2)
	assertProbabilities(t, out, 10)
}

func TestLeNet5ParamCount(t *testing.T) {
	g := LeNet5(1, 1)
	// Classic LeNet-5 parameter count:
	// conv1 6*1*5*5+6=156; conv2 16*6*5*5+16=2416;
	// fc1 120*400+120=48120; fc2 84*120+84=10164; fc3 10*84+10=850.
	want := int64(156 + 2416 + 48120 + 10164 + 850)
	if got := g.NumParams(); got != want {
		t.Fatalf("LeNet-5 params = %d, want %d", got, want)
	}
}

func TestResNet18Forward(t *testing.T) {
	g := ResNet18(1, 32, 10, 3)
	out := evalModel(t, g, tensor.Shape{1, 3, 32, 32}, 4)
	assertProbabilities(t, out, 10)
}

func TestResNet18HasExpectedConvCount(t *testing.T) {
	g := ResNet18(1, 32, 10, 3)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	// Stem + 8 blocks × 2 convs + 3 projection shortcuts = 20.
	convs := ConvLayers(g)
	if len(convs) != 20 {
		t.Fatalf("ResNet-18 conv count = %d, want 20", len(convs))
	}
}

func TestResNet18ParamMagnitude(t *testing.T) {
	g := ResNet18(1, 32, 10, 5)
	p := g.NumParams()
	// ~11.2M conv/fc params in real ResNet-18; ours adds conv biases and
	// small-head fc, so just check the ballpark.
	if p < 10_000_000 || p > 13_000_000 {
		t.Fatalf("ResNet-18 params = %d, expected ≈ 11M", p)
	}
}

func TestVGG16Forward(t *testing.T) {
	g := VGG16(1, 32, 10, 6)
	out := evalModel(t, g, tensor.Shape{1, 3, 32, 32}, 7)
	assertProbabilities(t, out, 10)
}

func TestVGG16ConvCount(t *testing.T) {
	g := VGG16(1, 32, 10, 6)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if got := len(ConvLayers(g)); got != 13 {
		t.Fatalf("VGG-16 conv count = %d, want 13", got)
	}
}

func TestMobileNetV1Forward(t *testing.T) {
	g := MobileNetV1(1, 32, 10, 8)
	out := evalModel(t, g, tensor.Shape{1, 3, 32, 32}, 9)
	assertProbabilities(t, out, 10)
}

func TestMobileNetV1DepthwiseStructure(t *testing.T) {
	g := MobileNetV1(1, 32, 10, 8)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	convs := ConvLayers(g)
	// Stem + 13 blocks × (dw + pw) = 27.
	if len(convs) != 27 {
		t.Fatalf("MobileNetV1 conv count = %d, want 27", len(convs))
	}
	dw := 0
	for _, c := range convs {
		if c.Spec.Groups > 1 {
			if c.Spec.Groups != c.Spec.InC || c.Spec.InC != c.Spec.OutC {
				t.Fatalf("depthwise conv %s has inconsistent groups: %+v", c.Name, c.Spec)
			}
			dw++
		}
	}
	if dw != 13 {
		t.Fatalf("MobileNetV1 depthwise count = %d, want 13", dw)
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a := evalModel(t, ResNet18(1, 32, 10, 42), tensor.Shape{1, 3, 32, 32}, 7)
	b := evalModel(t, ResNet18(1, 32, 10, 42), tensor.Shape{1, 3, 32, 32}, 7)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must give identical models and outputs")
	}
	c := evalModel(t, ResNet18(1, 32, 10, 43), tensor.Shape{1, 3, 32, 32}, 7)
	if tensor.MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should give different weights")
	}
}

func TestModelsSurviveOptimize(t *testing.T) {
	for _, m := range Zoo(32) {
		g := m.Build(1, 11)
		if err := g.InferShapes(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		inShape := g.In.OutShape.Clone()
		r := tensor.NewRNG(12)
		in := tensor.New(inShape...)
		tensor.FillGaussian(in, r, 1)
		before, err := graph.Eval(g, in)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := graph.Optimize(g); err != nil {
			t.Fatalf("%s: optimize: %v", m.Name, err)
		}
		after, err := graph.Eval(g, in)
		if err != nil {
			t.Fatalf("%s: eval after optimize: %v", m.Name, err)
		}
		if !tensor.AllClose(after, before, 1e-3, 1e-3) {
			t.Fatalf("%s: optimization changed output, max diff %v",
				m.Name, tensor.MaxAbsDiff(after, before))
		}
	}
}

func TestZooReturnsFiveModels(t *testing.T) {
	if got := len(Zoo(32)); got != 5 {
		t.Fatalf("Zoo size = %d, want 5", got)
	}
}

func TestResNet18RejectsBadInputSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple-of-32 input")
		}
	}()
	ResNet18(1, 33, 10, 1)
}

func TestSqueezeNetForward(t *testing.T) {
	g := SqueezeNet(1, 32, 10, 12)
	out := evalModel(t, g, tensor.Shape{1, 3, 32, 32}, 13)
	assertProbabilities(t, out, 10)
}

func TestSqueezeNetStructure(t *testing.T) {
	g := SqueezeNet(1, 32, 10, 12)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	// Stem + 8 fires × 3 convs + head = 26 convolutions.
	if got := len(ConvLayers(g)); got != 26 {
		t.Fatalf("SqueezeNet conv count = %d, want 26", got)
	}
	concats := 0
	for _, n := range g.Topo() {
		if n.Kind == graph.OpConcat {
			concats++
		}
	}
	if concats != 8 {
		t.Fatalf("SqueezeNet concat count = %d, want 8", concats)
	}
}

func TestConcatEval(t *testing.T) {
	g := graph.New("in", 1, 2, 2, 2)
	a := g.ReLU(g.In, "a")
	b := g.ReLU(g.In, "b")
	g.SetOutput(g.Concat("cat", a, b))
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Out.OutShape.Equal(tensor.Shape{1, 4, 2, 2}) {
		t.Fatalf("concat shape = %v", g.Out.OutShape)
	}
	in := tensor.New(1, 2, 2, 2).Fill(3)
	out, err := graph.Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if v != 3 {
			t.Fatalf("concat of two relu(3) tensors should be all 3: %v", out.Data())
		}
	}
}

func TestConcatShapeMismatchRejected(t *testing.T) {
	g := graph.New("in", 1, 2, 4, 4)
	a := g.ReLU(g.In, "a")
	p := g.MaxPool(g.In, "pool", graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	g.SetOutput(g.Concat("cat", a, p))
	if err := g.InferShapes(); err == nil {
		t.Fatal("concat of mismatched spatial dims must be rejected")
	}
}

func TestZooModelsSerializeRoundTrip(t *testing.T) {
	// Every zoo model must survive the binary model format with identical
	// outputs.
	for _, m := range Zoo(32) {
		g := m.Build(1, 21)
		if err := g.InferShapes(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("%s: write: %v", m.Name, err)
		}
		back, err := graph.ReadGraph(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", m.Name, err)
		}
		r := tensor.NewRNG(22)
		in := tensor.New(g.In.OutShape...)
		tensor.FillGaussian(in, r, 1)
		want, err := graph.Eval(g, in)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got, err := graph.Eval(back, in)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Fatalf("%s: loaded model diverges", m.Name)
		}
	}
}
