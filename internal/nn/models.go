// Package nn builds the CNN workloads of the evaluation — LeNet-5,
// ResNet-18, VGG-16 and MobileNetV1 — as computational graphs with
// deterministic, seeded synthetic weights. The reproduction does not need
// trained accuracy: index-pair encoding gains depend only on the weight
// value multiplicity and index-set overlap statistics, which quantization
// bit-width and pruning control (see DESIGN.md §2), so Kaiming-initialized
// Gaussian weights exercise exactly the same code paths.
package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// builderState carries the RNG through a model construction.
type builderState struct {
	r *tensor.RNG
}

func (b *builderState) convWeights(spec tensor.ConvSpec) (*tensor.Tensor, *tensor.Tensor) {
	w := tensor.New(spec.WeightShape()...)
	fanIn := (spec.InC / max(spec.Groups, 1)) * spec.KH * spec.KW
	tensor.FillGaussian(w, b.r, tensor.KaimingStd(fanIn))
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, b.r, 0.01)
	return w, bias
}

func (b *builderState) denseWeights(m, k int) (*tensor.Tensor, *tensor.Tensor) {
	w := tensor.New(m, k)
	tensor.FillGaussian(w, b.r, tensor.KaimingStd(k))
	bias := tensor.New(m)
	tensor.FillGaussian(bias, b.r, 0.01)
	return w, bias
}

func (b *builderState) bnParams(c int) (gamma, beta, mean, variance *tensor.Tensor) {
	gamma, beta = tensor.New(c), tensor.New(c)
	mean, variance = tensor.New(c), tensor.New(c)
	for i := 0; i < c; i++ {
		gamma.Data()[i] = 0.5 + b.r.Float32()
		beta.Data()[i] = float32(b.r.NormFloat64() * 0.1)
		mean.Data()[i] = float32(b.r.NormFloat64() * 0.1)
		variance.Data()[i] = 0.5 + b.r.Float32()
	}
	return gamma, beta, mean, variance
}

// convBNReLU appends conv → batchnorm → relu.
func (b *builderState) convBNReLU(g *graph.Graph, x *graph.Node, name string, spec tensor.ConvSpec) *graph.Node {
	w, bias := b.convWeights(spec)
	c := g.Conv(x, name, spec, w, bias)
	gamma, beta, mean, variance := b.bnParams(spec.OutC)
	bn := g.BatchNorm(c, name+".bn", gamma, beta, mean, variance, 1e-5)
	return g.ReLU(bn, name+".relu")
}

// LeNet5 builds the classic LeNet-5 for [batch, 1, 28, 28] inputs.
func LeNet5(batch int, seed uint64) *graph.Graph {
	b := &builderState{r: tensor.NewRNG(seed)}
	g := graph.New("input", batch, 1, 28, 28)
	s1 := tensor.ConvSpec{InC: 1, OutC: 6, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	w1, b1 := b.convWeights(s1)
	x := g.ReLU(g.Conv(g.In, "conv1", s1, w1, b1), "relu1")
	x = g.MaxPool(x, "pool1", graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	s2 := tensor.ConvSpec{InC: 6, OutC: 16, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	w2, b2 := b.convWeights(s2)
	x = g.ReLU(g.Conv(x, "conv2", s2, w2, b2), "relu2")
	x = g.MaxPool(x, "pool2", graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	x = g.Flatten(x, "flatten")
	w3, b3 := b.denseWeights(120, 16*5*5)
	x = g.ReLU(g.Dense(x, "fc1", w3, b3), "relu3")
	w4, b4 := b.denseWeights(84, 120)
	x = g.ReLU(g.Dense(x, "fc2", w4, b4), "relu4")
	w5, b5 := b.denseWeights(10, 84)
	x = g.Dense(x, "fc3", w5, b5)
	g.SetOutput(g.Softmax(x, "softmax"))
	return g
}

// ResNet18 builds ResNet-18 for [batch, 3, hw, hw] inputs with the given
// class count. hw must be a multiple of 32 (224 for the paper's ImageNet
// shapes; 32 or 64 for fast functional tests).
func ResNet18(batch, hw, classes int, seed uint64) *graph.Graph {
	if hw%32 != 0 {
		panic(fmt.Sprintf("nn: ResNet18 input size %d must be a multiple of 32", hw))
	}
	b := &builderState{r: tensor.NewRNG(seed)}
	g := graph.New("input", batch, 3, hw, hw)
	stem := tensor.ConvSpec{InC: 3, OutC: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	x := b.convBNReLU(g, g.In, "conv1", stem)
	x = g.MaxPool(x, "pool1", graph.PoolAttrs{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1})
	chans := []int{64, 128, 256, 512}
	inC := 64
	for stage, c := range chans {
		for block := 0; block < 2; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			x = b.basicBlock(g, x, fmt.Sprintf("layer%d.%d", stage+1, block), inC, c, stride)
			inC = c
		}
	}
	x = g.GlobalAvgPool(x, "gap")
	x = g.Flatten(x, "flatten")
	wf, bf := b.denseWeights(classes, 512)
	x = g.Dense(x, "fc", wf, bf)
	g.SetOutput(g.Softmax(x, "softmax"))
	return g
}

// basicBlock is the two-conv residual block of ResNet-18 with an optional
// strided 1x1 projection shortcut.
func (b *builderState) basicBlock(g *graph.Graph, x *graph.Node, name string, inC, outC, stride int) *graph.Node {
	s1 := tensor.ConvSpec{InC: inC, OutC: outC, KH: 3, KW: 3, StrideH: stride, StrideW: stride, PadH: 1, PadW: 1}
	w1, b1 := b.convWeights(s1)
	y := g.Conv(x, name+".conv1", s1, w1, b1)
	g1, be1, m1, v1 := b.bnParams(outC)
	y = g.ReLU(g.BatchNorm(y, name+".bn1", g1, be1, m1, v1, 1e-5), name+".relu1")
	s2 := tensor.ConvSpec{InC: outC, OutC: outC, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w2, b2 := b.convWeights(s2)
	y = g.Conv(y, name+".conv2", s2, w2, b2)
	g2, be2, m2, v2 := b.bnParams(outC)
	y = g.BatchNorm(y, name+".bn2", g2, be2, m2, v2, 1e-5)
	short := x
	if stride != 1 || inC != outC {
		sp := tensor.ConvSpec{InC: inC, OutC: outC, KH: 1, KW: 1, StrideH: stride, StrideW: stride}
		wp, bp := b.convWeights(sp)
		short = g.Conv(x, name+".proj", sp, wp, bp)
		g3, be3, m3, v3 := b.bnParams(outC)
		short = g.BatchNorm(short, name+".proj.bn", g3, be3, m3, v3, 1e-5)
	}
	return g.ReLU(g.Add(y, short, name+".add"), name+".relu2")
}

// VGG16 builds VGG-16's convolutional trunk for [batch, 3, hw, hw] inputs
// with a compact classifier head (512→512→classes) so the model stays
// runnable at sub-ImageNet input sizes. hw must be a multiple of 32.
func VGG16(batch, hw, classes int, seed uint64) *graph.Graph {
	if hw%32 != 0 {
		panic(fmt.Sprintf("nn: VGG16 input size %d must be a multiple of 32", hw))
	}
	b := &builderState{r: tensor.NewRNG(seed)}
	g := graph.New("input", batch, 3, hw, hw)
	cfg := []struct {
		convs, outC int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	x := g.In
	inC := 3
	for bi, blk := range cfg {
		for ci := 0; ci < blk.convs; ci++ {
			spec := tensor.ConvSpec{InC: inC, OutC: blk.outC, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
			w, bias := b.convWeights(spec)
			x = g.ReLU(g.Conv(x, fmt.Sprintf("conv%d_%d", bi+1, ci+1), spec, w, bias),
				fmt.Sprintf("relu%d_%d", bi+1, ci+1))
			inC = blk.outC
		}
		x = g.MaxPool(x, fmt.Sprintf("pool%d", bi+1), graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	}
	x = g.Flatten(x, "flatten")
	feat := 512 * (hw / 32) * (hw / 32)
	w1, b1 := b.denseWeights(512, feat)
	x = g.ReLU(g.Dense(x, "fc1", w1, b1), "fc1.relu")
	w2, b2 := b.denseWeights(classes, 512)
	x = g.Dense(x, "fc2", w2, b2)
	g.SetOutput(g.Softmax(x, "softmax"))
	return g
}

// MobileNetV1 builds MobileNet v1 (depthwise-separable convolutions) for
// [batch, 3, hw, hw] inputs. hw must be a multiple of 32.
func MobileNetV1(batch, hw, classes int, seed uint64) *graph.Graph {
	if hw%32 != 0 {
		panic(fmt.Sprintf("nn: MobileNetV1 input size %d must be a multiple of 32", hw))
	}
	b := &builderState{r: tensor.NewRNG(seed)}
	g := graph.New("input", batch, 3, hw, hw)
	stem := tensor.ConvSpec{InC: 3, OutC: 32, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := b.convBNReLU(g, g.In, "conv1", stem)
	blocks := []struct{ outC, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	inC := 32
	for i, blk := range blocks {
		name := fmt.Sprintf("dsconv%d", i+1)
		dw := tensor.ConvSpec{InC: inC, OutC: inC, KH: 3, KW: 3,
			StrideH: blk.stride, StrideW: blk.stride, PadH: 1, PadW: 1, Groups: inC}
		x = b.convBNReLU(g, x, name+".dw", dw)
		pw := tensor.ConvSpec{InC: inC, OutC: blk.outC, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
		x = b.convBNReLU(g, x, name+".pw", pw)
		inC = blk.outC
	}
	x = g.GlobalAvgPool(x, "gap")
	x = g.Flatten(x, "flatten")
	wf, bf := b.denseWeights(classes, inC)
	x = g.Dense(x, "fc", wf, bf)
	g.SetOutput(g.Softmax(x, "softmax"))
	return g
}

// Model pairs a display name with its builder at a standard small input
// size, for the experiment drivers.
type Model struct {
	Name  string
	Build func(batch int, seed uint64) *graph.Graph
}

// Zoo returns the evaluation's model set at the given spatial input size
// (LeNet-5 is fixed at 28×28 by construction).
func Zoo(hw int) []Model {
	return []Model{
		{"LeNet-5", func(batch int, seed uint64) *graph.Graph { return LeNet5(batch, seed) }},
		{"ResNet-18", func(batch int, seed uint64) *graph.Graph { return ResNet18(batch, hw, 10, seed) }},
		{"VGG-16", func(batch int, seed uint64) *graph.Graph { return VGG16(batch, hw, 10, seed) }},
		{"MobileNetV1", func(batch int, seed uint64) *graph.Graph { return MobileNetV1(batch, hw, 10, seed) }},
		{"SqueezeNet", func(batch int, seed uint64) *graph.Graph { return SqueezeNet(batch, hw, 10, seed) }},
	}
}

// ConvLayerInfo describes one convolution extracted from a graph, for the
// per-layer experiments.
type ConvLayerInfo struct {
	Name   string
	Spec   tensor.ConvSpec
	Weight *tensor.Tensor
	Bias   *tensor.Tensor
	// InH and InW are the inferred input spatial dims; Batch the batch.
	Batch, InH, InW int
}

// ConvLayers extracts every convolution node of g in topological order.
// InferShapes must have been run (or the graph freshly built via Optimize).
func ConvLayers(g *graph.Graph) []ConvLayerInfo {
	var out []ConvLayerInfo
	for _, n := range g.Topo() {
		if n.Kind != graph.OpConv {
			continue
		}
		in := n.Inputs[0].OutShape
		if in.Rank() != 4 {
			continue
		}
		out = append(out, ConvLayerInfo{
			Name: n.Name, Spec: n.Attrs.Conv,
			Weight: n.Param("weight"), Bias: n.Param("bias"),
			Batch: in[0], InH: in[2], InW: in[3],
		})
	}
	return out
}
