package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// fire appends a SqueezeNet fire module: a 1×1 squeeze convolution
// followed by parallel 1×1 and 3×3 expand convolutions whose outputs are
// concatenated along channels.
func (b *builderState) fire(g *graph.Graph, x *graph.Node, name string, inC, squeeze, expand1, expand3 int) *graph.Node {
	sq := tensor.ConvSpec{InC: inC, OutC: squeeze, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	ws, bs := b.convWeights(sq)
	s := g.ReLU(g.Conv(x, name+".squeeze", sq, ws, bs), name+".squeeze.relu")

	e1 := tensor.ConvSpec{InC: squeeze, OutC: expand1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	w1, b1 := b.convWeights(e1)
	x1 := g.ReLU(g.Conv(s, name+".expand1x1", e1, w1, b1), name+".expand1x1.relu")

	e3 := tensor.ConvSpec{InC: squeeze, OutC: expand3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w3, b3 := b.convWeights(e3)
	x3 := g.ReLU(g.Conv(s, name+".expand3x3", e3, w3, b3), name+".expand3x3.relu")

	return g.Concat(name+".concat", x1, x3)
}

// SqueezeNet builds a SqueezeNet-v1.1-style network (fire modules with
// channel concatenation) for [batch, 3, hw, hw] inputs. hw must be a
// multiple of 32.
func SqueezeNet(batch, hw, classes int, seed uint64) *graph.Graph {
	if hw%32 != 0 {
		panic(fmt.Sprintf("nn: SqueezeNet input size %d must be a multiple of 32", hw))
	}
	b := &builderState{r: tensor.NewRNG(seed)}
	g := graph.New("input", batch, 3, hw, hw)
	stem := tensor.ConvSpec{InC: 3, OutC: 64, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	ws, bs := b.convWeights(stem)
	x := g.ReLU(g.Conv(g.In, "conv1", stem, ws, bs), "conv1.relu")
	pool := graph.PoolAttrs{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x = g.MaxPool(x, "pool1", pool)

	x = b.fire(g, x, "fire2", 64, 16, 64, 64)
	x = b.fire(g, x, "fire3", 128, 16, 64, 64)
	x = g.MaxPool(x, "pool3", pool)
	x = b.fire(g, x, "fire4", 128, 32, 128, 128)
	x = b.fire(g, x, "fire5", 256, 32, 128, 128)
	x = g.MaxPool(x, "pool5", pool)
	x = b.fire(g, x, "fire6", 256, 48, 192, 192)
	x = b.fire(g, x, "fire7", 384, 48, 192, 192)
	x = b.fire(g, x, "fire8", 384, 64, 256, 256)
	x = b.fire(g, x, "fire9", 512, 64, 256, 256)

	head := tensor.ConvSpec{InC: 512, OutC: classes, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	wh, bh := b.convWeights(head)
	x = g.ReLU(g.Conv(x, "conv10", head, wh, bh), "conv10.relu")
	x = g.GlobalAvgPool(x, "gap")
	x = g.Flatten(x, "flatten")
	g.SetOutput(g.Softmax(x, "softmax"))
	return g
}
