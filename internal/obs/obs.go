// Package obs runs the evaluation models under the runtime metrics
// recorder and renders the resulting snapshots as report tables. It is the
// shared half of the observability CLIs: cmd/inspire-stats is a thin flag
// wrapper around it, and cmd/inspire-perf uses it for the -metrics mode and
// for the per-layer attachments of the BENCH_3 report.
package obs

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Model is one evaluation network plus a filled serving input.
type Model struct {
	Name  string
	Graph *graph.Graph
	Input *tensor.Tensor
}

// Default weight seeds for the evaluation networks: the geometries and
// weights every report (BENCH_2/3), the conformance sweep, and the serving
// CLIs agree on. GraphByName maps seed 0 here.
const (
	LeNet5Seed     = 9
	SqueezeNetSeed = 11
)

// GraphByName builds the named evaluation network with seed-derived
// weights. Seed 0 selects the model's default evaluation seed, so every
// caller — inspire-serve, inspire-perf, inspire-stats, the conformance
// sweep — constructs bit-identical graphs from the same name. Non-zero
// seeds produce distinct weight versions of the same architecture (the
// hot-swap registry's version loads).
func GraphByName(name string, seed uint64) (*graph.Graph, error) {
	switch name {
	case "lenet5":
		if seed == 0 {
			seed = LeNet5Seed
		}
		return nn.LeNet5(1, seed), nil
	case "squeezenet":
		if seed == 0 {
			seed = SqueezeNetSeed
		}
		return nn.SqueezeNet(1, 32, 10, seed), nil
	}
	return nil, fmt.Errorf("obs: unknown model %q (have lenet5, squeezenet)", name)
}

// InputFor returns the deterministic serving input for the named model
// (the same tensors EvalModels fills).
func InputFor(name string) (*tensor.Tensor, error) {
	rng := tensor.NewRNG(99)
	lin := tensor.New(1, 1, 28, 28)
	tensor.FillGaussian(lin, rng, 1)
	sin := tensor.New(1, 3, 32, 32)
	tensor.FillGaussian(sin, rng, 1)
	switch name {
	case "lenet5":
		return lin, nil
	case "squeezenet":
		return sin, nil
	}
	return nil, fmt.Errorf("obs: unknown model %q (have lenet5, squeezenet)", name)
}

// CompilePlan is the one compile path the serving and benchmarking CLIs
// share: it builds the named evaluation model at the given weight seed and
// compiles it through exactly the options the caller passes — so a plan
// served by inspire-serve and a plan measured by inspire-perf differ in
// nothing but the caller's explicit Options (Force/Fuse/TuningStore/
// DictStore), never in model construction.
func CompilePlan(name string, seed uint64, opts runtime.Options) (*runtime.Plan, error) {
	g, err := GraphByName(name, seed)
	if err != nil {
		return nil, err
	}
	plan, err := runtime.Compile(g, opts)
	if err != nil {
		return nil, fmt.Errorf("obs: compile %s: %w", name, err)
	}
	return plan, nil
}

// EvalModels builds the two evaluation networks (LeNet-5 and the 32x32
// SqueezeNet) with deterministic weights and inputs, matching the
// geometries the BENCH_3 report measures.
func EvalModels() []Model {
	models := make([]Model, 0, 2)
	for _, name := range []string{"lenet5", "squeezenet"} {
		g, err := GraphByName(name, 0)
		if err != nil {
			panic(err) // static names; unreachable
		}
		in, err := InputFor(name)
		if err != nil {
			panic(err)
		}
		models = append(models, Model{Name: name, Graph: g, Input: in})
	}
	return models
}

// Meter compiles each model with the given options, runs it `runs` times at
// the default parallelism plus once forced to two intra-op shards, all
// under a fresh process-wide metrics recorder (layer series prefixed
// "model/"), and returns the recorder's snapshot. The extra sharded run
// exercises the worker pool even on a single-core box (the pool keeps one
// helper token there), so the pool telemetry is never trivially empty; it
// adds one sample to every layer series. The recorder is uninstalled again
// before returning, so metering never leaks overhead into the caller's
// subsequent work.
func Meter(models []Model, opts runtime.Options, runs int) (metrics.Snapshot, error) {
	rec := runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	for _, m := range models {
		plan, err := runtime.Compile(m.Graph, opts)
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("obs: compile %s: %w", m.Name, err)
		}
		plan.MetricsPrefix = m.Name + "/"
		for i := 0; i < runs; i++ {
			if _, err := plan.Run(m.Input); err != nil {
				return metrics.Snapshot{}, fmt.Errorf("obs: run %s: %w", m.Name, err)
			}
		}
		e := plan.AcquireExecutor()
		e.SetParallelism(2)
		_, err = e.Run(m.Input)
		plan.ReleaseExecutor(e)
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("obs: sharded run %s: %w", m.Name, err)
		}
	}
	return rec.Snapshot(), nil
}

// LayerTable renders the snapshot's layer series whose names start with
// prefix (all of them when prefix is empty) as one row per layer: the
// kernel family that executed it, run count, and the latency distribution.
func LayerTable(title string, s metrics.Snapshot, prefix string) *report.Table {
	t := report.NewTable(title,
		"layer", "kernel", "runs", "p50 ns", "mean ns", "max ns", "mean batch")
	for _, l := range s.Layers {
		if prefix != "" && !strings.HasPrefix(l.Name, prefix) {
			continue
		}
		t.AddRow(
			strings.TrimPrefix(l.Name, prefix),
			l.Kernel,
			report.Count(l.Latency.Count),
			report.Count(l.Latency.P50Ns),
			report.Count(l.Latency.MeanNs),
			report.Count(l.Latency.MaxNs),
			report.Num(l.MeanBatch),
		)
	}
	return t
}

// RegionTable renders the snapshot's fused-region series whose names start
// with prefix (all of them when prefix is empty) as one row per region: the
// scheduler's mode decision, live run/tile counters, the intermediate bytes
// it retained on-chip or spilled, and the modeled DRAM traffic with and
// without fusion. Empty snapshots (plans compiled without Options.Fuse)
// render a header-only table.
func RegionTable(title string, s metrics.Snapshot, prefix string) *report.Table {
	t := report.NewTable(title,
		"region", "mode", "runs", "tiles", "retained", "spilled",
		"fused dram", "unfused dram")
	for _, r := range s.Regions {
		if prefix != "" && !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		t.AddRow(
			strings.TrimPrefix(r.Name, prefix),
			r.Mode,
			report.Count(r.Runs),
			report.Count(r.Tiles),
			report.Bytes(r.RetainedBytes),
			report.Bytes(r.SpilledBytes),
			report.Bytes(r.FusedDRAMBytes),
			report.Bytes(r.UnfusedDRAMBytes),
		)
	}
	return t
}

// AutotuneTable renders the online tuner's per-layer state whose names start
// with prefix (all of them when prefix is empty): the implementation each
// tuned layer currently serves, how many executions the bandit routed, how
// many of those explored an alternate implementation, and how many
// promotions have landed. Untuned processes render a header-only table.
func AutotuneTable(title string, s metrics.Snapshot, prefix string) *report.Table {
	t := report.NewTable(title,
		"layer", "serving impl", "executions", "explorations", "promotions")
	for _, a := range s.Autotune {
		if prefix != "" && !strings.HasPrefix(a.Name, prefix) {
			continue
		}
		t.AddRow(
			strings.TrimPrefix(a.Name, prefix),
			a.Current,
			report.Count(a.Executions),
			report.Count(a.Explorations),
			report.Count(a.Promotions),
		)
	}
	return t
}

// PoolTable renders the worker-pool telemetry: where parallel-for blocks
// ran (helper goroutine, inline fallback, calling goroutine), helper spawn
// latency, and token occupancy at region entry.
func PoolTable(s metrics.Snapshot) *report.Table {
	t := report.NewTable("worker pool",
		"submitted", "helper", "inline", "caller", "mean spawn wait ns",
		"mean occupancy", "max occupancy")
	p := s.Pool
	t.AddRow(
		report.Count(p.Submitted),
		report.Count(p.HelperRuns),
		report.Count(p.InlineFallbacks),
		report.Count(p.CallerRuns),
		report.Count(p.MeanSpawnWaitNs),
		report.Num(p.MeanOccupancy),
		report.Count(p.MaxOccupancy),
	)
	return t
}

// EndpointTable renders the serving-endpoint telemetry: request admission
// outcomes, batch coalescing evidence (flush count and mean/max coalesced
// batch), admission-queue high water, sustained request rate, and the
// request latency distribution. Snapshots from processes that never served
// (no endpoints registered) render a header-only table.
func EndpointTable(title string, s metrics.Snapshot) *report.Table {
	t := report.NewTable(title,
		"endpoint", "requests", "errors", "429", "closed", "flushes",
		"mean batch", "max batch", "queue max", "qps",
		"p50 ns", "p99 ns", "max ns")
	for _, ep := range s.Endpoints {
		t.AddRow(
			ep.Name,
			report.Count(ep.Requests),
			report.Count(ep.Errors),
			report.Count(ep.RejectedOverload),
			report.Count(ep.RejectedClosed),
			report.Count(ep.Flushes),
			report.Num(ep.MeanBatch),
			report.Count(ep.MaxBatch),
			report.Count(ep.QueueMax),
			report.Num(ep.QPS),
			report.Count(ep.Latency.P50Ns),
			report.Count(ep.Latency.P99Ns),
			report.Count(ep.Latency.MaxNs),
		)
	}
	return t
}

// ModelTable renders the hot-swap registry's per-model rows: the serving
// version, completed swaps, the plan's attributable resident bytes after
// shared-dictionary interning (plus the bytes it references from programs
// another model owns), the warm executor pool size, and the model's
// serving-capacity density — QPS per GB of resident model bytes, computed
// from the model's endpoint series. Snapshots without a registry render a
// header-only table.
func ModelTable(title string, s metrics.Snapshot) *report.Table {
	eps := make(map[string]metrics.EndpointSnapshot, len(s.Endpoints))
	for _, ep := range s.Endpoints {
		eps[ep.Name] = ep
	}
	t := report.NewTable(title,
		"model", "version", "swaps", "resident", "shared refs", "pool", "qps", "qps/GB")
	for _, m := range s.Models {
		qps := eps[m.Name].QPS
		density := 0.0
		if m.ResidentBytes > 0 {
			density = qps / (float64(m.ResidentBytes) / 1e9)
		}
		t.AddRow(
			m.Name,
			report.Count(m.Version),
			report.Count(m.Swaps),
			report.Bytes(m.ResidentBytes),
			report.Bytes(m.SharedBytes),
			report.Count(m.PoolExecutors),
			report.Num(qps),
			report.Num(density),
		)
	}
	return t
}

// SharedDictTable renders the shared dictionary store's dedup gauges: how
// many encode results were interned, the program- and dictionary-level hit
// counts, and the byte ledger (unique resident vs saved by interning).
func SharedDictTable(s metrics.Snapshot) *report.Table {
	t := report.NewTable("shared dictionary store",
		"lookups", "program hits", "dict hits", "unique programs",
		"unique bytes", "saved bytes")
	if d := s.SharedDict; d != nil {
		t.AddRow(
			report.Count(d.Lookups),
			report.Count(d.ProgramHits),
			report.Count(d.DictHits),
			report.Count(d.UniquePrograms),
			report.Bytes(d.UniqueBytes),
			report.Bytes(d.SavedBytes),
		)
	}
	return t
}

// Capacity computes the snapshot's serving-capacity figure of merit:
// models × aggregate QPS per GB of total resident model bytes. Shared
// dictionaries raise it twice — once because each model's resident bytes
// shrink, once because more models fit the same GB. Returns 0 when the
// snapshot has no registry rows or no traffic.
func Capacity(s metrics.Snapshot) float64 {
	var resident int64
	var qps float64
	eps := make(map[string]metrics.EndpointSnapshot, len(s.Endpoints))
	for _, ep := range s.Endpoints {
		eps[ep.Name] = ep
	}
	for _, m := range s.Models {
		resident += m.ResidentBytes
		qps += eps[m.Name].QPS
	}
	if resident == 0 || qps == 0 {
		return 0
	}
	return float64(len(s.Models)) * qps / (float64(resident) / 1e9)
}

// ExecTable renders the executor/arena telemetry: pooling behavior, run
// counts, arena residency, the largest single plan arena built (the
// high-water mark the fused scheduler shrinks), and the kernel-scratch
// high-water mark.
func ExecTable(s metrics.Snapshot) *report.Table {
	t := report.NewTable("executors",
		"acquires", "reuses", "builds", "runs", "mean run ns",
		"arena resident", "arena peak", "scratch high water")
	e := s.Exec
	t.AddRow(
		report.Count(e.Acquires),
		report.Count(e.PoolReuses),
		report.Count(e.Builds),
		report.Count(e.Runs),
		report.Count(e.RunLatency.MeanNs),
		report.Bytes(e.ArenaBytesResident),
		report.Bytes(e.ArenaBytesPeak),
		report.Bytes(e.ScratchHighWater*4),
	)
	return t
}
