package obs

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runtime"
)

// TestMeterAndTables runs the LeNet-5 half of the evaluation set under the
// recorder and checks the snapshot reaches every table renderer: one row
// per layer with the forced kernel, populated pool telemetry (Meter's
// sharded run guarantees it even on one core), and executor stats.
func TestMeterAndTables(t *testing.T) {
	models := EvalModels()[:1] // lenet5 only; squeezenet compile is slow
	const runs = 2
	s, err := Meter(models, runtime.Options{Force: runtime.ImplIPE, Bits: 4}, runs)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Get() != nil {
		t.Error("Meter leaked an installed recorder")
	}
	if len(s.Layers) == 0 {
		t.Fatal("no layer series metered")
	}
	for _, l := range s.Layers {
		if !strings.HasPrefix(l.Name, "lenet5/") {
			t.Errorf("layer %q missing model prefix", l.Name)
		}
		if l.Latency.Count != runs+1 { // +1 for the sharded run
			t.Errorf("%s: %d samples, want %d", l.Name, l.Latency.Count, runs+1)
		}
	}
	if s.Pool.Submitted == 0 {
		t.Error("pool telemetry empty despite the forced sharded run")
	}
	if s.Exec.Runs != int64(runs+1) || s.Exec.Builds == 0 {
		t.Errorf("exec stats runs=%d builds=%d", s.Exec.Runs, s.Exec.Builds)
	}

	lt := LayerTable("lenet5", s, "lenet5/")
	if lt.NumRows() != len(s.Layers) {
		t.Errorf("layer table rows = %d, want %d", lt.NumRows(), len(s.Layers))
	}
	var sb strings.Builder
	lt.Fprint(&sb)
	if !strings.Contains(sb.String(), "ipe-compiled") {
		t.Errorf("layer table missing forced kernel column:\n%s", sb.String())
	}
	if PoolTable(s).NumRows() != 1 || ExecTable(s).NumRows() != 1 {
		t.Error("pool/exec tables must render exactly one row")
	}
}
