package conformance

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// Seed counts per case kind. Together they run well over 200 generated
// configurations through every registered implementation family (the
// acceptance bar for the differential harness).
const (
	convSeeds      = 80
	denseSeeds     = 70
	programSeeds   = 40
	graphSeeds     = 20
	sharedDictSeed = 10
)

func TestConvConformance(t *testing.T) {
	for seed := uint64(1); seed <= convSeeds; seed++ {
		if err := CheckConv(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDenseConformance(t *testing.T) {
	for seed := uint64(1); seed <= denseSeeds; seed++ {
		if err := CheckDense(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProgramConformance(t *testing.T) {
	for seed := uint64(1); seed <= programSeeds; seed++ {
		if err := CheckProgram(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("graph conformance compiles several plans per seed")
	}
	for seed := uint64(1); seed <= graphSeeds; seed++ {
		if err := CheckGraph(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSharedDictConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-dict conformance compiles several plans per seed")
	}
	for seed := uint64(1); seed <= sharedDictSeed; seed++ {
		if err := CheckSharedDict(seed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGeneratorDeterminism pins the reproduction contract: the same seed
// must rebuild bit-identical cases, and nearby seeds must not collide.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		a, b := GenConv(seed), GenConv(seed)
		if a.Spec != b.Spec || a.Bits != b.Bits || a.Scheme != b.Scheme ||
			a.Sparsity != b.Sparsity || a.Cfg != b.Cfg {
			t.Fatalf("seed %d: conv config not reproducible: %+v vs %+v", seed, a, b)
		}
		for _, pair := range [][2][]float32{
			{a.Input.Data(), b.Input.Data()},
			{a.Weight.Data(), b.Weight.Data()},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("seed %d: tensor sizes differ", seed)
			}
			for i := range pair[0] {
				if math.Float32bits(pair[0][i]) != math.Float32bits(pair[1][i]) {
					t.Fatalf("seed %d: tensor data not reproducible at %d", seed, i)
				}
			}
		}
		if (a.Bias == nil) != (b.Bias == nil) {
			t.Fatalf("seed %d: bias presence not reproducible", seed)
		}

		g1, g2 := GenGraph(seed), GenGraph(seed)
		if len(g1.Graph.Nodes) != len(g2.Graph.Nodes) {
			t.Fatalf("seed %d: graph node count not reproducible: %d vs %d",
				seed, len(g1.Graph.Nodes), len(g2.Graph.Nodes))
		}
		for i := range g1.Graph.Nodes {
			n1, n2 := g1.Graph.Nodes[i], g2.Graph.Nodes[i]
			if n1.Kind != n2.Kind || n1.Name != n2.Name || !n1.OutShape.Equal(n2.OutShape) {
				t.Fatalf("seed %d: graph node %d not reproducible: %s vs %s", seed, i, n1, n2)
			}
		}
	}
	a, b := GenConv(7), GenConv(8)
	if a.Spec == b.Spec && a.Bits == b.Bits && a.Cfg == b.Cfg &&
		len(a.Input.Data()) == len(b.Input.Data()) &&
		a.Input.Data()[0] == b.Input.Data()[0] {
		t.Fatal("adjacent seeds generated an identical conv case; generator is not consuming its RNG")
	}
}

// TestCheckDeterminism: re-running a check on the same seed must give the
// same verdict — that is what makes a printed seed a reproduction recipe.
func TestCheckDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		e1, e2 := CheckConv(seed), CheckConv(seed)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("seed %d: CheckConv verdict not reproducible: %v vs %v", seed, e1, e2)
		}
		if e1 != nil && e1.Error() != e2.Error() {
			t.Fatalf("seed %d: CheckConv error not reproducible:\n%v\n%v", seed, e1, e2)
		}
	}
}

// TestDivergenceReportsSeedAndBothValues pins the failure-report format:
// the seed, the element index, and both values must all be present, because
// the seed alone is the reproduction recipe.
func TestDivergenceReportsSeedAndBothValues(t *testing.T) {
	err := checkExact(12345, "impl-a", "impl-b", []float32{1, 2.5}, []float32{1, 3.25})
	if err == nil {
		t.Fatal("expected a divergence")
	}
	msg := err.Error()
	for _, want := range []string{"seed 12345", "element 1", "2.5", "3.25", "impl-a", "impl-b"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("divergence message %q missing %q", msg, want)
		}
	}

	// NaNs must never compare equal, even to themselves.
	nan := float32(math.NaN())
	if err := checkClose(1, "nan-impl", []float32{nan}, []float64{0}, []float64{1}); err == nil {
		t.Fatal("checkClose accepted a NaN")
	}
}

// TestToleranceRejectsRealErrors: the magnitude-scaled tolerance must stay
// tight enough to catch an off-by-one-element indexing bug.
func TestToleranceRejectsRealErrors(t *testing.T) {
	got := []float32{1.0, 2.0}
	ref := []float64{1.0, 2.0}
	mag := []float64{3.0, 3.0}
	if err := checkClose(1, "ok", got, ref, mag); err != nil {
		t.Fatalf("identical values rejected: %v", err)
	}
	got[1] = 2.1 // 5% off a Σ|wx|=3 element: far beyond any rounding noise
	if err := checkClose(1, "bad", got, ref, mag); err == nil {
		t.Fatal("a 0.1 absolute error on a magnitude-3 element passed the tolerance")
	}
}

func ExampleCheckConv() {
	// A failure prints the seed first; rerunning Check*(seed) rebuilds the
	// identical case.
	if err := CheckConv(3); err != nil {
		fmt.Println(err)
	} else {
		fmt.Println("seed 3 conforms")
	}
	// Output: seed 3 conforms
}
