package conformance

import "testing"

// Fuzz targets feed generator seeds through the differential driver: the
// fuzzer explores the configuration space (shapes, strides, padding,
// bit-widths, sparsity, encoder settings) by exploring seeds. Any reported
// crasher input IS the reproduction seed.

func FuzzConformanceConv(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckConv(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzConformanceDense(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckDense(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzConformanceProgram(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckProgram(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzConformanceGraph(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckGraph(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzConformanceSharedDict(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckSharedDict(seed); err != nil {
			t.Fatal(err)
		}
	})
}
