package conformance

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/tensor"
)

// The reference interpreter. Everything here is written for obviousness,
// not speed: straight nested loops, float64 accumulators, one allocation
// per result, no scratch buffers, no parallelism. Each Ref* function also
// returns a per-element magnitude bound (the sum of absolute values of
// every contribution), which calibrates the tolerance a float32
// implementation is held to.

// RefConv2D computes a grouped 2-D convolution in float64.
// in is NCHW [n, inC, h, w]; weight is OIHW; bias is nil or [outC].
// It returns the [n, outC, oh, ow] output flattened row-major, and the
// matching magnitude bound |bias| + Σ|w·x| per element.
func RefConv2D(in, weight, bias *tensor.Tensor, spec tensor.ConvSpec) (out, mag []float64) {
	spec = spec.Normalize()
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	ind, wd := in.Data(), weight.Data()
	out = make([]float64, n*spec.OutC*oh*ow)
	mag = make([]float64, len(out))
	for b := 0; b < n; b++ {
		for oc := 0; oc < spec.OutC; oc++ {
			g := oc / ocg
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc, bound float64
					if bias != nil {
						acc = float64(bias.Data()[oc])
						bound = math.Abs(acc)
					}
					for ic := 0; ic < icg; ic++ {
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*spec.StrideH - spec.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*spec.StrideW - spec.PadW + kx
								if ix < 0 || ix >= w {
									continue
								}
								x := float64(ind[((b*spec.InC+g*icg+ic)*h+iy)*w+ix])
								wv := float64(wd[((oc*icg+ic)*spec.KH+ky)*spec.KW+kx])
								acc += wv * x
								bound += math.Abs(wv * x)
							}
						}
					}
					idx := ((b*spec.OutC+oc)*oh+oy)*ow + ox
					out[idx] = acc
					mag[idx] = bound
				}
			}
		}
	}
	return out, mag
}

// RefDense computes a fully connected layer in float64.
// in is [n, k]; weight is [m, k]; bias is nil or [m]. The result is the
// [n, m] output flattened row-major plus its magnitude bound.
func RefDense(in, weight, bias *tensor.Tensor) (out, mag []float64) {
	n, k := in.Dim(0), in.Dim(1)
	m := weight.Dim(0)
	ind, wd := in.Data(), weight.Data()
	out = make([]float64, n*m)
	mag = make([]float64, len(out))
	for b := 0; b < n; b++ {
		for i := 0; i < m; i++ {
			var acc, bound float64
			if bias != nil {
				acc = float64(bias.Data()[i])
				bound = math.Abs(acc)
			}
			for j := 0; j < k; j++ {
				wv := float64(wd[i*k+j])
				x := float64(ind[b*k+j])
				acc += wv * x
				bound += math.Abs(wv * x)
			}
			out[b*m+i] = acc
			mag[b*m+i] = bound
		}
	}
	return out, mag
}

// RefMatMul computes dst[r, j] = Σ_c w[r, c]·b[c, j] in float64 for a dense
// [m, k] matrix against a [k, p] column matrix, with the magnitude bound.
func RefMatMul(w, b []float32, m, k, p int) (out, mag []float64) {
	out = make([]float64, m*p)
	mag = make([]float64, len(out))
	for r := 0; r < m; r++ {
		for j := 0; j < p; j++ {
			var acc, bound float64
			for c := 0; c < k; c++ {
				wv := float64(w[r*k+c])
				x := float64(b[c*p+j])
				acc += wv * x
				bound += math.Abs(wv * x)
			}
			out[r*p+j] = acc
			mag[r*p+j] = bound
		}
	}
	return out, mag
}

// RefProgramWeights reconstructs the dense [M, K] float coefficient matrix
// an encoded program evaluates with: Decode gives the integer code of every
// (row, column) slot, and the row's term list maps each code to the exact
// float32 Value the float execution path multiplies by. The reconstruction
// uses the program's own Values, so Execute on the result is the same
// arithmetic the program performs, reassociated.
func RefProgramWeights(p *ipe.Program) ([]float32, error) {
	codes, err := p.Decode()
	if err != nil {
		return nil, err
	}
	w := make([]float32, p.M*p.K)
	for r := 0; r < p.M; r++ {
		val := make(map[int32]float32, len(p.Rows[r].Terms))
		for _, t := range p.Rows[r].Terms {
			val[t.Code] = t.Value
		}
		for c := 0; c < p.K; c++ {
			code := codes[r*p.K+c]
			if code == 0 {
				continue
			}
			v, ok := val[code]
			if !ok {
				return nil, fmt.Errorf("conformance: program row %d decodes code %d with no matching term", r, code)
			}
			w[r*p.K+c] = v
		}
	}
	return w, nil
}

// RefProgramInt computes the exact integer product y[r] = Σ_c codes[r, c]·x[c]
// over a decoded [m, k] code matrix — the straight-loop equivalent of
// Program.ExecuteInt, equal by associativity of int64 addition.
func RefProgramInt(codes []int32, m, k int, x []int32) []int64 {
	y := make([]int64, m)
	for r := 0; r < m; r++ {
		var acc int64
		for c := 0; c < k; c++ {
			acc += int64(codes[r*k+c]) * int64(x[c])
		}
		y[r] = acc
	}
	return y
}

// refSqrt32 replicates tensor.BatchNorm's sqrt32 bit for bit (Newton from a
// seed of x itself, which does not fully converge for small x) so the graph
// reference computes the same per-channel scale the kernels do.
func refSqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	z := 0.5 * (float64(x) + 1)
	z = 0.5 * (z + float64(x)/z)
	z = 0.5 * (z + float64(x)/z)
	z = 0.5 * (z + float64(x)/z)
	return float32(z)
}

// RefGraph evaluates a whole graph with the reference layer math. Each
// node's output is computed with float64 accumulation and rounded to
// float32 at the node boundary, mirroring how the real executors hand
// float32 activations between layers. overrides maps node IDs to
// replacement weight tensors for conv/dense nodes (used to evaluate a
// compiled plan's quantized layers on their dequantized weights); pass nil
// to use each node's own parameters. FusedReLU attributes are honored.
func RefGraph(g *graph.Graph, input *tensor.Tensor, overrides map[int]*tensor.Tensor) ([]float64, error) {
	if !input.Shape().Equal(g.In.OutShape) {
		return nil, fmt.Errorf("conformance: input shape %v != declared %v", input.Shape(), g.In.OutShape)
	}
	weightOf := func(n *graph.Node) *tensor.Tensor {
		if w, ok := overrides[n.ID]; ok {
			return w
		}
		return n.Param("weight")
	}
	vals := make(map[*graph.Node]*tensor.Tensor)
	vals[g.In] = input
	for _, n := range g.Topo() {
		var out []float64
		switch n.Kind {
		case graph.OpInput:
			continue
		case graph.OpConst:
			vals[n] = n.Value
			continue
		case graph.OpConv:
			out, _ = RefConv2D(vals[n.Inputs[0]], weightOf(n), n.Param("bias"), n.Attrs.Conv)
		case graph.OpDense:
			out, _ = RefDense(vals[n.Inputs[0]], weightOf(n), n.Param("bias"))
		case graph.OpBatchNorm:
			out = refBatchNorm(vals[n.Inputs[0]], n)
		case graph.OpReLU:
			in := vals[n.Inputs[0]].Data()
			out = make([]float64, len(in))
			for i, v := range in {
				if v > 0 {
					out[i] = float64(v)
				}
			}
		case graph.OpMaxPool:
			out = refMaxPool(vals[n.Inputs[0]], n.Attrs.Pool)
		case graph.OpAvgPool:
			out = refAvgPool(vals[n.Inputs[0]], n.Attrs.Pool)
		case graph.OpGlobalAvgPool:
			out = refGlobalAvgPool(vals[n.Inputs[0]])
		case graph.OpAdd:
			a, b := vals[n.Inputs[0]].Data(), vals[n.Inputs[1]].Data()
			out = make([]float64, len(a))
			for i := range a {
				out[i] = float64(a[i]) + float64(b[i])
			}
		case graph.OpFlatten:
			in := vals[n.Inputs[0]].Data()
			out = make([]float64, len(in))
			for i, v := range in {
				out[i] = float64(v)
			}
		case graph.OpSoftmax:
			out = refSoftmax(vals[n.Inputs[0]])
		case graph.OpConcat:
			out = refConcat(n, vals)
		default:
			return nil, fmt.Errorf("conformance: reference has no rule for %s", n)
		}
		if n.Attrs.FusedReLU {
			for i, v := range out {
				if v < 0 {
					out[i] = 0
				}
			}
		}
		if n == g.Out {
			return out, nil
		}
		// Round to float32 at the node boundary: real executors hand
		// float32 activations between layers, and the tolerance model
		// compares per node, not per accumulated float64 chain.
		t := tensor.New(n.OutShape...)
		d := t.Data()
		if len(d) != len(out) {
			return nil, fmt.Errorf("conformance: %s produced %d elements, shape %v wants %d",
				n, len(out), n.OutShape, len(d))
		}
		for i, v := range out {
			d[i] = float32(v)
		}
		vals[n] = t
	}
	return nil, fmt.Errorf("conformance: graph output %s was never reached", g.Out)
}

func refBatchNorm(in *tensor.Tensor, n *graph.Node) []float64 {
	c, hw := in.Dim(1), in.Dim(2)*in.Dim(3)
	batches := in.Dim(0)
	g := n.Param("gamma").Data()
	bt := n.Param("beta").Data()
	mu := n.Param("mean").Data()
	va := n.Param("var").Data()
	ind := in.Data()
	out := make([]float64, len(ind))
	for b := 0; b < batches; b++ {
		for ch := 0; ch < c; ch++ {
			// Scale and shift are computed in float32 exactly as the kernel
			// does (including its Newton sqrt); only the elementwise apply
			// runs in float64.
			scale := g[ch] / refSqrt32(va[ch]+n.Attrs.Eps)
			shift := bt[ch] - mu[ch]*scale
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				out[base+i] = float64(ind[base+i])*float64(scale) + float64(shift)
			}
		}
	}
	return out
}

func refMaxPool(in *tensor.Tensor, p graph.PoolAttrs) []float64 {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*p.PadH-p.KH)/p.StrideH + 1
	ow := (w+2*p.PadW-p.KW)/p.StrideW + 1
	ind := in.Data()
	out := make([]float64, n*c*oh*ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := 0.0
					first := true
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := float64(ind[base+iy*w+ix])
							if first || v > best {
								best = v
								first = false
							}
						}
					}
					out[((b*c+ch)*oh+oy)*ow+ox] = best
				}
			}
		}
	}
	return out
}

func refAvgPool(in *tensor.Tensor, p graph.PoolAttrs) []float64 {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*p.PadH-p.KH)/p.StrideH + 1
	ow := (w+2*p.PadW-p.KW)/p.StrideW + 1
	ind := in.Data()
	out := make([]float64, n*c*oh*ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float64
					cnt := 0
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += float64(ind[base+iy*w+ix])
							cnt++
						}
					}
					var v float64
					if cnt > 0 {
						v = sum / float64(cnt)
					}
					out[((b*c+ch)*oh+oy)*ow+ox] = v
				}
			}
		}
	}
	return out
}

func refGlobalAvgPool(in *tensor.Tensor) []float64 {
	n, c, hw := in.Dim(0), in.Dim(1), in.Dim(2)*in.Dim(3)
	ind := in.Data()
	out := make([]float64, n*c)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			var s float64
			for i := 0; i < hw; i++ {
				s += float64(ind[base+i])
			}
			out[b*c+ch] = s / float64(hw)
		}
	}
	return out
}

func refSoftmax(in *tensor.Tensor) []float64 {
	n, k := in.Dim(0), in.Dim(1)
	ind := in.Data()
	out := make([]float64, n*k)
	for b := 0; b < n; b++ {
		row := ind[b*k : (b+1)*k]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			out[b*k+i] = e
			sum += e
		}
		for i := 0; i < k; i++ {
			out[b*k+i] /= sum
		}
	}
	return out
}

func refConcat(n *graph.Node, vals map[*graph.Node]*tensor.Tensor) []float64 {
	batches := vals[n.Inputs[0]].Dim(0)
	h, w := vals[n.Inputs[0]].Dim(2), vals[n.Inputs[0]].Dim(3)
	totalC := 0
	for _, in := range n.Inputs {
		totalC += vals[in].Dim(1)
	}
	out := make([]float64, batches*totalC*h*w)
	for b := 0; b < batches; b++ {
		off := 0
		for _, in := range n.Inputs {
			t := vals[in]
			c := t.Dim(1)
			src := t.Data()[b*c*h*w : (b+1)*c*h*w]
			dst := out[(b*totalC+off)*h*w:]
			for i, v := range src {
				dst[i] = float64(v)
			}
			off += c
		}
	}
	return out
}
