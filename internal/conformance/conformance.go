// Package conformance is the differential-testing backbone of the
// reproduction: one deliberately slow, obviously-correct reference
// interpreter (straight-line loops, float64 accumulation, no
// scratch/arena/pool machinery), a seeded randomized generator of layer
// configurations and small model graphs, and a driver that runs every
// registered implementation — ipe float/int, baseline
// CSR/factorized/Winograd, tensor direct/im2col, and the runtime Executor's
// Run and RunBatch, each serially and sharded — against the reference and
// against each other.
//
// Correctness contract:
//
//   - Variants within one implementation family (alloc / Into / IntoPar at
//     any shard count, Executor at any parallelism, RunBatch chunks vs
//     single runs) must be bit-identical; the repo's sharded kernels
//     guarantee shard-count-invariant accumulation order and this package
//     enforces it bitwise.
//   - Integer paths (ExecuteInt, ForwardInt8, ExecuteQuantized[Asym]) must
//     match a straight-loop integer reference exactly (int64 addition is
//     associative), including the float requantization tail, replicated
//     operation for operation.
//   - Across families, float outputs must agree with the float64 reference
//     within a per-element tolerance scaled by the reference's magnitude
//     bound Σ|w·x|+|bias| (different families accumulate in different
//     orders, so bitwise equality across families is not defined).
//
// Every failure message leads with the generator seed; Check*(seed)
// rebuilds the identical case from that seed alone, so a CI failure line is
// a complete reproduction recipe.
//
// To plug a new kernel in, register it in its package's enumeration shim
// (tensor.ConvImpls / ipe.ConvVariants / baseline.CSRConvVariants /
// graph.ExecVariants / runtime.ForceableImpls and friends) — the driver
// picks registered variants up without changes here. A kernel is considered
// correct only once this package exercises it.
package conformance

import (
	"fmt"
	"math"
)

const (
	// refSlack scales the reference's per-element magnitude bound into the
	// tolerance for a float32 implementation: the bound sums |w·x|, so
	// slack·bound dominates any accumulation-order difference by orders of
	// magnitude while still catching real indexing or scaling bugs.
	refSlack = 1e-3
	// refFloor is the absolute tolerance floor for elements whose
	// magnitude bound is tiny.
	refFloor = 1e-5
	// graphSlack scales the whole-graph tolerance: multi-layer error
	// compounds, so graph outputs get a global bound relative to the
	// largest reference magnitude.
	graphSlack = 2e-3
)

// divergence formats the canonical failure report: the seed rebuilds the
// case, the index locates the first divergent element, and both values are
// printed in full precision.
func divergence(seed uint64, path, ref string, idx int, got, want, tol float64) error {
	return fmt.Errorf("conformance: seed %d: %s diverges from %s at element %d: got %v, want %v (tol %v)",
		seed, path, ref, idx, got, want, tol)
}

// checkExact requires got and want to be bitwise identical float32 slices
// (variants of one family share an accumulation order, so anything short of
// bit equality is a real divergence).
func checkExact(seed uint64, path, ref string, got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("conformance: seed %d: %s has %d elements, %s has %d",
			seed, path, len(got), ref, len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			return divergence(seed, path, ref, i, float64(got[i]), float64(want[i]), 0)
		}
	}
	return nil
}

// checkExactInt requires two int64 slices to be identical.
func checkExactInt(seed uint64, path, ref string, got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("conformance: seed %d: %s has %d elements, %s has %d",
			seed, path, len(got), ref, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return divergence(seed, path, ref, i, float64(got[i]), float64(want[i]), 0)
		}
	}
	return nil
}

// checkClose compares a float32 implementation output against the float64
// reference with the per-element magnitude-scaled tolerance. NaNs always
// diverge.
func checkClose(seed uint64, path string, got []float32, ref, mag []float64) error {
	if len(got) != len(ref) {
		return fmt.Errorf("conformance: seed %d: %s has %d elements, reference has %d",
			seed, path, len(got), len(ref))
	}
	for i := range got {
		tol := refSlack*mag[i] + refFloor
		d := math.Abs(float64(got[i]) - ref[i])
		if !(d <= tol) { // NaN comparison fails, which is what we want
			return divergence(seed, path, "reference", i, float64(got[i]), ref[i], tol)
		}
	}
	return nil
}

// checkGraphClose compares a whole-graph float32 output against the
// float64 graph reference with a global tolerance scaled by the largest
// reference magnitude (per-element magnitude bounds are not propagated
// through multi-layer graphs).
func checkGraphClose(seed uint64, path string, got []float32, ref []float64) error {
	if len(got) != len(ref) {
		return fmt.Errorf("conformance: seed %d: %s has %d elements, reference has %d",
			seed, path, len(got), len(ref))
	}
	scale := 1.0
	for _, v := range ref {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	tol := graphSlack * scale
	for i := range got {
		d := math.Abs(float64(got[i]) - ref[i])
		if !(d <= tol) {
			return divergence(seed, path, "graph reference", i, float64(got[i]), ref[i], tol)
		}
	}
	return nil
}
