package conformance

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// The case generator. Every Gen* function is a pure function of its seed
// (one tensor.RNG, consumed in a fixed order), so the seed printed in a
// failure message is a complete reproduction recipe. The distributions are
// deliberately edge-heavy: 1×1 kernels, strides larger than the kernel,
// single channels, batch 1, nil biases, 2–8 bit weights, both quantization
// schemes, heavy sparsity, grouped and depthwise convolutions.

// ConvCase is one generated convolution layer configuration plus data.
type ConvCase struct {
	Seed     uint64
	Spec     tensor.ConvSpec
	Input    *tensor.Tensor // NCHW
	Weight   *tensor.Tensor // OIHW
	Bias     *tensor.Tensor // nil or [outC]
	Bits     int
	Scheme   quant.Scheme
	Sparsity float64
	Cfg      ipe.Config
}

// DenseCase is one generated fully connected layer configuration.
type DenseCase struct {
	Seed     uint64
	Input    *tensor.Tensor // [n, k]
	Weight   *tensor.Tensor // [m, k]
	Bias     *tensor.Tensor // nil or [m]
	Bits     int
	Scheme   quant.Scheme
	Sparsity float64
	Cfg      ipe.Config
}

// ProgramCase is one generated raw weight matrix with vector, matrix, and
// integer inputs for exercising Program execution paths directly.
type ProgramCase struct {
	Seed     uint64
	M, K, P  int
	Weight   *tensor.Tensor // [m, k]
	Bits     int
	Scheme   quant.Scheme
	Sparsity float64
	Cfg      ipe.Config
	X        []float32 // [k] vector input
	Cols     []float32 // [k, p] column-matrix input
	XInt     []int32   // [k] integer activation codes
}

// GraphCase is one generated small model graph with an input batch.
type GraphCase struct {
	Seed  uint64
	Graph *graph.Graph
	Input *tensor.Tensor
}

func pickInt(r *tensor.RNG, choices ...int) int {
	return choices[r.Intn(len(choices))]
}

func genCommon(r *tensor.RNG) (bits int, scheme quant.Scheme, sparsity float64, cfg ipe.Config) {
	bits = 2 + r.Intn(7) // 2..8
	scheme = quant.PerTensor
	if r.Intn(2) == 1 {
		scheme = quant.PerChannel
	}
	sparsity = []float64{0, 0, 0.3, 0.7, 0.9}[r.Intn(5)]
	cfg = ipe.DefaultConfig()
	cfg.MaxDict = pickInt(r, 0, 64, 4096)
	cfg.MaxDepth = pickInt(r, 2, 8)
	cfg.TileSize = pickInt(r, 0, 16, 256)
	if r.Intn(3) == 0 {
		cfg.Policy = ipe.PolicyGreedy
	}
	if r.Intn(4) == 0 {
		cfg.MinPairCount = 3
	}
	return bits, scheme, sparsity, cfg
}

func genWeight(r *tensor.RNG, sparsity float64, dims ...int) *tensor.Tensor {
	w := tensor.New(dims...)
	fanIn := 1
	for _, d := range dims[1:] {
		fanIn *= d
	}
	tensor.FillGaussian(w, r, tensor.KaimingStd(fanIn))
	if sparsity > 0 {
		quant.PruneMagnitude(w, sparsity)
	}
	return w
}

func genBias(r *tensor.RNG, n int) *tensor.Tensor {
	if r.Intn(3) == 0 {
		return nil
	}
	b := tensor.New(n)
	tensor.FillUniform(b, r, -0.5, 0.5)
	return b
}

// GenConv generates a convolution case from the seed alone.
func GenConv(seed uint64) ConvCase {
	r := tensor.NewRNG(seed)
	spec := tensor.ConvSpec{
		KH:      pickInt(r, 1, 1, 2, 3, 3),
		KW:      pickInt(r, 1, 2, 3),
		StrideH: pickInt(r, 1, 1, 1, 2, 3),
		StrideW: pickInt(r, 1, 1, 2),
		PadH:    pickInt(r, 0, 0, 1, 2),
		PadW:    pickInt(r, 0, 1),
		Groups:  1,
	}
	switch r.Intn(6) {
	case 0: // depthwise: groups == inC == outC
		c := 1 + r.Intn(4)
		spec.Groups, spec.InC, spec.OutC = c, c, c
	case 1: // grouped
		spec.Groups = 2
		spec.InC = 2 * (1 + r.Intn(3))
		spec.OutC = 2 * (1 + r.Intn(3))
	default: // dense, single-channel-heavy
		spec.InC = pickInt(r, 1, 1, 2, 3, 4)
		spec.OutC = pickInt(r, 1, 2, 3, 5)
	}
	n := pickInt(r, 1, 1, 1, 2, 3)
	h := spec.KH + r.Intn(7)
	w := spec.KW + r.Intn(7)
	bits, scheme, sparsity, cfg := genCommon(r)
	weight := genWeight(r, sparsity, spec.WeightShape()...)
	bias := genBias(r, spec.OutC)
	in := tensor.New(n, spec.InC, h, w)
	tensor.FillGaussian(in, r, 1)
	return ConvCase{Seed: seed, Spec: spec, Input: in, Weight: weight, Bias: bias,
		Bits: bits, Scheme: scheme, Sparsity: sparsity, Cfg: cfg}
}

// GenDense generates a fully connected case from the seed alone.
func GenDense(seed uint64) DenseCase {
	r := tensor.NewRNG(seed)
	n := pickInt(r, 1, 1, 2, 3)
	k := pickInt(r, 1, 2, 7, 16, 24, 40)
	m := pickInt(r, 1, 2, 5, 10, 16)
	bits, scheme, sparsity, cfg := genCommon(r)
	weight := genWeight(r, sparsity, m, k)
	bias := genBias(r, m)
	in := tensor.New(n, k)
	tensor.FillGaussian(in, r, 1)
	return DenseCase{Seed: seed, Input: in, Weight: weight, Bias: bias,
		Bits: bits, Scheme: scheme, Sparsity: sparsity, Cfg: cfg}
}

// GenProgram generates a raw weight matrix case from the seed alone. P is
// chosen to land below, at, and across the matrix executor's column block
// size (64).
func GenProgram(seed uint64) ProgramCase {
	r := tensor.NewRNG(seed)
	m := pickInt(r, 1, 2, 5, 9, 16)
	k := pickInt(r, 1, 3, 8, 17, 32)
	p := pickInt(r, 1, 3, 63, 64, 65, 130)
	bits, scheme, sparsity, cfg := genCommon(r)
	weight := genWeight(r, sparsity, m, k)
	x := make([]float32, k)
	cols := make([]float32, k*p)
	xi := make([]int32, k)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	for i := range cols {
		cols[i] = float32(r.NormFloat64())
	}
	// Integer activations in the 8-bit symmetric code range the quantized
	// path produces.
	for i := range xi {
		xi[i] = int32(r.Intn(255)) - 127
	}
	return ProgramCase{Seed: seed, M: m, K: k, P: p, Weight: weight,
		Bits: bits, Scheme: scheme, Sparsity: sparsity, Cfg: cfg,
		X: x, Cols: cols, XInt: xi}
}

// GenGraph generates a small model graph (conv blocks with optional batch
// norm, ReLU, pooling, residual add, and concat, ending in a classifier
// head) plus a matching input batch, from the seed alone. The generated
// graph always passes InferShapes; a failure there is a generator bug and
// panics.
func GenGraph(seed uint64) GraphCase {
	r := tensor.NewRNG(seed)
	n := pickInt(r, 1, 1, 2)
	c := pickInt(r, 1, 2, 3)
	h := 7 + r.Intn(6)
	w := 7 + r.Intn(6)
	g := graph.New("conformance", n, c, h, w)
	x := g.In

	blocks := 1 + r.Intn(3)
	for b := 0; b < blocks; b++ {
		outC := pickInt(r, 2, 3, 4, 6)
		switch r.Intn(5) {
		case 0: // residual block: 3×3 stride-1 pad-1 conv keeps the shape
			spec := tensor.ConvSpec{InC: c, OutC: c, KH: 3, KW: 3,
				StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
			conv := g.Conv(x, fmt.Sprintf("res%d", b), spec,
				genWeight(r, 0, spec.WeightShape()...), genBias(r, c))
			x = g.Add(conv, x, fmt.Sprintf("add%d", b))
			outC = c
		case 1: // concat of two 1×1 convs
			var parts []*graph.Node
			for p := 0; p < 2; p++ {
				spec := tensor.ConvSpec{InC: c, OutC: (outC + 1) / 2, KH: 1, KW: 1,
					StrideH: 1, StrideW: 1, Groups: 1}
				parts = append(parts, g.Conv(x, fmt.Sprintf("br%d_%d", b, p), spec,
					genWeight(r, 0, spec.WeightShape()...), genBias(r, spec.OutC)))
			}
			x = g.Concat(fmt.Sprintf("cat%d", b), parts...)
			outC = 2 * ((outC + 1) / 2)
		default: // plain conv
			kh := pickInt(r, 1, 3, 3)
			stride := 1
			if kh <= h && kh <= w && r.Intn(3) == 0 {
				stride = 2
			}
			pad := 0
			if kh == 3 {
				pad = 1
			}
			spec := tensor.ConvSpec{InC: c, OutC: outC, KH: kh, KW: kh,
				StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: 1}
			x = g.Conv(x, fmt.Sprintf("conv%d", b), spec,
				genWeight(r, 0, spec.WeightShape()...), genBias(r, outC))
			h, w = spec.OutDims(h, w)
		}
		c = outC
		if r.Intn(2) == 0 {
			gamma, beta, mean, va := tensor.New(c), tensor.New(c), tensor.New(c), tensor.New(c)
			tensor.FillUniform(gamma, r, 0.5, 1.5)
			tensor.FillUniform(beta, r, -0.5, 0.5)
			tensor.FillUniform(mean, r, -0.5, 0.5)
			tensor.FillUniform(va, r, 0.5, 2)
			x = g.BatchNorm(x, fmt.Sprintf("bn%d", b), gamma, beta, mean, va, 1e-5)
		}
		if r.Intn(3) != 0 {
			x = g.ReLU(x, fmt.Sprintf("relu%d", b))
		}
		if h >= 4 && w >= 4 && r.Intn(2) == 0 {
			p := graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2}
			if r.Intn(2) == 0 {
				x = g.MaxPool(x, fmt.Sprintf("max%d", b), p)
			} else {
				x = g.AvgPool(x, fmt.Sprintf("avg%d", b), p)
			}
			h, w = h/2, w/2
		}
	}

	classes := pickInt(r, 2, 4, 10)
	var feats int
	if r.Intn(2) == 0 {
		x = g.GlobalAvgPool(x, "gap")
		x = g.Flatten(x, "flat")
		feats = c
	} else {
		x = g.Flatten(x, "flat")
		feats = c * h * w
	}
	x = g.Dense(x, "fc", genWeight(r, 0, classes, feats), genBias(r, classes))
	if r.Intn(2) == 0 {
		x = g.Softmax(x, "softmax")
	}
	g.SetOutput(x)
	if err := g.InferShapes(); err != nil {
		panic(fmt.Sprintf("conformance: GenGraph(%d) built an invalid graph: %v", seed, err))
	}

	in := tensor.New(g.In.OutShape...)
	tensor.FillGaussian(in, r, 1)
	return GraphCase{Seed: seed, Graph: g, Input: in}
}
