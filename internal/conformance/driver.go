package conformance

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// The differential driver. Each Check*(seed) rebuilds the generated case
// from its seed, runs every registered implementation family, and enforces
// the correctness contract: first variant of a family against the float64
// reference (tolerance), every other variant of the family against the
// first (bitwise), integer paths against the straight-loop integer
// reference (exact).

// serialPar returns the one-shard parallelism context used for variants
// that require a non-nil *tensor.Par but should run serially.
func serialPar() *tensor.Par { return tensor.NewPar(parallel.Shared(), 1) }

// pars returns the shard counts every sharded variant runs under: serial,
// a shard count that does not divide typical unit counts, and the
// GOMAXPROCS default.
func pars() []*tensor.Par {
	return []*tensor.Par{
		tensor.NewPar(parallel.Shared(), 1),
		tensor.NewPar(parallel.Shared(), 3),
		tensor.NewPar(parallel.Shared(), 0),
	}
}

// familyRun is one concrete execution: a variant of a family, adapted to
// write its result into a flat float32 buffer.
type familyRun struct {
	name    string
	usesPar bool
	f       func(dst []float32, par *tensor.Par)
}

// driveFamily runs a family's variants (sharded ones at every shard count),
// checks the first run against the float64 reference within tolerance, and
// every subsequent run bitwise against the first.
func driveFamily(seed uint64, family string, size int, refOut, refMag []float64, runs []familyRun) error {
	var first []float32
	var firstName string
	for _, v := range runs {
		ps := []*tensor.Par{serialPar()}
		if v.usesPar {
			ps = pars()
		}
		for _, p := range ps {
			name := family + "/" + v.name
			if v.usesPar {
				name = fmt.Sprintf("%s[shards=%d]", name, p.Shards())
			}
			dst := make([]float32, size)
			v.f(dst, p)
			if first == nil {
				if err := checkClose(seed, name, dst, refOut, refMag); err != nil {
					return err
				}
				first, firstName = dst, name
				continue
			}
			if err := checkExact(seed, name, firstName, dst, first); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckConv rebuilds the convolution case for seed and cross-checks every
// convolution family: tensor direct and im2col on the float weights;
// baseline CSR, factorized, and (when the spec allows) Winograd; both IPE
// encoders' float paths on their dequantized weights; and the IPE integer
// path against a bitwise replication over decoded codes.
func CheckConv(seed uint64) error {
	cs := GenConv(seed)
	spec := cs.Spec.Normalize()
	n, h, w := cs.Input.Dim(0), cs.Input.Dim(2), cs.Input.Dim(3)
	oh, ow := spec.OutDims(h, w)
	size := n * spec.OutC * oh * ow
	outShape := []int{n, spec.OutC, oh, ow}

	// Float-weight families: tensor kernels and, for 3×3 stride-1 dense
	// specs, Winograd.
	refOut, refMag := RefConv2D(cs.Input, cs.Weight, cs.Bias, spec)
	for _, impl := range tensor.ConvImpls() {
		var runs []familyRun
		for _, v := range impl.Variants {
			v := v
			runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
				f: func(dst []float32, par *tensor.Par) {
					v.F(tensor.From(dst, outShape...), cs.Input, cs.Weight, cs.Bias, spec, par)
				}})
		}
		if err := driveFamily(seed, impl.Family, size, refOut, refMag, runs); err != nil {
			return err
		}
	}
	if spec.KH == 3 && spec.KW == 3 && spec.StrideH == 1 && spec.StrideW == 1 && spec.Groups == 1 {
		l, err := baseline.NewConvWinograd(cs.Weight, cs.Bias, spec)
		if err != nil {
			return fmt.Errorf("conformance: seed %d: NewConvWinograd: %w", seed, err)
		}
		var runs []familyRun
		for _, v := range baseline.WinogradVariants() {
			v := v
			runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
				f: func(dst []float32, par *tensor.Par) {
					v.F(l, tensor.From(dst, outShape...), cs.Input, par)
				}})
		}
		if err := driveFamily(seed, "winograd", size, refOut, refMag, runs); err != nil {
			return err
		}
	}

	// Quantized families run on their dequantized weights, so each gets an
	// oracle built from the weights it actually computes with.
	csr, err := baseline.NewConvCSR(cs.Weight, cs.Bias, spec, cs.Bits, cs.Scheme)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: NewConvCSR: %w", seed, err)
	}
	qOut, qMag := RefConv2D(cs.Input, csr.Quant.Dequantize(), cs.Bias, spec)
	var runs []familyRun
	for _, v := range baseline.CSRConvVariants() {
		v := v
		runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
			f: func(dst []float32, par *tensor.Par) {
				v.F(csr, tensor.From(dst, outShape...), cs.Input, par)
			}})
	}
	if err := driveFamily(seed, "csr-conv", size, qOut, qMag, runs); err != nil {
		return err
	}

	fact, err := baseline.NewConvFactorized(cs.Weight, cs.Bias, spec, cs.Bits, cs.Scheme)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: NewConvFactorized: %w", seed, err)
	}
	runs = nil
	for _, v := range baseline.FactConvVariants() {
		v := v
		runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
			f: func(dst []float32, par *tensor.Par) {
				v.F(fact, tensor.From(dst, outShape...), cs.Input, par)
			}})
	}
	if err := driveFamily(seed, "factorized-conv", size, qOut, qMag, runs); err != nil {
		return err
	}

	for _, enc := range ipe.ConvEncoders() {
		l, _, err := enc.F(cs.Weight, cs.Bias, spec, cs.Bits, cs.Scheme, cs.Cfg)
		if err != nil {
			return fmt.Errorf("conformance: seed %d: %s encode: %w", seed, enc.Name, err)
		}
		eOut, eMag := RefConv2D(cs.Input, l.Quant.Dequantize(), cs.Bias, spec)
		runs = nil
		for _, v := range ipe.ConvVariants() {
			v := v
			runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
				f: func(dst []float32, par *tensor.Par) {
					v.F(l, tensor.From(dst, outShape...), cs.Input, par)
				}})
		}
		if err := driveFamily(seed, enc.Name+"-conv", size, eOut, eMag, runs); err != nil {
			return err
		}

		xParams := quant.Calibrate([]*tensor.Tensor{cs.Input}, 8)
		got := l.ForwardInt8(cs.Input, xParams)
		want, err := refConvInt8(l, cs.Input, xParams)
		if err != nil {
			return fmt.Errorf("conformance: seed %d: %s int reference: %w", seed, enc.Name, err)
		}
		if err := checkExact(seed, enc.Name+"-conv/forward-int8", "int replication", got.Data(), want); err != nil {
			return err
		}
	}
	return nil
}

// refConvInt8 replicates ConvLayer.ForwardInt8 over decoded program codes:
// the integer accumulation goes through the straight-loop RefProgramInt and
// the float requantization tail repeats the layer's operations in order, so
// the comparison is bitwise.
func refConvInt8(l *ipe.ConvLayer, in *tensor.Tensor, xParams quant.Params) ([]float32, error) {
	spec := l.Spec.Normalize()
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	ocg := spec.OutC / spec.Groups
	out := make([]float32, n*spec.OutC*oh*ow)
	for g := 0; g < spec.Groups; g++ {
		prog := l.Programs[g]
		codes, err := prog.Decode()
		if err != nil {
			return nil, err
		}
		for b := 0; b < n; b++ {
			col := tensor.Im2colGroup(in, b, g, spec)
			p := col.Dim(1)
			qc := ipe.QuantizeActivations(col.Data(), xParams, 8)
			xCol := make([]int32, prog.K)
			for c := 0; c < p; c++ {
				for i := range xCol {
					xCol[i] = qc[i*p+c]
				}
				acc := RefProgramInt(codes, prog.M, prog.K, xCol)
				for oc := 0; oc < ocg; oc++ {
					v := float32(acc[oc]) * xParams.Scale * prog.RowScale(oc)
					if l.Bias != nil {
						v += l.Bias.Data()[g*ocg+oc]
					}
					out[((b*spec.OutC+g*ocg+oc)*oh)*ow+c] = v
				}
			}
		}
	}
	return out, nil
}

// CheckDense rebuilds the dense case for seed and cross-checks the tensor
// dense/GEMM families on float weights, the IPE dense layer on its
// dequantized weights, and the IPE integer dense path bitwise.
func CheckDense(seed uint64) error {
	cs := GenDense(seed)
	n, m := cs.Input.Dim(0), cs.Weight.Dim(0)
	size := n * m
	outShape := []int{n, m}

	refOut, refMag := RefDense(cs.Input, cs.Weight, cs.Bias)
	for _, impl := range tensor.DenseImpls() {
		var runs []familyRun
		for _, v := range impl.Variants {
			v := v
			runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
				f: func(dst []float32, par *tensor.Par) {
					v.F(tensor.From(dst, outShape...), cs.Input, cs.Weight, cs.Bias, par)
				}})
		}
		if err := driveFamily(seed, impl.Family, size, refOut, refMag, runs); err != nil {
			return err
		}
	}

	l, _, err := ipe.EncodeDense(cs.Weight, cs.Bias, cs.Bits, cs.Scheme, cs.Cfg)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: EncodeDense: %w", seed, err)
	}
	deq := l.Quant.Dequantize().Reshape(m, cs.Weight.Dim(1))
	eOut, eMag := RefDense(cs.Input, deq, cs.Bias)
	var runs []familyRun
	for _, v := range ipe.DenseVariants() {
		v := v
		runs = append(runs, familyRun{name: v.Name,
			f: func(dst []float32, par *tensor.Par) {
				v.F(l, tensor.From(dst, outShape...), cs.Input)
			}})
	}
	if err := driveFamily(seed, "ipe-dense", size, eOut, eMag, runs); err != nil {
		return err
	}

	// Integer path: quantize each batch row, accumulate via the straight
	// integer loop, requantize with the layer's exact operations, then the
	// layer's separate bias pass.
	xParams := quant.Calibrate([]*tensor.Tensor{cs.Input}, 8)
	got := l.ForwardInt8(cs.Input, xParams)
	codes, err := l.Program.Decode()
	if err != nil {
		return fmt.Errorf("conformance: seed %d: dense Decode: %w", seed, err)
	}
	k := l.Program.K
	want := make([]float32, size)
	for b := 0; b < n; b++ {
		xc := ipe.QuantizeActivations(cs.Input.Data()[b*k:(b+1)*k], xParams, 8)
		acc := RefProgramInt(codes, m, k, xc)
		for r := 0; r < m; r++ {
			want[b*m+r] = float32(acc[r]) * xParams.Scale * l.Program.RowScale(r)
		}
	}
	if l.Bias != nil {
		for b := 0; b < n; b++ {
			for r := 0; r < m; r++ {
				want[b*m+r] += l.Bias.Data()[r]
			}
		}
	}
	return checkExact(seed, "ipe-dense/forward-int8", "int replication", got.Data(), want)
}

// CheckProgram rebuilds the raw-matrix case for seed, encodes it, and
// cross-checks: the decoded program weights against the quantizer
// (bitwise), the vector/matrix float executors against the reference on
// those weights, the integer executors bitwise against the straight loop,
// the symmetric and asymmetric quantized paths bitwise against their
// replications, and the CSR/factorized baselines built from the same
// quantized matrix.
func CheckProgram(seed uint64) error {
	cs := GenProgram(seed)
	m, k, p := cs.M, cs.K, cs.P
	q := quant.Quantize(cs.Weight, cs.Bits, cs.Scheme)
	prog, _, err := ipe.Encode(q, cs.Cfg)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: Encode: %w", seed, err)
	}
	codes, err := prog.Decode()
	if err != nil {
		return fmt.Errorf("conformance: seed %d: Decode: %w", seed, err)
	}
	wRef, err := RefProgramWeights(prog)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: %w", seed, err)
	}
	deq := q.Dequantize()
	if err := checkExact(seed, "program-weights", "quantizer dequantize", wRef, deq.Data()); err != nil {
		return err
	}

	// Float vector and matrix executors (separate families: the matrix
	// path blocks columns and could legally reassociate).
	vOut, vMag := RefMatMul(wRef, cs.X, m, k, 1)
	var runs []familyRun
	for _, v := range ipe.VectorVariants() {
		v := v
		runs = append(runs, familyRun{name: v.Name,
			f: func(dst []float32, par *tensor.Par) { v.F(prog, cs.X, dst) }})
	}
	if err := driveFamily(seed, "ipe-vector", m, vOut, vMag, runs); err != nil {
		return err
	}

	mOut, mMag := RefMatMul(wRef, cs.Cols, m, k, p)
	runs = nil
	for _, v := range ipe.MatrixVariants() {
		v := v
		runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
			f: func(dst []float32, par *tensor.Par) { v.F(prog, dst, cs.Cols, p, par) }})
	}
	if err := driveFamily(seed, "ipe-matrix", m*p, mOut, mMag, runs); err != nil {
		return err
	}

	// Integer executors are exact.
	intRef := RefProgramInt(codes, m, k, cs.XInt)
	for _, v := range ipe.IntVariants() {
		y := make([]int64, m)
		v.F(prog, cs.XInt, y)
		if err := checkExactInt(seed, "ipe-int/"+v.Name, "integer reference", y, intRef); err != nil {
			return err
		}
	}

	// Symmetric quantized path, replicated bitwise.
	xT := tensor.From(cs.X, k)
	sp := quant.Calibrate([]*tensor.Tensor{xT}, 8)
	got := make([]float32, m)
	prog.ExecuteQuantized(cs.X, got, sp, 8)
	xc := ipe.QuantizeActivations(cs.X, sp, 8)
	acc := RefProgramInt(codes, m, k, xc)
	want := make([]float32, m)
	for r := 0; r < m; r++ {
		want[r] = float32(acc[r]) * sp.Scale * prog.RowScale(r)
	}
	if err := checkExact(seed, "ipe-quantized", "int replication", got, want); err != nil {
		return err
	}

	// Asymmetric quantized path: the precomputed zero-point corrections
	// must equal the decoded rows' code sums, and the output must replicate
	// bitwise.
	ap := quant.CalibrateAsym([]*tensor.Tensor{xT}, 8)
	rowSums := prog.RowCodeSums()
	refSums := make([]int64, m)
	for r := 0; r < m; r++ {
		for c := 0; c < k; c++ {
			refSums[r] += int64(codes[r*k+c])
		}
	}
	if err := checkExactInt(seed, "ipe-row-code-sums", "decoded code sums", rowSums, refSums); err != nil {
		return err
	}
	prog.ExecuteQuantizedAsym(cs.X, got, ap, 8, rowSums)
	ac := quant.QuantizeAsym(cs.X, ap, 8)
	acc = RefProgramInt(codes, m, k, ac)
	z := int64(ap.ZeroPoint)
	for r := 0; r < m; r++ {
		want[r] = float32(acc[r]-z*refSums[r]) * ap.Scale * prog.RowScale(r)
	}
	if err := checkExact(seed, "ipe-quantized-asym", "int replication", got, want); err != nil {
		return err
	}

	// Baselines over the same quantized matrix. Their dense reconstructions
	// must equal the quantizer's dequantization bitwise; their products are
	// checked against the reference on it.
	csr := baseline.NewCSRFromQuantized(q)
	if err := checkExact(seed, "csr-dense-reconstruction", "quantizer dequantize", csr.Dense().Data(), deq.Data()); err != nil {
		return err
	}
	fact := baseline.NewFactorized(q)
	if err := checkExact(seed, "factorized-dense-reconstruction", "quantizer dequantize", fact.Dense().Data(), deq.Data()); err != nil {
		return err
	}

	y := make([]float32, m)
	csr.MatVec(cs.X, y)
	if err := checkClose(seed, "csr-matvec", y, vOut, vMag); err != nil {
		return err
	}
	fact.MatVec(cs.X, y)
	if err := checkClose(seed, "factorized-matvec", y, vOut, vMag); err != nil {
		return err
	}

	runs = nil
	for _, v := range baseline.CSRMatVariants(csr) {
		v := v
		runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
			f: func(dst []float32, par *tensor.Par) { v.F(dst, cs.Cols, p, par) }})
	}
	if err := driveFamily(seed, "csr-matmat", m*p, mOut, mMag, runs); err != nil {
		return err
	}
	runs = nil
	for _, v := range baseline.FactMatVariants(fact) {
		v := v
		runs = append(runs, familyRun{name: v.Name, usesPar: v.UsesPar,
			f: func(dst []float32, par *tensor.Par) { v.F(dst, cs.Cols, p, par) }})
	}
	return driveFamily(seed, "factorized-matmat", m*p, mOut, mMag, runs)
}

// CheckGraph rebuilds the model-graph case for seed and cross-checks the
// whole-graph execution paths: the graph walkers (bitwise family, close to
// the reference), then for every forceable runtime implementation plus
// auto-selection, a freshly compiled plan's Executor at several
// parallelism settings (bitwise family, close to an oracle evaluated on
// the plan's effective weights), Plan.Run, and chunked RunBatch at one and
// two workers (bitwise against the single runs).
func CheckGraph(seed uint64) error {
	gc := GenGraph(seed)
	ref, err := RefGraph(gc.Graph, gc.Input, nil)
	if err != nil {
		return fmt.Errorf("conformance: seed %d: graph reference: %w", seed, err)
	}

	var first []float32
	var firstName string
	for _, v := range graph.ExecVariants() {
		ps := []*tensor.Par{serialPar()}
		if v.UsesPar {
			ps = pars()
		}
		for _, par := range ps {
			name := "graph/" + v.Name
			if v.UsesPar {
				name = fmt.Sprintf("%s[shards=%d]", name, par.Shards())
			}
			out, err := v.F(gc.Graph, gc.Input, par)
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: %w", seed, name, err)
			}
			if first == nil {
				if err := checkGraphClose(seed, name, out.Data(), ref); err != nil {
					return err
				}
				first, firstName = out.Data(), name
				continue
			}
			if err := checkExact(seed, name, firstName, out.Data(), first); err != nil {
				return err
			}
		}
	}

	// A second, independently generated input for the middle RunBatch
	// chunk, derived deterministically from the seed.
	r := tensor.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	extra := tensor.New(gc.Graph.In.OutShape...)
	tensor.FillGaussian(extra, r, 1)

	impls := append([]runtime.Impl{runtime.ImplAuto}, runtime.ForceableImpls()...)
	for _, impl := range impls {
		// Every forced implementation compiles once per scheduler mode
		// (unfused first, then fused). The unfused plan establishes the
		// family's bitwise base against an oracle on its effective weights;
		// the fused plan — same graph, same options, Options.Fuse on — must
		// reproduce that base bitwise on every execution path.
		var base, extraOut []float32
		var baseName string
		for _, fuse := range runtime.FusedModes() {
			tag := fmt.Sprintf("runtime[force=%v,fused=%v]", impl, fuse)
			plan, err := runtime.Compile(gc.Graph.Clone(), runtime.Options{Force: impl, Fuse: fuse})
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: Compile: %w", seed, tag, err)
			}
			var oracle []float64
			if base == nil {
				eff, err := plan.EffectiveWeights()
				if err != nil {
					return fmt.Errorf("conformance: seed %d: %s: %w", seed, tag, err)
				}
				if oracle, err = RefGraph(plan.Graph, gc.Input, eff); err != nil {
					return fmt.Errorf("conformance: seed %d: %s: oracle: %w", seed, tag, err)
				}
			}

			e := plan.AcquireExecutor()
			for _, shards := range []int{1, 3, 0} {
				e.SetParallelism(shards)
				out, err := e.Run(gc.Input)
				if err != nil {
					plan.ReleaseExecutor(e)
					return fmt.Errorf("conformance: seed %d: %s: Run: %w", seed, tag, err)
				}
				// The executor's output aliases its arena; copy before the
				// next run overwrites it.
				data := append([]float32(nil), out.Data()...)
				name := fmt.Sprintf("%s/executor[shards=%d]", tag, shards)
				if base == nil {
					if err := checkGraphClose(seed, name, data, oracle); err != nil {
						plan.ReleaseExecutor(e)
						return err
					}
					base, baseName = data, name
					continue
				}
				if err := checkExact(seed, name, baseName, data, base); err != nil {
					plan.ReleaseExecutor(e)
					return err
				}
			}
			e.SetParallelism(1)
			out2, err := e.Run(extra)
			if err != nil {
				plan.ReleaseExecutor(e)
				return fmt.Errorf("conformance: seed %d: %s: Run(extra): %w", seed, tag, err)
			}
			data2 := append([]float32(nil), out2.Data()...)
			plan.ReleaseExecutor(e)
			if extraOut == nil {
				extraOut = data2
			} else if err := checkExact(seed, tag+"/run-extra", "single run on extra input", data2, extraOut); err != nil {
				return err
			}

			out, err := plan.Run(gc.Input)
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: Plan.Run: %w", seed, tag, err)
			}
			if err := checkExact(seed, tag+"/plan-run", baseName, out.Data(), base); err != nil {
				return err
			}

			// RunBatch with three chunks (case input, extra input, case input
			// again) must reproduce the single runs chunk for chunk at any
			// worker count.
			inShape := plan.Graph.In.OutShape
			batched := tensor.New(append([]int{3 * inShape[0]}, inShape[1:]...)...)
			per := gc.Input.NumElements()
			copy(batched.Data()[0:per], gc.Input.Data())
			copy(batched.Data()[per:2*per], extra.Data())
			copy(batched.Data()[2*per:3*per], gc.Input.Data())
			for _, workers := range []int{1, 2} {
				bout, err := plan.RunBatch(batched, workers)
				if err != nil {
					return fmt.Errorf("conformance: seed %d: %s: RunBatch(workers=%d): %w", seed, tag, workers, err)
				}
				perOut := bout.NumElements() / 3
				bd := bout.Data()
				name := fmt.Sprintf("%s/run-batch[workers=%d]", tag, workers)
				if err := checkExact(seed, name+"/chunk0", baseName, bd[0:perOut], base); err != nil {
					return err
				}
				if err := checkExact(seed, name+"/chunk1", "single run on extra input", bd[perOut:2*perOut], extraOut); err != nil {
					return err
				}
				if err := checkExact(seed, name+"/chunk2", baseName, bd[2*perOut:3*perOut], base); err != nil {
					return err
				}
			}
		}
	}

	// Tiny-SRAM sweep: under a 4 KiB on-chip model the tiling planner must
	// split realistic regions into several tiles per image, exercising the
	// windowed kernels' halo and edge paths. Auto-selection depends on the
	// hardware model, so only the tiled head implementations are forced, and
	// the fused plan is compared against an unfused plan compiled under the
	// same shrunk config rather than against the default-config base.
	tiny := runtime.TinySRAM()
	for _, impl := range runtime.TiledHeadImpls() {
		tag := fmt.Sprintf("runtime[force=%v,sram=4KiB]", impl)
		var tinyBase []float32
		var tinyBaseName string
		for _, fuse := range runtime.FusedModes() {
			plan, err := runtime.Compile(gc.Graph.Clone(), runtime.Options{Force: impl, HW: tiny, Fuse: fuse})
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: Compile(fused=%v): %w", seed, tag, fuse, err)
			}
			e := plan.AcquireExecutor()
			for _, shards := range []int{1, 0} {
				e.SetParallelism(shards)
				out, err := e.Run(gc.Input)
				if err != nil {
					plan.ReleaseExecutor(e)
					return fmt.Errorf("conformance: seed %d: %s: Run(fused=%v): %w", seed, tag, fuse, err)
				}
				data := append([]float32(nil), out.Data()...)
				name := fmt.Sprintf("%s/fused=%v[shards=%d]", tag, fuse, shards)
				if tinyBase == nil {
					tinyBase, tinyBaseName = data, name
					continue
				}
				if err := checkExact(seed, name, tinyBaseName, data, tinyBase); err != nil {
					plan.ReleaseExecutor(e)
					return err
				}
			}
			plan.ReleaseExecutor(e)
		}
	}
	return nil
}

// CheckSharedDict rebuilds the model-graph case for seed and enforces the
// shared-dictionary bit-identity contract: for every forceable runtime
// implementation plus auto-selection, two plans compiled through one shared
// ipe.DictStore — the multi-model serving configuration — must produce
// outputs bit-identical to an unshared compile of the same graph, on Run
// and on chunked RunBatch. Interning may alias dictionary tables and reuse
// compiled emit passes across the plans, but never change a single output
// bit. For forced IPE the store must also actually intern (the second
// identical compile hits the program cache), so the check cannot pass
// vacuously with the store bypassed.
func CheckSharedDict(seed uint64) error {
	gc := GenGraph(seed)

	// One store across all implementations and both shared plans, like one
	// serving process hosting every model: a program interned under one
	// forced implementation must never leak wrong bits into another.
	store := ipe.NewDictStore()
	impls := append([]runtime.Impl{runtime.ImplAuto}, runtime.ForceableImpls()...)
	for _, impl := range impls {
		tag := fmt.Sprintf("shared-dict[force=%v]", impl)
		base, err := runtime.Compile(gc.Graph.Clone(), runtime.Options{Force: impl})
		if err != nil {
			return fmt.Errorf("conformance: seed %d: %s: Compile(unshared): %w", seed, tag, err)
		}
		want, err := base.Run(gc.Input)
		if err != nil {
			return fmt.Errorf("conformance: seed %d: %s: Run(unshared): %w", seed, tag, err)
		}

		shared := runtime.Options{Force: impl, DictStore: store}
		var prev *runtime.Plan
		for i := 0; i < 2; i++ {
			plan, err := runtime.Compile(gc.Graph.Clone(), shared)
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: Compile(shared %d): %w", seed, tag, i+1, err)
			}
			name := fmt.Sprintf("%s/plan%d", tag, i+1)
			out, err := plan.Run(gc.Input)
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: Run: %w", seed, name, err)
			}
			if err := checkExact(seed, name, "unshared plan", out.Data(), want.Data()); err != nil {
				return err
			}

			// Two-chunk RunBatch through the shared plan must reproduce the
			// single run chunk for chunk (the serving batcher's path).
			inShape := plan.Graph.In.OutShape
			batched := tensor.New(append([]int{2 * inShape[0]}, inShape[1:]...)...)
			per := gc.Input.NumElements()
			copy(batched.Data()[0:per], gc.Input.Data())
			copy(batched.Data()[per:2*per], gc.Input.Data())
			bout, err := plan.RunBatch(batched, 2)
			if err != nil {
				return fmt.Errorf("conformance: seed %d: %s: RunBatch: %w", seed, name, err)
			}
			perOut := bout.NumElements() / 2
			for c := 0; c < 2; c++ {
				if err := checkExact(seed, fmt.Sprintf("%s/run-batch/chunk%d", name, c),
					"unshared plan", bout.Data()[c*perOut:(c+1)*perOut], want.Data()); err != nil {
					return err
				}
			}

			// The second identical compile must intern to the first plan's
			// canonical programs, not re-own copies.
			if prev != nil && impl == runtime.ImplIPE {
				p1, p2 := prev.IPEPrograms(), plan.IPEPrograms()
				if len(p1) != len(p2) {
					return fmt.Errorf("conformance: seed %d: %s: program count %d != %d",
						seed, name, len(p2), len(p1))
				}
				for j := range p1 {
					if p1[j] != p2[j] {
						return fmt.Errorf("conformance: seed %d: %s: program %d not interned to the canonical instance",
							seed, name, j)
					}
				}
			}
			prev = plan
		}
	}
	if store.Stats().Lookups > 0 && store.Stats().ProgramHits == 0 {
		return fmt.Errorf("conformance: seed %d: shared-dict store interned %d programs but deduplicated none across identical compiles",
			seed, store.Stats().Lookups)
	}
	return nil
}
