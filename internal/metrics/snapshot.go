package metrics

import (
	"encoding/json"
	"expvar"
	"io"
)

// LayerSnapshot is the point-in-time view of one layer's series: which
// kernel families executed it (usually exactly one), its latency
// distribution, and the batch sizes it saw. It is the unit the perf JSON
// attaches per layer and the CI regression gate diffs.
type LayerSnapshot struct {
	Name string `json:"name"`
	// Kernel is the dominant (most-dispatched) kernel family.
	Kernel string `json:"kernel"`
	// Kernels maps kernel name -> dispatch count, for layers that ran under
	// more than one implementation.
	Kernels map[string]int64 `json:"kernels,omitempty"`
	// KernelMeanNs maps kernel name -> mean latency over that kernel's own
	// executions of this layer — the per-implementation series the online
	// autotuner judges candidates by.
	KernelMeanNs map[string]int64 `json:"kernel_mean_ns,omitempty"`
	Latency      HistSnapshot     `json:"latency"`
	// MeanBatch and MaxBatch summarize the batch sizes recorded.
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int64   `json:"max_batch"`
}

// RegionSnapshot is the point-in-time view of one fused region: the
// scheduler's decision (mode, retained/spilled bytes, modeled DRAM traffic
// fused vs unfused) and the live run/tile counters.
type RegionSnapshot struct {
	Name             string `json:"name"`
	Mode             string `json:"mode"`
	Runs             int64  `json:"runs"`
	Tiles            int64  `json:"tiles"`
	RetainedBytes    int64  `json:"retained_bytes"`
	SpilledBytes     int64  `json:"spilled_bytes"`
	FusedDRAMBytes   int64  `json:"fused_dram_bytes"`
	UnfusedDRAMBytes int64  `json:"unfused_dram_bytes"`
}

// AutotuneSnapshot is the point-in-time view of one tuned layer's bandit:
// the implementation currently serving it, the executions the bandit
// routed, the exploration fraction spent on alternates, and how many
// promotions have landed.
type AutotuneSnapshot struct {
	Name         string `json:"name"`
	Current      string `json:"current"`
	Executions   int64  `json:"executions"`
	Explorations int64  `json:"explorations"`
	Promotions   int64  `json:"promotions"`
}

// EndpointSnapshot is the point-in-time view of one serving endpoint: the
// admission counters, batch-coalescing evidence (MeanBatch > 1 means the
// dynamic batcher merged concurrent requests), queue extents, the
// end-to-end latency distribution, and the mean QPS over the window from
// the first to the last completed request.
type EndpointSnapshot struct {
	Name             string       `json:"name"`
	Requests         int64        `json:"requests"`
	Errors           int64        `json:"errors,omitempty"`
	RejectedOverload int64        `json:"rejected_overload,omitempty"`
	RejectedClosed   int64        `json:"rejected_closed,omitempty"`
	Flushes          int64        `json:"flushes"`
	Items            int64        `json:"items"`
	MeanBatch        float64      `json:"mean_batch"`
	MaxBatch         int64        `json:"max_batch"`
	QueueMax         int64        `json:"queue_max"`
	QPS              float64      `json:"qps"`
	Latency          HistSnapshot `json:"latency"`
}

// PoolSnapshot is the point-in-time view of the worker-pool telemetry.
type PoolSnapshot struct {
	Submitted       int64   `json:"submitted"`
	HelperRuns      int64   `json:"helper_runs"`
	InlineFallbacks int64   `json:"inline_fallbacks"`
	CallerRuns      int64   `json:"caller_runs"`
	SpawnWaitNs     int64   `json:"spawn_wait_ns"`
	MeanSpawnWaitNs int64   `json:"mean_spawn_wait_ns"`
	MeanOccupancy   float64 `json:"mean_occupancy"`
	MaxOccupancy    int64   `json:"max_occupancy"`
}

// ExecSnapshot is the point-in-time view of the executor/arena telemetry.
type ExecSnapshot struct {
	Acquires           int64        `json:"acquires"`
	PoolReuses         int64        `json:"pool_reuses"`
	Builds             int64        `json:"builds"`
	Releases           int64        `json:"releases"`
	Runs               int64        `json:"runs"`
	RunErrors          int64        `json:"run_errors"`
	Batches            int64        `json:"batches"`
	BatchItems         int64        `json:"batch_items"`
	ArenaBytesResident int64        `json:"arena_bytes_resident"`
	ArenaBytesPeak     int64        `json:"arena_bytes_peak"`
	ScratchHighWater   int64        `json:"scratch_high_water_floats"`
	RunLatency         HistSnapshot `json:"run_latency"`
}

// Snapshot is a self-consistent-enough point-in-time view of a Recorder,
// serializable to JSON (the expvar-style dump).
type Snapshot struct {
	Layers []LayerSnapshot `json:"layers"`
	// Regions lists the fused-region series (empty unless a plan compiled
	// with the graph scheduler registered executors).
	Regions []RegionSnapshot `json:"regions,omitempty"`
	// Endpoints lists the serving-endpoint series (empty unless a serve
	// batcher registered traffic).
	Endpoints []EndpointSnapshot `json:"endpoints,omitempty"`
	// Autotune lists the online-tuner series (empty unless a plan tuner is
	// running).
	Autotune []AutotuneSnapshot `json:"autotune,omitempty"`
	// Models lists the versioned-registry series (empty unless a registry
	// published model state).
	Models []ModelSnapshot `json:"models,omitempty"`
	// SharedDict reports the shared-dictionary store's dedup gauges (nil
	// unless an ipe.DictStore published).
	SharedDict *SharedDictSnapshot `json:"shared_dict,omitempty"`
	Kernels    map[string]int64    `json:"kernel_dispatches"`
	Pool       PoolSnapshot        `json:"pool"`
	Exec       ExecSnapshot        `json:"executor"`
}

// Snapshot captures every series of the recorder. Layers appear in
// registration order (the executor registers them in topological order, so
// the dump reads like the forward pass). Nil-safe: a nil recorder yields a
// zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	layers := append([]*LayerStats(nil), r.ordered...)
	regions := append([]*RegionStats(nil), r.regOrdered...)
	endpoints := append([]*EndpointStats(nil), r.epOrdered...)
	autotune := append([]*AutotuneStats(nil), r.atOrdered...)
	models := append([]*ModelStats(nil), r.mdOrdered...)
	r.mu.Unlock()
	s.Layers = make([]LayerSnapshot, 0, len(layers))
	for _, l := range layers {
		s.Layers = append(s.Layers, l.Snapshot())
	}
	for _, reg := range regions {
		s.Regions = append(s.Regions, reg.Snapshot())
	}
	for _, ep := range endpoints {
		s.Endpoints = append(s.Endpoints, ep.Snapshot())
	}
	for _, at := range autotune {
		s.Autotune = append(s.Autotune, at.Snapshot())
	}
	for _, md := range models {
		s.Models = append(s.Models, md.Snapshot())
	}
	if d := r.sharedDict.Load(); d != nil {
		s.SharedDict = &SharedDictSnapshot{
			Lookups:        d.Lookups,
			ProgramHits:    d.ProgramHits,
			DictHits:       d.DictHits,
			UniquePrograms: d.UniquePrograms,
			UniqueBytes:    d.UniqueBytes,
			SavedBytes:     d.SavedBytes,
		}
	}
	s.Kernels = make(map[string]int64)
	for k := Kernel(0); k < KernelCount; k++ {
		if n := r.kernels[k].Load(); n > 0 {
			s.Kernels[k.String()] = n
		}
	}
	s.Pool = r.Pool.Snapshot()
	s.Exec = r.Exec.Snapshot()
	return s
}

// Capture snapshots the process-wide recorder (zero snapshot if disabled).
func Capture() Snapshot { return Get().Snapshot() }

// Snapshot captures one layer series.
func (l *LayerStats) Snapshot() LayerSnapshot {
	var s LayerSnapshot
	if l == nil {
		return s
	}
	s.Name = l.name
	var domK Kernel
	var domN int64
	for k := Kernel(0); k < KernelCount; k++ {
		n := l.kernels[k].Load()
		if n == 0 {
			continue
		}
		if s.Kernels == nil {
			s.Kernels = make(map[string]int64)
		}
		s.Kernels[k.String()] = n
		if sum := l.kernelNs[k].Load(); sum > 0 {
			if s.KernelMeanNs == nil {
				s.KernelMeanNs = make(map[string]int64)
			}
			s.KernelMeanNs[k.String()] = sum / n
		}
		if n > domN {
			domK, domN = k, n
		}
	}
	s.Kernel = domK.String()
	s.Latency = l.lat.Snapshot()
	s.MaxBatch = l.batchMax.Load()
	if s.Latency.Count > 0 {
		s.MeanBatch = float64(l.batchSum.Load()) / float64(s.Latency.Count)
	}
	return s
}

// Snapshot captures one autotune series.
func (s *AutotuneStats) Snapshot() AutotuneSnapshot {
	var snap AutotuneSnapshot
	if s == nil {
		return snap
	}
	snap.Name = s.name
	if c := s.current.Load(); c != nil {
		snap.Current = *c
	}
	snap.Executions = s.Executions.Load()
	snap.Explorations = s.Explorations.Load()
	snap.Promotions = s.Promotions.Load()
	return snap
}

// Snapshot captures one region series.
func (s *RegionStats) Snapshot() RegionSnapshot {
	var snap RegionSnapshot
	if s == nil {
		return snap
	}
	snap.Name = s.name
	if m := s.mode.Load(); m != nil {
		snap.Mode = *m
	}
	snap.Runs = s.Runs.Load()
	snap.Tiles = s.Tiles.Load()
	snap.RetainedBytes = s.retainedBytes.Load()
	snap.SpilledBytes = s.spilledBytes.Load()
	snap.FusedDRAMBytes = s.fusedDRAMBytes.Load()
	snap.UnfusedDRAMBytes = s.unfusedDRAMBytes.Load()
	return snap
}

// Snapshot captures one endpoint series.
func (s *EndpointStats) Snapshot() EndpointSnapshot {
	var snap EndpointSnapshot
	if s == nil {
		return snap
	}
	snap.Name = s.name
	snap.Requests = s.Requests.Load()
	snap.Errors = s.Errors.Load()
	snap.RejectedOverload = s.RejectedOverload.Load()
	snap.RejectedClosed = s.RejectedClosed.Load()
	snap.Flushes = s.Flushes.Load()
	snap.Items = s.Items.Load()
	if snap.Flushes > 0 {
		snap.MeanBatch = float64(snap.Items) / float64(snap.Flushes)
	}
	snap.MaxBatch = s.batchMax.Load()
	snap.QueueMax = s.queueMax.Load()
	snap.Latency = s.Lat.Snapshot()
	if first, last := s.firstNs.Load(), s.lastNs.Load(); snap.Requests > 1 && last > first {
		snap.QPS = float64(snap.Requests-1) / (float64(last-first) / 1e9)
	}
	return snap
}

// Snapshot captures the pool telemetry.
func (p *PoolStats) Snapshot() PoolSnapshot {
	var s PoolSnapshot
	if p == nil {
		return s
	}
	s.HelperRuns = p.HelperRuns.Load()
	s.InlineFallbacks = p.InlineFallbacks.Load()
	s.CallerRuns = p.CallerRuns.Load()
	s.Submitted = s.HelperRuns + s.InlineFallbacks + s.CallerRuns
	s.SpawnWaitNs = p.SpawnWaitNs.Load()
	if s.HelperRuns > 0 {
		s.MeanSpawnWaitNs = s.SpawnWaitNs / s.HelperRuns
	}
	s.MaxOccupancy = p.OccupancyMax.Load()
	if n := p.OccupancyCount.Load(); n > 0 {
		s.MeanOccupancy = float64(p.OccupancySum.Load()) / float64(n)
	}
	return s
}

// Snapshot captures the executor telemetry.
func (e *ExecStats) Snapshot() ExecSnapshot {
	var s ExecSnapshot
	if e == nil {
		return s
	}
	s.Acquires = e.Acquires.Load()
	s.PoolReuses = e.PoolReuses.Load()
	s.Builds = e.Builds.Load()
	s.Releases = e.Releases.Load()
	s.Runs = e.Runs.Load()
	s.RunErrors = e.RunErrors.Load()
	s.Batches = e.Batches.Load()
	s.BatchItems = e.BatchItems.Load()
	s.ArenaBytesResident = e.ArenaBytesResident.Load()
	s.ArenaBytesPeak = e.ArenaBytesPeak.Load()
	s.ScratchHighWater = e.ScratchHighWater.Load()
	s.RunLatency = e.RunNs.Snapshot()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Publish registers the process-wide recorder under the given expvar name
// (e.g. "inspire"), so any HTTP server that mounts expvar's /debug/vars
// handler exposes the live snapshot. Publishing twice with the same name
// panics (expvar semantics), so call once at startup.
func Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return Capture() }))
}
