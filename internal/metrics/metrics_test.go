package metrics

import (
	"bytes"
	"encoding/json"
	goruntime "runtime"
	"sync"
	"testing"
)

func TestLayerRecordSnapshot(t *testing.T) {
	r := New()
	l := r.Layer("conv1")
	if got := r.Layer("conv1"); got != l {
		t.Fatalf("Layer(conv1) not deduplicated: %p vs %p", got, l)
	}
	l.Record(KernelIPECompiled, 1000, 1)
	l.Record(KernelIPECompiled, 3000, 4)
	l.Record(KernelDirect, 500, 1)
	s := l.Snapshot()
	if s.Name != "conv1" {
		t.Errorf("name = %q", s.Name)
	}
	if s.Kernel != "ipe-compiled" {
		t.Errorf("dominant kernel = %q, want ipe-compiled", s.Kernel)
	}
	if s.Kernels["ipe-compiled"] != 2 || s.Kernels["direct"] != 1 {
		t.Errorf("kernels = %v", s.Kernels)
	}
	if s.Latency.Count != 3 || s.Latency.SumNs != 4500 {
		t.Errorf("latency = %+v", s.Latency)
	}
	if s.Latency.MinNs != 500 || s.Latency.MaxNs != 3000 {
		t.Errorf("min/max = %d/%d", s.Latency.MinNs, s.Latency.MaxNs)
	}
	if s.Latency.MeanNs != 1500 {
		t.Errorf("mean = %d", s.Latency.MeanNs)
	}
	if s.MaxBatch != 4 || s.MeanBatch != 2 {
		t.Errorf("batch mean/max = %v/%d", s.MeanBatch, s.MaxBatch)
	}
	if s.Latency.P50Ns < s.Latency.MinNs || s.Latency.P50Ns > s.Latency.MaxNs ||
		s.Latency.P99Ns < s.Latency.P50Ns {
		t.Errorf("quantiles out of order: %+v", s.Latency)
	}
}

func TestHistQuantilesBounds(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(100) // all in bucket [64,128)
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d", s.Count)
	}
	// p50 must land in the 100ns bucket (upper bound 128), p99+ may reach
	// the outlier but never exceed the observed max.
	if s.P50Ns > 128 {
		t.Errorf("p50 = %d, want <= 128", s.P50Ns)
	}
	if s.P99Ns > s.MaxNs {
		t.Errorf("p99 %d > max %d", s.P99Ns, s.MaxNs)
	}
	// Sub-nanosecond observations clamp rather than corrupt the buckets.
	h.Observe(0)
	if got := h.Snapshot().MinNs; got != 1 {
		t.Errorf("min after Observe(0) = %d, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	Disable()
	if Get() != nil {
		t.Fatal("Get() != nil after Disable")
	}
	Count(KernelGEMM) // must not panic with recording disabled

	var r *Recorder
	r.CountKernel(KernelDirect)
	if l := r.Layer("x"); l != nil {
		t.Errorf("nil recorder Layer = %v", l)
	}
	var l *LayerStats
	l.Record(KernelDirect, 10, 1)
	if l.Name() != "" {
		t.Error("nil LayerStats name")
	}
	var p *PoolStats
	p.EnterRegion(3)
	var e *ExecStats
	e.UpdateScratchHighWater(100)
	var h *Hist
	h.Observe(5)
	if s := r.Snapshot(); len(s.Layers) != 0 {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
}

func TestEnableDisableGlobal(t *testing.T) {
	r := Enable()
	defer Disable()
	if Get() != r {
		t.Fatal("Get() != Enable() result")
	}
	Count(KernelWinograd)
	s := Capture()
	if s.Kernels["winograd"] != 1 {
		t.Errorf("kernel_dispatches = %v", s.Kernels)
	}
	Disable()
	Count(KernelWinograd) // dropped
	if got := r.Snapshot().Kernels["winograd"]; got != 1 {
		t.Errorf("count after disable = %d, want 1", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Layer("fc1").Record(KernelGEMM, 2048, 2)
	r.Pool.EnterRegion(2)
	r.Pool.HelperRuns.Add(3)
	r.Exec.Runs.Add(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if len(back.Layers) != 1 || back.Layers[0].Name != "fc1" || back.Layers[0].Kernel != "gemm" {
		t.Errorf("layers = %+v", back.Layers)
	}
	if back.Pool.Submitted != 3 || back.Pool.MaxOccupancy != 2 {
		t.Errorf("pool = %+v", back.Pool)
	}
}

// TestRecorderConcurrent hammers one recorder — one shared layer series,
// the pool stats, and the global kernel counters — from GOMAXPROCS
// goroutines. Run under -race (make verify does) this is the data-race
// gate for every atomic in the package; the count assertions catch lost
// updates.
func TestRecorderConcurrent(t *testing.T) {
	r := Enable()
	defer Disable()
	l := r.Layer("hammered")
	workers := goruntime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Record(Kernel(1+(w+i)%int(KernelCount-1)), int64(i%4096+1), 1+i%8)
				Count(KernelIPECompiled)
				r.Pool.EnterRegion(i % workers)
				r.Pool.HelperRuns.Add(1)
				r.Exec.RunNs.Observe(int64(i + 1))
				r.Exec.UpdateScratchHighWater(i)
				if i%64 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	s := r.Snapshot()
	if s.Layers[0].Latency.Count != total {
		t.Errorf("layer count = %d, want %d", s.Layers[0].Latency.Count, total)
	}
	var kernelSum int64
	for _, n := range s.Layers[0].Kernels {
		kernelSum += n
	}
	if kernelSum != total {
		t.Errorf("kernel dispatch sum = %d, want %d", kernelSum, total)
	}
	if s.Kernels["ipe-compiled"] != total {
		t.Errorf("global ipe-compiled = %d, want %d", s.Kernels["ipe-compiled"], total)
	}
	if s.Pool.HelperRuns != total || s.Exec.RunLatency.Count != total {
		t.Errorf("pool/exec counts = %d/%d, want %d", s.Pool.HelperRuns, s.Exec.RunLatency.Count, total)
	}
	if s.Exec.ScratchHighWater != perWorker-1 {
		t.Errorf("scratch high water = %d, want %d", s.Exec.ScratchHighWater, perWorker-1)
	}
}

// disabledSite mirrors a real instrumentation site with metrics off: one
// atomic pointer load and a nil check. Kept noinline so the benchmark
// measures the call-site shape the kernels actually pay.
//
//go:noinline
func disabledSite(k Kernel) {
	Count(k)
}

// TestDisabledOverhead asserts the disabled recorder's per-site cost stays
// negligible: the site is one atomic load plus a branch (~1 ns); the bound
// is deliberately loose (25 ns) so slow shared CI runners never flake, while
// still catching an accidental allocation, lock, or map lookup on the
// disabled path (any of which costs well over 25 ns).
func TestDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments the atomic load (~100x); the timing contract only holds uninstrumented")
	}
	Disable()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			disabledSite(KernelDirect)
		}
	})
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled site allocates: %d allocs/op", res.AllocsPerOp())
	}
	if ns := res.NsPerOp(); ns > 25 {
		t.Errorf("disabled site costs %d ns/op, want ~1 (bound 25)", ns)
	}
}

// BenchmarkDisabledSite is the headline number for the "metrics off costs
// ~1 ns per site" claim.
func BenchmarkDisabledSite(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledSite(KernelDirect)
	}
}

// BenchmarkEnabledLayerRecord is the cost with metrics on: a handful of
// atomic adds.
func BenchmarkEnabledLayerRecord(b *testing.B) {
	r := Enable()
	defer Disable()
	l := r.Layer("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(KernelGEMM, int64(i&4095)+1, 1)
	}
}

// BenchmarkEnabledCount is the cost of a global kernel-dispatch count with
// metrics on.
func BenchmarkEnabledCount(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(KernelDirect)
	}
}

// TestEndpointRecordSnapshot exercises the serving-endpoint series: request
// and rejection accounting, batch-coalescing evidence (mean batch), queue
// extents, and the QPS window.
func TestEndpointRecordSnapshot(t *testing.T) {
	r := New()
	ep := r.Endpoint("lenet5")
	if r.Endpoint("lenet5") != ep {
		t.Fatal("Endpoint not memoized by name")
	}
	base := int64(1_000_000_000)
	ep.RecordRequest(1000, base)
	ep.RecordRequest(3000, base+2e9) // 3 requests over 4 s -> 0.5 QPS
	ep.RecordRequest(2000, base+4e9)
	ep.RecordFlush(1)
	ep.RecordFlush(2)
	ep.ObserveQueueDepth(3)
	ep.ObserveQueueDepth(1)
	ep.RejectedOverload.Add(2)
	ep.RejectedClosed.Add(1)
	ep.Errors.Add(1)

	s := r.Snapshot()
	if len(s.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v", s.Endpoints)
	}
	e := s.Endpoints[0]
	if e.Name != "lenet5" || e.Requests != 3 || e.Errors != 1 {
		t.Errorf("identity/counts = %+v", e)
	}
	if e.RejectedOverload != 2 || e.RejectedClosed != 1 {
		t.Errorf("rejects = %+v", e)
	}
	if e.Flushes != 2 || e.Items != 3 || e.MeanBatch != 1.5 || e.MaxBatch != 2 {
		t.Errorf("batching = %+v", e)
	}
	if e.QueueMax != 3 {
		t.Errorf("queue max = %d", e.QueueMax)
	}
	if e.Latency.Count != 3 || e.Latency.MaxNs != 3000 {
		t.Errorf("latency = %+v", e.Latency)
	}
	if e.QPS < 0.49 || e.QPS > 0.51 {
		t.Errorf("qps = %v, want 0.5", e.QPS)
	}

	// JSON round trip keeps the endpoint section.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Endpoints) != 1 || back.Endpoints[0].MeanBatch != 1.5 {
		t.Errorf("round-trip endpoints = %+v", back.Endpoints)
	}
}

// TestEndpointNilSafety checks the nil-receiver contract the serving path
// relies on (a batcher built with metrics disabled holds a nil handle).
func TestEndpointNilSafety(t *testing.T) {
	var r *Recorder
	if ep := r.Endpoint("x"); ep != nil {
		t.Fatalf("nil recorder Endpoint = %v", ep)
	}
	var ep *EndpointStats
	ep.RecordRequest(10, 20)
	ep.RecordFlush(4)
	ep.ObserveQueueDepth(9)
	if ep.Name() != "" {
		t.Error("nil EndpointStats name")
	}
	if snap := ep.Snapshot(); snap.Requests != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}
