package metrics

import (
	"strings"
	"sync/atomic"
)

// SharedDictStats is the shared-dictionary-store gauge set published by
// ipe.DictStore on every intern: how many encode results were deduplicated
// at program or dictionary level and the resident/saved byte estimates.
// Values are overwritten wholesale (published gauges, not counters).
type SharedDictStats struct {
	Lookups        int64
	ProgramHits    int64
	DictHits       int64
	UniquePrograms int64
	UniqueBytes    int64
	SavedBytes     int64
}

// SetSharedDict overwrites the recorder's shared-dictionary gauges.
// Nil-safe like every recording method.
func (r *Recorder) SetSharedDict(s SharedDictStats) {
	if r == nil {
		return
	}
	r.sharedDict.Store(&s)
}

// Model returns the named model-registry series, creating it on first use.
// Registration is the cold path (model load/swap); the handle publishes
// with atomics only. The registry keeps one series per model name across
// version swaps, so the row shows the currently served version.
func (r *Recorder) Model(name string) *ModelStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.mdByName[name]; ok {
		return s
	}
	s := &ModelStats{name: name}
	r.mdByName[name] = s
	r.mdOrdered = append(r.mdOrdered, s)
	return s
}

// ModelStats is one registered model's published registry state: the
// version currently serving, how many hot-swaps have completed, and the
// resident-byte estimate of its live plan (after shared-dictionary dedup).
// The registry overwrites the gauges on every load and release. All
// methods are atomic and nil-safe.
type ModelStats struct {
	name string

	Version       atomic.Int64
	Swaps         atomic.Int64
	ResidentBytes atomic.Int64
	SharedBytes   atomic.Int64
	PoolExecutors atomic.Int64
}

// Name returns the series' registration name.
func (s *ModelStats) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Publish overwrites the model's registry gauges: the serving version, the
// completed swap count, the plan's resident bytes (resident = this model's
// attributable share after interning; shared = bytes aliased to programs
// another model also holds), and the warm executor pool size.
func (s *ModelStats) Publish(version, swaps, residentBytes, sharedBytes, poolExecutors int64) {
	if s == nil {
		return
	}
	s.Version.Store(version)
	s.Swaps.Store(swaps)
	s.ResidentBytes.Store(residentBytes)
	s.SharedBytes.Store(sharedBytes)
	s.PoolExecutors.Store(poolExecutors)
}

// ModelSnapshot is the point-in-time view of one registered model.
type ModelSnapshot struct {
	Name          string `json:"name"`
	Version       int64  `json:"version"`
	Swaps         int64  `json:"swaps"`
	ResidentBytes int64  `json:"resident_bytes"`
	SharedBytes   int64  `json:"shared_bytes,omitempty"`
	PoolExecutors int64  `json:"pool_executors"`
}

// Snapshot captures one model series.
func (s *ModelStats) Snapshot() ModelSnapshot {
	var snap ModelSnapshot
	if s == nil {
		return snap
	}
	snap.Name = s.name
	snap.Version = s.Version.Load()
	snap.Swaps = s.Swaps.Load()
	snap.ResidentBytes = s.ResidentBytes.Load()
	snap.SharedBytes = s.SharedBytes.Load()
	snap.PoolExecutors = s.PoolExecutors.Load()
	return snap
}

// SharedDictSnapshot is the point-in-time view of the shared dictionary
// store's dedup gauges.
type SharedDictSnapshot struct {
	Lookups        int64 `json:"lookups"`
	ProgramHits    int64 `json:"program_hits"`
	DictHits       int64 `json:"dict_hits"`
	UniquePrograms int64 `json:"unique_programs"`
	UniqueBytes    int64 `json:"unique_bytes"`
	SavedBytes     int64 `json:"saved_bytes"`
}

// FilterModel returns a copy of the snapshot restricted to one model's
// series: its endpoint and registry rows (exact name match) and its layer,
// region, and autotune rows (name prefixed "model/" or "model@", the two
// MetricsPrefix conventions of serve.Registry and the versioned registry).
// Process-wide series (kernels, pool, executor, shared dict) are kept as-is
// since they cannot be attributed per model.
func (s Snapshot) FilterModel(model string) Snapshot {
	owns := func(name string) bool {
		return name == model ||
			strings.HasPrefix(name, model+"/") ||
			strings.HasPrefix(name, model+"@")
	}
	out := s
	out.Layers = nil
	for _, l := range s.Layers {
		if owns(l.Name) {
			out.Layers = append(out.Layers, l)
		}
	}
	out.Regions = nil
	for _, r := range s.Regions {
		if owns(r.Name) {
			out.Regions = append(out.Regions, r)
		}
	}
	out.Endpoints = nil
	for _, e := range s.Endpoints {
		if owns(e.Name) {
			out.Endpoints = append(out.Endpoints, e)
		}
	}
	out.Autotune = nil
	for _, a := range s.Autotune {
		if owns(a.Name) {
			out.Autotune = append(out.Autotune, a)
		}
	}
	out.Models = nil
	for _, m := range s.Models {
		if owns(m.Name) {
			out.Models = append(out.Models, m)
		}
	}
	return out
}
