package metrics

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two latency buckets. Bucket b holds
// observations in [2^b, 2^(b+1)) nanoseconds; 40 buckets cover up to ~18
// minutes, far beyond any layer or run latency.
const histBuckets = 40

// Hist is an allocation-free, concurrency-safe latency histogram with
// power-of-two nanosecond buckets. The zero value is ready to use. Observe
// performs four atomic adds plus up to two CAS loops (min/max) — cheap
// enough for per-layer recording, and only ever reached when metrics are
// enabled.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // 0 means unset
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe logs one latency sample in nanoseconds. Samples below 1 ns are
// clamped to 1 so the min sentinel (0 = unset) and the log2 bucketing stay
// well defined.
func (h *Hist) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1 // floor(log2(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	atomicMinNZ(&h.min, ns)
	atomicMax(&h.max, ns)
	h.buckets[b].Add(1)
}

// HistSnapshot is a point-in-time view of a Hist. Quantiles are
// upper-bound estimates from the power-of-two buckets (within 2x of the
// true value), clamped to the observed min/max.
type HistSnapshot struct {
	Count  int64 `json:"count"`
	SumNs  int64 `json:"sum_ns"`
	MeanNs int64 `json:"mean_ns"`
	MinNs  int64 `json:"min_ns"`
	MaxNs  int64 `json:"max_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
}

// Snapshot captures the histogram. Concurrent Observes may land between
// field reads; totals stay self-consistent enough for reporting (this is
// telemetry, not accounting).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MinNs = h.min.Load()
	s.MaxNs = h.max.Load()
	if s.Count > 0 {
		s.MeanNs = s.SumNs / s.Count
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50Ns = quantile(counts[:], total, 0.50, s.MinNs, s.MaxNs)
	s.P90Ns = quantile(counts[:], total, 0.90, s.MinNs, s.MaxNs)
	s.P99Ns = quantile(counts[:], total, 0.99, s.MinNs, s.MaxNs)
	return s
}

// quantile walks the bucket counts to the q-th observation and returns that
// bucket's upper bound, clamped to [min, max].
func quantile(counts []int64, total int64, q float64, min, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b, c := range counts {
		seen += c
		if seen > rank {
			v := int64(1) << (uint(b) + 1) // bucket upper bound
			if max > 0 && v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return v
		}
	}
	return max
}
