// Package metrics is the runtime observability layer: allocation-free,
// atomic counters and latency histograms threaded through the serving hot
// paths (executor steps, kernel dispatch sites, the intra-op worker pool,
// arena and scratch management).
//
// Recording is off by default and costs one atomic pointer load plus a nil
// check per site (~1 ns) when disabled — cheap enough to leave the hooks in
// every hot path permanently. Enable() installs a process-wide Recorder;
// sites obtain it with Get() (or hold handles resolved at build time) and
// every recording method is safe on a nil receiver, so call sites never
// branch themselves.
//
// The package depends only on the standard library so every layer of the
// system (parallel, tensor, ipe, baseline, graph, runtime) can hook into it
// without import cycles.
package metrics

import (
	"sync"
	"sync/atomic"
)

// Kernel identifies the kernel family that executed a piece of work. The
// values cover every conv/dense execution strategy the runtime dispatches
// plus the generic walker for the remaining operators.
type Kernel uint8

const (
	// KernelUnknown tags work recorded without a kernel attribution.
	KernelUnknown Kernel = iota
	// KernelDirect is the direct (no-lowering) convolution loop nest.
	KernelDirect
	// KernelIm2col is the im2col lowering pass.
	KernelIm2col
	// KernelGEMM is the dense GEMM / fully-connected kernel.
	KernelGEMM
	// KernelWinograd is the Winograd F(2x2,3x3) dense convolution.
	KernelWinograd
	// KernelCSR is compressed-sparse-row execution over quantized weights.
	KernelCSR
	// KernelFactorized is UCNN-style value-factorized execution.
	KernelFactorized
	// KernelIPEInterp is the interpreted index-pair-encoded executor.
	KernelIPEInterp
	// KernelIPECompiled is the compiled (flat-stream) IPE executor.
	KernelIPECompiled
	// KernelGeneric is the generic graph walker (pool, relu, softmax, ...).
	KernelGeneric

	// KernelCount is the number of kernel tags (array sizing).
	KernelCount
)

var kernelNames = [KernelCount]string{
	"unknown", "direct", "im2col", "gemm", "winograd",
	"csr", "factorized", "ipe-interpreted", "ipe-compiled", "generic",
}

// String returns the kernel's short name (stable: used in JSON dumps).
func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "invalid"
}

// Recorder aggregates every metric family. All recording methods are safe
// for concurrent use and for nil receivers (a nil Recorder records
// nothing), so sites can hold a possibly-nil handle and call through it
// unconditionally.
type Recorder struct {
	// Pool is the intra-op worker-pool telemetry (wired into
	// parallel.Pool.SetStats by runtime.EnableMetrics).
	Pool PoolStats
	// Exec is the executor/arena telemetry.
	Exec ExecStats

	kernels [KernelCount]atomic.Int64

	mu      sync.Mutex
	byName  map[string]*LayerStats
	ordered []*LayerStats

	regByName  map[string]*RegionStats
	regOrdered []*RegionStats

	epByName  map[string]*EndpointStats
	epOrdered []*EndpointStats

	atByName  map[string]*AutotuneStats
	atOrdered []*AutotuneStats

	mdByName  map[string]*ModelStats
	mdOrdered []*ModelStats

	// sharedDict holds the latest shared-dictionary gauge set published by
	// ipe.DictStore (nil until a store publishes).
	sharedDict atomic.Pointer[SharedDictStats]
}

// New builds an empty Recorder. Most callers use Enable instead, which
// installs the recorder process-wide.
func New() *Recorder {
	return &Recorder{
		byName:    make(map[string]*LayerStats),
		regByName: make(map[string]*RegionStats),
		epByName:  make(map[string]*EndpointStats),
		atByName:  make(map[string]*AutotuneStats),
		mdByName:  make(map[string]*ModelStats),
	}
}

// global holds the process-wide recorder; nil means recording is disabled.
var global atomic.Pointer[Recorder]

// Enable installs a fresh process-wide Recorder and returns it. Sites that
// resolved Get() == nil earlier (e.g. executors built before Enable) keep
// recording nothing; enable metrics before building plans and executors.
func Enable() *Recorder {
	r := New()
	global.Store(r)
	return r
}

// Disable removes the process-wide recorder; subsequent Get calls return
// nil and every site falls back to its ~1 ns disabled path.
func Disable() { global.Store(nil) }

// Get returns the process-wide recorder, or nil when recording is
// disabled. The cost is one atomic pointer load.
func Get() *Recorder { return global.Load() }

// Count bumps the process-wide dispatch counter for kernel k. This is the
// package-level convenience used by kernel entry points; it is the
// disabled-path benchmark's subject: one atomic load, one branch.
func Count(k Kernel) {
	if r := global.Load(); r != nil {
		r.CountKernel(k)
	}
}

// CountKernel bumps the recorder's dispatch counter for kernel k.
func (r *Recorder) CountKernel(k Kernel) {
	if r == nil {
		return
	}
	r.kernels[k].Add(1)
}

// Layer returns the named per-layer series, creating it on first use.
// Registration takes a mutex (cold path: executor construction); the
// returned handle records with atomics only. Executors of the same plan
// share series by name, so pooled executors aggregate into one row.
func (r *Recorder) Layer(name string) *LayerStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.byName[name]; ok {
		return l
	}
	l := &LayerStats{name: name}
	r.byName[name] = l
	r.ordered = append(r.ordered, l)
	return l
}

// Region returns the named fused-region series, creating it on first use.
// Like Layer, registration is the cold path (executor construction) and the
// handle records with atomics; executors of one plan share series by name.
func (r *Recorder) Region(name string) *RegionStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.regByName[name]; ok {
		return s
	}
	s := &RegionStats{name: name}
	r.regByName[name] = s
	r.regOrdered = append(r.regOrdered, s)
	return s
}

// Endpoint returns the named serving-endpoint series, creating it on first
// use. Registration is the cold path (batcher construction); the returned
// handle records with atomics only, so the serving hot path captures it once
// and never resolves the recorder again (one request's series can therefore
// never split across an Enable/Disable swap).
func (r *Recorder) Endpoint(name string) *EndpointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.epByName[name]; ok {
		return s
	}
	s := &EndpointStats{name: name}
	r.epByName[name] = s
	r.epOrdered = append(r.epOrdered, s)
	return s
}

// Autotune returns the named online-tuner series, creating it on first
// use. Registration is the cold path (tuner start); the plan tuner publishes
// its bandit state through the handle on every poll, so operators can watch
// promotions land via inspire-stats without touching the tuner itself.
func (r *Recorder) Autotune(name string) *AutotuneStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.atByName[name]; ok {
		return s
	}
	s := &AutotuneStats{name: name}
	r.atByName[name] = s
	r.atOrdered = append(r.atOrdered, s)
	return s
}

// AutotuneStats is one tuned layer's published bandit state: the serving
// implementation, how many executions the bandit routed, how many of them
// explored an alternate implementation, and how many promotions have
// happened. The plan tuner overwrites the fields on each poll (these are
// published gauges, not accumulated counters). All methods are atomic and
// nil-safe.
type AutotuneStats struct {
	name    string
	current atomic.Pointer[string]

	Executions   atomic.Int64
	Explorations atomic.Int64
	Promotions   atomic.Int64
}

// Name returns the series' registration name.
func (s *AutotuneStats) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Publish overwrites the published bandit state.
func (s *AutotuneStats) Publish(current string, execs, explores, promotions int64) {
	if s == nil {
		return
	}
	s.current.Store(&current)
	s.Executions.Store(execs)
	s.Explorations.Store(explores)
	s.Promotions.Store(promotions)
}

// EndpointStats aggregates one serving endpoint's traffic: completed and
// rejected requests, dispatched batches and the chunk counts they coalesced,
// queue-depth extents, and the end-to-end request latency histogram. The
// QPS window runs from the first to the last completed request. All methods
// are atomic and nil-safe, so the serving path holds a possibly-nil handle
// and records unconditionally.
type EndpointStats struct {
	name string

	// Requests counts completed (successful) requests; Errors counts
	// requests that reached execution and failed there.
	Requests atomic.Int64
	Errors   atomic.Int64
	// RejectedOverload counts admissions refused because the bounded queue
	// was full (HTTP 429); RejectedClosed counts submissions after shutdown
	// began (HTTP 503).
	RejectedOverload atomic.Int64
	RejectedClosed   atomic.Int64
	// Flushes counts dispatched batches; Items counts the compiled-batch
	// chunks those flushes carried (Items/Flushes = mean coalesced batch).
	Flushes atomic.Int64
	Items   atomic.Int64

	batchMax atomic.Int64
	queueMax atomic.Int64
	firstNs  atomic.Int64 // unix nanos of the first completed request (0 = none)
	lastNs   atomic.Int64

	// Lat is the end-to-end request latency (submit to result, including
	// queueing and coalescing wait).
	Lat Hist
}

// Name returns the endpoint's registration name.
func (s *EndpointStats) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// RecordRequest logs one completed request: its end-to-end latency and the
// wall-clock completion time in unix nanoseconds (bounds the QPS window).
func (s *EndpointStats) RecordRequest(latNs, nowUnixNs int64) {
	if s == nil {
		return
	}
	s.Requests.Add(1)
	s.Lat.Observe(latNs)
	atomicMinNZ(&s.firstNs, nowUnixNs)
	atomicMax(&s.lastNs, nowUnixNs)
}

// RecordFlush logs one dispatched batch carrying items compiled-batch
// chunks.
func (s *EndpointStats) RecordFlush(items int) {
	if s == nil {
		return
	}
	s.Flushes.Add(1)
	s.Items.Add(int64(items))
	atomicMax(&s.batchMax, int64(items))
}

// ObserveQueueDepth raises the queue-depth high-water mark.
func (s *EndpointStats) ObserveQueueDepth(depth int) {
	if s == nil {
		return
	}
	atomicMax(&s.queueMax, int64(depth))
}

// RegionStats aggregates one fused region's executions and the scheduler's
// memory model for it. Runs and Tiles are live counters; the byte fields
// are plan-time gauges set once via SetModel. All methods are atomic and
// nil-safe.
type RegionStats struct {
	name string
	mode atomic.Pointer[string]

	// Runs counts region-step executions; Tiles counts the tile passes
	// those runs performed (batch × tiles per image for tiled regions).
	Runs  atomic.Int64
	Tiles atomic.Int64

	retainedBytes    atomic.Int64
	spilledBytes     atomic.Int64
	fusedDRAMBytes   atomic.Int64
	unfusedDRAMBytes atomic.Int64
}

// Name returns the region's registration name.
func (s *RegionStats) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetModel records the scheduler's decision for the region: its execution
// mode ("tiled", "elementwise", or "spilled"), the intermediate bytes it
// retained on-chip vs spilled to the arena, and the modeled DRAM traffic
// with and without fusion. Idempotent; every executor of the plan sets the
// same values.
func (s *RegionStats) SetModel(mode string, retained, spilled, fusedDRAM, unfusedDRAM int64) {
	if s == nil {
		return
	}
	s.mode.Store(&mode)
	s.retainedBytes.Store(retained)
	s.spilledBytes.Store(spilled)
	s.fusedDRAMBytes.Store(fusedDRAM)
	s.unfusedDRAMBytes.Store(unfusedDRAM)
}

// LayerStats aggregates one layer's executions: dispatch counts and total
// latency per kernel family, a latency histogram, and batch-size extents.
// The per-kernel (count, sum-ns) pairs form the latency series the online
// autotuner polls — they attribute time to the implementation that actually
// ran, which the merged histogram cannot. All methods are atomic and
// nil-safe.
type LayerStats struct {
	name     string
	kernels  [KernelCount]atomic.Int64
	kernelNs [KernelCount]atomic.Int64
	lat      Hist
	batchSum atomic.Int64
	batchMax atomic.Int64
}

// Name returns the layer's registration name.
func (l *LayerStats) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Record logs one execution of the layer: the kernel that ran it, the
// wall-clock nanoseconds it took, and the batch size it processed.
func (l *LayerStats) Record(k Kernel, ns int64, batch int) {
	if l == nil {
		return
	}
	l.kernels[k].Add(1)
	l.kernelNs[k].Add(ns)
	l.lat.Observe(ns)
	l.batchSum.Add(int64(batch))
	atomicMax(&l.batchMax, int64(batch))
}

// KernelSample returns kernel k's cumulative latency series for this layer:
// how many executions it ran and their total nanoseconds. This is the
// autotuner's reward signal — polled as a cumulative series and differenced
// by the bandit, so concurrent recording never skews it.
func (l *LayerStats) KernelSample(k Kernel) (count, sumNs int64) {
	if l == nil {
		return 0, 0
	}
	return l.kernels[k].Load(), l.kernelNs[k].Load()
}

// PoolStats is the worker-pool telemetry: how many shard blocks were
// submitted, where they ran (helper goroutine, inline because no token was
// free, or on the caller as the always-local final block), how long spawned
// helpers waited to be scheduled, and the token occupancy observed at each
// parallel-region entry.
type PoolStats struct {
	HelperRuns      atomic.Int64 // blocks run on a pool helper goroutine
	InlineFallbacks atomic.Int64 // blocks run inline: no token free
	CallerRuns      atomic.Int64 // final blocks run by the caller (by design)
	SpawnWaitNs     atomic.Int64 // total ns between spawn and helper start
	OccupancySum    atomic.Int64 // sum of tokens-in-use samples
	OccupancyCount  atomic.Int64 // number of occupancy samples (For entries)
	OccupancyMax    atomic.Int64 // max tokens-in-use observed
}

// EnterRegion records one parallel-region entry with the number of pool
// tokens currently in use.
func (p *PoolStats) EnterRegion(tokensInUse int) {
	if p == nil {
		return
	}
	p.OccupancySum.Add(int64(tokensInUse))
	p.OccupancyCount.Add(1)
	atomicMax(&p.OccupancyMax, int64(tokensInUse))
}

// ExecStats is the executor/arena telemetry.
type ExecStats struct {
	Acquires   atomic.Int64 // Plan.AcquireExecutor calls
	PoolReuses atomic.Int64 // acquires served by a pooled (warm) executor
	Builds     atomic.Int64 // executors constructed (arena allocations)
	Releases   atomic.Int64 // Plan.ReleaseExecutor calls
	Runs       atomic.Int64 // Executor.Run calls
	RunErrors  atomic.Int64 // Runs that returned an error
	Batches    atomic.Int64 // Plan.RunBatch calls
	BatchItems atomic.Int64 // chunks dispatched across all RunBatch calls

	ArenaBytesResident atomic.Int64 // bytes of activation arenas built (resident in the pool)
	ArenaBytesPeak     atomic.Int64 // largest single plan arena built (the high-water metric the fused scheduler shrinks)
	ScratchHighWater   atomic.Int64 // max per-shard scratch floats observed

	RunNs Hist // end-to-end Run latency
}

// UpdateArenaPeak raises the single-plan arena high-water mark to bytes if
// it exceeds the recorded maximum.
func (e *ExecStats) UpdateArenaPeak(bytes int64) {
	if e == nil {
		return
	}
	atomicMax(&e.ArenaBytesPeak, bytes)
}

// UpdateScratchHighWater raises the scratch high-water mark to floats if it
// exceeds the recorded maximum.
func (e *ExecStats) UpdateScratchHighWater(floats int) {
	if e == nil {
		return
	}
	atomicMax(&e.ScratchHighWater, int64(floats))
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMinNZ lowers *a to v, treating 0 as "unset".
func atomicMinNZ(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur != 0 && cur <= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}
