//go:build race

package metrics

// raceEnabled reports whether the race detector instruments this build;
// it multiplies every atomic access by ~100x, so timing contracts are
// asserted only in uninstrumented builds.
const raceEnabled = true
