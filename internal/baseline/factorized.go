package baseline

import (
	"fmt"
	"sort"

	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Factorized is the UCNN-style value-factorized executor: each output row
// is Σ_v v·Σ_{i∈S(v)} x[i] with the index sets summed raw — exactly what
// index-pair encoding starts from, with no pair merging. It is the ablation
// that isolates the contribution of the pair dictionary.
type Factorized struct {
	M, K int
	Rows []FRow
}

// FRow is one output row's value groups.
type FRow struct {
	Terms []FTerm
}

// FTerm is one value group: coefficient Value applied to the sum of x at
// Idx.
type FTerm struct {
	Code  int32
	Value float32
	Idx   []int32
}

// NewFactorized builds the factorized form of a quantized weight matrix
// (dimension 0 = rows, rest flattened).
func NewFactorized(q *quant.Quantized) *Factorized {
	m := q.Shape[0]
	k := q.NumElements() / m
	f := &Factorized{M: m, K: k, Rows: make([]FRow, m)}
	scale := func(row int) float32 {
		if q.Scheme == quant.PerChannel && len(q.Params) > row {
			return q.Params[row].Scale
		}
		return q.Params[0].Scale
	}
	for r := 0; r < m; r++ {
		groups := make(map[int32][]int32)
		for i := 0; i < k; i++ {
			if c := q.Codes[r*k+i]; c != 0 {
				groups[c] = append(groups[c], int32(i))
			}
		}
		codes := make([]int32, 0, len(groups))
		for c := range groups {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
		for _, c := range codes {
			f.Rows[r].Terms = append(f.Rows[r].Terms, FTerm{
				Code: c, Value: float32(c) * scale(r), Idx: groups[c],
			})
		}
	}
	return f
}

// MatVec computes y = W_deq·x through the factorized form.
func (f *Factorized) MatVec(x, y []float32) {
	if len(x) < f.K || len(y) < f.M {
		panic("baseline: Factorized MatVec buffers too small")
	}
	for r := range f.Rows {
		var acc float32
		for _, t := range f.Rows[r].Terms {
			var g float32
			for _, i := range t.Idx {
				g += x[i]
			}
			acc += t.Value * g
		}
		y[r] = acc
	}
}

// MatMat applies the factorized matrix to a dense [K, P] matrix.
func (f *Factorized) MatMat(b *tensor.Tensor) *tensor.Tensor {
	if b.Shape().Rank() != 2 || b.Dim(0) != f.K {
		panic(fmt.Sprintf("baseline: Factorized MatMat wants [K=%d, P], got %v", f.K, b.Shape()))
	}
	p := b.Dim(1)
	out := tensor.New(f.M, p)
	f.MatMatInto(out.Data(), b.Data(), p, make([]float32, p))
	return out
}

// MatMatInto is MatMat over raw row-major buffers: b holds [K, p], dst
// receives [M, p] (zeroed before accumulation), and group is a work buffer
// of at least p floats.
func (f *Factorized) MatMatInto(dst, b []float32, p int, group []float32) {
	if len(b) < f.K*p || len(dst) < f.M*p || len(group) < p {
		panic("baseline: Factorized MatMatInto buffers too small")
	}
	f.matMatRows(dst, b, p, group, 0, f.M)
}

// MatMatIntoPar is MatMatInto sharded over output rows on the given
// parallelism context, each shard taking its private group work buffer
// from its scratch (one shard runs serially on shard 0's scratch). Rows
// are disjoint and each row's term walk is untouched, so results are
// bit-identical to the serial kernel for any shard count.
func (f *Factorized) MatMatIntoPar(dst, b []float32, p int, par *tensor.Par) {
	if len(b) < f.K*p || len(dst) < f.M*p {
		panic("baseline: Factorized MatMatInto buffers too small")
	}
	if par.Parallel() {
		par.For(f.M, func(shard, lo, hi int) {
			s := par.Scratch(shard)
			mark := s.Mark()
			f.matMatRows(dst, b, p, s.Take(p), lo, hi)
			s.Release(mark)
		})
		return
	}
	s := par.Scratch(0)
	mark := s.Mark()
	f.matMatRows(dst, b, p, s.Take(p), 0, f.M)
	s.Release(mark)
}

// matMatRows computes output rows [lo, hi), zeroing each before its value
// groups accumulate into it. group is a work buffer of at least p floats.
func (f *Factorized) matMatRows(dst, b []float32, p int, group []float32, lo, hi int) {
	bd, od := b, dst
	group = group[:p]
	for r := lo; r < hi; r++ {
		dst := od[r*p : (r+1)*p]
		for j := range dst[:p] {
			dst[j] = 0
		}
		for _, t := range f.Rows[r].Terms {
			for j := range group {
				group[j] = 0
			}
			for _, i := range t.Idx {
				src := bd[int(i)*p : int(i)*p+p]
				for j := range src {
					group[j] += src[j]
				}
			}
			for j := range dst[:p] {
				dst[j] += t.Value * group[j]
			}
		}
	}
}

// Cost returns the arithmetic cost of one MatVec.
func (f *Factorized) Cost() ipe.Cost {
	nnz := make([]int, f.M)
	terms := make([]int, f.M)
	for r, row := range f.Rows {
		terms[r] = len(row.Terms)
		for _, t := range row.Terms {
			nnz[r] += len(t.Idx)
		}
	}
	return ipe.FactorizedCost(nnz, terms)
}

// StreamSymbols returns the total index-stream length (for traffic models).
func (f *Factorized) StreamSymbols() int64 {
	var n int64
	for _, row := range f.Rows {
		for _, t := range row.Terms {
			n += int64(len(t.Idx))
		}
	}
	return n
}

// ConvFactorized is a convolution layer executed with per-group factorized
// weights over im2col columns.
type ConvFactorized struct {
	Spec  tensor.ConvSpec
	Mats  []*Factorized
	Bias  *tensor.Tensor
	Quant *quant.Quantized
}

// NewConvFactorized quantizes the OIHW weights and builds per-group
// factorized executors.
func NewConvFactorized(w, bias *tensor.Tensor, spec tensor.ConvSpec, bits int, scheme quant.Scheme) (*ConvFactorized, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !w.Shape().Equal(spec.WeightShape()) {
		return nil, fmt.Errorf("baseline: weight shape %v != expected %v", w.Shape(), spec.WeightShape())
	}
	q := quant.Quantize(w, bits, scheme)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	kSize := icg * spec.KH * spec.KW
	l := &ConvFactorized{Spec: spec, Bias: bias, Quant: q}
	for g := 0; g < spec.Groups; g++ {
		gq := &quant.Quantized{
			Codes:  q.Codes[g*ocg*kSize : (g+1)*ocg*kSize],
			Shape:  tensor.Shape{ocg, kSize},
			Bits:   q.Bits,
			Scheme: q.Scheme,
		}
		if q.Scheme == quant.PerChannel {
			gq.Params = q.Params[g*ocg : (g+1)*ocg]
		} else {
			gq.Params = q.Params
		}
		l.Mats = append(l.Mats, NewFactorized(gq))
	}
	return l, nil
}

// Forward runs the factorized convolution on an NCHW input.
func (l *ConvFactorized) Forward(in *tensor.Tensor) *tensor.Tensor {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	out := tensor.New(n, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(out, in, &s)
	return out
}

// ForwardInto is Forward writing into a preallocated [n, outC, oh, ow]
// destination, drawing work buffers from the caller's Scratch. dst must not
// alias in.
func (l *ConvFactorized) ForwardInto(dst, in *tensor.Tensor, s *tensor.Scratch) {
	metrics.Count(metrics.KernelFactorized)
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	mark := s.Mark()
	col := s.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s.Take(ocg * oh * ow)
	group := s.Take(oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupInto(col, in, b, g, spec)
			l.Mats[g].MatMatInto(res, col, oh*ow, group)
			addConvBias(od, res, l.Bias, spec.OutC, b, g, ocg, oh*ow)
		}
	}
	s.Release(mark)
}

// ForwardIntoPar is ForwardInto sharded on the given parallelism context:
// im2col over matrix rows, the factorized matmul over output channels with
// per-shard group buffers. The shared col/res staging buffers come from
// shard 0's scratch, taken before each parallel region and released after
// it joins. Results are bit-identical to ForwardInto.
func (l *ConvFactorized) ForwardIntoPar(dst, in *tensor.Tensor, par *tensor.Par) {
	metrics.Count(metrics.KernelFactorized)
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	s0 := par.Scratch(0)
	mark := s0.Mark()
	col := s0.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s0.Take(ocg * oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupIntoPar(col, in, b, g, spec, par)
			l.Mats[g].MatMatIntoPar(res, col, oh*ow, par)
			addConvBias(od, res, l.Bias, spec.OutC, b, g, ocg, oh*ow)
		}
	}
	s0.Release(mark)
}

// Cost aggregates the per-pixel arithmetic cost across groups.
func (l *ConvFactorized) Cost() ipe.Cost {
	var total ipe.Cost
	for _, m := range l.Mats {
		c := m.Cost()
		total.Adds += c.Adds
		total.Muls += c.Muls
		total.StreamSymbols += c.StreamSymbols
	}
	return total
}
