package baseline

import (
	"repro/internal/tensor"
)

// Registration shims for the conformance harness (internal/conformance),
// plus the dense decoders the harness's whole-graph oracle needs to
// reconstruct the effective (dequantized) weights of a compiled layer.

// Dense reconstructs the dense [M, K] matrix a CSR stores. Dropped entries
// come back as exact zeros, so the reconstruction equals the matrix the CSR
// was built from whenever that matrix's zeros were exact (true for
// quantized weights, where the zero code dequantizes to 0).
func (c *CSR) Dense() *tensor.Tensor {
	out := tensor.New(c.M, c.K)
	d := out.Data()
	for r := 0; r < c.M; r++ {
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			d[r*c.K+int(c.Col[i])] = c.Val[i]
		}
	}
	return out
}

// Dense reconstructs the dense [M, K] dequantized matrix of the factorized
// form (value groups scatter their Value back to their indices).
func (f *Factorized) Dense() *tensor.Tensor {
	out := tensor.New(f.M, f.K)
	d := out.Data()
	for r := range f.Rows {
		for _, t := range f.Rows[r].Terms {
			for _, i := range t.Idx {
				d[r*f.K+int(i)] = t.Value
			}
		}
	}
	return out
}

// CSRConvVariant is one execution path of the CSR convolution layer.
type CSRConvVariant struct {
	Name    string
	UsesPar bool
	F       func(l *ConvCSR, dst, in *tensor.Tensor, par *tensor.Par)
}

// CSRConvVariants enumerates ConvCSR's float paths (bit-identical for any
// shard count, documented on ForwardIntoPar).
func CSRConvVariants() []CSRConvVariant {
	return []CSRConvVariant{
		{Name: "forward", F: func(l *ConvCSR, dst, in *tensor.Tensor, par *tensor.Par) {
			copy(dst.Data(), l.Forward(in).Data())
		}},
		{Name: "forward-into", F: func(l *ConvCSR, dst, in *tensor.Tensor, par *tensor.Par) {
			var s tensor.Scratch
			l.ForwardInto(dst, in, &s)
		}},
		{Name: "forward-into-par", UsesPar: true, F: func(l *ConvCSR, dst, in *tensor.Tensor, par *tensor.Par) {
			l.ForwardIntoPar(dst, in, par)
		}},
	}
}

// FactConvVariant is one execution path of the factorized convolution
// layer.
type FactConvVariant struct {
	Name    string
	UsesPar bool
	F       func(l *ConvFactorized, dst, in *tensor.Tensor, par *tensor.Par)
}

// FactConvVariants enumerates ConvFactorized's float paths (bit-identical
// for any shard count, documented on ForwardIntoPar).
func FactConvVariants() []FactConvVariant {
	return []FactConvVariant{
		{Name: "forward", F: func(l *ConvFactorized, dst, in *tensor.Tensor, par *tensor.Par) {
			copy(dst.Data(), l.Forward(in).Data())
		}},
		{Name: "forward-into", F: func(l *ConvFactorized, dst, in *tensor.Tensor, par *tensor.Par) {
			var s tensor.Scratch
			l.ForwardInto(dst, in, &s)
		}},
		{Name: "forward-into-par", UsesPar: true, F: func(l *ConvFactorized, dst, in *tensor.Tensor, par *tensor.Par) {
			l.ForwardIntoPar(dst, in, par)
		}},
	}
}

// WinogradVariant is one execution path of the Winograd convolution layer.
type WinogradVariant struct {
	Name    string
	UsesPar bool
	F       func(l *ConvWinograd, dst, in *tensor.Tensor, par *tensor.Par)
}

// WinogradVariants enumerates ConvWinograd's paths (bit-identical for any
// shard count, documented on ForwardIntoPar).
func WinogradVariants() []WinogradVariant {
	return []WinogradVariant{
		{Name: "forward", F: func(l *ConvWinograd, dst, in *tensor.Tensor, par *tensor.Par) {
			copy(dst.Data(), l.Forward(in).Data())
		}},
		{Name: "forward-into", F: func(l *ConvWinograd, dst, in *tensor.Tensor, par *tensor.Par) {
			var s tensor.Scratch
			l.ForwardInto(dst, in, &s)
		}},
		{Name: "forward-into-par", UsesPar: true, F: func(l *ConvWinograd, dst, in *tensor.Tensor, par *tensor.Par) {
			l.ForwardIntoPar(dst, in, par)
		}},
	}
}

// MatVariant is one execution path of a sparse/factorized [M, K]·[K, P]
// matrix product writing into a raw [M, P] buffer.
type MatVariant struct {
	Name    string
	UsesPar bool
	F       func(dst, b []float32, p int, par *tensor.Par)
}

// CSRMatVariants enumerates the matrix-product paths of one CSR instance.
// The row-vector MatVec walks the same nonzeros in the same order, so all
// variants are one bit-identical family.
func CSRMatVariants(c *CSR) []MatVariant {
	return []MatVariant{
		{Name: "matmat", F: func(dst, b []float32, p int, par *tensor.Par) {
			copy(dst, c.MatMat(tensor.From(b, c.K, p)).Data())
		}},
		{Name: "matmat-into", F: func(dst, b []float32, p int, par *tensor.Par) {
			c.MatMatInto(dst, b, p)
		}},
		{Name: "matmat-into-par", UsesPar: true, F: func(dst, b []float32, p int, par *tensor.Par) {
			c.MatMatIntoPar(dst, b, p, par)
		}},
	}
}

// FactMatVariants enumerates the matrix-product paths of one Factorized
// instance.
func FactMatVariants(f *Factorized) []MatVariant {
	return []MatVariant{
		{Name: "matmat", F: func(dst, b []float32, p int, par *tensor.Par) {
			copy(dst, f.MatMat(tensor.From(b, f.K, p)).Data())
		}},
		{Name: "matmat-into", F: func(dst, b []float32, p int, par *tensor.Par) {
			f.MatMatInto(dst, b, p, make([]float32, p))
		}},
		{Name: "matmat-into-par", UsesPar: true, F: func(dst, b []float32, p int, par *tensor.Par) {
			f.MatMatIntoPar(dst, b, p, par)
		}},
	}
}
