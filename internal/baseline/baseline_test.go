package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestCSRKnownMatrix(t *testing.T) {
	w := tensor.From([]float32{1, 0, 2, 0, 0, 3}, 2, 3)
	c := NewCSR(w)
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
	if c.Density() != 0.5 {
		t.Fatalf("Density = %v, want 0.5", c.Density())
	}
	y := make([]float32, 2)
	c.MatVec([]float32{1, 10, 100}, y)
	if y[0] != 201 || y[1] != 300 {
		t.Fatalf("MatVec = %v, want [201 300]", y)
	}
}

func TestCSRMatVecMatchesDenseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, k := 1+r.Intn(20), 1+r.Intn(40)
		w := tensor.New(m, k)
		tensor.FillGaussian(w, r, 1)
		quant.PruneMagnitude(w, 0.7)
		c := NewCSR(w)
		x := make([]float32, k)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		got := make([]float32, m)
		c.MatVec(x, got)
		want := make([]float32, m)
		tensor.MatVec(w.Data(), x, want, m, k)
		for i := range got {
			d := got[i] - want[i]
			if d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatMatMatchesMatVec(t *testing.T) {
	r := tensor.NewRNG(2)
	w := tensor.New(8, 16)
	tensor.FillGaussian(w, r, 1)
	quant.PruneMagnitude(w, 0.5)
	c := NewCSR(w)
	b := tensor.New(16, 5)
	tensor.FillGaussian(b, r, 1)
	got := c.MatMat(b)
	x := make([]float32, 16)
	y := make([]float32, 8)
	for j := 0; j < 5; j++ {
		for i := 0; i < 16; i++ {
			x[i] = b.At(i, j)
		}
		c.MatVec(x, y)
		for i := 0; i < 8; i++ {
			d := got.At(i, j) - y[i]
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("MatMat[%d,%d]=%v, MatVec=%v", i, j, got.At(i, j), y[i])
			}
		}
	}
}

func TestCSRFromQuantizedDropsZeroCodes(t *testing.T) {
	r := tensor.NewRNG(3)
	w := tensor.New(8, 32)
	tensor.FillGaussian(w, r, 1)
	quant.PruneMagnitude(w, 0.75)
	q := quant.Quantize(w, 4, quant.PerTensor)
	c := NewCSRFromQuantized(q)
	nonzero := 0
	for _, code := range q.Codes {
		if code != 0 {
			nonzero++
		}
	}
	if c.NNZ() != nonzero {
		t.Fatalf("CSR NNZ %d != nonzero codes %d", c.NNZ(), nonzero)
	}
}

func TestConvCSRMatchesReference(t *testing.T) {
	r := tensor.NewRNG(4)
	spec := tensor.ConvSpec{InC: 4, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	quant.PruneMagnitude(w, 0.6)
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, r, 0.1)
	l, err := NewConvCSR(w, bias, spec, 8, quant.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 4, 8, 8)
	tensor.FillGaussian(in, r, 1)
	got := l.Forward(in)
	want := tensor.Conv2D(in, l.Quant.Dequantize(), bias, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("ConvCSR diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestFactorizedMatchesDenseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, k := 1+r.Intn(16), 1+r.Intn(32)
		w := tensor.New(m, k)
		tensor.FillGaussian(w, r, 1)
		q := quant.Quantize(w, 1+r.Intn(6), quant.PerTensor)
		fa := NewFactorized(q)
		deq := q.Dequantize()
		x := make([]float32, k)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		got := make([]float32, m)
		fa.MatVec(x, got)
		want := make([]float32, m)
		tensor.MatVec(deq.Data(), x, want, m, k)
		for i := range got {
			d := float64(got[i] - want[i])
			if d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizedCostMatchesStructure(t *testing.T) {
	q := &quant.Quantized{
		Codes:  []int32{1, 1, 2, 0, 3, 3, 3, 0},
		Shape:  tensor.Shape{2, 4},
		Bits:   4,
		Scheme: quant.PerTensor,
		Params: []quant.Params{{Scale: 1}},
	}
	f := NewFactorized(q)
	c := f.Cost()
	// Row 0: values {1:[0,1], 2:[2]} → nnz 3, terms 2.
	// Row 1: values {3:[0,1,2]} → nnz 3, terms 1.
	// Adds = nnz total = 6, Muls = 3 terms.
	if c.Adds != 6 || c.Muls != 3 {
		t.Fatalf("Cost = %+v, want Adds=6 Muls=3", c)
	}
	if f.StreamSymbols() != 6 {
		t.Fatalf("StreamSymbols = %d, want 6", f.StreamSymbols())
	}
}

func TestConvFactorizedMatchesReference(t *testing.T) {
	r := tensor.NewRNG(5)
	spec := tensor.ConvSpec{InC: 4, OutC: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	l, err := NewConvFactorized(w, nil, spec, 4, quant.PerTensor)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(2, 4, 9, 9)
	tensor.FillGaussian(in, r, 1)
	got := l.Forward(in)
	want := tensor.Conv2D(in, l.Quant.Dequantize(), nil, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("ConvFactorized diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvFactorizedGrouped(t *testing.T) {
	r := tensor.NewRNG(6)
	spec := tensor.ConvSpec{InC: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 8}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	l, err := NewConvFactorized(w, nil, spec, 4, quant.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 8, 6, 6)
	tensor.FillGaussian(in, r, 1)
	got := l.Forward(in)
	want := tensor.Conv2D(in, l.Quant.Dequantize(), nil, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("grouped ConvFactorized diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestIPEBeatsFactorizedWhichBeatsDense(t *testing.T) {
	// The op-count ordering that defines the evaluation narrative:
	// dense ≥ factorized ≥ IPE at low bit-width.
	r := tensor.NewRNG(7)
	w := tensor.New(32, 128)
	tensor.FillGaussian(w, r, 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	fact := NewFactorized(q).Cost()
	prog, _, err := ipe.Encode(q, ipe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ipeCost := prog.Cost()
	dense := ipe.DenseCost(32, 128)
	if fact.Total() >= dense.Total() {
		t.Fatalf("factorized (%d) should beat dense (%d) at 4 bits", fact.Total(), dense.Total())
	}
	if ipeCost.Total() >= fact.Total() {
		t.Fatalf("IPE (%d) should beat factorized (%d) at 4 bits", ipeCost.Total(), fact.Total())
	}
}

func TestCSRRejectsNonMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-3 input")
		}
	}()
	NewCSR(tensor.New(2, 2, 2))
}
