// Package baseline implements the comparison points of the evaluation:
// CSR sparse execution (wins only on zero weights) and UCNN-style
// value-factorized execution (one multiply per distinct weight value, but
// no index-pair merging). The delta between the factorized baseline and
// internal/ipe is the paper's contribution.
package baseline

import (
	"fmt"

	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// CSR is a compressed-sparse-row matrix over float32 values.
type CSR struct {
	M, K   int
	RowPtr []int32 // length M+1
	Col    []int32 // length nnz
	Val    []float32
}

// NewCSR compresses a dense [m, k] matrix, dropping exact zeros.
func NewCSR(w *tensor.Tensor) *CSR {
	if w.Shape().Rank() != 2 {
		panic(fmt.Sprintf("baseline: NewCSR wants [m,k], got %v", w.Shape()))
	}
	m, k := w.Dim(0), w.Dim(1)
	c := &CSR{M: m, K: k, RowPtr: make([]int32, m+1)}
	d := w.Data()
	for r := 0; r < m; r++ {
		for i := 0; i < k; i++ {
			if v := d[r*k+i]; v != 0 {
				c.Col = append(c.Col, int32(i))
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.Col))
	}
	return c
}

// NewCSRFromQuantized compresses the dequantized values of q, dropping
// zero codes, so the CSR baseline competes on the same quantized weights
// the encoded kernels use.
func NewCSRFromQuantized(q *quant.Quantized) *CSR {
	return NewCSR(q.Dequantize().Reshape(q.Shape[0], q.NumElements()/q.Shape[0]))
}

// NNZ returns the stored nonzero count.
func (c *CSR) NNZ() int { return len(c.Val) }

// Density returns nnz/(m·k).
func (c *CSR) Density() float64 {
	if c.M*c.K == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.M*c.K)
}

// MatVec computes y = A·x.
func (c *CSR) MatVec(x, y []float32) {
	if len(x) < c.K || len(y) < c.M {
		panic("baseline: CSR MatVec buffers too small")
	}
	for r := 0; r < c.M; r++ {
		var acc float32
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			acc += c.Val[i] * x[c.Col[i]]
		}
		y[r] = acc
	}
}

// MatMat computes A·B for a dense [K, P] matrix B, returning [M, P].
func (c *CSR) MatMat(b *tensor.Tensor) *tensor.Tensor {
	if b.Shape().Rank() != 2 || b.Dim(0) != c.K {
		panic(fmt.Sprintf("baseline: CSR MatMat wants [K=%d, P], got %v", c.K, b.Shape()))
	}
	p := b.Dim(1)
	out := tensor.New(c.M, p)
	c.MatMatInto(out.Data(), b.Data(), p)
	return out
}

// MatMatInto is MatMat over raw row-major buffers: b holds [K, p], dst
// receives [M, p]. dst is zeroed before accumulation, so it need not be
// clean.
func (c *CSR) MatMatInto(dst, b []float32, p int) {
	if len(b) < c.K*p || len(dst) < c.M*p {
		panic("baseline: CSR MatMatInto buffers too small")
	}
	c.matMatRows(dst, b, p, 0, c.M)
}

// MatMatIntoPar is MatMatInto sharded over output rows on the given
// parallelism context (nil par or one shard runs serially). Rows are
// disjoint and each row's accumulation walk is untouched, so results are
// bit-identical to the serial kernel for any shard count.
func (c *CSR) MatMatIntoPar(dst, b []float32, p int, par *tensor.Par) {
	if len(b) < c.K*p || len(dst) < c.M*p {
		panic("baseline: CSR MatMatInto buffers too small")
	}
	if par.Parallel() {
		par.For(c.M, func(shard, lo, hi int) {
			c.matMatRows(dst, b, p, lo, hi)
		})
		return
	}
	c.matMatRows(dst, b, p, 0, c.M)
}

// matMatRows computes output rows [lo, hi), zeroing each before its
// nonzeros accumulate into it.
func (c *CSR) matMatRows(dst, b []float32, p, lo, hi int) {
	bd, od := b, dst
	for r := lo; r < hi; r++ {
		dst := od[r*p : (r+1)*p]
		for j := range dst {
			dst[j] = 0
		}
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			v := c.Val[i]
			src := bd[int(c.Col[i])*p : int(c.Col[i])*p+p]
			for j := range src {
				dst[j] += v * src[j]
			}
		}
	}
}

// Cost returns the arithmetic cost of one MatVec.
func (c *CSR) Cost() ipe.Cost { return ipe.SparseCost(int64(c.NNZ())) }

// ConvCSR is a convolution layer executed with per-group CSR weights over
// im2col columns.
type ConvCSR struct {
	Spec  tensor.ConvSpec
	Mats  []*CSR // one per group
	Bias  *tensor.Tensor
	Quant *quant.Quantized
}

// NewConvCSR quantizes the OIHW weights and builds the per-group CSR
// matrices.
func NewConvCSR(w, bias *tensor.Tensor, spec tensor.ConvSpec, bits int, scheme quant.Scheme) (*ConvCSR, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !w.Shape().Equal(spec.WeightShape()) {
		return nil, fmt.Errorf("baseline: weight shape %v != expected %v", w.Shape(), spec.WeightShape())
	}
	q := quant.Quantize(w, bits, scheme)
	deq := q.Dequantize()
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	kSize := icg * spec.KH * spec.KW
	l := &ConvCSR{Spec: spec, Bias: bias, Quant: q}
	dd := deq.Data()
	for g := 0; g < spec.Groups; g++ {
		sub := tensor.From(dd[g*ocg*kSize:(g+1)*ocg*kSize], ocg, kSize)
		l.Mats = append(l.Mats, NewCSR(sub))
	}
	return l, nil
}

// Forward runs the sparse convolution on an NCHW input.
func (l *ConvCSR) Forward(in *tensor.Tensor) *tensor.Tensor {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	out := tensor.New(n, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(out, in, &s)
	return out
}

// ForwardInto is Forward writing into a preallocated [n, outC, oh, ow]
// destination, drawing im2col and result buffers from the caller's Scratch.
// dst must not alias in.
func (l *ConvCSR) ForwardInto(dst, in *tensor.Tensor, s *tensor.Scratch) {
	metrics.Count(metrics.KernelCSR)
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	mark := s.Mark()
	col := s.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s.Take(ocg * oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupInto(col, in, b, g, spec)
			l.Mats[g].MatMatInto(res, col, oh*ow)
			addConvBias(od, res, l.Bias, spec.OutC, b, g, ocg, oh*ow)
		}
	}
	s.Release(mark)
}

// ForwardIntoPar is ForwardInto sharded on the given parallelism context:
// im2col over matrix rows, the sparse matmul over output channels. The
// shared col/res staging buffers come from shard 0's scratch, taken before
// each parallel region and released after it joins. Results are
// bit-identical to ForwardInto.
func (l *ConvCSR) ForwardIntoPar(dst, in *tensor.Tensor, par *tensor.Par) {
	metrics.Count(metrics.KernelCSR)
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	s0 := par.Scratch(0)
	mark := s0.Mark()
	col := s0.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s0.Take(ocg * oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupIntoPar(col, in, b, g, spec, par)
			l.Mats[g].MatMatIntoPar(res, col, oh*ow, par)
			addConvBias(od, res, l.Bias, spec.OutC, b, g, ocg, oh*ow)
		}
	}
	s0.Release(mark)
}

// addConvBias copies group g's [ocg, hw] result block into the output of
// batch element b, adding the per-channel bias.
func addConvBias(od, res []float32, bias *tensor.Tensor, outC, b, g, ocg, hw int) {
	for oc := 0; oc < ocg; oc++ {
		dst := od[(b*outC+g*ocg+oc)*hw : (b*outC+g*ocg+oc)*hw+hw]
		var bv float32
		if bias != nil {
			bv = bias.Data()[g*ocg+oc]
		}
		src := res[oc*hw : (oc+1)*hw]
		for i, v := range src {
			dst[i] = v + bv
		}
	}
}

// NNZ returns the total stored nonzeros across groups.
func (l *ConvCSR) NNZ() int64 {
	var n int64
	for _, m := range l.Mats {
		n += int64(m.NNZ())
	}
	return n
}
