package baseline

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// forcedPar builds a Par with real helper tokens so the sharded paths run
// on goroutines even on single-core machines.
func forcedPar(shards int) *tensor.Par {
	return tensor.NewPar(parallel.NewPool(shards), shards)
}

func parTestConvInputs(t *testing.T, spec tensor.ConvSpec) (in, w, bias *tensor.Tensor) {
	t.Helper()
	in = tensor.New(2, spec.InC, 10, 10)
	tensor.FillGaussian(in, tensor.NewRNG(51), 1)
	w = tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(52), 0.1)
	bias = tensor.New(spec.OutC)
	tensor.FillGaussian(bias, tensor.NewRNG(53), 0.1)
	return in, w, bias
}

func expectSame(t *testing.T, name string, shards int, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s shards=%d: [%d] = %v != serial %v (bit-exact required)",
				name, shards, i, got[i], want[i])
		}
	}
}

// TestConvCSRForwardIntoParBitIdentical checks the channel-sharded sparse
// convolution against the serial path.
func TestConvCSRForwardIntoParBitIdentical(t *testing.T) {
	spec := tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in, w, bias := parTestConvInputs(t, spec)
	l, err := NewConvCSR(w, bias, spec, 4, quant.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := spec.OutDims(10, 10)
	want := tensor.New(2, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(want, in, &s)
	for _, shards := range []int{1, 2, 5, 16} {
		got := tensor.New(2, spec.OutC, oh, ow)
		l.ForwardIntoPar(got, in, forcedPar(shards))
		expectSame(t, "ConvCSR", shards, got.Data(), want.Data())
	}
}

// TestConvFactorizedForwardIntoParBitIdentical checks the channel-sharded
// value-factorized convolution (per-shard group buffers) against the
// serial path.
func TestConvFactorizedForwardIntoParBitIdentical(t *testing.T) {
	spec := tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in, w, bias := parTestConvInputs(t, spec)
	l, err := NewConvFactorized(w, bias, spec, 4, quant.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := spec.OutDims(10, 10)
	want := tensor.New(2, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(want, in, &s)
	for _, shards := range []int{1, 2, 5, 16} {
		got := tensor.New(2, spec.OutC, oh, ow)
		l.ForwardIntoPar(got, in, forcedPar(shards))
		expectSame(t, "ConvFactorized", shards, got.Data(), want.Data())
	}
}

// TestConvWinogradForwardIntoParBitIdentical checks the tile-row-sharded
// Winograd convolution against the serial path, including odd output
// extents (partial edge tiles).
func TestConvWinogradForwardIntoParBitIdentical(t *testing.T) {
	spec := tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	for _, hw := range []int{7, 10} { // odd and even output extents
		in := tensor.New(2, spec.InC, hw, hw)
		tensor.FillGaussian(in, tensor.NewRNG(54), 1)
		w := tensor.New(spec.WeightShape()...)
		tensor.FillGaussian(w, tensor.NewRNG(55), 0.1)
		bias := tensor.New(spec.OutC)
		tensor.FillGaussian(bias, tensor.NewRNG(56), 0.1)
		l, err := NewConvWinograd(w, bias, spec)
		if err != nil {
			t.Fatal(err)
		}
		oh, ow := spec.OutDims(hw, hw)
		want := tensor.New(2, spec.OutC, oh, ow)
		var s tensor.Scratch
		l.ForwardInto(want, in, &s)
		for _, shards := range []int{1, 2, 3, 13} {
			got := tensor.New(2, spec.OutC, oh, ow)
			l.ForwardIntoPar(got, in, forcedPar(shards))
			expectSame(t, "ConvWinograd", shards, got.Data(), want.Data())
		}
	}
}

// TestCSRMatMatIntoParBitIdentical exercises the row-sharded sparse matmul
// directly on a rectangular matrix.
func TestCSRMatMatIntoParBitIdentical(t *testing.T) {
	w := tensor.New(33, 20)
	tensor.FillGaussian(w, tensor.NewRNG(57), 0.2)
	c := NewCSR(w)
	b := tensor.New(20, 45)
	tensor.FillGaussian(b, tensor.NewRNG(58), 1)
	want := make([]float32, 33*45)
	c.MatMatInto(want, b.Data(), 45)
	for _, shards := range []int{2, 7, 40} {
		got := make([]float32, 33*45)
		c.MatMatIntoPar(got, b.Data(), 45, forcedPar(shards))
		expectSame(t, "CSR.MatMat", shards, got, want)
	}
}
