package baseline

import (
	"fmt"

	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// ConvWinograd executes 3×3 stride-1 convolutions with the Winograd
// F(2×2, 3×3) minimal-filtering algorithm: 16 multiplies per 2×2 output
// tile per channel instead of 36 — the strongest *dense* competitor (the
// algorithm behind cuDNN's fastest 3×3 kernels). It fills the dense slot
// of the comparison where applicable; IPE must beat it on arithmetic at
// low bit-widths to justify the encoding.
type ConvWinograd struct {
	Spec tensor.ConvSpec
	// U holds the transformed filters: [outC][inC][16] in tile-major
	// (4x4 row-major) order.
	U    [][][16]float32
	Bias *tensor.Tensor
}

// NewConvWinograd precomputes the filter transform U = G·g·Gᵀ. Only dense
// (groups == 1) 3×3 stride-1 convolutions are supported; callers fall back
// to direct convolution otherwise.
func NewConvWinograd(w, bias *tensor.Tensor, spec tensor.ConvSpec) (*ConvWinograd, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.KH != 3 || spec.KW != 3 || spec.StrideH != 1 || spec.StrideW != 1 || spec.Groups != 1 {
		return nil, fmt.Errorf("baseline: Winograd F(2x2,3x3) requires dense 3x3 stride-1 conv, got %+v", spec)
	}
	if !w.Shape().Equal(spec.WeightShape()) {
		return nil, fmt.Errorf("baseline: weight shape %v != expected %v", w.Shape(), spec.WeightShape())
	}
	l := &ConvWinograd{Spec: spec, Bias: bias}
	l.U = make([][][16]float32, spec.OutC)
	wd := w.Data()
	for oc := 0; oc < spec.OutC; oc++ {
		l.U[oc] = make([][16]float32, spec.InC)
		for ic := 0; ic < spec.InC; ic++ {
			var g [9]float32
			copy(g[:], wd[(oc*spec.InC+ic)*9:(oc*spec.InC+ic)*9+9])
			l.U[oc][ic] = filterTransform(g)
		}
	}
	return l, nil
}

// filterTransform computes G·g·Gᵀ for the 3×3 filter g, with
// G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]].
func filterTransform(g [9]float32) [16]float32 {
	// t = G·g  (4x3)
	var t [12]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[0*3+c], g[1*3+c], g[2*3+c]
		t[0*3+c] = g0
		t[1*3+c] = 0.5 * (g0 + g1 + g2)
		t[2*3+c] = 0.5 * (g0 - g1 + g2)
		t[3*3+c] = g2
	}
	// u = t·Gᵀ (4x4)
	var u [16]float32
	for r := 0; r < 4; r++ {
		t0, t1, t2 := t[r*3+0], t[r*3+1], t[r*3+2]
		u[r*4+0] = t0
		u[r*4+1] = 0.5 * (t0 + t1 + t2)
		u[r*4+2] = 0.5 * (t0 - t1 + t2)
		u[r*4+3] = t2
	}
	return u
}

// inputTransform computes Bᵀ·d·B for a 4×4 input tile d, with
// Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]].
func inputTransform(d [16]float32) [16]float32 {
	var t [16]float32
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[0*4+c], d[1*4+c], d[2*4+c], d[3*4+c]
		t[0*4+c] = d0 - d2
		t[1*4+c] = d1 + d2
		t[2*4+c] = d2 - d1
		t[3*4+c] = d1 - d3
	}
	var v [16]float32
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r*4+0], t[r*4+1], t[r*4+2], t[r*4+3]
		v[r*4+0] = t0 - t2
		v[r*4+1] = t1 + t2
		v[r*4+2] = t2 - t1
		v[r*4+3] = t1 - t3
	}
	return v
}

// outputTransform computes Aᵀ·m·A for the 4×4 elementwise product m, with
// Aᵀ = [[1,1,1,0],[0,1,-1,-1]], yielding the 2×2 output tile.
func outputTransform(m [16]float32) [4]float32 {
	var t [8]float32 // 2x4
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[0*4+c], m[1*4+c], m[2*4+c], m[3*4+c]
		t[0*4+c] = m0 + m1 + m2
		t[1*4+c] = m1 - m2 - m3
	}
	var y [4]float32
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r*4+0], t[r*4+1], t[r*4+2], t[r*4+3]
		y[r*2+0] = t0 + t1 + t2
		y[r*2+1] = t1 - t2 - t3
	}
	return y
}

// Forward runs the Winograd convolution on an NCHW input. Outputs match
// tensor.Conv2D up to float rounding; odd output extents fall back to
// computing the final row/column tiles over zero-padded input (exact).
func (l *ConvWinograd) Forward(in *tensor.Tensor) *tensor.Tensor {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	out := tensor.New(n, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(out, in, &s)
	return out
}

// ForwardInto is Forward writing into a preallocated [n, outC, oh, ow]
// destination, drawing the transformed-tile buffer from the caller's
// Scratch. dst must not alias in.
func (l *ConvWinograd) ForwardInto(dst, in *tensor.Tensor, s *tensor.Scratch) {
	metrics.Count(metrics.KernelWinograd)
	spec := l.Spec
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	nTilesY := (oh + 1) / 2
	mark := s.Mark()
	vTiles := s.Take(c * 16) // transformed input tiles, 16 floats per channel
	l.forwardTileRows(dst, in, oh, ow, vTiles, 0, n*nTilesY)
	s.Release(mark)
}

// ForwardIntoPar is ForwardInto sharded over flattened (batch, tile-row)
// units on the given parallelism context, each shard holding its private
// transformed-tile buffer in its scratch (one shard runs serially on shard
// 0's scratch). Tile rows own disjoint output rows and every tile's
// transforms are untouched, so results are bit-identical to ForwardInto.
// Sharding over tile rows rather than output channels keeps each input
// tile's transform computed once per shard instead of once per channel.
func (l *ConvWinograd) ForwardIntoPar(dst, in *tensor.Tensor, par *tensor.Par) {
	metrics.Count(metrics.KernelWinograd)
	spec := l.Spec
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("baseline: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	nTilesY := (oh + 1) / 2
	units := n * nTilesY
	if par.Parallel() {
		par.For(units, func(shard, lo, hi int) {
			s := par.Scratch(shard)
			mark := s.Mark()
			l.forwardTileRows(dst, in, oh, ow, s.Take(c*16), lo, hi)
			s.Release(mark)
		})
		return
	}
	s := par.Scratch(0)
	mark := s.Mark()
	l.forwardTileRows(dst, in, oh, ow, s.Take(c*16), 0, units)
	s.Release(mark)
}

// forwardTileRows computes the flattened (batch, tile-row) units [lo, hi),
// where unit u covers output rows 2·(u%nTilesY) and 2·(u%nTilesY)+1 of
// batch element u/nTilesY. vTiles is a work buffer of c·16 floats.
func (l *ConvWinograd) forwardTileRows(dst, in *tensor.Tensor, oh, ow int, vTiles []float32, lo, hi int) {
	spec := l.Spec
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	ind, od := in.Data(), dst.Data()
	nTilesY := (oh + 1) / 2
	nTilesX := (ow + 1) / 2
	for u := lo; u < hi; u++ {
		b, ty := u/nTilesY, u%nTilesY
		for tx := 0; tx < nTilesX; tx++ {
			iy0 := ty*2 - spec.PadH
			ix0 := tx*2 - spec.PadW
			for ic := 0; ic < c; ic++ {
				var d [16]float32
				base := (b*c + ic) * h * w
				for r := 0; r < 4; r++ {
					iy := iy0 + r
					if iy < 0 || iy >= h {
						continue
					}
					for cc := 0; cc < 4; cc++ {
						ix := ix0 + cc
						if ix < 0 || ix >= w {
							continue
						}
						d[r*4+cc] = ind[base+iy*w+ix]
					}
				}
				v := inputTransform(d)
				copy(vTiles[ic*16:ic*16+16], v[:])
			}
			for oc := 0; oc < spec.OutC; oc++ {
				var m [16]float32
				uRow := l.U[oc]
				for ic := 0; ic < c; ic++ {
					u := &uRow[ic]
					v := vTiles[ic*16 : ic*16+16]
					for i := 0; i < 16; i++ {
						m[i] += u[i] * v[i]
					}
				}
				y := outputTransform(m)
				var bv float32
				if l.Bias != nil {
					bv = l.Bias.Data()[oc]
				}
				obase := (b*spec.OutC + oc) * oh * ow
				for r := 0; r < 2; r++ {
					oy := ty*2 + r
					if oy >= oh {
						continue
					}
					for cc := 0; cc < 2; cc++ {
						ox := tx*2 + cc
						if ox >= ow {
							continue
						}
						od[obase+oy*ow+ox] = y[r*2+cc] + bv
					}
				}
			}
		}
	}
}

// Cost returns the per-inference arithmetic cost for an input of h×w with
// batch n: 16 multiplies per channel per 2×2 tile, plus the input (32
// adds/tile/ic), accumulate (16 adds/tile/ic) and output (24 adds/tile/oc)
// transforms.
func (l *ConvWinograd) Cost(n, h, w int) ipe.Cost {
	oh, ow := l.Spec.OutDims(h, w)
	tiles := int64(n) * int64((oh+1)/2) * int64((ow+1)/2)
	ic, oc := int64(l.Spec.InC), int64(l.Spec.OutC)
	return ipe.Cost{
		Muls: tiles * oc * ic * 16,
		Adds: tiles*ic*32 + tiles*oc*ic*16 + tiles*oc*24,
	}
}
