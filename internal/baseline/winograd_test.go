package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestWinogradMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		inC, outC := 1+r.Intn(6), 1+r.Intn(6)
		spec := tensor.ConvSpec{InC: inC, OutC: outC, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: r.Intn(2), PadW: r.Intn(2)}
		h := 3 + r.Intn(8)
		w := 3 + r.Intn(8)
		wt := tensor.New(spec.WeightShape()...)
		tensor.FillGaussian(wt, r, 0.3)
		bias := tensor.New(outC)
		tensor.FillGaussian(bias, r, 0.1)
		l, err := NewConvWinograd(wt, bias, spec)
		if err != nil {
			return false
		}
		in := tensor.New(1+r.Intn(2), inC, h, w)
		tensor.FillGaussian(in, r, 1)
		got := l.Forward(in)
		want := tensor.Conv2D(in, wt, bias, spec)
		return tensor.AllClose(got, want, 1e-3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradOddOutputExtent(t *testing.T) {
	// 5x5 input, pad 1 → 5x5 output: the last tile row/col is partial.
	r := tensor.NewRNG(2)
	spec := tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	wt := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(wt, r, 0.3)
	l, err := NewConvWinograd(wt, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 2, 5, 5)
	tensor.FillGaussian(in, r, 1)
	got := l.Forward(in)
	want := tensor.Conv2D(in, wt, nil, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("odd-extent Winograd diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestWinogradRejectsUnsupported(t *testing.T) {
	wt5 := tensor.New(4, 2, 5, 5)
	if _, err := NewConvWinograd(wt5, nil, tensor.ConvSpec{InC: 2, OutC: 4, KH: 5, KW: 5, StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("5x5 kernel must be rejected")
	}
	wt3 := tensor.New(4, 2, 3, 3)
	if _, err := NewConvWinograd(wt3, nil, tensor.ConvSpec{InC: 2, OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2}); err == nil {
		t.Fatal("stride 2 must be rejected")
	}
	wtg := tensor.New(4, 1, 3, 3)
	if _, err := NewConvWinograd(wtg, nil, tensor.ConvSpec{InC: 4, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 4}); err == nil {
		t.Fatal("grouped conv must be rejected")
	}
}

func TestWinogradCostBeatsDirectMuls(t *testing.T) {
	// F(2x2,3x3) needs 16/36 ≈ 0.44x the multiplies of direct conv.
	spec := tensor.ConvSpec{InC: 32, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	wt := tensor.New(spec.WeightShape()...)
	l, err := NewConvWinograd(wt, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := l.Cost(1, 16, 16)
	direct := spec.MACs(1, 16, 16)
	if c.Muls >= direct {
		t.Fatalf("Winograd muls %d should beat direct %d", c.Muls, direct)
	}
	ratio := float64(c.Muls) / float64(direct)
	if ratio < 0.40 || ratio > 0.50 {
		t.Fatalf("mul ratio %.3f, want ≈ 16/36 = 0.444", ratio)
	}
}

func TestFilterTransformIdentity(t *testing.T) {
	// A centered delta filter transforms to the B-transform of a constant
	// response: conv with delta = identity, so winograd(y) must equal x.
	r := tensor.NewRNG(3)
	spec := tensor.ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	wt := tensor.New(1, 1, 3, 3)
	wt.Set(1, 0, 0, 1, 1)
	l, err := NewConvWinograd(wt, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 1, 8, 8)
	tensor.FillGaussian(in, r, 1)
	out := l.Forward(in)
	if !tensor.AllClose(out, in, 1e-4, 1e-4) {
		t.Fatalf("delta filter should reproduce input: %v", tensor.MaxAbsDiff(out, in))
	}
}
