package autotune

import (
	"fmt"
	"sync"
)

// Simulation harness for the online bandit: a fake clock plus scripted
// latency distributions drive LayerTuner/Tuner without real kernels, so
// convergence, exploration bounds, and promotion hysteresis are assertable
// in deterministic unit tests (and in CI's autotune-sim job under -race
// with a fixed seed matrix). Nothing here reads wall clocks or global
// randomness: given the same SimConfig, Simulate returns the same result on
// every machine.

// FakeClock is a manually advanced nanosecond clock.
type FakeClock struct {
	ns int64
}

// Now returns the current fake time in nanoseconds.
func (c *FakeClock) Now() int64 { return c.ns }

// Advance moves the clock forward by ns nanoseconds.
func (c *FakeClock) Advance(ns int64) { c.ns += ns }

// Script produces the latency of the n-th execution (1-based) of an arm.
// It must be a pure function of (arm, n) so simulations are reproducible.
type Script func(arm string, n int64) int64

// SimSource is a scripted ArmReader: the simulation records each execution
// into it exactly like the executor records into the metrics recorder, and
// the tuner polls it back out. Safe for concurrent use (the race-gated CI
// job runs simulations with -race).
type SimSource struct {
	mu     sync.Mutex
	counts map[string]*ArmSample
}

// NewSimSource returns an empty source.
func NewSimSource() *SimSource { return &SimSource{counts: make(map[string]*ArmSample)} }

// Record logs one execution of (layer, arm) taking ns nanoseconds.
func (s *SimSource) Record(layer, arm string, ns int64) {
	k := layer + "|" + arm
	s.mu.Lock()
	c := s.counts[k]
	if c == nil {
		c = &ArmSample{}
		s.counts[k] = c
	}
	c.Count++
	c.SumNs += ns
	s.mu.Unlock()
}

// Sample implements ArmReader.
func (s *SimSource) Sample(layer, arm string) ArmSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.counts[layer+"|"+arm]; c != nil {
		return *c
	}
	return ArmSample{}
}

// SimConfig describes one single-layer bandit simulation.
type SimConfig struct {
	// Policy configures the bandit (zero value = defaults).
	Policy Policy
	// Arms are the implementation names; Initial indexes the incumbent.
	Arms    []string
	Initial int
	// Script supplies each arm's latency sequence.
	Script Script
	// Trials is the number of executions to simulate.
	Trials int
	// PollEvery runs a tuner poll after every PollEvery executions
	// (default 50).
	PollEvery int
}

// Promotion records one serving-arm change during a simulation.
type Promotion struct {
	// Trial is the 1-based execution count at which the promotion landed.
	Trial int
	From  string
	To    string
}

// SimResult summarizes a simulation run.
type SimResult struct {
	// Final is the serving arm after the last trial.
	Final string
	// Chooses/Explores/Promotions are the bandit's own counters.
	Chooses    int64
	Explores   int64
	Promotions int64
	// Trace lists every promotion in order.
	Trace []Promotion
	// ServedNs is the total scripted latency of all executions — the cost
	// the simulated server actually paid, exploration included. Comparing
	// it against a pure single-arm schedule bounds the tuning overhead.
	ServedNs int64
	// ArmCounts is how many executions each arm received.
	ArmCounts map[string]int64
	// Clock is the fake clock after the run (equals ServedNs here, but kept
	// separate so richer simulations can advance idle time too).
	Clock FakeClock
}

// Simulate drives one LayerTuner through Trials scripted executions. Each
// trial asks the bandit which arm to run, looks up that arm's scripted
// latency, records it into the sim source (the stand-in for the metrics
// recorder), and advances the fake clock; every PollEvery trials the tuner
// polls the series and may promote. Fully deterministic.
func Simulate(cfg SimConfig) (SimResult, error) {
	if cfg.Trials <= 0 {
		return SimResult{}, fmt.Errorf("autotune: sim needs Trials > 0")
	}
	if cfg.Script == nil {
		return SimResult{}, fmt.Errorf("autotune: sim needs a Script")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 50
	}
	const layer = "sim"
	src := NewSimSource()
	tuner, err := NewBandit(cfg.Policy, src, []TunedLayer{
		{Name: layer, Shape: "sim-shape", Arms: cfg.Arms, Initial: cfg.Initial},
	})
	if err != nil {
		return SimResult{}, err
	}
	if len(tuner.Layers()) != 1 {
		return SimResult{}, fmt.Errorf("autotune: sim needs at least 2 arms")
	}
	lt := tuner.Layers()[0]

	res := SimResult{ArmCounts: make(map[string]int64, len(cfg.Arms))}
	for t := 1; t <= cfg.Trials; t++ {
		prev := lt.CurrentArm()
		arm := cfg.Arms[lt.Choose()]
		n := res.ArmCounts[arm] + 1
		res.ArmCounts[arm] = n
		ns := cfg.Script(arm, n)
		src.Record(layer, arm, ns)
		res.ServedNs += ns
		res.Clock.Advance(ns)
		if t%cfg.PollEvery == 0 && tuner.Poll() > 0 {
			res.Trace = append(res.Trace, Promotion{Trial: t, From: prev, To: lt.CurrentArm()})
		}
	}
	res.Final = lt.CurrentArm()
	res.Chooses, res.Explores, res.Promotions = lt.Counts()
	return res, nil
}

// JitterScript builds a deterministic noisy script: arm latencies start
// from base[arm] and jitter by ±frac, with the jitter derived from a
// splitmix-style hash of (seed, arm, n) — reproducible across runs and
// machines, no shared RNG state between arms.
func JitterScript(seed uint64, base map[string]int64, frac float64) Script {
	return func(arm string, n int64) int64 {
		b := base[arm]
		if frac <= 0 || b == 0 {
			return b
		}
		h := seed
		for _, c := range []byte(arm) {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
		h ^= uint64(n)
		// splitmix64 finalizer
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
		// map to [-frac, +frac]
		u := float64(h>>11) / float64(1<<53) // [0,1)
		return b + int64(float64(b)*frac*(2*u-1))
	}
}
