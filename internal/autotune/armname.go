package autotune

import (
	"fmt"
	"strconv"
	"strings"
)

// Arm-name convention for parallelism-qualified arms. The bandit itself is
// agnostic to what an arm means; callers that explore (implementation,
// parallelism) pairs encode the pair as "impl@pN" so winners round-trip
// into the persistent store — whose v2 keys already carry parallelism —
// under the parallelism the measurement was actually taken at.

// ArmName renders an (implementation, parallelism) arm. par <= 0 means the
// session's default serving parallelism: the name stays the bare
// implementation, matching pre-existing series and store entries.
func ArmName(impl string, par int) string {
	if par <= 0 {
		return impl
	}
	return fmt.Sprintf("%s@p%d", impl, par)
}

// ParseArmName splits an arm name into its implementation and parallelism
// components. Names without a "@pN" suffix return par 0 (serving default).
func ParseArmName(arm string) (impl string, par int) {
	i := strings.LastIndex(arm, "@p")
	if i < 0 {
		return arm, 0
	}
	n, err := strconv.Atoi(arm[i+2:])
	if err != nil || n <= 0 {
		return arm, 0
	}
	return arm[:i], n
}
