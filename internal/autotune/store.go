package autotune

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// StoreVersion is the current on-disk tuning-cache format. Version 1 keyed
// entries by layer shape alone, which let stale simulator costs seed online
// choices measured under a different implementation or parallelism; version
// 2 keys every entry by (shape, impl, parallelism) and loaders reject v1
// files wholesale (invalidate-on-migrate: re-measuring is cheap, serving a
// stale winner is not).
const StoreVersion = 2

// ErrStoreVersion rejects a tuning-cache file whose version does not match
// StoreVersion. Legacy v1 files land here too: their shape-only keys cannot
// be migrated faithfully, so they are invalidated rather than guessed at.
var ErrStoreVersion = errors.New("autotune: unsupported tuning-cache version")

// Key identifies one tuning observation: the layer's workload shape key
// (schedule.Workload.Key for convolutions, the runtime's dense key for
// fully connected layers), the implementation measured, and the intra-op
// parallelism it ran under. All three matter: the same shape can prefer
// different implementations at different shard counts, and an entry
// measured under one implementation must never seed another.
type Key struct {
	Shape string
	Impl  string
	Par   int
}

// String renders the key's canonical form ("shape|impl|pN").
func (k Key) String() string { return fmt.Sprintf("%s|%s|p%d", k.Shape, k.Impl, k.Par) }

// Entry is one persisted measurement: the mean serving latency observed for
// the key and how many samples back it. UpdatedUnixNs is the wall-clock
// write time (callers stamp it; the store never reads clocks itself so
// tests stay deterministic).
type Entry struct {
	MeanNs        float64 `json:"mean_ns"`
	Samples       int64   `json:"samples"`
	UpdatedUnixNs int64   `json:"updated_unix_ns,omitempty"`
}

// valid reports whether the entry carries a usable measurement.
func (e Entry) valid() bool {
	return e.Samples > 0 && e.MeanNs > 0 &&
		!math.IsNaN(e.MeanNs) && !math.IsInf(e.MeanNs, 0)
}

// better reports whether a should win a merge conflict against b: more
// samples first (better-supported measurement), then lower mean (faster),
// then newer timestamp. Deterministic and symmetric, so merges commute.
func better(a, b Entry) bool {
	if a.Samples != b.Samples {
		return a.Samples > b.Samples
	}
	if a.MeanNs != b.MeanNs {
		return a.MeanNs < b.MeanNs
	}
	return a.UpdatedUnixNs > b.UpdatedUnixNs
}

// Store is the persisted tuning cache: measured serving latencies keyed by
// (shape, impl, parallelism). Plans seed their per-operator implementation
// choice from it at compile time, and the online tuner writes promoted
// winners back, so restarted servers — and sibling models with identical
// layer shapes — start from the fleet's best known configuration. Safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[Key]Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{entries: make(map[Key]Entry)} }

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Get returns the entry for k.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	return e, ok
}

// Put records an entry, resolving a conflict with any existing entry by the
// merge rule (more samples, then lower mean, then newer). Invalid entries
// are ignored.
func (s *Store) Put(k Key, e Entry) {
	if k.Shape == "" || k.Impl == "" || k.Par < 0 || !e.valid() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[k]; ok && better(old, e) {
		return
	}
	s.entries[k] = e
}

// Best returns the lowest-mean implementation recorded for (shape, par)
// among the allowed implementations, considering only entries backed by at
// least minSamples samples. Ties break toward the earlier entry in allowed,
// so the result is deterministic for a given store.
func (s *Store) Best(shape string, par int, allowed []string, minSamples int64) (string, Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bestImpl, bestE, found := "", Entry{}, false
	for _, impl := range allowed {
		e, ok := s.entries[Key{Shape: shape, Impl: impl, Par: par}]
		if !ok || e.Samples < minSamples {
			continue
		}
		if !found || e.MeanNs < bestE.MeanNs {
			bestImpl, bestE, found = impl, e, true
		}
	}
	return bestImpl, bestE, found
}

// Snapshot returns a copy of every entry, for reporting.
func (s *Store) Snapshot() map[Key]Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Key]Entry, len(s.entries))
	for k, e := range s.entries {
		out[k] = e
	}
	return out
}

// merge folds other's entries into s under the conflict rule.
func (s *Store) merge(other map[Key]Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range other {
		if old, ok := s.entries[k]; ok && better(old, e) {
			continue
		}
		s.entries[k] = e
	}
}

// storeEntryJSON is the on-disk row: the key fields inline with the
// measurement, one object per (shape, impl, parallelism).
type storeEntryJSON struct {
	Shape string `json:"shape"`
	Impl  string `json:"impl"`
	Par   int    `json:"parallelism"`
	Entry
}

// storeJSON is the on-disk document.
type storeJSON struct {
	Version int              `json:"version"`
	Entries []storeEntryJSON `json:"entries"`
}

// Encode writes the store as deterministic JSON: entries sorted by key, so
// identical stores produce identical bytes regardless of insertion order.
func (s *Store) Encode(w io.Writer) error {
	s.mu.Lock()
	doc := storeJSON{Version: StoreVersion, Entries: make([]storeEntryJSON, 0, len(s.entries))}
	for k, e := range s.entries {
		doc.Entries = append(doc.Entries, storeEntryJSON{Shape: k.Shape, Impl: k.Impl, Par: k.Par, Entry: e})
	}
	s.mu.Unlock()
	sort.Slice(doc.Entries, func(i, j int) bool {
		a, b := doc.Entries[i], doc.Entries[j]
		return Key{a.Shape, a.Impl, a.Par}.String() < Key{b.Shape, b.Impl, b.Par}.String()
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeStore parses a tuning-cache document. It fails on malformed JSON,
// trailing garbage, or a version mismatch (including legacy v1 files, which
// are invalidated rather than migrated — see StoreVersion). Rows with an
// empty shape or impl, negative parallelism, or an unusable measurement are
// dropped individually; duplicate keys merge under the conflict rule, so a
// decoded store is always internally consistent.
func DecodeStore(r io.Reader) (*Store, error) {
	dec := json.NewDecoder(r)
	var doc storeJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("autotune: decoding tuning cache: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("autotune: tuning cache has trailing data")
	}
	if doc.Version != StoreVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrStoreVersion, doc.Version, StoreVersion)
	}
	s := NewStore()
	for _, row := range doc.Entries {
		s.Put(Key{Shape: row.Shape, Impl: row.Impl, Par: row.Par}, row.Entry)
	}
	return s, nil
}

// LoadStore reads the tuning cache at path. A missing file is not an error
// — it returns an empty store, the cold-start case. Corrupt or
// wrong-version files return an error so callers can decide between
// LoadStoreOrEmpty's silent fallback and surfacing the problem.
func LoadStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeStore(f)
}

// LoadStoreOrEmpty reads the tuning cache at path, falling back to an empty
// store on any error: a truncated, corrupt, or legacy-version file must
// never stop a server from planning — it just plans from defaults.
func LoadStoreOrEmpty(path string) *Store {
	s, err := LoadStore(path)
	if err != nil {
		return NewStore()
	}
	return s
}

// Save persists the store to path with merge-on-conflict semantics: it
// first folds in whatever a concurrent writer (a sibling server sharing the
// cache file) already persisted, then writes a temp file in the same
// directory and atomically renames it over path, so readers never observe a
// torn file. An unreadable or wrong-version existing file is simply
// overwritten (that is the recovery path for corruption).
func (s *Store) Save(path string) error {
	if disk, err := LoadStore(path); err == nil {
		s.merge(disk.Snapshot())
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
