package autotune

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// Surrogate is sequential model-based optimization in the AutoTVM style:
// a regression cost model is fitted to all evaluated points, a large pool
// of random candidates is ranked by predicted cost, and the most promising
// ones are measured next (with ε-greedy exploration). The model is ridge
// regression over per-dimension linear and quadratic features — tiny, but
// the same loop structure as XGBoost-ranked tuning.
type Surrogate struct {
	// InitPoints is the number of random measurements before the first
	// model fit (default 16).
	InitPoints int
	// BatchSize is the number of points measured per model refresh
	// (default 8).
	BatchSize int
	// PoolSize is the number of random candidates ranked per refresh
	// (default 256).
	PoolSize int
	// Epsilon is the fraction of each batch drawn at random for
	// exploration (default 0.2).
	Epsilon float64
	// Lambda is the ridge regularizer (default 1e-3).
	Lambda float64
}

// Name implements Tuner.
func (Surrogate) Name() string { return "surrogate" }

func (s Surrogate) defaults() Surrogate {
	if s.InitPoints <= 0 {
		s.InitPoints = 16
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 8
	}
	if s.PoolSize <= 0 {
		s.PoolSize = 256
	}
	if s.Epsilon <= 0 {
		s.Epsilon = 0.2
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-3
	}
	return s
}

// features maps an index vector to [1, x_d, x_d^2 ...] with x normalized
// to [0, 1] per dimension.
func features(idx []int, dims []int) []float64 {
	f := make([]float64, 1+2*len(dims))
	f[0] = 1
	for d := range dims {
		x := 0.0
		if dims[d] > 1 {
			x = float64(idx[d]) / float64(dims[d]-1)
		}
		f[1+2*d] = x
		f[2+2*d] = x * x
	}
	return f
}

// ridgeFit solves (XᵀX + λI)w = Xᵀy by Gaussian elimination with partial
// pivoting. Feature counts are tiny (≈ a dozen), so O(n³) is free.
func ridgeFit(xs [][]float64, ys []float64, lambda float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	n := len(xs[0])
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		a[i][i] = lambda
	}
	for r, x := range xs {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += x[i] * x[j]
			}
			a[i][n] += x[i] * ys[r]
		}
	}
	// Elimination.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		if math.Abs(a[i][i]) < 1e-12 {
			continue
		}
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * w[j]
		}
		w[i] = s / a[i][i]
	}
	return w
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Tune implements Tuner.
func (s Surrogate) Tune(sp Space, budget int, seed uint64) Result {
	s = s.defaults()
	rng := tensor.NewRNG(seed)
	rec := newRecorder()
	dims := sp.Dims()

	key := func(idx []int) string {
		b := make([]byte, 0, len(idx)*2)
		for _, v := range idx {
			b = append(b, byte(v), byte(v>>8))
		}
		return string(b)
	}
	seen := map[string]bool{}
	var xs [][]float64
	var ys []float64

	measure := func(idx []int) {
		seen[key(idx)] = true
		cost, legal := rec.record(sp, idx)
		if legal && cost > 0 {
			xs = append(xs, features(idx, dims))
			ys = append(ys, math.Log(cost))
		}
	}

	for i := 0; i < s.InitPoints && rec.spent() < budget; i++ {
		measure(randomPoint(rng, dims))
	}
	for rec.spent() < budget {
		w := ridgeFit(xs, ys, s.Lambda)
		type cand struct {
			idx  []int
			pred float64
		}
		pool := make([]cand, 0, s.PoolSize)
		for i := 0; i < s.PoolSize; i++ {
			p := randomPoint(rng, dims)
			if seen[key(p)] {
				continue
			}
			pred := 0.0
			if w != nil {
				pred = dot(w, features(p, dims))
			}
			pool = append(pool, cand{p, pred})
		}
		if len(pool) == 0 {
			// Space exhausted of unseen random candidates; finish with
			// pure random measurements.
			measure(randomPoint(rng, dims))
			continue
		}
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].pred < pool[j].pred })
		batch := min(s.BatchSize, budget-rec.spent())
		for i := 0; i < batch && len(pool) > 0; i++ {
			var pick cand
			if rng.Float64() < s.Epsilon {
				j := rng.Intn(len(pool))
				pick = pool[j]
				pool = append(pool[:j], pool[j+1:]...)
			} else {
				pick = pool[0]
				pool = pool[1:]
			}
			measure(pick.idx)
		}
	}
	return rec.res
}
