package autotune

import (
	"testing"
)

// simSeeds is the fixed seed matrix the deterministic bandit simulations run
// over (mirrored by CI's autotune-sim job). Every regime must hold for every
// seed — the jitter hash is the only seed-dependent input.
var simSeeds = []uint64{1, 2, 3, 4, 5}

// TestSimStableWinnerConverges: the incumbent is 2x slower than an alternate
// arm with mild noise. The bandit must promote the fast arm well within the
// trial budget, promote it exactly once (no flapping), and keep serving it.
func TestSimStableWinnerConverges(t *testing.T) {
	for _, seed := range simSeeds {
		res, err := Simulate(SimConfig{
			Arms:    []string{"dense", "ipe"},
			Initial: 0,
			Script:  JitterScript(seed, map[string]int64{"dense": 100_000, "ipe": 50_000}, 0.05),
			Trials:  5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final != "ipe" {
			t.Errorf("seed %d: converged to %q, want ipe", seed, res.Final)
		}
		if res.Promotions != 1 {
			t.Errorf("seed %d: %d promotions, want exactly 1 (trace %v)", seed, res.Promotions, res.Trace)
		}
		// Convergence must be prompt: the alternate reaches MinSamples=30
		// around trial 480 (one exploration per 16), hysteresis adds a few
		// polls — give it 2x slack, not the whole budget.
		if len(res.Trace) == 0 || res.Trace[0].Trial > 1500 {
			t.Errorf("seed %d: promotion too late or missing: %v", seed, res.Trace)
		}
	}
}

// TestSimRegimeShiftReconverges: the incumbent starts fast and degrades 4x
// mid-run (a cache gone cold, a co-tenant arriving). The EWMA must forget
// the old regime and the bandit must migrate to the alternate arm.
func TestSimRegimeShiftReconverges(t *testing.T) {
	for _, seed := range simSeeds {
		res, err := Simulate(SimConfig{
			Arms:    []string{"a", "b"},
			Initial: 0,
			Script: func(arm string, n int64) int64 {
				base := int64(100_000) // arm b
				if arm == "a" {
					if n <= 1500 {
						base = 50_000
					} else {
						base = 200_000
					}
				}
				j := JitterScript(seed, map[string]int64{arm: base}, 0.05)
				return j(arm, n)
			},
			Trials: 6000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final != "b" {
			t.Errorf("seed %d: finished on %q, want b after regime shift", seed, res.Final)
		}
		if res.Promotions != 1 {
			t.Errorf("seed %d: %d promotions, want exactly 1 (trace %v)", seed, res.Promotions, res.Trace)
		}
		// The shift lands once arm a has run ~1500 times (~trial 1600); the
		// promotion must follow within a bounded number of polls, not at the
		// end of the budget.
		if len(res.Trace) == 1 && (res.Trace[0].Trial < 1500 || res.Trace[0].Trial > 4000) {
			t.Errorf("seed %d: promotion at trial %d, want in (1500, 4000]", seed, res.Trace[0].Trial)
		}
	}
}

// TestSimNoisyNearTieDoesNotFlap: two arms 2% apart under 10% noise — well
// inside the promotion margin. The bandit must hold the incumbent: zero
// promotions, bounded exploration, no flapping.
func TestSimNoisyNearTieDoesNotFlap(t *testing.T) {
	for _, seed := range simSeeds {
		res, err := Simulate(SimConfig{
			Arms:    []string{"a", "b"},
			Initial: 0,
			Script:  JitterScript(seed, map[string]int64{"a": 100_000, "b": 98_000}, 0.10),
			Trials:  8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Promotions != 0 {
			t.Errorf("seed %d: near-tie flapped: %d promotions (trace %v)", seed, res.Promotions, res.Trace)
		}
		if res.Final != "a" {
			t.Errorf("seed %d: incumbent lost a near-tie: serving %q", seed, res.Final)
		}
	}
}

// TestSimExplorationExactlyBounded: the deterministic schedule's overhead is
// a hard bound — explores == floor(chooses/ExplorePeriod), and the alternate
// arm receives exactly that many executions when no promotion happens.
func TestSimExplorationExactlyBounded(t *testing.T) {
	const trials = 4096
	res, err := Simulate(SimConfig{
		Policy:  Policy{ExplorePeriod: 16, MinSamples: 1 << 40}, // promotion disabled
		Arms:    []string{"a", "b"},
		Initial: 0,
		Script:  JitterScript(7, map[string]int64{"a": 90_000, "b": 100_000}, 0.05),
		Trials:  trials,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantExplores := int64(trials / 16)
	if res.Explores != wantExplores {
		t.Errorf("explores = %d, want exactly %d", res.Explores, wantExplores)
	}
	if res.Chooses != trials {
		t.Errorf("chooses = %d, want %d", res.Chooses, trials)
	}
	if got := res.ArmCounts["b"]; got != wantExplores {
		t.Errorf("alternate arm ran %d times, want exactly %d", got, wantExplores)
	}
	if res.Promotions != 0 {
		t.Errorf("promotion happened with MinSamples disabled: %d", res.Promotions)
	}
}

// TestSimTuningOverheadBounded: against a stable 2x-slower alternate, total
// served time may exceed the all-incumbent schedule only by the exploration
// fraction times the arm gap — tuning must never cost more than its bounded
// exploration budget.
func TestSimTuningOverheadBounded(t *testing.T) {
	const trials = 2000
	res, err := Simulate(SimConfig{
		Policy:  Policy{MinSamples: 1 << 40}, // hold the incumbent: pure exploration cost
		Arms:    []string{"fast", "slow"},
		Initial: 0,
		Script:  JitterScript(3, map[string]int64{"fast": 50_000, "slow": 100_000}, 0),
		Trials:  trials,
	})
	if err != nil {
		t.Fatal(err)
	}
	pure := int64(trials) * 50_000
	overhead := res.ServedNs - pure
	maxOverhead := int64(trials/16) * (100_000 - 50_000)
	if overhead != maxOverhead {
		t.Errorf("tuning overhead %dns, want exactly the exploration bound %dns", overhead, maxOverhead)
	}
	if res.Clock.Now() != res.ServedNs {
		t.Errorf("fake clock %d != served %d", res.Clock.Now(), res.ServedNs)
	}
}

// TestSimDeterministic: identical configs yield identical results — the
// property every other sim assertion rests on.
func TestSimDeterministic(t *testing.T) {
	cfg := SimConfig{
		Arms:    []string{"a", "b", "c"},
		Initial: 1,
		Script:  JitterScript(9, map[string]int64{"a": 80_000, "b": 100_000, "c": 120_000}, 0.10),
		Trials:  3000,
	}
	r1, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Final != r2.Final || r1.ServedNs != r2.ServedNs || r1.Explores != r2.Explores ||
		r1.Promotions != r2.Promotions || len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("simulation not deterministic: %+v vs %+v", r1, r2)
	}
	if r1.Final != "a" {
		t.Errorf("three-arm sim converged to %q, want a", r1.Final)
	}
}

// TestSimRejectsBadConfig: the harness fails loudly on unusable configs.
func TestSimRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(SimConfig{Arms: []string{"a", "b"}, Script: JitterScript(1, nil, 0)}); err == nil {
		t.Error("want error for Trials <= 0")
	}
	if _, err := Simulate(SimConfig{Arms: []string{"a", "b"}, Trials: 10}); err == nil {
		t.Error("want error for nil Script")
	}
	if _, err := Simulate(SimConfig{Arms: []string{"solo"}, Trials: 10, Script: JitterScript(1, nil, 0)}); err == nil {
		t.Error("want error for a single-arm sim")
	}
	if _, err := Simulate(SimConfig{Arms: []string{"a", "b"}, Initial: 5, Trials: 10, Script: JitterScript(1, nil, 0)}); err == nil {
		t.Error("want error for out-of-range Initial")
	}
}
