package autotune

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func storeWith(entries map[Key]Entry) *Store {
	s := NewStore()
	for k, e := range entries {
		s.Put(k, e)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	want := map[Key]Entry{
		{Shape: "conv-n1-c1-k8", Impl: "ipe", Par: 0}:   {MeanNs: 1234.5, Samples: 100, UpdatedUnixNs: 42},
		{Shape: "conv-n1-c1-k8", Impl: "dense", Par: 0}: {MeanNs: 2000, Samples: 90, UpdatedUnixNs: 41},
		{Shape: "dense-m10-k84-b2", Impl: "csr", Par: 4}: {MeanNs: 88, Samples: 7},
	}
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := storeWith(want).Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), want) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got.Snapshot(), want)
	}
}

func TestStoreMissingFileIsEmpty(t *testing.T) {
	s, err := LoadStore(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file must not error: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("missing file produced %d entries", s.Len())
	}
}

func TestStorePutMergeRule(t *testing.T) {
	k := Key{Shape: "s", Impl: "ipe", Par: 0}
	s := NewStore()
	s.Put(k, Entry{MeanNs: 100, Samples: 50, UpdatedUnixNs: 1})
	// Fewer samples loses, even with a better mean.
	s.Put(k, Entry{MeanNs: 10, Samples: 5, UpdatedUnixNs: 2})
	if e, _ := s.Get(k); e.Samples != 50 {
		t.Fatalf("fewer-samples entry won the merge: %+v", e)
	}
	// More samples wins.
	s.Put(k, Entry{MeanNs: 120, Samples: 200, UpdatedUnixNs: 3})
	if e, _ := s.Get(k); e.Samples != 200 {
		t.Fatalf("more-samples entry lost the merge: %+v", e)
	}
	// Equal samples: lower mean wins.
	s.Put(k, Entry{MeanNs: 90, Samples: 200, UpdatedUnixNs: 4})
	if e, _ := s.Get(k); e.MeanNs != 90 {
		t.Fatalf("lower-mean entry lost the merge: %+v", e)
	}
	// Equal samples and mean: newer wins.
	s.Put(k, Entry{MeanNs: 90, Samples: 200, UpdatedUnixNs: 9})
	if e, _ := s.Get(k); e.UpdatedUnixNs != 9 {
		t.Fatalf("newer entry lost the merge: %+v", e)
	}
	// Invalid entries are ignored outright.
	s.Put(k, Entry{MeanNs: -1, Samples: 1000})
	s.Put(Key{Shape: "", Impl: "ipe"}, Entry{MeanNs: 1, Samples: 1})
	s.Put(Key{Shape: "s", Impl: ""}, Entry{MeanNs: 1, Samples: 1})
	s.Put(Key{Shape: "s", Impl: "x", Par: -1}, Entry{MeanNs: 1, Samples: 1})
	if s.Len() != 1 {
		t.Fatalf("invalid entries were stored: %v", s.Snapshot())
	}
}

// TestStoreSaveMergesConcurrentWriter: two stores sharing one cache file must
// both survive a save race — the second Save folds in what the first wrote.
func TestStoreSaveMergesConcurrentWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	kA := Key{Shape: "a", Impl: "ipe", Par: 0}
	kB := Key{Shape: "b", Impl: "csr", Par: 0}
	shared := Key{Shape: "s", Impl: "dense", Par: 0}

	s1 := storeWith(map[Key]Entry{
		kA:     {MeanNs: 10, Samples: 10, UpdatedUnixNs: 1},
		shared: {MeanNs: 100, Samples: 500, UpdatedUnixNs: 1},
	})
	s2 := storeWith(map[Key]Entry{
		kB:     {MeanNs: 20, Samples: 20, UpdatedUnixNs: 2},
		shared: {MeanNs: 50, Samples: 30, UpdatedUnixNs: 2}, // fewer samples: must lose
	})
	if err := s1.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := s2.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Get(kA); !ok {
		t.Error("first writer's entry lost in merge")
	}
	if _, ok := got.Get(kB); !ok {
		t.Error("second writer's entry lost in merge")
	}
	if e, _ := got.Get(shared); e.Samples != 500 {
		t.Errorf("merge-on-conflict picked the weaker entry: %+v", e)
	}
}

func TestStoreCorruptFileFallsBackClean(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.json":   "not json at all {{{",
		"truncated.json": `{"version":2,"entries":[{"shape":"s","impl":"ipe"`,
		"trailing.json":  `{"version":2,"entries":[]}{"version":2}`,
		"empty.json":     "",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadStore(path); err == nil {
			t.Errorf("%s: LoadStore accepted a corrupt file", name)
		}
		s := LoadStoreOrEmpty(path)
		if s.Len() != 0 {
			t.Errorf("%s: fallback store not empty", name)
		}
		// The fallback store must still be usable and savable over the
		// corrupt file (the recovery path).
		s.Put(Key{Shape: "s", Impl: "ipe"}, Entry{MeanNs: 1, Samples: 1})
		if err := s.Save(path); err != nil {
			t.Errorf("%s: cannot save over corrupt file: %v", name, err)
		}
		if got, err := LoadStore(path); err != nil || got.Len() != 1 {
			t.Errorf("%s: recovery save not readable: %v", name, err)
		}
	}
}

// TestStoreRejectsLegacyVersion: v1 files keyed entries by shape alone; they
// must be invalidated (ErrStoreVersion), never half-migrated.
func TestStoreRejectsLegacyVersion(t *testing.T) {
	v1 := `{"version":1,"entries":[{"shape":"conv-n1-c1-k8","mean_ns":100,"samples":50}]}`
	_, err := DecodeStore(strings.NewReader(v1))
	if !errors.Is(err, ErrStoreVersion) {
		t.Fatalf("v1 file: got %v, want ErrStoreVersion", err)
	}
	if s := LoadStoreOrEmpty(writeTemp(t, v1)); s.Len() != 0 {
		t.Fatalf("legacy entries leaked through the fallback: %v", s.Snapshot())
	}
	future := `{"version":99,"entries":[]}`
	if _, err := DecodeStore(strings.NewReader(future)); !errors.Is(err, ErrStoreVersion) {
		t.Fatalf("future version: got %v, want ErrStoreVersion", err)
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStoreDecodeDropsInvalidRowsAndMergesDuplicates: bad rows fall out
// individually; duplicate keys resolve by the merge rule.
func TestStoreDecodeDropsInvalidRowsAndMergesDuplicates(t *testing.T) {
	doc := `{"version":2,"entries":[
		{"shape":"s","impl":"ipe","parallelism":0,"mean_ns":100,"samples":10},
		{"shape":"s","impl":"ipe","parallelism":0,"mean_ns":90,"samples":80},
		{"shape":"","impl":"ipe","parallelism":0,"mean_ns":1,"samples":1},
		{"shape":"s","impl":"","parallelism":0,"mean_ns":1,"samples":1},
		{"shape":"s","impl":"csr","parallelism":-2,"mean_ns":1,"samples":1},
		{"shape":"s","impl":"dense","parallelism":0,"mean_ns":0,"samples":5},
		{"shape":"s","impl":"dense","parallelism":0,"mean_ns":50,"samples":-3}
	]}`
	s, err := DecodeStore(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("got %d entries, want 1 (invalid rows dropped): %v", s.Len(), s.Snapshot())
	}
	e, _ := s.Get(Key{Shape: "s", Impl: "ipe", Par: 0})
	if e.Samples != 80 {
		t.Fatalf("duplicate keys did not merge by the conflict rule: %+v", e)
	}
}

// TestStoreEncodeDeterministic: identical contents produce identical bytes
// regardless of insertion order, so cache files diff cleanly.
func TestStoreEncodeDeterministic(t *testing.T) {
	entries := map[Key]Entry{
		{Shape: "b", Impl: "ipe", Par: 1}:   {MeanNs: 1, Samples: 1},
		{Shape: "a", Impl: "csr", Par: 0}:   {MeanNs: 2, Samples: 2},
		{Shape: "a", Impl: "dense", Par: 0}: {MeanNs: 3, Samples: 3},
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		s := NewStore()
		if i == 0 {
			for k, e := range entries {
				s.Put(k, e)
			}
		} else {
			// Reverse-ish second pass: map iteration already randomizes, but
			// make the orders explicitly different.
			keys := []Key{{Shape: "a", Impl: "dense", Par: 0}, {Shape: "a", Impl: "csr", Par: 0}, {Shape: "b", Impl: "ipe", Par: 1}}
			for _, k := range keys {
				s.Put(k, entries[k])
			}
		}
		if err := s.Encode(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("encoding is order-dependent:\n%s\nvs\n%s", bufs[0].Bytes(), bufs[1].Bytes())
	}
}

func TestStoreBest(t *testing.T) {
	s := storeWith(map[Key]Entry{
		{Shape: "s", Impl: "dense", Par: 0}: {MeanNs: 100, Samples: 50},
		{Shape: "s", Impl: "ipe", Par: 0}:   {MeanNs: 40, Samples: 50},
		{Shape: "s", Impl: "csr", Par: 0}:   {MeanNs: 30, Samples: 5}, // under min samples
		{Shape: "s", Impl: "ipe", Par: 4}:   {MeanNs: 10, Samples: 50},
	})
	impl, e, ok := s.Best("s", 0, []string{"dense", "ipe", "csr"}, 30)
	if !ok || impl != "ipe" || e.MeanNs != 40 {
		t.Fatalf("Best = %q %+v %v, want ipe (csr under min samples, p4 is another config)", impl, e, ok)
	}
	// Arms outside the allowed set never seed.
	if _, _, ok := s.Best("s", 0, []string{"winograd"}, 1); ok {
		t.Fatal("Best returned an impl outside the allowed set")
	}
	if _, _, ok := s.Best("missing", 0, []string{"ipe"}, 1); ok {
		t.Fatal("Best invented an entry for an unknown shape")
	}
}
