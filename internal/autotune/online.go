package autotune

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// This file is the online half of the package: an epsilon-greedy bandit
// that tunes each layer's kernel implementation from live latency series.
// The offline tuners above search a simulator; the bandit closes the loop
// against reality — it routes a small, exactly-bounded fraction of real
// executions through alternate (conformance-proven bit-compatible)
// implementations, reads the resulting per-implementation latency series
// back from the metrics recorder, and promotes a new serving choice only on
// a sustained, statistically meaningful improvement.
//
// The design splits cleanly into a hot path and a cold path:
//
//   - Choose is the hot path, called once per tuned layer per inference.
//     It is allocation-free and uses a single atomic counter: every
//     ExplorePeriod-th call explores, cycling round-robin through the
//     alternate arms. Exploration overhead is therefore exactly
//     floor(n/ExplorePeriod) of n executions — a hard bound, not an
//     expectation — and the whole schedule is deterministic, which the
//     simulation harness (sim.go) exploits to make convergence assertable.
//
//   - Poll is the cold path, run by one goroutine on a timer. It reads each
//     arm's cumulative (count, sum-of-ns) series through an ArmReader,
//     forms the delta since the previous poll, folds the delta's mean into
//     a per-arm EWMA, and applies the promotion rule: a candidate must beat
//     the incumbent's EWMA by PromoteMargin on Hysteresis consecutive polls
//     before it becomes the serving choice. The margin suppresses flapping
//     on near-ties; the EWMA forgets old regimes so the bandit re-converges
//     after a latency shift; the hysteresis makes a single lucky poll
//     insufficient.

// Policy configures the online bandit. The zero value means defaults.
type Policy struct {
	// ExplorePeriod routes every N-th execution of a tuned layer through an
	// alternate implementation (default 16, i.e. 1/16 exploration).
	ExplorePeriod int
	// MinSamples is the cumulative per-arm sample count required before an
	// arm may win or lose a promotion decision (default 30).
	MinSamples int64
	// PromoteMargin is the fractional EWMA-latency improvement a candidate
	// must show over the incumbent (default 0.10 = 10% faster).
	PromoteMargin float64
	// Hysteresis is the number of consecutive polls the same candidate must
	// win by the margin before it is promoted (default 3).
	Hysteresis int
	// EWMAAlpha weights the newest poll delta in the per-arm latency EWMA
	// (default 0.4; higher adapts faster, lower smooths more).
	EWMAAlpha float64
}

// DefaultPolicy returns the documented defaults.
func DefaultPolicy() Policy {
	return Policy{ExplorePeriod: 16, MinSamples: 30, PromoteMargin: 0.10, Hysteresis: 3, EWMAAlpha: 0.4}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.ExplorePeriod <= 0 {
		p.ExplorePeriod = d.ExplorePeriod
	}
	if p.MinSamples <= 0 {
		p.MinSamples = d.MinSamples
	}
	if p.PromoteMargin <= 0 {
		p.PromoteMargin = d.PromoteMargin
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = d.Hysteresis
	}
	if p.EWMAAlpha <= 0 || p.EWMAAlpha > 1 {
		p.EWMAAlpha = d.EWMAAlpha
	}
	return p
}

// ArmSample is one arm's cumulative latency series: how many executions
// have been recorded for it and their total nanoseconds.
type ArmSample struct {
	Count int64
	SumNs int64
}

// ArmReader supplies the bandit's reward signal: the cumulative latency
// series of one (layer, arm) pair. The production implementation reads the
// metrics recorder's per-kernel layer series; the simulation harness
// substitutes scripted distributions.
type ArmReader interface {
	Sample(layer, arm string) ArmSample
}

// TunedLayer declares one layer for the tuner: its metrics series name, its
// persistent-cache shape key, the candidate implementations (arm 0 first is
// not required — Initial picks the incumbent), and the incumbent index.
type TunedLayer struct {
	Name    string
	Shape   string
	Arms    []string
	Initial int
}

// LayerTuner is the per-layer bandit state. Choose is safe for concurrent
// use from many executors; the poll-side fields are owned by the Bandit's
// single polling goroutine.
type LayerTuner struct {
	name  string
	shape string
	arms  []string
	pol   Policy

	cur      atomic.Int32 // serving arm index
	frozen   atomic.Bool  // Stop() freezes routing at the promoted choice
	chooses  atomic.Int64
	explores atomic.Int64
	promos   atomic.Int64

	// Poll-side state (guarded by the owning Bandit's mutex).
	prev   []ArmSample
	ewma   []float64
	seen   []bool
	cand   int
	streak int
}

// Name returns the layer's metrics series name.
func (lt *LayerTuner) Name() string { return lt.name }

// Shape returns the layer's persistent-cache shape key.
func (lt *LayerTuner) Shape() string { return lt.shape }

// Arms returns the arm names (do not mutate).
func (lt *LayerTuner) Arms() []string { return lt.arms }

// Current returns the serving arm index.
func (lt *LayerTuner) Current() int { return int(lt.cur.Load()) }

// CurrentArm returns the serving arm name.
func (lt *LayerTuner) CurrentArm() string { return lt.arms[lt.cur.Load()] }

// Counts returns the routing counters: total Choose calls, how many of them
// explored an alternate arm, and how many promotions have happened.
func (lt *LayerTuner) Counts() (chooses, explores, promotions int64) {
	return lt.chooses.Load(), lt.explores.Load(), lt.promos.Load()
}

// Choose returns the arm index the next execution should run. Every
// ExplorePeriod-th call explores, cycling round-robin over the non-serving
// arms; all other calls return the serving arm. The schedule is driven by
// one atomic counter, so the exploration fraction is exactly bounded and
// deterministic, and the call is allocation-free.
func (lt *LayerTuner) Choose() int {
	cur := int(lt.cur.Load())
	if len(lt.arms) < 2 || lt.frozen.Load() {
		return cur
	}
	n := lt.chooses.Add(1)
	if n%int64(lt.pol.ExplorePeriod) != 0 {
		return cur
	}
	k := lt.explores.Add(1)
	idx := int((k - 1) % int64(len(lt.arms)-1))
	if idx >= cur {
		idx++ // skip the serving arm: exploration always probes an alternate
	}
	return idx
}

// poll ingests one round of series deltas and applies the promotion rule.
// It returns the promoted arm index, or -1. Caller holds the Bandit mutex.
func (lt *LayerTuner) poll(r ArmReader) int {
	for i, arm := range lt.arms {
		s := r.Sample(lt.name, arm)
		dc, ds := s.Count-lt.prev[i].Count, s.SumNs-lt.prev[i].SumNs
		lt.prev[i] = s
		if dc <= 0 || ds < 0 {
			continue // no new samples this poll (or a recorder swap reset the series)
		}
		m := float64(ds) / float64(dc)
		if !lt.seen[i] {
			lt.ewma[i], lt.seen[i] = m, true
		} else {
			lt.ewma[i] = lt.pol.EWMAAlpha*m + (1-lt.pol.EWMAAlpha)*lt.ewma[i]
		}
	}
	cur := int(lt.cur.Load())
	if !lt.seen[cur] {
		lt.reset()
		return -1 // cannot judge against an unmeasured incumbent
	}
	best, bestV := -1, math.Inf(1)
	for i := range lt.arms {
		if i == cur || !lt.seen[i] || lt.prev[i].Count < lt.pol.MinSamples {
			continue
		}
		if lt.ewma[i] < bestV {
			best, bestV = i, lt.ewma[i]
		}
	}
	if best < 0 || bestV >= lt.ewma[cur]*(1-lt.pol.PromoteMargin) {
		lt.reset() // nobody clears the bar this poll: any pending streak dies
		return -1
	}
	if lt.cand != best {
		lt.cand, lt.streak = best, 0 // a different candidate restarts the count
	}
	lt.streak++
	if lt.streak < lt.pol.Hysteresis {
		return -1
	}
	lt.cur.Store(int32(best))
	lt.promos.Add(1)
	lt.reset()
	return best
}

func (lt *LayerTuner) reset() { lt.cand, lt.streak = -1, 0 }

// LayerTunerState is a point-in-time view of one layer's bandit, for
// reports and the metrics snapshot.
type LayerTunerState struct {
	Layer      string
	Shape      string
	Current    string
	Chooses    int64
	Explores   int64
	Promotions int64
	// ArmMeanNs holds the EWMA latency per arm name, for arms that have
	// been observed at least once.
	ArmMeanNs map[string]float64
}

// Bandit drives the per-layer bandits of one plan: Poll ingests the latest
// series for every layer, and the write-back methods persist winners.
type Bandit struct {
	mu     sync.Mutex
	pol    Policy
	reader ArmReader
	layers []*LayerTuner
}

// NewBandit builds a tuner over the given layers, reading reward series from
// r. Layers with fewer than two arms are dropped (nothing to tune); an
// out-of-range Initial index is an error, so misconfigured callers fail
// loudly instead of silently serving arm 0.
func NewBandit(pol Policy, r ArmReader, layers []TunedLayer) (*Bandit, error) {
	pol = pol.withDefaults()
	t := &Bandit{pol: pol, reader: r}
	for _, l := range layers {
		if len(l.Arms) < 2 {
			continue
		}
		if l.Initial < 0 || l.Initial >= len(l.Arms) {
			return nil, fmt.Errorf("autotune: layer %s: initial arm %d out of range [0,%d)", l.Name, l.Initial, len(l.Arms))
		}
		lt := &LayerTuner{
			name: l.Name, shape: l.Shape,
			arms: append([]string(nil), l.Arms...),
			pol:  pol,
			prev: make([]ArmSample, len(l.Arms)),
			ewma: make([]float64, len(l.Arms)),
			seen: make([]bool, len(l.Arms)),
			cand: -1,
		}
		lt.cur.Store(int32(l.Initial))
		t.layers = append(t.layers, lt)
	}
	return t, nil
}

// Layers returns the per-layer bandits (do not mutate).
func (t *Bandit) Layers() []*LayerTuner { return t.layers }

// Poll reads every layer's latest series and applies the promotion rule,
// returning how many layers promoted a new serving arm this pass. Safe for
// concurrent use, but intended for a single periodic caller.
func (t *Bandit) Poll() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted := 0
	for _, lt := range t.layers {
		if lt.poll(t.reader) >= 0 {
			promoted++
		}
	}
	return promoted
}

// Freeze stops exploration on every layer: Choose returns the serving arm
// unconditionally from now on. Used at shutdown so draining traffic runs
// entirely on the promoted configuration.
func (t *Bandit) Freeze() {
	for _, lt := range t.layers {
		lt.frozen.Store(true)
	}
}

// State snapshots every layer's bandit.
func (t *Bandit) State() []LayerTunerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LayerTunerState, 0, len(t.layers))
	for _, lt := range t.layers {
		c, e, p := lt.Counts()
		st := LayerTunerState{
			Layer: lt.name, Shape: lt.shape, Current: lt.CurrentArm(),
			Chooses: c, Explores: e, Promotions: p,
			ArmMeanNs: make(map[string]float64),
		}
		for i, arm := range lt.arms {
			if lt.seen[i] {
				st.ArmMeanNs[arm] = lt.ewma[i]
			}
		}
		out = append(out, st)
	}
	return out
}

// WinnersTo writes each layer's serving arm into the persistent store under
// (shape, arm, par), carrying the arm's cumulative sample count and EWMA
// latency. Layers whose serving arm has no observed samples are skipped —
// an unmeasured incumbent is a default, not a winner worth persisting.
// Parallelism-qualified arm names ("impl@pN", see ArmName) are decomposed:
// the store key carries the arm's own parallelism instead of the session
// default, so a winner measured at N shards seeds future compiles at N
// shards only.
func (t *Bandit) WinnersTo(store *Store, par int, nowUnixNs int64) {
	if store == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, lt := range t.layers {
		cur := int(lt.cur.Load())
		if !lt.seen[cur] || lt.prev[cur].Count <= 0 {
			continue
		}
		impl, armPar := ParseArmName(lt.arms[cur])
		if armPar == 0 {
			armPar = par
		}
		store.Put(
			Key{Shape: lt.shape, Impl: impl, Par: armPar},
			Entry{MeanNs: lt.ewma[cur], Samples: lt.prev[cur].Count, UpdatedUnixNs: nowUnixNs},
		)
	}
}
