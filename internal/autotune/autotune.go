// Package autotune implements the schedule search algorithms of the
// INSPIRE stack: random search, a genetic algorithm and simulated
// annealing, all operating over an abstract discrete search space (in
// practice the schedule.Space tiling grid). An exhaustive searcher provides
// ground truth on small spaces, and a tuning cache reuses results across
// layers with identical shapes — convolutions repeat heavily within and
// across CNNs.
package autotune

import (
	"math"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// Space is a discrete multi-dimensional search space with a cost oracle.
type Space interface {
	// Dims returns the cardinality of each decision dimension.
	Dims() []int
	// Eval returns the cost of the point (lower is better) and whether the
	// point is legal. Illegal points have undefined cost.
	Eval(idx []int) (float64, bool)
}

// Trial records one evaluated point for convergence analysis.
type Trial struct {
	// Index is the 0-based trial number.
	Index int
	// Cost is the point's cost; +Inf for illegal points.
	Cost float64
	// Best is the best legal cost seen up to and including this trial.
	Best float64
}

// Result is the outcome of a tuning run.
type Result struct {
	// BestIdx is the best legal point found (nil if none).
	BestIdx []int
	// BestCost is its cost (+Inf if no legal point was found).
	BestCost float64
	// Trials is the per-evaluation convergence trace.
	Trials []Trial
}

// Tuner searches a Space within an evaluation budget.
type Tuner interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Tune runs at most budget evaluations with the given seed.
	Tune(s Space, budget int, seed uint64) Result
}

// recorder accumulates trials and tracks the incumbent.
type recorder struct {
	res Result
}

func newRecorder() *recorder {
	return &recorder{res: Result{BestCost: math.Inf(1)}}
}

func (r *recorder) record(s Space, idx []int) (cost float64, legal bool) {
	cost, legal = s.Eval(idx)
	c := cost
	if !legal {
		c = math.Inf(1)
	}
	if legal && c < r.res.BestCost {
		r.res.BestCost = c
		r.res.BestIdx = append([]int(nil), idx...)
	}
	r.res.Trials = append(r.res.Trials, Trial{
		Index: len(r.res.Trials),
		Cost:  c,
		Best:  r.res.BestCost,
	})
	return cost, legal
}

func (r *recorder) spent() int { return len(r.res.Trials) }

func randomPoint(rng *tensor.RNG, dims []int) []int {
	idx := make([]int, len(dims))
	for i, d := range dims {
		idx[i] = rng.Intn(d)
	}
	return idx
}

// Random is uniform random search, the weakest baseline of Figure 7.
type Random struct{}

// Name implements Tuner.
func (Random) Name() string { return "random" }

// Tune implements Tuner.
func (Random) Tune(s Space, budget int, seed uint64) Result {
	rng := tensor.NewRNG(seed)
	rec := newRecorder()
	dims := s.Dims()
	for rec.spent() < budget {
		rec.record(s, randomPoint(rng, dims))
	}
	return rec.res
}

// Exhaustive evaluates every point of the space (ignoring the budget). Use
// only on small spaces; it provides the ground-truth optimum the
// convergence plots normalize against.
type Exhaustive struct{}

// Name implements Tuner.
func (Exhaustive) Name() string { return "exhaustive" }

// Tune implements Tuner.
func (Exhaustive) Tune(s Space, _ int, _ uint64) Result {
	rec := newRecorder()
	dims := s.Dims()
	idx := make([]int, len(dims))
	for {
		rec.record(s, idx)
		// Odometer increment.
		d := len(dims) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < dims[d] {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return rec.res
		}
	}
}

// Genetic is the genetic-algorithm tuner: tournament-free
// fitness-proportional selection with elitism, uniform crossover and
// per-gene mutation, following the classic formulation.
type Genetic struct {
	// Population is the per-generation population size (default 24).
	Population int
	// Elites survive unchanged each generation (default 4).
	Elites int
	// MutationRate is the per-gene mutation probability (default 0.15).
	MutationRate float64
}

// Name implements Tuner.
func (Genetic) Name() string { return "genetic" }

func (g Genetic) defaults() Genetic {
	if g.Population <= 0 {
		g.Population = 24
	}
	if g.Elites <= 0 {
		g.Elites = 4
	}
	if g.Elites > g.Population {
		g.Elites = g.Population
	}
	if g.MutationRate <= 0 {
		g.MutationRate = 0.15
	}
	return g
}

// Tune implements Tuner.
func (g Genetic) Tune(s Space, budget int, seed uint64) Result {
	g = g.defaults()
	rng := tensor.NewRNG(seed)
	rec := newRecorder()
	dims := s.Dims()

	type indiv struct {
		idx  []int
		cost float64
	}
	pop := make([]indiv, 0, g.Population)
	for len(pop) < g.Population && rec.spent() < budget {
		p := randomPoint(rng, dims)
		c, legal := rec.record(s, p)
		if !legal {
			c = math.Inf(1)
		}
		pop = append(pop, indiv{p, c})
	}
	for rec.spent() < budget {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].cost < pop[j].cost })
		next := make([]indiv, 0, g.Population)
		next = append(next, pop[:min(g.Elites, len(pop))]...)
		// Fitness-proportional (roulette-wheel) selection over inverse
		// cost; illegal individuals get epsilon fitness.
		fitness := make([]float64, len(pop))
		var sum float64
		for i, in := range pop {
			f := 1e-9
			if !math.IsInf(in.cost, 1) && in.cost > 0 {
				f = 1 / in.cost
			}
			fitness[i] = f
			sum += f
		}
		pick := func() indiv {
			v := rng.Float64() * sum
			for i, f := range fitness {
				v -= f
				if v <= 0 {
					return pop[i]
				}
			}
			return pop[len(pop)-1]
		}
		for len(next) < g.Population && rec.spent() < budget {
			a, b := pick(), pick()
			child := make([]int, len(dims))
			for d := range dims {
				if rng.Intn(2) == 0 {
					child[d] = a.idx[d]
				} else {
					child[d] = b.idx[d]
				}
				if rng.Float64() < g.MutationRate {
					child[d] = rng.Intn(dims[d])
				}
			}
			c, legal := rec.record(s, child)
			if !legal {
				c = math.Inf(1)
			}
			next = append(next, indiv{child, c})
		}
		pop = next
	}
	return rec.res
}

// Annealing is simulated annealing over the index grid with single-step
// neighbor moves and a geometric cooling schedule.
type Annealing struct {
	// InitTemp is the starting temperature relative to the first legal
	// cost (default 0.3).
	InitTemp float64
	// Cooling is the per-step temperature multiplier (default 0.995).
	Cooling float64
}

// Name implements Tuner.
func (Annealing) Name() string { return "annealing" }

// Tune implements Tuner.
func (a Annealing) Tune(s Space, budget int, seed uint64) Result {
	if a.InitTemp <= 0 {
		a.InitTemp = 0.3
	}
	if a.Cooling <= 0 || a.Cooling >= 1 {
		a.Cooling = 0.995
	}
	rng := tensor.NewRNG(seed)
	rec := newRecorder()
	dims := s.Dims()

	// Find a legal starting point.
	var cur []int
	var curCost float64
	for rec.spent() < budget {
		p := randomPoint(rng, dims)
		c, legal := rec.record(s, p)
		if legal {
			cur, curCost = p, c
			break
		}
	}
	if cur == nil {
		return rec.res
	}
	temp := a.InitTemp * curCost
	for rec.spent() < budget {
		// Neighbor: move one dimension by ±1 (wrapping).
		n := append([]int(nil), cur...)
		d := rng.Intn(len(dims))
		if rng.Intn(2) == 0 {
			n[d] = (n[d] + 1) % dims[d]
		} else {
			n[d] = (n[d] - 1 + dims[d]) % dims[d]
		}
		c, legal := rec.record(s, n)
		if legal && (c < curCost || rng.Float64() < math.Exp((curCost-c)/math.Max(temp, 1e-12))) {
			cur, curCost = n, c
		}
		temp *= a.Cooling
	}
	return rec.res
}

// Cache memoizes tuning results by workload key. It is safe for concurrent
// use; Hits/Misses expose its effectiveness for the search-speed study.
type Cache struct {
	mu     sync.Mutex
	m      map[string]Result
	hits   int
	misses int
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]Result)} }

// GetOrTune returns the cached result for key, or runs tune and stores it.
func (c *Cache) GetOrTune(key string, tune func() Result) Result {
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r
	}
	c.misses++
	c.mu.Unlock()
	r := tune()
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	return r
}

// Stats returns the hit and miss counts so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// GetOrTuneTransfer is GetOrTune with warm starting: on a cache miss, it
// finds the cached workload whose key shares the longest prefix with the
// requested one (conv keys embed shape fields most-significant-first, so
// longer shared prefixes mean more similar layers) and hands its best point
// to tune as a starting hint. Model families built from one backbone share
// most layer shapes, which is exactly where transfer pays.
func (c *Cache) GetOrTuneTransfer(key string, tune func(hint []int) Result) Result {
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r
	}
	c.misses++
	// Longest-common-prefix neighbor among cached keys.
	var hint []int
	bestLCP := 0
	for k, r := range c.m {
		if r.BestIdx == nil {
			continue
		}
		lcp := 0
		for lcp < len(k) && lcp < len(key) && k[lcp] == key[lcp] {
			lcp++
		}
		if lcp > bestLCP {
			bestLCP = lcp
			hint = r.BestIdx
		}
	}
	c.mu.Unlock()
	r := tune(hint)
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	return r
}

// TuneWithHint runs a genetic search seeded with a known-good point: the
// hint joins the initial population (clamped to the space's dimensions), so
// transfer from a similar workload skips the cold-start phase.
func (g Genetic) TuneWithHint(s Space, budget int, seed uint64, hint []int) Result {
	if hint == nil {
		return g.Tune(s, budget, seed)
	}
	return hintedSpace{s, hint}.tune(g, budget, seed)
}

// hintedSpace rewrites the first random point a tuner draws to the hint by
// wrapping Eval bookkeeping; simpler and fully general would be to extend
// Tuner with a hint parameter, but only Genetic uses transfer today.
type hintedSpace struct {
	Space
	hint []int
}

func (h hintedSpace) tune(g Genetic, budget int, seed uint64) Result {
	g = g.defaults()
	// Evaluate the (clamped) hint first, then continue with a normal run
	// on the remaining budget; merge the traces.
	dims := h.Dims()
	idx := make([]int, len(dims))
	for d := range dims {
		v := 0
		if d < len(h.hint) {
			v = h.hint[d]
		}
		if v < 0 {
			v = 0
		}
		if v >= dims[d] {
			v = dims[d] - 1
		}
		idx[d] = v
	}
	rec := newRecorder()
	rec.record(h.Space, idx)
	rest := g.Tune(h.Space, budget-1, seed)
	for _, tr := range rest.Trials {
		tr.Index = len(rec.res.Trials)
		if tr.Cost < rec.res.BestCost {
			rec.res.BestCost = tr.Cost
		}
		tr.Best = rec.res.BestCost
		rec.res.Trials = append(rec.res.Trials, tr)
	}
	if rest.BestCost < rec.res.BestCost || rec.res.BestIdx == nil {
		if rest.BestIdx != nil {
			rec.res.BestIdx = rest.BestIdx
			rec.res.BestCost = rest.BestCost
		}
	}
	return rec.res
}
