package autotune

import (
	"bytes"
	"testing"
)

// FuzzStoreDecode hardens the tuning-cache decoder: whatever bytes are on
// disk (torn writes, hand edits, other tools), DecodeStore must either
// return a clean error or a store whose canonical encoding round-trips.
// Wired into `make fuzz` and CI's fuzz job.
func FuzzStoreDecode(f *testing.F) {
	f.Add([]byte(`{"version":2,"entries":[{"shape":"conv-n1-c1-k8","impl":"ipe","parallelism":0,"mean_ns":123.5,"samples":40,"updated_unix_ns":7}]}`))
	f.Add([]byte(`{"version":2,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"shape":"s","mean_ns":1,"samples":1}]}`))
	f.Add([]byte(`{"version":2,"entries":[{"shape":"s","impl":"a","parallelism":0,"mean_ns":1,"samples":1},{"shape":"s","impl":"a","parallelism":0,"mean_ns":2,"samples":9}]}`))
	f.Add([]byte(`{"version":2,"entries":[]}trailing`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":2,"entries":[{"shape":"s","impl":"a","mean_ns":1e999,"samples":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStore(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must re-encode and round-trip losslessly.
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("decoded store failed to encode: %v", err)
		}
		s2, err := DecodeStore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding did not decode: %v\n%s", err, buf.Bytes())
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed entry count: %d -> %d", s.Len(), s2.Len())
		}
		for k, e := range s.Snapshot() {
			if got, ok := s2.Get(k); !ok || got != e {
				t.Fatalf("round trip changed %v: %+v -> %+v (ok=%v)", k, e, got, ok)
			}
		}
	})
}
