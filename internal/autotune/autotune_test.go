package autotune

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// quadSpace is a synthetic space with a known optimum at the center of each
// dimension and a band of illegal points.
type quadSpace struct {
	dims []int
}

func (q quadSpace) Dims() []int { return q.dims }

func (q quadSpace) Eval(idx []int) (float64, bool) {
	cost := 1.0
	for d, v := range idx {
		center := q.dims[d] / 2
		cost += float64((v - center) * (v - center))
	}
	// Make the corner region illegal to exercise legality handling.
	if idx[0] == 0 && idx[1] == 0 {
		return 0, false
	}
	return cost, true
}

func (q quadSpace) optimum() float64 { return 1 }

func newQuad() quadSpace { return quadSpace{dims: []int{9, 9, 9}} }

func TestExhaustiveFindsOptimum(t *testing.T) {
	q := newQuad()
	r := Exhaustive{}.Tune(q, 0, 0)
	if r.BestCost != q.optimum() {
		t.Fatalf("exhaustive best = %v, want %v", r.BestCost, q.optimum())
	}
	if len(r.Trials) != 9*9*9 {
		t.Fatalf("exhaustive should evaluate every point, got %d", len(r.Trials))
	}
}

func TestRandomConvergesEventually(t *testing.T) {
	q := newQuad()
	r := Random{}.Tune(q, 2000, 1)
	if r.BestCost > 3 {
		t.Fatalf("random search with 2000 trials should get near 1, got %v", r.BestCost)
	}
	if len(r.Trials) != 2000 {
		t.Fatalf("budget not respected: %d trials", len(r.Trials))
	}
}

func TestGeneticBeatsRandomAtEqualBudget(t *testing.T) {
	q := newQuad()
	const budget = 120
	// Average over seeds to avoid flakiness.
	var gSum, rSum float64
	for seed := uint64(0); seed < 10; seed++ {
		gSum += Genetic{}.Tune(q, budget, seed).BestCost
		rSum += Random{}.Tune(q, budget, seed).BestCost
	}
	if gSum > rSum {
		t.Fatalf("genetic (avg %v) should beat random (avg %v) at budget %d", gSum/10, rSum/10, budget)
	}
}

func TestAnnealingFindsNearOptimum(t *testing.T) {
	q := newQuad()
	var sum float64
	for seed := uint64(0); seed < 10; seed++ {
		sum += Annealing{}.Tune(q, 400, seed).BestCost
	}
	if avg := sum / 10; avg > 2.5 {
		t.Fatalf("annealing average best = %v, want near 1", avg)
	}
}

func TestTrialsMonotoneBest(t *testing.T) {
	q := newQuad()
	for _, tn := range []Tuner{Random{}, Genetic{}, Annealing{}} {
		r := tn.Tune(q, 200, 3)
		prev := math.Inf(1)
		for _, tr := range r.Trials {
			if tr.Best > prev {
				t.Fatalf("%s: best-so-far increased at trial %d", tn.Name(), tr.Index)
			}
			prev = tr.Best
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	q := newQuad()
	for _, tn := range []Tuner{Random{}, Genetic{}, Annealing{}} {
		r := tn.Tune(q, 50, 4)
		if len(r.Trials) > 50 {
			t.Fatalf("%s exceeded budget: %d trials", tn.Name(), len(r.Trials))
		}
	}
}

func TestTunersAreDeterministic(t *testing.T) {
	q := newQuad()
	for _, tn := range []Tuner{Random{}, Genetic{}, Annealing{}} {
		a := tn.Tune(q, 100, 7)
		b := tn.Tune(q, 100, 7)
		if a.BestCost != b.BestCost || len(a.Trials) != len(b.Trials) {
			t.Fatalf("%s: same seed gave different runs", tn.Name())
		}
		for i := range a.Trials {
			if a.Trials[i].Cost != b.Trials[i].Cost {
				t.Fatalf("%s: trial %d differs across runs", tn.Name(), i)
			}
		}
	}
}

func TestIllegalOnlySpace(t *testing.T) {
	// A space with no legal point must return +Inf and nil BestIdx.
	q := quadSpace{dims: []int{1, 1, 1}} // single point at (0,0,0): illegal
	r := Random{}.Tune(q, 10, 1)
	if !math.IsInf(r.BestCost, 1) || r.BestIdx != nil {
		t.Fatalf("no-legal-point space should yield +Inf, got %+v", r)
	}
}

func TestBestIdxMatchesBestCost(t *testing.T) {
	q := newQuad()
	for _, tn := range []Tuner{Random{}, Genetic{}, Annealing{}} {
		r := tn.Tune(q, 150, 9)
		c, legal := q.Eval(r.BestIdx)
		if !legal || c != r.BestCost {
			t.Fatalf("%s: BestIdx does not reproduce BestCost: %v vs %v", tn.Name(), c, r.BestCost)
		}
	}
}

func TestCache(t *testing.T) {
	c := NewCache()
	calls := 0
	tune := func() Result {
		calls++
		return Result{BestCost: 42}
	}
	r1 := c.GetOrTune("k", tune)
	r2 := c.GetOrTune("k", tune)
	if calls != 1 {
		t.Fatalf("tune ran %d times, want 1", calls)
	}
	if r1.BestCost != 42 || r2.BestCost != 42 {
		t.Fatal("cache returned wrong result")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestTuneRealScheduleSpace(t *testing.T) {
	// End-to-end: tuners on a real conv schedule space must find legal
	// schedules, and genetic must land within 30% of exhaustive.
	w := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 16, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N:    1, H: 8, W: 8,
	}
	sp := schedule.NewSpace(w, accel.Default())
	best := Exhaustive{}.Tune(sp, 0, 0).BestCost
	if math.IsInf(best, 1) {
		t.Fatal("exhaustive found no legal schedule")
	}
	got := Genetic{}.Tune(sp, 200, 1).BestCost
	if got > best*1.3 {
		t.Fatalf("genetic best %v more than 30%% off exhaustive optimum %v", got, best)
	}
}

func TestSurrogateBeatsRandomOnQuadratic(t *testing.T) {
	// The quadratic space matches the surrogate's feature class exactly,
	// so it should dominate random search decisively.
	q := newQuad()
	const budget = 80
	var sSum, rSum float64
	for seed := uint64(0); seed < 10; seed++ {
		sSum += Surrogate{}.Tune(q, budget, seed).BestCost
		rSum += Random{}.Tune(q, budget, seed).BestCost
	}
	if sSum >= rSum {
		t.Fatalf("surrogate (avg %v) should beat random (avg %v)", sSum/10, rSum/10)
	}
}

func TestSurrogateDeterministicAndBudgeted(t *testing.T) {
	q := newQuad()
	a := Surrogate{}.Tune(q, 70, 3)
	b := Surrogate{}.Tune(q, 70, 3)
	if a.BestCost != b.BestCost || len(a.Trials) != len(b.Trials) {
		t.Fatal("surrogate must be deterministic for a fixed seed")
	}
	if len(a.Trials) > 70 {
		t.Fatalf("budget exceeded: %d", len(a.Trials))
	}
}

func TestSurrogateOnRealScheduleSpace(t *testing.T) {
	w := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 16, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N:    1, H: 8, W: 8,
	}
	sp := schedule.NewSpace(w, accel.Default())
	best := Exhaustive{}.Tune(sp, 0, 0).BestCost
	got := Surrogate{}.Tune(sp, 200, 1).BestCost
	if got > best*1.5 {
		t.Fatalf("surrogate best %v more than 50%% off optimum %v", got, best)
	}
}

func TestRidgeFitRecoversLinear(t *testing.T) {
	// y = 2 + 3x fits exactly with tiny regularization.
	xs := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	ys := []float64{2, 5, 8, 11}
	w := ridgeFit(xs, ys, 1e-9)
	if len(w) != 2 || mathAbs(w[0]-2) > 1e-4 || mathAbs(w[1]-3) > 1e-4 {
		t.Fatalf("ridgeFit = %v, want [2 3]", w)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTransferCacheWarmStart(t *testing.T) {
	c := NewCache()
	q := newQuad()
	// Prime the cache with a solved workload under a similar key.
	base := Genetic{}.Tune(q, 200, 1)
	c.GetOrTune("conv-n1-c16-k32-h8", func() Result { return base })

	var gotHint []int
	r := c.GetOrTuneTransfer("conv-n1-c16-k32-h16", func(hint []int) Result {
		gotHint = hint
		return Genetic{}.TuneWithHint(q, 60, 2, hint)
	})
	if gotHint == nil {
		t.Fatal("transfer should supply the neighbor's best point as hint")
	}
	if r.BestCost > base.BestCost*1.5 {
		t.Fatalf("warm-started result %v far off primed best %v", r.BestCost, base.BestCost)
	}
	// Second call must hit the cache without re-tuning.
	calls := 0
	c.GetOrTuneTransfer("conv-n1-c16-k32-h16", func([]int) Result { calls++; return Result{} })
	if calls != 0 {
		t.Fatal("cache hit should not re-tune")
	}
}

func TestTuneWithHintEvaluatesHintFirst(t *testing.T) {
	q := newQuad()
	// The hint is the known optimum: the first trial must already be
	// optimal.
	hint := []int{4, 4, 4}
	r := Genetic{}.TuneWithHint(q, 40, 3, hint)
	if len(r.Trials) == 0 || r.Trials[0].Cost != q.optimum() {
		t.Fatalf("hint not evaluated first: %+v", r.Trials[0])
	}
	if r.BestCost != q.optimum() {
		t.Fatalf("best = %v", r.BestCost)
	}
}

func TestTuneWithHintClampsOutOfRange(t *testing.T) {
	q := newQuad()
	r := Genetic{}.TuneWithHint(q, 30, 4, []int{99, -5, 99})
	if len(r.Trials) == 0 {
		t.Fatal("no trials ran")
	}
	// Clamped hint (8, 0, 8) is legal; run must complete within budget.
	if len(r.Trials) > 30 {
		t.Fatalf("budget exceeded: %d", len(r.Trials))
	}
}

func TestTuneWithHintNilEqualsPlain(t *testing.T) {
	q := newQuad()
	a := Genetic{}.TuneWithHint(q, 50, 5, nil)
	b := Genetic{}.Tune(q, 50, 5)
	if a.BestCost != b.BestCost || len(a.Trials) != len(b.Trials) {
		t.Fatal("nil hint must be identical to plain Tune")
	}
}
