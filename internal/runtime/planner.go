// Package runtime is the INSPIRE inference engine: it compiles an optimized
// graph into an execution plan — choosing, per operator, the fastest
// implementation among dense, CSR-sparse, value-factorized and index-pair
// encoded kernels according to the simulated accelerator (system-level
// exploration) — plans activation memory with a liveness-based arena
// allocator, and executes the plan on the CPU while accumulating the
// modeled cycles and energy.
package runtime

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Allocation is one activation buffer's placement in the arena.
type Allocation struct {
	// Offset is the buffer's byte offset in the arena.
	Offset int64
	// Size is the buffer's byte size.
	Size int64
}

// End returns the first byte past the allocation.
func (a Allocation) End() int64 { return a.Offset + a.Size }

// arena is a first-fit free-list allocator over a growable address space.
type arena struct {
	free []Allocation // sorted by offset, coalesced
	high int64        // high-water mark
}

func (a *arena) alloc(size int64) int64 {
	for i, f := range a.free {
		if f.Size >= size {
			off := f.Offset
			if f.Size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = Allocation{Offset: f.Offset + size, Size: f.Size - size}
			}
			return off
		}
	}
	off := a.high
	a.high += size
	return off
}

// release returns a block to the free list, keeping the list offset-sorted
// and coalesced. The list is already sorted, so instead of re-sorting it we
// binary-search the insertion point and merge with at most the two
// neighbors — O(log n + n) worst case for the slice shift, O(log n) when
// the block coalesces.
func (a *arena) release(alloc Allocation) {
	i := sort.Search(len(a.free), func(j int) bool { return a.free[j].Offset >= alloc.Offset })
	mergePrev := i > 0 && a.free[i-1].End() == alloc.Offset
	mergeNext := i < len(a.free) && alloc.End() == a.free[i].Offset
	switch {
	case mergePrev && mergeNext:
		a.free[i-1].Size += alloc.Size + a.free[i].Size
		a.free = append(a.free[:i], a.free[i+1:]...)
	case mergePrev:
		a.free[i-1].Size += alloc.Size
	case mergeNext:
		a.free[i].Offset = alloc.Offset
		a.free[i].Size += alloc.Size
	default:
		a.free = append(a.free, Allocation{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = alloc
	}
}

// PlanMemory assigns arena offsets to the output buffers of every
// non-input, non-constant node in the topological order, reusing the space
// of buffers whose last consumer has executed. It returns the allocation
// map (keyed by node ID) and the total arena size in bytes. Shapes must
// already be inferred.
func PlanMemory(g *graph.Graph) (map[int]Allocation, int64, error) {
	order := g.Topo()
	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	// lastUse[n] = topo index of n's final consumer; the graph output
	// lives to the end.
	lastUse := make(map[*graph.Node]int, len(order))
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[n] > lastUse[in] {
				lastUse[in] = pos[n]
			}
		}
	}
	lastUse[g.Out] = len(order)

	plans := make(map[int]Allocation)
	var a arena
	// expiring[i] lists allocations to release after step i executes.
	expiring := make(map[int][]Allocation)
	for i, n := range order {
		// Release buffers whose last use was an earlier step.
		for _, al := range expiring[i] {
			a.release(al)
		}
		delete(expiring, i)
		if n.Kind == graph.OpInput || n.Kind == graph.OpConst {
			continue
		}
		if !n.OutShape.Valid() {
			return nil, 0, fmt.Errorf("runtime: %s has no inferred shape; run InferShapes first", n)
		}
		size := int64(n.OutShape.NumElements()) * 4
		al := Allocation{Offset: a.alloc(size), Size: size}
		plans[n.ID] = al
		lu := lastUse[n]
		if lu < i {
			lu = i // produced but never consumed
		}
		// Free after the last consumer has *executed*, i.e. at the start
		// of the following step, so the consumer can still read it and a
		// node's output never aliases its own inputs.
		expiring[lu+1] = append(expiring[lu+1], al)
	}
	return plans, a.high, nil
}

// ValidatePlan checks that no two simultaneously live buffers overlap and
// that every buffer fits in the arena — the planner's safety invariant,
// exposed for tests and for `inspire-sim -check`.
func ValidatePlan(g *graph.Graph, plans map[int]Allocation, arenaBytes int64) error {
	order := g.Topo()
	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	lastUse := make(map[*graph.Node]int, len(order))
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[n] > lastUse[in] {
				lastUse[in] = pos[n]
			}
		}
	}
	lastUse[g.Out] = len(order)
	type live struct {
		n     *graph.Node
		birth int
		death int
		al    Allocation
	}
	var all []live
	for _, n := range order {
		al, ok := plans[n.ID]
		if !ok {
			continue
		}
		if al.Offset < 0 || al.End() > arenaBytes {
			return fmt.Errorf("runtime: %s allocation [%d,%d) outside arena of %d bytes",
				n, al.Offset, al.End(), arenaBytes)
		}
		all = append(all, live{n, pos[n], lastUse[n], al})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			overlapTime := a.birth <= b.death && b.birth <= a.death
			overlapSpace := a.al.Offset < b.al.End() && b.al.Offset < a.al.End()
			if overlapTime && overlapSpace {
				return fmt.Errorf("runtime: live buffers overlap: %s [%d,%d) and %s [%d,%d)",
					a.n, a.al.Offset, a.al.End(), b.n, b.al.Offset, b.al.End())
			}
		}
	}
	return nil
}
