package runtime

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// compileFusedPair compiles two independent builds of the same model, one
// with the graph scheduler and one without, under identical options (so
// implementation selection is identical and outputs must be bit-equal).
func compileFusedPair(t *testing.T, build func() *graph.Graph, opts Options) (fused, base *Plan) {
	t.Helper()
	opts.Fuse = true
	fused, err := Compile(build(), opts)
	if err != nil {
		t.Fatalf("fused compile: %v", err)
	}
	opts.Fuse = false
	base, err = Compile(build(), opts)
	if err != nil {
		t.Fatalf("base compile: %v", err)
	}
	return fused, base
}

func runBoth(t *testing.T, fused, base *Plan, seed uint64) {
	t.Helper()
	in := gaussianInput(base.Graph.In.OutShape, seed)
	want, err := base.Run(in)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	got, err := fused.Run(in)
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("fused shape %v != base %v", got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("fused output[%d] = %v != base %v (bit-exact required)", i, gd[i], wd[i])
		}
	}
}

// TestFusedBitIdenticalModels checks the scheduler end to end on real
// models under every forceable implementation: fused and unfused plans must
// agree bit for bit. CSR/factorized heads exercise the spill path (no
// windowed kernel); dense and IPE heads the tiled path.
func TestFusedBitIdenticalModels(t *testing.T) {
	models := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"lenet5", func() *graph.Graph { return nn.LeNet5(2, 11) }},
		{"squeezenet", func() *graph.Graph { return nn.SqueezeNet(1, 32, 10, 7) }},
	}
	for _, m := range models {
		for _, force := range []Impl{ImplAuto, ImplDense, ImplIPE, ImplCSR} {
			t.Run(m.name+"/"+force.String(), func(t *testing.T) {
				fused, base := compileFusedPair(t, m.build, Options{Force: force})
				if len(fused.Regions) == 0 {
					t.Fatal("scheduler found no regions")
				}
				runBoth(t, fused, base, 3)
			})
		}
	}
}

// TestFusedArenaAndDRAMReduction is the acceptance gate: on the evaluation
// models the fused plan must shrink the peak arena by at least 25% and the
// fused regions' modeled DRAM traffic by at least 30%.
func TestFusedArenaAndDRAMReduction(t *testing.T) {
	models := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"lenet5", func() *graph.Graph { return nn.LeNet5(1, 11) }},
		{"squeezenet", func() *graph.Graph { return nn.SqueezeNet(1, 32, 10, 7) }},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			fused, base := compileFusedPair(t, m.build, Options{Force: ImplIPE})
			if fused.ArenaBytes*4 > base.ArenaBytes*3 {
				t.Errorf("arena %d is not >=25%% below unfused %d", fused.ArenaBytes, base.ArenaBytes)
			}
			var fd, ud int64
			for _, rp := range fused.Regions {
				if rp.Spilled {
					t.Errorf("region %s spilled on the default config", rp.Name)
					continue
				}
				fd += rp.FusedDRAMBytes
				ud += rp.UnfusedDRAMBytes
			}
			if ud == 0 {
				t.Fatal("no fused regions to measure")
			}
			if fd*10 > ud*7 {
				t.Errorf("region DRAM %d is not >=30%% below unfused %d", fd, ud)
			}
			if fused.Total.DRAMBytes >= base.Total.DRAMBytes {
				t.Errorf("fused Total.DRAMBytes %d >= unfused %d", fused.Total.DRAMBytes, base.Total.DRAMBytes)
			}
		})
	}
}

// TestFusedTinySRAMMultiTile forces multi-tile schedules with a 4 KiB
// scratchpad: regions must split into several tiles per image and still
// match the unfused plan bit for bit, under both the tile-parallel and the
// tile-serial executor paths.
func TestFusedTinySRAMMultiTile(t *testing.T) {
	hw := accel.Default()
	hw.SRAMBytes = 4 << 10
	for _, force := range []Impl{ImplDense, ImplIPE} {
		t.Run(force.String(), func(t *testing.T) {
			build := func() *graph.Graph { return nn.LeNet5(2, 11) }
			fused, base := compileFusedPair(t, build, Options{Force: force, HW: hw})
			multi := false
			for _, rp := range fused.Regions {
				if rp.Tiled && rp.Tile.TilesPerImage > 1 {
					multi = true
				}
			}
			if !multi {
				t.Fatal("4 KiB SRAM should force multi-tile schedules")
			}
			runBoth(t, fused, base, 5)

			in := gaussianInput(base.Graph.In.OutShape, 6)
			want, err := base.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 7} {
				e := fused.NewExecutor()
				e.SetParallelism(shards)
				got, err := e.Run(in)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				for i := range want.Data() {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("shards=%d output[%d] differs", shards, i)
					}
				}
			}
		})
	}
}

// TestFusedElementwiseAndConcatRetention builds a fire-like graph with a
// double ReLU (one survives relu-fuse as an explicit interior node) and a
// concat of two single-consumer convs: the scheduler must fuse the
// elementwise chain and retain both concat inputs inside the concat's
// allocation, and the result must stay bit-identical.
func TestFusedElementwiseAndConcatRetention(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New("in", 1, 3, 8, 8)
		rng := tensor.NewRNG(99)
		conv := func(x *graph.Node, name string, inC, outC int) *graph.Node {
			spec := tensor.ConvSpec{InC: inC, OutC: outC, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
			w := tensor.New(spec.WeightShape()...)
			tensor.FillGaussian(w, rng, 0.5)
			b := tensor.New(outC)
			tensor.FillGaussian(b, rng, 0.5)
			return g.Conv(x, name, spec, w, b)
		}
		// Double ReLU: relu-fuse absorbs the first into the conv, the
		// second stays explicit -> elementwise region conv+relu.
		x := g.ReLU(g.ReLU(conv(g.In, "stem", 3, 4), "r1"), "r2")
		a := g.ReLU(conv(x, "branch_a", 4, 5), "ra")
		b := g.ReLU(conv(x, "branch_b", 4, 3), "rb")
		cat := g.Concat("cat", a, b)
		g.SetOutput(g.MaxPool(cat, "pool", graph.PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2}))
		return g
	}
	fused, base := compileFusedPair(t, build, Options{Force: ImplIPE})

	var sawElementwise bool
	for _, rp := range fused.Regions {
		if rp.Pool == nil && !rp.Spilled {
			sawElementwise = true
			if !rp.ExtraReLU {
				t.Errorf("elementwise region %s lost its explicit ReLU", rp.Name)
			}
		}
	}
	if !sawElementwise {
		t.Error("expected an elementwise region from the double ReLU")
	}

	var cat *graph.Node
	for _, n := range fused.Graph.Topo() {
		if n.Kind == graph.OpConcat {
			cat = n
		}
	}
	if cat == nil {
		t.Fatal("concat vanished")
	}
	catAl := fused.Alloc[cat.ID]
	var off int64
	for _, in := range cat.Inputs {
		al, ok := fused.Alloc[in.ID]
		if !ok {
			t.Fatalf("concat input %s has no allocation", in)
		}
		if al.Offset != catAl.Offset+off {
			t.Errorf("concat input %s not retained in slab: offset %d, want %d", in, al.Offset, catAl.Offset+off)
		}
		off += int64(in.OutShape.NumElements()) * 4
	}

	runBoth(t, fused, base, 4)
}

// TestFusedScheduleLiveness re-derives buffer lifetimes from the fused step
// schedule and checks the invariant the executor depends on: no two
// simultaneously-live canonical buffers overlap, every allocation lies
// inside the arena, and the graph output survives to the end.
func TestFusedScheduleLiveness(t *testing.T) {
	builds := []func() *graph.Graph{
		func() *graph.Graph { return nn.LeNet5(2, 11) },
		func() *graph.Graph { return nn.SqueezeNet(1, 32, 10, 7) },
		func() *graph.Graph { return nn.MobileNetV1(1, 32, 10, 7) },
	}
	for _, build := range builds {
		p, err := Compile(build(), Options{Force: ImplIPE, Fuse: true})
		if err != nil {
			t.Fatal(err)
		}
		g := p.Graph
		// Retained concat slabs are written piecewise by their members'
		// steps. Arena reuse can give unrelated buffers identical ranges,
		// so identify slabs structurally: a concat whose inputs' planned
		// allocations tile its own, in order.
		parentOf := make(map[int]int)
		for _, n := range g.Topo() {
			if n.Kind != graph.OpConcat {
				continue
			}
			cal, ok := p.Alloc[n.ID]
			if !ok {
				continue
			}
			off, tiled := cal.Offset, true
			for _, in := range n.Inputs {
				al, ok := p.Alloc[in.ID]
				if !ok || al.Offset != off {
					tiled = false
					break
				}
				off = al.End()
			}
			if tiled && off == cal.End() {
				for _, in := range n.Inputs {
					parentOf[in.ID] = n.ID
				}
			}
		}
		// Interval per written buffer, from the schedule itself.
		type iv struct{ birth, death int }
		live := make(map[int]iv)
		touch := func(id, step int, write bool) {
			al, ok := p.Alloc[id]
			if !ok {
				t.Fatalf("step %d touches unallocated node %d", step, id)
			}
			if al.Offset < 0 || al.End() > p.ArenaBytes {
				t.Fatalf("allocation %+v outside arena %d", al, p.ArenaBytes)
			}
			v, ok := live[id]
			if !ok {
				if !write {
					t.Fatalf("step %d reads node %d before any write", step, id)
				}
				v = iv{birth: step, death: step}
			}
			v.death = step
			live[id] = v
		}
		for i, s := range p.steps {
			var w *graph.Node
			var reads []*graph.Node
			if s.region != nil {
				w, reads = s.region.Tail, s.region.Head.Inputs
			} else {
				w, reads = s.op.Node, s.op.Node.Inputs
			}
			for _, in := range reads {
				if in.Kind != graph.OpInput && in.Kind != graph.OpConst {
					touch(in.ID, i, false)
				}
			}
			for id := w.ID; ; {
				touch(id, i, true)
				next, ok := parentOf[id]
				if !ok {
					break
				}
				id = next
			}
		}
		if v, ok := live[g.Out.ID]; ok {
			v.death = len(p.steps)
			live[g.Out.ID] = v
		} else {
			t.Fatal("graph output never written")
		}
		// Concat-slab aliases legitimately overlap their parent; compare
		// only buffers that do not nest.
		nested := func(a, b Allocation) bool {
			return (a.Offset >= b.Offset && a.End() <= b.End()) ||
				(b.Offset >= a.Offset && b.End() <= a.End())
		}
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				va, vb := live[a], live[b]
				if va.birth > vb.death || vb.birth > va.death {
					continue
				}
				alA, alB := p.Alloc[a], p.Alloc[b]
				if alA.Offset < alB.End() && alB.Offset < alA.End() && !nested(alA, alB) {
					t.Fatalf("live buffers overlap: node %d %+v [%d,%d] vs node %d %+v [%d,%d]",
						a, alA, va.birth, va.death, b, alB, vb.birth, vb.death)
				}
			}
		}
	}
}

// TestFusedRunBatchBitIdentical checks the fused plan through the batched
// serving path (chunk workers + intra-op shards).
func TestFusedRunBatchBitIdentical(t *testing.T) {
	build := func() *graph.Graph { return nn.LeNet5(2, 11) }
	fused, base := compileFusedPair(t, build, Options{Force: ImplIPE})
	in := gaussianInput(tensor.Shape{8, 1, 28, 28}, 9)
	want, err := base.RunBatch(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fused.RunBatch(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("RunBatch output[%d] differs", i)
		}
	}
}
