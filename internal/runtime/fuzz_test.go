package runtime_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// FuzzPlanner drives the arena planner over generator seeds: every graph
// the conformance generator can produce, before and after the optimizer,
// must plan into an arena where ValidatePlan finds no overlapping live
// buffers, every computed node has an allocation at least as large as its
// output, and the reported arena size bounds every placement.
func FuzzPlanner(f *testing.F) {
	for seed := uint64(1); seed <= 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		gc := conformance.GenGraph(seed)
		for _, pass := range []string{"raw", "optimized"} {
			g := gc.Graph.Clone()
			if pass == "optimized" {
				if err := graph.Optimize(g); err != nil {
					t.Fatalf("seed %d: Optimize: %v", seed, err)
				}
			}
			plans, arenaBytes, err := runtime.PlanMemory(g)
			if err != nil {
				t.Fatalf("seed %d (%s): PlanMemory: %v", seed, pass, err)
			}
			if err := runtime.ValidatePlan(g, plans, arenaBytes); err != nil {
				t.Fatalf("seed %d (%s): %v", seed, pass, err)
			}
			for _, n := range g.Topo() {
				if n.Kind == graph.OpInput || n.Kind == graph.OpConst {
					continue
				}
				al, ok := plans[n.ID]
				if !ok {
					t.Fatalf("seed %d (%s): computed node %s has no allocation", seed, pass, n)
				}
				if need := int64(n.OutShape.NumElements()) * 4; al.Size < need {
					t.Fatalf("seed %d (%s): %s allocation %d bytes < output %d bytes",
						seed, pass, n, al.Size, need)
				}
			}
		}
	})
}
