package runtime

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/autotune"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// convGraph builds a single 3x3 stride-1 conv (the shape every candidate
// implementation supports, winograd included) over a batch-n input.
func convGraph(t *testing.T, batch int) *graph.Graph {
	t.Helper()
	g := graph.New("in", batch, 1, 8, 8)
	spec := tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := tensor.NewRNG(17)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.5)
	b := tensor.New(4)
	tensor.FillGaussian(b, r, 0.1)
	c := g.Conv(g.In, "c1", spec, w, b)
	g.SetOutput(c)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	return g
}

// convOp returns the plan's compiled conv operator.
func convOp(t *testing.T, p *Plan) *CompiledOp {
	t.Helper()
	for i := range p.Ops {
		if p.Ops[i].Node.Kind == graph.OpConv {
			return &p.Ops[i]
		}
	}
	t.Fatal("no conv op in plan")
	return nil
}

// altImpl picks a built candidate different from the op's current choice.
func altImpl(t *testing.T, op *CompiledOp) Impl {
	t.Helper()
	for _, im := range op.tunableArms() {
		if im != op.Impl {
			return im
		}
	}
	t.Fatal("no alternate candidate")
	return ImplAuto
}

// TestTuningStoreSeedsPlan: a persisted winner for the operator's exact
// (shape, impl, parallelism) overrides the simulator's pick at compile time;
// entries for other parallelism or unknown impls never leak in, and forced
// plans ignore the store entirely.
func TestTuningStoreSeedsPlan(t *testing.T) {
	opts := Options{Bits: 8}
	base, err := Compile(convGraph(t, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	op := convOp(t, base)
	alt := altImpl(t, op)
	if len(op.tunableArms()) < 2 {
		t.Fatalf("conv built %d candidates, need >= 2", len(op.tunableArms()))
	}

	store := autotune.NewStore()
	store.Put(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 0},
		autotune.Entry{MeanNs: 1, Samples: 100, UpdatedUnixNs: 1})

	opts.TuningStore = store
	seeded, err := Compile(convGraph(t, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := convOp(t, seeded).Impl; got != alt {
		t.Fatalf("seeded plan chose %s, want stored winner %s", got, alt)
	}

	// A winner measured under a different parallelism must not seed p0.
	other := autotune.NewStore()
	other.Put(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 8},
		autotune.Entry{MeanNs: 1, Samples: 100})
	opts.TuningStore = other
	unseeded, err := Compile(convGraph(t, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := convOp(t, unseeded).Impl; got != op.Impl {
		t.Fatalf("p8 entry leaked into p0 plan: got %s, want %s", got, op.Impl)
	}

	// Under-sampled entries never seed.
	thin := autotune.NewStore()
	thin.Put(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 0},
		autotune.Entry{MeanNs: 1, Samples: 2})
	opts.TuningStore = thin
	if p, err := Compile(convGraph(t, 1), opts); err != nil {
		t.Fatal(err)
	} else if got := convOp(t, p).Impl; got != op.Impl {
		t.Fatalf("under-sampled entry seeded the plan: got %s", got)
	}

	// Forced plans serve the forced impl no matter what the store says.
	opts.TuningStore = store
	opts.Force = ImplDense
	forced, err := Compile(convGraph(t, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := convOp(t, forced).Impl; got != ImplDense {
		t.Fatalf("store overrode a forced plan: got %s", got)
	}
}

func TestStartTunerErrors(t *testing.T) {
	forced, err := Compile(convGraph(t, 1), Options{Bits: 8, Force: ImplIPE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := forced.StartTuner(TunerConfig{}); err == nil {
		t.Error("StartTuner accepted a forced plan")
	}

	plan, err := Compile(convGraph(t, 1), Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := plan.StartTuner(TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.StartTuner(TunerConfig{}); err == nil {
		t.Error("StartTuner accepted a second session on the same plan")
	}
	if err := pt.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestTunerPromotesAndSeedsRestartedServer is the end-to-end loop: scripted
// latency series drive a promotion, Stop persists the winner, and a plan
// compiled from the reloaded cache — a restarted server — serves the
// promoted implementation on its first request.
func TestTunerPromotesAndSeedsRestartedServer(t *testing.T) {
	rec := EnableMetrics()
	defer DisableMetrics()

	plan, err := Compile(convGraph(t, 1), Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan.MetricsPrefix = "warm/"
	op := convOp(t, plan)
	incumbent, alt := op.Impl, altImpl(t, op)

	path := filepath.Join(t.TempDir(), "tuning.json")
	store := autotune.NewStore()
	pt, err := plan.StartTuner(TunerConfig{Store: store, StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	layer := rec.Layer("warm/" + op.Node.Name)
	incK := stepKernelFor(graph.OpConv, incumbent)
	altK := stepKernelFor(graph.OpConv, alt)

	// Script the reward series directly: the incumbent serves at 1ms, the
	// alternate at 0.1ms. Each poll sees a fresh batch of both.
	promoted := false
	for i := 0; i < 50 && !promoted; i++ {
		for j := 0; j < 20; j++ {
			layer.Record(incK, 1_000_000, 1)
		}
		for j := 0; j < 5; j++ {
			layer.Record(altK, 100_000, 1)
		}
		promoted = pt.Poll() > 0
	}
	if !promoted {
		t.Fatal("tuner never promoted a 10x faster alternate")
	}
	st := pt.State()
	if len(st) != 1 || st[0].Current != alt.String() {
		t.Fatalf("tuner state %+v, want current %s", st, alt)
	}
	if err := pt.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 0}); !ok {
		t.Fatalf("winner not written back to store: %v", store.Snapshot())
	}

	// "Restart": reload the cache from disk and compile a fresh plan.
	reloaded, err := autotune.LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Compile(convGraph(t, 1), Options{Bits: 8, TuningStore: reloaded})
	if err != nil {
		t.Fatal(err)
	}
	if got := convOp(t, warm).Impl; got != alt {
		t.Fatalf("restarted server plans %s on first request, want tuned %s", got, alt)
	}
}

// TestTunerFrozenAfterStopRoutesWinner: after Stop, executions keep serving
// the promoted arm with exploration off.
func TestTunerFrozenAfterStopRoutesWinner(t *testing.T) {
	rec := EnableMetrics()
	defer DisableMetrics()
	plan, err := Compile(convGraph(t, 1), Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	op := convOp(t, plan)
	alt := altImpl(t, op)
	pt, err := plan.StartTuner(TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	layer := rec.Layer(op.Node.Name)
	for i := 0; i < 50; i++ {
		for j := 0; j < 20; j++ {
			layer.Record(stepKernelFor(graph.OpConv, op.Impl), 1_000_000, 1)
		}
		for j := 0; j < 5; j++ {
			layer.Record(stepKernelFor(graph.OpConv, alt), 100_000, 1)
		}
		if pt.Poll() > 0 {
			break
		}
	}
	if err := pt.Stop(); err != nil {
		t.Fatal(err)
	}

	// All post-Stop executions must run the promoted kernel: compare against
	// the forced-alt plan's output, and check the bandit's counters while
	// frozen (chooses stop advancing).
	in := tensor.New(1, 1, 8, 8)
	tensor.FillGaussian(in, tensor.NewRNG(3), 1)
	want := forcedOutput(t, alt, in)
	c0, _, _ := counts(pt)
	for i := 0; i < 8; i++ {
		got, err := plan.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f32bytes(got.Data()), f32bytes(want.Data())) {
			t.Fatalf("run %d: frozen plan did not serve the promoted impl %s", i, alt)
		}
	}
	if c1, _, _ := counts(pt); c1 != c0 {
		t.Errorf("frozen tuner still counting chooses: %d -> %d", c0, c1)
	}
}

func counts(pt *PlanTuner) (chooses, explores, promos int64) {
	st := pt.State()
	for _, l := range st {
		chooses += l.Chooses
		explores += l.Explores
		promos += l.Promotions
	}
	return
}

// forcedOutput runs the conv graph with one forced implementation.
func forcedOutput(t *testing.T, im Impl, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	p, err := Compile(convGraph(t, in.Dim(0)), Options{Bits: 8, Force: im})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func f32bytes(d []float32) []byte {
	buf := make([]byte, 4*len(d))
	for i, v := range d {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32frombits(v))
	}
	return buf
}

func uint32frombits(f float32) uint32 { return math.Float32bits(f) }

// TestTunerLiveRoutingBitCompatible is the race-gated integration test: a
// bandit explores on a live plan while concurrent runs execute and metrics
// flip on and off. Every single output must be byte-identical to one of the
// forced-implementation plans' outputs for the same input — exploration may
// pick any proven candidate, but never perturb a result — and exploration
// must actually happen. Promotion is disabled so the arm set stays put.
func TestTunerLiveRoutingBitCompatible(t *testing.T) {
	EnableMetrics()
	defer DisableMetrics()

	const batch = 2
	in := tensor.New(batch, 1, 8, 8)
	tensor.FillGaussian(in, tensor.NewRNG(5), 1)

	plan, err := Compile(convGraph(t, batch), Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	op := convOp(t, plan)

	// One reference output per candidate arm, keyed by its bytes. Per-batch
	// rows are also collected so chunked RunBatch outputs (which may mix
	// arms across chunks) stay checkable row by row.
	arms := op.tunableArms()
	if len(arms) < 2 {
		t.Fatalf("conv built %d arms, need >= 2", len(arms))
	}
	whole := make(map[string]bool, len(arms))
	rowSet := make(map[string]bool, len(arms)*batch)
	rowLen := 0
	for _, im := range arms {
		out := forcedOutput(t, im, in)
		whole[string(f32bytes(out.Data()))] = true
		rowLen = len(out.Data()) / batch
		for b := 0; b < batch; b++ {
			rowSet[rowKey(b, out.Data()[b*rowLen:(b+1)*rowLen])] = true
		}
	}

	pt, err := plan.StartTuner(TunerConfig{
		// Explore aggressively, promote never: the output set must not shift
		// under the checkers' feet.
		Policy: autotune.Policy{ExplorePeriod: 4, MinSamples: 1 << 40, Hysteresis: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		runners = 4
		iters   = 150
	)
	var wg sync.WaitGroup
	var failures atomic.Int32
	fail := func(format string, args ...any) {
		if failures.Add(1) == 1 {
			t.Errorf(format, args...)
		}
	}
	stopToggle := make(chan struct{})
	wg.Add(1)
	go func() { // metrics churn: recorder swaps mid-flight must not corrupt outputs
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopToggle:
				return
			default:
			}
			if i%2 == 0 {
				DisableMetrics()
			} else {
				EnableMetrics()
			}
		}
	}()
	for w := 0; w < runners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var out *tensor.Tensor
				var err error
				if i%3 == 0 {
					out, err = plan.RunBatch(in, 2)
				} else {
					out, err = plan.Run(in)
				}
				if err != nil {
					fail("runner %d iter %d: %v", w, i, err)
					return
				}
				data := out.Data()
				if string(f32bytes(data)) == "" { // unreachable; keeps data live
					return
				}
				for b := 0; b < batch; b++ {
					if !rowSet[rowKey(b, data[b*rowLen:(b+1)*rowLen])] {
						fail("runner %d iter %d: row %d matches no candidate implementation", w, i, b)
						return
					}
				}
				if i%3 != 0 && !whole[string(f32bytes(data))] {
					fail("runner %d iter %d: unchunked output matches no candidate implementation", w, i)
					return
				}
			}
		}(w)
	}
	// Poll concurrently too: the promotion path must be race-free even if it
	// never promotes.
	for i := 0; i < 20; i++ {
		if pt.Poll() != 0 {
			t.Error("promotion happened with MinSamples disabled")
		}
	}
	close(stopToggle)
	wg.Wait()
	EnableMetrics()

	if failures.Load() > 0 {
		t.FailNow()
	}
	chooses, explores, promos := counts(pt)
	if explores == 0 {
		t.Error("bandit never explored under live traffic")
	}
	if promos != 0 {
		t.Errorf("bandit promoted %d times with promotion disabled", promos)
	}
	// The exploration fraction stays exactly bounded under concurrency.
	if want := chooses / 4; explores != want {
		t.Errorf("explores = %d, want exactly chooses/period = %d", explores, want)
	}
	if err := pt.Stop(); err != nil {
		t.Fatal(err)
	}
}

func rowKey(b int, row []float32) string {
	return string(rune('0'+b)) + string(f32bytes(row))
}

// TestTunerParArms: with ParArms set, every implementation arm is crossed
// with the extra parallelism levels; a parallelism-qualified arm can win
// (its latency series is separate from the same impl at serving
// parallelism), routing then executes it resharded with bit-identical
// output, and Stop writes the winner back under the arm's own parallelism.
func TestTunerParArms(t *testing.T) {
	rec := EnableMetrics()
	defer DisableMetrics()

	plan, err := Compile(convGraph(t, 1), Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	op := convOp(t, plan)
	incumbent, alt := op.Impl, altImpl(t, op)

	store := autotune.NewStore()
	pt, err := plan.StartTuner(TunerConfig{Store: store, ParArms: []int{2}})
	if err != nil {
		t.Fatal(err)
	}

	// Arm sets must cross impls with parallelism: impl and impl@p2 per
	// candidate.
	st := pt.State()
	if len(st) != 1 {
		t.Fatalf("tuned layers = %d, want 1", len(st))
	}
	armNames := pt.tuner.Layers()[0].Arms()
	wantArms := 2 * len(op.tunableArms())
	if len(armNames) != wantArms {
		t.Fatalf("arms = %v, want %d (impls x {p-default, p2})", armNames, wantArms)
	}
	target := alt.String() + "@p2"
	found := false
	for _, a := range armNames {
		if a == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("arms %v missing %s", armNames, target)
	}

	// Script rewards: the alternate at 2 shards is 10x faster than the
	// incumbent; everything else is slow. The @p2 series is distinct from
	// the serving-parallelism series of the same impl.
	layer := rec.Layer(op.Node.Name)
	layerP2 := rec.Layer(op.Node.Name + "@p2")
	incK := stepKernelFor(graph.OpConv, incumbent)
	altK := stepKernelFor(graph.OpConv, alt)
	promoted := false
	for i := 0; i < 50 && !promoted; i++ {
		for j := 0; j < 20; j++ {
			layer.Record(incK, 1_000_000, 1)
			layer.Record(altK, 900_000, 1)
		}
		for j := 0; j < 5; j++ {
			layerP2.Record(altK, 100_000, 1)
		}
		promoted = pt.Poll() > 0
	}
	if !promoted {
		t.Fatal("tuner never promoted the 10x faster parallelism-qualified arm")
	}
	if cur := pt.State()[0].Current; cur != target {
		t.Fatalf("promoted arm = %s, want %s", cur, target)
	}

	// Routed execution (resharded to 2) must stay bit-identical to the
	// forced-alt plan.
	in := tensor.New(1, 1, 8, 8)
	tensor.FillGaussian(in, tensor.NewRNG(3), 1)
	want := forcedOutput(t, alt, in)
	got, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f32bytes(got.Data()), f32bytes(want.Data())) {
		t.Fatalf("routed @p2 output differs from forced %s output", alt)
	}

	// Write-back decomposes the arm: key parallelism is the arm's own.
	if err := pt.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 2}); !ok {
		t.Fatalf("winner not stored under its own parallelism: %v", store.Snapshot())
	}
	if _, ok := store.Get(autotune.Key{Shape: op.shapeKey, Impl: alt.String(), Par: 0}); ok {
		t.Fatal("parallelism-qualified winner leaked into the default-par key")
	}
}
