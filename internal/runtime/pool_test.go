package runtime

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// denseGraph builds conv→flatten→dense from a seed, so equal seeds produce
// identical weights (the backbone-sharing scenarios below rely on it).
func denseGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g := graph.New("in", 1, 1, 8, 8)
	spec := tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := tensor.NewRNG(seed)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.5)
	b := tensor.New(4)
	tensor.FillGaussian(b, r, 0.1)
	c := g.Conv(g.In, "c1", spec, w, b)
	f := g.Flatten(c, "flat")
	dw := tensor.New(5, 4*8*8)
	tensor.FillGaussian(dw, r, 0.3)
	d := g.Dense(f, "fc", dw, nil)
	g.SetOutput(d)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExecutorFreeListReusesAndBounds(t *testing.T) {
	p, err := Compile(convGraph(t, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.SetPoolCap(2)
	e1, e2, e3 := p.AcquireExecutor(), p.AcquireExecutor(), p.AcquireExecutor()
	p.ReleaseExecutor(e1)
	p.ReleaseExecutor(e2)
	p.ReleaseExecutor(e3) // beyond cap: discarded
	if got := p.PooledExecutors(); got != 2 {
		t.Fatalf("PooledExecutors = %d, want 2 (cap)", got)
	}
	// LIFO reuse: the most recently released executor comes back first.
	if got := p.AcquireExecutor(); got != e2 {
		t.Fatalf("expected warm executor e2 back, got %p", got)
	}
	if got := p.AcquireExecutor(); got != e1 {
		t.Fatalf("expected warm executor e1 back, got %p", got)
	}
}

func TestReleasePoolDiscardsWarmExecutorsAndBalancesResidency(t *testing.T) {
	rec := metrics.Enable()
	defer metrics.Disable()
	p, err := Compile(convGraph(t, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 1, 8, 8)
	e1, e2 := p.AcquireExecutor(), p.AcquireExecutor()
	if _, err := e1.Run(in); err != nil {
		t.Fatal(err)
	}
	p.ReleaseExecutor(e1)
	p.ReleaseExecutor(e2)
	if rec.Exec.ArenaBytesResident.Load() != 2*p.ArenaBytes {
		t.Fatalf("resident = %d, want %d", rec.Exec.ArenaBytesResident.Load(), 2*p.ArenaBytes)
	}
	if n := p.ReleasePool(); n != 2 {
		t.Fatalf("ReleasePool = %d, want 2", n)
	}
	if got := rec.Exec.ArenaBytesResident.Load(); got != 0 {
		t.Fatalf("resident after ReleasePool = %d, want 0", got)
	}
	if got := p.PooledExecutors(); got != 0 {
		t.Fatalf("PooledExecutors after ReleasePool = %d, want 0", got)
	}
	// In-flight executors returned after the release are discarded, and the
	// gauge still balances.
	e3 := p.AcquireExecutor()
	if rec.Exec.ArenaBytesResident.Load() != p.ArenaBytes {
		t.Fatalf("resident with one live executor = %d, want %d",
			rec.Exec.ArenaBytesResident.Load(), p.ArenaBytes)
	}
	p.ReleaseExecutor(e3)
	if got := p.PooledExecutors(); got != 0 {
		t.Fatalf("closed pool re-pooled an executor (%d)", got)
	}
	if got := rec.Exec.ArenaBytesResident.Load(); got != 0 {
		t.Fatalf("resident after late release = %d, want 0", got)
	}
	// The plan stays runnable after its pool is gone.
	if _, err := p.Run(in); err != nil {
		t.Fatal(err)
	}
}

func TestDictStoreSharingAcrossPlansIsBitIdentical(t *testing.T) {
	// Two models with an identical backbone: compiling through one shared
	// store must collapse the common programs to canonical pointers while
	// leaving outputs byte-identical to unshared compilation.
	store := ipe.NewDictStore()
	opts := Options{Force: ImplIPE}
	shared := opts
	shared.DictStore = store

	base, err := Compile(denseGraph(t, 11), opts)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Compile(denseGraph(t, 11), shared)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(denseGraph(t, 11), shared)
	if err != nil {
		t.Fatal(err)
	}

	st := store.Stats()
	if st.ProgramHits == 0 {
		t.Fatalf("identical models interned no duplicates: %+v", st)
	}
	prog1, prog2 := p1.IPEPrograms(), p2.IPEPrograms()
	if len(prog1) == 0 || len(prog1) != len(prog2) {
		t.Fatalf("program lists: %d vs %d", len(prog1), len(prog2))
	}
	for i := range prog1 {
		if prog1[i] != prog2[i] {
			t.Fatalf("program %d not shared across plans", i)
		}
	}

	r := tensor.NewRNG(99)
	in := tensor.New(1, 1, 8, 8)
	tensor.FillGaussian(in, r, 1)
	want, err := base.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []*Plan{p1, p2} {
		got, err := p.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Data()) != len(want.Data()) {
			t.Fatalf("shared-dict plan %d output length differs", i+1)
		}
		for j := range got.Data() {
			if math.Float32bits(got.Data()[j]) != math.Float32bits(want.Data()[j]) {
				t.Fatalf("shared-dict plan %d output differs from unshared plan at %d", i+1, j)
			}
		}
	}
}

func TestResidentBytesSharedBackboneReduction(t *testing.T) {
	// The acceptance scenario: two models sharing a backbone encoding must
	// report ≥20% fewer resident bytes under the shared store than two
	// unshared encodings.
	unshared := Options{Force: ImplIPE}
	u1, err := Compile(denseGraph(t, 21), unshared)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Compile(denseGraph(t, 21), unshared)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := u1.ResidentBytes(nil)
	o2, _ := u2.ResidentBytes(nil)
	unsharedTotal := o1 + o2

	store := ipe.NewDictStore()
	sharedOpts := unshared
	sharedOpts.DictStore = store
	s1, err := Compile(denseGraph(t, 21), sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(denseGraph(t, 21), sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[*ipe.Program]bool)
	own1, _ := s1.ResidentBytes(seen)
	own2, sh2 := s2.ResidentBytes(seen)
	sharedTotal := own1 + own2
	if sh2 == 0 {
		t.Fatal("second model reported no shared bytes")
	}
	if float64(sharedTotal) > 0.8*float64(unsharedTotal) {
		t.Fatalf("shared residency %d not ≥20%% below unshared %d", sharedTotal, unsharedTotal)
	}
}
