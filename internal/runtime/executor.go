package runtime

import (
	"fmt"
	goruntime "runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Executor is a reusable execution context for one Plan: it owns the
// activation arena laid out by the memory planner, one prebuilt tensor view
// per planned buffer, a flat node-ID-indexed slot table, and the intra-op
// parallelism context with its per-shard kernel scratch arenas. Every
// kernel writes directly into its planned arena slot (destination passing),
// so after the first warm-up run an Executor at parallelism 1 performs zero
// heap allocations per inference.
//
// An Executor is not safe for concurrent use; run one per goroutine
// (Plan.AcquireExecutor hands out pooled instances). The tensor returned by
// Run aliases the arena and is valid until the next Run on the same
// Executor.
type Executor struct {
	plan  *Plan
	arena []float32
	slots []*tensor.Tensor // node ID -> value (arena view, const, or input)
	steps []execStep
	par   *tensor.Par
	// rec is the metrics recorder resolved once at construction (nil when
	// metrics were disabled then). Per-step layer handles live on the
	// steps; rec gates the whole-run accounting.
	rec *metrics.Recorder
}

// execStep is one operator of the precompiled schedule: the compiled op,
// its prebuilt destination view into the arena, and the slot IDs of its
// inputs (resolved into ins each run — only the graph input changes between
// runs, but refreshing all of them is branch-free pointer writes).
type execStep struct {
	op     *CompiledOp
	node   *graph.Node
	insIDs []int
	ins    []*tensor.Tensor
	out    *tensor.Tensor
	// stats is the step's per-layer metrics series (nil when metrics were
	// disabled at executor construction); kernel is the dispatch tag
	// recorded with each timing sample. Executors of one plan share series
	// by layer name, so pooled executors aggregate into the same rows.
	stats  *metrics.LayerStats
	kernel metrics.Kernel
	// region is set for fused region steps (nil for singletons); the step
	// then runs the whole region through runRegion instead of runStep.
	region *regionExec
}

// regionExec is the precompiled execution state of one fused region step:
// the tile windows, their pool-side views, and the head kernel's operands.
type regionExec struct {
	rp      *RegionPlan
	windows []sched.Window      // per-image tile grid (empty unless tiled)
	pools   []tensor.PoolWindow // pool view of each window
	outC    int                 // conv output channels (tile plane count)
	maxPool bool
	// weight/bias back the dense windowed kernel (nil for IPE heads).
	weight, bias *tensor.Tensor
	stats        *metrics.RegionStats
}

// NewExecutor builds an execution context for the plan: it allocates the
// arena, materializes one tensor view per planned activation buffer, and
// precompiles the topological schedule into a flat step list so Run touches
// no maps and allocates nothing. It panics if the plan lacks an allocation
// for an operator (impossible for plans built by Compile).
func (p *Plan) NewExecutor() *Executor {
	return p.newExecutor(metrics.Get())
}

// newExecutor is NewExecutor against a caller-captured recorder, so a
// pool-miss build inside acquireExecutor stays on the request's recorder.
func (p *Plan) newExecutor(rec *metrics.Recorder) *Executor {
	e := &Executor{
		plan:  p,
		arena: make([]float32, p.ArenaBytes/4),
		par:   tensor.NewPar(parallel.Shared(), 0), // default GOMAXPROCS shards
		rec:   rec,
	}
	if e.rec != nil {
		e.rec.Exec.Builds.Add(1)
		e.rec.Exec.ArenaBytesResident.Add(p.ArenaBytes)
		e.rec.Exec.UpdateArenaPeak(p.ArenaBytes)
		for _, rp := range p.Regions {
			e.rec.Region(p.MetricsPrefix+rp.Name).SetModel(rp.Mode(),
				rp.RetainedBytes, rp.SpilledBytes, rp.FusedDRAMBytes, rp.UnfusedDRAMBytes)
		}
	}
	maxID := 0
	order := p.Graph.Topo()
	for _, n := range order {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	e.slots = make([]*tensor.Tensor, maxID+1)
	for _, n := range order {
		if n.Kind == graph.OpConst {
			e.slots[n.ID] = n.Value
		}
	}
	e.steps = make([]execStep, len(p.steps))
	for i, ps := range p.steps {
		var (
			op   *CompiledOp
			n    *graph.Node // dispatch node (region head for fused steps)
			outN *graph.Node // node whose buffer the step writes
			name string      // metrics series name
			re   *regionExec
		)
		if ps.region != nil {
			rp := ps.region
			op, n, outN, name = rp.headOp, rp.Head, rp.Tail, rp.Name
			re = newRegionExec(rp)
			if e.rec != nil {
				re.stats = e.rec.Region(p.MetricsPrefix + name)
			}
		} else {
			op, n, outN, name = ps.op, ps.op.Node, ps.op.Node, ps.op.Node.Name
		}
		al, ok := p.Alloc[outN.ID]
		if !ok {
			panic(fmt.Sprintf("runtime: no allocation for %s", outN))
		}
		out := tensor.From(e.arena[al.Offset/4:al.End()/4], outN.OutShape...)
		e.slots[outN.ID] = out
		st := execStep{
			op: op, node: n, out: out, region: re,
			insIDs: make([]int, len(n.Inputs)),
			ins:    make([]*tensor.Tensor, len(n.Inputs)),
		}
		if e.rec != nil {
			st.stats = e.rec.Layer(p.MetricsPrefix + name)
			st.kernel = stepKernel(op)
		}
		for j, in := range n.Inputs {
			st.insIDs[j] = in.ID
		}
		e.steps[i] = st
	}
	// Retained concats have an allocation (their inputs write through into
	// it) but no step of their own; materialize their views so consumers
	// can read the assembled slab.
	for _, n := range order {
		if e.slots[n.ID] != nil || n.Kind == graph.OpInput {
			continue
		}
		if al, ok := p.Alloc[n.ID]; ok {
			e.slots[n.ID] = tensor.From(e.arena[al.Offset/4:al.End()/4], n.OutShape...)
		}
	}
	return e
}

// newRegionExec precompiles one fused region's execution state. For tiled
// regions it materializes the per-image window grid once, with each
// window's pool-side view, so Run touches no planner code.
func newRegionExec(rp *RegionPlan) *regionExec {
	re := &regionExec{rp: rp}
	if !rp.Tiled {
		return re
	}
	re.windows = rp.Problem.Windows(rp.Tile)
	re.outC = rp.Head.Attrs.Conv.Normalize().OutC
	re.maxPool = rp.Pool.Kind == graph.OpMaxPool
	pa := rp.Pool.Attrs.Pool
	re.pools = make([]tensor.PoolWindow, len(re.windows))
	for i, w := range re.windows {
		re.pools[i] = tensor.PoolWindow{
			KH: pa.KH, KW: pa.KW,
			StrideH: pa.StrideH, StrideW: pa.StrideW,
			PadH: pa.PadH, PadW: pa.PadW,
			InH: rp.Tile.ConvOH, InW: rp.Tile.ConvOW,
			PY0: w.PY0, PY1: w.PY1, PX0: w.PX0, PX1: w.PX1,
			CY0: w.CY0, CX0: w.CX0,
			TH: w.CY1 - w.CY0, TW: w.CX1 - w.CX0,
		}
	}
	if rp.Impl == ImplDense {
		re.weight = rp.Head.Param("weight")
		re.bias = rp.Head.Param("bias")
	}
	return re
}

// stepKernel maps a compiled operator to the kernel-family tag its
// dispatch in runStep will execute (the per-layer "kernel chosen" column).
func stepKernel(op *CompiledOp) metrics.Kernel {
	return stepKernelFor(op.Node.Kind, op.Impl)
}

// stepKernelFor is stepKernel for an explicit (kind, impl) pair — the online
// tuner uses it to tag explored executions with the kernel they actually ran,
// so per-impl latency series stay separable.
func stepKernelFor(kind graph.OpKind, impl Impl) metrics.Kernel {
	switch kind {
	case graph.OpConv:
		switch impl {
		case ImplDense:
			return metrics.KernelDirect
		case ImplWinograd:
			return metrics.KernelWinograd
		case ImplCSR:
			return metrics.KernelCSR
		case ImplFactorized:
			return metrics.KernelFactorized
		case ImplIPE:
			// Plans lower every program at compile time, so the serving
			// path always runs the compiled form.
			return metrics.KernelIPECompiled
		}
	case graph.OpDense:
		switch impl {
		case ImplDense:
			return metrics.KernelGEMM
		case ImplCSR:
			return metrics.KernelCSR
		case ImplFactorized:
			return metrics.KernelFactorized
		case ImplIPE:
			return metrics.KernelIPECompiled
		}
	default:
		return metrics.KernelGeneric
	}
	return metrics.KernelUnknown
}

// Plan returns the plan this executor runs.
func (e *Executor) Plan() *Plan { return e.plan }

// SetParallelism sets the number of intra-op shards the heavy kernels
// (conv, GEMM, IPE matrix execution) split their output across, drawing
// helpers from the process-wide bounded pool (so concurrent executors
// compose without oversubscription). n <= 0 means GOMAXPROCS (the default);
// 1 reproduces fully serial execution with its zero-allocation guarantee.
// Any setting yields bit-identical outputs: shards cover disjoint output
// regions and per-output accumulation order is unchanged.
func (e *Executor) SetParallelism(n int) { e.par.SetShards(n) }

// Parallelism returns the executor's intra-op shard count.
func (e *Executor) Parallelism() int { return e.par.Shards() }

// Run executes the plan on the CPU, writing every activation directly into
// its planned arena slot. The chosen implementation computes each
// conv/dense operator, so the numerical output reflects the selected
// (possibly quantized) kernels. The returned tensor aliases the executor's
// arena: it is overwritten by the next Run, so callers that keep it must
// Clone it (Plan.Run does).
func (e *Executor) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	g := e.plan.Graph
	if !input.Shape().Equal(g.In.OutShape) {
		return nil, fmt.Errorf("runtime: input shape %v != declared %v", input.Shape(), g.In.OutShape)
	}
	var runStart time.Time
	if e.rec != nil {
		runStart = time.Now()
	}
	batch := input.Dim(0)
	e.slots[g.In.ID] = input
	// Resolve the online tuner once per run (one atomic load): pooled
	// executors built before StartTuner still route through it, and a Run
	// in flight keeps a consistent view while tuning stops or starts.
	lt := e.plan.live.Load()
	for i := range e.steps {
		st := &e.steps[i]
		for j, id := range st.insIDs {
			st.ins[j] = e.slots[id]
		}
		impl, kernel, stats := st.op.Impl, st.kernel, st.stats
		armPar := 0
		if lt != nil && lt.perStep[i] != nil {
			arm := lt.arms[i][lt.perStep[i].Choose()]
			impl, armPar = arm.impl, arm.par
			if stats != nil {
				kernel = stepKernelFor(st.node.Kind, impl)
				if armPar > 0 && e.rec != nil {
					// Parallelism-qualified arms record into their own
					// series ("layer@pN") so the bandit can separate
					// same-impl latencies across shard counts.
					stats = e.rec.Layer(arm.series)
				}
			}
		}
		prevPar := 0
		if armPar > 0 {
			prevPar = e.par.Shards()
			e.par.SetShards(armPar)
		}
		e.par.Reset()
		var err error
		if stats != nil {
			t0 := time.Now()
			err = e.dispatchStep(st, impl)
			stats.Record(kernel, time.Since(t0).Nanoseconds(), batch)
		} else {
			err = e.dispatchStep(st, impl)
		}
		if prevPar > 0 {
			e.par.SetShards(prevPar)
		}
		if err != nil {
			e.dropInputRefs()
			if e.rec != nil {
				e.rec.Exec.Runs.Add(1)
				e.rec.Exec.RunErrors.Add(1)
			}
			return nil, fmt.Errorf("runtime: executing %s: %w", st.node, err)
		}
	}
	e.dropInputRefs()
	if e.rec != nil {
		e.rec.Exec.Runs.Add(1)
		e.rec.Exec.RunNs.Observe(time.Since(runStart).Nanoseconds())
		e.rec.Exec.UpdateScratchHighWater(e.par.HighWater())
	}
	return e.slots[g.Out.ID], nil
}

// dropInputRefs clears the input slot and every resolved step input so a
// released executor never pins the caller's input tensor in the pool (both
// the slot table and the per-step ins caches hold it after a run).
func (e *Executor) dropInputRefs() {
	e.slots[e.plan.Graph.In.ID] = nil
	for i := range e.steps {
		ins := e.steps[i].ins
		for j := range ins {
			ins[j] = nil
		}
	}
}

// dispatchStep routes a step to the fused-region runner or the singleton
// operator path. impl is the implementation to execute — st.op.Impl unless
// the online tuner routed this execution to an alternate arm (fused region
// steps are never tuned, so regions always run their planned impl).
func (e *Executor) dispatchStep(st *execStep, impl Impl) error {
	if st.region != nil {
		return e.runRegion(st)
	}
	return e.runStep(st, impl)
}

// runRegion executes one fused region step. Elementwise regions run the
// head kernel straight into the tail's buffer and rectify in place. Tiled
// regions stream SRAM-sized conv tiles through scratch into the pool: when
// there are at least as many tiles as shards the tiles themselves are the
// parallel units (serial kernels, per-shard scratch); otherwise the tiles
// run in order with the kernels sharded internally. Both schedules produce
// bit-identical outputs — every tile element equals the corresponding
// whole-layer element, and each pool output is written exactly once.
func (e *Executor) runRegion(st *execStep) error {
	re := st.region
	if !re.rp.Tiled {
		if err := e.runStep(st, st.op.Impl); err != nil {
			return err
		}
		if re.rp.ExtraReLU {
			tensor.ReLUInto(st.out, st.out)
		}
		if re.stats != nil {
			re.stats.Runs.Add(1)
		}
		return nil
	}
	in, dst := st.ins[0], st.out
	batch := in.Dim(0)
	nw := len(re.windows)
	units := batch * nw
	if e.par.Parallel() && e.par.Shards() > 1 && units >= e.par.Shards() {
		e.par.For(units, func(shard, lo, hi int) {
			s := e.par.Scratch(shard)
			for u := lo; u < hi; u++ {
				e.execTile(re, in, dst, u/nw, u%nw, s, nil)
			}
		})
	} else {
		s0 := e.par.Scratch(0)
		for b := 0; b < batch; b++ {
			for wi := 0; wi < nw; wi++ {
				e.execTile(re, in, dst, b, wi, s0, e.par)
			}
		}
	}
	if re.stats != nil {
		re.stats.Runs.Add(1)
		re.stats.Tiles.Add(int64(units))
	}
	return nil
}

// execTile computes one conv-output tile of one batch element into scratch,
// rectifies it if the region fused a ReLU, and reduces it through the pool
// window into the region's output buffer. With par non-nil the conv kernel
// shards internally (tile-serial mode); otherwise it runs serial on s
// (tile-parallel mode).
func (e *Executor) execTile(re *regionExec, in, dst *tensor.Tensor, b, wi int, s *tensor.Scratch, par *tensor.Par) {
	rp := re.rp
	w := re.windows[wi]
	mark := s.Mark()
	tile := s.Take(rp.Tile.TileFloats)
	if tn := re.outC * w.ConvPixels(); tn > 0 {
		if rp.Impl == ImplIPE {
			if par != nil {
				rp.headOp.ipeConv.ForwardWindowIntoPar(tile, in, b, w.CY0, w.CY1, w.CX0, w.CX1, par)
			} else {
				rp.headOp.ipeConv.ForwardWindowInto(tile, in, b, w.CY0, w.CY1, w.CX0, w.CX1, s)
			}
		} else {
			if par != nil {
				tensor.Conv2DWindowIntoPar(tile, in, re.weight, re.bias, rp.Head.Attrs.Conv, b, w.CY0, w.CY1, w.CX0, w.CX1, par)
			} else {
				tensor.Conv2DWindowInto(tile, in, re.weight, re.bias, rp.Head.Attrs.Conv, b, w.CY0, w.CY1, w.CX0, w.CX1)
			}
		}
		if rp.ApplyReLU {
			tensor.ReLUSlice(tile[:tn])
		}
	}
	if re.maxPool {
		tensor.MaxPool2DWindowFromTile(dst, tile, b, re.pools[wi])
	} else {
		tensor.AvgPool2DWindowFromTile(dst, tile, b, re.pools[wi])
	}
	s.Release(mark)
}

// runStep dispatches one operator to its selected destination-passing
// kernel. Conv/dense implementations apply their fused ReLU after the
// kernel; the generic graph path handles it inside EvalNodeInto.
func (e *Executor) runStep(st *execStep, impl Impl) error {
	n, op, dst := st.node, st.op, st.out
	switch {
	case n.Kind == graph.OpConv && impl == ImplCSR:
		op.csrConv.ForwardIntoPar(dst, st.ins[0], e.par)
	case n.Kind == graph.OpConv && impl == ImplFactorized:
		op.factConv.ForwardIntoPar(dst, st.ins[0], e.par)
	case n.Kind == graph.OpConv && impl == ImplIPE:
		op.ipeConv.ForwardIntoPar(dst, st.ins[0], e.par)
	case n.Kind == graph.OpConv && impl == ImplWinograd:
		op.winConv.ForwardIntoPar(dst, st.ins[0], e.par)
	case n.Kind == graph.OpDense && impl == ImplCSR:
		denseCSRInto(dst, st.ins[0], op.csrDense, op.denseBias)
	case n.Kind == graph.OpDense && impl == ImplFactorized:
		denseFactorizedInto(dst, st.ins[0], op.factDense, op.denseBias)
	case n.Kind == graph.OpDense && impl == ImplIPE:
		op.ipeDense.ForwardInto(dst, st.ins[0], e.par.Scratch(0))
	case n.Kind == graph.OpDense && impl == ImplDense:
		// Packed register-microkernel GEMM; bit-identical to DenseIntoPar
		// (same per-element products in the same ascending-k order), so
		// switching the serving path is numerically invisible.
		tensor.DenseGemmIntoPar(dst, st.ins[0], op.denseWeight, op.denseBias, e.par)
	default:
		// EvalNodeIntoPar already applies FusedReLU.
		return graph.EvalNodeIntoPar(dst, n, st.ins, e.par)
	}
	if n.Attrs.FusedReLU {
		tensor.ReLUInto(dst, dst)
	}
	return nil
}

// denseCSRInto computes the CSR dense layer row by row into dst. The
// matvec is dispatched on the concrete type (no method values) to keep the
// steady state allocation-free.
func denseCSRInto(dst, in *tensor.Tensor, c *baseline.CSR, bias *tensor.Tensor) {
	metrics.Count(metrics.KernelCSR)
	n, k := in.Dim(0), in.Dim(1)
	od := dst.Data()
	for b := 0; b < n; b++ {
		c.MatVec(in.Data()[b*k:(b+1)*k], od[b*c.M:(b+1)*c.M])
	}
	addBiasRows(od, bias, n, c.M)
}

// denseFactorizedInto computes the value-factorized dense layer row by row
// into dst.
func denseFactorizedInto(dst, in *tensor.Tensor, f *baseline.Factorized, bias *tensor.Tensor) {
	metrics.Count(metrics.KernelFactorized)
	n, k := in.Dim(0), in.Dim(1)
	od := dst.Data()
	for b := 0; b < n; b++ {
		f.MatVec(in.Data()[b*k:(b+1)*k], od[b*f.M:(b+1)*f.M])
	}
	addBiasRows(od, bias, n, f.M)
}

func addBiasRows(od []float32, bias *tensor.Tensor, n, m int) {
	if bias == nil {
		return
	}
	bd := bias.Data()
	for b := 0; b < n; b++ {
		for i := 0; i < m; i++ {
			od[b*m+i] += bd[i]
		}
	}
}

// AcquireExecutor checks an Executor out of the plan's pool, building a new
// one if the pool is empty. Return it with ReleaseExecutor when done. This
// is the serving-path API: compile once, pool executors, run many.
func (p *Plan) AcquireExecutor() *Executor {
	return p.acquireExecutor(metrics.Get())
}

// acquireExecutor is AcquireExecutor against a caller-captured recorder, so
// paths that check out and return an executor within one request (RunBatch,
// the serve batcher) keep both sides of the accounting on the same recorder
// even if the process-wide recorder is swapped mid-request.
func (p *Plan) acquireExecutor(rec *metrics.Recorder) *Executor {
	if rec != nil {
		rec.Exec.Acquires.Add(1)
	}
	p.poolMu.Lock()
	if n := len(p.poolFree); n > 0 {
		e := p.poolFree[n-1]
		p.poolFree[n-1] = nil
		p.poolFree = p.poolFree[:n-1]
		p.poolMu.Unlock()
		if rec != nil {
			rec.Exec.PoolReuses.Add(1)
		}
		return e
	}
	p.poolMu.Unlock()
	return p.newExecutor(rec)
}

// ReleaseExecutor returns an Executor to the plan's pool for reuse,
// restoring the default parallelism so the next acquirer starts from a
// known setting. The caller must not use the executor (or tensors returned
// by its Run) after release. Executors beyond the pool's capacity — or
// returned after ReleasePool — are discarded and their arena bytes
// subtracted from the resident gauge.
func (p *Plan) ReleaseExecutor(e *Executor) {
	p.releaseExecutor(e, metrics.Get())
}

// releaseExecutor is ReleaseExecutor against a caller-captured recorder
// (see acquireExecutor).
func (p *Plan) releaseExecutor(e *Executor, rec *metrics.Recorder) {
	if e == nil || e.plan != p {
		return
	}
	if rec != nil {
		rec.Exec.Releases.Add(1)
	}
	e.SetParallelism(0)
	p.poolMu.Lock()
	if !p.poolClosed && len(p.poolFree) < p.poolCapLocked() {
		p.poolFree = append(p.poolFree, e)
		p.poolMu.Unlock()
		return
	}
	p.poolMu.Unlock()
	e.discard()
}

// poolCapLocked returns the effective pool capacity; callers hold poolMu.
func (p *Plan) poolCapLocked() int {
	if p.poolCap > 0 {
		return p.poolCap
	}
	return 2 * goruntime.GOMAXPROCS(0)
}

// SetPoolCap bounds the number of warm executors the plan keeps between
// runs (0 restores the default, 2×GOMAXPROCS). The registry sizes pools by
// observed per-model traffic through this. Lowering the cap takes effect as
// executors are released; it does not discard already-pooled ones.
func (p *Plan) SetPoolCap(n int) {
	p.poolMu.Lock()
	if n < 0 {
		n = 0
	}
	p.poolCap = n
	p.poolMu.Unlock()
}

// PooledExecutors returns the number of warm executors currently parked in
// the plan's free-list.
func (p *Plan) PooledExecutors() int {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	return len(p.poolFree)
}

// ReleasePool discards every pooled executor and closes the pool: executors
// still in flight are discarded as they are returned instead of re-pooled,
// so once the last request drains, none of the plan's warm arenas remain
// resident. This is the hot-swap teardown path — the registry calls it
// after the old version's batcher has drained. Returns the number of
// executors discarded now. The plan itself stays runnable (AcquireExecutor
// builds fresh executors), just no longer pooling.
func (p *Plan) ReleasePool() int {
	p.poolMu.Lock()
	dead := p.poolFree
	p.poolFree = nil
	p.poolClosed = true
	p.poolMu.Unlock()
	for _, e := range dead {
		e.discard()
	}
	return len(dead)
}

// discard retires an executor for good, subtracting its arena from the
// resident gauge on the recorder that counted it at construction.
func (e *Executor) discard() {
	if e.rec != nil {
		e.rec.Exec.ArenaBytesResident.Add(-e.plan.ArenaBytes)
	}
}
