package runtime

import (
	"fmt"
	"time"

	"repro/internal/autotune"
	"repro/internal/metrics"
)

// This file connects a compiled Plan to the online bandit in
// internal/autotune, closing the tuning loop end to end:
//
//   compile ── seeds op.Impl from the persistent store (seedFromStore)
//   serve   ── StartTuner routes a bounded exploration fraction of real
//              executions through alternate implementations and promotes
//              sustained winners from live metrics latency series
//   stop    ── promoted winners are written back to the store and saved,
//              so the next compile (this process or a restarted one)
//              plans the measured winner on its first request
//
// Routing is lock-free on the serving path: Plan.live is an atomic pointer
// resolved once per Executor.Run, and each tuned step costs one atomic
// counter increment (LayerTuner.Choose). Only implementations that were
// built as candidates — and proven bit-compatible by the conformance
// harness — are ever explored.

// TunerConfig configures Plan.StartTuner.
type TunerConfig struct {
	// Policy is the bandit policy (zero value = autotune.DefaultPolicy).
	Policy autotune.Policy
	// Interval is the polling period for the background goroutine. Zero
	// disables background polling; the caller then drives PlanTuner.Poll
	// itself (tests do this for determinism).
	Interval time.Duration
	// Store receives promoted winners on Stop (and is typically also the
	// store the plan was compiled with, so seeding and write-back share
	// state). Nil with a StorePath set means a fresh store is created.
	Store *autotune.Store
	// StorePath, when non-empty, is where Stop persists the store
	// (atomic rename, merging with concurrent writers).
	StorePath string
	// Par is the parallelism component of write-back keys; it should match
	// the Options.TunePar the plan compiles with (0 = default serving
	// configuration).
	Par int
	// ParArms lists additional intra-op parallelism levels the bandit
	// explores: every implementation arm is crossed with every listed level
	// (arm "impl@pN"), alongside the plain arms at the serving parallelism.
	// Explored executions temporarily reshards the executor and record into
	// a distinct "layer@pN" metrics series so per-arm latency stays
	// separable; promoted parallelism-qualified winners keep routing at
	// their parallelism and are written back under it. Empty means impls
	// only (the previous behavior).
	ParArms []int
}

// tunedArm is one routable bandit arm: an implementation plus an optional
// parallelism override (0 = the executor's serving parallelism), with the
// metrics series its executions are recorded under precomputed.
type tunedArm struct {
	impl   Impl
	par    int
	series string
}

// liveTuner is the routing state installed on Plan.live while tuning is
// active. perStep/arms are indexed by plan step: nil entries are untuned
// steps (fused regions, generic ops, single-candidate operators).
type liveTuner struct {
	tuner   *autotune.Bandit
	perStep []*autotune.LayerTuner
	arms    [][]tunedArm
}

// metricsArmReader adapts the metrics recorder's per-kernel layer series to
// the bandit's ArmReader. It re-resolves the process recorder on every
// Sample, so metrics Enable/Disable swaps mid-tuning degrade to "no new
// samples this poll" (the bandit's delta logic tolerates series resets)
// instead of pinning a dead recorder.
type metricsArmReader struct {
	// series maps "layer|arm" to the metrics series and kernel tag that
	// arm's executions are recorded under. Parallelism-qualified arms get
	// their own "layer@pN" series so same-impl arms at different shard
	// counts never pool their latencies.
	series map[string]armSeries
}

// armSeries locates one arm's latency series in the metrics recorder.
type armSeries struct {
	layer  string
	kernel metrics.Kernel
}

func (r *metricsArmReader) Sample(layer, arm string) autotune.ArmSample {
	rec := metrics.Get()
	if rec == nil {
		return autotune.ArmSample{}
	}
	s, ok := r.series[layer+"|"+arm]
	if !ok {
		return autotune.ArmSample{}
	}
	count, sum := rec.Layer(s.layer).KernelSample(s.kernel)
	return autotune.ArmSample{Count: count, SumNs: sum}
}

// PlanTuner is a running online-tuning session on one plan. Stop it before
// discarding the plan; after Stop the plan keeps serving the promoted
// configuration (routing frozen, exploration off).
type PlanTuner struct {
	plan  *Plan
	cfg   TunerConfig
	tuner *autotune.Bandit
	stop  chan struct{}
	done  chan struct{}
}

// StartTuner begins online autotuning on the plan: every tunable operator
// (conv/dense with at least two built candidates) becomes a bandit layer
// whose incumbent is the planned implementation. Returns an error if the
// plan was compiled with a forced implementation (there is nothing to
// tune — and a forced plan promises its forced kernels) or if a tuning
// session is already active on this plan.
func (p *Plan) StartTuner(cfg TunerConfig) (*PlanTuner, error) {
	if p.Opts.Force != ImplAuto {
		return nil, fmt.Errorf("runtime: cannot tune a plan forced to %s", p.Opts.Force)
	}
	if p.live.Load() != nil {
		return nil, fmt.Errorf("runtime: plan already has an active tuner")
	}
	if cfg.Store == nil {
		cfg.Store = autotune.NewStore()
	}

	reader := &metricsArmReader{series: make(map[string]armSeries)}
	var (
		decls   []autotune.TunedLayer
		stepIdx []int // plan step index of each declared layer
		armSets [][]tunedArm
	)
	for i, ps := range p.steps {
		if ps.op == nil || ps.region != nil {
			continue
		}
		impls := ps.op.tunableArms()
		if len(impls) < 2 || ps.op.shapeKey == "" {
			continue
		}
		name := p.MetricsPrefix + ps.op.Node.Name
		var (
			names   []string
			arms    []tunedArm
			initial = -1
		)
		for _, im := range impls {
			kernel := stepKernelFor(ps.op.Node.Kind, im)
			if im == ps.op.Impl {
				initial = len(arms)
			}
			names = append(names, autotune.ArmName(im.String(), 0))
			arms = append(arms, tunedArm{impl: im, series: name})
			reader.series[name+"|"+names[len(names)-1]] = armSeries{layer: name, kernel: kernel}
			for _, pa := range cfg.ParArms {
				if pa <= 0 {
					continue
				}
				an := autotune.ArmName(im.String(), pa)
				series := fmt.Sprintf("%s@p%d", name, pa)
				names = append(names, an)
				arms = append(arms, tunedArm{impl: im, par: pa, series: series})
				reader.series[name+"|"+an] = armSeries{layer: series, kernel: kernel}
			}
		}
		if initial < 0 {
			continue // planned impl not among the candidates (cannot happen for Compile-built plans)
		}
		decls = append(decls, autotune.TunedLayer{
			Name: name, Shape: ps.op.shapeKey, Arms: names, Initial: initial,
		})
		stepIdx = append(stepIdx, i)
		armSets = append(armSets, arms)
	}

	tuner, err := autotune.NewBandit(cfg.Policy, reader, decls)
	if err != nil {
		return nil, err
	}
	lt := &liveTuner{
		tuner:   tuner,
		perStep: make([]*autotune.LayerTuner, len(p.steps)),
		arms:    make([][]tunedArm, len(p.steps)),
	}
	// NewBandit keeps >=2-arm layers in declaration order, and every decl
	// has >=2 arms, so tuner.Layers() aligns 1:1 with decls.
	for j, l := range tuner.Layers() {
		lt.perStep[stepIdx[j]] = l
		lt.arms[stepIdx[j]] = armSets[j]
	}
	p.live.Store(lt)

	pt := &PlanTuner{plan: p, cfg: cfg, tuner: tuner}
	pt.publish()
	if cfg.Interval > 0 {
		pt.stop = make(chan struct{})
		pt.done = make(chan struct{})
		go pt.loop()
	}
	return pt, nil
}

// loop is the background polling goroutine.
func (pt *PlanTuner) loop() {
	defer close(pt.done)
	tick := time.NewTicker(pt.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			pt.Poll()
		case <-pt.stop:
			return
		}
	}
}

// Poll runs one bandit poll over every tuned layer — reading the latest
// per-implementation latency series and applying the promotion rule — and
// publishes the session's state to the metrics recorder. It returns the
// number of layers that promoted a new serving implementation. Tests and
// callers with Interval == 0 drive this directly.
func (pt *PlanTuner) Poll() int {
	promoted := pt.tuner.Poll()
	pt.publish()
	return promoted
}

// publish pushes per-layer tuning gauges into the metrics recorder so
// inspire-stats can show what the tuner is doing.
func (pt *PlanTuner) publish() {
	rec := metrics.Get()
	if rec == nil {
		return
	}
	for _, l := range pt.tuner.Layers() {
		c, e, p := l.Counts()
		rec.Autotune(l.Name()).Publish(l.CurrentArm(), c, e, p)
	}
}

// State snapshots every tuned layer's bandit.
func (pt *PlanTuner) State() []autotune.LayerTunerState { return pt.tuner.State() }

// Stop ends the tuning session: it halts background polling, freezes
// routing at the promoted configuration (in-flight and future runs serve
// the winners; exploration stops), writes the winners into the configured
// store, and — when StorePath is set — persists the store to disk. The
// returned error is the save error, if any; winners are in cfg.Store
// regardless.
func (pt *PlanTuner) Stop() error {
	if pt.stop != nil {
		close(pt.stop)
		<-pt.done
		pt.stop = nil
	}
	pt.tuner.Freeze()
	pt.tuner.WinnersTo(pt.cfg.Store, pt.cfg.Par, time.Now().UnixNano())
	pt.publish()
	if pt.cfg.StorePath == "" {
		return nil
	}
	return pt.cfg.Store.Save(pt.cfg.StorePath)
}
