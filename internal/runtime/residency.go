package runtime

import (
	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/ipe"
)

// ResidentBytes estimates the heap bytes this plan's encoded weights keep
// resident, split into bytes attributable to the plan (owned) and bytes
// aliased to IPE programs some other plan already accounted for (shared).
// seen carries the canonical-program set across calls: pass one map over
// every live plan to get dedup-aware totals (a program interned by the
// shared dictionary store is counted as owned by the first plan that
// reports it and as shared by the rest). A nil seen counts the plan alone,
// deduplicating only within it. Activation arenas are accounted separately
// (metrics.ExecStats.ArenaBytesResident tracks live executors).
func (p *Plan) ResidentBytes(seen map[*ipe.Program]bool) (owned, shared int64) {
	if seen == nil {
		seen = make(map[*ipe.Program]bool)
	}
	addProg := func(prog *ipe.Program) {
		if prog == nil {
			return
		}
		if seen[prog] {
			shared += prog.MemoryBytes()
			return
		}
		seen[prog] = true
		owned += prog.MemoryBytes()
	}
	tensorBytes := func(ts ...interface{ NumElements() int }) {
		for _, t := range ts {
			if t != nil {
				owned += int64(t.NumElements()) * 4
			}
		}
	}
	csrBytes := func(c *baseline.CSR) {
		if c != nil {
			owned += int64(len(c.RowPtr))*4 + int64(len(c.Col))*4 + int64(len(c.Val))*4
		}
	}
	factBytes := func(f *baseline.Factorized) {
		if f != nil {
			for _, row := range f.Rows {
				owned += 24
				for _, t := range row.Terms {
					owned += 32 + int64(len(t.Idx))*4
				}
			}
		}
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.ipeConv != nil {
			for _, prog := range op.ipeConv.Programs {
				addProg(prog)
			}
			if op.ipeConv.Bias != nil {
				owned += int64(op.ipeConv.Bias.NumElements()) * 4
			}
		}
		if op.ipeDense != nil {
			addProg(op.ipeDense.Program)
			if op.ipeDense.Bias != nil {
				owned += int64(op.ipeDense.Bias.NumElements()) * 4
			}
		}
		if op.csrConv != nil {
			for _, m := range op.csrConv.Mats {
				csrBytes(m)
			}
		}
		csrBytes(op.csrDense)
		if op.factConv != nil {
			for _, m := range op.factConv.Mats {
				factBytes(m)
			}
		}
		factBytes(op.factDense)
		if op.winConv != nil {
			for _, oc := range op.winConv.U {
				owned += int64(len(oc)) * 16 * 4
			}
		}
		if op.denseWeight != nil {
			tensorBytes(op.denseWeight)
		}
		if op.denseBias != nil {
			tensorBytes(op.denseBias)
		}
		if op.Node.Kind == graph.OpConv {
			// Conv float weights are graph params, retained for the dense
			// candidate whenever one was built.
			if _, ok := op.Candidates[ImplDense]; ok {
				if w := op.Node.Param("weight"); w != nil {
					owned += int64(w.NumElements()) * 4
				}
			}
		}
	}
	return owned, shared
}

// IPEPrograms returns every IPE program the plan references, in operator
// order (conv groups before dense). Programs interned by a shared
// dictionary store appear as their canonical pointers, so callers can
// detect cross-plan sharing by identity.
func (p *Plan) IPEPrograms() []*ipe.Program {
	var progs []*ipe.Program
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.ipeConv != nil {
			progs = append(progs, op.ipeConv.Programs...)
		}
		if op.ipeDense != nil {
			progs = append(progs, op.ipeDense.Program)
		}
	}
	return progs
}
