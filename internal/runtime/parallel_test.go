package runtime

import (
	"fmt"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// TestExecutorParallelBitIdentical pins the central sharding contract at the
// executor level: any parallelism setting must reproduce the serial
// (reference) output bit for bit, for every forced implementation.
func TestExecutorParallelBitIdentical(t *testing.T) {
	for _, force := range []Impl{ImplAuto, ImplDense, ImplCSR, ImplFactorized, ImplIPE, ImplWinograd} {
		t.Run(force.String(), func(t *testing.T) {
			g := nn.LeNet5(2, 33)
			p, err := Compile(g, Options{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			in := gaussianInput(g.In.OutShape, 34)
			want := referenceRun(t, p, in)
			for _, shards := range []int{2, 4, 7} {
				e := p.NewExecutor()
				e.SetParallelism(shards)
				if got := e.Parallelism(); got != shards {
					t.Fatalf("Parallelism() = %d after SetParallelism(%d)", got, shards)
				}
				got, err := e.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Data() {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("shards=%d: output[%d] = %v != serial %v (bit-exact required)",
							shards, i, got.Data()[i], want.Data()[i])
					}
				}
			}
		})
	}
}

// TestExecutorParallelBitIdenticalResNet18 checks the acceptance criterion on
// the residual graph under auto selection with sharding on.
func TestExecutorParallelBitIdenticalResNet18(t *testing.T) {
	if testing.Short() {
		t.Skip("resnet compile is slow")
	}
	g := nn.ResNet18(1, 32, 10, 35)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := gaussianInput(g.In.OutShape, 36)
	want := referenceRun(t, p, in)
	e := p.NewExecutor()
	e.SetParallelism(4)
	got, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("output[%d] = %v != serial %v (bit-exact required)",
				i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestExecutorDropsInputRefs pins the pooled-executor retention fix: after a
// run, neither the slot table nor the per-step input caches may keep the
// caller's input (or any arena alias) alive, so a pooled executor never pins
// request tensors between inferences.
func TestExecutorDropsInputRefs(t *testing.T) {
	g := nn.LeNet5(1, 37)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExecutor()
	in := gaussianInput(g.In.OutShape, 38)
	if _, err := e.Run(in); err != nil {
		t.Fatal(err)
	}
	if e.slots[p.Graph.In.ID] != nil {
		t.Fatal("input slot still references the caller's tensor after Run")
	}
	for i := range e.steps {
		for j, v := range e.steps[i].ins {
			if v != nil {
				t.Fatalf("step %d input %d retained after Run", i, j)
			}
		}
	}
	// The released executor must also come back clean through the pool.
	p.ReleaseExecutor(e)
	e2 := p.AcquireExecutor()
	defer p.ReleaseExecutor(e2)
	if e2 == e && e2.slots[p.Graph.In.ID] != nil {
		t.Fatal("pooled executor retained the previous request's input")
	}
}

// TestRunBatchRejectsBadInputs covers the RunBatch validation fixes: a
// zero-value tensor (rank 0) and a rank mismatch used to panic via Dim(0)
// or divide by zero; a same-element-count input with transposed non-batch
// dims used to be accepted silently.
func TestRunBatchRejectsBadInputs(t *testing.T) {
	g := nn.LeNet5(2, 41)
	p, err := Compile(g, Options{Force: ImplDense})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunBatch(&tensor.Tensor{}, 2); err == nil {
		t.Fatal("zero-value tensor must be rejected, not panic")
	}
	if _, err := p.RunBatch(tensor.New(2, 28, 28), 2); err == nil {
		t.Fatal("rank mismatch must be rejected")
	}
	// Same element count as [2 1 28 28] but wrong layout.
	if _, err := p.RunBatch(tensor.New(2, 28, 1, 28), 2); err == nil {
		t.Fatal("non-batch dim mismatch must be rejected even with matching element count")
	}
	if _, err := p.RunBatch(tensor.New(3, 1, 28, 28), 2); err == nil {
		t.Fatal("non-multiple batch must still be rejected")
	}
}

// TestCompileDefaultSchemePerChannel pins the documented default: an unset
// Options.Scheme compiles per-channel, matching the doc comment (the zero
// value used to silently mean per-tensor).
func TestCompileDefaultSchemePerChannel(t *testing.T) {
	if o := (Options{}).withDefaults(); o.Scheme != quant.PerChannel {
		t.Fatalf("default Scheme = %v, want PerChannel", o.Scheme)
	}
	g := nn.LeNet5(1, 43)
	p, err := Compile(g, Options{Force: ImplIPE})
	if err != nil {
		t.Fatal(err)
	}
	if p.Opts.Scheme != quant.PerChannel {
		t.Fatalf("compiled plan Scheme = %v, want PerChannel", p.Opts.Scheme)
	}
}

// TestRunBatchWorkersBitIdentical exercises both parallelism levels at once
// (chunk workers each sharding intra-op over the shared pool) and requires
// the result to match the single-worker run bit for bit. Run under -race
// this doubles as the serving-path race exerciser.
func TestRunBatchWorkersBitIdentical(t *testing.T) {
	g := nn.LeNet5(2, 47)
	p, err := Compile(g, Options{Force: ImplIPE, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	big := tensor.New(12, 1, 28, 28)
	tensor.FillGaussian(big, tensor.NewRNG(48), 1)
	want, err := p.RunBatch(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 6} {
		got, err := p.RunBatch(big, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("workers=%d: output[%d] = %v != single-worker %v",
					workers, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestConcurrentExecutorsShareThePool runs several executors at high
// parallelism simultaneously; the bounded shared pool must keep them
// deadlock-free and bit-identical. This is the intra-op race exerciser for
// `go test -race`.
func TestConcurrentExecutorsShareThePool(t *testing.T) {
	g := nn.LeNet5(1, 49)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := gaussianInput(g.In.OutShape, 50)
	want := referenceRun(t, p, in)
	const goroutines = 6
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		go func() {
			e := p.AcquireExecutor()
			defer p.ReleaseExecutor(e)
			e.SetParallelism(8)
			for r := 0; r < 3; r++ {
				got, err := e.Run(in)
				if err != nil {
					errc <- err
					return
				}
				for i := range want.Data() {
					if got.Data()[i] != want.Data()[i] {
						errc <- fmt.Errorf("concurrent executor diverged from the serial reference at index %d", i)
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < goroutines; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
