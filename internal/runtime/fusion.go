package runtime

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/sched"
)

// This file is the graph-level scheduler behind Options.Fuse: it decides
// how each fusible region executes (tiled against SRAM, elementwise
// write-through, or spilled back to per-operator steps), which concat
// inputs retain their output in the concat's buffer, and lays the arena
// out over the resulting step schedule instead of per-node whole tensors.
// The unfused planner in planner.go is untouched; both produce plans whose
// executions are bit-identical (the conformance harness sweeps fused vs
// unfused on every seed).

// RegionPlan is the scheduler's decision for one fusible region of the
// graph (a conv→[relu...]→pool or conv/dense→relu... chain found by
// graph.FuseRegions).
type RegionPlan struct {
	// Name is the region's display name ("conv1+pool1").
	Name string
	// Head is the conv/dense producer; Tail the last fused node (the
	// region step's output buffer); Pool the pooling tail, nil for
	// elementwise regions. Members lists head..tail in chain order.
	Head, Tail, Pool *graph.Node
	Members          []*graph.Node
	// Impl is the head operator's chosen implementation.
	Impl Impl

	// Tiled regions evaluate the conv interior in SRAM-sized tiles that
	// feed the pool directly; the conv output never materializes in the
	// arena. Spilled regions could not be tiled (working set exceeds the
	// scratchpad even at 1×1 tiles, or the head implementation has no
	// windowed kernel) and execute member-by-member like an unfused plan.
	// A region with neither flag is an elementwise chain whose head writes
	// through to the tail's buffer.
	Tiled   bool
	Spilled bool
	// Problem/Tile describe the tiling when Tiled.
	Problem sched.Problem
	Tile    sched.TilePlan
	// ApplyReLU rectifies each conv tile before pooling (tiled regions);
	// ExtraReLU rectifies the tail buffer after the head kernel
	// (elementwise regions with explicit interior ReLUs).
	ApplyReLU bool
	ExtraReLU bool

	// RetainedBytes counts intermediate bytes that never reach the arena
	// (tiled conv/relu outputs, elementwise interiors); SpilledBytes the
	// interiors a spilled region still materializes. FusedDRAMBytes and
	// UnfusedDRAMBytes are the modeled region traffic with and without
	// fusion (equal for spilled regions).
	RetainedBytes    int64
	SpilledBytes     int64
	FusedDRAMBytes   int64
	UnfusedDRAMBytes int64
	// Sim is the modeled fused execution (zero for spilled regions, whose
	// members keep their own Sims).
	Sim accel.Result

	headOp *CompiledOp
	poolOp *CompiledOp
}

// Mode names the region's execution mode for reports and metrics.
func (rp *RegionPlan) Mode() string {
	switch {
	case rp.Spilled:
		return "spilled"
	case rp.Tiled:
		return "tiled"
	default:
		return "elementwise"
	}
}

// planStep is one entry of the execution schedule: either a singleton
// operator or a whole fused region (exactly one of the fields is set).
type planStep struct {
	op     *CompiledOp
	region *RegionPlan
}

// bufAlias records that a node's buffer is a byte sub-range of another
// node's buffer (concat write-through retention; chains compose).
type bufAlias struct {
	parent int
	offset int64
}

func nodeBytes(n *graph.Node) int64 { return int64(n.OutShape.NumElements()) * 4 }

// buildFusedPlan runs the scheduler over an op-compiled plan: it classifies
// every region, picks tile shapes, computes concat retention, builds the
// step schedule, and lays out the arena with interval liveness over that
// schedule. It fills p.Regions, p.steps, p.Alloc and p.ArenaBytes.
func buildFusedPlan(p *Plan) error {
	g := p.Graph
	opsByID := make(map[int]*CompiledOp, len(p.Ops))
	for i := range p.Ops {
		opsByID[p.Ops[i].Node.ID] = &p.Ops[i]
	}

	interiorOf := make(map[int]*RegionPlan)
	tailOf := make(map[int]*RegionPlan)
	for _, gr := range g.Regions {
		rp := planRegion(gr, opsByID, p.Opts)
		p.Regions = append(p.Regions, rp)
		if rp.Spilled {
			continue
		}
		tailOf[rp.Tail.ID] = rp
		for _, m := range rp.Members[:len(rp.Members)-1] {
			interiorOf[m.ID] = rp
		}
	}

	alias, retainedConcat := planConcatRetention(g, interiorOf)

	// The step schedule: ops in topological order, with each non-spilled
	// region collapsing onto its tail's position and retained concats
	// disappearing entirely (their members write the slab in place).
	for i := range p.Ops {
		op := &p.Ops[i]
		id := op.Node.ID
		switch {
		case interiorOf[id] != nil:
		case tailOf[id] != nil:
			p.steps = append(p.steps, planStep{region: tailOf[id]})
		case retainedConcat[id]:
		default:
			p.steps = append(p.steps, planStep{op: op})
		}
	}

	return planScheduledMemory(p, alias)
}

// planRegion classifies one graph region and models its fused execution.
func planRegion(gr graph.Region, opsByID map[int]*CompiledOp, opts Options) *RegionPlan {
	rp := &RegionPlan{
		Name: gr.Name(), Head: gr.Head, Tail: gr.Tail, Pool: gr.Pool,
		Members: gr.Nodes(), headOp: opsByID[gr.Head.ID],
	}
	rp.Impl = rp.headOp.Impl
	if gr.Pool != nil {
		rp.poolOp = opsByID[gr.Pool.ID]
	}

	var interiorBytes int64
	for _, m := range rp.Members[:len(rp.Members)-1] {
		interiorBytes += nodeBytes(m)
	}
	var memberDRAM int64
	for _, m := range rp.Members {
		memberDRAM += opsByID[m.ID].Sim.DRAMBytes
	}
	rp.UnfusedDRAMBytes = memberDRAM

	if gr.Pool == nil {
		// Elementwise chain: the head writes through to the tail's buffer
		// and the ReLUs run in place, so the interiors never round-trip.
		rp.ExtraReLU = len(gr.Relus) > 0
		rp.RetainedBytes = interiorBytes
		rp.FusedDRAMBytes = maxI64(memberDRAM-2*interiorBytes, 0)
		rp.Sim = regionSim(rp, opsByID, opts)
		return rp
	}

	if rp.Impl != ImplDense && rp.Impl != ImplIPE {
		// No windowed kernel for this head implementation: spill.
		spillRegion(rp, interiorBytes)
		return rp
	}
	prob, tp, err := planRegionTiles(rp, opts)
	if err != nil {
		spillRegion(rp, interiorBytes)
		return rp
	}
	rp.Tiled = true
	rp.Problem, rp.Tile = prob, tp
	rp.ApplyReLU = gr.Head.Attrs.FusedReLU || len(gr.Relus) > 0
	rp.RetainedBytes = interiorBytes
	// The sched model covers the conv+pool pair; interior ReLUs (rare
	// after relu-fuse) additionally save their unfused round trip.
	convBytes := nodeBytes(gr.Head)
	pairSavings := tp.UnfusedDRAMBytes - tp.FusedDRAMBytes
	rp.FusedDRAMBytes = maxI64(memberDRAM-pairSavings-2*(interiorBytes-convBytes), 0)
	rp.Sim = regionSim(rp, opsByID, opts)
	return rp
}

func spillRegion(rp *RegionPlan, interiorBytes int64) {
	rp.Spilled = true
	rp.SpilledBytes = interiorBytes
	rp.FusedDRAMBytes = rp.UnfusedDRAMBytes
}

// planRegionTiles builds the tiling problem for a pool-tailed region and
// asks the sched planner for a tile shape fitting the scratchpad.
func planRegionTiles(rp *RegionPlan, opts Options) (sched.Problem, sched.TilePlan, error) {
	in := rp.Head.Inputs[0].OutShape
	prof, ok := rp.headOp.profiles[rp.Impl]
	if !ok {
		return sched.Problem{}, sched.TilePlan{}, fmt.Errorf("runtime: no profile for %s/%s", rp.Head, rp.Impl)
	}
	prob := sched.Problem{
		Spec: rp.Head.Attrs.Conv,
		InH:  in[2], InW: in[3], Batch: in[0],
		Pool:        rp.Pool.Attrs.Pool,
		WeightBytes: prof.StationaryBytes,
	}
	tp, err := sched.Plan(prob, opts.HW)
	return prob, tp, err
}

// regionSim re-simulates a fused region: the member profiles are summed and
// the DRAM traffic replaced by the fused value (compute work is unchanged —
// fusion moves bytes, not math). Tiled regions also take the tile working
// set, which is what actually occupies the scratchpad.
func regionSim(rp *RegionPlan, opsByID map[int]*CompiledOp, opts Options) accel.Result {
	prof, ok := rp.headOp.profiles[rp.Impl]
	if !ok {
		return rp.headOp.Sim
	}
	for _, m := range rp.Members[1:] {
		op := opsByID[m.ID]
		mp, ok := op.profiles[op.Impl]
		if !ok {
			continue
		}
		prof.Accumulate(mp)
	}
	prof.Name = rp.Name
	prof.DRAMBytes = rp.FusedDRAMBytes
	if rp.Tiled {
		prof.WorkingSetBytes = rp.Tile.WorkingSetBytes
	}
	return opts.HW.Simulate(prof)
}

// planConcatRetention finds concats whose every input can write through
// into the concat's own buffer: batch-1, each producer computed (not the
// graph input or a constant), feeding exactly that concat exactly once, and
// not buried inside a fused region (tails are fine — the region step then
// writes the slab directly). Retained concats cost nothing at runtime: the
// returned aliases place each producer at its channel offset in the
// concat's allocation, and chains of retained concats compose.
func planConcatRetention(g *graph.Graph, interiorOf map[int]*RegionPlan) (map[int]bufAlias, map[int]bool) {
	cons := g.Consumers()
	alias := make(map[int]bufAlias)
	retained := make(map[int]bool)
	for _, n := range g.Topo() {
		if n.Kind != graph.OpConcat || len(n.OutShape) == 0 || n.OutShape[0] != 1 {
			continue
		}
		ok := true
		seen := make(map[int]bool, len(n.Inputs))
		for _, in := range n.Inputs {
			if in.Kind == graph.OpInput || in.Kind == graph.OpConst ||
				in == g.Out || seen[in.ID] ||
				len(cons[in]) != 1 || interiorOf[in.ID] != nil {
				ok = false
				break
			}
			seen[in.ID] = true
		}
		if !ok {
			continue
		}
		retained[n.ID] = true
		var off int64
		for _, in := range n.Inputs {
			alias[in.ID] = bufAlias{parent: n.ID, offset: off}
			off += nodeBytes(in)
		}
	}
	return alias, retained
}

// planScheduledMemory lays the arena out with interval liveness over the
// step schedule: canonical buffers (alias roots) are born at their first
// writing step and die after their last reading step, and the first-fit
// arena reuses space exactly like the unfused planner — but intermediate
// tensors inside tiled regions never appear, and retained concat members
// occupy slices of the concat's single allocation.
func planScheduledMemory(p *Plan, alias map[int]bufAlias) error {
	g := p.Graph
	nodesByID := make(map[int]*graph.Node)
	for _, n := range g.Topo() {
		nodesByID[n.ID] = n
		if n.Kind != graph.OpInput && n.Kind != graph.OpConst && !n.OutShape.Valid() {
			return fmt.Errorf("runtime: node %s has invalid shape %v", n, n.OutShape)
		}
	}
	resolve := func(id int) (int, int64) {
		var off int64
		for {
			a, ok := alias[id]
			if !ok {
				return id, off
			}
			off += a.offset
			id = a.parent
		}
	}
	stepWrite := func(s planStep) int {
		if s.region != nil {
			return s.region.Tail.ID
		}
		return s.op.Node.ID
	}
	stepReads := func(s planStep) []*graph.Node {
		if s.region != nil {
			return s.region.Head.Inputs
		}
		return s.op.Node.Inputs
	}

	birth := make(map[int]int)
	death := make(map[int]int)
	for i, s := range p.steps {
		root, _ := resolve(stepWrite(s))
		if _, ok := birth[root]; !ok {
			birth[root] = i
		}
		death[root] = i // a write keeps the buffer live through its step
		for _, in := range stepReads(s) {
			if in.Kind == graph.OpInput || in.Kind == graph.OpConst {
				continue
			}
			r, _ := resolve(in.ID)
			if _, ok := birth[r]; !ok {
				return fmt.Errorf("runtime: step %d reads %s before any write", i, in)
			}
			if death[r] < i {
				death[r] = i
			}
		}
	}
	outRoot, _ := resolve(g.Out.ID)
	if _, ok := birth[outRoot]; !ok {
		return fmt.Errorf("runtime: no step writes the graph output %s", g.Out)
	}
	death[outRoot] = len(p.steps) // the result outlives the schedule

	var a arena
	allocs := make(map[int]Allocation, len(birth))
	expiring := make(map[int][]Allocation)
	for i, s := range p.steps {
		for _, al := range expiring[i] {
			a.release(al)
		}
		delete(expiring, i)
		root, _ := resolve(stepWrite(s))
		if _, done := allocs[root]; done || birth[root] != i {
			continue
		}
		size := nodeBytes(nodesByID[root])
		al := Allocation{Offset: a.alloc(size), Size: size}
		allocs[root] = al
		expiring[death[root]+1] = append(expiring[death[root]+1], al)
	}

	p.Alloc = make(map[int]Allocation, len(allocs)+len(alias))
	for id, al := range allocs {
		p.Alloc[id] = al
	}
	for id := range alias {
		root, off := resolve(id)
		ral, ok := allocs[root]
		if !ok {
			return fmt.Errorf("runtime: aliased node %d has unallocated root %d", id, root)
		}
		n := nodesByID[id]
		p.Alloc[id] = Allocation{Offset: ral.Offset + off, Size: nodeBytes(n)}
		if p.Alloc[id].End() > ral.End() {
			return fmt.Errorf("runtime: alias %s overflows its concat slab", n)
		}
	}
	p.ArenaBytes = a.high
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
