package runtime

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Registration shims for the conformance harness (internal/conformance):
// the forced-implementation space the differential driver compiles every
// generated graph under, and the effective weights a compiled plan actually
// computes with (quantized implementations run on dequantized weights, so
// an external oracle must too).

// ForceableImpls enumerates the implementations the conformance driver
// forces a whole plan onto. ImplAuto is covered implicitly: it always picks
// one of these.
func ForceableImpls() []Impl {
	return []Impl{ImplDense, ImplCSR, ImplFactorized, ImplIPE, ImplWinograd}
}

// FusedModes enumerates the graph-scheduler settings the conformance
// driver sweeps: every forced implementation compiles once without and once
// with Options.Fuse, and the two plans must agree bitwise on every path
// (executor at several shard counts, Plan.Run, chunked RunBatch).
func FusedModes() []bool { return []bool{false, true} }

// TiledHeadImpls enumerates the implementations whose region heads the
// tiling planner drives through the windowed kernel entry points. The
// driver additionally compiles these under TinySRAM, forcing multi-tile
// schedules so the windowed kernels' partial-halo paths are exercised.
func TiledHeadImpls() []Impl { return []Impl{ImplDense, ImplIPE} }

// TinySRAM returns the default accelerator model with on-chip SRAM shrunk
// to 4 KiB, small enough that realistic conv regions need several tiles per
// image. Fused and unfused plans compiled under the same shrunk config must
// still agree bitwise.
func TinySRAM() accel.Config {
	c := accel.Default()
	c.SRAMBytes = 4 << 10
	return c
}

// EffectiveWeights returns, per node ID, the weight tensor each compiled
// conv/dense operator effectively computes with, for the operators whose
// chosen implementation does not use the node's own float weights: the
// quantized implementations (CSR, factorized, IPE) compute the convolution
// of the *dequantized* weights. Operators running on their float weights
// (dense, Winograd, and every non-conv/dense op) are absent from the map.
// An oracle that evaluates Plan.Graph with these overrides predicts the
// executor's output up to float accumulation order.
func (p *Plan) EffectiveWeights() (map[int]*tensor.Tensor, error) {
	eff := make(map[int]*tensor.Tensor)
	for i := range p.Ops {
		op := &p.Ops[i]
		var w *tensor.Tensor
		switch {
		case op.Node.Kind == graph.OpConv && op.Impl == ImplCSR:
			w = op.csrConv.Quant.Dequantize()
		case op.Node.Kind == graph.OpConv && op.Impl == ImplFactorized:
			w = op.factConv.Quant.Dequantize()
		case op.Node.Kind == graph.OpConv && op.Impl == ImplIPE:
			w = op.ipeConv.Quant.Dequantize()
		case op.Node.Kind == graph.OpDense && op.Impl == ImplCSR:
			w = op.csrDense.Dense()
		case op.Node.Kind == graph.OpDense && op.Impl == ImplFactorized:
			w = op.factDense.Dense()
		case op.Node.Kind == graph.OpDense && op.Impl == ImplIPE:
			w = op.ipeDense.Quant.Dequantize().Reshape(op.ipeDense.Program.M, op.ipeDense.Program.K)
		default:
			continue
		}
		want := op.Node.Param("weight").Shape()
		if w.NumElements() != want.NumElements() {
			return nil, fmt.Errorf("runtime: effective weight of %s has %d elements, node weight %v",
				op.Node, w.NumElements(), want)
		}
		eff[op.Node.ID] = w.Reshape(want...)
	}
	return eff, nil
}
