package runtime

import (
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// EnableMetrics installs a fresh process-wide metrics recorder and wires
// the shared worker pool's telemetry into it, returning the recorder for
// snapshotting. Call it before compiling plans and building executors:
// executors resolve the recorder once at construction, so instances built
// while metrics were disabled keep recording nothing.
//
// This lives in runtime rather than metrics because the metrics package is
// a leaf (parallel imports it for the PoolStats type); only a layer that
// sees both sides can connect the shared pool to the recorder.
func EnableMetrics() *metrics.Recorder {
	r := metrics.Enable()
	parallel.Shared().SetStats(&r.Pool)
	return r
}

// DisableMetrics removes the process-wide recorder and detaches the shared
// pool's telemetry sink, restoring every site's ~1 ns disabled path.
// Executors built while metrics were enabled keep their layer handles and
// continue recording into the orphaned recorder; rebuild them (or let the
// plan pool cycle) to silence those sites too.
func DisableMetrics() {
	metrics.Disable()
	parallel.Shared().SetStats(nil)
}
