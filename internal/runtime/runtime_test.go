package runtime

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPlanMemoryReusesBuffers(t *testing.T) {
	// A linear chain should need only ~2 buffers' worth of arena, far less
	// than the sum of all outputs.
	g := graph.New("in", 1, 1, 16, 16)
	x := g.In
	for i := 0; i < 10; i++ {
		x = g.ReLU(x, "r")
	}
	g.SetOutput(x)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	plans, arena, err := PlanMemory(g)
	if err != nil {
		t.Fatal(err)
	}
	bufBytes := int64(16*16) * 4
	if arena > 2*bufBytes {
		t.Fatalf("chain of 10 ReLUs should reuse: arena %d > 2 buffers %d", arena, 2*bufBytes)
	}
	if err := ValidatePlan(g, plans, arena); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMemoryKeepsResidualAlive(t *testing.T) {
	// Residual pattern: x feeds both a long chain and a late Add; x's
	// buffer must stay allocated until the Add consumes it.
	g := graph.New("in", 1, 8)
	w := tensor.New(8, 8).Fill(0.1)
	x := g.Dense(g.In, "pre", w, nil)
	y := x
	for i := 0; i < 5; i++ {
		y = g.ReLU(y, "r")
	}
	g.SetOutput(g.Add(y, x, "res"))
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	plans, arena, err := PlanMemory(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(g, plans, arena); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMemoryValidOnModelsProperty(t *testing.T) {
	// The planner invariant must hold on every zoo model.
	for _, m := range nn.Zoo(32) {
		g := m.Build(1, 5)
		if err := graph.Optimize(g); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		plans, arena, err := PlanMemory(g)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := ValidatePlan(g, plans, arena); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		// Arena must be smaller than the no-reuse sum.
		var total int64
		for _, al := range plans {
			total += al.Size
		}
		if arena >= total && len(plans) > 3 {
			t.Errorf("%s: planner achieved no reuse (arena %d, sum %d)", m.Name, arena, total)
		}
	}
}

func TestPlanMemoryRandomChainsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		g := graph.New("in", 1, 4, 8, 8)
		nodes := []*graph.Node{g.In}
		for i := 0; i < 3+r.Intn(10); i++ {
			src := nodes[r.Intn(len(nodes))]
			var n *graph.Node
			if r.Intn(3) == 0 && len(nodes) > 1 {
				other := nodes[r.Intn(len(nodes))]
				if other.OutShape.Equal(src.OutShape) {
					n = g.Add(src, other, "add")
				} else {
					n = g.ReLU(src, "relu")
				}
			} else {
				n = g.ReLU(src, "relu")
			}
			n.OutShape = src.OutShape
			nodes = append(nodes, n)
		}
		g.SetOutput(nodes[len(nodes)-1])
		if err := g.InferShapes(); err != nil {
			return false
		}
		plans, arena, err := PlanMemory(g)
		if err != nil {
			return false
		}
		return ValidatePlan(g, plans, arena) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func lenetPlan(t *testing.T, opts Options) (*Plan, *tensor.Tensor) {
	t.Helper()
	g := nn.LeNet5(2, 7)
	plan, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(8)
	in := tensor.New(2, 1, 28, 28)
	tensor.FillGaussian(in, r, 1)
	return plan, in
}

func TestCompileAndRunDenseMatchesReference(t *testing.T) {
	plan, in := lenetPlan(t, Options{Force: ImplDense})
	got, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.Eval(plan.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-4, 1e-4) {
		t.Fatalf("dense plan diverges from reference: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestRunQuantizedImplsCloseToReference(t *testing.T) {
	// At 8 bits the quantized implementations should track the float
	// reference closely on softmax outputs.
	for _, force := range []Impl{ImplCSR, ImplFactorized, ImplIPE} {
		plan, in := lenetPlan(t, Options{Force: force, Bits: 8})
		got, err := plan.Run(in)
		if err != nil {
			t.Fatalf("%v: %v", force, err)
		}
		want, err := graph.Eval(plan.Graph, in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(got, want, 0.05, 0.05) {
			t.Fatalf("%v plan diverges: max diff %v", force, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestAutoSelectionPicksMinCycles(t *testing.T) {
	plan, _ := lenetPlan(t, Options{Bits: 4})
	for _, op := range plan.Ops {
		if op.Node.Kind != graph.OpConv && op.Node.Kind != graph.OpDense {
			continue
		}
		for im, r := range op.Candidates {
			if r.Cycles < op.Sim.Cycles {
				t.Fatalf("%s: auto chose %v (%d cycles) but %v has %d",
					op.Node, op.Impl, op.Sim.Cycles, im, r.Cycles)
			}
		}
	}
}

func TestForcePinsImplementation(t *testing.T) {
	plan, _ := lenetPlan(t, Options{Force: ImplIPE})
	counts := plan.ImplCounts()
	total := 0
	for im, c := range counts {
		if im != ImplIPE && c > 0 {
			t.Fatalf("forced IPE plan contains %v", im)
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no conv/dense ops compiled")
	}
}

func TestPlanTotalsAccumulate(t *testing.T) {
	plan, _ := lenetPlan(t, Options{Bits: 4})
	var sum int64
	for _, op := range plan.Ops {
		sum += op.Sim.Cycles
	}
	if plan.Total.Cycles != sum {
		t.Fatalf("Total.Cycles %d != per-op sum %d", plan.Total.Cycles, sum)
	}
	if plan.Total.EnergyPJ <= 0 {
		t.Fatal("total energy must be positive")
	}
}

func TestRunRejectsWrongInput(t *testing.T) {
	plan, _ := lenetPlan(t, Options{Force: ImplDense})
	if _, err := plan.Run(tensor.New(1, 1, 28, 28)); err == nil {
		t.Fatal("wrong input batch must be rejected")
	}
}

func TestCompileResNetAutoHasIPEWins(t *testing.T) {
	// On a 4-bit ResNet-18 at 32x32, auto selection should pick IPE for at
	// least some layers — the system-level exploration claim.
	g := nn.ResNet18(1, 32, 10, 9)
	plan, err := Compile(g, Options{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.ImplCounts()
	if counts[ImplIPE] == 0 {
		t.Fatalf("expected some IPE selections, got %v", counts)
	}
	// And the plan must execute.
	r := tensor.NewRNG(10)
	in := tensor.New(1, 3, 32, 32)
	tensor.FillGaussian(in, r, 1)
	out, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{1, 10}) {
		t.Fatalf("output shape %v", out.Shape())
	}
}

func TestTunedDenseNotWorseThanHeuristic(t *testing.T) {
	gH := nn.LeNet5(1, 3)
	planH, err := Compile(gH, Options{Force: ImplDense})
	if err != nil {
		t.Fatal(err)
	}
	gT := nn.LeNet5(1, 3)
	planT, err := Compile(gT, Options{Force: ImplDense, TuneDense: true, TuneBudget: 128})
	if err != nil {
		t.Fatal(err)
	}
	if planT.Total.Cycles > planH.Total.Cycles {
		t.Fatalf("tuned dense (%d cycles) worse than heuristic (%d)",
			planT.Total.Cycles, planH.Total.Cycles)
	}
}

func TestImplString(t *testing.T) {
	if ImplIPE.String() != "ipe" || Impl(42).String() != "Impl(42)" {
		t.Fatal("impl names wrong")
	}
}

func TestCompileDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Bits != 4 || o.HW.PEs == 0 || o.Tuner == nil || o.Cache == nil {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.IPE != ipe.DefaultConfig() {
		t.Fatal("default IPE config not applied")
	}
}

func TestWinogradImplMatchesReference(t *testing.T) {
	// Force Winograd on a conv net: applicable 3x3/s1 convs run Winograd,
	// everything else falls back to dense; output must track the float
	// reference closely (Winograd is exact dense math up to rounding).
	g := nn.ResNet18(1, 32, 10, 4)
	plan, err := Compile(g, Options{Force: ImplWinograd})
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.ImplCounts()
	if counts[ImplWinograd] == 0 {
		t.Fatalf("no winograd selections on ResNet-18: %v", counts)
	}
	if counts[ImplDense] == 0 {
		t.Fatalf("strided/1x1 convs should fall back to dense: %v", counts)
	}
	r := tensor.NewRNG(5)
	in := tensor.New(1, 3, 32, 32)
	tensor.FillGaussian(in, r, 1)
	got, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.Eval(plan.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-2, 1e-2) {
		t.Fatalf("winograd plan diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestAutoConsidersWinograd(t *testing.T) {
	// In auto mode the winograd candidate must be present for applicable
	// convs (whether or not it wins).
	g := nn.ResNet18(1, 32, 10, 6)
	plan, err := Compile(g, Options{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, op := range plan.Ops {
		if op.Node.Kind != graph.OpConv {
			continue
		}
		s := op.Node.Attrs.Conv
		if s.KH == 3 && s.StrideH == 1 && s.Groups <= 1 {
			if _, ok := op.Candidates[ImplWinograd]; !ok {
				t.Fatalf("%s: 3x3/s1 conv missing winograd candidate", op.Node)
			}
			seen = true
		}
	}
	if !seen {
		t.Fatal("no applicable convs found")
	}
}

func TestParallelCompileDeterministic(t *testing.T) {
	// The worker-pool compile must give identical plans regardless of
	// worker count.
	build := func(workers int) *Plan {
		g := nn.ResNet18(1, 32, 10, 13)
		plan, err := Compile(g, Options{Bits: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	a := build(1)
	b := build(8)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].Impl != b.Ops[i].Impl || a.Ops[i].Sim.Cycles != b.Ops[i].Sim.Cycles {
			t.Fatalf("op %d differs across worker counts: %v/%d vs %v/%d",
				i, a.Ops[i].Impl, a.Ops[i].Sim.Cycles, b.Ops[i].Impl, b.Ops[i].Sim.Cycles)
		}
	}
	if a.Total.Cycles != b.Total.Cycles {
		t.Fatalf("totals differ: %d vs %d", a.Total.Cycles, b.Total.Cycles)
	}
}

func TestRunBatchMatchesSequential(t *testing.T) {
	g := nn.LeNet5(2, 7)
	plan, err := Compile(g, Options{Force: ImplDense})
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(20)
	big := tensor.New(8, 1, 28, 28) // 4 chunks of the compiled batch 2
	tensor.FillGaussian(big, r, 1)
	got, err := plan.RunBatch(big, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(tensor.Shape{8, 10}) {
		t.Fatalf("RunBatch shape = %v", got.Shape())
	}
	// Sequential reference: run each chunk through Run.
	for c := 0; c < 4; c++ {
		chunk := tensor.From(big.Data()[c*2*28*28:(c+1)*2*28*28], 2, 1, 28, 28)
		want, err := plan.Run(chunk)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 2; b++ {
			for i := 0; i < 10; i++ {
				if got.At(c*2+b, i) != want.At(b, i) {
					t.Fatalf("chunk %d row %d diverges", c, b)
				}
			}
		}
	}
}

func TestRunBatchRejectsNonMultiple(t *testing.T) {
	g := nn.LeNet5(2, 7)
	plan, err := Compile(g, Options{Force: ImplDense})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunBatch(tensor.New(3, 1, 28, 28), 2); err == nil {
		t.Fatal("non-multiple batch must be rejected")
	}
}

func TestDescribeTable(t *testing.T) {
	plan, _ := lenetPlan(t, Options{Bits: 4})
	tbl := plan.Describe()
	if tbl.NumRows() < 3 { // 2 convs + 3 denses + TOTAL ≥ 3
		t.Fatalf("Describe rows = %d", tbl.NumRows())
	}
}

func TestCompileSqueezeNetAuto(t *testing.T) {
	// SqueezeNet exercises Concat through the runtime's generic path plus
	// 1x1-heavy convs through the encoded paths.
	g := nn.SqueezeNet(1, 32, 10, 14)
	plan, err := Compile(g, Options{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(15)
	in := tensor.New(1, 3, 32, 32)
	tensor.FillGaussian(in, r, 1)
	out, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{1, 10}) {
		t.Fatalf("output shape %v", out.Shape())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("softmax sum %v", sum)
	}
	if err := ValidatePlan(plan.Graph, plan.Alloc, plan.ArenaBytes); err != nil {
		t.Fatal(err)
	}
}

func TestCompileMobileNetForcedIPE(t *testing.T) {
	// Depthwise-separable structure through the grouped IPE path.
	g := nn.MobileNetV1(1, 32, 10, 16)
	plan, err := Compile(g, Options{Force: ImplIPE, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(17)
	in := tensor.New(1, 3, 32, 32)
	tensor.FillGaussian(in, r, 1)
	out, err := plan.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{1, 10}) {
		t.Fatalf("output shape %v", out.Shape())
	}
}
