package runtime_test

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// compileSmallPlan builds and compiles a tiny conv→flatten→dense model
// with a compiled batch of 2, so batch-multiple validation is observable.
func compileSmallPlan(t *testing.T) *runtime.Plan {
	t.Helper()
	g := graph.New("batch-validation", 2, 1, 4, 4)
	spec := tensor.ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(11), 0.5)
	x := g.Conv(g.In, "c", spec, w, nil)
	x = g.Flatten(x, "f")
	fc := tensor.New(3, 2*4*4)
	tensor.FillGaussian(fc, tensor.NewRNG(12), 0.1)
	g.SetOutput(g.Dense(x, "fc", fc, nil))
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunBatchValidation(t *testing.T) {
	plan := compileSmallPlan(t)
	cases := []struct {
		name    string
		shape   []int
		workers int
		wantErr string // substring of the expected error; "" means success
	}{
		{name: "rank mismatch", shape: []int{4, 16}, wantErr: "rank"},
		{name: "channel mismatch", shape: []int{4, 2, 4, 4}, wantErr: "does not match compiled input"},
		{name: "height mismatch", shape: []int{4, 1, 5, 4}, wantErr: "does not match compiled input"},
		{name: "width mismatch", shape: []int{4, 1, 4, 3}, wantErr: "does not match compiled input"},
		{name: "batch not a multiple of compiled batch", shape: []int{3, 1, 4, 4}, wantErr: "not a multiple"},
		{name: "single chunk", shape: []int{2, 1, 4, 4}},
		{name: "two chunks default workers", shape: []int{4, 1, 4, 4}},
		{name: "three chunks two workers", shape: []int{6, 1, 4, 4}, workers: 2},
		{name: "more workers than chunks", shape: []int{4, 1, 4, 4}, workers: 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tensor.New(tc.shape...)
			tensor.FillGaussian(in, tensor.NewRNG(99), 1)
			out, err := plan.RunBatch(in, tc.workers)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got output %v", tc.wantErr, out.Shape())
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			wantBatch := tc.shape[0] / 2 * plan.Graph.Out.OutShape[0]
			if out.Dim(0) != wantBatch {
				t.Fatalf("output batch %d, want %d", out.Dim(0), wantBatch)
			}
		})
	}

	// An empty batch cannot reach RunBatch from outside: the tensor layer
	// rejects zero dims at construction, and RunBatch's own total==0 guard
	// is defense in depth behind it.
	t.Run("empty batch unrepresentable", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("tensor.New accepted a zero batch dimension")
			}
		}()
		tensor.New(0, 1, 4, 4)
	})
}
