package runtime

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// gaussianInput builds a deterministic random input for the given shape.
func gaussianInput(shape tensor.Shape, seed uint64) *tensor.Tensor {
	in := tensor.New(shape...)
	tensor.FillGaussian(in, tensor.NewRNG(seed), 1)
	return in
}

// referenceRun replicates the pre-executor Plan.Run: every operator runs an
// allocating kernel, and the result is copied into the planned arena slot.
// The destination-passing Executor must match it bit for bit, since the Into
// kernels preserve loop order exactly.
func referenceRun(t *testing.T, p *Plan, input *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	g := p.Graph
	arena := make([]float32, p.ArenaBytes/4)
	vals := map[*graph.Node]*tensor.Tensor{g.In: input}
	ops := make(map[*graph.Node]*CompiledOp, len(p.Ops))
	for i := range p.Ops {
		ops[p.Ops[i].Node] = &p.Ops[i]
	}
	for _, n := range g.Topo() {
		if n.Kind == graph.OpInput {
			continue
		}
		if n.Kind == graph.OpConst {
			vals[n] = n.Value
			continue
		}
		out, err := referenceOp(ops[n], n, vals)
		if err != nil {
			t.Fatalf("reference run at %s: %v", n, err)
		}
		al := p.Alloc[n.ID]
		buf := arena[al.Offset/4 : al.End()/4]
		copy(buf, out.Data())
		vals[n] = tensor.From(buf, out.Shape()...)
	}
	return vals[g.Out]
}

func referenceOp(op *CompiledOp, n *graph.Node, vals map[*graph.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, in := range n.Inputs {
		ins[i] = vals[in]
	}
	var out *tensor.Tensor
	switch {
	case n.Kind == graph.OpConv && op.Impl == ImplCSR:
		out = op.csrConv.Forward(ins[0])
	case n.Kind == graph.OpConv && op.Impl == ImplFactorized:
		out = op.factConv.Forward(ins[0])
	case n.Kind == graph.OpConv && op.Impl == ImplIPE:
		out = op.ipeConv.Forward(ins[0])
	case n.Kind == graph.OpConv && op.Impl == ImplWinograd:
		out = op.winConv.Forward(ins[0])
	case n.Kind == graph.OpDense && op.Impl == ImplCSR:
		out = referenceDense(ins[0], op.csrDense.MatVec, op.csrDense.M, op.denseBias)
	case n.Kind == graph.OpDense && op.Impl == ImplFactorized:
		out = referenceDense(ins[0], op.factDense.MatVec, op.factDense.M, op.denseBias)
	case n.Kind == graph.OpDense && op.Impl == ImplIPE:
		out = op.ipeDense.Forward(ins[0])
	default:
		return graph.EvalNode(n, ins) // applies FusedReLU itself
	}
	if n.Attrs.FusedReLU {
		out = tensor.ReLU(out)
	}
	return out, nil
}

func referenceDense(in *tensor.Tensor, matvec func(x, y []float32), m int, bias *tensor.Tensor) *tensor.Tensor {
	n, k := in.Dim(0), in.Dim(1)
	out := tensor.New(n, m)
	for b := 0; b < n; b++ {
		matvec(in.Data()[b*k:(b+1)*k], out.Data()[b*m:(b+1)*m])
	}
	if bias != nil {
		bd := bias.Data()
		od := out.Data()
		for b := 0; b < n; b++ {
			for i := 0; i < m; i++ {
				od[b*m+i] += bd[i]
			}
		}
	}
	return out
}

func checkBitIdentical(t *testing.T, p *Plan, input *tensor.Tensor) {
	t.Helper()
	want := referenceRun(t, p, input)
	got, err := p.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("shape %v != reference %v", got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("output[%d] = %v != reference %v (bit-exact required)", i, gd[i], wd[i])
		}
	}
}

// TestExecutorBitIdenticalLeNetAllImpls pins the destination-passing
// executor to the old allocate-and-copy semantics for every forced
// implementation on a graph small enough to compile them all.
func TestExecutorBitIdenticalLeNetAllImpls(t *testing.T) {
	for _, force := range []Impl{ImplAuto, ImplDense, ImplCSR, ImplFactorized, ImplIPE, ImplWinograd} {
		t.Run(force.String(), func(t *testing.T) {
			g := nn.LeNet5(2, 11)
			p, err := Compile(g, Options{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			in := gaussianInput(g.In.OutShape, 12)
			checkBitIdentical(t, p, in)
		})
	}
}

// TestExecutorBitIdenticalResNet18 checks the acceptance criterion on the
// residual test graph under auto selection (a mix of winners).
func TestExecutorBitIdenticalResNet18(t *testing.T) {
	if testing.Short() {
		t.Skip("resnet compile is slow")
	}
	g := nn.ResNet18(1, 32, 10, 21)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := gaussianInput(g.In.OutShape, 22)
	checkBitIdentical(t, p, in)
}

// TestExecutorBitIdenticalMobileNet checks the acceptance criterion on the
// depthwise-separable test graph with the paper's encoded kernels forced on.
func TestExecutorBitIdenticalMobileNet(t *testing.T) {
	if testing.Short() {
		t.Skip("mobilenet compile is slow")
	}
	g := nn.MobileNetV1(1, 32, 10, 16)
	p, err := Compile(g, Options{Force: ImplIPE})
	if err != nil {
		t.Fatal(err)
	}
	in := gaussianInput(g.In.OutShape, 23)
	checkBitIdentical(t, p, in)
}

// TestExecutorSteadyStateZeroAllocs: after the first warm-up run,
// Executor.Run at parallelism 1 must not touch the heap at all. (Sharded
// execution allocates the closures its parallel regions need; the
// zero-alloc guarantee is documented for the serial setting.)
func TestExecutorSteadyStateZeroAllocs(t *testing.T) {
	// ImplDense covers the packed-GEMM serving path (DenseGemmIntoPar):
	// its panel buffers must come from the per-shard scratch, not the heap.
	for _, force := range []Impl{ImplAuto, ImplDense, ImplIPE, ImplCSR, ImplFactorized} {
		t.Run(force.String(), func(t *testing.T) {
			g := nn.LeNet5(1, 13)
			p, err := Compile(g, Options{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			e := p.NewExecutor()
			e.SetParallelism(1)
			in := gaussianInput(g.In.OutShape, 14)
			if _, err := e.Run(in); err != nil { // warm up arena + scratch
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := e.Run(in); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Run allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestExecutorPoolReuse checks that Run recycles executors through the
// plan's pool and that a pooled executor still produces correct results
// after its arena has been dirtied by a previous inference.
func TestExecutorPoolReuse(t *testing.T) {
	g := nn.LeNet5(1, 17)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sync.Pool drops Puts at random when the race detector is on, so give
	// recycling a few chances instead of asserting on a single round trip.
	e := p.AcquireExecutor()
	recycled := false
	for i := 0; i < 32 && !recycled; i++ {
		p.ReleaseExecutor(e)
		got := p.AcquireExecutor()
		recycled = got == e
		e = got
	}
	if !recycled {
		t.Fatalf("pool did not recycle a released executor in 32 round trips")
	}
	p.ReleaseExecutor(e)

	in1 := gaussianInput(g.In.OutShape, 18)
	in2 := gaussianInput(g.In.OutShape, 19)
	first, err := p.Run(in1) // dirties the pooled arena
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRun(t, p, in2)
	got, err := p.Run(in2) // reuses the dirty arena
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("dirty-arena rerun diverges at %d: %v != %v", i, got.Data()[i], want.Data()[i])
		}
	}
	// Run must return an independent copy, not an arena alias.
	if _, err := p.Run(in1); err != nil {
		t.Fatal(err)
	}
	_ = first
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("Run result aliased the pooled arena (index %d changed)", i)
		}
	}
}

// TestExecutorRejectsBadInputShape covers the executor's own validation
// (Plan.Run used to do this check; it now lives in Executor.Run).
func TestExecutorRejectsBadInputShape(t *testing.T) {
	g := nn.LeNet5(1, 23)
	p, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExecutor()
	if e.Plan() != p {
		t.Fatalf("Executor.Plan() = %p, want %p", e.Plan(), p)
	}
	if _, err := e.Run(tensor.New(1, 1, 8, 8)); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

// TestReleaseExecutorForeignPlan ensures an executor can only go back to
// the pool of the plan that built it.
func TestReleaseExecutorForeignPlan(t *testing.T) {
	g1 := nn.LeNet5(1, 29)
	p1, err := Compile(g1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := nn.LeNet5(1, 31)
	p2, err := Compile(g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := p1.NewExecutor()
	p2.ReleaseExecutor(e) // must be ignored
	p2.ReleaseExecutor(nil)
	if got := p2.PooledExecutors(); got != 0 {
		t.Fatalf("foreign executor entered p2's pool (%d pooled)", got)
	}
}

// TestArenaReleaseCoalesces exercises the insertion-sort release paths of
// the planner's free list directly: merge-with-previous, merge-with-next,
// merge-both, and plain insert must leave the list sorted and coalesced.
func TestArenaReleaseCoalesces(t *testing.T) {
	var a arena
	offs := make([]int64, 6)
	for i := range offs {
		offs[i] = a.alloc(16)
	}
	// Release out of order: 4, 0, 2 are isolated inserts; 1 merges both
	// neighbors; 3 merges previous; 5 merges previous too.
	for _, i := range []int{4, 0, 2, 1, 3, 5} {
		a.release(Allocation{Offset: offs[i], Size: 16})
	}
	if len(a.free) != 1 || a.free[0].Offset != 0 || a.free[0].Size != 96 {
		t.Fatalf("free list not fully coalesced: %+v", a.free)
	}
	// The coalesced run satisfies a large request again.
	if off := a.alloc(96); off != 0 {
		t.Fatalf("alloc after coalesce = %d, want 0", off)
	}
	if a.high != 96 {
		t.Fatalf("high-water mark grew to %d, want 96", a.high)
	}
}

func TestArenaReleaseKeepsSorted(t *testing.T) {
	var a arena
	var allocs []Allocation
	for i := 0; i < 8; i++ {
		allocs = append(allocs, Allocation{Offset: a.alloc(8 + int64(i%3)*8), Size: 8 + int64(i%3)*8})
	}
	// Release every other block (no two adjacent), then check ordering.
	for _, i := range []int{6, 0, 4, 2} {
		a.release(allocs[i])
	}
	for j := 1; j < len(a.free); j++ {
		if a.free[j-1].Offset >= a.free[j].Offset {
			t.Fatalf("free list unsorted at %d: %+v", j, a.free)
		}
		if a.free[j-1].End() == a.free[j].Offset {
			t.Fatalf("free list has uncoalesced neighbors at %d: %+v", j, a.free)
		}
	}
	if len(a.free) != 4 {
		t.Fatalf("expected 4 isolated free blocks, got %+v", a.free)
	}
}

func ExamplePlan_AcquireExecutor() {
	g := nn.LeNet5(1, 3)
	p, err := Compile(g, Options{Force: ImplDense})
	if err != nil {
		panic(err)
	}
	// Compile once, pool executors, run many: the serving loop reuses one
	// warm arena and allocates nothing per inference.
	e := p.AcquireExecutor()
	defer p.ReleaseExecutor(e)
	in := gaussianInput(g.In.OutShape, 5)
	out, err := e.Run(in) // out aliases e's arena until the next e.Run
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Shape())
	// Output: [1 10]
}
