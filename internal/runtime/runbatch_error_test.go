package runtime

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// errPlan compiles a tiny conv→flatten→dense model with a compiled batch of
// 1, so RunBatch chunk counts equal the input batch size.
func errPlan(t *testing.T) *Plan {
	t.Helper()
	g := graph.New("runbatch-errors", 1, 1, 4, 4)
	spec := tensor.ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(21), 0.5)
	x := g.Conv(g.In, "c", spec, w, nil)
	x = g.Flatten(x, "f")
	fc := tensor.New(3, 2*4*4)
	tensor.FillGaussian(fc, tensor.NewRNG(22), 0.1)
	g.SetOutput(g.Dense(x, "fc", fc, nil))
	plan, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// setChunkHook installs a per-chunk failure injector for the duration of
// the test (the hook is the only way to make a post-validation chunk fail).
func setChunkHook(t *testing.T, h func(int) error, dispatched *int) {
	t.Helper()
	runBatchChunkHook = h
	testRunBatchDispatched = dispatched
	t.Cleanup(func() {
		runBatchChunkHook = nil
		testRunBatchDispatched = nil
	})
}

// TestRunBatchReturnsLowestIndexError fails two chunks — the higher index
// deterministically first (serial workers would hit it first only with
// cancellation disabled) — and checks the returned error is the
// lowest-index failure, wrapped with its chunk index.
func TestRunBatchReturnsLowestIndexError(t *testing.T) {
	plan := errPlan(t)
	errLow := errors.New("low boom")
	errHigh := errors.New("high boom")
	setChunkHook(t, func(chunk int) error {
		switch chunk {
		case 2:
			return errLow
		case 5:
			return errHigh
		}
		return nil
	}, nil)
	in := tensor.New(8, 1, 4, 4)
	tensor.FillGaussian(in, tensor.NewRNG(31), 1)
	// workers=8: every chunk is in flight at once, so both failures can
	// land; the lowest index must still win.
	_, err := plan.RunBatch(in, 8)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, errLow) {
		t.Fatalf("error %v, want the lowest-index chunk error %v", err, errLow)
	}
	if !strings.Contains(err.Error(), "chunk 2") {
		t.Fatalf("error %q does not name the failing chunk", err)
	}
}

// TestRunBatchCancelsFeederOnFailure fails the first chunk with a single
// worker and checks the feeder stopped dispatching instead of feeding all
// remaining chunks through the dead batch.
func TestRunBatchCancelsFeederOnFailure(t *testing.T) {
	plan := errPlan(t)
	boom := errors.New("boom")
	var dispatched int
	setChunkHook(t, func(chunk int) error {
		if chunk == 0 {
			return boom
		}
		return nil
	}, &dispatched)
	in := tensor.New(64, 1, 4, 4)
	tensor.FillGaussian(in, tensor.NewRNG(32), 1)
	_, err := plan.RunBatch(in, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	// The single worker fails chunk 0 and sets the flag; the feeder may
	// already have handed over a couple more chunks (they drain without
	// executing) but must stop far short of the full batch.
	if dispatched >= 64 {
		t.Fatalf("feeder dispatched all %d chunks after the first failure", dispatched)
	}
}

// TestRunBatchSuccessDispatchesAll is the control: without failures the
// feeder hands every chunk out and the result matches chunk-by-chunk Run.
func TestRunBatchSuccessDispatchesAll(t *testing.T) {
	plan := errPlan(t)
	var dispatched int
	setChunkHook(t, nil, &dispatched)
	in := tensor.New(6, 1, 4, 4)
	tensor.FillGaussian(in, tensor.NewRNG(33), 1)
	out, err := plan.RunBatch(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dispatched != 6 {
		t.Fatalf("dispatched %d chunks, want 6", dispatched)
	}
	per := in.NumElements() / 6
	outPer := out.NumElements() / 6
	for i := 0; i < 6; i++ {
		chunk := tensor.From(in.Data()[i*per:(i+1)*per], 1, 1, 4, 4)
		want, err := plan.Run(chunk)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Data()[i*outPer : (i+1)*outPer]
		for j, w := range want.Data() {
			if got[j] != w {
				t.Fatalf("chunk %d element %d: got %v want %v", i, j, got[j], w)
			}
		}
	}
}

// TestRunBatchRecorderCapturedOnce swaps the process-wide recorder while
// RunBatch requests are in flight and checks that every retired recorder
// kept its executor checkout accounting paired (Acquires == Releases) and
// its batch accounting whole (BatchItems == Batches × chunks). Before the
// capture-once fix, AcquireExecutor and ReleaseExecutor resolved the global
// recorder independently, so a mid-request Enable() could land the two
// sides on different recorders. Run under -race (make verify does) this is
// also the data-race gate for the swap path.
func TestRunBatchRecorderCapturedOnce(t *testing.T) {
	plan := errPlan(t)
	const chunks = 4
	in := tensor.New(chunks, 1, 4, 4)
	tensor.FillGaussian(in, tensor.NewRNG(34), 1)

	recs := []*metrics.Recorder{EnableMetrics()}
	defer DisableMetrics()
	var mu sync.Mutex
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		// Bounded swap count: plenty of interleavings without retaining an
		// unbounded recorder list on a slow box.
		for i := 0; i < 5000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := EnableMetrics()
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		}
	}()

	const calls = 50
	var runners sync.WaitGroup
	for w := 0; w < 4; w++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			for i := 0; i < calls; i++ {
				if _, err := plan.RunBatch(in, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	runners.Wait()
	close(stop)
	swapper.Wait()

	mu.Lock()
	defer mu.Unlock()
	var batches, items int64
	for i, r := range recs {
		s := r.Snapshot().Exec
		if s.Acquires != s.Releases {
			t.Errorf("recorder %d: acquires %d != releases %d (request split across recorders)",
				i, s.Acquires, s.Releases)
		}
		if s.BatchItems != s.Batches*chunks {
			t.Errorf("recorder %d: batch items %d != batches %d x %d",
				i, s.BatchItems, s.Batches, chunks)
		}
		batches += s.Batches
		items += s.BatchItems
	}
	if want := int64(4 * calls); batches != want || items != want*chunks {
		t.Errorf("totals: batches %d items %d, want %d and %d", batches, items, want, want*chunks)
	}
}
