package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/autotune"
	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// Impl identifies an operator implementation strategy.
type Impl int

// Implementation strategies for conv/dense operators.
const (
	// ImplAuto lets the compiler pick the fastest candidate per operator
	// (system-level exploration).
	ImplAuto Impl = iota
	// ImplDense is the dense im2col/GEMM kernel over float weights.
	ImplDense
	// ImplCSR is compressed-sparse-row execution over quantized weights.
	ImplCSR
	// ImplFactorized is UCNN-style value-factorized execution.
	ImplFactorized
	// ImplIPE is index-pair encoded execution (the paper's contribution).
	ImplIPE
	// ImplWinograd is Winograd F(2x2,3x3) dense execution; only available
	// for dense 3x3 stride-1 convolutions, so forcing it falls back to
	// ImplDense elsewhere.
	ImplWinograd
)

var implNames = map[Impl]string{
	ImplAuto: "auto", ImplDense: "dense", ImplCSR: "csr",
	ImplFactorized: "factorized", ImplIPE: "ipe", ImplWinograd: "winograd",
}

// String returns the implementation's short name.
func (im Impl) String() string {
	if s, ok := implNames[im]; ok {
		return s
	}
	return fmt.Sprintf("Impl(%d)", int(im))
}

// ImplByName resolves an implementation's short name (the inverse of
// String; "auto" resolves to ImplAuto).
func ImplByName(name string) (Impl, bool) {
	for im, s := range implNames {
		if s == name {
			return im, true
		}
	}
	return ImplAuto, false
}

// Options configures compilation.
type Options struct {
	// Bits is the weight quantization bit-width for the encoded
	// implementations (default 4).
	Bits int
	// Scheme is the quantization granularity. The zero value means unset
	// and compiles as per-channel (the documented default); per-tensor
	// plans quantize outside the runtime via quant.Quantize.
	Scheme quant.Scheme
	// IPE configures the index-pair encoder (default ipe.DefaultConfig).
	IPE ipe.Config
	// DictStore, when non-nil, interns every encoded IPE program into the
	// shared dictionary store: layers whose encodings coincide — across
	// this plan, across plans of other models, and across successive
	// versions of one model — share a single canonical Program and its
	// compiled emit pass, shrinking resident bytes per served model.
	// Execution is bit-identical to an unshared plan (the canonical
	// program's content equals what the layer encoded; conformance's
	// shared-dict variant enforces this). The store is safe for
	// concurrent use from parallel compiles.
	DictStore *ipe.DictStore
	// HW is the accelerator model (default accel.Default).
	HW accel.Config
	// Force pins every conv/dense operator to one implementation;
	// ImplAuto (zero value) selects per operator by simulated cycles.
	Force Impl
	// Fuse turns on the graph-level scheduler: fused regions
	// (conv→relu→pool, dense→relu) execute as single arena-resident
	// passes with cache-sized tiles planned against HW.SRAMBytes, and
	// single-consumer concat inputs write through into the concat's
	// buffer. Results are bit-identical to the unfused plan; peak arena
	// bytes and modeled DRAM traffic shrink (see DESIGN.md §10).
	Fuse bool
	// TuneDense auto-tunes the dense schedule per conv layer instead of
	// using the default heuristic schedule.
	TuneDense bool
	// Tuner and TuneBudget control dense-schedule search (default
	// genetic, 64 trials).
	Tuner      autotune.Tuner
	TuneBudget int
	// Cache reuses tuning results across identically-shaped layers.
	Cache *autotune.Cache
	// TuningStore seeds each conv/dense operator's implementation choice
	// from persisted online-tuning measurements (see Plan.StartTuner):
	// when the store holds a sufficiently-sampled winner for the layer's
	// (shape, parallelism) the measured winner overrides the simulator's
	// pick, so a restarted server — or a sibling model with identical layer
	// shapes — plans the tuned implementation on the first request. Only
	// consulted under ImplAuto; nil disables seeding.
	TuningStore *autotune.Store
	// TunePar is the parallelism component of tuning-store keys, for both
	// seeding and write-back (0 = the default serving configuration).
	TunePar int
	// Seed drives the tuner.
	Seed uint64
	// Workers bounds the compilation parallelism (per-operator encoding
	// and candidate simulation are independent). 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Bits == 0 {
		o.Bits = 4
	}
	if o.Scheme == quant.PerTensor {
		o.Scheme = quant.PerChannel
	}
	if o.IPE == (ipe.Config{}) {
		o.IPE = ipe.DefaultConfig()
	}
	if o.HW.PEs == 0 {
		o.HW = accel.Default()
	}
	if o.Tuner == nil {
		o.Tuner = autotune.Genetic{}
	}
	if o.TuneBudget == 0 {
		o.TuneBudget = 64
	}
	if o.Cache == nil {
		o.Cache = autotune.NewCache()
	}
	return o
}

// CompiledOp is one operator of an execution plan.
type CompiledOp struct {
	Node *graph.Node
	// Impl is the chosen implementation (ImplDense for non-conv/dense
	// operators is meaningless; they report ImplDense for uniformity).
	Impl Impl
	// Sim is the modeled execution of the chosen implementation.
	Sim accel.Result
	// Candidates maps every evaluated implementation to its modeled
	// execution, for the per-layer reports.
	Candidates map[Impl]accel.Result
	// profiles holds the roofline kernel profile behind each candidate, so
	// the fused scheduler can re-simulate a region with its DRAM traffic
	// replaced by the tiled value. (The dense conv candidate's Sim comes
	// from the schedule explorer; its entry here is the representative
	// roofline profile.)
	profiles map[Impl]accel.KernelProfile

	// shapeKey identifies the operator's workload shape for the persistent
	// tuning cache (schedule.Workload.Key for convs, a dense key for FC
	// layers; empty for untunable operators).
	shapeKey string

	ipeConv     *ipe.ConvLayer
	ipeDense    *ipe.DenseLayer
	csrConv     *baseline.ConvCSR
	csrDense    *baseline.CSR
	factConv    *baseline.ConvFactorized
	factDense   *baseline.Factorized
	winConv     *baseline.ConvWinograd
	denseWeight *tensor.Tensor
	denseBias   *tensor.Tensor
}

// Plan is a compiled, memory-planned, implementation-selected graph.
type Plan struct {
	Graph *graph.Graph
	Ops   []CompiledOp
	// Alloc maps node IDs to arena placements; ArenaBytes is the arena
	// size.
	Alloc      map[int]Allocation
	ArenaBytes int64
	// Total is the modeled whole-network execution.
	Total accel.Result
	Opts  Options

	// Regions records the scheduler's decision for every fusible region of
	// the graph (empty unless compiled with Options.Fuse). Spilled entries
	// execute member-by-member; the rest execute as single fused steps.
	Regions []*RegionPlan
	// steps is the execution schedule NewExecutor walks: singleton operator
	// steps interleaved with fused region steps, in topological order.
	// Without Fuse it is exactly one singleton per op.
	steps []planStep

	// MetricsPrefix is prepended to layer names when executors register
	// their metrics series (e.g. "lenet5/" so two plans in one process
	// don't merge same-named layers). Set it before the first
	// NewExecutor/AcquireExecutor call; empty is fine for a single plan.
	MetricsPrefix string

	// live holds the online-tuner routing state while StartTuner is active
	// (nil otherwise). Executors load it once per Run — one atomic pointer
	// load — so untuned plans pay nothing on the hot path.
	live atomic.Pointer[liveTuner]

	// Executor recycling: an explicit bounded free-list instead of a
	// sync.Pool, so releases are deterministic — ReleasePool can prove the
	// warm arenas of a hot-swapped-out plan are gone, and the resident-byte
	// accounting balances exactly even under the race detector (which makes
	// sync.Pool drop Puts at random). Guarded by poolMu; poolClosed marks a
	// plan whose pool was released, after which returned executors are
	// discarded rather than re-pooled.
	poolMu     sync.Mutex
	poolFree   []*Executor
	poolCap    int // 0 = default (2×GOMAXPROCS)
	poolClosed bool
}

// Compile optimizes g in place, builds every candidate implementation for
// each conv/dense operator, simulates them on the accelerator model,
// selects per-operator winners, and then plans memory. Without Options.Fuse
// the memory plan is the classic whole-tensor interval allocation; with it
// the fused scheduler groups region chains into single steps, tiles their
// interiors against SRAM, and write-through-retains concat inputs (memory
// planning must therefore run after implementation selection, which decides
// which regions tile).
func Compile(g *graph.Graph, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if err := graph.Optimize(g); err != nil {
		return nil, err
	}
	p := &Plan{Graph: g, Opts: opts}
	var nodes []*graph.Node
	for _, n := range g.Topo() {
		if n.Kind != graph.OpInput && n.Kind != graph.OpConst {
			nodes = append(nodes, n)
		}
	}
	// Per-operator compilation (encoding, candidate simulation, tuning) is
	// independent across nodes; fan it out over a bounded worker pool and
	// keep the result order deterministic.
	workers := opts.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers < 1 {
		workers = 1
	}
	ops := make([]CompiledOp, len(nodes))
	errs := make([]error, len(nodes))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ops[i], errs[i] = compileNode(nodes[i], opts)
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runtime: compiling %s: %w", nodes[i], err)
		}
	}
	p.Ops = ops
	if opts.Fuse {
		if err := buildFusedPlan(p); err != nil {
			return nil, err
		}
	} else {
		alloc, arenaBytes, err := PlanMemory(g)
		if err != nil {
			return nil, err
		}
		p.Alloc, p.ArenaBytes = alloc, arenaBytes
		p.steps = make([]planStep, len(p.Ops))
		for i := range p.Ops {
			p.steps[i] = planStep{op: &p.Ops[i]}
		}
	}
	for _, s := range p.steps {
		if s.region != nil {
			p.Total.Accumulate(s.region.Sim)
		} else {
			p.Total.Accumulate(s.op.Sim)
		}
	}
	return p, nil
}

func compileNode(n *graph.Node, opts Options) (CompiledOp, error) {
	switch n.Kind {
	case graph.OpConv:
		return compileConv(n, opts)
	case graph.OpDense:
		return compileDense(n, opts)
	default:
		return compileGeneric(n, opts), nil
	}
}

// denseConvSim simulates the dense conv either with the default heuristic
// schedule or an auto-tuned one.
func denseConvSim(w schedule.Workload, opts Options) accel.Result {
	sp := schedule.NewSpace(w, opts.HW)
	if !opts.TuneDense {
		// Heuristic default: largest legal power-of-two-ish tile from the
		// top of each option list.
		best := accel.Result{Cycles: 1 << 62}
		found := false
		for _, idx := range [][]int{
			{len(sp.OCOpts) - 1, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) - 1, 0, 0},
			{len(sp.OCOpts) - 1, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) - 1, 0, 1},
			{len(sp.OCOpts) / 2, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) / 2, 0, 0},
			{0, 0, len(sp.OWOpts) - 1, 0, 0, 0},
			{0, 0, 0, 0, 0, 0},
		} {
			if res, err := sp.At(idx).Simulate(w, opts.HW); err == nil {
				found = true
				if res.Cycles < best.Cycles {
					best = res
				}
			}
		}
		if found {
			return best
		}
	}
	run := func() autotune.Result {
		return opts.Tuner.Tune(sp, opts.TuneBudget, opts.Seed)
	}
	var r autotune.Result
	if opts.TuneDense {
		// The cache key carries impl and parallelism alongside the shape:
		// shape-only keys let a schedule tuned for one configuration leak
		// into another.
		key := autotune.Key{Shape: w.Key(), Impl: "dense", Par: opts.TunePar}
		r = opts.Cache.GetOrTune(key.String(), run)
	} else {
		r = run()
	}
	if r.BestIdx == nil {
		// No legal schedule (pathological SRAM config): fall back to the
		// roofline profile.
		return opts.HW.Simulate(accel.DenseConvProfile(w.Spec, w.N, w.H, w.W))
	}
	res, err := sp.At(r.BestIdx).Simulate(w, opts.HW)
	if err != nil {
		return opts.HW.Simulate(accel.DenseConvProfile(w.Spec, w.N, w.H, w.W))
	}
	return res
}

// wants reports whether implementation im must be built given the Force
// option: all candidates under auto selection, only the forced one
// otherwise.
func wants(force, im Impl) bool { return force == ImplAuto || force == im }

func compileConv(n *graph.Node, opts Options) (CompiledOp, error) {
	spec := n.Attrs.Conv
	in := n.Inputs[0].OutShape
	wl := schedule.Workload{Spec: spec, N: in[0], H: in[2], W: in[3]}
	weight, bias := n.Param("weight"), n.Param("bias")

	op := CompiledOp{
		Node:       n,
		Candidates: make(map[Impl]accel.Result),
		profiles:   make(map[Impl]accel.KernelProfile),
	}

	if wants(opts.Force, ImplDense) {
		// Dense candidate (float weights, scheduled).
		op.Candidates[ImplDense] = denseConvSim(wl, opts)
		op.profiles[ImplDense] = accel.DenseConvProfile(spec, wl.N, wl.H, wl.W)
	}
	if wants(opts.Force, ImplCSR) {
		csr, err := baseline.NewConvCSR(weight, bias, spec, opts.Bits, opts.Scheme)
		if err != nil {
			return op, err
		}
		op.csrConv = csr
		op.profiles[ImplCSR] = accel.SparseConvProfile(spec, wl.N, wl.H, wl.W, csr.NNZ())
		op.Candidates[ImplCSR] = opts.HW.Simulate(op.profiles[ImplCSR])
	}
	if wants(opts.Force, ImplFactorized) {
		fact, err := baseline.NewConvFactorized(weight, bias, spec, opts.Bits, opts.Scheme)
		if err != nil {
			return op, err
		}
		op.factConv = fact
		var factSyms int
		for _, m := range fact.Mats {
			factSyms += m.K
		}
		op.profiles[ImplFactorized] = accel.FactorizedConvProfile(spec, wl.N, wl.H, wl.W, fact.Cost(), factSyms)
		op.Candidates[ImplFactorized] = opts.HW.Simulate(op.profiles[ImplFactorized])
	}
	if wants(opts.Force, ImplIPE) {
		ipeL, _, err := ipe.EncodeConv(weight, bias, spec, opts.Bits, opts.Scheme, opts.IPE)
		if err != nil {
			return op, err
		}
		// Intern first (duplicates collapse to the canonical program, so a
		// hit reuses an already-lowered form), then lower every program to
		// its compiled serving form now, so the first Run never pays the
		// lazy compilation inside the hot path.
		for i, prog := range ipeL.Programs {
			ipeL.Programs[i] = opts.DictStore.Intern(prog)
			ipeL.Programs[i].Compiled()
		}
		op.ipeConv = ipeL
		op.profiles[ImplIPE] = accel.IPEConvProfile(ipeL, wl.N, wl.H, wl.W)
		op.Candidates[ImplIPE] = opts.HW.Simulate(op.profiles[ImplIPE])
	}
	if wants(opts.Force, ImplWinograd) {
		if win, err := baseline.NewConvWinograd(weight, bias, spec); err == nil {
			op.winConv = win
			op.profiles[ImplWinograd] = accel.WinogradConvProfile(spec, wl.N, wl.H, wl.W, win.Cost(wl.N, wl.H, wl.W))
			op.Candidates[ImplWinograd] = opts.HW.Simulate(op.profiles[ImplWinograd])
		} else if opts.Force == ImplWinograd {
			// Winograd does not apply (kernel/stride/groups): fall back to
			// the dense schedule so a forced-winograd plan stays runnable.
			op.Candidates[ImplDense] = denseConvSim(wl, opts)
			op.profiles[ImplDense] = accel.DenseConvProfile(spec, wl.N, wl.H, wl.W)
		}
	}
	op.shapeKey = wl.Key()
	op.Impl = chooseImpl(op.Candidates, opts.Force)
	seedFromStore(&op, opts)
	op.Sim = op.Candidates[op.Impl]
	return op, nil
}

func compileDense(n *graph.Node, opts Options) (CompiledOp, error) {
	weight, bias := n.Param("weight"), n.Param("bias")
	m, k := weight.Dim(0), weight.Dim(1)
	batch := n.Inputs[0].OutShape[0]
	op := CompiledOp{
		Node:        n,
		Candidates:  make(map[Impl]accel.Result),
		profiles:    make(map[Impl]accel.KernelProfile),
		denseWeight: weight,
		denseBias:   bias,
	}

	scaleCost := func(c ipe.Cost) ipe.Cost {
		c.Adds *= int64(batch)
		c.Muls *= int64(batch)
		return c
	}
	toProfile := func(name string, c ipe.Cost, weightBytes int64) accel.KernelProfile {
		actBytes := int64(batch*(m+k)) * 4
		return accel.KernelProfile{
			Name: name, Adds: c.Adds, Muls: c.Muls,
			SRAMAccesses:    2 * (c.Adds + c.Muls),
			DRAMBytes:       weightBytes + actBytes,
			WorkingSetBytes: weightBytes,
		}
	}
	if wants(opts.Force, ImplDense) || opts.Force == ImplWinograd {
		// Winograd has no dense-FC form; a forced-winograd plan runs its
		// fully connected layers dense.
		op.profiles[ImplDense] = toProfile("dense", scaleCost(ipe.DenseCost(m, k)), int64(m*k)*4)
		op.Candidates[ImplDense] = opts.HW.Simulate(op.profiles[ImplDense])
	}
	if wants(opts.Force, ImplCSR) || wants(opts.Force, ImplFactorized) {
		q := quant.Quantize(weight, opts.Bits, opts.Scheme)
		if wants(opts.Force, ImplCSR) {
			csr := baseline.NewCSRFromQuantized(q)
			op.csrDense = csr
			op.profiles[ImplCSR] = toProfile("csr", scaleCost(csr.Cost()), int64(csr.NNZ())*6)
			op.Candidates[ImplCSR] = opts.HW.Simulate(op.profiles[ImplCSR])
		}
		if wants(opts.Force, ImplFactorized) {
			fact := baseline.NewFactorized(q)
			op.factDense = fact
			op.profiles[ImplFactorized] = toProfile("factorized", scaleCost(fact.Cost()), fact.StreamSymbols()*2)
			op.Candidates[ImplFactorized] = opts.HW.Simulate(op.profiles[ImplFactorized])
		}
	}
	if wants(opts.Force, ImplIPE) {
		ipeL, _, err := ipe.EncodeDense(weight, bias, opts.Bits, opts.Scheme, opts.IPE)
		if err != nil {
			return op, err
		}
		ipeL.Program = opts.DictStore.Intern(ipeL.Program)
		ipeL.Program.Compiled() // lower the serving form at plan time
		op.ipeDense = ipeL
		ic := ipeL.Program.Cost()
		op.profiles[ImplIPE] = toProfile("ipe", scaleCost(ic), ic.StreamSymbols*2+int64(ipeL.Program.DictSize())*4)
		op.Candidates[ImplIPE] = opts.HW.Simulate(op.profiles[ImplIPE])
	}
	op.shapeKey = fmt.Sprintf("dense-m%d-k%d-b%d", m, k, batch)
	op.Impl = chooseImpl(op.Candidates, opts.Force)
	seedFromStore(&op, opts)
	op.Sim = op.Candidates[op.Impl]
	return op, nil
}

// compileGeneric models every other operator as elementwise/windowed work.
func compileGeneric(n *graph.Node, opts Options) CompiledOp {
	outElems := int64(n.OutShape.NumElements())
	var inElems int64
	for _, in := range n.Inputs {
		inElems += int64(in.OutShape.NumElements())
	}
	ops := outElems
	switch n.Kind {
	case graph.OpMaxPool, graph.OpAvgPool:
		ops = outElems * int64(n.Attrs.Pool.KH*n.Attrs.Pool.KW)
	case graph.OpGlobalAvgPool:
		ops = inElems
	case graph.OpBatchNorm:
		ops = 2 * outElems
	case graph.OpSoftmax:
		ops = 4 * outElems
	case graph.OpFlatten:
		ops = 0
	}
	prof := accel.KernelProfile{
		Name: n.Kind.String(), Adds: ops,
		SRAMAccesses: inElems + outElems,
		DRAMBytes:    (inElems + outElems) * 4,
	}
	sim := opts.HW.Simulate(prof)
	return CompiledOp{
		Node: n, Impl: ImplDense, Sim: sim,
		Candidates: map[Impl]accel.Result{ImplDense: sim},
		profiles:   map[Impl]accel.KernelProfile{ImplDense: prof},
	}
}

func chooseImpl(cands map[Impl]accel.Result, force Impl) Impl {
	if force != ImplAuto {
		if _, ok := cands[force]; ok {
			return force
		}
		// The forced implementation does not apply to this operator (e.g.
		// winograd on a strided conv): fall through to whatever fallback
		// candidate was built.
	}
	best, bestCycles := ImplDense, int64(1)<<62
	for _, im := range []Impl{ImplDense, ImplWinograd, ImplCSR, ImplFactorized, ImplIPE} {
		if r, ok := cands[im]; ok && r.Cycles < bestCycles {
			best, bestCycles = im, r.Cycles
		}
	}
	return best
}

// tunableArms returns the operator's built candidate implementations in a
// stable order — the arm set the online tuner explores. Only conv and dense
// operators are tunable; everything else returns nil.
func (op *CompiledOp) tunableArms() []Impl {
	if op.Node.Kind != graph.OpConv && op.Node.Kind != graph.OpDense {
		return nil
	}
	var arms []Impl
	for _, im := range []Impl{ImplDense, ImplWinograd, ImplCSR, ImplFactorized, ImplIPE} {
		if _, ok := op.Candidates[im]; ok {
			arms = append(arms, im)
		}
	}
	return arms
}

// seedFromStore overrides the simulator's implementation choice with a
// persisted measured winner when one exists for this operator's (shape,
// parallelism) and was built as a candidate. Only under auto selection:
// a forced plan always serves its forced implementation.
func seedFromStore(op *CompiledOp, opts Options) {
	if opts.Force != ImplAuto || opts.TuningStore == nil {
		return
	}
	arms := op.tunableArms()
	if len(arms) == 0 {
		return
	}
	names := make([]string, len(arms))
	for i, im := range arms {
		names[i] = im.String()
	}
	name, _, ok := opts.TuningStore.Best(op.shapeKey, opts.TunePar, names, autotune.DefaultPolicy().MinSamples)
	if !ok {
		return
	}
	im, ok := ImplByName(name)
	if !ok {
		return
	}
	if _, ok := op.Candidates[im]; ok {
		op.Impl = im
	}
}

// Run executes the plan on the CPU using a pooled Executor: every kernel
// writes directly into its planned arena slot (destination passing). The
// returned tensor is an independent copy, so it stays valid after the
// executor goes back to the pool; serving paths that want the zero-copy
// result should use AcquireExecutor/Executor.Run directly.
func (p *Plan) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	e := p.AcquireExecutor()
	defer p.ReleaseExecutor(e)
	out, err := e.Run(input)
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// ImplCounts tallies how many conv/dense operators chose each
// implementation — the "system-level exploration" summary.
func (p *Plan) ImplCounts() map[Impl]int {
	counts := make(map[Impl]int)
	for _, op := range p.Ops {
		if op.Node.Kind == graph.OpConv || op.Node.Kind == graph.OpDense {
			counts[op.Impl]++
		}
	}
	return counts
}

// RunBatch executes the plan over a batch larger than the graph's compiled
// batch by slicing the input along dimension 0 into compiled-batch chunks
// and running them on parallel workers. Each worker checks one Executor out
// of the plan's pool for its whole chunk stream — private arena, zero
// steady-state allocations — and copies each chunk's output into its
// disjoint region of the preallocated result, so execution is safe and
// deterministic. The input batch must be a non-empty multiple of the
// compiled batch and every non-batch dimension must match the compiled
// input shape.
//
// Intra-op parallelism composes with the chunk workers: each worker's
// executor gets GOMAXPROCS/workers shards (at least 1), and all helpers
// come from one process-wide bounded pool, so the two levels never
// oversubscribe the machine.
//
// Error semantics: the first chunk failure cancels the batch — the feeder
// stops dispatching, already-queued chunks are drained without executing,
// and after every in-flight chunk settles the error of the lowest-index
// failed chunk is returned, wrapped with that chunk's index. The partial
// result is discarded. Metrics accounting (batch counters and the
// executor checkout pairs) goes through one recorder captured at entry, so
// a concurrent metrics.Disable/Enable swap can never split one request's
// series across two recorders.
func (p *Plan) RunBatch(input *tensor.Tensor, workers int) (*tensor.Tensor, error) {
	rec := metrics.Get() // captured once: all accounting for this request lands on one recorder
	inShape := p.Graph.In.OutShape
	if input.Shape().Rank() != inShape.Rank() {
		return nil, fmt.Errorf("runtime: input rank %d != compiled input %v", input.Shape().Rank(), inShape)
	}
	for d := 1; d < inShape.Rank(); d++ {
		if input.Dim(d) != inShape[d] {
			return nil, fmt.Errorf("runtime: input shape %v does not match compiled input %v in dim %d",
				input.Shape(), inShape, d)
		}
	}
	compiled := inShape[0]
	total := input.Dim(0)
	if total == 0 {
		return nil, fmt.Errorf("runtime: empty batch")
	}
	if total%compiled != 0 {
		return nil, fmt.Errorf("runtime: batch %d is not a multiple of the compiled batch %d", total, compiled)
	}
	chunks := total / compiled
	perChunk := input.NumElements() / chunks
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	intraShards := goruntime.GOMAXPROCS(0) / workers
	if intraShards < 1 {
		intraShards = 1
	}
	// Record only after validation and clamping: rejected inputs never
	// count as dispatched batches.
	if rec != nil {
		rec.Exec.Batches.Add(1)
		rec.Exec.BatchItems.Add(int64(chunks))
	}
	outShape := p.Graph.Out.OutShape.Clone()
	outShape[0] *= chunks
	result := tensor.New(outShape...)
	perOut := result.NumElements() / chunks
	errs := make([]error, chunks)
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := p.acquireExecutor(rec)
			defer p.releaseExecutor(e, rec)
			e.SetParallelism(intraShards)
			for i := range next {
				if failed.Load() {
					continue // cancelled: drain without executing
				}
				if h := runBatchChunkHook; h != nil {
					if err := h(i); err != nil {
						errs[i] = err
						failed.Store(true)
						continue
					}
				}
				chunk := tensor.From(input.Data()[i*perChunk:(i+1)*perChunk], inShape...)
				out, err := e.Run(chunk)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				copy(result.Data()[i*perOut:(i+1)*perOut], out.Data())
			}
		}()
	}
	dispatched := 0
	for i := 0; i < chunks && !failed.Load(); i++ {
		next <- i
		dispatched++
	}
	close(next)
	wg.Wait()
	if testRunBatchDispatched != nil {
		*testRunBatchDispatched = dispatched
	}
	// Chunks execute concurrently, so several may have failed; report the
	// lowest-index failure so the error is deterministic for a given set of
	// failing chunks, not an artifact of worker timing.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runtime: batch chunk %d: %w", i, err)
		}
	}
	return result, nil
}

// runBatchChunkHook, when non-nil, runs before each chunk executes and can
// inject a per-chunk failure. Test-only (executor runs cannot be made to
// fail from outside once validation passed); nil in production, costing one
// predictable branch per chunk.
var runBatchChunkHook func(chunk int) error

// testRunBatchDispatched, when non-nil, receives the number of chunks the
// feeder dispatched before stopping. Test-only.
var testRunBatchDispatched *int

// Describe renders the plan as a report table: one row per conv/dense
// operator with its chosen implementation and modeled execution, plus a
// totals footer. This is what `inspire-sim` prints.
func (p *Plan) Describe() *report.Table {
	t := report.NewTable("execution plan",
		"op", "kind", "impl", "cycles", "energy(uJ)", "DRAM")
	for _, op := range p.Ops {
		if op.Node.Kind != graph.OpConv && op.Node.Kind != graph.OpDense {
			continue
		}
		t.AddRow(op.Node.Name, op.Node.Kind.String(), op.Impl.String(),
			report.Count(op.Sim.Cycles),
			report.Num(op.Sim.EnergyPJ/1e6),
			report.Bytes(op.Sim.DRAMBytes))
	}
	t.AddRow("TOTAL", "", "",
		report.Count(p.Total.Cycles),
		report.Num(p.Total.EnergyPJ/1e6),
		report.Bytes(p.Total.DRAMBytes))
	return t
}
