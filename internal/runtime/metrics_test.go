package runtime

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestExecutorMetrics runs a LeNet-5 plan under an enabled recorder and
// checks every metric family the executor is supposed to feed: per-layer
// series with the right kernel tags and counts, executor/arena accounting,
// pool telemetry under forced sharding, and batch accounting via RunBatch.
func TestExecutorMetrics(t *testing.T) {
	rec := EnableMetrics()
	defer DisableMetrics()

	g := nn.LeNet5(1, 3)
	plan, err := Compile(g, Options{Force: ImplIPE, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan.MetricsPrefix = "lenet5/"

	in := tensor.New(1, 1, 28, 28)
	tensor.FillGaussian(in, tensor.NewRNG(1), 1)
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := plan.Run(in); err != nil {
			t.Fatal(err)
		}
	}

	// A sharded run must touch the worker pool even on one core (the pool
	// keeps one helper token there).
	e := plan.AcquireExecutor()
	e.SetParallelism(2)
	if _, err := e.Run(in); err != nil {
		t.Fatal(err)
	}
	plan.ReleaseExecutor(e)

	big := tensor.New(4, 1, 28, 28)
	tensor.FillGaussian(big, tensor.NewRNG(2), 1)
	if _, err := plan.RunBatch(big, 2); err != nil {
		t.Fatal(err)
	}

	s := rec.Snapshot()

	if len(s.Layers) == 0 {
		t.Fatal("no layer series recorded")
	}
	// 3 Plan.Run + 1 sharded Run + 4 RunBatch chunks = 8 executions/layer.
	const wantPerLayer = runs + 1 + 4
	byName := make(map[string]metrics.LayerSnapshot)
	for _, l := range s.Layers {
		byName[l.Name] = l
	}
	conv1, ok := byName["lenet5/conv1"]
	if !ok {
		t.Fatalf("conv1 series missing; have %v", keys(byName))
	}
	if conv1.Kernel != "ipe-compiled" {
		t.Errorf("conv1 kernel = %q, want ipe-compiled (forced IPE plan)", conv1.Kernel)
	}
	if conv1.Latency.Count != wantPerLayer {
		t.Errorf("conv1 executions = %d, want %d", conv1.Latency.Count, wantPerLayer)
	}
	if conv1.Latency.MeanNs <= 0 || conv1.Latency.MaxNs < conv1.Latency.MinNs {
		t.Errorf("conv1 latency malformed: %+v", conv1.Latency)
	}
	if pool1, ok := byName["lenet5/pool1"]; !ok {
		t.Error("generic layer pool1 missing")
	} else if pool1.Kernel != "generic" {
		t.Errorf("pool1 kernel = %q, want generic", pool1.Kernel)
	}

	if s.Kernels["ipe-compiled"] == 0 {
		t.Errorf("global kernel dispatches missing ipe-compiled: %v", s.Kernels)
	}
	if s.Kernels["im2col"] == 0 {
		t.Errorf("global kernel dispatches missing im2col (IPE conv lowers): %v", s.Kernels)
	}

	ex := s.Exec
	if ex.Runs != wantPerLayer {
		t.Errorf("exec runs = %d, want %d", ex.Runs, wantPerLayer)
	}
	// 3 Plan.Run + 1 explicit acquire + 2 RunBatch workers.
	if ex.Acquires != 6 || ex.Releases != 6 {
		t.Errorf("acquires/releases = %d/%d, want 6/6", ex.Acquires, ex.Releases)
	}
	if ex.Builds == 0 || ex.Builds+ex.PoolReuses != ex.Acquires {
		t.Errorf("builds %d + reuses %d != acquires %d", ex.Builds, ex.PoolReuses, ex.Acquires)
	}
	if ex.ArenaBytesResident != ex.Builds*plan.ArenaBytes {
		t.Errorf("arena bytes = %d, want builds %d x %d", ex.ArenaBytesResident, ex.Builds, plan.ArenaBytes)
	}
	if ex.ScratchHighWater <= 0 {
		t.Errorf("scratch high water = %d, want > 0", ex.ScratchHighWater)
	}
	if ex.Batches != 1 || ex.BatchItems != 4 {
		t.Errorf("batches/items = %d/%d, want 1/4", ex.Batches, ex.BatchItems)
	}
	if ex.RunLatency.Count != wantPerLayer {
		t.Errorf("run latency count = %d, want %d", ex.RunLatency.Count, wantPerLayer)
	}

	// The forced 2-shard run entered parallel regions; every block runs
	// somewhere, and the caller always takes the final block.
	if s.Pool.Submitted == 0 || s.Pool.CallerRuns == 0 {
		t.Errorf("pool telemetry empty after sharded run: %+v", s.Pool)
	}
	if s.Pool.Submitted != s.Pool.HelperRuns+s.Pool.InlineFallbacks+s.Pool.CallerRuns {
		t.Errorf("pool accounting inconsistent: %+v", s.Pool)
	}
}

// TestExecutorMetricsDisabled checks the zero-overhead contract's
// functional half: with metrics disabled, executors carry no recorder, no
// series appear anywhere, and runs behave identically.
func TestExecutorMetricsDisabled(t *testing.T) {
	metrics.Disable()
	g := nn.LeNet5(1, 4)
	plan, err := Compile(g, Options{Force: ImplIPE, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := plan.NewExecutor()
	if e.rec != nil {
		t.Fatal("executor resolved a recorder while metrics disabled")
	}
	for _, st := range e.steps {
		if st.stats != nil {
			t.Fatalf("step %s has a layer series while disabled", st.node.Name)
		}
	}
	in := tensor.New(1, 1, 28, 28)
	tensor.FillGaussian(in, tensor.NewRNG(3), 1)
	if _, err := e.Run(in); err != nil {
		t.Fatal(err)
	}
	if s := metrics.Capture(); len(s.Layers) != 0 || s.Exec.Runs != 0 {
		t.Errorf("disabled capture not empty: %+v", s)
	}
}

func keys(m map[string]metrics.LayerSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
