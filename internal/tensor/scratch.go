package tensor

// Scratch is a grow-only float32 work-buffer arena for allocation-free
// kernel execution. Kernels Take transient buffers (im2col columns,
// partial-sum scratchpads, accumulator rows) from it instead of calling
// make; after the first pass through a workload the arena has reached its
// high-water mark and every subsequent Take is a sub-slice — zero heap
// allocations in steady state.
//
// The zero value is ready to use. A Scratch is not safe for concurrent use;
// give each executor its own.
type Scratch struct {
	buf  []float32
	used int
	peak int
}

// Take returns a slice of n floats from the arena. The contents are
// unspecified (previous uses leak through): callers must fully initialize
// every element they read. Growing reallocates the backing store without
// copying, so slices taken earlier remain valid against the old store.
func (s *Scratch) Take(n int) []float32 {
	if s.used+n > len(s.buf) {
		size := 2 * len(s.buf)
		if size < s.used+n {
			size = s.used + n
		}
		s.buf = make([]float32, size)
	}
	out := s.buf[s.used : s.used+n : s.used+n]
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
	return out
}

// Mark returns the current allocation watermark, to be passed to Release.
func (s *Scratch) Mark() int { return s.used }

// Release rewinds the arena to a watermark obtained from Mark, invalidating
// every slice taken since. Use it around per-iteration Takes inside loops so
// the footprint stays bounded by one iteration.
func (s *Scratch) Release(mark int) { s.used = mark }

// Reset rewinds the whole arena, invalidating all outstanding slices. The
// backing store is kept, so the next pass runs allocation-free.
func (s *Scratch) Reset() { s.used = 0 }

// Cap returns the capacity of the backing store in floats — the high-water
// footprint the scratch has grown to.
func (s *Scratch) Cap() int { return len(s.buf) }

// HighWater returns the peak number of floats simultaneously taken over the
// scratch's lifetime — the true working-set mark, unlike Cap, which
// includes doubling-growth slack. Release/Reset do not lower it.
func (s *Scratch) HighWater() int { return s.peak }
