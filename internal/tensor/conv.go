package tensor

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// ConvSpec describes a 2-D convolution. Weights are stored OIHW
// ([outC, inC/groups, kH, kW]); activations are NCHW unless a kernel states
// otherwise. Groups > 1 expresses grouped/depthwise convolution
// (groups == inC == outC for depthwise).
type ConvSpec struct {
	InC, OutC        int // input / output channel counts
	KH, KW           int // kernel height / width
	StrideH, StrideW int // strides
	PadH, PadW       int // symmetric zero padding
	Groups           int // channel groups; 0 or 1 means dense convolution
}

// Normalize returns the spec with Groups clamped to at least 1.
func (s ConvSpec) Normalize() ConvSpec {
	if s.Groups < 1 {
		s.Groups = 1
	}
	return s
}

// Validate checks internal consistency of the spec.
func (s ConvSpec) Validate() error {
	s = s.Normalize()
	switch {
	case s.InC <= 0 || s.OutC <= 0:
		return fmt.Errorf("tensor: conv channels must be positive: %+v", s)
	case s.KH <= 0 || s.KW <= 0:
		return fmt.Errorf("tensor: conv kernel dims must be positive: %+v", s)
	case s.StrideH <= 0 || s.StrideW <= 0:
		return fmt.Errorf("tensor: conv strides must be positive: %+v", s)
	case s.PadH < 0 || s.PadW < 0:
		return fmt.Errorf("tensor: conv padding must be non-negative: %+v", s)
	case s.InC%s.Groups != 0 || s.OutC%s.Groups != 0:
		return fmt.Errorf("tensor: conv groups %d must divide inC %d and outC %d", s.Groups, s.InC, s.OutC)
	}
	return nil
}

// OutDims returns the output spatial dimensions for an input of h×w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	oh = (h+2*s.PadH-s.KH)/s.StrideH + 1
	ow = (w+2*s.PadW-s.KW)/s.StrideW + 1
	return oh, ow
}

// WeightShape returns the OIHW weight shape for the spec.
func (s ConvSpec) WeightShape() Shape {
	s = s.Normalize()
	return Shape{s.OutC, s.InC / s.Groups, s.KH, s.KW}
}

// MACs returns the number of multiply-accumulate operations a dense direct
// convolution performs for an input of h×w with batch n.
func (s ConvSpec) MACs(n, h, w int) int64 {
	s = s.Normalize()
	oh, ow := s.OutDims(h, w)
	perOut := int64(s.InC/s.Groups) * int64(s.KH) * int64(s.KW)
	return int64(n) * int64(s.OutC) * int64(oh) * int64(ow) * perOut
}

// Conv2D computes a reference direct 2-D convolution with optional bias.
// in is NCHW [n, inC, h, w]; w is OIHW; bias may be nil or [outC].
// The result is NCHW [n, outC, oh, ow].
func Conv2D(in, weight, bias *Tensor, spec ConvSpec) *Tensor {
	spec = spec.Normalize()
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output %dx%d", oh, ow))
	}
	out := New(n, spec.OutC, oh, ow)
	Conv2DInto(out, in, weight, bias, spec)
	return out
}

// Conv2DInto is Conv2D writing into a preallocated destination of shape
// [n, outC, oh, ow]. dst must not alias in.
func Conv2DInto(dst, in, weight, bias *Tensor, spec ConvSpec) {
	Conv2DIntoPar(dst, in, weight, bias, spec, nil)
}

// Conv2DIntoPar is Conv2DInto sharded over (batch, output channel) units on
// the given parallelism context (nil par or one shard runs serially). Each
// unit owns a disjoint output plane and its accumulation loop is untouched,
// so the result is bit-identical to the serial kernel for any shard count.
func Conv2DIntoPar(dst, in, weight, bias *Tensor, spec ConvSpec, par *Par) {
	metrics.Count(metrics.KernelDirect)
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if c != spec.InC {
		panic(fmt.Sprintf("tensor: Conv2D input channels %d != spec.InC %d", c, spec.InC))
	}
	if !weight.Shape().Equal(spec.WeightShape()) {
		panic(fmt.Sprintf("tensor: Conv2D weight shape %v != expected %v", weight.Shape(), spec.WeightShape()))
	}
	oh, ow := spec.OutDims(h, w)
	// Compare every extent, not just the element count: a wrong-shaped dst
	// with the right size would silently take a garbage layout.
	if dst.Shape().Rank() != 4 || dst.Dim(0) != n || dst.Dim(1) != spec.OutC ||
		dst.Dim(2) != oh || dst.Dim(3) != ow {
		panic(fmt.Sprintf("tensor: Conv2DInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	units := n * spec.OutC
	if par.Parallel() {
		par.For(units, func(shard, lo, hi int) {
			conv2DUnits(dst, in, weight, bias, spec, oh, ow, lo, hi)
		})
		return
	}
	conv2DUnits(dst, in, weight, bias, spec, oh, ow, 0, units)
}

// conv2DUnits computes the output planes of flattened (batch, outC) units
// [lo, hi) of a direct convolution.
func conv2DUnits(dst, in, weight, bias *Tensor, spec ConvSpec, oh, ow, lo, hi int) {
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	icg := spec.InC / spec.Groups  // input channels per group
	ocg := spec.OutC / spec.Groups // output channels per group
	ind, wd, od := in.Data(), weight.Data(), dst.Data()
	for u := lo; u < hi; u++ {
		b, oc := u/spec.OutC, u%spec.OutC
		g := oc / ocg
		var bv float32
		if bias != nil {
			bv = bias.Data()[oc]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bv
				iy0 := oy*spec.StrideH - spec.PadH
				ix0 := ox*spec.StrideW - spec.PadW
				for ic := 0; ic < icg; ic++ {
					cIn := g*icg + ic
					for ky := 0; ky < spec.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						inRow := ind[((b*c+cIn)*h+iy)*w:]
						wRow := wd[((oc*icg+ic)*spec.KH+ky)*spec.KW:]
						for kx := 0; kx < spec.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += inRow[ix] * wRow[kx]
						}
					}
				}
				od[((b*spec.OutC+oc)*oh+oy)*ow+ox] = acc
			}
		}
	}
}

// Im2col lowers an NCHW input to the im2col matrix of shape
// [inC*kH*kW, oh*ow] for a single batch element b, so that convolution
// becomes a GEMM with the [outC, inC*kH*kW] weight matrix. Grouped
// convolutions lower one group at a time via Im2colGroup.
func Im2col(in *Tensor, b int, spec ConvSpec) *Tensor {
	spec = spec.Normalize()
	if spec.Groups != 1 {
		panic("tensor: Im2col requires Groups == 1; use Im2colGroup")
	}
	return Im2colGroup(in, b, 0, spec)
}

// Im2colGroup lowers the channels of group g of batch element b into a
// matrix of shape [icg*kH*kW, oh*ow], where icg = inC/groups.
func Im2colGroup(in *Tensor, b, g int, spec ConvSpec) *Tensor {
	spec = spec.Normalize()
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	icg := spec.InC / spec.Groups
	out := New(icg*spec.KH*spec.KW, oh*ow)
	Im2colGroupInto(out.Data(), in, b, g, spec)
	return out
}

// Im2colGroupInto is Im2colGroup writing into a caller-provided buffer of at
// least icg*kH*kW*oh*ow floats (e.g. from a Scratch). Every element is
// written, so the buffer need not be zeroed.
func Im2colGroupInto(dst []float32, in *Tensor, b, g int, spec ConvSpec) {
	Im2colGroupIntoPar(dst, in, b, g, spec, nil)
}

// Im2colGroupIntoPar is Im2colGroupInto sharded over output matrix rows on
// the given parallelism context (nil par or one shard runs serially). Rows
// are pure disjoint copies, so the lowering is identical for any shard
// count.
func Im2colGroupIntoPar(dst []float32, in *Tensor, b, g int, spec ConvSpec, par *Par) {
	metrics.Count(metrics.KernelIm2col)
	spec = spec.Normalize()
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	icg := spec.InC / spec.Groups
	rows := icg * spec.KH * spec.KW
	if len(dst) < rows*oh*ow {
		panic(fmt.Sprintf("tensor: Im2colGroupInto dst %d < %d", len(dst), rows*oh*ow))
	}
	if par.Parallel() {
		par.For(rows, func(shard, lo, hi int) {
			im2colRows(dst, in, b, g, spec, oh, ow, lo, hi)
		})
		return
	}
	im2colRows(dst, in, b, g, spec, oh, ow, 0, rows)
}

// im2colRows lowers im2col matrix rows [lo, hi), where row r unpacks to
// (ic, ky, kx) = (r/(KH·KW), (r/KW)%KH, r%KW).
func im2colRows(dst []float32, in *Tensor, b, g int, spec ConvSpec, oh, ow, lo, hi int) {
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	icg := spec.InC / spec.Groups
	ind, od := in.Data(), dst
	for row := lo; row < hi; row++ {
		kx := row % spec.KW
		ky := (row / spec.KW) % spec.KH
		ic := row / (spec.KW * spec.KH)
		cIn := g*icg + ic
		dst := od[row*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			iy := oy*spec.StrideH - spec.PadH + ky
			for ox := 0; ox < ow; ox++ {
				ix := ox*spec.StrideW - spec.PadW + kx
				var v float32
				if iy >= 0 && iy < h && ix >= 0 && ix < w {
					v = ind[((b*c+cIn)*h+iy)*w+ix]
				}
				dst[oy*ow+ox] = v
			}
		}
	}
}

// Conv2DIm2col computes convolution by im2col lowering followed by GEMM.
// It matches Conv2D exactly up to float accumulation order.
func Conv2DIm2col(in, weight, bias *Tensor, spec ConvSpec) *Tensor {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	out := New(n, spec.OutC, oh, ow)
	wd, od := weight.Data(), out.Data()
	cbuf := make([]float32, ocg*oh*ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			col := Im2colGroup(in, b, g, spec)
			// Weight rows for this group: [ocg, icg*kH*kW].
			wmat := wd[g*ocg*icg*spec.KH*spec.KW : (g+1)*ocg*icg*spec.KH*spec.KW]
			Gemm(wmat, col.Data(), cbuf, ocg, icg*spec.KH*spec.KW, oh*ow)
			for oc := 0; oc < ocg; oc++ {
				dst := od[((b*spec.OutC+g*ocg+oc)*oh)*ow:]
				src := cbuf[oc*oh*ow : (oc+1)*oh*ow]
				var bv float32
				if bias != nil {
					bv = bias.Data()[g*ocg+oc]
				}
				for i, v := range src {
					dst[i] = v + bv
				}
			}
		}
	}
	return out
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(in *Tensor) *Tensor {
	out := New(in.Shape()...)
	ReLUInto(out, in)
	return out
}

// ReLUInto writes max(0, x) into dst. dst may alias in (in-place ReLU).
func ReLUInto(dst, in *Tensor) {
	if dst.NumElements() != in.NumElements() {
		panic(fmt.Sprintf("tensor: ReLUInto dst %v != in %v", dst.Shape(), in.Shape()))
	}
	id, od := in.Data(), dst.Data()
	for i, v := range id {
		if v < 0 {
			od[i] = 0
		} else {
			od[i] = v
		}
	}
}

// AddTensors returns the elementwise sum of two same-shape tensors.
func AddTensors(a, b *Tensor) *Tensor {
	out := New(a.Shape()...)
	AddInto(out, a, b)
	return out
}

// AddInto writes a+b elementwise into dst. dst may alias either operand.
func AddInto(dst, a, b *Tensor) {
	if !a.Shape().Equal(b.Shape()) {
		panic(fmt.Sprintf("tensor: add shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	if dst.NumElements() != a.NumElements() {
		panic(fmt.Sprintf("tensor: AddInto dst %v != operands %v", dst.Shape(), a.Shape()))
	}
	ad, bd, od := a.Data(), b.Data(), dst.Data()
	for i := range od {
		od[i] = ad[i] + bd[i]
	}
}

// MaxPool2D computes max pooling over an NCHW tensor.
func MaxPool2D(in *Tensor, kh, kw, strideH, strideW, padH, padW int) *Tensor {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*padH-kh)/strideH + 1
	ow := (w+2*padW-kw)/strideW + 1
	out := New(n, c, oh, ow)
	MaxPool2DInto(out, in, kh, kw, strideH, strideW, padH, padW)
	return out
}

// MaxPool2DInto is MaxPool2D writing into a preallocated destination.
func MaxPool2DInto(dst, in *Tensor, kh, kw, strideH, strideW, padH, padW int) {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*padH-kh)/strideH + 1
	ow := (w+2*padW-kw)/strideW + 1
	if dst.NumElements() != n*c*oh*ow {
		panic(fmt.Sprintf("tensor: MaxPool2DInto dst %v != [%d %d %d %d]", dst.Shape(), n, c, oh, ow))
	}
	ind, od := in.Data(), dst.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(0)
					first := true
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH - padH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW - padW + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := ind[base+iy*w+ix]
							if first || v > best {
								best = v
								first = false
							}
						}
					}
					od[((b*c+ch)*oh+oy)*ow+ox] = best
				}
			}
		}
	}
}

// AvgPool2D computes average pooling over an NCHW tensor, dividing by the
// number of in-bounds taps (count_include_pad = false).
func AvgPool2D(in *Tensor, kh, kw, strideH, strideW, padH, padW int) *Tensor {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*padH-kh)/strideH + 1
	ow := (w+2*padW-kw)/strideW + 1
	out := New(n, c, oh, ow)
	AvgPool2DInto(out, in, kh, kw, strideH, strideW, padH, padW)
	return out
}

// AvgPool2DInto is AvgPool2D writing into a preallocated destination.
func AvgPool2DInto(dst, in *Tensor, kh, kw, strideH, strideW, padH, padW int) {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*padH-kh)/strideH + 1
	ow := (w+2*padW-kw)/strideW + 1
	if dst.NumElements() != n*c*oh*ow {
		panic(fmt.Sprintf("tensor: AvgPool2DInto dst %v != [%d %d %d %d]", dst.Shape(), n, c, oh, ow))
	}
	ind, od := in.Data(), dst.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					cnt := 0
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH - padH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW - padW + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += ind[base+iy*w+ix]
							cnt++
						}
					}
					var v float32
					if cnt > 0 {
						v = sum / float32(cnt)
					}
					od[((b*c+ch)*oh+oy)*ow+ox] = v
				}
			}
		}
	}
}

// GlobalAvgPool2D reduces each channel's spatial plane to its mean,
// producing an NCHW tensor with 1×1 spatial extent.
func GlobalAvgPool2D(in *Tensor) *Tensor {
	n, c := in.Dim(0), in.Dim(1)
	out := New(n, c, 1, 1)
	GlobalAvgPool2DInto(out, in)
	return out
}

// GlobalAvgPool2DInto is GlobalAvgPool2D writing into a preallocated
// [n, c, 1, 1] destination.
func GlobalAvgPool2DInto(dst, in *Tensor) {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if dst.NumElements() != n*c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2DInto dst %v != [%d %d 1 1]", dst.Shape(), n, c))
	}
	ind, od := in.Data(), dst.Data()
	hw := h * w
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			var s float64
			for i := 0; i < hw; i++ {
				s += float64(ind[base+i])
			}
			od[b*c+ch] = float32(s / float64(hw))
		}
	}
}

// BatchNorm applies inference-mode batch normalization per channel:
// y = gamma*(x-mean)/sqrt(var+eps) + beta. All parameter tensors have
// shape [c].
func BatchNorm(in, gamma, beta, mean, variance *Tensor, eps float32) *Tensor {
	out := New(in.Shape()...)
	BatchNormInto(out, in, gamma, beta, mean, variance, eps)
	return out
}

// BatchNormInto is BatchNorm writing into a preallocated destination of the
// input's shape. dst may alias in.
func BatchNormInto(dst, in, gamma, beta, mean, variance *Tensor, eps float32) {
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if dst.NumElements() != in.NumElements() {
		panic(fmt.Sprintf("tensor: BatchNormInto dst %v != in %v", dst.Shape(), in.Shape()))
	}
	ind, od := in.Data(), dst.Data()
	g, bt, mu, va := gamma.Data(), beta.Data(), mean.Data(), variance.Data()
	hw := h * w
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			scale := g[ch] / sqrt32(va[ch]+eps)
			shift := bt[ch] - mu[ch]*scale
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				od[base+i] = ind[base+i]*scale + shift
			}
		}
	}
}

func sqrt32(x float32) float32 {
	// Newton iterations on a float64 seed are exact enough for float32.
	if x <= 0 {
		return 0
	}
	y := x
	z := 0.5 * (float64(y) + float64(x)/float64(y))
	z = 0.5 * (z + float64(x)/z)
	z = 0.5 * (z + float64(x)/z)
	z = 0.5 * (z + float64(x)/z)
	return float32(z)
}

// Dense computes a fully connected layer y = W·x + b for each batch row.
// in is [n, k]; weight is [m, k]; bias may be nil or [m]. Result is [n, m].
func Dense(in, weight, bias *Tensor) *Tensor {
	out := New(in.Dim(0), weight.Dim(0))
	DenseInto(out, in, weight, bias)
	return out
}

// DenseInto is Dense writing into a preallocated [n, m] destination. dst
// must not alias in.
func DenseInto(dst, in, weight, bias *Tensor) {
	DenseIntoPar(dst, in, weight, bias, nil)
}

// DenseIntoPar is DenseInto sharded over flattened (batch, output) elements
// on the given parallelism context (nil par or one shard runs serially).
// Each output element's dot product and bias add are untouched, so the
// result is bit-identical to the serial kernel for any shard count.
func DenseIntoPar(dst, in, weight, bias *Tensor, par *Par) {
	metrics.Count(metrics.KernelGEMM)
	n, k := in.Dim(0), in.Dim(1)
	m, k2 := weight.Dim(0), weight.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: Dense inner dims differ: input %d vs weight %d", k, k2))
	}
	if dst.NumElements() != n*m {
		panic(fmt.Sprintf("tensor: DenseInto dst %v != [%d %d]", dst.Shape(), n, m))
	}
	units := n * m
	if par.Parallel() {
		par.For(units, func(shard, lo, hi int) {
			denseRange(dst, in, weight, bias, k, m, lo, hi)
		})
		return
	}
	denseRange(dst, in, weight, bias, k, m, 0, units)
}

// denseRange computes flattened (batch, output) elements [lo, hi) of a
// fully connected layer: od[b*m+i] = W[i]·x[b] + bias[i].
func denseRange(dst, in, weight, bias *Tensor, k, m, lo, hi int) {
	ind, wd, od := in.Data(), weight.Data(), dst.Data()
	for u := lo; u < hi; u++ {
		b, i := u/m, u%m
		row := wd[i*k : i*k+k]
		x := ind[b*k : b*k+k]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		if bias != nil {
			s += bias.Data()[i]
		}
		od[u] = s
	}
}

// Softmax applies a numerically stable softmax along the last dimension of a
// rank-2 tensor.
func Softmax(in *Tensor) *Tensor {
	out := New(in.Dim(0), in.Dim(1))
	SoftmaxInto(out, in)
	return out
}

// SoftmaxInto is Softmax writing into a preallocated [n, k] destination.
// dst may alias in.
func SoftmaxInto(dst, in *Tensor) {
	n, k := in.Dim(0), in.Dim(1)
	if dst.NumElements() != n*k {
		panic(fmt.Sprintf("tensor: SoftmaxInto dst %v != [%d %d]", dst.Shape(), n, k))
	}
	ind, od := in.Data(), dst.Data()
	for b := 0; b < n; b++ {
		row := ind[b*k : (b+1)*k]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			od[b*k+i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := 0; i < k; i++ {
			od[b*k+i] *= inv
		}
	}
}
