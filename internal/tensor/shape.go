// Package tensor provides the dense tensor substrate used throughout the
// INSPIRE reproduction: shapes and strides, row-major storage, reference
// implementations of the neural-network primitives (GEMM, im2col, direct
// convolution, pooling, batch normalization, activations), and a seeded
// deterministic random number generator for synthetic weights.
//
// Everything in this package is plain float32 CPU code. It is the functional
// ground truth that the encoded (IPE), sparse, and auto-tuned kernels are
// verified against, and it supplies the operation counts that the simulated
// accelerator (internal/accel) turns into cycles and energy.
package tensor

import (
	"errors"
	"fmt"
)

// Shape describes the extent of each tensor dimension, outermost first.
// A nil or empty Shape denotes a scalar.
type Shape []int

// ErrShape reports an invalid shape or a shape mismatch between operands.
var ErrShape = errors.New("tensor: shape mismatch")

// NumElements returns the total number of elements implied by the shape.
// A scalar shape has one element. Any non-positive dimension yields zero.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		if d <= 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is strictly positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Strides computes row-major (C-order) strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// String renders the shape as, e.g., "[1 3 224 224]".
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Layout identifies the memory layout of a rank-4 activation tensor.
type Layout int

// Supported activation layouts. Weights are always stored OIHW.
const (
	// NCHW stores activations as [batch, channel, height, width].
	NCHW Layout = iota
	// NHWC stores activations as [batch, height, width, channel].
	NHWC
)

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case NHWC:
		return "NHWC"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}
