package tensor

import (
	"fmt"

	"repro/internal/metrics"
)

// Register-blocked packed GEMM.
//
// Gemm's cache-blocked loop nest performs one C load, one multiply-add and
// one C store per inner iteration — the accumulator lives in memory. This
// file is the GEBP-style rework: operands are packed into cache-resident
// panels (A as [kc][mr] column-major micro-panels, B as [kc][nr] row-major
// micro-panels) and an mr x nr microkernel written as straight-line
// unrolled Go over fixed-size sub-slices drives the inner loop with all
// mr*nr accumulators in locals, so each k step costs mr+nr loads for mr*nr
// multiply-adds and C is touched once per panel instead of once per k.
//
// Edge tiles are handled by zero-padding the packed panels to full
// micro-tile width (padded lanes compute garbage that is never stored) and
// guarding the C load/store with the live tile bounds — one microkernel,
// no scalar fallback loops in the hot path.
//
// Bit-identity: for every C element the accumulation is a single chain in
// ascending k — the microkernel starts the accumulator at 0 (or, on later
// k panels, at the partial value loaded back from C) and adds a[i,p]*b[p,j]
// for p ascending, which is exactly Gemm's per-element order. Gemm's
// skip of zero A values cannot be observed either: an accumulator chain
// starting at +0 never reaches -0 by adding products, so adding the ±0
// products the skip elides leaves every bit unchanged. GemmBlocked is
// therefore bit-identical to Gemm and shares its conformance family
// ("tensor-gemm"), enforced across the full seed sweep.
const (
	gemmMR  = 4   // 4x4 microkernel rows
	gemmNR  = 4   // 4x4 microkernel columns
	gemmMR8 = 8   // 8x8 microkernel rows
	gemmNR8 = 8   // 8x8 microkernel columns
	gemmKC  = 512 // k-panel depth: A+B micro-panels stay L1/L2-resident
)

// gemmTiles picks the micro-tile size for a problem: the 8x8 kernel
// amortizes each packed B load over twice as many multiply-adds and wins
// once n offers full-width tiles; small problems stay on 4x4 where padding
// waste and C-edge guards cost less.
func gemmTiles(m, n int) (mr, nr int) {
	if m >= gemmMR8 && n >= gemmNR8 {
		return gemmMR8, gemmNR8
	}
	return gemmMR, gemmNR
}

// GemmBlocked computes C = A·B with packed panels and the register-blocked
// microkernel, drawing pack buffers from the caller's Scratch (zero heap
// allocations once the arena is warm). Bit-identical to Gemm.
func GemmBlocked(a, b, c []float32, m, k, n int, s *Scratch) {
	metrics.Count(metrics.KernelGEMM)
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: GemmBlocked buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	if m == 0 || n == 0 {
		return
	}
	mark := s.Mark()
	mr, nr := gemmTiles(m, n)
	kc := min(k, gemmKC)
	nt := (n + nr - 1) / nr
	pb := s.Take(nt * kc * nr)
	pa := s.Take(kc * mr)
	for p0 := 0; p0 < k || p0 == 0; p0 += kc {
		kb := min(kc, k-p0)
		if p0 > 0 && kb <= 0 {
			break
		}
		packB(pb, b, n, p0, kb, kc, nr)
		gemmRowRange(a, c, pa, pb, m, k, n, p0, kb, kc, 0, m, mr, nr)
	}
	s.Release(mark)
}

// GemmBlockedPar is GemmBlocked sharded over mr-aligned row blocks of C on
// the given parallelism context. B panels are packed once into shard 0's
// scratch before the parallel region (all shards read them; packing is
// never concurrent with region execution), each shard packs its own A
// micro-panels. Row blocking does not change any element's accumulation
// chain, so results are bit-identical to GemmBlocked and Gemm for any
// shard count.
func GemmBlockedPar(a, b, c []float32, m, k, n int, par *Par) {
	metrics.Count(metrics.KernelGEMM)
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: GemmBlockedPar buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	if !par.Parallel() {
		GemmBlocked(a, b, c, m, k, n, par.Scratch(0))
		return
	}
	if m == 0 || n == 0 {
		return
	}
	mr, nr := gemmTiles(m, n)
	kc := min(k, gemmKC)
	nt := (n + nr - 1) / nr
	panels := (k + kc - 1) / kc
	s0 := par.Scratch(0)
	mark := s0.Mark()
	pbAll := s0.Take(panels * nt * kc * nr)
	for pi := 0; pi < panels; pi++ {
		p0 := pi * kc
		packB(pbAll[pi*nt*kc*nr:(pi+1)*nt*kc*nr], b, n, p0, min(kc, k-p0), kc, nr)
	}
	par.ForBlocks(m, mr, func(shard, lo, hi int) {
		s := par.Scratch(shard)
		smark := s.Mark()
		pa := s.Take(kc * mr)
		for pi := 0; pi < panels; pi++ {
			p0 := pi * kc
			gemmRowRange(a, c, pa, pbAll[pi*nt*kc*nr:(pi+1)*nt*kc*nr],
				m, k, n, p0, min(kc, k-p0), kc, lo, hi, mr, nr)
		}
		s.Release(smark)
	})
	s0.Release(mark)
}

// gemmRowRange runs one k panel [p0, p0+kb) over C rows [lo, hi): packs
// each mr-row micro-panel of A and sweeps the packed B tiles through the
// microkernel. Accumulation resumes from C when p0 > 0.
func gemmRowRange(a, c, pa, pb []float32, m, k, n, p0, kb, kc, lo, hi, mr, nr int) {
	for i0 := lo; i0 < hi; i0 += mr {
		mh := min(mr, hi-i0)
		packA(pa, a, k, i0, mh, p0, kb, mr)
		for j0 := 0; j0 < n; j0 += nr {
			nw := min(nr, n-j0)
			tile := pb[(j0/nr)*kc*nr:]
			if mr == gemmMR8 {
				micro8x8(pa, tile, kb, c, n, i0, j0, mh, nw, p0 > 0)
			} else {
				micro4x4(pa, tile, kb, c, n, i0, j0, mh, nw, p0 > 0)
			}
		}
	}
}

// packA packs the mh-row micro-panel of A starting at row i0, k range
// [p0, p0+kb), into pa as [kb][mr] (column-major micro-panel), zero-padding
// rows past mh.
func packA(pa, a []float32, k, i0, mh, p0, kb, mr int) {
	for p := 0; p < kb; p++ {
		d := pa[p*mr : p*mr+mr : p*mr+mr]
		for ii := 0; ii < mh; ii++ {
			d[ii] = a[(i0+ii)*k+p0+p]
		}
		for ii := mh; ii < mr; ii++ {
			d[ii] = 0
		}
	}
}

// packB packs the k range [p0, p0+kb) of every nr-column tile of B into pb
// as consecutive [kc][nr] micro-panels (tile stride kc*nr), zero-padding
// columns past n.
func packB(pb, b []float32, n, p0, kb, kc, nr int) {
	nt := (n + nr - 1) / nr
	for jt := 0; jt < nt; jt++ {
		j0 := jt * nr
		nw := min(nr, n-j0)
		dst := pb[jt*kc*nr:]
		for p := 0; p < kb; p++ {
			src := b[(p0+p)*n+j0:]
			d := dst[p*nr : p*nr+nr : p*nr+nr]
			for jj := 0; jj < nw; jj++ {
				d[jj] = src[jj]
			}
			for jj := nw; jj < nr; jj++ {
				d[jj] = 0
			}
		}
	}
}

// packBT is packB for an implicitly transposed source: wt[p][j] = w[j*k+p]
// for the row-major [n, k] matrix w (a dense layer's weights), so the
// dense GEMM path never materializes the transpose.
func packBT(pb, w []float32, n, k, p0, kb, kc, nr int) {
	nt := (n + nr - 1) / nr
	for jt := 0; jt < nt; jt++ {
		j0 := jt * nr
		nw := min(nr, n-j0)
		dst := pb[jt*kc*nr:]
		for jj := 0; jj < nw; jj++ {
			src := w[(j0+jj)*k+p0:]
			for p := 0; p < kb; p++ {
				dst[p*nr+jj] = src[p]
			}
		}
		for jj := nw; jj < nr; jj++ {
			for p := 0; p < kb; p++ {
				dst[p*nr+jj] = 0
			}
		}
	}
}

// micro4x4 is the 4x4 register microkernel: 16 accumulators in locals, one
// straight-line unrolled multiply-add block per k step (8 loads per 16
// multiply-adds). accum resumes the chains from C's current values (later
// k panels); otherwise chains start at 0. Only the mh x nw live region of
// C is loaded or stored.
func micro4x4(pa, pb []float32, kb int, c []float32, ldc, i0, j0, mh, nw int, accum bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	if accum {
		r0 := c[i0*ldc+j0:]
		switch {
		case mh == gemmMR && nw == gemmNR:
			r1 := c[(i0+1)*ldc+j0:]
			r2 := c[(i0+2)*ldc+j0:]
			r3 := c[(i0+3)*ldc+j0 : (i0+3)*ldc+j0+4]
			c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
			c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
			c20, c21, c22, c23 = r2[0], r2[1], r2[2], r2[3]
			c30, c31, c32, c33 = r3[0], r3[1], r3[2], r3[3]
		default:
			acc := [gemmMR][gemmNR]float32{}
			for ii := 0; ii < mh; ii++ {
				row := c[(i0+ii)*ldc+j0:]
				for jj := 0; jj < nw; jj++ {
					acc[ii][jj] = row[jj]
				}
			}
			c00, c01, c02, c03 = acc[0][0], acc[0][1], acc[0][2], acc[0][3]
			c10, c11, c12, c13 = acc[1][0], acc[1][1], acc[1][2], acc[1][3]
			c20, c21, c22, c23 = acc[2][0], acc[2][1], acc[2][2], acc[2][3]
			c30, c31, c32, c33 = acc[3][0], acc[3][1], acc[3][2], acc[3][3]
		}
	}
	for p := 0; p < kb; p++ {
		bv := pb[p*gemmNR : p*gemmNR+gemmNR : p*gemmNR+gemmNR]
		av := pa[p*gemmMR : p*gemmMR+gemmMR : p*gemmMR+gemmMR]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		a0 := av[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := av[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2 := av[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		a3 := av[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	if mh == gemmMR && nw == gemmNR {
		r0 := c[i0*ldc+j0:]
		r1 := c[(i0+1)*ldc+j0:]
		r2 := c[(i0+2)*ldc+j0:]
		r3 := c[(i0+3)*ldc+j0 : (i0+3)*ldc+j0+4]
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
		r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
		r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
		return
	}
	acc := [gemmMR][gemmNR]float32{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for ii := 0; ii < mh; ii++ {
		row := c[(i0+ii)*ldc+j0:]
		for jj := 0; jj < nw; jj++ {
			row[jj] = acc[ii][jj]
		}
	}
}

// micro8x8 is the 8x8 microkernel used for problems with full-width tiles:
// the accumulator block lives in a stack-resident [8][8] array (the
// compiler cannot keep 64 floats in registers, but the array stays hot in
// L1 and store-forwards), while the 8 B values of each k step are loaded
// once into locals and amortized over 8 unrolled rows — 16 loads per 64
// multiply-adds, twice the arithmetic density of micro4x4. Accumulation
// chains are per-element ascending-k exactly as micro4x4's, so tile-size
// choice never changes results.
func micro8x8(pa, pb []float32, kb int, c []float32, ldc, i0, j0, mh, nw int, accum bool) {
	var acc [gemmMR8][gemmNR8]float32
	if accum {
		for ii := 0; ii < mh; ii++ {
			row := c[(i0+ii)*ldc+j0:]
			for jj := 0; jj < nw; jj++ {
				acc[ii][jj] = row[jj]
			}
		}
	}
	for p := 0; p < kb; p++ {
		bv := pb[p*gemmNR8 : p*gemmNR8+gemmNR8 : p*gemmNR8+gemmNR8]
		av := pa[p*gemmMR8 : p*gemmMR8+gemmMR8 : p*gemmMR8+gemmMR8]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		b4, b5, b6, b7 := bv[4], bv[5], bv[6], bv[7]
		for ii := 0; ii < gemmMR8; ii++ {
			ai := av[ii]
			r := &acc[ii]
			r[0] += ai * b0
			r[1] += ai * b1
			r[2] += ai * b2
			r[3] += ai * b3
			r[4] += ai * b4
			r[5] += ai * b5
			r[6] += ai * b6
			r[7] += ai * b7
		}
	}
	for ii := 0; ii < mh; ii++ {
		row := c[(i0+ii)*ldc+j0:]
		for jj := 0; jj < nw; jj++ {
			row[jj] = acc[ii][jj]
		}
	}
}

// DenseGemmInto computes the dense layer dst = in·Wᵀ + bias with the
// packed microkernel GEMM, packing W's micro-panels straight from its
// row-major layout (no transpose materialization). Per element the product
// order and accumulation chain equal DenseInto's dot products, so this is
// bit-identical to the tensor-dense family's kernels.
func DenseGemmInto(dst, in, w, bias *Tensor, s *Scratch) {
	nb, k := in.Dim(0), in.Dim(1)
	m := w.Dim(0)
	checkDense(dst, in, w, bias, nb, k, m)
	metrics.Count(metrics.KernelGEMM)
	if nb == 0 || m == 0 {
		return
	}
	a, wd, c := in.Data(), w.Data(), dst.Data()
	mark := s.Mark()
	mr, nr := gemmTiles(nb, m)
	kc := min(k, gemmKC)
	nt := (m + nr - 1) / nr
	pb := s.Take(nt * kc * nr)
	pa := s.Take(kc * mr)
	for p0 := 0; p0 < k || p0 == 0; p0 += kc {
		kb := min(kc, k-p0)
		if p0 > 0 && kb <= 0 {
			break
		}
		packBT(pb, wd, m, k, p0, kb, kc, nr)
		gemmRowRange(a, c, pa, pb, nb, k, m, p0, kb, kc, 0, nb, mr, nr)
	}
	s.Release(mark)
	addBiasRows(dst, bias, nb, m)
}

// DenseGemmIntoPar is DenseGemmInto sharded over mr-aligned batch-row
// blocks (bit-identical to DenseGemmInto for any shard count; W panels are
// staged once in shard 0's scratch).
func DenseGemmIntoPar(dst, in, w, bias *Tensor, par *Par) {
	nb, k := in.Dim(0), in.Dim(1)
	m := w.Dim(0)
	checkDense(dst, in, w, bias, nb, k, m)
	if !par.Parallel() {
		DenseGemmInto(dst, in, w, bias, par.Scratch(0))
		return
	}
	metrics.Count(metrics.KernelGEMM)
	if nb == 0 || m == 0 {
		return
	}
	a, wd, c := in.Data(), w.Data(), dst.Data()
	mr, nr := gemmTiles(nb, m)
	kc := min(k, gemmKC)
	nt := (m + nr - 1) / nr
	panels := (k + kc - 1) / kc
	s0 := par.Scratch(0)
	mark := s0.Mark()
	pbAll := s0.Take(panels * nt * kc * nr)
	for pi := 0; pi < panels; pi++ {
		p0 := pi * kc
		packBT(pbAll[pi*nt*kc*nr:(pi+1)*nt*kc*nr], wd, m, k, p0, min(kc, k-p0), kc, nr)
	}
	par.ForBlocks(nb, mr, func(shard, lo, hi int) {
		s := par.Scratch(shard)
		smark := s.Mark()
		pa := s.Take(kc * mr)
		for pi := 0; pi < panels; pi++ {
			p0 := pi * kc
			gemmRowRange(a, c, pa, pbAll[pi*nt*kc*nr:(pi+1)*nt*kc*nr],
				nb, k, m, p0, min(kc, k-p0), kc, lo, hi, mr, nr)
		}
		s.Release(smark)
	})
	s0.Release(mark)
	addBiasRows(dst, bias, nb, m)
}

// Conv2DIm2colBlocked is Conv2DIm2col with the packed microkernel GEMM in
// place of the cache-blocked one. GemmBlocked is bit-identical to Gemm, so
// this stays in the tensor-im2col conformance family.
func Conv2DIm2colBlocked(in, weight, bias *Tensor, spec ConvSpec, s *Scratch) *Tensor {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	out := New(n, spec.OutC, oh, ow)
	wd, od := weight.Data(), out.Data()
	cbuf := make([]float32, ocg*oh*ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			col := Im2colGroup(in, b, g, spec)
			wmat := wd[g*ocg*icg*spec.KH*spec.KW : (g+1)*ocg*icg*spec.KH*spec.KW]
			GemmBlocked(wmat, col.Data(), cbuf, ocg, icg*spec.KH*spec.KW, oh*ow, s)
			for oc := 0; oc < ocg; oc++ {
				dst := od[((b*spec.OutC+g*ocg+oc)*oh)*ow:]
				src := cbuf[oc*oh*ow : (oc+1)*oh*ow]
				var bv float32
				if bias != nil {
					bv = bias.Data()[g*ocg+oc]
				}
				for i, v := range src {
					dst[i] = v + bv
				}
			}
		}
	}
	return out
}

// checkDense validates the dense-layer operand shapes shared by the GEMM
// dense paths.
func checkDense(dst, in, w, bias *Tensor, nb, k, m int) {
	if w.Dim(1) != k {
		panic(fmt.Sprintf("tensor: dense weight %v does not match input width %d", w.Shape(), k))
	}
	if dst.NumElements() != nb*m {
		panic(fmt.Sprintf("tensor: dense dst %v != [%d %d]", dst.Shape(), nb, m))
	}
	if bias != nil && bias.NumElements() != m {
		panic(fmt.Sprintf("tensor: dense bias %v != [%d]", bias.Shape(), m))
	}
}

// addBiasRows adds the per-output bias to every row of the [nb, m] result.
func addBiasRows(dst, bias *Tensor, nb, m int) {
	if bias == nil {
		return
	}
	bd, od := bias.Data(), dst.Data()
	for r := 0; r < nb; r++ {
		row := od[r*m : r*m+m]
		for i, bv := range bd {
			row[i] += bv
		}
	}
}
