package tensor

import "testing"

func TestScratchTakeGrowsWithoutInvalidating(t *testing.T) {
	var s Scratch
	a := s.Take(4)
	for i := range a {
		a[i] = float32(i + 1)
	}
	b := s.Take(1024) // forces growth; a must stay valid
	if len(b) != 1024 {
		t.Fatalf("Take(1024) returned %d elements", len(b))
	}
	for i := range a {
		if a[i] != float32(i+1) {
			t.Fatalf("earlier slice invalidated by growth at %d: %v", i, a[i])
		}
	}
	if s.Cap() < 1028 {
		t.Fatalf("cap %d < 1028 after growth", s.Cap())
	}
}

func TestScratchTakeSlicesAreDisjoint(t *testing.T) {
	var s Scratch
	s.Take(64) // warm
	s.Reset()
	a := s.Take(8)
	b := s.Take(8)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		if b[i] == 1 {
			t.Fatalf("Take slices overlap at %d", i)
		}
	}
	// Full slice expressions: appending to a must not spill into b.
	a = append(a, 7)
	if b[0] == 7 {
		t.Fatal("append to a Take slice clobbered the next slice")
	}
}

func TestScratchMarkRelease(t *testing.T) {
	var s Scratch
	s.Take(16)
	m := s.Mark()
	s.Take(100)
	s.Release(m)
	if got := s.Mark(); got != m {
		t.Fatalf("Release did not rewind: mark %d != %d", got, m)
	}
	// After a warm-up pass, repeated take/release cycles must not allocate.
	s.Reset()
	s.Take(256)
	s.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		mark := s.Mark()
		s.Take(64)
		s.Take(128)
		s.Release(mark)
	})
	if allocs != 0 {
		t.Fatalf("warm scratch allocates %.1f times per cycle, want 0", allocs)
	}
}
