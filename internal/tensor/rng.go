package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-seeded xoshiro256**). Every synthetic workload in the
// reproduction derives from an RNG with a fixed seed so that all tables and
// figures are exactly reproducible run to run.
type RNG struct {
	s [4]uint64
	// cached spare Gaussian deviate for the Box-Muller polar method
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (cannot occur with SplitMix64, but be safe).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillGaussian fills t with N(0, sigma^2) deviates.
func FillGaussian(t *Tensor, r *RNG, sigma float64) {
	d := t.Data()
	for i := range d {
		d[i] = float32(r.NormFloat64() * sigma)
	}
}

// FillUniform fills t with uniform deviates in [lo, hi).
func FillUniform(t *Tensor, r *RNG, lo, hi float64) {
	d := t.Data()
	for i := range d {
		d[i] = float32(lo + r.Float64()*(hi-lo))
	}
}

// KaimingStd returns the He/Kaiming initialization standard deviation for a
// layer with the given fan-in: sqrt(2/fanIn).
func KaimingStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 1
	}
	return math.Sqrt(2 / float64(fanIn))
}
