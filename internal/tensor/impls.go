package tensor

// Registration shims for the conformance harness (internal/conformance):
// every way this package can compute a convolution or a fully connected
// layer, enumerated so the differential driver discovers new kernels
// without being edited. Variants within one ConvImpl/DenseImpl family are
// required to be bit-identical to each other (they share the same
// per-element accumulation order); different families only agree up to
// float rounding.

// ConvImpl is one registered implementation family of 2-D convolution.
// Every Variant of a family must produce bit-identical outputs.
type ConvImpl struct {
	Family   string
	Variants []ConvVariant
}

// ConvVariant is one execution path of a convolution family. F computes the
// convolution of in with weight/bias under spec into dst (full output
// shape). Par-using variants are exercised at several shard counts by the
// harness; par is never nil.
type ConvVariant struct {
	Name string
	// UsesPar reports whether F's result path runs through the sharded
	// kernel (so the harness re-runs it per shard count).
	UsesPar bool
	F       func(dst, in, weight, bias *Tensor, spec ConvSpec, par *Par)
}

// ConvImpls enumerates this package's convolution families: the direct
// 7-loop kernel (serial, destination-passing, and sharded — one family,
// bit-identical by construction) and the im2col+GEMM lowering (its own
// family; different accumulation order).
func ConvImpls() []ConvImpl {
	return []ConvImpl{
		{
			Family: "tensor-direct",
			Variants: []ConvVariant{
				{Name: "alloc", F: func(dst, in, w, b *Tensor, spec ConvSpec, par *Par) {
					copy(dst.Data(), Conv2D(in, w, b, spec).Data())
				}},
				{Name: "into", F: func(dst, in, w, b *Tensor, spec ConvSpec, par *Par) {
					Conv2DInto(dst, in, w, b, spec)
				}},
				{Name: "into-par", UsesPar: true, F: func(dst, in, w, b *Tensor, spec ConvSpec, par *Par) {
					Conv2DIntoPar(dst, in, w, b, spec, par)
				}},
			},
		},
		{
			Family: "tensor-im2col",
			Variants: []ConvVariant{
				{Name: "alloc", F: func(dst, in, w, b *Tensor, spec ConvSpec, par *Par) {
					copy(dst.Data(), Conv2DIm2col(in, w, b, spec).Data())
				}},
				{Name: "blocked", F: func(dst, in, w, b *Tensor, spec ConvSpec, par *Par) {
					copy(dst.Data(), Conv2DIm2colBlocked(in, w, b, spec, par.Scratch(0)).Data())
				}},
			},
		},
	}
}

// DenseImpl is one registered implementation family of the fully connected
// layer, mirroring ConvImpl.
type DenseImpl struct {
	Family   string
	Variants []DenseVariant
}

// DenseVariant is one execution path of a dense family. F computes
// y = x·Wᵀ + b for the [n, k] input into the [n, m] dst.
type DenseVariant struct {
	Name    string
	UsesPar bool
	F       func(dst, in, weight, bias *Tensor, par *Par)
}

// DenseImpls enumerates the dense families: the per-output dot-product
// kernel (serial and sharded, one family) and the GEMM lowerings (its own
// family: cache-blocked GEMM on the materialized transpose plus the packed
// register-microkernel paths, all bit-identical).
func DenseImpls() []DenseImpl {
	return []DenseImpl{
		{
			Family: "tensor-dense",
			Variants: []DenseVariant{
				{Name: "alloc", F: func(dst, in, w, b *Tensor, par *Par) {
					copy(dst.Data(), Dense(in, w, b).Data())
				}},
				{Name: "into", F: func(dst, in, w, b *Tensor, par *Par) {
					DenseInto(dst, in, w, b)
				}},
				{Name: "into-par", UsesPar: true, F: func(dst, in, w, b *Tensor, par *Par) {
					DenseIntoPar(dst, in, w, b, par)
				}},
			},
		},
		{
			Family: "tensor-gemm",
			Variants: []DenseVariant{
				{Name: "serial", F: func(dst, in, w, b *Tensor, par *Par) {
					denseViaGemm(dst, in, w, b, nil)
				}},
				{Name: "par", UsesPar: true, F: func(dst, in, w, b *Tensor, par *Par) {
					denseViaGemm(dst, in, w, b, par)
				}},
				{Name: "blocked", F: func(dst, in, w, b *Tensor, par *Par) {
					DenseGemmInto(dst, in, w, b, par.Scratch(0))
				}},
				{Name: "blocked-par", UsesPar: true, F: func(dst, in, w, b *Tensor, par *Par) {
					DenseGemmIntoPar(dst, in, w, b, par)
				}},
			},
		},
	}
}

// denseViaGemm computes the dense layer as the blocked GEMM x·Wᵀ followed
// by a bias add. The serial and sharded GEMM are bit-identical (disjoint
// row ranges, unchanged per-element order), so both live in one family.
func denseViaGemm(dst, in, w, b *Tensor, par *Par) {
	n, k := in.Dim(0), in.Dim(1)
	m := w.Dim(0)
	wt := Transpose(w) // [k, m]
	if par.Parallel() {
		GemmPar(in.Data(), wt.Data(), dst.Data(), n, k, m, par)
	} else {
		Gemm(in.Data(), wt.Data(), dst.Data(), n, k, m)
	}
	if b != nil {
		bd, od := b.Data(), dst.Data()
		for r := 0; r < n; r++ {
			for i := 0; i < m; i++ {
				od[r*m+i] += bd[i]
			}
		}
	}
}
