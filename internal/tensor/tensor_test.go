package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{nil, 1},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{1, 3, 224, 224}, 150528},
		{Shape{0, 3}, 0},
		{Shape{-1, 3}, 0},
	}
	for _, c := range cases {
		if got := c.shape.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeStridesRowMajor(t *testing.T) {
	s := Shape{2, 3, 4}
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("Strides(%v) = %v, want %v", s, st, want)
		}
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	s := Shape{1, 2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c[0] = 9
	if s.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if s.Equal(Shape{1, 2}) {
		t.Fatal("shapes of different rank must not be equal")
	}
}

func TestNewAndAtSet(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := x.At(0, 0); got != 0 {
		t.Fatalf("fresh tensor should be zero, got %v", got)
	}
	if x.Offset(1, 2) != 5 {
		t.Fatalf("Offset(1,2) = %d, want 5", x.Offset(1, 2))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSharesStorage(t *testing.T) {
	backing := []float32{1, 2, 3, 4}
	x := From(backing, 2, 2)
	backing[3] = 42
	if x.At(1, 1) != 42 {
		t.Fatal("From must wrap the slice without copying")
	}
}

func TestFromLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	From([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	x.Set(5, 1, 3)
	y := x.Reshape(3, 4)
	if y.At(2, 1) != 5 {
		t.Fatalf("reshape must preserve row-major order: got %v", y.At(2, 1))
	}
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Fatal("reshape must share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(2, 2).Fill(3)
	y := x.Clone()
	y.Set(8, 0, 0)
	if x.At(0, 0) != 3 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAddAndScale(t *testing.T) {
	a := New(2, 2).Fill(1)
	b := New(2, 2).Fill(2)
	a.Add(b).Scale(3)
	for _, v := range a.Data() {
		if v != 9 {
			t.Fatalf("got %v, want 9", v)
		}
	}
}

func TestApply(t *testing.T) {
	a := From([]float32{-1, 2, -3, 4}, 4)
	a.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	want := []float32{0, 2, 0, 4}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("Apply: got %v, want %v", a.Data(), want)
		}
	}
}

func TestSparsityAndCountNonZero(t *testing.T) {
	a := From([]float32{0, 1, 0, 2}, 4)
	if a.CountNonZero() != 2 {
		t.Fatalf("CountNonZero = %d, want 2", a.CountNonZero())
	}
	if a.Sparsity() != 0.5 {
		t.Fatalf("Sparsity = %v, want 0.5", a.Sparsity())
	}
}

func TestMaxAbsAndSum(t *testing.T) {
	a := From([]float32{-5, 1, 3}, 3)
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v, want 5", a.MaxAbs())
	}
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v, want -1", a.Sum())
	}
}

func TestAllClose(t *testing.T) {
	a := From([]float32{1, 2}, 2)
	b := From([]float32{1.0000001, 2.0000001}, 2)
	if !AllClose(a, b, 1e-5, 1e-5) {
		t.Fatal("nearly equal tensors should be close")
	}
	c := From([]float32{1, 3}, 2)
	if AllClose(a, c, 1e-5, 1e-5) {
		t.Fatal("different tensors should not be close")
	}
	nan := From([]float32{float32(math.NaN()), 2}, 2)
	if AllClose(nan, nan, 1, 1) {
		t.Fatal("NaN must never compare close")
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	r := NewRNG(1)
	x := New(2, 3, 4, 5)
	FillGaussian(x, r, 1)
	y := NHWCToNCHW(NCHWToNHWC(x))
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("NCHW→NHWC→NCHW must be the identity")
	}
}

func TestNCHWToNHWCValues(t *testing.T) {
	x := New(1, 2, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	y := NCHWToNHWC(x)
	// x[0, c, h, w] = ((0*2+c)*2+h)*2+w; y[0, h, w, c] must match.
	for c := 0; c < 2; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				if y.At(0, h, w, c) != x.At(0, c, h, w) {
					t.Fatalf("layout transform wrong at c=%d h=%d w=%d", c, h, w)
				}
			}
		}
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n, c := 1+r.Intn(2), 1+r.Intn(5)
		h, w := 1+r.Intn(6), 1+r.Intn(6)
		x := New(n, c, h, w)
		FillGaussian(x, r, 1)
		return MaxAbsDiff(x, NHWCToNCHW(NCHWToNHWC(x))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutString(t *testing.T) {
	if NCHW.String() != "NCHW" || NHWC.String() != "NHWC" {
		t.Fatal("layout names wrong")
	}
}
