package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFillGaussianAndUniform(t *testing.T) {
	r := NewRNG(2)
	g := New(1000)
	FillGaussian(g, r, 2)
	if g.MaxAbs() == 0 {
		t.Fatal("FillGaussian left the tensor zero")
	}
	u := New(1000)
	FillUniform(u, r, 3, 5)
	for _, v := range u.Data() {
		if v < 3 || v >= 5 {
			t.Fatalf("uniform value %v outside [3,5)", v)
		}
	}
}

func TestKaimingStd(t *testing.T) {
	if got := KaimingStd(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("KaimingStd(2) = %v, want 1", got)
	}
	if KaimingStd(0) != 1 {
		t.Fatal("KaimingStd must not divide by zero")
	}
}
