package tensor

import (
	"testing"

	"repro/internal/parallel"
)

// forcedPar builds a Par over a pool with real helper tokens, so these
// tests exercise cross-goroutine execution even on single-core machines
// (where the shared pool would mostly run shards inline).
func forcedPar(shards int) *Par {
	return NewPar(parallel.NewPool(shards), shards)
}

func randTensor(seed uint64, shape ...int) *Tensor {
	t := New(shape...)
	FillGaussian(t, NewRNG(seed), 1)
	return t
}

func expectBitIdentical(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v != serial %v (bit-exact required)", name, i, got[i], want[i])
		}
	}
}

// TestGemmParBitIdentical checks GemmPar against Gemm for shard counts
// around and beyond the row count, including odd sizes that straddle the
// cache-block boundary.
func TestGemmParBitIdentical(t *testing.T) {
	for _, dims := range [][3]int{{1, 7, 5}, {65, 130, 67}, {128, 64, 32}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(1, m, k)
		b := randTensor(2, k, n)
		want := make([]float32, m*n)
		Gemm(a.Data(), b.Data(), want, m, k, n)
		for _, shards := range []int{1, 2, 3, 8, m + 3} {
			got := make([]float32, m*n)
			GemmPar(a.Data(), b.Data(), got, m, k, n, forcedPar(shards))
			expectBitIdentical(t, "GemmPar", got, want)
		}
	}
}

// TestConv2DIntoParBitIdentical checks the sharded direct convolution
// against the serial kernel, covering grouped and strided specs.
func TestConv2DIntoParBitIdentical(t *testing.T) {
	specs := []ConvSpec{
		{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 4},
	}
	for _, spec := range specs {
		in := randTensor(3, 2, spec.InC, 9, 9)
		w := randTensor(4, spec.WeightShape()...)
		bias := randTensor(5, spec.OutC)
		oh, ow := spec.Normalize().OutDims(9, 9)
		want := New(2, spec.OutC, oh, ow)
		Conv2DInto(want, in, w, bias, spec)
		for _, shards := range []int{2, 5, 64} {
			got := New(2, spec.OutC, oh, ow)
			Conv2DIntoPar(got, in, w, bias, spec, forcedPar(shards))
			expectBitIdentical(t, "Conv2DIntoPar", got.Data(), want.Data())
		}
	}
}

// TestConv2DIntoRejectsWrongShapeDst pins the full-shape destination check:
// a dst with the right element count but transposed extents must panic
// instead of silently writing a garbage layout.
func TestConv2DIntoRejectsWrongShapeDst(t *testing.T) {
	spec := ConvSpec{InC: 2, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := randTensor(6, 1, 2, 6, 6)
	w := randTensor(7, spec.WeightShape()...)
	// Correct shape is [1 4 6 6]; same element count, wrong layout.
	bad := New(4, 1, 6, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("Conv2DInto accepted a wrong-shaped dst with matching element count")
		}
	}()
	Conv2DInto(bad, in, w, nil, spec)
}

// TestDenseIntoParBitIdentical checks the sharded fully connected kernel
// against the serial one, with and without bias.
func TestDenseIntoParBitIdentical(t *testing.T) {
	in := randTensor(8, 3, 50)
	w := randTensor(9, 20, 50)
	bias := randTensor(10, 20)
	for _, b := range []*Tensor{nil, bias} {
		want := New(3, 20)
		DenseInto(want, in, w, b)
		for _, shards := range []int{2, 7, 100} {
			got := New(3, 20)
			DenseIntoPar(got, in, w, b, forcedPar(shards))
			expectBitIdentical(t, "DenseIntoPar", got.Data(), want.Data())
		}
	}
}

// TestIm2colGroupIntoParBitIdentical checks the sharded lowering against
// the serial one for a grouped spec.
func TestIm2colGroupIntoParBitIdentical(t *testing.T) {
	spec := ConvSpec{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2}
	in := randTensor(11, 2, 4, 7, 7)
	oh, ow := spec.OutDims(7, 7)
	size := (spec.InC / spec.Groups) * spec.KH * spec.KW * oh * ow
	for g := 0; g < spec.Groups; g++ {
		want := make([]float32, size)
		Im2colGroupInto(want, in, 1, g, spec)
		for _, shards := range []int{2, 4, 32} {
			got := make([]float32, size)
			Im2colGroupIntoPar(got, in, 1, g, spec, forcedPar(shards))
			expectBitIdentical(t, "Im2colGroupIntoPar", got, want)
		}
	}
}

// TestParSerialFallbacks pins the serial conventions: a nil Par and a
// one-shard Par both take the closure-free serial path.
func TestParSerialFallbacks(t *testing.T) {
	var nilPar *Par
	if nilPar.Parallel() {
		t.Fatal("nil Par reports Parallel()")
	}
	if nilPar.Shards() != 1 {
		t.Fatalf("nil Par Shards() = %d, want 1", nilPar.Shards())
	}
	one := forcedPar(1)
	if one.Parallel() {
		t.Fatal("one-shard Par reports Parallel()")
	}
	one.SetShards(4)
	if !one.Parallel() || one.Shards() != 4 {
		t.Fatalf("SetShards(4): Parallel()=%v Shards()=%d", one.Parallel(), one.Shards())
	}
	for i := 0; i < 4; i++ {
		if one.Scratch(i) == nil {
			t.Fatalf("shard %d has no scratch after SetShards", i)
		}
		if i > 0 && one.Scratch(i) == one.Scratch(0) {
			t.Fatalf("shards 0 and %d share a scratch", i)
		}
	}
}

// TestParScratchWarmAcrossReset checks Reset keeps the grown backing
// stores (the allocation-free steady-state contract).
func TestParScratchWarmAcrossReset(t *testing.T) {
	p := forcedPar(2)
	p.Scratch(1).Take(1000)
	p.Reset()
	if got := p.Scratch(1).Cap(); got < 1000 {
		t.Fatalf("Reset dropped warm scratch store: cap %d", got)
	}
	if got := p.Scratch(1).Mark(); got != 0 {
		t.Fatalf("Reset left watermark %d", got)
	}
}
