package tensor

import (
	"testing"
	"testing/quick"
)

// gemmNaive is the obviously-correct triple loop used as the oracle for the
// blocked Gemm.
func gemmNaive(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += a[i*k+p] * b[p*n+j]
			}
		}
	}
	return c
}

func TestGemmSmallKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4} // 2x2
	b := []float32{5, 6, 7, 8} // 2x2
	want := []float32{19, 22, 43, 50}
	c := make([]float32, 4)
	Gemm(a, b, c, 2, 2, 2)
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Gemm = %v, want %v", c, want)
		}
	}
}

func TestGemmIdentity(t *testing.T) {
	const n = 7
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	r := NewRNG(3)
	a := make([]float32, n*n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
	}
	c := make([]float32, n*n)
	Gemm(a, id, c, n, n, n)
	for i := range a {
		if c[i] != a[i] {
			t.Fatal("A·I must equal A")
		}
	}
}

func TestGemmMatchesNaiveAcrossSizes(t *testing.T) {
	r := NewRNG(11)
	sizes := [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 9, 33}, {64, 64, 64}, {65, 70, 129}, {128, 1, 7}}
	for _, sz := range sizes {
		m, k, n := sz[0], sz[1], sz[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		for i := range b {
			b[i] = float32(r.NormFloat64())
		}
		c := make([]float32, m*n)
		Gemm(a, b, c, m, k, n)
		want := gemmNaive(a, b, m, k, n)
		for i := range want {
			d := float64(c[i] - want[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("m=%d k=%d n=%d: blocked Gemm diverges from naive at %d: %v vs %v",
					m, k, n, i, c[i], want[i])
			}
		}
	}
}

func TestGemmOverwritesC(t *testing.T) {
	a := []float32{1}
	b := []float32{1}
	c := []float32{99}
	Gemm(a, b, c, 1, 1, 1)
	if c[0] != 1 {
		t.Fatalf("Gemm must overwrite C, got %v", c[0])
	}
}

func TestGemmTensorShapes(t *testing.T) {
	a := New(3, 4).Fill(1)
	b := New(4, 2).Fill(1)
	c := GemmTensor(a, b)
	if !c.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("GemmTensor shape = %v", c.Shape())
	}
	for _, v := range c.Data() {
		if v != 4 {
			t.Fatalf("all-ones product should be k=4, got %v", v)
		}
	}
}

func TestGemmTensorInnerDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dim mismatch")
		}
	}()
	GemmTensor(New(2, 3), New(4, 2))
}

func TestMatVec(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	x := []float32{1, 1, 1}
	y := make([]float32, 2)
	MatVec(a, x, y, 2, 3)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v, want [6 15]", y)
	}
}

func TestTranspose(t *testing.T) {
	a := From([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if !at.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("transpose shape = %v", at.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := New(m, n)
		FillGaussian(a, r, 1)
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmAssociatesWithTransposeProperty(t *testing.T) {
	// (A·B)^T == B^T · A^T, exact for same accumulation order is not
	// guaranteed, so compare with tolerance.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a, b := New(m, k), New(k, n)
		FillGaussian(a, r, 1)
		FillGaussian(b, r, 1)
		left := Transpose(GemmTensor(a, b))
		right := GemmTensor(Transpose(b), Transpose(a))
		return AllClose(left, right, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
