package tensor

import (
	"testing"
)

func gaussTensor(rng *RNG, dims ...int) *Tensor {
	t := New(dims...)
	FillGaussian(t, rng, 1)
	return t
}

func tileSpecs() []ConvSpec {
	return []ConvSpec{
		{InC: 1, OutC: 6, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
		{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2},
		{InC: 2, OutC: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
	}
}

// TestConv2DWindowMatchesFull checks that every window of the conv output,
// including ragged edge windows, reproduces the full kernel bit-for-bit.
func TestConv2DWindowMatchesFull(t *testing.T) {
	rng := NewRNG(7)
	for _, spec := range tileSpecs() {
		in := gaussTensor(rng, 2, spec.InC, 11, 13)
		w := gaussTensor(rng, spec.WeightShape()...)
		bias := gaussTensor(rng, spec.OutC)
		full := Conv2D(in, w, bias, spec)
		oh, ow := spec.OutDims(11, 13)
		for _, win := range [][4]int{{0, oh, 0, ow}, {0, 3, 0, 3}, {oh - 2, oh, ow - 3, ow}, {1, 4, 2, 5}} {
			oy0, oy1, ox0, ox1 := win[0], win[1], win[2], win[3]
			th, tw := oy1-oy0, ox1-ox0
			tile := make([]float32, spec.OutC*th*tw)
			for b := 0; b < 2; b++ {
				Conv2DWindowInto(tile, in, w, bias, spec, b, oy0, oy1, ox0, ox1)
				for oc := 0; oc < spec.OutC; oc++ {
					for oy := oy0; oy < oy1; oy++ {
						for ox := ox0; ox < ox1; ox++ {
							want := full.Data()[((b*spec.OutC+oc)*oh+oy)*ow+ox]
							got := tile[(oc*th+(oy-oy0))*tw+(ox-ox0)]
							if got != want {
								t.Fatalf("spec %+v window %v b%d oc%d (%d,%d): got %v want %v",
									spec, win, b, oc, oy, ox, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestConv2DWindowParMatchesSerial checks shard-count invariance of the
// windowed conv.
func TestConv2DWindowParMatchesSerial(t *testing.T) {
	spec := ConvSpec{InC: 3, OutC: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := NewRNG(8)
	in := gaussTensor(rng, 1, 3, 9, 9)
	w := gaussTensor(rng, spec.WeightShape()...)
	b := gaussTensor(rng, 7)
	serial := make([]float32, 7*9*9)
	Conv2DWindowInto(serial, in, w, b, spec, 0, 0, 9, 0, 9)
	par := NewPar(nil, 3)
	sharded := make([]float32, 7*9*9)
	Conv2DWindowIntoPar(sharded, in, w, b, spec, 0, 0, 9, 0, 9, par)
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("element %d differs: %v vs %v", i, serial[i], sharded[i])
		}
	}
}

// TestIm2colWindowMatchesFull checks the window lowering against the
// corresponding columns of the full im2col matrix.
func TestIm2colWindowMatchesFull(t *testing.T) {
	rng := NewRNG(9)
	for _, spec := range tileSpecs() {
		spec = spec.Normalize()
		in := gaussTensor(rng, 2, spec.InC, 10, 12)
		oh, ow := spec.OutDims(10, 12)
		icg := spec.InC / spec.Groups
		rows := icg * spec.KH * spec.KW
		for g := 0; g < spec.Groups; g++ {
			fullM := Im2colGroup(in, 1, g, spec)
			oy0, oy1, ox0, ox1 := 1, oh-1, 2, ow-2
			if oy1 <= oy0 || ox1 <= ox0 {
				continue
			}
			th, tw := oy1-oy0, ox1-ox0
			dst := make([]float32, rows*th*tw)
			Im2colWindowInto(dst, in, 1, g, spec, oy0, oy1, ox0, ox1)
			for r := 0; r < rows; r++ {
				for oy := oy0; oy < oy1; oy++ {
					for ox := ox0; ox < ox1; ox++ {
						want := fullM.Data()[r*oh*ow+oy*ow+ox]
						got := dst[r*th*tw+(oy-oy0)*tw+(ox-ox0)]
						if got != want {
							t.Fatalf("spec %+v g%d row %d (%d,%d): got %v want %v", spec, g, r, oy, ox, got, want)
						}
					}
				}
			}
		}
	}
}

// TestPoolWindowFromTileMatchesFull feeds a conv-output tensor through the
// tile-reading pool kernels window by window and compares against the
// whole-tensor pools, including padded pools whose corner windows tap only
// padding.
func TestPoolWindowFromTileMatchesFull(t *testing.T) {
	rng := NewRNG(10)
	in := gaussTensor(rng, 2, 3, 9, 9)
	type pool struct{ kh, kw, sh, sw, ph, pw int }
	for _, pl := range []pool{{2, 2, 2, 2, 0, 0}, {3, 3, 2, 2, 1, 1}, {2, 2, 2, 2, 2, 2}} {
		wantMax := MaxPool2D(in, pl.kh, pl.kw, pl.sh, pl.sw, pl.ph, pl.pw)
		wantAvg := AvgPool2D(in, pl.kh, pl.kw, pl.sh, pl.sw, pl.ph, pl.pw)
		oh, ow := wantMax.Dim(2), wantMax.Dim(3)
		gotMax := New(wantMax.Shape()...)
		gotAvg := New(wantAvg.Shape()...)
		// Cover the pool output in 2x3 windows; back each with the exact
		// conv sub-tile its in-bounds taps need.
		for b := 0; b < 2; b++ {
			for py0 := 0; py0 < oh; py0 += 2 {
				for px0 := 0; px0 < ow; px0 += 3 {
					py1, px1 := min(py0+2, oh), min(px0+3, ow)
					cy0, cy1 := clampRange(py0, py1, pl.sh, pl.ph, pl.kh, 9)
					cx0, cx1 := clampRange(px0, px1, pl.sw, pl.pw, pl.kw, 9)
					th, tw := cy1-cy0, cx1-cx0
					tile := make([]float32, 3*th*tw)
					for ch := 0; ch < 3; ch++ {
						for iy := cy0; iy < cy1; iy++ {
							for ix := cx0; ix < cx1; ix++ {
								tile[(ch*th+(iy-cy0))*tw+(ix-cx0)] = in.Data()[((b*3+ch)*9+iy)*9+ix]
							}
						}
					}
					pw := PoolWindow{
						KH: pl.kh, KW: pl.kw, StrideH: pl.sh, StrideW: pl.sw,
						PadH: pl.ph, PadW: pl.pw, InH: 9, InW: 9,
						PY0: py0, PY1: py1, PX0: px0, PX1: px1,
						CY0: cy0, CX0: cx0, TH: th, TW: tw,
					}
					MaxPool2DWindowFromTile(gotMax, tile, b, pw)
					AvgPool2DWindowFromTile(gotAvg, tile, b, pw)
				}
			}
		}
		for i := range wantMax.Data() {
			if gotMax.Data()[i] != wantMax.Data()[i] {
				t.Fatalf("pool %+v max element %d: got %v want %v", pl, i, gotMax.Data()[i], wantMax.Data()[i])
			}
			if gotAvg.Data()[i] != wantAvg.Data()[i] {
				t.Fatalf("pool %+v avg element %d: got %v want %v", pl, i, gotAvg.Data()[i], wantAvg.Data()[i])
			}
		}
	}
}

// clampRange mirrors the sched planner's tap-range math for the test.
func clampRange(o0, o1, stride, pad, k, n int) (int, int) {
	lo := o0*stride - pad
	hi := (o1-1)*stride - pad + k
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func TestReLUSliceMatchesReLUInto(t *testing.T) {
	rng := NewRNG(11)
	x := gaussTensor(rng, 37)
	want := ReLU(x)
	ReLUSlice(x.Data())
	for i := range want.Data() {
		if x.Data()[i] != want.Data()[i] {
			t.Fatalf("element %d: got %v want %v", i, x.Data()[i], want.Data()[i])
		}
	}
}
