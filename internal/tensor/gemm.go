package tensor

import (
	"fmt"

	"repro/internal/metrics"
)

// Gemm computes C = A·B for row-major matrices, where A is m×k, B is k×n and
// C is m×n. C is overwritten. It is the reference (naive, cache-blocked)
// matrix multiply used by the im2col convolution path and by the fully
// connected layers.
func Gemm(a, b, c []float32, m, k, n int) {
	metrics.Count(metrics.KernelGEMM)
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: Gemm buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	gemmRows(a, b, c, k, n, 0, m)
}

// GemmPar is Gemm sharded over row blocks of C on the given parallelism
// context (nil par or one shard runs serially). Rows are fully independent
// and each element's k-accumulation order does not depend on the row
// blocking, so the result is bit-identical to Gemm for any shard count.
func GemmPar(a, b, c []float32, m, k, n int, par *Par) {
	metrics.Count(metrics.KernelGEMM)
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: GemmPar buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	if par.Parallel() {
		par.For(m, func(shard, lo, hi int) {
			gemmRows(a, b, c, k, n, lo, hi)
		})
		return
	}
	gemmRows(a, b, c, k, n, 0, m)
}

// gemmRows computes rows [lo, hi) of C = A·B (zeroing them first) with the
// cache-blocked loop nest. For a fixed output element the accumulation
// walks p in ascending bs-blocks regardless of the row range, so splitting
// the row space preserves bit-exact results.
func gemmRows(a, b, c []float32, k, n, lo, hi int) {
	for i := range c[lo*n : hi*n] {
		c[lo*n+i] = 0
	}
	const bs = 64 // block size tuned for L1-resident tiles of float32
	for i0 := lo; i0 < hi; i0 += bs {
		iMax := min(i0+bs, hi)
		for p0 := 0; p0 < k; p0 += bs {
			pMax := min(p0+bs, k)
			for j0 := 0; j0 < n; j0 += bs {
				jMax := min(j0+bs, n)
				for i := i0; i < iMax; i++ {
					arow := a[i*k : i*k+k]
					crow := c[i*n : i*n+n]
					for p := p0; p < pMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b[p*n : p*n+n]
						for j := j0; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// GemmTensor multiplies two rank-2 tensors and returns a new m×n tensor.
func GemmTensor(a, b *Tensor) *Tensor {
	c := New(a.Dim(0), b.Dim(1))
	GemmTensorInto(c, a, b)
	return c
}

// GemmTensorInto is GemmTensor writing into a preallocated m×n destination
// (overwritten). dst must not alias either operand.
func GemmTensorInto(dst, a, b *Tensor) {
	if a.Shape().Rank() != 2 || b.Shape().Rank() != 2 {
		panic("tensor: GemmTensor requires rank-2 operands")
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: GemmTensor inner dims differ: %d vs %d", k, k2))
	}
	if dst.NumElements() != m*n {
		panic(fmt.Sprintf("tensor: GemmTensorInto dst %v != [%d %d]", dst.Shape(), m, n))
	}
	Gemm(a.Data(), b.Data(), dst.Data(), m, k, n)
}

// MatVec computes y = A·x for a row-major m×k matrix. y is overwritten.
func MatVec(a, x, y []float32, m, k int) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("tensor: MatVec buffer too small")
	}
	for i := 0; i < m; i++ {
		row := a[i*k : i*k+k]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Shape().Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	ad, od := a.Data(), out.Data()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			od[j*m+i] = ad[i*n+j]
		}
	}
	return out
}
