package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzGemmBlockedMatchesNaive is a differential fuzz target over the packed
// register-blocked GEMM: for fuzzer-chosen shapes and matrix contents,
// GemmBlocked must be bit-identical to the naive triple loop. The packed
// path commits to the same per-element ascending-k accumulation chain as
// Gemm, so over finite inputs any divergence — including signed zeros and
// subnormals — is a microkernel bug, never tolerance. Inputs are remapped
// to finite floats because Gemm's zero-row skip is observable under IEEE
// non-finites (0·Inf = NaN is skipped by the naive loop).
func FuzzGemmBlockedMatchesNaive(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint16(4), []byte{0x3f, 0x80, 0x00, 0x00})
	f.Add(uint8(7), uint8(9), uint16(513), []byte{0xff, 0xc0, 0x00, 0x01, 0x80, 0x00, 0x00, 0x00})
	f.Add(uint8(1), uint8(17), uint16(2), []byte{0x00})
	f.Fuzz(func(t *testing.T, mRaw, nRaw uint8, kRaw uint16, data []byte) {
		// Bound the shape so one input stays fast while still crossing every
		// micro-tile edge case (both microkernel sizes, remainder tiles) and
		// the k-panel boundary at gemmKC.
		m := int(mRaw)%24 + 1
		n := int(nRaw)%24 + 1
		k := int(kRaw)%(gemmKC+64) + 1
		at := func(i int) float32 {
			if len(data) == 0 {
				return 0
			}
			var w [4]byte
			for j := range w {
				w[j] = data[(i*4+j)%len(data)]
			}
			bits := binary.LittleEndian.Uint32(w[:])
			if bits&0x7f800000 == 0x7f800000 {
				bits &^= 0x40000000 // demote Inf/NaN exponents to a large finite value
			}
			return math.Float32frombits(bits)
		}
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = at(i)
		}
		for i := range b {
			b[i] = at(i + len(a))
		}
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Gemm(a, b, want, m, k, n)
		GemmBlocked(a, b, got, m, k, n, &Scratch{})
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("m=%d k=%d n=%d: c[%d] = %x (blocked) vs %x (naive)",
					m, k, n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	})
}
