package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is a scalar
// holding 0; use New or From to construct tensors with a shape.
type Tensor struct {
	shape   Shape
	strides []int
	data    []float32
}

// New allocates a zero-filled tensor with the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{
		shape:   s,
		strides: s.Strides(),
		data:    make([]float32, s.NumElements()),
	}
}

// From wraps an existing backing slice in a tensor with the given shape.
// The slice is used directly (not copied); its length must equal the number
// of elements implied by the shape.
func From(data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)",
			len(data), s, s.NumElements()))
	}
	return &Tensor{shape: s, strides: s.Strides(), data: data}
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Strides returns the row-major strides. Callers must not mutate it.
func (t *Tensor) Strides() []int { return t.strides }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Offset computes the linear offset of a multidimensional index.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multidimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Offset(idx...)] }

// Set stores v at the given multidimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. The element
// count must be preserved. The returned tensor shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), s, s.NumElements()))
	}
	return &Tensor{shape: s, strides: s.Strides(), data: t.data}
}

// Fill sets every element to v and returns t for chaining.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces each element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Add accumulates o into t elementwise. Shapes must match exactly.
func (t *Tensor) Add(o *Tensor) *Tensor {
	if !t.shape.Equal(o.shape) {
		panic(fmt.Sprintf("tensor: add shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// Scale multiplies every element by v in place and returns t.
func (t *Tensor) Scale(v float32) *Tensor {
	for i := range t.data {
		t.data[i] *= v
	}
	return t
}

// MaxAbs returns the largest absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 to limit rounding error.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// CountNonZero returns the number of elements that are not exactly zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements that are exactly zero, in [0,1].
func (t *Tensor) Sparsity() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return 1 - float64(t.CountNonZero())/float64(len(t.data))
}

// AllClose reports whether every pair of corresponding elements of t and o
// differs by at most atol + rtol*|o|. Shapes must match.
func AllClose(t, o *Tensor, rtol, atol float64) bool {
	if !t.shape.Equal(o.shape) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(o.data[i])
		if math.IsNaN(a) || math.IsNaN(b) {
			return false
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// tensors of identical shape.
func MaxAbsDiff(t, o *Tensor) float64 {
	if !t.shape.Equal(o.shape) {
		panic(fmt.Sprintf("tensor: diff shape mismatch %v vs %v", t.shape, o.shape))
	}
	var m float64
	for i := range t.data {
		if d := math.Abs(float64(t.data[i]) - float64(o.data[i])); d > m {
			m = d
		}
	}
	return m
}

// String summarizes the tensor without dumping all elements.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(shape=%v, elems=%d)", t.shape, len(t.data))
}

// NCHWToNHWC converts a rank-4 activation tensor from NCHW to NHWC layout,
// returning a new tensor.
func NCHWToNHWC(t *Tensor) *Tensor {
	if t.shape.Rank() != 4 {
		panic("tensor: NCHWToNHWC requires rank-4 tensor")
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(n, h, w, c)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			for ih := 0; ih < h; ih++ {
				for iw := 0; iw < w; iw++ {
					out.data[((in*h+ih)*w+iw)*c+ic] = t.data[((in*c+ic)*h+ih)*w+iw]
				}
			}
		}
	}
	return out
}

// NHWCToNCHW converts a rank-4 activation tensor from NHWC to NCHW layout,
// returning a new tensor.
func NHWCToNCHW(t *Tensor) *Tensor {
	if t.shape.Rank() != 4 {
		panic("tensor: NHWCToNCHW requires rank-4 tensor")
	}
	n, h, w, c := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(n, c, h, w)
	for in := 0; in < n; in++ {
		for ih := 0; ih < h; ih++ {
			for iw := 0; iw < w; iw++ {
				for ic := 0; ic < c; ic++ {
					out.data[((in*c+ic)*h+ih)*w+iw] = t.data[((in*h+ih)*w+iw)*c+ic]
				}
			}
		}
	}
	return out
}
