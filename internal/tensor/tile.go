package tensor

import "fmt"

// Window-restricted kernels backing the fused-region executor (DESIGN.md
// §10). Each evaluates only a rectangular sub-window of a layer's output —
// a conv tile into a compact scratch buffer, or a pool tile reading back
// from such a buffer — with the *same per-element tap order and
// accumulation arithmetic* as the whole-layer kernels in conv.go. Every
// output element touches exactly the operands it touches in the unfused
// kernel, so tiled execution is bit-identical, which the conformance
// harness enforces.

// Conv2DWindowIntoPar computes the direct-convolution output window rows
// [oy0,oy1) × cols [ox0,ox1) of batch element b into tile, laid out
// [outC, oy1-oy0, ox1-ox0], sharded over output channels. An empty window
// is a no-op. Each element equals the corresponding Conv2DIntoPar output
// bit-for-bit.
func Conv2DWindowIntoPar(tile []float32, in, weight, bias *Tensor, spec ConvSpec, b, oy0, oy1, ox0, ox1 int, par *Par) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if c != spec.InC {
		panic(fmt.Sprintf("tensor: Conv2DWindow input channels %d != spec.InC %d", c, spec.InC))
	}
	if b < 0 || b >= n {
		panic(fmt.Sprintf("tensor: Conv2DWindow batch %d out of %d", b, n))
	}
	oh, ow := spec.OutDims(h, w)
	if oy0 < 0 || oy1 > oh || ox0 < 0 || ox1 > ow {
		panic(fmt.Sprintf("tensor: Conv2DWindow [%d,%d)x[%d,%d) outside %dx%d", oy0, oy1, ox0, ox1, oh, ow))
	}
	if oy1 <= oy0 || ox1 <= ox0 {
		return
	}
	th, tw := oy1-oy0, ox1-ox0
	if len(tile) < spec.OutC*th*tw {
		panic(fmt.Sprintf("tensor: Conv2DWindow tile %d < %d", len(tile), spec.OutC*th*tw))
	}
	if par.Parallel() {
		par.For(spec.OutC, func(shard, lo, hi int) {
			conv2DWindowUnits(tile, in, weight, bias, spec, b, oy0, oy1, ox0, ox1, lo, hi)
		})
		return
	}
	conv2DWindowUnits(tile, in, weight, bias, spec, b, oy0, oy1, ox0, ox1, 0, spec.OutC)
}

// Conv2DWindowInto is the serial form of Conv2DWindowIntoPar.
func Conv2DWindowInto(tile []float32, in, weight, bias *Tensor, spec ConvSpec, b, oy0, oy1, ox0, ox1 int) {
	Conv2DWindowIntoPar(tile, in, weight, bias, spec, b, oy0, oy1, ox0, ox1, nil)
}

// conv2DWindowUnits computes output channels [lo, hi) of a conv window —
// the window-restricted counterpart of conv2DUnits, with the identical
// accumulation loop.
func conv2DWindowUnits(tile []float32, in, weight, bias *Tensor, spec ConvSpec, b, oy0, oy1, ox0, ox1, lo, hi int) {
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	th, tw := oy1-oy0, ox1-ox0
	ind, wd := in.Data(), weight.Data()
	for oc := lo; oc < hi; oc++ {
		g := oc / ocg
		var bv float32
		if bias != nil {
			bv = bias.Data()[oc]
		}
		for oy := oy0; oy < oy1; oy++ {
			for ox := ox0; ox < ox1; ox++ {
				acc := bv
				iy0 := oy*spec.StrideH - spec.PadH
				ix0 := ox*spec.StrideW - spec.PadW
				for ic := 0; ic < icg; ic++ {
					cIn := g*icg + ic
					for ky := 0; ky < spec.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						inRow := ind[((b*c+cIn)*h+iy)*w:]
						wRow := wd[((oc*icg+ic)*spec.KH+ky)*spec.KW:]
						for kx := 0; kx < spec.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += inRow[ix] * wRow[kx]
						}
					}
				}
				tile[(oc*th+(oy-oy0))*tw+(ox-ox0)] = acc
			}
		}
	}
}

// Im2colWindowIntoPar lowers group g of batch element b restricted to the
// conv output window [oy0,oy1)×[ox0,ox1) into dst, a matrix of shape
// [icg*kH*kW, (oy1-oy0)*(ox1-ox0)], sharded over rows. Column j of the
// matrix is window pixel (oy0 + j/tw, ox0 + j%tw), so a GEMM against it
// yields the same per-column dot products as the full lowering.
func Im2colWindowIntoPar(dst []float32, in *Tensor, b, g int, spec ConvSpec, oy0, oy1, ox0, ox1 int, par *Par) {
	spec = spec.Normalize()
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if oy0 < 0 || oy1 > oh || ox0 < 0 || ox1 > ow {
		panic(fmt.Sprintf("tensor: Im2colWindow [%d,%d)x[%d,%d) outside %dx%d", oy0, oy1, ox0, ox1, oh, ow))
	}
	if oy1 <= oy0 || ox1 <= ox0 {
		return
	}
	icg := spec.InC / spec.Groups
	rows := icg * spec.KH * spec.KW
	th, tw := oy1-oy0, ox1-ox0
	if len(dst) < rows*th*tw {
		panic(fmt.Sprintf("tensor: Im2colWindow dst %d < %d", len(dst), rows*th*tw))
	}
	if par.Parallel() {
		par.For(rows, func(shard, lo, hi int) {
			im2colWindowRows(dst, in, b, g, spec, oy0, oy1, ox0, ox1, lo, hi)
		})
		return
	}
	im2colWindowRows(dst, in, b, g, spec, oy0, oy1, ox0, ox1, 0, rows)
}

// Im2colWindowInto is the serial form of Im2colWindowIntoPar.
func Im2colWindowInto(dst []float32, in *Tensor, b, g int, spec ConvSpec, oy0, oy1, ox0, ox1 int) {
	Im2colWindowIntoPar(dst, in, b, g, spec, oy0, oy1, ox0, ox1, nil)
}

// im2colWindowRows lowers window matrix rows [lo, hi); row r unpacks to
// (ic, ky, kx) exactly as im2colRows.
func im2colWindowRows(dst []float32, in *Tensor, b, g int, spec ConvSpec, oy0, oy1, ox0, ox1, lo, hi int) {
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	icg := spec.InC / spec.Groups
	th, tw := oy1-oy0, ox1-ox0
	ind := in.Data()
	for row := lo; row < hi; row++ {
		kx := row % spec.KW
		ky := (row / spec.KW) % spec.KH
		ic := row / (spec.KW * spec.KH)
		cIn := g*icg + ic
		out := dst[row*th*tw:]
		for oy := oy0; oy < oy1; oy++ {
			iy := oy*spec.StrideH - spec.PadH + ky
			for ox := ox0; ox < ox1; ox++ {
				ix := ox*spec.StrideW - spec.PadW + kx
				var v float32
				if iy >= 0 && iy < h && ix >= 0 && ix < w {
					v = ind[((b*c+cIn)*h+iy)*w+ix]
				}
				out[(oy-oy0)*tw+(ox-ox0)] = v
			}
		}
	}
}

// PoolWindow locates a pool-output tile and the conv-output tile backing
// it for the *FromTile pooling kernels. All coordinates are half-open.
type PoolWindow struct {
	KH, KW           int // pool kernel
	StrideH, StrideW int
	PadH, PadW       int
	InH, InW         int // full pool-input (conv output) spatial dims
	PY0, PY1         int // pool output rows to compute
	PX0, PX1         int // pool output cols to compute
	CY0, CX0         int // tile origin in pool-input coordinates
	TH, TW           int // tile extents
}

// MaxPool2DWindowFromTile computes pool outputs [PY0,PY1)×[PX0,PX1) of
// batch element b from a conv-output tile (layout [c, TH, TW], pool-input
// window origin CY0/CX0), writing them at their global coordinates in dst
// ([n, c, poolOH, poolOW]). Taps are bounds-checked against the *full*
// pool-input dims in the same ky,kx order as MaxPool2DInto, so each output
// is bit-identical to the unfused kernel; every in-bounds tap must lie
// inside the tile (the sched planner guarantees this, and the kernel
// panics otherwise).
func MaxPool2DWindowFromTile(dst *Tensor, tile []float32, b int, pw PoolWindow) {
	n, c, oh, ow := dst.Dim(0), dst.Dim(1), dst.Dim(2), dst.Dim(3)
	if b < 0 || b >= n {
		panic(fmt.Sprintf("tensor: MaxPoolWindow batch %d out of %d", b, n))
	}
	od := dst.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * pw.TH * pw.TW
		for oy := pw.PY0; oy < pw.PY1; oy++ {
			for ox := pw.PX0; ox < pw.PX1; ox++ {
				best := float32(0)
				first := true
				for ky := 0; ky < pw.KH; ky++ {
					iy := oy*pw.StrideH - pw.PadH + ky
					if iy < 0 || iy >= pw.InH {
						continue
					}
					for kx := 0; kx < pw.KW; kx++ {
						ix := ox*pw.StrideW - pw.PadW + kx
						if ix < 0 || ix >= pw.InW {
							continue
						}
						v := tile[base+tileIndex(pw, iy, ix)]
						if first || v > best {
							best = v
							first = false
						}
					}
				}
				od[((b*c+ch)*oh+oy)*ow+ox] = best
			}
		}
	}
}

// AvgPool2DWindowFromTile is the average-pooling counterpart of
// MaxPool2DWindowFromTile (count_include_pad = false, like AvgPool2DInto).
func AvgPool2DWindowFromTile(dst *Tensor, tile []float32, b int, pw PoolWindow) {
	n, c, oh, ow := dst.Dim(0), dst.Dim(1), dst.Dim(2), dst.Dim(3)
	if b < 0 || b >= n {
		panic(fmt.Sprintf("tensor: AvgPoolWindow batch %d out of %d", b, n))
	}
	od := dst.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * pw.TH * pw.TW
		for oy := pw.PY0; oy < pw.PY1; oy++ {
			for ox := pw.PX0; ox < pw.PX1; ox++ {
				var sum float32
				cnt := 0
				for ky := 0; ky < pw.KH; ky++ {
					iy := oy*pw.StrideH - pw.PadH + ky
					if iy < 0 || iy >= pw.InH {
						continue
					}
					for kx := 0; kx < pw.KW; kx++ {
						ix := ox*pw.StrideW - pw.PadW + kx
						if ix < 0 || ix >= pw.InW {
							continue
						}
						sum += tile[base+tileIndex(pw, iy, ix)]
						cnt++
					}
				}
				var v float32
				if cnt > 0 {
					v = sum / float32(cnt)
				}
				od[((b*c+ch)*oh+oy)*ow+ox] = v
			}
		}
	}
}

// tileIndex maps a global pool-input coordinate to its tile offset,
// panicking if the coordinate lies outside the tile — that would mean the
// tile plan's conv window missed a tap.
func tileIndex(pw PoolWindow, iy, ix int) int {
	ty, tx := iy-pw.CY0, ix-pw.CX0
	if ty < 0 || ty >= pw.TH || tx < 0 || tx >= pw.TW {
		panic(fmt.Sprintf("tensor: pool tap (%d,%d) outside tile at (%d,%d) %dx%d", iy, ix, pw.CY0, pw.CX0, pw.TH, pw.TW))
	}
	return ty*pw.TW + tx
}

// ReLUSlice applies the rectifier in place to a raw kernel buffer, matching
// ReLUInto element for element.
func ReLUSlice(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}
