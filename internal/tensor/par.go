package tensor

import (
	goruntime "runtime"

	"repro/internal/parallel"
)

// Par is the intra-op parallelism context threaded through the sharded
// *Par kernels: a bounded worker pool to draw helpers from, a shard count,
// and one Scratch arena per shard (a Scratch is not concurrency-safe, so
// shards must never share one). A nil *Par means serial execution with no
// scratch, which only kernels that need no scratch accept.
//
// Sharded kernels split work over disjoint output regions and keep each
// output's accumulation order unchanged, so for any shard count the result
// is bit-identical to the serial kernel. With Shards() == 1 the kernels
// take their serial path directly — no closures, no goroutines, zero heap
// allocations — reproducing the exact cost profile of the plain Into
// kernels.
type Par struct {
	pool    *parallel.Pool
	shards  int
	scratch []*Scratch
}

// NewPar builds a context drawing helpers from pool with the given shard
// count; shards <= 0 means GOMAXPROCS.
func NewPar(pool *parallel.Pool, shards int) *Par {
	p := &Par{pool: pool}
	p.SetShards(shards)
	return p
}

// SetShards changes the shard count (<= 0 means GOMAXPROCS), growing the
// per-shard scratch set as needed. Existing scratches keep their warmed
// backing stores. Must not be called while a parallel region is running.
func (p *Par) SetShards(n int) {
	if n <= 0 {
		n = goruntime.GOMAXPROCS(0)
	}
	p.shards = n
	for len(p.scratch) < n {
		p.scratch = append(p.scratch, &Scratch{})
	}
}

// Shards returns the shard count; a nil Par is serial (1).
func (p *Par) Shards() int {
	if p == nil {
		return 1
	}
	return p.shards
}

// Parallel reports whether the context actually shards (more than one
// shard). Kernels branch on it so the serial path stays closure-free.
func (p *Par) Parallel() bool { return p != nil && p.shards > 1 }

// Scratch returns shard i's private scratch arena.
func (p *Par) Scratch(i int) *Scratch { return p.scratch[i] }

// HighWater returns the largest per-shard scratch peak (in floats) across
// the context's shards — the executor's per-run scratch telemetry.
func (p *Par) HighWater() int {
	if p == nil {
		return 0
	}
	hw := 0
	for _, s := range p.scratch {
		if s.HighWater() > hw {
			hw = s.HighWater()
		}
	}
	return hw
}

// Reset rewinds every per-shard scratch, invalidating outstanding slices.
// Backing stores are kept, so warmed execution stays allocation-free.
func (p *Par) Reset() {
	if p == nil {
		return
	}
	for _, s := range p.scratch {
		s.Reset()
	}
}

// For runs fn over [0, n) split into Shards() contiguous blocks on the
// pool. See parallel.Pool.For for the scheduling and identity contract.
func (p *Par) For(n int, fn func(shard, lo, hi int)) {
	p.pool.For(p.shards, n, fn)
}

// ForBlocks is For with shard boundaries aligned to multiples of quantum.
func (p *Par) ForBlocks(n, quantum int, fn func(shard, lo, hi int)) {
	p.pool.ForBlocks(p.shards, n, quantum, fn)
}
