package tensor

import (
	"fmt"
	"testing"
)

// fillNorm fills x with standard normal values from r.
func fillNorm(r *RNG, x []float32) {
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
}

// TestGemmBlockedEdgeSweep is the edge-tile sweep: every m and n remainder
// against both micro-tile sizes (0..mr-1 / 0..nr-1 for the 4x4 and 8x8
// kernels, including the m < mr and n < nr degenerate shapes) crossed with
// k values straddling the k-panel boundary, asserting GemmBlocked is
// bit-identical to Gemm (the documented tolerance class of the tensor-gemm
// family: exact).
func TestGemmBlockedEdgeSweep(t *testing.T) {
	r := NewRNG(101)
	s := &Scratch{}
	ks := []int{1, 2, 3, 7, gemmKC - 1, gemmKC, gemmKC + 1, 2*gemmKC + 3}
	for m := 1; m <= 2*gemmMR8+1; m++ {
		for n := 1; n <= 2*gemmNR8+1; n++ {
			for _, k := range ks {
				a := make([]float32, m*k)
				b := make([]float32, k*n)
				fillNorm(r, a)
				fillNorm(r, b)
				want := make([]float32, m*n)
				Gemm(a, b, want, m, k, n)
				got := make([]float32, m*n)
				GemmBlocked(a, b, got, m, k, n, s)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("m=%d k=%d n=%d: GemmBlocked[%d]=%g, Gemm=%g (must be bit-identical)",
							m, k, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestGemmBlockedZeroSigns checks the signed-zero corner explicitly: Gemm
// skips zero A values, GemmBlocked does not, and both must still agree
// bitwise (a +0-started chain never turns -0 by adding products).
func TestGemmBlockedZeroSigns(t *testing.T) {
	neg0 := float32(0)
	neg0 = -neg0
	a := []float32{0, neg0, 1, neg0, 0, -1}    // 2x3 with signed zeros
	b := []float32{neg0, 1, 0, neg0, -2, neg0} // 3x2
	want := make([]float32, 4)
	Gemm(a, b, want, 2, 3, 2)
	got := make([]float32, 4)
	GemmBlocked(a, b, got, 2, 3, 2, &Scratch{})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("signed-zero mismatch at %d: blocked %g vs %g", i, got[i], want[i])
		}
	}
}

// TestGemmBlockedParMatches checks the sharded path against the serial
// oracle for shard counts around the row-tile quantum, including shapes
// where shards land mid-tile and where m < shards.
func TestGemmBlockedParMatches(t *testing.T) {
	r := NewRNG(59)
	shapes := [][3]int{{1, 5, 3}, {6, 25, 9}, {13, 64, 13}, {33, 17, 21}, {64, gemmKC + 5, 12}}
	for _, shards := range []int{1, 2, 3, 5} {
		par := NewPar(nil, shards)
		for _, sz := range shapes {
			m, k, n := sz[0], sz[1], sz[2]
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			fillNorm(r, a)
			fillNorm(r, b)
			want := make([]float32, m*n)
			Gemm(a, b, want, m, k, n)
			got := make([]float32, m*n)
			GemmBlockedPar(a, b, got, m, k, n, par)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d m=%d k=%d n=%d: par[%d]=%g want %g",
						shards, m, k, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmBlockedParScratchReuse exercises the packed-panel staging under a
// real worker pool: shard 0's scratch holds the shared B panels while every
// shard takes its own A panels, repeatedly and with interleaved shapes so
// arena growth happens mid-sequence. Run under -race this checks the
// staging pattern (pack before the parallel region, shard-local A panels)
// is free of data races; in all modes it checks reuse doesn't corrupt
// results.
func TestGemmBlockedParScratchReuse(t *testing.T) {
	par := forcedPar(4)
	r := NewRNG(7)
	shapes := [][3]int{{9, 33, 7}, {64, 144, 64}, {5, gemmKC + 9, 11}, {32, 27, 256}}
	for rep := 0; rep < 3; rep++ {
		for _, sz := range shapes {
			m, k, n := sz[0], sz[1], sz[2]
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			fillNorm(r, a)
			fillNorm(r, b)
			want := make([]float32, m*n)
			Gemm(a, b, want, m, k, n)
			got := make([]float32, m*n)
			GemmBlockedPar(a, b, got, m, k, n, par)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rep=%d m=%d k=%d n=%d: [%d]=%g want %g", rep, m, k, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDenseGemmMatchesDense checks the packed dense paths (direct-from-W
// micro-panel packing, no transpose materialization) are bit-identical to
// DenseInto, with and without bias, serial and sharded.
func TestDenseGemmMatchesDense(t *testing.T) {
	r := NewRNG(23)
	shapes := [][3]int{{1, 400, 120}, {3, 25, 6}, {7, 150, 16}, {9, 513, 10}}
	for _, sz := range shapes {
		nb, k, m := sz[0], sz[1], sz[2]
		in := New(nb, k)
		w := New(m, k)
		bias := New(m)
		fillNorm(r, in.Data())
		fillNorm(r, w.Data())
		fillNorm(r, bias.Data())
		for _, b := range []*Tensor{nil, bias} {
			want := New(nb, m)
			DenseInto(want, in, w, b)
			got := New(nb, m)
			DenseGemmInto(got, in, w, b, &Scratch{})
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("nb=%d k=%d m=%d bias=%v: [%d]=%g want %g",
						nb, k, m, b != nil, i, got.Data()[i], want.Data()[i])
				}
			}
			for _, shards := range []int{2, 3} {
				par := NewPar(nil, shards)
				gotPar := New(nb, m)
				DenseGemmIntoPar(gotPar, in, w, b, par)
				for i := range want.Data() {
					if gotPar.Data()[i] != want.Data()[i] {
						t.Fatalf("par shards=%d nb=%d k=%d m=%d: [%d]=%g want %g",
							shards, nb, k, m, i, gotPar.Data()[i], want.Data()[i])
					}
				}
			}
		}
	}
}

// TestGemmBlockedZeroAlloc checks the packed paths stay allocation-free
// once the scratch arena is warm (the warm-executor zero-alloc guarantee).
func TestGemmBlockedZeroAlloc(t *testing.T) {
	const m, k, n = 33, 150, 21
	r := NewRNG(3)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	fillNorm(r, a)
	fillNorm(r, b)
	s := &Scratch{}
	GemmBlocked(a, b, c, m, k, n, s) // warm the arena
	if avg := testing.AllocsPerRun(20, func() {
		GemmBlocked(a, b, c, m, k, n, s)
	}); avg != 0 {
		t.Fatalf("warm GemmBlocked allocates %.1f objects per run, want 0", avg)
	}
}

func BenchmarkGemmVariants(b *testing.B) {
	shapes := [][3]int{{64, 288, 256}, {16, 150, 784}, {120, 400, 16}, {128, 512, 128}}
	for _, sz := range shapes {
		m, k, n := sz[0], sz[1], sz[2]
		r := NewRNG(uint64(m*k + n))
		a := make([]float32, m*k)
		bb := make([]float32, k*n)
		c := make([]float32, m*n)
		fillNorm(r, a)
		fillNorm(r, bb)
		s := &Scratch{}
		b.Run(fmt.Sprintf("naive/m%d_k%d_n%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Gemm(a, bb, c, m, k, n)
			}
		})
		b.Run(fmt.Sprintf("blocked/m%d_k%d_n%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GemmBlocked(a, bb, c, m, k, n, s)
			}
		})
	}
}
