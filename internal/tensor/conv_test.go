package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvSpecOutDims(t *testing.T) {
	cases := []struct {
		spec   ConvSpec
		h, w   int
		oh, ow int
	}{
		{ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 224, 224, 224, 224},
		{ConvSpec{InC: 3, OutC: 8, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}, 224, 224, 112, 112},
		{ConvSpec{InC: 1, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, 5, 7, 5, 7},
		{ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, 56, 56, 28, 28},
	}
	for _, c := range cases {
		oh, ow := c.spec.OutDims(c.h, c.w)
		if oh != c.oh || ow != c.ow {
			t.Errorf("OutDims(%d,%d) = (%d,%d), want (%d,%d)", c.h, c.w, oh, ow, c.oh, c.ow)
		}
	}
}

func TestConvSpecValidate(t *testing.T) {
	good := ConvSpec{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []ConvSpec{
		{InC: 0, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
		{InC: 4, OutC: 8, KH: 0, KW: 3, StrideH: 1, StrideW: 1},
		{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 0, StrideW: 1},
		{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

func TestConvSpecMACs(t *testing.T) {
	spec := ConvSpec{InC: 2, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	// 8x8 input, same-padded → 8x8 output; 4*64 outputs * 2*9 taps.
	if got := spec.MACs(1, 8, 8); got != 4*64*18 {
		t.Fatalf("MACs = %d, want %d", got, 4*64*18)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1x1x3x3 input convolved with an identity-center 3x3 kernel, pad 1,
	// must reproduce the input.
	in := From([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := New(1, 1, 3, 3)
	w.Set(1, 0, 0, 1, 1)
	spec := ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	out := Conv2D(in, w, nil, spec)
	if MaxAbsDiff(out, in) != 0 {
		t.Fatal("identity kernel must reproduce the input")
	}
}

func TestConv2DSumKernel(t *testing.T) {
	// All-ones 2x2 kernel, stride 2, no pad: each output is a quadrant sum.
	in := From([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	w := New(1, 1, 2, 2).Fill(1)
	spec := ConvSpec{InC: 1, OutC: 1, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	out := Conv2D(in, w, nil, spec)
	want := []float32{1 + 2 + 5 + 6, 3 + 4 + 7 + 8, 9 + 10 + 13 + 14, 11 + 12 + 15 + 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("quadrant sums = %v, want %v", out.Data(), want)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 1, 2, 2).Fill(0)
	w := New(2, 1, 1, 1).Fill(0)
	bias := From([]float32{3, -1}, 2)
	spec := ConvSpec{InC: 1, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	out := Conv2D(in, w, bias, spec)
	if out.At(0, 0, 0, 0) != 3 || out.At(0, 1, 1, 1) != -1 {
		t.Fatal("bias not applied per output channel")
	}
}

func randConvCase(r *RNG) (in, w, bias *Tensor, spec ConvSpec) {
	groups := 1
	if r.Intn(3) == 0 {
		groups = 1 + r.Intn(2)
	}
	icg := 1 + r.Intn(4)
	ocg := 1 + r.Intn(4)
	spec = ConvSpec{
		InC: icg * groups, OutC: ocg * groups,
		KH: 1 + r.Intn(3), KW: 1 + r.Intn(3),
		StrideH: 1 + r.Intn(2), StrideW: 1 + r.Intn(2),
		PadH: r.Intn(2), PadW: r.Intn(2),
		Groups: groups,
	}
	h := spec.KH + r.Intn(6)
	wdim := spec.KW + r.Intn(6)
	n := 1 + r.Intn(2)
	in = New(n, spec.InC, h, wdim)
	FillGaussian(in, r, 1)
	w = New(spec.WeightShape()...)
	FillGaussian(w, r, 1)
	bias = New(spec.OutC)
	FillGaussian(bias, r, 1)
	return in, w, bias, spec
}

func TestConv2DIm2colMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		in, w, bias, spec := randConvCase(r)
		a := Conv2D(in, w, bias, spec)
		b := Conv2DIm2col(in, w, bias, spec)
		return AllClose(a, b, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colShape(t *testing.T) {
	spec := ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := New(1, 3, 8, 8)
	col := Im2col(in, 0, spec)
	if !col.Shape().Equal(Shape{27, 64}) {
		t.Fatalf("im2col shape = %v, want [27 64]", col.Shape())
	}
}

func TestIm2colZeroPadding(t *testing.T) {
	in := New(1, 1, 2, 2).Fill(1)
	spec := ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	col := Im2col(in, 0, spec)
	// Top-left output (oy=0, ox=0): kernel tap (0,0) reads (-1,-1) → 0.
	if col.At(0, 0) != 0 {
		t.Fatal("out-of-bounds taps must read as zero")
	}
	// Center tap (ky=1,kx=1) row index 4 at output (0,0) reads in(0,0)=1.
	if col.At(4, 0) != 1 {
		t.Fatal("center tap should read the input value")
	}
}

func TestDepthwiseConv(t *testing.T) {
	// Depthwise: groups == inC == outC. Each channel is convolved with its
	// own 1-channel kernel; channels must not mix.
	spec := ConvSpec{InC: 2, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1, Groups: 2}
	in := New(1, 2, 2, 2)
	in.Set(1, 0, 0, 0, 0)
	in.Set(2, 0, 1, 0, 0)
	w := New(2, 1, 1, 1)
	w.Set(10, 0, 0, 0, 0)
	w.Set(100, 1, 0, 0, 0)
	out := Conv2D(in, w, nil, spec)
	if out.At(0, 0, 0, 0) != 10 || out.At(0, 1, 0, 0) != 200 {
		t.Fatalf("depthwise channels mixed: %v %v", out.At(0, 0, 0, 0), out.At(0, 1, 0, 0))
	}
}

func TestReLU(t *testing.T) {
	in := From([]float32{-2, -0.5, 0, 1, 3}, 5)
	out := ReLU(in)
	want := []float32{0, 0, 0, 1, 3}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("ReLU = %v, want %v", out.Data(), want)
		}
	}
	if in.At(0) != -2 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestMaxPool2D(t *testing.T) {
	in := From([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	out := MaxPool2D(in, 2, 2, 2, 2, 0, 0)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("MaxPool = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPool2DPadding(t *testing.T) {
	// With negative inputs and padding, the max must consider only
	// in-bounds elements, never an implicit zero.
	in := New(1, 1, 2, 2).Fill(-5)
	out := MaxPool2D(in, 3, 3, 2, 2, 1, 1)
	for _, v := range out.Data() {
		if v != -5 {
			t.Fatalf("padded max pool leaked a zero: %v", out.Data())
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := From([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := AvgPool2D(in, 2, 2, 2, 2, 0, 0)
	if out.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("AvgPool = %v, want 2.5", out.At(0, 0, 0, 0))
	}
}

func TestAvgPool2DExcludesPad(t *testing.T) {
	in := New(1, 1, 2, 2).Fill(4)
	out := AvgPool2D(in, 3, 3, 2, 2, 1, 1)
	// Every window sees only the in-bounds 2x2=4 elements subset; average
	// of all-4s must be 4 when padding is excluded from the divisor.
	for _, v := range out.Data() {
		if v != 4 {
			t.Fatalf("AvgPool with pad should exclude padding: %v", out.Data())
		}
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := From([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out := GlobalAvgPool2D(in)
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 25 {
		t.Fatalf("GlobalAvgPool = %v", out.Data())
	}
}

func TestBatchNormIdentity(t *testing.T) {
	// gamma=1, beta=0, mean=0, var=1 → identity (up to eps).
	r := NewRNG(5)
	in := New(2, 3, 4, 4)
	FillGaussian(in, r, 1)
	ones := New(3).Fill(1)
	zeros := New(3)
	out := BatchNorm(in, ones, zeros, zeros, ones, 0)
	if !AllClose(out, in, 1e-5, 1e-5) {
		t.Fatal("unit batch norm should be identity")
	}
}

func TestBatchNormAffine(t *testing.T) {
	in := New(1, 1, 1, 2).Fill(3)
	gamma := New(1).Fill(2)
	beta := New(1).Fill(1)
	mean := New(1).Fill(1)
	variance := New(1).Fill(4)
	out := BatchNorm(in, gamma, beta, mean, variance, 0)
	// y = 2*(3-1)/2 + 1 = 3
	for _, v := range out.Data() {
		if math.Abs(float64(v)-3) > 1e-5 {
			t.Fatalf("BatchNorm = %v, want 3", v)
		}
	}
}

func TestDense(t *testing.T) {
	in := From([]float32{1, 2}, 1, 2)
	w := From([]float32{1, 0, 0, 1, 1, 1}, 3, 2)
	bias := From([]float32{0, 0, 10}, 3)
	out := Dense(in, w, bias)
	want := []float32{1, 2, 13}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("Dense = %v, want %v", out.Data(), want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	in := From([]float32{1, 1, 1, 1}, 1, 4)
	out := Softmax(in)
	for _, v := range out.Data() {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("uniform softmax = %v", out.Data())
		}
	}
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n, k := 1+r.Intn(4), 1+r.Intn(10)
		in := New(n, k)
		FillGaussian(in, r, 10) // large logits stress stability
		out := Softmax(in)
		for b := 0; b < n; b++ {
			var s float64
			for i := 0; i < k; i++ {
				v := float64(out.At(b, i))
				if v < 0 || math.IsNaN(v) {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvLinearityProperty(t *testing.T) {
	// conv(a*x, w) == a * conv(x, w) for bias-free convolution.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		in, w, _, spec := randConvCase(r)
		scaled := in.Clone().Scale(2)
		left := Conv2D(scaled, w, nil, spec)
		right := Conv2D(in, w, nil, spec).Scale(2)
		return AllClose(left, right, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
