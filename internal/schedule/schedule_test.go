package schedule

import (
	"testing"
	"testing/quick"

	"repro/internal/accel"
	"repro/internal/tensor"
)

func testWorkload() Workload {
	return Workload{
		Spec: tensor.ConvSpec{InC: 16, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N:    1, H: 16, W: 16,
	}
}

func TestWorkloadKeyStable(t *testing.T) {
	a, b := testWorkload(), testWorkload()
	if a.Key() != b.Key() {
		t.Fatal("identical workloads must share a key")
	}
	c := testWorkload()
	c.H = 32
	if a.Key() == c.Key() {
		t.Fatal("different workloads must have different keys")
	}
}

func TestLegalSchedule(t *testing.T) {
	w := testWorkload()
	hw := accel.Default()
	s := ConvSchedule{TileOC: 8, TileOH: 4, TileOW: 16, TileIC: 16}
	if err := s.Legal(w, hw); err != nil {
		t.Fatalf("reasonable schedule rejected: %v", err)
	}
}

func TestIllegalSchedules(t *testing.T) {
	w := testWorkload()
	hw := accel.Default()
	cases := []ConvSchedule{
		{TileOC: 0, TileOH: 1, TileOW: 1, TileIC: 1},
		{TileOC: 64, TileOH: 1, TileOW: 1, TileIC: 1},  // > OutC
		{TileOC: 1, TileOH: 99, TileOW: 1, TileIC: 1},  // > OH
		{TileOC: 1, TileOH: 1, TileOW: 1, TileIC: 999}, // > InC
	}
	for i, s := range cases {
		if err := s.Legal(w, hw); err == nil {
			t.Errorf("case %d: illegal schedule accepted: %v", i, s)
		}
	}
}

func TestFootprintRejectedOnTinySRAM(t *testing.T) {
	w := testWorkload()
	hw := accel.Default()
	hw.SRAMBytes = 256 // absurdly small
	s := ConvSchedule{TileOC: 32, TileOH: 16, TileOW: 16, TileIC: 16}
	if err := s.Legal(w, hw); err == nil {
		t.Fatal("schedule exceeding the scratchpad must be rejected")
	}
}

func TestTilesCoverAllMACs(t *testing.T) {
	w := testWorkload()
	total := w.Spec.MACs(w.N, w.H, w.W)
	for _, s := range []ConvSchedule{
		{TileOC: 8, TileOH: 4, TileOW: 4, TileIC: 8},
		{TileOC: 32, TileOH: 16, TileOW: 16, TileIC: 16},
		{TileOC: 1, TileOH: 1, TileOW: 1, TileIC: 1},
	} {
		var got int64
		for _, tile := range s.Tiles(w) {
			got += tile.Muls
		}
		// Tiles may overcount when tile sizes do not divide extents (edge
		// tiles are modeled full-size) but never undercount.
		if got < total {
			t.Errorf("schedule %v loses MACs: %d < %d", s, got, total)
		}
	}
}

func TestTilesExactWhenDividing(t *testing.T) {
	w := testWorkload()
	s := ConvSchedule{TileOC: 8, TileOH: 4, TileOW: 4, TileIC: 8}
	var got int64
	for _, tile := range s.Tiles(w) {
		got += tile.Muls
	}
	if got != w.Spec.MACs(w.N, w.H, w.W) {
		t.Fatalf("dividing schedule should cover MACs exactly: %d vs %d",
			got, w.Spec.MACs(w.N, w.H, w.W))
	}
}

func TestSimulateRejectsIllegal(t *testing.T) {
	w := testWorkload()
	s := ConvSchedule{TileOC: 0, TileOH: 1, TileOW: 1, TileIC: 1}
	if _, err := s.Simulate(w, accel.Default()); err == nil {
		t.Fatal("Simulate must propagate legality errors")
	}
}

func TestSmallTilesUnderutilizeArray(t *testing.T) {
	// A 1×1×1 tile exposes parallelism 1 and must be drastically slower
	// than a schedule exposing full parallelism.
	w := testWorkload()
	hw := accel.Default()
	tiny, err := (ConvSchedule{TileOC: 1, TileOH: 1, TileOW: 1, TileIC: 16}).Simulate(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := (ConvSchedule{TileOC: 16, TileOH: 4, TileOW: 16, TileIC: 16}).Simulate(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Cycles < 10*wide.Cycles {
		t.Fatalf("tiny tiles (%d cycles) should be ≥10× slower than wide tiles (%d)",
			tiny.Cycles, wide.Cycles)
	}
}

func TestUnrollIncreasesParallelism(t *testing.T) {
	w := testWorkload()
	base := ConvSchedule{TileOC: 2, TileOH: 2, TileOW: 2, TileIC: 16}
	unrolled := base
	unrolled.UnrollKW = true
	if unrolled.parallelism(w) != base.parallelism(w)*w.Spec.KW {
		t.Fatal("unroll should multiply parallelism by KW")
	}
}

func TestOptionsArePowersOfTwoPlusExtent(t *testing.T) {
	got := Options(12)
	want := []int{1, 2, 4, 8, 12}
	if len(got) != len(want) {
		t.Fatalf("Options(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Options(12) = %v, want %v", got, want)
		}
	}
	if o := Options(8); o[len(o)-1] != 8 || len(o) != 4 {
		t.Fatalf("Options(8) = %v", o)
	}
}

func TestSpaceDimsAndAt(t *testing.T) {
	w := testWorkload()
	sp := NewSpace(w, accel.Default())
	dims := sp.Dims()
	if len(dims) != 6 || dims[4] != 2 || dims[5] != 3 {
		t.Fatalf("Dims = %v", dims)
	}
	idx := []int{0, 0, 0, 0, 1, 1}
	s := sp.At(idx)
	if s.TileOC != 1 || !s.UnrollKW || s.Dataflow != WeightStationary {
		t.Fatalf("At(%v) = %v", idx, s)
	}
	if sp.Size() <= 0 {
		t.Fatal("space must be non-empty")
	}
}

func TestSpaceEvalConsistentWithSimulate(t *testing.T) {
	w := testWorkload()
	hw := accel.Default()
	sp := NewSpace(w, hw)
	idx := []int{2, 1, 2, 2, 0, 0}
	cost, legal := sp.Eval(idx)
	if !legal {
		t.Fatal("expected legal point")
	}
	res, err := sp.At(idx).Simulate(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if cost != float64(res.Cycles) {
		t.Fatalf("Eval cost %v != Simulate cycles %d", cost, res.Cycles)
	}
}

func TestSpaceEvalDeterministicProperty(t *testing.T) {
	w := testWorkload()
	sp := NewSpace(w, accel.Default())
	dims := sp.Dims()
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		idx := make([]int, len(dims))
		for i, d := range dims {
			idx[i] = r.Intn(d)
		}
		c1, l1 := sp.Eval(idx)
		c2, l2 := sp.Eval(idx)
		return c1 == c2 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthwiseWorkloadSpace(t *testing.T) {
	w := Workload{
		Spec: tensor.ConvSpec{InC: 32, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Groups: 32},
		N: 1, H: 8, W: 8,
	}
	sp := NewSpace(w, accel.Default())
	// Group-local channels are 1, so OC/IC options collapse to {1}.
	if len(sp.OCOpts) != 1 || len(sp.ICOpts) != 1 {
		t.Fatalf("depthwise space should collapse channel dims: %v %v", sp.OCOpts, sp.ICOpts)
	}
	cost, legal := sp.Eval([]int{0, 0, 0, 0, 0, 0})
	if !legal || cost <= 0 {
		t.Fatal("depthwise schedule should be evaluable")
	}
}

func TestDataflowChangesTraffic(t *testing.T) {
	w := testWorkload()
	base := ConvSchedule{TileOC: 8, TileOH: 4, TileOW: 4, TileIC: 16}
	loadOf := func(d Dataflow) int64 {
		s := base
		s.Dataflow = d
		var load int64
		for _, tile := range s.Tiles(w) {
			load += tile.LoadBytes
		}
		return load
	}
	os := loadOf(OutputStationary)
	ws := loadOf(WeightStationary)
	is := loadOf(InputStationary)
	if ws >= os {
		t.Fatalf("weight-stationary load %d should beat output-stationary %d", ws, os)
	}
	if is >= os {
		t.Fatalf("input-stationary load %d should beat output-stationary %d", is, os)
	}
	// Ops are dataflow-invariant.
	var opsOS, opsWS int64
	sOS, sWS := base, base
	sWS.Dataflow = WeightStationary
	for _, tile := range sOS.Tiles(w) {
		opsOS += tile.Muls
	}
	for _, tile := range sWS.Tiles(w) {
		opsWS += tile.Muls
	}
	if opsOS != opsWS {
		t.Fatalf("dataflow must not change op counts: %d vs %d", opsOS, opsWS)
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "os" || WeightStationary.String() != "ws" ||
		InputStationary.String() != "is" {
		t.Fatal("dataflow names wrong")
	}
}

func TestDataflowFootprintPinsStationary(t *testing.T) {
	w := testWorkload()
	hw := accel.Default()
	// A schedule near the SRAM limit under OS may become illegal under WS
	// (the pinned weight slice adds footprint) — verify the footprint is
	// monotone in the stationary operand.
	s := ConvSchedule{TileOC: 32, TileOH: 16, TileOW: 16, TileIC: 16}
	osFp := s.footprintBytes(w)
	s.Dataflow = WeightStationary
	if s.footprintBytes(w) <= osFp {
		t.Fatal("weight-stationary footprint must exceed output-stationary")
	}
	_ = hw
}
