package schedule_test

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// ExampleConvSchedule_Simulate runs one tiling schedule of a convolution on
// the accelerator model.
func ExampleConvSchedule_Simulate() {
	wl := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 16, OutC: 32, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N: 1, H: 16, W: 16,
	}
	s := schedule.ConvSchedule{TileOC: 8, TileOH: 4, TileOW: 16, TileIC: 16}
	res, err := s.Simulate(wl, accel.Default())
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedule %s is legal and takes >0 cycles: %v\n", s, res.Cycles > 0)
	// Output: schedule oc8.oh4.ow16.ic16.os is legal and takes >0 cycles: true
}

// ExampleNewSpace enumerates a schedule search space.
func ExampleNewSpace() {
	wl := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		N:    1, H: 8, W: 8,
	}
	sp := schedule.NewSpace(wl, accel.Default())
	fmt.Printf("dims: %v (%d points)\n", sp.Dims(), sp.Size())
	// Output: dims: [4 4 4 4 2 3] (1536 points)
}
