// Package schedule defines the tiling schedule templates that map
// convolution kernels onto the simulated accelerator, mirroring the
// AutoTVM-style template-plus-tunable-parameters formulation the paper's
// auto-tuner searches over. A schedule fixes the output/input tile sizes
// and unrolling; legality checks enforce the scratchpad capacity and PE
// array constraints; Simulate lowers the schedule to pipeline tiles and
// runs the accelerator model.
package schedule

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/tensor"
)

// Workload is one convolution instance to schedule.
type Workload struct {
	Spec    tensor.ConvSpec
	N, H, W int
}

// OutDims returns the workload's output spatial dims.
func (w Workload) OutDims() (int, int) { return w.Spec.OutDims(w.H, w.W) }

// Key returns a stable identity string for tuning-cache lookups.
func (w Workload) Key() string {
	s := w.Spec.Normalize()
	return fmt.Sprintf("conv-n%d-c%d-k%d-r%dx%d-s%dx%d-p%dx%d-g%d-h%d-w%d",
		w.N, s.InC, s.OutC, s.KH, s.KW, s.StrideH, s.StrideW, s.PadH, s.PadW, s.Groups, w.H, w.W)
}

// Dataflow selects which operand stays resident across the tile loop — the
// Eyeriss-style taxonomy. It changes what each pipeline tile must load:
// the stationary operand's traffic amortizes over the loop it is held
// across.
type Dataflow int

const (
	// OutputStationary holds output accumulators; weights and inputs
	// stream per tile.
	OutputStationary Dataflow = iota
	// WeightStationary holds the weight slice across the spatial loop;
	// its load cost amortizes over the spatial tiles.
	WeightStationary
	// InputStationary holds the input tile across the output-channel
	// loop; its load cost amortizes over the OC tiles.
	InputStationary
)

// String returns the dataflow's short name.
func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "ws"
	case InputStationary:
		return "is"
	default:
		return "os"
	}
}

// ConvSchedule is one point of the schedule template: the output-channel,
// output-row, output-column and input-channel tile sizes, kernel-width
// unrolling, and the dataflow. It corresponds to the (T_x, T_y, T_z,
// Tile_*) knobs of AutoTVM-style conv templates plus the loop-order choice
// a spatial accelerator exposes.
type ConvSchedule struct {
	TileOC, TileOH, TileOW int
	TileIC                 int
	UnrollKW               bool
	Dataflow               Dataflow
}

// String renders the schedule compactly for logs and tables.
func (s ConvSchedule) String() string {
	u := ""
	if s.UnrollKW {
		u = "+unroll"
	}
	return fmt.Sprintf("oc%d.oh%d.ow%d.ic%d.%s%s", s.TileOC, s.TileOH, s.TileOW, s.TileIC, s.Dataflow, u)
}

// footprintBytes returns the double-buffered scratchpad footprint of one
// tile: the weight slice, the input halo tile, and the output tile.
func (s ConvSchedule) footprintBytes(w Workload) int64 {
	spec := w.Spec.Normalize()
	icg := spec.InC / spec.Groups
	tic := min(s.TileIC, icg)
	weight := int64(s.TileOC) * int64(tic) * int64(spec.KH) * int64(spec.KW) * 4
	inH := (s.TileOH-1)*spec.StrideH + spec.KH
	inW := (s.TileOW-1)*spec.StrideW + spec.KW
	input := int64(tic) * int64(inH) * int64(inW) * 4
	output := int64(s.TileOC) * int64(s.TileOH) * int64(s.TileOW) * 4
	fp := 2 * (weight + input + output) // double buffering
	// The stationary operand is additionally pinned across its loop.
	switch s.Dataflow {
	case WeightStationary:
		fp += weight
	case InputStationary:
		fp += input
	}
	return fp
}

// Legal reports whether the schedule is valid for the workload on the given
// hardware: positive tiles within the loop extents and a footprint that
// fits the scratchpad.
func (s ConvSchedule) Legal(w Workload, hw accel.Config) error {
	spec := w.Spec.Normalize()
	oh, ow := w.OutDims()
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	switch {
	case s.TileOC < 1 || s.TileOH < 1 || s.TileOW < 1 || s.TileIC < 1:
		return fmt.Errorf("schedule: non-positive tile in %v", s)
	case s.TileOC > ocg:
		return fmt.Errorf("schedule: TileOC %d exceeds group output channels %d", s.TileOC, ocg)
	case s.TileOH > oh || s.TileOW > ow:
		return fmt.Errorf("schedule: spatial tile %dx%d exceeds output %dx%d", s.TileOH, s.TileOW, oh, ow)
	case s.TileIC > icg:
		return fmt.Errorf("schedule: TileIC %d exceeds group input channels %d", s.TileIC, icg)
	}
	if fp := s.footprintBytes(w); fp > hw.SRAMBytes {
		return fmt.Errorf("schedule: footprint %d bytes exceeds scratchpad %d", fp, hw.SRAMBytes)
	}
	return nil
}

// parallelism is the scalar-lane parallelism a tile exposes: output
// channels × output columns (× kernel width when unrolled). The PE array
// cannot be utilized beyond it.
func (s ConvSchedule) parallelism(w Workload) int {
	p := s.TileOC * s.TileOW * s.TileOH
	if s.UnrollKW {
		p *= w.Spec.KW
	}
	return p
}

// maxTiles caps the pipeline-tile sequence length: beyond it, consecutive
// identical tiles are coalesced. Since every tile of a schedule is
// identical, coalescing preserves total ops and traffic and leaves the
// steady-state max(compute, transfer) behaviour intact; only the (already
// negligible) pipeline-fill granularity changes.
const maxTiles = 4096

// Tiles lowers the scheduled convolution to the pipeline-tile sequence
// consumed by accel.SimulateTiles.
func (s ConvSchedule) Tiles(w Workload) []accel.Tile {
	spec := w.Spec.Normalize()
	oh, ow := w.OutDims()
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	nOC := ceil(ocg, s.TileOC)
	nOH := ceil(oh, s.TileOH)
	nOW := ceil(ow, s.TileOW)
	tic := min(s.TileIC, icg)
	nIC := ceil(icg, tic)
	inH := (s.TileOH-1)*spec.StrideH + spec.KH
	inW := (s.TileOW-1)*spec.StrideW + spec.KW
	weightBytes := int64(s.TileOC) * int64(tic) * int64(spec.KH) * int64(spec.KW) * 4
	inBytes := int64(tic) * int64(inH) * int64(inW) * 4
	outBytes := int64(s.TileOC) * int64(s.TileOH) * int64(s.TileOW) * 4
	// The stationary operand's traffic amortizes over the loop it is held
	// across (spatial tiles for WS, output-channel tiles for IS).
	switch s.Dataflow {
	case WeightStationary:
		weightBytes = ceil64(weightBytes, int64(nOH*nOW))
	case InputStationary:
		inBytes = ceil64(inBytes, int64(nOC))
	}
	macsPerTile := int64(s.TileOC) * int64(s.TileOH) * int64(s.TileOW) * int64(tic) * int64(spec.KH) * int64(spec.KW)
	total := w.N * spec.Groups * nOC * nOH * nOW * nIC
	// Coalesce when the sequence would be too long (see maxTiles).
	group := 1
	if total > maxTiles {
		group = (total + maxTiles - 1) / maxTiles
	}
	tiles := make([]accel.Tile, 0, (total+group-1)/group)
	var cur accel.Tile
	inGroup := 0
	for i := 0; i < total; i++ {
		cur.LoadBytes += weightBytes + inBytes
		cur.Adds += macsPerTile
		cur.Muls += macsPerTile
		cur.SRAMAccesses += 2 * macsPerTile
		// Outputs are stored once per (oc, oh, ow) tile, on its last
		// reduction step.
		if (i+1)%nIC == 0 {
			cur.StoreBytes += outBytes
		}
		inGroup++
		if inGroup == group || i == total-1 {
			tiles = append(tiles, cur)
			cur = accel.Tile{}
			inGroup = 0
		}
	}
	return tiles
}

// Simulate runs the scheduled convolution on the accelerator model. The PE
// array is derated to the parallelism the tile shape exposes, which is what
// makes schedule choice matter: small tiles starve the array, oversized
// tiles are illegal.
func (s ConvSchedule) Simulate(w Workload, hw accel.Config) (accel.Result, error) {
	if err := s.Legal(w, hw); err != nil {
		return accel.Result{}, err
	}
	eff := hw
	if p := s.parallelism(w); p < eff.PEs {
		eff.PEs = p
	}
	return eff.SimulateTiles(w.Key()+"/"+s.String(), s.Tiles(w)), nil
}

// Options returns the power-of-two candidate values for a loop extent,
// always including 1 and the extent itself.
func Options(extent int) []int {
	var out []int
	for v := 1; v < extent; v *= 2 {
		out = append(out, v)
	}
	out = append(out, extent)
	return out
}

// Space enumerates the schedule search space of a workload: power-of-two
// tile sizes per dimension plus the unroll flag. It mirrors the
// template-parameter grid an AutoTVM-style tuner explores.
type Space struct {
	W  Workload
	HW accel.Config

	OCOpts, OHOpts, OWOpts, ICOpts []int
}

// NewSpace builds the search space for a workload.
func NewSpace(w Workload, hw accel.Config) *Space {
	spec := w.Spec.Normalize()
	oh, ow := w.OutDims()
	return &Space{
		W: w, HW: hw,
		OCOpts: Options(spec.OutC / spec.Groups),
		OHOpts: Options(oh),
		OWOpts: Options(ow),
		ICOpts: Options(spec.InC / spec.Groups),
	}
}

// Dims implements autotune.Space: the cardinality of each decision (the
// last two dimensions are the unroll flag and the dataflow).
func (s *Space) Dims() []int {
	return []int{len(s.OCOpts), len(s.OHOpts), len(s.OWOpts), len(s.ICOpts), 2, 3}
}

// At materializes the schedule at a given index vector.
func (s *Space) At(idx []int) ConvSchedule {
	return ConvSchedule{
		TileOC:   s.OCOpts[idx[0]],
		TileOH:   s.OHOpts[idx[1]],
		TileOW:   s.OWOpts[idx[2]],
		TileIC:   s.ICOpts[idx[3]],
		UnrollKW: idx[4] == 1,
		Dataflow: Dataflow(idx[5]),
	}
}

// Eval implements autotune.Space: the cost (cycles) of the schedule at idx,
// and whether it is legal.
func (s *Space) Eval(idx []int) (float64, bool) {
	sched := s.At(idx)
	res, err := sched.Simulate(s.W, s.HW)
	if err != nil {
		return 0, false
	}
	return float64(res.Cycles), true
}

// Size returns the total number of points (legal or not).
func (s *Space) Size() int {
	n := 1
	for _, d := range s.Dims() {
		n *= d
	}
	return n
}

func ceil(a, b int) int { return (a + b - 1) / b }

func ceil64(a, b int64) int64 { return (a + b - 1) / b }
