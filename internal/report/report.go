// Package report renders the evaluation's tables and figure series as
// aligned text and CSV, so every experiment driver prints the same rows the
// paper reports.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// Series is one line of a figure: Y values over X positions.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing an X axis, rendered as a table whose
// first column is X and whose remaining columns are the series.
type Figure struct {
	Title  string
	XLabel string
	Series []Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// Add appends a series.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// Fprint renders the figure as an aligned table: one row per distinct X.
func (f *Figure) Fprint(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	// Collect the union of X positions in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{Num(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = Num(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
}

// Num formats a float compactly: integers without decimals, small values
// with 3 significant decimals.
func Num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 0.01 && v > -0.01) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Speedup formats a ratio as "2.41x".
func Speedup(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Bytes formats a byte count with binary units.
func Bytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Count formats large counts with K/M/G suffixes.
func Count(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// CSV writes the figure in CSV form, same layout as Fprint.
func (f *Figure) CSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{Num(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = Num(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.CSV(w)
}
