package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFprintAligned(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "a") || !strings.Contains(lines[4], "longer-name") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if tb.NumRows() != 1 {
		t.Fatal("row not added")
	}
	var buf bytes.Buffer
	tb.Fprint(&buf) // must not panic
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	var buf bytes.Buffer
	tb.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestFigureFprint(t *testing.T) {
	f := NewFigure("Fig", "bits")
	f.Add(Series{Name: "ipe", X: []float64{2, 4, 8}, Y: []float64{3.2, 2.1, 1.1}})
	f.Add(Series{Name: "dense", X: []float64{2, 4, 8}, Y: []float64{1, 1, 1}})
	var buf bytes.Buffer
	f.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"bits", "ipe", "dense", "3.200", "2", "4", "8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureUnevenSeries(t *testing.T) {
	f := NewFigure("Fig", "x")
	f.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}})
	f.Add(Series{Name: "b", X: []float64{2, 3}, Y: []float64{200, 300}})
	var buf bytes.Buffer
	f.Fprint(&buf) // union of X = {1,2,3}; must not panic
	lines := strings.Count(buf.String(), "\n")
	if lines != 6 { // title + header + sep + 3 rows
		t.Fatalf("expected 6 lines, got %d:\n%s", lines, buf.String())
	}
}

func TestNum(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		0.0001: "1.000e-04",
		-2:     "-2",
	}
	for in, want := range cases {
		if got := Num(in); got != want {
			t.Errorf("Num(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedupBytesCount(t *testing.T) {
	if Speedup(2.416) != "2.42x" {
		t.Fatal(Speedup(2.416))
	}
	if Bytes(2048) != "2.00 KiB" || Bytes(3<<20) != "3.00 MiB" || Bytes(5) != "5 B" {
		t.Fatal("Bytes formatting wrong")
	}
	if Count(1500) != "1.50K" || Count(2_500_000) != "2.50M" || Count(7) != "7" {
		t.Fatal("Count formatting wrong")
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("Fig", "x")
	f.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}})
	var buf bytes.Buffer
	f.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "x,a") || !strings.Contains(out, "1,10") {
		t.Fatalf("figure CSV malformed:\n%s", out)
	}
}
