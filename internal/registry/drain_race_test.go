//go:build race

package registry

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ipe"
	"repro/internal/metrics"
)

// TestSwapDrainsWithoutDropsUnderRace hammers Predict from many goroutines
// while hot-swapping versions in a loop. Run under -race (build-tagged) it
// proves the swap handshake: zero errors, per-client monotonically
// non-decreasing versions, and every retired version's executor pool
// released (the arena-residency gauge balances back to the live versions).
func TestSwapDrainsWithoutDropsUnderRace(t *testing.T) {
	rec := metrics.Enable()
	defer metrics.Disable()
	r := testRegistry(t, ipe.NewDictStore())
	defer r.Close()
	if _, err := r.Add("m", 1); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	const swaps = 6
	in := testInput()
	var served atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				_, ver, err := r.Predict("m", in)
				if err != nil {
					t.Errorf("request dropped during swap: %v", err)
					return
				}
				if ver < last {
					t.Errorf("version regressed %d -> %d", last, ver)
					return
				}
				last = ver
				served.Add(1)
			}
		}()
	}

	retired := make([]*Version, 0, swaps)
	m, _ := r.Model("m")
	for i := 0; i < swaps; i++ {
		old := m.Current()
		if _, err := r.Swap("m", uint64(i+2)); err != nil {
			t.Fatal(err)
		}
		retired = append(retired, old)
		time.Sleep(10 * time.Millisecond) // let traffic land on the new version
	}
	close(done)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
	if got := m.Current().Version; got != swaps+1 {
		t.Fatalf("final version = %d, want %d", got, swaps+1)
	}
	if got := m.Swaps(); got != swaps {
		t.Fatalf("swap count = %d, want %d", got, swaps)
	}
	for i, v := range retired {
		if n := v.Plan.PooledExecutors(); n != 0 {
			t.Fatalf("retired version %d still pools %d executors", i+1, n)
		}
	}
	// Residency gauge: only the live version may hold warm executors. Close
	// the registry and the gauge must balance to zero — every arena of every
	// retired pool was subtracted exactly once.
	r.Close()
	if got := rec.Exec.ArenaBytesResident.Load(); got != 0 {
		t.Fatalf("arena residency after close = %d, want 0 (leaked executor arenas)", got)
	}
}
