package registry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// testGraph builds a tiny conv→flatten→dense network whose weights derive
// from the seed, so distinct seeds are distinct versions.
func testGraph(tb testing.TB, seed uint64) *graph.Graph {
	tb.Helper()
	g := graph.New("in", 1, 1, 8, 8)
	spec := tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := tensor.NewRNG(seed)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.5)
	b := tensor.New(4)
	tensor.FillGaussian(b, r, 0.1)
	c := g.Conv(g.In, "c1", spec, w, b)
	f := g.Flatten(c, "flat")
	dw := tensor.New(5, 4*8*8)
	tensor.FillGaussian(dw, r, 0.3)
	d := g.Dense(f, "fc", dw, nil)
	g.SetOutput(d)
	if err := g.InferShapes(); err != nil {
		tb.Fatal(err)
	}
	return g
}

// testCompile is the CompileFunc used throughout: every version compiles
// through identical options (plus an optional shared store), exactly the
// contract inspire-serve's obs.CompilePlan keeps.
func testCompile(tb testing.TB, store *ipe.DictStore) CompileFunc {
	return func(model string, seed uint64) (*runtime.Plan, error) {
		return runtime.Compile(testGraph(tb, seed), runtime.Options{Force: runtime.ImplIPE, DictStore: store})
	}
}

func testRegistry(tb testing.TB, store *ipe.DictStore) *Registry {
	tb.Helper()
	r, err := New(Options{
		Compile:   testCompile(tb, store),
		Serve:     serve.Config{MaxBatch: 8, SLO: 100 * time.Microsecond},
		DictStore: store,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func testInput() *tensor.Tensor {
	in := tensor.New(1, 1, 8, 8)
	tensor.FillGaussian(in, tensor.NewRNG(3), 1)
	return in
}

func TestAddSwapVersionsAndInfo(t *testing.T) {
	r := testRegistry(t, nil)
	defer r.Close()
	v1, err := r.Add("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("first version = %d, want 1", v1.Version)
	}
	if _, err := r.Add("m", 1); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	info, ok := r.Info("m")
	if !ok || info.Version != 1 || len(info.InputShape) == 0 {
		t.Fatalf("Info = %+v, %v", info, ok)
	}

	out1, ver, err := r.Predict("m", testInput())
	if err != nil || ver != 1 {
		t.Fatalf("Predict v1: ver=%d err=%v", ver, err)
	}

	v2, err := r.Swap("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("second version = %d, want 2", v2.Version)
	}
	m, _ := r.Model("m")
	if m.Swaps() != 1 {
		t.Fatalf("Swaps = %d, want 1", m.Swaps())
	}
	out2, ver, err := r.Predict("m", testInput())
	if err != nil || ver != 2 {
		t.Fatalf("Predict v2: ver=%d err=%v", ver, err)
	}
	// Different seeds must actually change the weights, or the swap test is
	// vacuous.
	same := true
	for i := range out1.Data() {
		if out1.Data()[i] != out2.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("version 2 output identical to version 1: seeds did not change weights")
	}

	if _, err := r.Swap("nope", 1); err != serve.ErrUnknownModel {
		t.Fatalf("Swap unknown model: %v", err)
	}
	if _, _, err := r.Predict("nope", testInput()); err != serve.ErrUnknownModel {
		t.Fatalf("Predict unknown model: %v", err)
	}
}

func TestSwapReleasesOldPoolAndPublishesMetrics(t *testing.T) {
	rec := metrics.Enable()
	defer metrics.Disable()
	r := testRegistry(t, nil)
	defer r.Close()
	if _, err := r.Add("m", 1); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Model("m")
	old := m.Current()
	// Warm the old pool so the swap has something to release.
	if _, _, err := r.Predict("m", testInput()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Swap("m", 2); err != nil {
		t.Fatal(err)
	}
	if n := old.Plan.PooledExecutors(); n != 0 {
		t.Fatalf("old version still pools %d executors after swap", n)
	}
	snap := rec.Snapshot()
	var found bool
	for _, ms := range snap.Models {
		if ms.Name == "m" {
			found = true
			if ms.Version != 2 || ms.Swaps != 1 || ms.ResidentBytes <= 0 {
				t.Fatalf("model snapshot %+v", ms)
			}
		}
	}
	if !found {
		t.Fatal("no model series in snapshot")
	}
}

func TestSharedDictResidencyAcrossModels(t *testing.T) {
	store := ipe.NewDictStore()
	r := testRegistry(t, store)
	defer r.Close()
	// Two models from the same seed share their whole backbone encoding.
	if _, err := r.Add("a", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("b", 7); err != nil {
		t.Fatal(err)
	}
	res := r.Residency()
	if len(res) != 2 {
		t.Fatalf("Residency rows = %d", len(res))
	}
	if res[0].SharedRefs != 0 {
		t.Fatalf("first model should own its programs: %+v", res[0])
	}
	if res[1].SharedRefs == 0 {
		t.Fatalf("second model shares nothing: %+v", res[1])
	}
	if res[1].OwnedBytes >= res[0].OwnedBytes {
		t.Fatalf("interning saved nothing: %+v vs %+v", res[1], res[0])
	}
	// Swapping one model to the same seed keeps sharing (successive versions
	// re-intern to the same canonical programs).
	if _, err := r.Swap("b", 7); err != nil {
		t.Fatal(err)
	}
	res = r.Residency()
	if res[1].SharedRefs == 0 {
		t.Fatalf("post-swap model shares nothing: %+v", res[1])
	}
	if store.Stats().ProgramHits == 0 {
		t.Fatal("store recorded no program hits")
	}
}

func TestResizePoolsAppliesLittlesLaw(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	r := testRegistry(t, nil)
	defer r.Close()
	if _, err := r.Add("m", 1); err != nil {
		t.Fatal(err)
	}
	// Idle model: clamped to MinPool.
	applied := r.ResizePools()
	if applied["m"] != r.opts.MinPool {
		t.Fatalf("idle pool = %d, want MinPool %d", applied["m"], r.opts.MinPool)
	}
	// Drive traffic so the endpoint series has QPS and latency, then resize.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := r.Predict("m", testInput()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	applied = r.ResizePools()
	if applied["m"] < r.opts.MinPool || applied["m"] > r.opts.MaxPool {
		t.Fatalf("pool %d outside [%d,%d]", applied["m"], r.opts.MinPool, r.opts.MaxPool)
	}
}

func TestHTTPEndpointsThroughHandler(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	r := testRegistry(t, ipe.NewDictStore())
	defer r.Close()
	if _, err := r.Add("m", 1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(r))
	defer srv.Close()

	// The provider path: predict carries model + version.
	rep, err := serve.RunLoad(serve.LoadConfig{
		URL: srv.URL, Model: "m", Clients: 2, Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.MisRouted != 0 || rep.VersionRegressions != 0 {
		t.Fatalf("load report %+v", rep)
	}
	if rep.MaxVersion != 1 {
		t.Fatalf("MaxVersion = %d, want 1", rep.MaxVersion)
	}

	// The swap endpoint installed via ExtendMux: a second load run that
	// hot-swaps mid-run must see the version advance with zero drops.
	rep, err = serve.RunLoad(serve.LoadConfig{
		URL: srv.URL, Model: "m", Clients: 2, Duration: 400 * time.Millisecond,
		SwapModel: "m", SwapSeed: 2, SwapAfter: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapStatus != 200 || rep.SwapVersion != 2 {
		t.Fatalf("swap outcome status=%d version=%d", rep.SwapStatus, rep.SwapVersion)
	}
	if rep.Failed != 0 || rep.MisRouted != 0 || rep.VersionRegressions != 0 {
		t.Fatalf("swap load report %+v", rep)
	}
	if rep.MinVersion != 1 || rep.MaxVersion != 2 {
		t.Fatalf("versions [%d,%d], want [1,2]", rep.MinVersion, rep.MaxVersion)
	}

	// Per-model metrics endpoint: filtered snapshot only has this model's
	// series.
	resp, err := srv.Client().Get(srv.URL + "/v1/models/m/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Endpoints) != 1 || snap.Endpoints[0].Name != "m" {
		t.Fatalf("filtered endpoints %+v", snap.Endpoints)
	}
	for _, l := range snap.Layers {
		if !strings.HasPrefix(l.Name, "m@v") {
			t.Fatalf("foreign layer series %q in filtered snapshot", l.Name)
		}
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/models/nope/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model metrics status %d", resp.StatusCode)
	}

	// Residency report endpoint.
	resp, err = srv.Client().Get(srv.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg struct {
		Models []ModelResidency `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Models) != 1 || reg.Models[0].OwnedBytes <= 0 {
		t.Fatalf("residency %+v", reg.Models)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	r := testRegistry(t, nil)
	if _, err := r.Add("m", 1); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Model("m")
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Predict("m", testInput()); err != serve.ErrClosed {
		t.Fatalf("Predict after Close: %v", err)
	}
	if _, err := r.Add("late", 1); err != serve.ErrClosed {
		t.Fatalf("Add after Close: %v", err)
	}
	if n := m.Current().Plan.PooledExecutors(); n != 0 {
		t.Fatalf("closed registry pools %d executors", n)
	}
}

// FuzzRegistrySwap drives concurrent Predicts against a registry while the
// fuzzed seed sequence hot-swaps versions, and byte-checks every output
// against a reference plan compiled from the version that claimed to serve
// it. Any dropped request, mis-versioned response, or byte divergence
// fails.
func FuzzRegistrySwap(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(7), uint64(7), uint64(7))
	f.Add(uint64(0), uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, s1, s2, s3 uint64) {
		store := ipe.NewDictStore()
		r := testRegistry(t, store)
		defer r.Close()
		if _, err := r.Add("m", s1); err != nil {
			t.Fatal(err)
		}
		// Reference outputs per seed, compiled unshared: whatever version
		// serves a request, its bytes must match its seed's reference.
		seeds := []uint64{s1, s2, s3}
		refs := make(map[int64][]float32, 3)
		in := testInput()
		for i, s := range seeds {
			p, err := runtime.Compile(testGraph(t, s), runtime.Options{Force: runtime.ImplIPE})
			if err != nil {
				t.Fatal(err)
			}
			out, err := p.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			refs[int64(i+1)] = out.Data()
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := int64(0)
				for {
					select {
					case <-done:
						return
					default:
					}
					out, ver, err := r.Predict("m", in)
					if err != nil {
						t.Errorf("Predict dropped a request: %v", err)
						return
					}
					if ver < last {
						t.Errorf("version regressed %d -> %d", last, ver)
						return
					}
					last = ver
					want := refs[ver]
					if len(out.Data()) != len(want) {
						t.Errorf("version %d output length %d != %d", ver, len(out.Data()), len(want))
						return
					}
					for j := range want {
						if out.Data()[j] != want[j] {
							t.Errorf("version %d output diverges at %d", ver, j)
							return
						}
					}
				}
			}()
		}
		for _, s := range seeds[1:] {
			if _, err := r.Swap("m", s); err != nil {
				t.Error(err)
			}
		}
		close(done)
		wg.Wait()
	})
}
