// Package registry is the multi-model, hot-swap model registry behind
// inspire-serve. It holds a versioned entry per model: each version owns a
// compiled runtime.Plan and a dynamic batcher, and an atomic pointer names
// the version receiving traffic. Loading a new version compiles it in the
// background (traffic keeps flowing through the old version), atomically
// redirects new submissions, drains the old batcher, and releases the old
// version's warm executor pool — no request admitted before, during, or
// after the swap is ever dropped.
//
// The zero-drop argument is a three-way handshake with serve.Batcher:
// Predict snapshots the current version and submits to its batcher. Either
// the submission lands before the swap closes that batcher — then Close
// drains it and the request completes on the old version — or it observes
// the closed batcher, gets ErrClosed, notices the version pointer moved,
// and resubmits to the new version. ErrClosed only propagates to callers
// when the whole registry is shutting down.
//
// When Options.DictStore is set, every version compiles through one shared
// content-addressed dictionary store (see ipe.DictStore): identical
// index-pair programs across models — and across successive versions of the
// same model, which typically share most layers — are interned to one
// canonical program whose compiled emit pass and partial-sum tables are
// reused. Residency() reports the resulting resident bytes per model, with
// the interned overlap attributed once.
package registry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// CompileFunc builds a fresh compiled plan for one model version. The
// registry calls it with the load request's seed (weights derive from it, so
// successive versions are distinguishable); implementations must route
// through the same runtime.Options for every call so versions stay
// comparable and shared-dictionary interning can collapse their overlap.
type CompileFunc func(model string, seed uint64) (*runtime.Plan, error)

// Options configures a Registry.
type Options struct {
	// Compile builds each version's plan. Required.
	Compile CompileFunc
	// Serve is the batcher configuration applied to every version.
	Serve serve.Config
	// DictStore, when non-nil, is reported by Residency as the shared
	// dictionary store the Compile function interns through. The registry
	// does not intern plans itself — CompileFunc owns the compile options —
	// it only accounts for the sharing.
	DictStore *ipe.DictStore
	// MinPool and MaxPool clamp the traffic-driven executor pool size per
	// model (defaults 2 and 4×MaxInFlight×GOMAXPROCS-equivalent 64).
	MinPool, MaxPool int
}

// Version is one immutable loaded instance of a model.
type Version struct {
	Model   string
	Version int64
	Seed    uint64
	Plan    *runtime.Plan
	Batcher *serve.Batcher
	loaded  time.Time
}

// Model is one served model: the atomic current-version pointer plus swap
// bookkeeping. All version transitions for a model serialize on loadMu;
// Predict never takes it.
type Model struct {
	Name string

	cur    atomic.Pointer[Version]
	swaps  atomic.Int64
	loadMu sync.Mutex

	reg *Registry
	ms  *metrics.ModelStats
}

// Registry implements serve.Provider over a set of hot-swappable models.
type Registry struct {
	opts Options

	mu     sync.RWMutex
	byName map[string]*Model
	closed bool

	sizerStop chan struct{}
	sizerDone chan struct{}
}

// New builds an empty registry. Options.Compile is required.
func New(opts Options) (*Registry, error) {
	if opts.Compile == nil {
		return nil, fmt.Errorf("registry: Options.Compile is required")
	}
	if opts.MinPool <= 0 {
		opts.MinPool = 2
	}
	if opts.MaxPool <= 0 {
		opts.MaxPool = 64
	}
	return &Registry{opts: opts, byName: make(map[string]*Model)}, nil
}

// Add compiles and serves the first version of a model. It is the startup
// path; use Swap to load subsequent versions.
func (r *Registry) Add(name string, seed uint64) (*Version, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, serve.ErrClosed
	}
	if _, ok := r.byName[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: model %q already registered", name)
	}
	m := &Model{Name: name, reg: r, ms: metrics.Get().Model(name)}
	r.byName[name] = m
	r.mu.Unlock()

	v, err := m.load(seed)
	if err != nil {
		r.mu.Lock()
		delete(r.byName, name)
		r.mu.Unlock()
		return nil, err
	}
	return v, nil
}

// Swap compiles a new version of the named model and hot-swaps it into the
// traffic path: the compile runs while the old version keeps serving, the
// atomic pointer flips, the old batcher drains (completing every admitted
// request), and the old executor pool is released.
func (r *Registry) Swap(name string, seed uint64) (*Version, error) {
	m, ok := r.model(name)
	if !ok {
		return nil, serve.ErrUnknownModel
	}
	return m.load(seed)
}

// load compiles seed into the next version and performs the swap handshake.
// Serialized per model by loadMu so concurrent loads cannot interleave their
// drain phases.
func (m *Model) load(seed uint64) (*Version, error) {
	m.loadMu.Lock()
	defer m.loadMu.Unlock()

	old := m.cur.Load()
	next := int64(1)
	if old != nil {
		next = old.Version + 1
	}
	plan, err := m.reg.opts.Compile(m.Name, seed)
	if err != nil {
		return nil, fmt.Errorf("registry: compiling %s version %d: %w", m.Name, next, err)
	}
	// Layer series carry the version ("name@vN/..."); the endpoint series is
	// registered under the bare model name so request/flush counters stay
	// continuous across swaps (and FilterModel keeps both).
	plan.MetricsPrefix = fmt.Sprintf("%s@v%d/", m.Name, next)
	v := &Version{
		Model:   m.Name,
		Version: next,
		Seed:    seed,
		Plan:    plan,
		Batcher: serve.NewBatcher(m.Name, plan, m.reg.opts.Serve),
		loaded:  time.Now(),
	}

	m.cur.Store(v) // new traffic routes to the new version from here on
	if old != nil {
		m.swaps.Add(1)
		old.Batcher.Close()    // drains every admitted request, then stops
		old.Plan.ReleasePool() // discard the old version's warm executors
	}
	m.publish()
	return v, nil
}

// Current returns the version serving traffic (nil before the first Add
// completes).
func (m *Model) Current() *Version { return m.cur.Load() }

// Swaps counts completed hot swaps (version loads beyond the first).
func (m *Model) Swaps() int64 { return m.swaps.Load() }

// publish pushes the model's gauges to the metrics recorder.
func (m *Model) publish() {
	v := m.cur.Load()
	if v == nil {
		return
	}
	owned, shared := v.Plan.ResidentBytes(nil)
	m.ms.Publish(v.Version, m.swaps.Load(), owned, shared, int64(v.Plan.PooledExecutors()))
}

func (r *Registry) model(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	return m, ok
}

// Model returns the named model's registry entry.
func (r *Registry) Model(name string) (*Model, bool) { return r.model(name) }

// Names lists the registered model names, sorted (serve.Provider).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info describes the named model's current version (serve.Provider).
func (r *Registry) Info(name string) (serve.ModelInfo, bool) {
	m, ok := r.model(name)
	if !ok {
		return serve.ModelInfo{}, false
	}
	v := m.cur.Load()
	if v == nil {
		return serve.ModelInfo{}, false
	}
	cfg := r.opts.Serve
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	return serve.ModelInfo{
		Name:        name,
		Version:     v.Version,
		InputShape:  v.Plan.Graph.In.OutShape,
		OutputShape: v.Plan.Graph.Out.OutShape,
		MaxBatch:    cfg.MaxBatch,
		SLONs:       cfg.SLO.Nanoseconds(),
	}, true
}

// Predict routes one request through the named model's current version
// (serve.Provider). If a hot swap closes the version's batcher between the
// snapshot and the submit, the ErrClosed is absorbed and the request
// resubmits to the successor — the caller never observes the swap except
// through the version number in the response.
func (r *Registry) Predict(name string, input *tensor.Tensor) (*tensor.Tensor, int64, error) {
	m, ok := r.model(name)
	if !ok {
		return nil, 0, serve.ErrUnknownModel
	}
	for {
		v := m.cur.Load()
		if v == nil {
			return nil, 0, serve.ErrUnknownModel
		}
		out, err := v.Batcher.Submit(input)
		if err == serve.ErrClosed && m.cur.Load() != v {
			continue // swapped mid-flight: retry on the successor version
		}
		return out, v.Version, err
	}
}

// Close drains every model's current batcher and stops the pool sizer.
// Subsequent Predicts fail with ErrClosed (via the drained batchers).
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	models := make([]*Model, 0, len(r.byName))
	for _, m := range r.byName {
		models = append(models, m)
	}
	sizerStop, sizerDone := r.sizerStop, r.sizerDone
	r.mu.Unlock()
	if sizerStop != nil {
		close(sizerStop)
		<-sizerDone
	}
	for _, m := range models {
		m.loadMu.Lock() // no swap may race the final drain
		if v := m.cur.Load(); v != nil {
			v.Batcher.Close()
			v.Plan.ReleasePool()
		}
		m.loadMu.Unlock()
	}
}

// ModelResidency is one row of the registry residency report.
type ModelResidency struct {
	Model      string `json:"model"`
	Version    int64  `json:"version"`
	Swaps      int64  `json:"swaps"`
	OwnedBytes int64  `json:"owned_bytes"`  // resident bytes first attributed to this model
	SharedRefs int64  `json:"shared_bytes"` // bytes referencing programs another model owns
}

// Residency walks every model's current plan with one canonical-program set
// (sorted by name, so attribution is deterministic): the first plan
// referencing an interned program owns its bytes, later plans count them as
// shared references. The sum of OwnedBytes is the process's actual resident
// model bytes; the sum of SharedRefs is what interning saved.
func (r *Registry) Residency() []ModelResidency {
	seen := make(map[*ipe.Program]bool)
	out := make([]ModelResidency, 0)
	for _, name := range r.Names() {
		m, ok := r.model(name)
		if !ok {
			continue
		}
		v := m.cur.Load()
		if v == nil {
			continue
		}
		owned, shared := v.Plan.ResidentBytes(seen)
		out = append(out, ModelResidency{
			Model:      name,
			Version:    v.Version,
			Swaps:      m.swaps.Load(),
			OwnedBytes: owned,
			SharedRefs: shared,
		})
	}
	return out
}

// ResizePools sizes every model's executor free-list from its observed
// traffic: Little's law (concurrency = QPS × mean latency) over the model's
// endpoint series, clamped to [MinPool, MaxPool]. Idle models shrink to
// MinPool; a model sustaining high QPS at high latency keeps enough warm
// executors that flushes never rebuild arenas. Returns the applied sizes by
// model name.
func (r *Registry) ResizePools() map[string]int {
	snap := metrics.Capture()
	eps := make(map[string]metrics.EndpointSnapshot, len(snap.Endpoints))
	for _, ep := range snap.Endpoints {
		eps[ep.Name] = ep
	}
	applied := make(map[string]int)
	for _, name := range r.Names() {
		m, ok := r.model(name)
		if !ok {
			continue
		}
		v := m.cur.Load()
		if v == nil {
			continue
		}
		want := r.opts.MinPool
		if ep, ok := eps[name]; ok && ep.QPS > 0 {
			concurrency := ep.QPS * float64(ep.Latency.MeanNs) / 1e9
			want = int(math.Ceil(concurrency)) + 1
			if want < r.opts.MinPool {
				want = r.opts.MinPool
			}
			if want > r.opts.MaxPool {
				want = r.opts.MaxPool
			}
		}
		v.Plan.SetPoolCap(want)
		applied[name] = want
		m.publish()
	}
	return applied
}

// StartPoolSizer runs ResizePools every interval until Close.
func (r *Registry) StartPoolSizer(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r.mu.Lock()
	if r.sizerStop != nil || r.closed {
		r.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	r.sizerStop, r.sizerDone = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.ResizePools()
			case <-stop:
				return
			}
		}
	}()
}

// versionRequest is the POST /v1/models/{model}/versions body.
type versionRequest struct {
	Seed uint64 `json:"seed"`
}

// versionResponse answers a successful version load.
type versionResponse struct {
	Model   string `json:"model"`
	Version int64  `json:"version"`
	Seed    uint64 `json:"seed"`
	Swaps   int64  `json:"swaps"`
}

// ExtendMux installs the hot-swap endpoints onto the serving mux
// (serve.NewHandler calls this through the muxExtender hook):
//
//	POST /v1/models/{model}/versions   {"seed":N} → compile + swap (blocking)
//	GET  /v1/models/{model}/metrics    metrics.Snapshot filtered to the model
//	GET  /v1/registry                  residency report (owned/shared bytes)
func (r *Registry) ExtendMux(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/models/{model}/versions", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("model")
		var body versionRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			httpJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		v, err := r.Swap(name, body.Seed)
		if err != nil {
			status := http.StatusInternalServerError
			if err == serve.ErrUnknownModel {
				status = http.StatusNotFound
			}
			httpJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		m, _ := r.model(name)
		httpJSON(w, http.StatusOK, versionResponse{
			Model: name, Version: v.Version, Seed: v.Seed, Swaps: m.Swaps(),
		})
	})
	mux.HandleFunc("GET /v1/models/{model}/metrics", func(w http.ResponseWriter, req *http.Request) {
		name := req.PathValue("model")
		if _, ok := r.model(name); !ok {
			httpJSON(w, http.StatusNotFound, map[string]string{"error": "unknown model"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		metrics.Capture().FilterModel(name).WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/registry", func(w http.ResponseWriter, _ *http.Request) {
		httpJSON(w, http.StatusOK, map[string]any{"models": r.Residency()})
	})
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
