package quant_test

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// ExampleQuantize shows symmetric quantization and its reconstruction
// error bound.
func ExampleQuantize() {
	w := tensor.From([]float32{-1, -0.5, 0, 0.5, 1}, 5, 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	fmt.Printf("codes in [-7,7]: %v\n", q.Codes)
	fmt.Printf("max error <= scale/2: %v\n",
		quant.QuantError(w, q) <= float64(q.Params[0].Scale)/2*1.001)
	// Output:
	// codes in [-7,7]: [-7 -3 0 3 7]
	// max error <= scale/2: true
}

// ExamplePruneMagnitude zeroes the smallest-magnitude half of a tensor.
func ExamplePruneMagnitude() {
	w := tensor.From([]float32{5, -0.1, 3, 0.2, -4, 0.05}, 6)
	n := quant.PruneMagnitude(w, 0.5)
	fmt.Printf("pruned %d: %v\n", n, w.Data())
	// Output: pruned 3: [5 0 3 0 -4 0]
}
