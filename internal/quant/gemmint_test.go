package quant

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// gemmIntNaive is the triple-loop int64 oracle; the blocked kernels must
// match it bit-exactly after narrowing to int32 (the shapes used keep sums
// inside int32).
func gemmIntNaive(at func(i int) int32, bt func(i int) int32, m, k, n int) []int32 {
	c := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += int64(at(i*k+p)) * int64(bt(p*n+j))
			}
		}
	}
	out := make([]int32, m*n)
	for i, v := range c {
		out[i] = int32(v)
	}
	return out
}

// TestGemmIntExact sweeps every m and n remainder against the 4x4 tile
// (including degenerate m < 4 / n < 4 shapes) and checks the int8 and
// int16 kernels against the oracle exactly.
func TestGemmIntExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for m := 1; m <= 9; m++ {
		for n := 1; n <= 9; n++ {
			for _, k := range []int{1, 2, 3, 7, 64, 129} {
				a8 := make([]int8, m*k)
				b8 := make([]int8, k*n)
				for i := range a8 {
					a8[i] = int8(r.Intn(256) - 128)
				}
				for i := range b8 {
					b8[i] = int8(r.Intn(256) - 128)
				}
				want := gemmIntNaive(
					func(i int) int32 { return int32(a8[i]) },
					func(i int) int32 { return int32(b8[i]) }, m, k, n)
				got := make([]int32, m*n)
				GemmInt8(a8, b8, got, m, k, n)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("int8 m=%d k=%d n=%d: [%d]=%d want %d", m, k, n, i, got[i], want[i])
					}
				}

				a16 := make([]int16, m*k)
				b16 := make([]int16, k*n)
				for i := range a16 {
					a16[i] = int16(r.Intn(1<<12) - 1<<11)
				}
				for i := range b16 {
					b16[i] = int16(r.Intn(1<<12) - 1<<11)
				}
				want16 := gemmIntNaive(
					func(i int) int32 { return int32(a16[i]) },
					func(i int) int32 { return int32(b16[i]) }, m, k, n)
				got16 := make([]int32, m*n)
				GemmInt16(a16, b16, got16, m, k, n)
				for i := range want16 {
					if got16[i] != want16[i] {
						t.Fatalf("int16 m=%d k=%d n=%d: [%d]=%d want %d", m, k, n, i, got16[i], want16[i])
					}
				}
			}
		}
	}
}

// TestGemmIntQuantizedCodes runs the int8 kernel on real Quantize output
// (narrowed codes of a quantized weight matrix) against the oracle.
func TestGemmIntQuantizedCodes(t *testing.T) {
	const m, k, n = 13, 50, 11
	rng := tensor.NewRNG(5)
	wt := tensor.New(m, k)
	xt := tensor.New(k, n)
	tensor.FillGaussian(wt, rng, 1)
	tensor.FillGaussian(xt, rng, 1)
	qw := Quantize(wt, 8, PerTensor)
	qx := Quantize(xt, 8, PerTensor)
	a8, ok := NarrowCodes8(qw.Codes)
	if !ok {
		t.Fatal("8-bit weight codes must fit int8")
	}
	b8, ok := NarrowCodes8(qx.Codes)
	if !ok {
		t.Fatal("8-bit activation codes must fit int8")
	}
	want := gemmIntNaive(
		func(i int) int32 { return qw.Codes[i] },
		func(i int) int32 { return qx.Codes[i] }, m, k, n)
	got := make([]int32, m*n)
	GemmInt8(a8, b8, got, m, k, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestNarrowCodes(t *testing.T) {
	if _, ok := NarrowCodes8([]int32{127, -128}); !ok {
		t.Fatal("in-range int8 codes must narrow")
	}
	if _, ok := NarrowCodes8([]int32{128}); ok {
		t.Fatal("128 must not narrow to int8")
	}
	if _, ok := NarrowCodes16([]int32{32767, -32768}); !ok {
		t.Fatal("in-range int16 codes must narrow")
	}
	if _, ok := NarrowCodes16([]int32{-32769}); ok {
		t.Fatal("-32769 must not narrow to int16")
	}
}

func BenchmarkGemmInt(b *testing.B) {
	for _, sz := range [][3]int{{64, 288, 256}, {120, 400, 16}} {
		m, k, n := sz[0], sz[1], sz[2]
		r := rand.New(rand.NewSource(int64(m + k + n)))
		a8 := make([]int8, m*k)
		b8 := make([]int8, k*n)
		for i := range a8 {
			a8[i] = int8(r.Intn(256) - 128)
		}
		for i := range b8 {
			b8[i] = int8(r.Intn(256) - 128)
		}
		a16 := make([]int16, m*k)
		b16 := make([]int16, k*n)
		for i := range a16 {
			a16[i] = int16(a8[i])
		}
		for i := range b16 {
			b16[i] = int16(b8[i])
		}
		c := make([]int32, m*n)
		b.Run(fmt.Sprintf("int8/m%d_k%d_n%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GemmInt8(a8, b8, c, m, k, n)
			}
		})
		b.Run(fmt.Sprintf("int16/m%d_k%d_n%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GemmInt16(a16, b16, c, m, k, n)
			}
		})
	}
}
