package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	r := tensor.NewRNG(1)
	w := tensor.New(16, 8, 3, 3)
	tensor.FillGaussian(w, r, 0.1)
	for _, bits := range []int{2, 4, 8, 16} {
		q := Quantize(w, bits, PerTensor)
		// Max error of symmetric uniform quantization is scale/2, padded
		// slightly for float32 rounding in the scale itself.
		bound := float64(q.Params[0].Scale)/2*1.001 + 1e-7
		if err := QuantError(w, q); err > bound {
			t.Errorf("bits=%d: quant error %v exceeds scale/2 bound %v", bits, err, bound)
		}
	}
}

func TestQuantizeCodesWithinRange(t *testing.T) {
	r := tensor.NewRNG(2)
	w := tensor.New(4, 4)
	tensor.FillGaussian(w, r, 1)
	for _, bits := range []int{1, 2, 3, 4, 8} {
		q := Quantize(w, bits, PerTensor)
		qmax := int32(1<<(bits-1)) - 1
		if qmax == 0 {
			qmax = 1
		}
		for _, c := range q.Codes {
			if c > qmax || c < -qmax {
				t.Fatalf("bits=%d: code %d outside [−%d, %d]", bits, c, qmax, qmax)
			}
		}
	}
}

func TestQuantizeDistinctValuesBounded(t *testing.T) {
	r := tensor.NewRNG(3)
	w := tensor.New(64, 64)
	tensor.FillGaussian(w, r, 1)
	for _, bits := range []int{2, 3, 4} {
		q := Quantize(w, bits, PerTensor)
		if dv := q.DistinctValues(); dv > q.Levels() {
			t.Errorf("bits=%d: %d distinct values > %d levels", bits, dv, q.Levels())
		}
	}
}

func TestQuantizePreservesZeros(t *testing.T) {
	w := tensor.From([]float32{0, 1, 0, -1, 0, 0.5}, 6)
	q := Quantize(w, 4, PerTensor)
	for i, v := range w.Data() {
		if v == 0 && q.Codes[i] != 0 {
			t.Fatalf("zero weight %d quantized to nonzero code %d", i, q.Codes[i])
		}
	}
}

func TestQuantizeAllZerosSafe(t *testing.T) {
	w := tensor.New(8)
	q := Quantize(w, 8, PerTensor)
	for _, c := range q.Codes {
		if c != 0 {
			t.Fatal("all-zero tensor must quantize to all-zero codes")
		}
	}
	deq := q.Dequantize()
	for _, v := range deq.Data() {
		if v != 0 {
			t.Fatal("all-zero tensor must dequantize to zeros")
		}
	}
}

func TestPerChannelBeatsPerTensorOnScaledChannels(t *testing.T) {
	// Channel 0 is tiny, channel 1 is huge: per-channel scales adapt.
	w := tensor.New(2, 100)
	r := tensor.NewRNG(4)
	d := w.Data()
	for i := 0; i < 100; i++ {
		d[i] = float32(r.NormFloat64() * 0.01)
		d[100+i] = float32(r.NormFloat64() * 10)
	}
	// Compare the error on the *small* channel only: the large channel has
	// the same scale under both schemes, so the max-abs error ties there.
	sliceErr := func(q *Quantized) float64 {
		deq := q.Dequantize()
		var m float64
		for i := 0; i < 100; i++ {
			if e := math.Abs(float64(deq.Data()[i] - w.Data()[i])); e > m {
				m = e
			}
		}
		return m
	}
	pt := sliceErr(Quantize(w, 4, PerTensor))
	pc := sliceErr(Quantize(w, 4, PerChannel))
	if pc >= pt {
		t.Fatalf("per-channel error %v should beat per-tensor %v on the small channel", pc, pt)
	}
}

func TestChannelParamsSelection(t *testing.T) {
	w := tensor.New(2, 4)
	w.Set(1, 0, 0)
	w.Set(100, 1, 0)
	q := Quantize(w, 8, PerChannel)
	if len(q.Params) != 2 {
		t.Fatalf("expected 2 param sets, got %d", len(q.Params))
	}
	if q.ChannelParams(0) != q.Params[0] || q.ChannelParams(7) != q.Params[1] {
		t.Fatal("ChannelParams maps indices to the wrong channel")
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows, cols := 1+r.Intn(8), 1+r.Intn(32)
		w := tensor.New(rows, cols)
		tensor.FillGaussian(w, r, 1)
		bits := 2 + r.Intn(7)
		scheme := PerTensor
		if r.Intn(2) == 1 {
			scheme = PerChannel
		}
		q := Quantize(w, bits, scheme)
		// Error bounded by the largest per-channel scale/2.
		var maxScale float32
		for _, p := range q.Params {
			if p.Scale > maxScale {
				maxScale = p.Scale
			}
		}
		return QuantError(w, q) <= float64(maxScale)/2*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeBitsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bits=0")
		}
	}()
	Quantize(tensor.New(2), 0, PerTensor)
}

func TestPruneMagnitude(t *testing.T) {
	w := tensor.From([]float32{5, -0.1, 3, 0.2, -4, 0.05}, 6)
	n := PruneMagnitude(w, 0.5)
	if n != 3 {
		t.Fatalf("pruned %d, want 3", n)
	}
	want := []float32{5, 0, 3, 0, -4, 0}
	for i, v := range w.Data() {
		if v != want[i] {
			t.Fatalf("PruneMagnitude = %v, want %v", w.Data(), want)
		}
	}
}

func TestPruneMagnitudeSparsityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 10 + r.Intn(200)
		w := tensor.New(n)
		tensor.FillGaussian(w, r, 1)
		p := r.Float64()
		PruneMagnitude(w, p)
		got := w.Sparsity()
		want := math.Round(p*float64(n)) / float64(n)
		return got >= want-1e-9 // pruning may overlap pre-existing zeros
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneMagnitudeBoundaries(t *testing.T) {
	w := tensor.New(4).Fill(1)
	if PruneMagnitude(w, 0) != 0 {
		t.Fatal("p=0 must prune nothing")
	}
	if PruneMagnitude(w, 2) != 4 {
		t.Fatal("p>1 must clamp to pruning everything")
	}
}

func TestPruneStructured(t *testing.T) {
	w := tensor.New(2, 4, 1, 1)
	// Make channels 1 and 3 small.
	vals := []float32{10, 0.1, 10, 0.2, 10, 0.1, 10, 0.2}
	copy(w.Data(), vals)
	n := PruneStructured(w, 0.5)
	if n != 2 {
		t.Fatalf("pruned %d channels, want 2", n)
	}
	for o := 0; o < 2; o++ {
		if w.At(o, 1, 0, 0) != 0 || w.At(o, 3, 0, 0) != 0 {
			t.Fatal("small channels should be zeroed")
		}
		if w.At(o, 0, 0, 0) != 10 || w.At(o, 2, 0, 0) != 10 {
			t.Fatal("large channels must survive")
		}
	}
}

func TestQuantizedSparsityTracksPruning(t *testing.T) {
	r := tensor.NewRNG(8)
	w := tensor.New(32, 32)
	tensor.FillGaussian(w, r, 1)
	pruned := PruneMagnitude(w, 0.8)
	q := Quantize(w, 4, PerTensor)
	want := float64(pruned) / float64(w.NumElements())
	if s := q.Sparsity(); s < want {
		t.Fatalf("quantized sparsity %v should be at least the pruned fraction %v", s, want)
	}
}

func TestCalibrate(t *testing.T) {
	a := tensor.New(4).Fill(2)
	b := tensor.New(4).Fill(-8)
	p := Calibrate([]*tensor.Tensor{a, b}, 8)
	wantScale := float32(8) / 127
	if math.Abs(float64(p.Scale-wantScale)) > 1e-6 {
		t.Fatalf("Calibrate scale = %v, want %v", p.Scale, wantScale)
	}
}

func TestQuantizedClone(t *testing.T) {
	r := tensor.NewRNG(9)
	w := tensor.New(4, 4)
	tensor.FillGaussian(w, r, 1)
	q := Quantize(w, 4, PerTensor)
	c := q.Clone()
	c.Codes[0] = 99
	if q.Codes[0] == 99 {
		t.Fatal("Clone must deep-copy codes")
	}
}

func TestSchemeString(t *testing.T) {
	if PerTensor.String() != "per-tensor" || PerChannel.String() != "per-channel" {
		t.Fatal("scheme names wrong")
	}
}

func TestCalibrateAsymCoversRange(t *testing.T) {
	a := tensor.From([]float32{0, 1, 2, 6}, 4) // post-ReLU style
	p := CalibrateAsym([]*tensor.Tensor{a}, 8)
	if p.ZeroPoint != 0 {
		t.Fatalf("non-negative data should get zero point 0, got %d", p.ZeroPoint)
	}
	codes := QuantizeAsym(a.Data(), p, 8)
	back := DequantizeAsym(codes, p)
	for i := range back {
		if math.Abs(float64(back[i]-a.Data()[i])) > float64(p.Scale)/2*1.01 {
			t.Fatalf("asym round trip error too big at %d: %v vs %v", i, back[i], a.Data()[i])
		}
	}
}

func TestCalibrateAsymMixedSign(t *testing.T) {
	a := tensor.From([]float32{-2, 0, 6}, 3)
	p := CalibrateAsym([]*tensor.Tensor{a}, 8)
	if p.ZeroPoint <= 0 {
		t.Fatalf("mixed-sign data needs positive zero point, got %d", p.ZeroPoint)
	}
	codes := QuantizeAsym([]float32{0}, p, 8)
	if codes[0] != p.ZeroPoint {
		t.Fatalf("real 0 must map to the zero point: %d vs %d", codes[0], p.ZeroPoint)
	}
}

func TestQuantizeAsymClamps(t *testing.T) {
	p := Params{Scale: 1, ZeroPoint: 10}
	codes := QuantizeAsym([]float32{-100, 300}, p, 8)
	if codes[0] != 0 || codes[1] != 255 {
		t.Fatalf("clamping wrong: %v", codes)
	}
}

func TestCalibrateAsymEmpty(t *testing.T) {
	p := CalibrateAsym(nil, 8)
	if p.Scale != 1 || p.ZeroPoint != 0 {
		t.Fatalf("empty calibration should be identity-ish: %+v", p)
	}
}
