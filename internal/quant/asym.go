package quant

import (
	"math"

	"repro/internal/tensor"
)

// Asymmetric (affine) activation quantization. Post-ReLU activations are
// non-negative, so a symmetric quantizer wastes half its codes; an
// asymmetric quantizer real = scale·(q − zeroPoint) uses the full unsigned
// range. Weights stay symmetric (zero code must be exactly zero for
// pruning and index-pair encoding); asymmetric codes are for the
// activation side, where the integer executor folds the zero-point into a
// per-row correction term (see ipe.ExecuteQuantizedAsym).

// CalibrateAsym computes affine parameters covering [min, max] of the
// calibration tensors with 2^bits unsigned levels.
func CalibrateAsym(samples []*tensor.Tensor, bits int) Params {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		for _, v := range s.Data() {
			f := float64(v)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
	}
	if math.IsInf(lo, 1) { // no samples
		return Params{Scale: 1}
	}
	if lo > 0 {
		lo = 0 // keep zero exactly representable
	}
	if hi < 0 {
		hi = 0
	}
	levels := float64(int64(1)<<bits) - 1
	scale := (hi - lo) / levels
	if scale == 0 {
		scale = 1
	}
	zp := int32(math.RoundToEven(-lo / scale))
	return Params{Scale: float32(scale), ZeroPoint: zp}
}

// QuantizeAsym converts activations to unsigned b-bit codes under the
// affine params: q = clamp(round(x/scale) + zeroPoint, 0, 2^bits−1).
func QuantizeAsym(x []float32, p Params, bits int) []int32 {
	qmax := int32(1<<bits) - 1
	inv := float64(0)
	if p.Scale != 0 {
		inv = 1 / float64(p.Scale)
	}
	codes := make([]int32, len(x))
	for i, v := range x {
		c := int32(math.RoundToEven(float64(v)*inv)) + p.ZeroPoint
		if c < 0 {
			c = 0
		}
		if c > qmax {
			c = qmax
		}
		codes[i] = c
	}
	return codes
}

// DequantizeAsym reconstructs real values from affine codes.
func DequantizeAsym(codes []int32, p Params) []float32 {
	out := make([]float32, len(codes))
	for i, c := range codes {
		out[i] = p.Scale * float32(c-p.ZeroPoint)
	}
	return out
}
