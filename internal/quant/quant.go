// Package quant implements uniform affine quantization and magnitude
// pruning for weight tensors. Index-pair encoding operates on quantized
// weights: the fewer distinct weight values a layer has, the larger the
// index sets that share a value and the more pair repetition the encoder can
// harvest, so quantization is the lever that controls INSPIRE's gains.
package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Scheme selects the granularity of the quantization parameters.
type Scheme int

const (
	// PerTensor uses a single (scale, zero-point) for the whole tensor.
	PerTensor Scheme = iota
	// PerChannel uses one (scale, zero-point) per output channel
	// (dimension 0 of an OIHW weight or an [m,k] dense weight).
	PerChannel
)

// String returns the scheme's conventional name.
func (s Scheme) String() string {
	switch s {
	case PerTensor:
		return "per-tensor"
	case PerChannel:
		return "per-channel"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Params holds the affine quantization parameters of one channel (or of the
// whole tensor for per-tensor quantization): real = scale*(q - zeroPoint).
type Params struct {
	Scale     float32
	ZeroPoint int32
}

// Quantized is a quantized integer tensor together with the parameters
// needed to dequantize it. Codes are stored widened to int32 regardless of
// the nominal bit-width so that any b in [1,16] shares one representation.
type Quantized struct {
	// Codes holds the integer codes in the same row-major order as the
	// original tensor.
	Codes []int32
	// Shape is the original tensor shape.
	Shape tensor.Shape
	// Bits is the nominal bit-width b; codes lie in [-2^(b-1), 2^(b-1)-1]
	// (symmetric signed range).
	Bits int
	// Scheme records the parameter granularity.
	Scheme Scheme
	// Params has one entry for per-tensor quantization or Shape[0] entries
	// for per-channel quantization.
	Params []Params
}

// NumElements returns the number of quantized codes.
func (q *Quantized) NumElements() int { return len(q.Codes) }

// ChannelParams returns the parameters that apply to flat element index i.
func (q *Quantized) ChannelParams(i int) Params {
	if q.Scheme == PerTensor || len(q.Params) == 1 {
		return q.Params[0]
	}
	chanSize := len(q.Codes) / q.Shape[0]
	return q.Params[i/chanSize]
}

// Levels returns the number of representable levels, 2^bits.
func (q *Quantized) Levels() int { return 1 << q.Bits }

// DistinctValues returns the number of distinct codes actually present.
func (q *Quantized) DistinctValues() int {
	seen := make(map[int32]struct{}, 64)
	for _, c := range q.Codes {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// Sparsity returns the fraction of codes equal to the zero code.
func (q *Quantized) Sparsity() float64 {
	if len(q.Codes) == 0 {
		return 0
	}
	zero := 0
	for i, c := range q.Codes {
		if c == q.ChannelParams(i).ZeroPoint {
			zero++
		}
	}
	return float64(zero) / float64(len(q.Codes))
}

// Dequantize reconstructs the real-valued tensor from the codes.
func (q *Quantized) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Shape...)
	d := out.Data()
	if q.Scheme == PerTensor || len(q.Params) == 1 {
		p := q.Params[0]
		for i, c := range q.Codes {
			d[i] = p.Scale * float32(c-p.ZeroPoint)
		}
		return out
	}
	chanSize := len(q.Codes) / q.Shape[0]
	for ch := 0; ch < q.Shape[0]; ch++ {
		p := q.Params[ch]
		base := ch * chanSize
		for i := 0; i < chanSize; i++ {
			d[base+i] = p.Scale * float32(q.Codes[base+i]-p.ZeroPoint)
		}
	}
	return out
}

// Clone returns a deep copy of the quantized tensor.
func (q *Quantized) Clone() *Quantized {
	c := &Quantized{
		Codes:  append([]int32(nil), q.Codes...),
		Shape:  q.Shape.Clone(),
		Bits:   q.Bits,
		Scheme: q.Scheme,
		Params: append([]Params(nil), q.Params...),
	}
	return c
}

// Quantize quantizes t symmetrically to the given bit-width: the zero point
// is always 0 and the scale maps the max-magnitude value to the integer
// range edge. Symmetric quantization keeps the zero code exactly zero,
// which both pruning and index-pair encoding rely on. bits must be in
// [1, 16].
func Quantize(t *tensor.Tensor, bits int, scheme Scheme) *Quantized {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: bits %d out of range [1,16]", bits))
	}
	q := &Quantized{
		Codes:  make([]int32, t.NumElements()),
		Shape:  t.Shape().Clone(),
		Bits:   bits,
		Scheme: scheme,
	}
	qmax := int32(1<<(bits-1)) - 1
	if qmax == 0 {
		qmax = 1 // 1-bit: codes in {-1, 0, 1} degenerate to {-1, 0, 1} clamp
	}
	quantRange := func(codes []int32, data []float32) Params {
		var m float32
		for _, v := range data {
			if a := float32(math.Abs(float64(v))); a > m {
				m = a
			}
		}
		scale := m / float32(qmax)
		if scale == 0 {
			scale = 1
		}
		inv := 1 / scale
		for i, v := range data {
			c := int32(math.RoundToEven(float64(v * inv)))
			if c > qmax {
				c = qmax
			}
			if c < -qmax {
				c = -qmax
			}
			codes[i] = c
		}
		return Params{Scale: scale}
	}
	d := t.Data()
	if scheme == PerTensor || t.Shape().Rank() == 0 || t.Dim(0) == 0 {
		q.Params = []Params{quantRange(q.Codes, d)}
		return q
	}
	nch := t.Dim(0)
	chanSize := t.NumElements() / nch
	q.Params = make([]Params, nch)
	for ch := 0; ch < nch; ch++ {
		q.Params[ch] = quantRange(q.Codes[ch*chanSize:(ch+1)*chanSize], d[ch*chanSize:(ch+1)*chanSize])
	}
	return q
}

// QuantError returns the maximum absolute reconstruction error of the
// quantization, |t - dequantize(quantize(t))|_inf.
func QuantError(t *tensor.Tensor, q *Quantized) float64 {
	return tensor.MaxAbsDiff(q.Dequantize(), t)
}

// PruneMagnitude zeroes the fraction p of smallest-magnitude elements of t
// in place and returns the number of elements pruned. p is clamped to [0,1].
// Ties at the threshold are broken by index order so that the result is
// deterministic.
func PruneMagnitude(t *tensor.Tensor, p float64) int {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	d := t.Data()
	n := len(d)
	target := int(math.Round(p * float64(n)))
	if target == 0 {
		return 0
	}
	type elem struct {
		mag float64
		idx int
	}
	elems := make([]elem, n)
	for i, v := range d {
		elems[i] = elem{math.Abs(float64(v)), i}
	}
	sort.Slice(elems, func(i, j int) bool {
		if elems[i].mag != elems[j].mag {
			return elems[i].mag < elems[j].mag
		}
		return elems[i].idx < elems[j].idx
	})
	for i := 0; i < target; i++ {
		d[elems[i].idx] = 0
	}
	return target
}

// PruneStructured zeroes whole input-channel slices (dimension 1 of an OIHW
// weight) of smallest aggregate magnitude until at least fraction p of the
// input channels are removed. It returns the number of channels pruned.
func PruneStructured(t *tensor.Tensor, p float64) int {
	if t.Shape().Rank() != 4 {
		panic("quant: PruneStructured requires an OIHW rank-4 weight")
	}
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	oc, ic, kh, kw := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	mags := make([]float64, ic)
	d := t.Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			base := ((o*ic + i) * kh) * kw
			for j := 0; j < kh*kw; j++ {
				mags[i] += math.Abs(float64(d[base+j]))
			}
		}
	}
	order := make([]int, ic)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if mags[order[a]] != mags[order[b]] {
			return mags[order[a]] < mags[order[b]]
		}
		return order[a] < order[b]
	})
	target := int(math.Round(p * float64(ic)))
	for k := 0; k < target; k++ {
		i := order[k]
		for o := 0; o < oc; o++ {
			base := ((o*ic + i) * kh) * kw
			for j := 0; j < kh*kw; j++ {
				d[base+j] = 0
			}
		}
	}
	return target
}

// Calibrate computes the max-abs activation range over a set of calibration
// tensors, as a per-tensor scale suitable for activation quantization.
func Calibrate(samples []*tensor.Tensor, bits int) Params {
	var m float32
	for _, s := range samples {
		if a := s.MaxAbs(); a > m {
			m = a
		}
	}
	qmax := int32(1<<(bits-1)) - 1
	if qmax == 0 {
		qmax = 1
	}
	scale := m / float32(qmax)
	if scale == 0 {
		scale = 1
	}
	return Params{Scale: scale}
}
