package quant

import "fmt"

// Integer GEMM microkernels for quantized codes.
//
// The float serving path evaluates quantized layers by dequantizing into
// float kernels; a fixed-point deployment multiplies the narrow codes
// directly and accumulates in int32. These kernels are the register-blocked
// form of that loop: a 4x4 block of int32 accumulators lives in locals and
// each k step issues 8 narrow loads for 16 multiply-accumulates, widening
// once per operand instead of once per product. The generic driver is
// stenciled per element type (int8 and int16 have distinct gcshapes), so
// the inner loop compiles to direct loads with no indirection.
//
// Integer addition is associative, so unlike the float microkernels there
// is no accumulation-order caveat: results are exact and bit-equal to the
// naive triple loop whenever the true product sums fit in int32.
//
// Overflow bounds (caller's contract): |int8 product| <= 2^14, so any
// k <= 2^16 is safe at 8 bits; at 16 bits |product| <= 2^30, so the caller
// must keep k times the worst-case product below 2^31 (true for the
// narrow-bit-width codes Quantize emits, which use far fewer than 16 bits).

// GemmInt8 computes C = A·B over int8 codes with int32 accumulation.
// A is [m, k], B is [k, n], C is [m, n], all row-major.
func GemmInt8(a, b []int8, c []int32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("quant: GemmInt8 buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	gemmIntBlocked(a, b, c, m, k, n)
}

// GemmInt16 computes C = A·B over int16 codes with int32 accumulation.
func GemmInt16(a, b []int16, c []int32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("quant: GemmInt16 buffer too small for m=%d k=%d n=%d", m, k, n))
	}
	gemmIntBlocked(a, b, c, m, k, n)
}

// gemmIntBlocked is the shared register-blocked driver: full 4x4 tiles run
// the unrolled microkernel, the bottom and right edge strips fall back to
// scalar dot products (identical sums — integer addition is associative).
func gemmIntBlocked[T int8 | int16](a, b []T, c []int32, m, k, n int) {
	for i0 := 0; i0+4 <= m; i0 += 4 {
		r0 := a[i0*k : i0*k+k]
		r1 := a[(i0+1)*k : (i0+1)*k+k]
		r2 := a[(i0+2)*k : (i0+2)*k+k]
		r3 := a[(i0+3)*k : (i0+3)*k+k]
		for j0 := 0; j0+4 <= n; j0 += 4 {
			var c00, c01, c02, c03 int32
			var c10, c11, c12, c13 int32
			var c20, c21, c22, c23 int32
			var c30, c31, c32, c33 int32
			for p := 0; p < k; p++ {
				bv := b[p*n+j0 : p*n+j0+4 : p*n+j0+4]
				b0, b1, b2, b3 := int32(bv[0]), int32(bv[1]), int32(bv[2]), int32(bv[3])
				a0 := int32(r0[p])
				c00 += a0 * b0
				c01 += a0 * b1
				c02 += a0 * b2
				c03 += a0 * b3
				a1 := int32(r1[p])
				c10 += a1 * b0
				c11 += a1 * b1
				c12 += a1 * b2
				c13 += a1 * b3
				a2 := int32(r2[p])
				c20 += a2 * b0
				c21 += a2 * b1
				c22 += a2 * b2
				c23 += a2 * b3
				a3 := int32(r3[p])
				c30 += a3 * b0
				c31 += a3 * b1
				c32 += a3 * b2
				c33 += a3 * b3
			}
			w0 := c[i0*n+j0 : i0*n+j0+4 : i0*n+j0+4]
			w1 := c[(i0+1)*n+j0 : (i0+1)*n+j0+4 : (i0+1)*n+j0+4]
			w2 := c[(i0+2)*n+j0 : (i0+2)*n+j0+4 : (i0+2)*n+j0+4]
			w3 := c[(i0+3)*n+j0 : (i0+3)*n+j0+4 : (i0+3)*n+j0+4]
			w0[0], w0[1], w0[2], w0[3] = c00, c01, c02, c03
			w1[0], w1[1], w1[2], w1[3] = c10, c11, c12, c13
			w2[0], w2[1], w2[2], w2[3] = c20, c21, c22, c23
			w3[0], w3[1], w3[2], w3[3] = c30, c31, c32, c33
		}
	}
	// Edge strips: bottom rows past the last full 4-row block, right
	// columns past the last full 4-column block.
	mFull, nFull := m&^3, n&^3
	for i := 0; i < mFull; i++ {
		row := a[i*k : i*k+k]
		for j := nFull; j < n; j++ {
			var acc int32
			for p, av := range row {
				acc += int32(av) * int32(b[p*n+j])
			}
			c[i*n+j] = acc
		}
	}
	for i := mFull; i < m; i++ {
		row := a[i*k : i*k+k]
		for j := 0; j < n; j++ {
			var acc int32
			for p, av := range row {
				acc += int32(av) * int32(b[p*n+j])
			}
			c[i*n+j] = acc
		}
	}
}

// NarrowCodes8 converts int32 codes to int8, reporting whether every code
// fit (codes from Quantize at bits <= 8 always do).
func NarrowCodes8(codes []int32) ([]int8, bool) {
	out := make([]int8, len(codes))
	ok := true
	for i, v := range codes {
		if v < -128 || v > 127 {
			ok = false
		}
		out[i] = int8(v)
	}
	return out, ok
}

// NarrowCodes16 converts int32 codes to int16, reporting whether every
// code fit.
func NarrowCodes16(codes []int32) ([]int16, bool) {
	out := make([]int16, len(codes))
	ok := true
	for i, v := range codes {
		if v < -32768 || v > 32767 {
			ok = false
		}
		out[i] = int16(v)
	}
	return out, ok
}
