package serve

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Model is one served network: its name (the endpoint path segment and
// metrics prefix), the compiled plan, and the dynamic batcher in front of
// it.
type Model struct {
	Name    string
	Plan    *runtime.Plan
	Batcher *Batcher
}

// Registry maps model names to served models. Registration happens at
// startup; lookups are concurrent with serving.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Model
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Model)}
}

// Register starts a batcher for plan under name and adds it to the
// registry. The plan's MetricsPrefix is set to "name/" (if unset) so its
// layer series stay distinguishable when several models share a process.
func (r *Registry) Register(name string, plan *runtime.Plan, cfg Config) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	if plan.MetricsPrefix == "" {
		plan.MetricsPrefix = name + "/"
	}
	m := &Model{Name: name, Plan: plan, Batcher: NewBatcher(name, plan, cfg)}
	r.byName[name] = m
	return m, nil
}

// Get returns the named model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	return m, ok
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info describes the named model for the /v1/models listing; the
// single-version registry always serves version 1.
func (r *Registry) Info(name string) (ModelInfo, bool) {
	m, ok := r.Get(name)
	if !ok {
		return ModelInfo{}, false
	}
	cfg := m.Batcher.cfg
	return ModelInfo{
		Name:        name,
		Version:     1,
		InputShape:  m.Plan.Graph.In.OutShape,
		OutputShape: m.Plan.Graph.Out.OutShape,
		MaxBatch:    cfg.MaxBatch,
		SLONs:       cfg.SLO.Nanoseconds(),
	}, true
}

// Predict routes one request through the named model's batcher
// (serve.Provider).
func (r *Registry) Predict(name string, input *tensor.Tensor) (*tensor.Tensor, int64, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, 0, ErrUnknownModel
	}
	out, err := m.Batcher.Submit(input)
	return out, 1, err
}

// Close shuts every batcher down, draining admitted requests first.
func (r *Registry) Close() {
	r.mu.RLock()
	models := make([]*Model, 0, len(r.byName))
	for _, m := range r.byName {
		models = append(models, m)
	}
	r.mu.RUnlock()
	for _, m := range models {
		m.Batcher.Close()
	}
}
