package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/runtime"
)

// newTestServer spins a registry with the tiny plan behind an httptest
// server.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Register("tiny", testPlan(t), cfg); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return srv, reg
}

func TestHTTPPredict(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	srv, _ := newTestServer(t, Config{SLO: time.Millisecond})

	in := testInput(51, 2)
	body, _ := json.Marshal(PredictRequest{Shape: in.Shape(), Data: in.Data()})
	resp, err := http.Post(srv.URL+"/v1/models/tiny/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Shape) != 2 || pr.Shape[0] != 2 || pr.Shape[1] != 3 {
		t.Fatalf("output shape %v, want [2 3]", pr.Shape)
	}
	if pr.LatencyNs <= 0 {
		t.Fatalf("latency %d", pr.LatencyNs)
	}
	n := 1
	for _, d := range pr.Shape {
		n *= d
	}
	if n != len(pr.Data) {
		t.Fatalf("data length %d != shape volume %d", len(pr.Data), n)
	}
}

func TestHTTPPredictDefaultsShape(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	srv, _ := newTestServer(t, Config{})

	in := testInput(52, 1)
	body, _ := json.Marshal(PredictRequest{Data: in.Data()}) // no shape
	resp, err := http.Post(srv.URL+"/v1/models/tiny/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	srv, reg := newTestServer(t, Config{})

	post := func(path string, body []byte) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	good, _ := json.Marshal(PredictRequest{Data: testInput(53, 1).Data()})
	if got := post("/v1/models/nosuch/predict", good); got != http.StatusNotFound {
		t.Errorf("unknown model -> %d, want 404", got)
	}
	if got := post("/v1/models/tiny/predict", []byte("{not json")); got != http.StatusBadRequest {
		t.Errorf("bad json -> %d, want 400", got)
	}
	short, _ := json.Marshal(PredictRequest{Shape: []int{1, 1, 4, 4}, Data: []float32{1, 2}})
	if got := post("/v1/models/tiny/predict", short); got != http.StatusBadRequest {
		t.Errorf("short data -> %d, want 400", got)
	}
	wrong, _ := json.Marshal(PredictRequest{Shape: []int{1, 2, 4, 4}, Data: make([]float32, 32)})
	if got := post("/v1/models/tiny/predict", wrong); got != http.StatusBadRequest {
		t.Errorf("wrong dims -> %d, want 400", got)
	}

	// Draining registry rejects with 503.
	reg.Close()
	if got := post("/v1/models/tiny/predict", good); got != http.StatusServiceUnavailable {
		t.Errorf("closed -> %d, want 503", got)
	}
}

func TestHTTPModelsAndMetrics(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	srv, _ := newTestServer(t, Config{MaxBatch: 9})

	info, err := fetchModelInfo(srv.URL, "tiny", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxBatch != 9 || len(info.InputShape) != 4 {
		t.Fatalf("info = %+v", info)
	}

	in := testInput(54, 1)
	body, _ := json.Marshal(PredictRequest{Data: in.Data()})
	if resp, err := http.Post(srv.URL+"/v1/models/tiny/predict", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	snap, err := FetchSnapshot(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Endpoints) != 1 || snap.Endpoints[0].Name != "tiny" || snap.Endpoints[0].Requests != 1 {
		t.Fatalf("snapshot endpoints = %+v", snap.Endpoints)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
