// Package serve is the network serving front end: a model registry over
// compiled runtime plans, a dynamic batcher that coalesces concurrent
// requests into Plan.RunBatch calls under a latency SLO, and the HTTP
// handler plus load-generator harness built on top of them.
//
// The batcher is the heart of the package. Each model gets one batcher
// goroutine that pulls requests off a bounded admission queue and flushes a
// coalesced batch when either the pending chunk count reaches MaxBatch or
// the oldest request has waited SLO, whichever comes first. Flushes run on
// a bounded number of in-flight RunBatch calls; when all are busy the
// batcher stalls, the queue fills, and new submissions are rejected with
// ErrOverloaded (HTTP 429) — admission control instead of unbounded
// buffering.
package serve

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// ErrOverloaded rejects a submission because the bounded admission queue is
// full (the executor pool cannot drain flushes fast enough). HTTP maps it
// to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded: admission queue full")

// ErrClosed rejects a submission because the batcher is shutting down.
// HTTP maps it to 503 Service Unavailable.
var ErrClosed = errors.New("serve: closed")

// Config tunes one model's dynamic batcher. The zero value serves with the
// documented defaults.
type Config struct {
	// MaxBatch flushes a batch once the pending compiled-batch chunk count
	// reaches it (default 32). A single request larger than MaxBatch is
	// admitted and flushed alone, never split.
	MaxBatch int
	// SLO is the longest a request may wait for coalescing before its
	// batch flushes (deadline trigger). 0 means flush immediately with
	// whatever is instantaneously queued (bursts still coalesce).
	SLO time.Duration
	// QueueDepth bounds the admission queue in requests (default 1024);
	// submissions beyond it fail with ErrOverloaded.
	QueueDepth int
	// Workers is the RunBatch worker count per flush (default GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrent RunBatch flushes (default 2): one
	// filling while one drains keeps the executor pool busy without
	// unbounded checkout growth.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Workers <= 0 {
		c.Workers = goruntime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	return c
}

// request is one submitted inference: its input (batch dim = chunks ×
// compiled batch), the chunk count, and the channel its result comes back
// on (buffered so the flusher never blocks on delivery).
type request struct {
	input  *tensor.Tensor
	chunks int
	resp   chan result
}

type result struct {
	out *tensor.Tensor
	err error
}

// Batcher coalesces concurrent Submit calls into Plan.RunBatch batches for
// one model. Create with NewBatcher, stop with Close.
type Batcher struct {
	plan *runtime.Plan
	cfg  Config
	eps  *metrics.EndpointStats // captured once at construction; nil-safe

	queue   chan *request
	done    chan struct{}
	drained chan struct{}
	flight  chan struct{} // in-flight flush semaphore

	mu     sync.RWMutex // guards closed against racing Submit/Close
	closed bool

	flushes sync.WaitGroup

	// flushHook, when non-nil, runs inside each flush goroutine before
	// RunBatch. Test-only: lets tests stall the flush path to force queue
	// pressure and coalescing deterministically.
	flushHook func()
}

// NewBatcher starts the batcher goroutine for plan, registering its
// endpoint metrics series under name (the recorder is resolved once here;
// enable metrics before constructing batchers).
func NewBatcher(name string, plan *runtime.Plan, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		plan:    plan,
		cfg:     cfg,
		eps:     metrics.Get().Endpoint(name),
		queue:   make(chan *request, cfg.QueueDepth),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
		flight:  make(chan struct{}, cfg.MaxInFlight),
	}
	go b.loop()
	return b
}

// Plan returns the compiled plan the batcher serves.
func (b *Batcher) Plan() *runtime.Plan { return b.plan }

// Submit enqueues one inference and blocks until its result is ready. The
// input's batch dimension must be a non-zero multiple of the plan's
// compiled batch and every other dimension must match the compiled input
// shape (checked here, so malformed requests never occupy queue space).
// The returned tensor is private to the caller unless the flush carried
// more than one request, in which case it aliases the batch result — either
// way it is the caller's to read and never recycled by the batcher.
//
// Errors: a shape mismatch returns the validation error; a full queue
// returns ErrOverloaded; submission after Close returns ErrClosed; an
// execution failure returns RunBatch's error (every request of the failed
// batch gets it).
func (b *Batcher) Submit(input *tensor.Tensor) (*tensor.Tensor, error) {
	chunks, err := b.validate(input)
	if err != nil {
		return nil, err
	}
	req := &request{input: input, chunks: chunks, resp: make(chan result, 1)}
	start := time.Now()

	// The read lock pairs with Close's write lock: any Submit that sees
	// closed == false finishes its enqueue before Close proceeds to stop
	// the loop, so an admitted request is never dropped.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		// eps is nil when the batcher was built with metrics disabled; the
		// counter fields are plain atomics, so guard unlike the nil-safe
		// method calls.
		if b.eps != nil {
			b.eps.RejectedClosed.Add(1)
		}
		return nil, ErrClosed
	}
	select {
	case b.queue <- req:
	default:
		b.mu.RUnlock()
		if b.eps != nil {
			b.eps.RejectedOverload.Add(1)
		}
		return nil, ErrOverloaded
	}
	b.eps.ObserveQueueDepth(len(b.queue))
	b.mu.RUnlock()

	res := <-req.resp
	if res.err != nil {
		if b.eps != nil {
			b.eps.Errors.Add(1)
		}
		return nil, res.err
	}
	now := time.Now()
	b.eps.RecordRequest(now.Sub(start).Nanoseconds(), now.UnixNano())
	return res.out, nil
}

// validate checks input against the plan's compiled input shape and
// returns its chunk count.
func (b *Batcher) validate(input *tensor.Tensor) (int, error) {
	inShape := b.plan.Graph.In.OutShape
	if input.Shape().Rank() != inShape.Rank() {
		return 0, fmt.Errorf("serve: input rank %d != compiled input %v", input.Shape().Rank(), inShape)
	}
	for d := 1; d < inShape.Rank(); d++ {
		if input.Dim(d) != inShape[d] {
			return 0, fmt.Errorf("serve: input shape %v does not match compiled input %v in dim %d",
				input.Shape(), inShape, d)
		}
	}
	if input.Dim(0)%inShape[0] != 0 {
		return 0, fmt.Errorf("serve: batch %d is not a multiple of the compiled batch %d",
			input.Dim(0), inShape[0])
	}
	return input.Dim(0) / inShape[0], nil
}

// Close stops admission (subsequent Submits fail with ErrClosed), drains
// every already-admitted request through normal flushes, waits for their
// results to be delivered, and returns. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.drained
		b.flushes.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	<-b.drained
	b.flushes.Wait()
}

// loop is the batcher goroutine: gather a batch, flush it, repeat; on
// shutdown drain the queue through the same flush path.
func (b *Batcher) loop() {
	defer close(b.drained)
	for {
		var first *request
		select {
		case first = <-b.queue:
		case <-b.done:
			b.drain()
			return
		}
		b.gatherAndFlush(first)
	}
}

// drain flushes everything left in the queue after shutdown began. Close
// holds the write lock before closing done, so no Submit can enqueue once
// the queue reads empty here.
func (b *Batcher) drain() {
	for {
		select {
		case first := <-b.queue:
			b.gatherAndFlush(first)
		default:
			return
		}
	}
}

// gatherAndFlush coalesces requests behind first until the batch is full,
// the SLO deadline passes, or shutdown begins, then dispatches the batch.
func (b *Batcher) gatherAndFlush(first *request) {
	batch := []*request{first}
	pending := first.chunks
	if pending < b.cfg.MaxBatch && b.cfg.SLO > 0 {
		timer := time.NewTimer(b.cfg.SLO)
	gather:
		for pending < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
				pending += r.chunks
			case <-timer.C:
				break gather
			case <-b.done:
				break gather
			}
		}
		timer.Stop()
	} else if pending < b.cfg.MaxBatch {
		// SLO 0: no deadline to wait out — flush immediately with whatever
		// the burst already queued.
	greedy:
		for pending < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
				pending += r.chunks
			default:
				break greedy
			}
		}
	}
	b.dispatch(batch, pending)
}

// dispatch launches one gathered batch on a flush slot. Acquiring the slot
// blocks the batcher loop while MaxInFlight flushes are running — that
// stall is the backpressure that fills the queue and trips ErrOverloaded.
func (b *Batcher) dispatch(batch []*request, chunks int) {
	b.flight <- struct{}{}
	b.flushes.Add(1)
	go func() {
		defer func() {
			<-b.flight
			b.flushes.Done()
		}()
		b.flush(batch, chunks)
	}()
}

// flush joins the batch's inputs, runs them as one RunBatch call, and
// scatters the output back to each request.
func (b *Batcher) flush(batch []*request, chunks int) {
	if b.flushHook != nil {
		b.flushHook()
	}
	b.eps.RecordFlush(chunks)

	input := batch[0].input
	if len(batch) > 1 {
		inShape := b.plan.Graph.In.OutShape.Clone()
		inShape[0] *= chunks
		joined := tensor.New(inShape...)
		jd := joined.Data()
		off := 0
		for _, r := range batch {
			off += copy(jd[off:], r.input.Data())
		}
		input = joined
	}

	out, err := b.plan.RunBatch(input, b.cfg.Workers)
	if err != nil {
		for _, r := range batch {
			r.resp <- result{err: err}
		}
		return
	}
	if len(batch) == 1 {
		batch[0].resp <- result{out: out}
		return
	}
	outShape := b.plan.Graph.Out.OutShape
	perChunk := out.NumElements() / chunks
	off := 0
	for _, r := range batch {
		shape := outShape.Clone()
		shape[0] *= r.chunks
		n := r.chunks * perChunk
		r.resp <- result{out: tensor.From(out.Data()[off:off+n], shape...)}
		off += n
	}
}
