package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// PredictRequest is the JSON inference request body. Shape defaults to the
// model's compiled input shape; a request batching k items sends shape with
// dim 0 = k × compiled batch.
type PredictRequest struct {
	Shape []int     `json:"shape,omitempty"`
	Data  []float32 `json:"data"`
}

// PredictResponse is the JSON inference response body. Model and Version
// identify which model instance actually served the request, so load
// drivers can detect mis-routing and verify version monotonicity across
// hot swaps.
type PredictResponse struct {
	Model     string    `json:"model"`
	Version   int64     `json:"version"`
	Shape     []int     `json:"shape"`
	Data      []float32 `json:"data"`
	LatencyNs int64     `json:"latency_ns"`
}

// ModelInfo describes one served model in the /v1/models listing.
type ModelInfo struct {
	Name        string `json:"name"`
	Version     int64  `json:"version,omitempty"`
	InputShape  []int  `json:"input_shape"`
	OutputShape []int  `json:"output_shape"`
	MaxBatch    int    `json:"max_batch"`
	SLONs       int64  `json:"slo_ns"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// ErrUnknownModel is returned by Provider.Predict for names that are not
// served (HTTP 404).
var ErrUnknownModel = errors.New("serve: unknown model")

// Provider is what the HTTP front end serves: a set of named models that
// answer predict requests. The single-version Registry implements it
// directly; the versioned hot-swap registry (internal/registry) implements
// it with swap-aware routing.
type Provider interface {
	// Names lists the served model names, sorted.
	Names() []string
	// Info describes one served model.
	Info(name string) (ModelInfo, bool)
	// Predict runs one request through the named model, returning the
	// output and the model version that served it. Unknown names return
	// ErrUnknownModel.
	Predict(name string, input *tensor.Tensor) (*tensor.Tensor, int64, error)
}

// muxExtender is implemented by providers that install extra routes (the
// versioned registry adds its version-load and per-model metrics
// endpoints). NewHandler calls it after mounting the base routes.
type muxExtender interface {
	ExtendMux(mux *http.ServeMux)
}

// NewHandler builds the serving mux over the provider:
//
//	GET  /healthz                   liveness probe
//	GET  /v1/models                 model listing with shapes
//	POST /v1/models/{model}/predict JSON inference through the batcher
//	GET  /metrics                   live metrics.Snapshot JSON (the same
//	                                schema inspire-stats -json emits)
//
// Providers implementing ExtendMux(*http.ServeMux) get to add routes (e.g.
// POST /v1/models/{model}/versions on the hot-swap registry).
func NewHandler(p Provider) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, _ *http.Request) {
		infos := make([]ModelInfo, 0)
		for _, name := range p.Names() {
			if info, ok := p.Info(name); ok {
				infos = append(infos, info)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"models": infos})
	})
	mux.HandleFunc("POST /v1/models/{model}/predict", func(w http.ResponseWriter, r *http.Request) {
		handlePredict(p, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metrics.Capture().WriteJSON(w)
	})
	if ext, ok := p.(muxExtender); ok {
		ext.ExtendMux(mux)
	}
	return mux
}

func handlePredict(p Provider, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	info, ok := p.Info(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown model"})
		return
	}
	var req PredictRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	shape := req.Shape
	if len(shape) == 0 {
		shape = info.InputShape
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "non-positive dimension in shape"})
			return
		}
		n *= d
	}
	if n != len(req.Data) {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: "data length does not match shape"})
		return
	}

	input := tensor.From(req.Data, shape...)
	start := time.Now()
	out, version, err := p.Predict(name, input)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknownModel):
			status = http.StatusNotFound
		case errors.Is(err, ErrOverloaded):
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case isValidationError(err):
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:     name,
		Version:   version,
		Shape:     out.Shape(),
		Data:      out.Data(),
		LatencyNs: time.Since(start).Nanoseconds(),
	})
}

// isValidationError distinguishes Submit's shape-validation failures (the
// caller's fault: 400) from execution failures (ours: 500).
func isValidationError(err error) bool {
	s := err.Error()
	return strings.Contains(s, "does not match compiled input") ||
		strings.Contains(s, "not a multiple") ||
		strings.Contains(s, "input rank")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
