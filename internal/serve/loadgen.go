package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// LoadConfig drives one load-generation run against a running
// inspire-serve instance.
type LoadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Model is the endpoint to drive.
	Model string
	// Clients is the number of concurrent closed-loop clients (each keeps
	// exactly one request in flight).
	Clients int
	// Duration is how long the clients fire for.
	Duration time.Duration
	// Items is the request batch size in compiled-batch chunks (default 1).
	Items int
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
}

// LoadReport aggregates one run: client-side status counts and exact
// latency percentiles, plus the server-side endpoint snapshot (batch
// coalescing evidence) fetched from /metrics after the run.
type LoadReport struct {
	Model    string        `json:"model"`
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"duration_ns"`

	Requests int64         `json:"requests"`
	OK       int64         `json:"ok"`
	Dropped  int64         `json:"dropped_429"`
	Failed   int64         `json:"failed"` // non-2xx other than 429, plus transport errors
	QPS      float64       `json:"qps"`
	MeanLat  time.Duration `json:"mean_latency_ns"`
	P50      time.Duration `json:"p50_ns"`
	P90      time.Duration `json:"p90_ns"`
	P99      time.Duration `json:"p99_ns"`
	MaxLat   time.Duration `json:"max_latency_ns"`

	// Endpoint is the server's view of this endpoint after the run (zero
	// value if /metrics was unreachable).
	Endpoint metrics.EndpointSnapshot `json:"endpoint"`
}

// RunLoad executes the load run: it discovers the model's input shape from
// /v1/models, builds one deterministic payload, fires Clients closed-loop
// workers for Duration, and aggregates exact percentiles over every
// completed request.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Items <= 0 {
		cfg.Items = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	info, err := fetchModelInfo(cfg.URL, cfg.Model, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	shape := append([]int(nil), info.InputShape...)
	if len(shape) == 0 {
		return nil, fmt.Errorf("serve: model %s reports no input shape", cfg.Model)
	}
	shape[0] *= cfg.Items
	in := tensor.New(shape...)
	tensor.FillGaussian(in, tensor.NewRNG(7), 1)
	body, err := json.Marshal(PredictRequest{Shape: shape, Data: in.Data()})
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/models/%s/predict", cfg.URL, cfg.Model)

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
	}

	var ok, dropped, failed atomic.Int64
	lats := make([][]time.Duration, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				status, err := postOnce(client, url, body)
				lat := time.Since(t0)
				switch {
				case err != nil:
					failed.Add(1)
				case status == http.StatusTooManyRequests:
					dropped.Add(1)
				case status >= 200 && status < 300:
					ok.Add(1)
					lats[c] = append(lats[c], lat)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := &LoadReport{
		Model:    cfg.Model,
		Clients:  cfg.Clients,
		Duration: elapsed,
		OK:       ok.Load(),
		Dropped:  dropped.Load(),
		Failed:   failed.Load(),
	}
	rep.Requests = rep.OK + rep.Dropped + rep.Failed
	if elapsed > 0 {
		rep.QPS = float64(rep.OK) / elapsed.Seconds()
	}
	if n := len(all); n > 0 {
		var sum time.Duration
		for _, l := range all {
			sum += l
		}
		rep.MeanLat = sum / time.Duration(n)
		rep.P50 = all[n*50/100]
		rep.P90 = all[min(n*90/100, n-1)]
		rep.P99 = all[min(n*99/100, n-1)]
		rep.MaxLat = all[n-1]
	}
	if snap, err := FetchSnapshot(cfg.URL, cfg.Timeout); err == nil {
		for _, ep := range snap.Endpoints {
			if ep.Name == cfg.Model {
				rep.Endpoint = ep
			}
		}
	}
	return rep, nil
}

func postOnce(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// Drain so the connection goes back to the keep-alive pool.
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// fetchModelInfo pulls /v1/models and returns the named model's entry.
func fetchModelInfo(base, model string, timeout time.Duration) (*ModelInfo, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("serve: decoding model listing: %w", err)
	}
	for i := range listing.Models {
		if listing.Models[i].Name == model {
			return &listing.Models[i], nil
		}
	}
	return nil, fmt.Errorf("serve: model %q not served (have %v)", model, listing.Models)
}

// FetchSnapshot pulls the live metrics.Snapshot from a running server's
// /metrics endpoint (the same schema inspire-stats -json emits).
func FetchSnapshot(base string, timeout time.Duration) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}
