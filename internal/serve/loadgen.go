package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// LoadConfig drives one load-generation run against a running
// inspire-serve instance.
type LoadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Model is the endpoint to drive.
	Model string
	// Clients is the number of concurrent closed-loop clients (each keeps
	// exactly one request in flight).
	Clients int
	// Duration is how long the clients fire for.
	Duration time.Duration
	// Items is the request batch size in compiled-batch chunks (default 1).
	Items int
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration

	// SwapModel, when non-empty, hot-swaps that model mid-run: after
	// SwapAfter (default Duration/2) the driver POSTs
	// /v1/models/{SwapModel}/versions with SwapSeed, while the clients keep
	// firing. The report then carries the swap outcome, and when SwapModel
	// == Model the version checks prove zero requests dropped or regressed
	// across the swap.
	SwapModel string
	SwapSeed  uint64
	SwapAfter time.Duration
}

// LoadReport aggregates one run: client-side status counts and exact
// latency percentiles, plus the server-side endpoint snapshot (batch
// coalescing evidence) fetched from /metrics after the run.
type LoadReport struct {
	Model    string        `json:"model"`
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"duration_ns"`

	Requests int64         `json:"requests"`
	OK       int64         `json:"ok"`
	Dropped  int64         `json:"dropped_429"`
	Failed   int64         `json:"failed"` // non-2xx other than 429, plus transport errors
	QPS      float64       `json:"qps"`
	MeanLat  time.Duration `json:"mean_latency_ns"`
	P50      time.Duration `json:"p50_ns"`
	P90      time.Duration `json:"p90_ns"`
	P99      time.Duration `json:"p99_ns"`
	MaxLat   time.Duration `json:"max_latency_ns"`

	// Routing/versioning verification over the response bodies: MisRouted
	// counts 200s whose body named a different model; VersionRegressions
	// counts responses a client saw with a version lower than one it had
	// already seen (each client is closed-loop, so its version sequence
	// must be non-decreasing across hot swaps); MinVersion/MaxVersion
	// bound the versions observed.
	MisRouted          int64 `json:"mis_routed"`
	VersionRegressions int64 `json:"version_regressions"`
	MinVersion         int64 `json:"min_version,omitempty"`
	MaxVersion         int64 `json:"max_version,omitempty"`

	// Swap outcome (zero values unless LoadConfig requested a mid-run
	// swap): the HTTP status of the version POST and the version it
	// reported serving afterwards.
	SwapStatus  int   `json:"swap_status,omitempty"`
	SwapVersion int64 `json:"swap_version,omitempty"`

	// Endpoint is the server's view of this endpoint after the run (zero
	// value if /metrics was unreachable).
	Endpoint metrics.EndpointSnapshot `json:"endpoint"`
}

// RunLoad executes the load run: it discovers the model's input shape from
// /v1/models, builds one deterministic payload, fires Clients closed-loop
// workers for Duration, and aggregates exact percentiles over every
// completed request. Every 200 body is parsed and verified: it must name
// the requested model, and each client's observed version sequence must be
// non-decreasing.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Items <= 0 {
		cfg.Items = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	info, err := fetchModelInfo(cfg.URL, cfg.Model, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	shape := append([]int(nil), info.InputShape...)
	if len(shape) == 0 {
		return nil, fmt.Errorf("serve: model %s reports no input shape", cfg.Model)
	}
	shape[0] *= cfg.Items
	in := tensor.New(shape...)
	tensor.FillGaussian(in, tensor.NewRNG(7), 1)
	body, err := json.Marshal(PredictRequest{Shape: shape, Data: in.Data()})
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/models/%s/predict", cfg.URL, cfg.Model)

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
	}

	var ok, dropped, failed, misrouted, regressions atomic.Int64
	var minVersion, maxVersion atomic.Int64
	lats := make([][]time.Duration, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	rep := &LoadReport{
		Model:   cfg.Model,
		Clients: cfg.Clients,
	}

	var swapWG sync.WaitGroup
	if cfg.SwapModel != "" {
		after := cfg.SwapAfter
		if after <= 0 {
			after = cfg.Duration / 2
		}
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			time.Sleep(after)
			status, version := postVersion(client, cfg.URL, cfg.SwapModel, cfg.SwapSeed)
			rep.SwapStatus, rep.SwapVersion = status, version
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastVersion := int64(0)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				status, resp, err := postOnce(client, url, body)
				lat := time.Since(t0)
				switch {
				case err != nil:
					failed.Add(1)
				case status == http.StatusTooManyRequests:
					dropped.Add(1)
				case status >= 200 && status < 300:
					ok.Add(1)
					lats[c] = append(lats[c], lat)
					if resp.Model != "" && resp.Model != cfg.Model {
						misrouted.Add(1)
					}
					if resp.Version > 0 {
						if resp.Version < lastVersion {
							regressions.Add(1)
						}
						lastVersion = resp.Version
						atomicMaxI64(&maxVersion, resp.Version)
						atomicMinNZI64(&minVersion, resp.Version)
					}
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	swapWG.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Duration = elapsed
	rep.OK = ok.Load()
	rep.Dropped = dropped.Load()
	rep.Failed = failed.Load()
	rep.MisRouted = misrouted.Load()
	rep.VersionRegressions = regressions.Load()
	rep.MinVersion = minVersion.Load()
	rep.MaxVersion = maxVersion.Load()
	rep.Requests = rep.OK + rep.Dropped + rep.Failed
	if elapsed > 0 {
		rep.QPS = float64(rep.OK) / elapsed.Seconds()
	}
	if n := len(all); n > 0 {
		var sum time.Duration
		for _, l := range all {
			sum += l
		}
		rep.MeanLat = sum / time.Duration(n)
		rep.P50 = all[n*50/100]
		rep.P90 = all[min(n*90/100, n-1)]
		rep.P99 = all[min(n*99/100, n-1)]
		rep.MaxLat = all[n-1]
	}
	if snap, err := FetchSnapshot(cfg.URL, cfg.Timeout); err == nil {
		for _, ep := range snap.Endpoints {
			if ep.Name == cfg.Model {
				rep.Endpoint = ep
			}
		}
	}
	return rep, nil
}

// postOnce fires one predict and parses the response body on 2xx (partial
// bodies are tolerated: a zero PredictResponse skips the routing checks).
func postOnce(client *http.Client, url string, body []byte) (int, PredictResponse, error) {
	var pr PredictResponse
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, pr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		// Decode (and thereby fully drain) the body so the connection goes
		// back to the keep-alive pool.
		json.NewDecoder(resp.Body).Decode(&pr)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, pr, nil
}

// postVersion POSTs a hot-swap load request to the versioned registry's
// versions endpoint and returns the HTTP status and the new version (0 if
// the response carried none).
func postVersion(client *http.Client, base, model string, seed uint64) (int, int64) {
	body, _ := json.Marshal(map[string]any{"seed": seed})
	resp, err := client.Post(
		fmt.Sprintf("%s/v1/models/%s/versions", base, model),
		"application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var vr struct {
		Version int64 `json:"version"`
	}
	json.NewDecoder(resp.Body).Decode(&vr)
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, vr.Version
}

// fetchModelInfo pulls /v1/models and returns the named model's entry.
func fetchModelInfo(base, model string, timeout time.Duration) (*ModelInfo, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("serve: decoding model listing: %w", err)
	}
	for i := range listing.Models {
		if listing.Models[i].Name == model {
			return &listing.Models[i], nil
		}
	}
	return nil, fmt.Errorf("serve: model %q not served (have %v)", model, listing.Models)
}

// FetchSnapshot pulls the live metrics.Snapshot from a running server's
// /metrics endpoint (the same schema inspire-stats -json emits).
func FetchSnapshot(base string, timeout time.Duration) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// atomicMaxI64 raises *a to v if larger.
func atomicMaxI64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMinNZI64 lowers *a to v, treating 0 as unset.
func atomicMinNZI64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if (cur != 0 && cur <= v) || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
