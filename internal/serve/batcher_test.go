package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// testPlan compiles a tiny conv→flatten→dense model with a compiled batch
// of 1, so request items equal RunBatch chunks.
func testPlan(t *testing.T) *runtime.Plan {
	t.Helper()
	g := graph.New("serve-test", 1, 1, 4, 4)
	spec := tensor.ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(41), 0.5)
	x := g.Conv(g.In, "c", spec, w, nil)
	x = g.Flatten(x, "f")
	fc := tensor.New(3, 2*4*4)
	tensor.FillGaussian(fc, tensor.NewRNG(42), 0.1)
	g.SetOutput(g.Dense(x, "fc", fc, nil))
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func testInput(seed uint64, items int) *tensor.Tensor {
	in := tensor.New(items, 1, 4, 4)
	tensor.FillGaussian(in, tensor.NewRNG(seed), 1)
	return in
}

// expect runs the plan directly (no batcher) for a reference output.
func expect(t *testing.T, plan *runtime.Plan, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := plan.RunBatch(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameData(t *testing.T, got, want *tensor.Tensor) {
	t.Helper()
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("element %d: got %v want %v", i, gd[i], wd[i])
		}
	}
}

// TestBatcherSingleRequestDeadlineFlush submits one request with a large
// MaxBatch: only the SLO deadline can flush it, and the result must match
// a direct run.
func TestBatcherSingleRequestDeadlineFlush(t *testing.T) {
	rec := runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 64, SLO: 20 * time.Millisecond})
	defer b.Close()

	in := testInput(1, 1)
	start := time.Now()
	out, err := b.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("flushed after %v, before the %v SLO deadline", waited, 20*time.Millisecond)
	}
	sameData(t, out, expect(t, plan, in))
	ep := rec.Snapshot().Endpoints
	if len(ep) != 1 || ep[0].Flushes != 1 || ep[0].Items != 1 || ep[0].Requests != 1 {
		t.Fatalf("endpoint snapshot = %+v", ep)
	}
}

// TestBatcherZeroSLOImmediateFlush submits with SLO 0: the request must
// not wait out any deadline.
func TestBatcherZeroSLOImmediateFlush(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 64, SLO: 0})
	defer b.Close()

	in := testInput(2, 1)
	start := time.Now()
	out, err := b.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("SLO-0 submit took %v", waited)
	}
	sameData(t, out, expect(t, plan, in))
}

// TestBatcherOversizedRequest submits a request bigger than MaxBatch: it
// must be admitted whole and produce the full batched output.
func TestBatcherOversizedRequest(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 2, SLO: time.Millisecond})
	defer b.Close()

	in := testInput(3, 7) // 7 chunks > MaxBatch 2
	out, err := b.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, out, expect(t, plan, in))
}

// TestBatcherCoalesces stalls the flush path, queues several requests, and
// checks they ride one RunBatch call (mean batch > 1) with each request
// still getting its own correct slice of the output.
func TestBatcherCoalesces(t *testing.T) {
	rec := runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 64, SLO: 5 * time.Millisecond, MaxInFlight: 1})

	// First flush blocks until released, so the next submissions pile up
	// and coalesce into the second flush.
	release := make(chan struct{})
	var gate sync.Once
	b.flushHook = func() { gate.Do(func() { <-release }) }

	results := make([]*tensor.Tensor, 5)
	errs := make([]error, 5)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Submit(testInput(uint64(10+i), 1))
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let all five enqueue / first flush stall
	close(release)
	wg.Wait()
	b.Close()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		sameData(t, results[i], expect(t, plan, testInput(uint64(10+i), 1)))
	}
	ep := rec.Snapshot().Endpoints[0]
	if ep.Requests != 5 {
		t.Fatalf("requests = %d", ep.Requests)
	}
	if ep.Flushes >= 5 || ep.MeanBatch <= 1 {
		t.Fatalf("no coalescing: flushes %d, mean batch %v", ep.Flushes, ep.MeanBatch)
	}
}

// TestBatcherOverload saturates the single flush slot and the one-deep
// queue: the surplus submission must be rejected with ErrOverloaded and
// counted, and the stalled requests must still complete.
func TestBatcherOverload(t *testing.T) {
	rec := runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 1, SLO: 0, QueueDepth: 1, MaxInFlight: 1})

	entered := make(chan struct{}, 256)
	release := make(chan struct{})
	b.flushHook = func() { entered <- struct{}{}; <-release }

	var wg sync.WaitGroup
	submit := func(seed uint64) chan error {
		ch := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Submit(testInput(seed, 1))
			ch <- err
		}()
		return ch
	}
	// First request: gathered immediately (SLO 0), stalls in the flush
	// hook holding the only flight token.
	pending := []chan error{submit(1)}
	<-entered

	// Keep pushing: the loop gathers at most one more request and blocks on
	// the flight token, one more sits in the queue, and everything beyond
	// that is rejected at admission. Requests that don't come back within
	// the poll window are admitted-and-stalled.
	var overloaded bool
	for i := 0; i < 100 && !overloaded; i++ {
		ch := submit(uint64(100 + i))
		select {
		case err := <-ch:
			if errors.Is(err, ErrOverloaded) {
				overloaded = true
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			} else {
				t.Fatal("request completed while the flush slot was stalled")
			}
		case <-time.After(10 * time.Millisecond):
			pending = append(pending, ch)
		}
	}
	if !overloaded {
		t.Fatal("no submission was rejected with ErrOverloaded")
	}
	close(release)
	wg.Wait()
	b.Close()
	if got := rec.Snapshot().Endpoints[0].RejectedOverload; got == 0 {
		t.Fatal("overload rejection not counted")
	}
	// The stalled request behind the hook completed, and nothing was
	// silently dropped: every pending channel settled with success or — for
	// submissions whose rejection outran the poll window — ErrOverloaded.
	if err := <-pending[0]; err != nil {
		t.Fatalf("stalled request: %v", err)
	}
	for i, ch := range pending[1:] {
		if err := <-ch; err != nil && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("pending request %d: %v", i, err)
		}
	}
}

// TestBatcherShutdownDrain races many submitters against Close: every
// Submit must return exactly once, either a correct result or ErrClosed —
// no drops, no double completions, and the books must balance.
func TestBatcherShutdownDrain(t *testing.T) {
	rec := runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{MaxBatch: 4, SLO: time.Millisecond, QueueDepth: 256})
	// Slow each flush a little so the workload reliably outlives Close.
	b.flushHook = func() { time.Sleep(200 * time.Microsecond) }

	in := testInput(5, 1)
	want := expect(t, plan, in)
	const submitters = 32
	const perSubmitter = 20
	var completed, closed, other atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				out, err := b.Submit(in)
				switch {
				case err == nil:
					sameData(t, out, want)
					completed.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	// Close mid-flight: once a quarter of the submissions completed, shut
	// down while the rest are still being submitted.
	for completed.Load() < submitters*perSubmitter/4 {
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	wg.Wait()

	total := completed.Load() + closed.Load() + other.Load()
	if total != submitters*perSubmitter {
		t.Fatalf("submissions accounted %d, want %d", total, submitters*perSubmitter)
	}
	if other.Load() != 0 {
		t.Fatalf("%d submissions failed with unexpected errors", other.Load())
	}
	if completed.Load() == 0 || closed.Load() == 0 {
		t.Fatalf("race did not exercise both outcomes: completed %d closed %d",
			completed.Load(), closed.Load())
	}
	ep := rec.Snapshot().Endpoints[0]
	if ep.Requests != completed.Load() {
		t.Fatalf("endpoint recorded %d requests, clients saw %d complete", ep.Requests, completed.Load())
	}
	if ep.Items != completed.Load() {
		t.Fatalf("endpoint items %d != completed %d (dropped or double-flushed work)", ep.Items, completed.Load())
	}
	if ep.RejectedClosed != closed.Load() {
		t.Fatalf("endpoint rejected-closed %d, clients saw %d", ep.RejectedClosed, closed.Load())
	}
	// Submit after Close stays rejected.
	if _, err := b.Submit(in); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit error = %v, want ErrClosed", err)
	}
}

// TestBatcherValidation rejects malformed inputs before they occupy queue
// space.
func TestBatcherValidation(t *testing.T) {
	plan := testPlan(t)
	b := NewBatcher("m", plan, Config{})
	defer b.Close()
	cases := []struct {
		name  string
		shape []int
	}{
		{"rank", []int{4, 16}},
		{"dims", []int{1, 2, 4, 4}},
	}
	for _, tc := range cases {
		if _, err := b.Submit(tensor.New(tc.shape...)); err == nil {
			t.Errorf("%s: malformed input accepted", tc.name)
		}
	}
}

// TestRegistry covers registration, lookup, metrics prefixing, and
// double-registration.
func TestRegistry(t *testing.T) {
	runtime.EnableMetrics()
	defer runtime.DisableMetrics()
	reg := NewRegistry()
	plan := testPlan(t)
	m, err := reg.Register("tiny", plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MetricsPrefix != "tiny/" {
		t.Errorf("metrics prefix = %q", plan.MetricsPrefix)
	}
	if got, ok := reg.Get("tiny"); !ok || got != m {
		t.Error("lookup failed")
	}
	if _, err := reg.Register("tiny", testPlan(t), Config{}); err == nil {
		t.Error("double registration accepted")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "tiny" {
		t.Errorf("names = %v", names)
	}
	reg.Close()
	if _, err := m.Batcher.Submit(testInput(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after registry close = %v", err)
	}
}
