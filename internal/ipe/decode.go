package ipe

import (
	"fmt"
	"sort"

	"repro/internal/quant"
)

// ExpandSymbol returns the raw input indices a symbol covers, in ascending
// order. Raw symbols expand to themselves; dictionary symbols expand
// recursively through their pair operands.
func (p *Program) ExpandSymbol(s int32) []int32 {
	var out []int32
	var walk func(s int32)
	walk = func(s int32) {
		if int(s) < p.K {
			out = append(out, s)
			return
		}
		pr := p.Pairs[int(s)-p.K]
		walk(pr.A)
		walk(pr.B)
	}
	walk(s)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decode reconstructs the quantized code matrix [M, K] the program encodes.
// Every term's symbols expand to raw indices that receive the term's code.
// It errors if any raw index is covered twice within a row (which would
// mean the encoding double-counts an input).
func (p *Program) Decode() ([]int32, error) {
	codes := make([]int32, p.M*p.K)
	for r, row := range p.Rows {
		for _, t := range row.Terms {
			for _, s := range t.Syms {
				for _, raw := range p.ExpandSymbol(s) {
					at := r*p.K + int(raw)
					if codes[at] != 0 {
						return nil, fmt.Errorf("ipe: row %d input %d covered twice (codes %d and %d)",
							r, raw, codes[at], t.Code)
					}
					codes[at] = t.Code
				}
			}
		}
	}
	return codes, nil
}

// VerifyAgainst decodes the program and compares the reconstruction with
// the quantized tensor it was encoded from. It is the encode→decode
// round-trip check used by the property tests and by `inspire-encode
// -verify`.
func (p *Program) VerifyAgainst(q *quant.Quantized) error {
	got, err := p.Decode()
	if err != nil {
		return err
	}
	if len(got) != len(q.Codes) {
		return fmt.Errorf("ipe: decoded %d codes, want %d", len(got), len(q.Codes))
	}
	for i := range got {
		if got[i] != q.Codes[i] {
			return fmt.Errorf("ipe: code mismatch at flat index %d: decoded %d, original %d",
				i, got[i], q.Codes[i])
		}
	}
	return nil
}
