package ipe

import "sort"

// Scratch-slot allocation for the partial-sum scratchpad.
//
// A naive decoder gives every dictionary entry its own scratchpad word
// (K + D words total). But execution order is fixed — pairs build in
// dependency order, rows emit in row order — so each entry has a precise
// lifetime: born when its pair executes, dead after its last reader (a
// later pair or the last row term referencing it). Allocating slots with a
// free list over those lifetimes is linear-scan register allocation on the
// decode pipeline, and it shrinks the scratchpad the hardware must
// provision. Raw inputs keep their fixed K words; only dictionary entries
// are allocated.

// ScratchPlan maps dictionary entries to reusable scratch slots.
type ScratchPlan struct {
	// Slot[j] is the scratch slot of dictionary entry j (0-based, beyond
	// the K input words).
	Slot []int32
	// NumSlots is the number of distinct slots needed (≤ len(Slot)).
	NumSlots int
}

// lastUses computes, for each dictionary entry, the time step of its final
// read. Time steps: pair j executes at step j; row r's terms read at step
// len(Pairs)+r.
func (p *Program) lastUses() []int {
	last := make([]int, len(p.Pairs))
	use := func(s int32, step int) {
		if int(s) >= p.K {
			j := int(s) - p.K
			if step > last[j] {
				last[j] = step
			}
		}
	}
	for j, pr := range p.Pairs {
		use(pr.A, j)
		use(pr.B, j)
	}
	for r, row := range p.Rows {
		step := len(p.Pairs) + r
		for _, t := range row.Terms {
			for _, s := range t.Syms {
				use(s, step)
			}
		}
	}
	return last
}

// AllocateScratch performs linear-scan slot allocation over the program's
// fixed execution order and returns the plan. Entries that are never read
// (impossible after dead pruning, but tolerated) free immediately.
func (p *Program) AllocateScratch() ScratchPlan {
	last := p.lastUses()
	plan := ScratchPlan{Slot: make([]int32, len(p.Pairs))}
	// expiring[step] lists slots to free after the given step.
	expiring := make(map[int][]int32)
	var free []int32
	next := int32(0)
	for j := range p.Pairs {
		// Free slots whose owners died strictly before this step.
		if dead, ok := expiring[j]; ok {
			free = append(free, dead...)
			// Prefer low slot numbers for determinism.
			sort.Slice(free, func(a, b int) bool { return free[a] < free[b] })
			delete(expiring, j)
		}
		var slot int32
		if len(free) > 0 {
			slot = free[0]
			free = free[1:]
		} else {
			slot = next
			next++
		}
		plan.Slot[j] = slot
		// The entry dies after step last[j]; it becomes reusable at the
		// step after that. Steps beyond the pair phase never free within
		// this loop, which is fine: only pair-phase reuse shrinks the
		// scratchpad (row emission reads but never writes slots).
		expiring[last[j]+1] = append(expiring[last[j]+1], slot)
	}
	plan.NumSlots = int(next)
	return plan
}

// Validate checks the plan against the program: no two entries with
// overlapping lifetimes may share a slot.
func (sp ScratchPlan) Validate(p *Program) bool {
	if len(sp.Slot) != len(p.Pairs) {
		return false
	}
	last := p.lastUses()
	// Entry j is live over [j, last[j]]. Same slot ⇒ disjoint intervals.
	bySlot := make(map[int32][]int)
	for j, s := range sp.Slot {
		bySlot[s] = append(bySlot[s], j)
	}
	for _, entries := range bySlot {
		for a := 0; a < len(entries); a++ {
			for b := a + 1; b < len(entries); b++ {
				i, j := entries[a], entries[b]
				if i <= last[j] && j <= last[i] {
					return false
				}
			}
		}
	}
	return true
}

// ExecuteSlots evaluates the program through the scratch plan: dictionary
// values live in plan slots instead of one word per entry. It exists to
// prove the plan's semantic equivalence; production decoders would bake the
// slot ids into the stream.
func (p *Program) ExecuteSlots(x, y []float32, plan ScratchPlan) {
	slots := make([]float32, plan.NumSlots)
	val := func(s int32) float32 {
		if int(s) < p.K {
			return x[s]
		}
		return slots[plan.Slot[int(s)-p.K]]
	}
	for j, pr := range p.Pairs {
		v := val(pr.A) + val(pr.B)
		slots[plan.Slot[j]] = v
	}
	for r := range p.Rows {
		var acc float32
		for _, t := range p.Rows[r].Terms {
			var g float32
			for _, s := range t.Syms {
				g += val(s)
			}
			acc += t.Value * g
		}
		y[r] = acc
	}
}
