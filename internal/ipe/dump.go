package ipe

import (
	"fmt"
	"io"
)

// Dump writes a human-readable listing of the program: header, the pair
// dictionary in dependency order (with depths), and the per-row emit
// terms. maxRows bounds the row section (0 = all rows); the dictionary
// prints at most 64 entries with an elision marker. Intended for debugging
// and for documentation snippets, not for machine consumption — that is
// MarshalBinary's job.
func (p *Program) Dump(w io.Writer, maxRows int) {
	fmt.Fprintf(w, "ipe.Program{K=%d M=%d bits=%d dict=%d depth=%d}\n",
		p.K, p.M, p.Bits, p.DictSize(), p.MaxDepthUsed())
	const maxDict = 64
	for j, pr := range p.Pairs {
		if j == maxDict {
			fmt.Fprintf(w, "  ... %d more pair entries\n", len(p.Pairs)-maxDict)
			break
		}
		fmt.Fprintf(w, "  s%-6d = %s + %s   (depth %d)\n",
			p.K+j, p.symName(pr.A), p.symName(pr.B), p.Depth[j])
	}
	rows := len(p.Rows)
	if maxRows > 0 && maxRows < rows {
		rows = maxRows
	}
	for r := 0; r < rows; r++ {
		fmt.Fprintf(w, "  y[%d] =", r)
		if len(p.Rows[r].Terms) == 0 {
			fmt.Fprint(w, " 0")
		}
		for ti, t := range p.Rows[r].Terms {
			if ti > 0 {
				fmt.Fprint(w, " +")
			}
			fmt.Fprintf(w, " %g·Σ{", t.Value)
			for si, s := range t.Syms {
				if si > 0 {
					fmt.Fprint(w, ",")
				}
				if si == 8 {
					fmt.Fprintf(w, "…%d syms", len(t.Syms))
					break
				}
				fmt.Fprint(w, p.symName(s))
			}
			fmt.Fprint(w, "}")
		}
		fmt.Fprintln(w)
	}
	if rows < len(p.Rows) {
		fmt.Fprintf(w, "  ... %d more rows\n", len(p.Rows)-rows)
	}
}

// symName renders a symbol id: raw inputs as x<i>, dictionary entries as
// s<id>.
func (p *Program) symName(s int32) string {
	if int(s) < p.K {
		return fmt.Sprintf("x%d", s)
	}
	return fmt.Sprintf("s%d", s)
}
