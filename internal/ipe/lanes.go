package ipe

import "fmt"

// 4-lane tape executors: one pass over the compiled pair and emit streams
// computes four destination rows (four independent input vectors), so the
// per-entry decode — stream loads, offset arithmetic, loop control — is
// amortized 4x and the per-term group sums and row accumulators live in
// registers as straight-line unrolled locals. The scratchpad interleaves
// the four lanes per location ([location*4 + lane]), so every pair add and
// emit read touches one contiguous 16-byte group.
//
// Each lane performs the identical operation chain of the single-vector
// executor — group sums start at 0+firstSym and add symbols in stream
// order, rows accumulate value*group in term order — so lane l's outputs
// are bit-identical to ExecuteScratch on lane l's input. The batch users
// (DenseLayer.ForwardInto, ConvLayer.ForwardInt8) rely on that to keep
// their conformance families unchanged.

// laneCount is the number of destination rows a lane sweep computes.
const laneCount = 4

// ExecuteScratch4 evaluates the compiled program on four input vectors in
// one stream sweep, writing the four output vectors. lanes must hold at
// least 4*ScratchLen() floats. Results are bit-identical to four
// ExecuteScratch calls.
func (c *Compiled) ExecuteScratch4(x0, x1, x2, x3, y0, y1, y2, y3, lanes []float32) {
	if len(x0) < c.K || len(x1) < c.K || len(x2) < c.K || len(x3) < c.K ||
		len(y0) < c.M || len(y1) < c.M || len(y2) < c.M || len(y3) < c.M {
		panic(fmt.Sprintf("ipe: compiled ExecuteScratch4 buffers too small (K=%d M=%d)", c.K, c.M))
	}
	if len(lanes) < laneCount*c.ScratchLen() {
		panic(fmt.Sprintf("ipe: compiled lane scratch %d < %d", len(lanes), laneCount*c.ScratchLen()))
	}
	for i := 0; i < c.K; i++ {
		o := i * 4
		d := lanes[o : o+4 : o+4]
		d[0] = x0[i]
		d[1] = x1[i]
		d[2] = x2[i]
		d[3] = x3[i]
	}
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	for i := range pd {
		oa := int(pa[i]) * 4
		ob := int(pb[i]) * 4
		od := int(pd[i]) * 4
		a := lanes[oa : oa+4 : oa+4]
		b := lanes[ob : ob+4 : ob+4]
		d := lanes[od : od+4 : od+4]
		d[0] = a[0] + b[0]
		d[1] = a[1] + b[1]
		d[2] = a[2] + b[2]
		d[3] = a[3] + b[3]
	}
	symStream, termOff, values, rowOff := c.syms, c.termOff, c.values, c.rowOff
	for r := 0; r < c.M; r++ {
		var a0, a1, a2, a3 float32
		for t := rowOff[r]; t < rowOff[r+1]; t++ {
			v := values[t]
			j0, j1 := int(termOff[t]), int(termOff[t+1])
			o := int(symStream[j0]) * 4
			s := lanes[o : o+4 : o+4]
			g0 := 0 + s[0]
			g1 := 0 + s[1]
			g2 := 0 + s[2]
			g3 := 0 + s[3]
			for j := j0 + 1; j < j1; j++ {
				o := int(symStream[j]) * 4
				s := lanes[o : o+4 : o+4]
				g0 += s[0]
				g1 += s[1]
				g2 += s[2]
				g3 += s[3]
			}
			a0 += v * g0
			a1 += v * g1
			a2 += v * g2
			a3 += v * g3
		}
		y0[r] = a0
		y1[r] = a1
		y2[r] = a2
		y3[r] = a3
	}
}

// ExecuteIntScratch4 is the integer 4-lane sweep: four code vectors in,
// four exact int64 accumulator vectors out. lanes must hold at least
// 4*ScratchLen() int64 words. Integer addition is associative and the
// per-lane order matches anyway, so results equal four ExecuteIntScratch
// calls exactly.
func (c *Compiled) ExecuteIntScratch4(x0, x1, x2, x3 []int32, y0, y1, y2, y3, lanes []int64) {
	if len(x0) < c.K || len(x1) < c.K || len(x2) < c.K || len(x3) < c.K ||
		len(y0) < c.M || len(y1) < c.M || len(y2) < c.M || len(y3) < c.M {
		panic(fmt.Sprintf("ipe: compiled ExecuteIntScratch4 buffers too small (K=%d M=%d)", c.K, c.M))
	}
	if len(lanes) < laneCount*c.ScratchLen() {
		panic(fmt.Sprintf("ipe: compiled int lane scratch %d < %d", len(lanes), laneCount*c.ScratchLen()))
	}
	for i := 0; i < c.K; i++ {
		o := i * 4
		d := lanes[o : o+4 : o+4]
		d[0] = int64(x0[i])
		d[1] = int64(x1[i])
		d[2] = int64(x2[i])
		d[3] = int64(x3[i])
	}
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	for i := range pd {
		oa := int(pa[i]) * 4
		ob := int(pb[i]) * 4
		od := int(pd[i]) * 4
		a := lanes[oa : oa+4 : oa+4]
		b := lanes[ob : ob+4 : ob+4]
		d := lanes[od : od+4 : od+4]
		d[0] = a[0] + b[0]
		d[1] = a[1] + b[1]
		d[2] = a[2] + b[2]
		d[3] = a[3] + b[3]
	}
	symStream, termOff, codes, rowOff := c.syms, c.termOff, c.codes, c.rowOff
	for r := 0; r < c.M; r++ {
		var a0, a1, a2, a3 int64
		for t := rowOff[r]; t < rowOff[r+1]; t++ {
			cd := int64(codes[t])
			j0, j1 := int(termOff[t]), int(termOff[t+1])
			o := int(symStream[j0]) * 4
			s := lanes[o : o+4 : o+4]
			g0 := s[0]
			g1 := s[1]
			g2 := s[2]
			g3 := s[3]
			for j := j0 + 1; j < j1; j++ {
				o := int(symStream[j]) * 4
				s := lanes[o : o+4 : o+4]
				g0 += s[0]
				g1 += s[1]
				g2 += s[2]
				g3 += s[3]
			}
			a0 += cd * g0
			a1 += cd * g1
			a2 += cd * g2
			a3 += cd * g3
		}
		y0[r] = a0
		y1[r] = a1
		y2[r] = a2
		y3[r] = a3
	}
}

// RowScales precomputes every row's weight scale (see rowScale) so the
// integer forward paths requantize with one multiply per output instead of
// re-walking the row's terms.
func (p *Program) RowScales() []float32 {
	scales := make([]float32, p.M)
	for r := range scales {
		scales[r] = p.rowScale(r)
	}
	return scales
}
