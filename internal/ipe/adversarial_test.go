package ipe

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Adversarial weight patterns: structures chosen to stress the encoder's
// corner cases rather than look like trained weights.

func codesMatrix(m, k int, fill func(r, c int) int32) *quant.Quantized {
	codes := make([]int32, m*k)
	for r := 0; r < m; r++ {
		for c := 0; c < k; c++ {
			codes[r*k+c] = fill(r, c)
		}
	}
	return &quant.Quantized{
		Codes: codes, Shape: tensor.Shape{m, k}, Bits: 8,
		Scheme: quant.PerTensor, Params: []quant.Params{{Scale: 1}},
	}
}

func TestEncodeAllSameValueMatrix(t *testing.T) {
	// Every weight identical: each row is one giant index set, maximal
	// merging pressure. The result must collapse toward a single
	// log-depth tree shared by all rows.
	q := codesMatrix(16, 64, func(r, c int) int32 { return 3 })
	prog, stats, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.VerifyAgainst(q); err != nil {
		t.Fatal(err)
	}
	// All rows identical → after full merging each row should emit very
	// few symbols, and the dictionary is shared: ~K-1 entries build the
	// full-row sum tree.
	if prog.DictSize() >= 16*64/2 {
		t.Fatalf("sharing failed: %d dictionary entries", prog.DictSize())
	}
	cost := prog.Cost()
	dense := DenseCost(16, 64)
	if cost.Total() >= dense.Total()/4 {
		t.Fatalf("all-same matrix should compress massively: %d vs dense %d",
			cost.Total(), dense.Total())
	}
	if stats.CompressionRatio() < 2 {
		t.Fatalf("compression ratio %v too low for all-same matrix", stats.CompressionRatio())
	}
}

func TestEncodeCheckerboard(t *testing.T) {
	// Alternating ±1: two interleaved index sets per row, identical across
	// rows — classic weight-repetition case.
	q := codesMatrix(8, 32, func(r, c int) int32 {
		if c%2 == 0 {
			return 1
		}
		return -1
	})
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.VerifyAgainst(q); err != nil {
		t.Fatal(err)
	}
	// Rows are identical: rows 1..7 must reuse row 0's merged symbols, so
	// the per-row emit stream should be tiny.
	for r, row := range prog.Rows {
		var syms int
		for _, term := range row.Terms {
			syms += len(term.Syms)
		}
		if syms > 8 {
			t.Fatalf("row %d still emits %d symbols; expected deep sharing", r, syms)
		}
	}
}

func TestEncodeDiagonalMatrix(t *testing.T) {
	// Identity-like: one nonzero per row, nothing to merge, and the
	// encoder must not invent work.
	q := codesMatrix(32, 32, func(r, c int) int32 {
		if r == c {
			return 5
		}
		return 0
	})
	prog, stats, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() != 0 || stats.Merges != 0 {
		t.Fatalf("diagonal matrix must not merge: dict=%d", prog.DictSize())
	}
	c := prog.Cost()
	// Per row: 1 group add + 1 mul.
	if c.Muls != 32 || c.Adds != 32 {
		t.Fatalf("diagonal cost = %+v", c)
	}
}

func TestEncodeSingleColumnRepeated(t *testing.T) {
	// Every row uses only input 0: sets of size 1 everywhere; no pairs
	// exist at all.
	q := codesMatrix(16, 8, func(r, c int) int32 {
		if c == 0 {
			return int32(r%5) + 1
		}
		return 0
	})
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() != 0 {
		t.Fatal("size-1 sets cannot merge")
	}
	if err := prog.VerifyAgainst(q); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMaxNegativeCodes(t *testing.T) {
	// Codes at the signed boundary the wire format must carry (int16).
	q := codesMatrix(4, 8, func(r, c int) int32 {
		if c%2 == 0 {
			return -127
		}
		return 127
	})
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := back.VerifyAgainst(q); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTileBoundaryPairs(t *testing.T) {
	// All repetition spans a tile boundary: tile-local encoding must
	// refuse every merge, global encoding must take them.
	const tile = 4
	q := codesMatrix(8, 8, func(r, c int) int32 {
		if c == 3 || c == 4 { // straddles the 4-wide tile boundary
			return 2
		}
		return 0
	})
	local, _, err := Encode(q, Config{TileSize: tile})
	if err != nil {
		t.Fatal(err)
	}
	if local.DictSize() != 0 {
		t.Fatalf("tile-local encoding merged across the boundary: %d entries", local.DictSize())
	}
	global, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if global.DictSize() == 0 {
		t.Fatal("global encoding should merge the repeated straddling pair")
	}
	for _, p := range []*Program{local, global} {
		if err := p.VerifyAgainst(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDumpOutput(t *testing.T) {
	q := qm([]int32{
		1, 1, 0, 2,
		1, 1, 2, 0,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prog.Dump(&buf, 0)
	out := buf.String()
	for _, want := range []string{"ipe.Program{K=4 M=2", "y[0] =", "y[1] =", "= x0 + x1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpTruncatesRows(t *testing.T) {
	q := codesMatrix(20, 16, func(r, c int) int32 { return int32((r+c)%5) - 2 })
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prog.Dump(&buf, 3)
	if !strings.Contains(buf.String(), "more rows") {
		t.Fatalf("Dump(3) should elide rows:\n%s", buf.String())
	}
}
