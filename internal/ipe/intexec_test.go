package ipe

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestQuantizeActivationsClamps(t *testing.T) {
	p := quant.Params{Scale: 1}
	codes := QuantizeActivations([]float32{-1000, -1, 0, 1, 1000}, p, 8)
	want := []int32{-127, -1, 0, 1, 127}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
}

func TestQuantizeActivationsZeroScale(t *testing.T) {
	codes := QuantizeActivations([]float32{1, 2}, quant.Params{}, 8)
	for _, c := range codes {
		if c != 0 {
			t.Fatal("zero scale must map everything to 0, not divide by zero")
		}
	}
}

func TestExecuteQuantizedTracksFloatProperty(t *testing.T) {
	// The integer path must agree with the float path within the
	// activation quantization error bound.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 12, 40, 4, 0)
		prog, _, err := Encode(q, DefaultConfig())
		if err != nil {
			return false
		}
		k := prog.K
		x := make([]float32, k)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		xp := quant.Calibrate([]*tensor.Tensor{tensor.From(x, k)}, 8)
		yInt := make([]float32, prog.M)
		prog.ExecuteQuantized(x, yInt, xp, 8)
		yFloat := make([]float32, prog.M)
		prog.Execute(x, yFloat)
		// Error bound: per-element activation error ≤ scale/2, times the
		// sum of |dequantized weights| of the row.
		deq := q.Dequantize().Data()
		for row := 0; row < prog.M; row++ {
			var wsum float64
			for i := 0; i < k; i++ {
				wsum += math.Abs(float64(deq[row*k+i]))
			}
			bound := float64(xp.Scale)/2*wsum*1.01 + 1e-4
			if d := math.Abs(float64(yInt[row] - yFloat[row])); d > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardInt8MatchesFloatForward(t *testing.T) {
	r := tensor.NewRNG(40)
	spec := tensor.ConvSpec{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, r, 0.1)
	layer, _, err := EncodeConv(w, bias, spec, 4, quant.PerChannel, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 4, 8, 8)
	tensor.FillGaussian(in, r, 1)
	xp := quant.Calibrate([]*tensor.Tensor{in}, 8)
	got := layer.ForwardInt8(in, xp)
	want := layer.Forward(in)
	// 8-bit activations keep the outputs close on this scale.
	if !tensor.AllClose(got, want, 0.05, 0.05) {
		t.Fatalf("int8 forward diverges from float: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestForwardInt8Grouped(t *testing.T) {
	r := tensor.NewRNG(41)
	spec := tensor.ConvSpec{InC: 6, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 3}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	layer, _, err := EncodeConv(w, nil, spec, 4, quant.PerTensor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 6, 6, 6)
	tensor.FillGaussian(in, r, 1)
	xp := quant.Calibrate([]*tensor.Tensor{in}, 8)
	got := layer.ForwardInt8(in, xp)
	want := layer.Forward(in)
	if !tensor.AllClose(got, want, 0.05, 0.05) {
		t.Fatalf("grouped int8 forward diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestRowScaleRecovery(t *testing.T) {
	q := &quant.Quantized{
		Codes:  []int32{3, 0, -2, 0},
		Shape:  tensor.Shape{2, 2},
		Bits:   4,
		Scheme: quant.PerChannel,
		Params: []quant.Params{{Scale: 0.5}, {Scale: 0.25}},
	}
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.rowScale(0); got != 0.5 {
		t.Fatalf("rowScale(0) = %v, want 0.5", got)
	}
	if got := prog.rowScale(1); got != 0.25 {
		t.Fatalf("rowScale(1) = %v, want 0.25", got)
	}
}

func TestExecuteQuantizedAsymMatchesFloat(t *testing.T) {
	// Post-ReLU (non-negative) activations: the asymmetric path should
	// track the float path at least as well as the symmetric one, using
	// the zero-point correction.
	r := tensor.NewRNG(70)
	q := randQuant(r, 12, 40, 4, 0)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, prog.K)
	for i := range x {
		v := float32(r.NormFloat64())
		if v < 0 {
			v = 0 // ReLU-style input
		}
		x[i] = v
	}
	xp := quant.CalibrateAsym([]*tensor.Tensor{tensor.From(x, prog.K)}, 8)
	rowSums := prog.RowCodeSums()
	yAsym := make([]float32, prog.M)
	prog.ExecuteQuantizedAsym(x, yAsym, xp, 8, rowSums)
	yFloat := make([]float32, prog.M)
	prog.Execute(x, yFloat)
	deq := q.Dequantize().Data()
	for row := 0; row < prog.M; row++ {
		var wsum float64
		for i := 0; i < prog.K; i++ {
			wsum += absf(float64(deq[row*prog.K+i]))
		}
		bound := float64(xp.Scale)/2*wsum*1.01 + 1e-4
		if d := absf(float64(yAsym[row] - yFloat[row])); d > bound {
			t.Fatalf("row %d: asym error %v exceeds bound %v", row, d, bound)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRowCodeSums(t *testing.T) {
	q := qm([]int32{
		2, 2, 0, -1,
		0, 3, 3, 3,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sums := prog.RowCodeSums()
	// Row 0: 2+2-1 = 3; row 1: 3·3 = 9.
	if sums[0] != 3 || sums[1] != 9 {
		t.Fatalf("RowCodeSums = %v, want [3 9]", sums)
	}
}
