package ipe

import (
	"fmt"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// emitShapes are the LeNet-5 / SqueezeNet layer shapes the serving
// benchmarks exercise (m outputs, k inputs, p im2col columns), spanning
// both emit regimes: wide column counts (>= emitWideCutoff, fused-slab
// streaming passes) and narrow ones (register-chunked emit, including the
// fully specialized 4-column block).
var emitShapes = []struct {
	m, k, p int
}{
	{6, 25, 784},   // lenet5 conv1
	{16, 150, 100}, // lenet5 conv2
	{64, 27, 256},  // squeezenet conv1
	{64, 144, 64},  // fire2 expand3x3
	{128, 288, 16}, // fire4 expand3x3
	{192, 432, 4},  // fire6 expand3x3
	{256, 576, 4},  // fire8 expand3x3
	{64, 512, 4},   // fire9 squeeze
}

func emitProg(tb testing.TB, m, k int) *Compiled {
	tb.Helper()
	w := tensor.New(m, k)
	tensor.FillGaussian(w, tensor.NewRNG(uint64(m+k)), 1)
	prog, _, err := Encode(quant.Quantize(w, 4, quant.PerTensor), DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return prog.Compiled()
}

// TestEmitBlockedBitIdentical checks the register-blocked matrix executor
// against the single-vector tape executor column by column: every output
// column must be bit-identical to ExecuteScratch on that input column (the
// contract that keeps the compiled matrix path in the IPE conformance
// family). Shapes cover both emit regimes and non-multiple-of-colBlock
// column counts.
func TestEmitBlockedBitIdentical(t *testing.T) {
	for _, sh := range emitShapes {
		c := emitProg(t, sh.m, sh.k)
		for _, p := range []int{sh.p, 3} {
			cols := make([]float32, sh.k*p)
			r := tensor.NewRNG(uint64(p))
			for i := range cols {
				cols[i] = r.Float32()*2 - 1
			}
			got := make([]float32, sh.m*p)
			var s tensor.Scratch
			c.executeMatrixColsBlocked(got, cols, p, 0, p, &s)

			x := make([]float32, sh.k)
			want := make([]float32, sh.m)
			scratch := make([]float32, c.ScratchLen())
			for j := 0; j < p; j++ {
				for i := 0; i < sh.k; i++ {
					x[i] = cols[i*p+j]
				}
				c.ExecuteScratch(x, want, scratch)
				for r := 0; r < sh.m; r++ {
					if got[r*p+j] != want[r] {
						t.Fatalf("m=%d k=%d p=%d col %d row %d: %x want %x",
							sh.m, sh.k, p, j, r, got[r*p+j], want[r])
					}
				}
			}
		}
	}
}

// BenchmarkEmitBlocked times the register-blocked compiled matrix executor
// on the serving shapes (the bench-micro CI job runs this with
// -benchtime=1x as a build-and-run smoke check).
func BenchmarkEmitBlocked(b *testing.B) {
	for _, sh := range emitShapes {
		c := emitProg(b, sh.m, sh.k)
		cols := make([]float32, sh.k*sh.p)
		r := tensor.NewRNG(6)
		for i := range cols {
			cols[i] = r.Float32()
		}
		dst := make([]float32, sh.m*sh.p)
		var s tensor.Scratch
		b.Run(fmt.Sprintf("m%d_k%d_p%d", sh.m, sh.k, sh.p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.executeMatrixColsBlocked(dst, cols, sh.p, 0, sh.p, &s)
			}
		})
	}
}
