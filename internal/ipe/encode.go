package ipe

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"

	"repro/internal/quant"
)

// sequence is one (row, value) index set during encoding. syms starts as
// the sorted raw indices whose code equals code in the row and shrinks as
// pairs merge.
type sequence struct {
	row  int
	code int32
	syms []int32
}

// encoder carries the mutable merge state.
type encoder struct {
	cfg   Config
	k     int
	seqs  []sequence
	pairs []Pair  // provisional dictionary
	depth []int32 // per provisional dictionary entry
	tile  []int32 // per symbol (raw + provisional)
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func keyPair(k uint64) (int32, int32) {
	return int32(uint32(k >> 32)), int32(uint32(k))
}

// Encode builds an index-pair-encoded program from a quantized weight
// tensor. Dimension 0 of the tensor is the output (row) dimension; all
// remaining dimensions are flattened into the reduction dimension K. The
// zero code carries no work and is skipped entirely, so pruning-induced
// sparsity is exploited for free.
func Encode(q *quant.Quantized, cfg Config) (*Program, Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if q.Shape.Rank() < 2 {
		return nil, Stats{}, fmt.Errorf("ipe: need rank >= 2 weight, got %v", q.Shape)
	}
	m := q.Shape[0]
	if m == 0 || q.NumElements() == 0 {
		return nil, Stats{}, fmt.Errorf("ipe: empty weight %v", q.Shape)
	}
	k := q.NumElements() / m

	enc := &encoder{cfg: cfg, k: k}
	enc.initTiles()
	stats := Stats{}
	enc.appendSequences(q, 0, &stats)

	switch cfg.Policy {
	case PolicyGreedy:
		enc.runGreedy(&stats)
	default:
		enc.runLayered(&stats)
	}
	stats.Merges = len(enc.pairs)
	for _, s := range enc.seqs {
		stats.OutputSymbols += len(s.syms)
	}

	prog := enc.buildProgramScaled(m, q.Bits, func(row int) float32 {
		return scaleOf(q, row)
	}, &stats)
	return prog, stats, nil
}

// appendSequences adds the (row, value) index sets of one quantized matrix,
// with its rows mapped to the global row space starting at rowOffset.
// Codes iterate in ascending order for determinism.
func (e *encoder) appendSequences(q *quant.Quantized, rowOffset int, stats *Stats) {
	m := q.Shape[0]
	k := q.NumElements() / m
	for row := 0; row < m; row++ {
		base := row * k
		groups := make(map[int32][]int32)
		for i := 0; i < k; i++ {
			c := q.Codes[base+i]
			if c == 0 {
				continue
			}
			groups[c] = append(groups[c], int32(i))
		}
		codes := make([]int32, 0, len(groups))
		for c := range groups {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
		for _, c := range codes {
			stats.InputSymbols += len(groups[c])
			e.seqs = append(e.seqs, sequence{row: rowOffset + row, code: c, syms: groups[c]})
		}
	}
}

func (e *encoder) initTiles() {
	// Raw symbol tiles; merged symbols append as they are created.
	e.tile = make([]int32, e.k)
	if e.cfg.TileSize > 0 {
		for i := 0; i < e.k; i++ {
			e.tile[i] = int32(i / e.cfg.TileSize)
		}
	}
}

// symDepth returns the depth of any symbol id.
func (e *encoder) symDepth(s int32) int32 {
	if int(s) < e.k {
		return 0
	}
	return e.depth[int(s)-e.k]
}

// legalPair reports whether merging (a, b) respects the depth and tile
// constraints.
func (e *encoder) legalPair(a, b int32) bool {
	if e.cfg.TileSize > 0 && e.tile[a] != e.tile[b] {
		return false
	}
	if e.cfg.MaxDepth > 0 {
		d := e.symDepth(a)
		if db := e.symDepth(b); db > d {
			d = db
		}
		if int(d)+1 > e.cfg.MaxDepth {
			return false
		}
	}
	return true
}

// allocSymbol appends a new dictionary entry for the pair (a, b) and
// returns its symbol id.
func (e *encoder) allocSymbol(a, b int32) int32 {
	d := e.symDepth(a)
	if db := e.symDepth(b); db > d {
		d = db
	}
	e.pairs = append(e.pairs, Pair{A: a, B: b})
	e.depth = append(e.depth, d+1)
	e.tile = append(e.tile, e.tile[a]) // == tile[b] under the constraint
	return int32(e.k + len(e.pairs) - 1)
}

// countAdjacent tallies canonical adjacent pairs across all sequences.
// Counting dominates encode time on large layers, so it shards the
// sequence list across workers with private maps and merges; addition is
// commutative, so the result is identical to a serial count.
func (e *encoder) countAdjacent() map[uint64]int {
	workers := goruntime.GOMAXPROCS(0)
	const minSeqsPerWorker = 2048
	if len(e.seqs) < 2*minSeqsPerWorker || workers < 2 {
		counts := make(map[uint64]int)
		for _, s := range e.seqs {
			for i := 0; i+1 < len(s.syms); i++ {
				counts[pairKey(s.syms[i], s.syms[i+1])]++
			}
		}
		return counts
	}
	if max := len(e.seqs) / minSeqsPerWorker; workers > max {
		workers = max
	}
	shards := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	chunk := (len(e.seqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(e.seqs))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := make(map[uint64]int)
			for _, s := range e.seqs[lo:hi] {
				for i := 0; i+1 < len(s.syms); i++ {
					m[pairKey(s.syms[i], s.syms[i+1])]++
				}
			}
			shards[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	counts := shards[0]
	for _, m := range shards[1:] {
		for k, v := range m {
			counts[k] += v
		}
	}
	return counts
}

// runLayered performs batched merge rounds until no pair repeats or the
// dictionary is full.
func (e *encoder) runLayered(stats *Stats) {
	minCount := e.cfg.minCount()
	for {
		counts := e.countAdjacent()
		type cand struct {
			key   uint64
			count int
		}
		cands := make([]cand, 0, len(counts))
		for key, c := range counts {
			if c < minCount {
				continue
			}
			a, b := keyPair(key)
			if !e.legalPair(a, b) {
				continue
			}
			cands = append(cands, cand{key, c})
		}
		if len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].count != cands[j].count {
				return cands[i].count > cands[j].count
			}
			return cands[i].key < cands[j].key
		})
		if e.cfg.MaxDict > 0 {
			budget := e.cfg.MaxDict - len(e.pairs)
			if budget <= 0 {
				return
			}
			if len(cands) > budget {
				cands = cands[:budget]
			}
		}
		assigned := make(map[uint64]int32, len(cands))
		for _, c := range cands {
			a, b := keyPair(c.key)
			assigned[c.key] = e.allocSymbol(a, b)
		}
		if !e.replaceAssigned(assigned) {
			return // no occurrence actually replaced; avoid spinning
		}
		stats.Rounds++
	}
}

// runGreedy merges the single most frequent pair per iteration (textbook
// BPE). Used for small layers and ablation.
func (e *encoder) runGreedy(stats *Stats) {
	minCount := e.cfg.minCount()
	for {
		if e.cfg.MaxDict > 0 && len(e.pairs) >= e.cfg.MaxDict {
			return
		}
		counts := e.countAdjacent()
		bestKey, bestCount := uint64(0), 0
		for key, c := range counts {
			if c < minCount {
				continue
			}
			a, b := keyPair(key)
			if !e.legalPair(a, b) {
				continue
			}
			if c > bestCount || (c == bestCount && key < bestKey) {
				bestKey, bestCount = key, c
			}
		}
		if bestCount == 0 {
			return
		}
		a, b := keyPair(bestKey)
		sym := e.allocSymbol(a, b)
		if !e.replaceAssigned(map[uint64]int32{bestKey: sym}) {
			return
		}
		stats.Rounds++
	}
}

// replaceAssigned rewrites every sequence, substituting assigned pairs left
// to right without overlap. It reports whether any replacement happened.
// Sequences are independent, so the rewrite shards across workers on large
// inputs; replacement within a sequence is sequential, so determinism is
// preserved.
func (e *encoder) replaceAssigned(assigned map[uint64]int32) bool {
	rewrite := func(lo, hi int) bool {
		any := false
		for si := lo; si < hi; si++ {
			s := e.seqs[si].syms
			if len(s) < 2 {
				continue
			}
			out := s[:0]
			i := 0
			for i < len(s) {
				if i+1 < len(s) {
					if sym, ok := assigned[pairKey(s[i], s[i+1])]; ok {
						out = append(out, sym)
						i += 2
						any = true
						continue
					}
				}
				out = append(out, s[i])
				i++
			}
			e.seqs[si].syms = out
		}
		return any
	}
	workers := goruntime.GOMAXPROCS(0)
	const minSeqsPerWorker = 2048
	if len(e.seqs) < 2*minSeqsPerWorker || workers < 2 {
		return rewrite(0, len(e.seqs))
	}
	if max := len(e.seqs) / minSeqsPerWorker; workers > max {
		workers = max
	}
	anyShard := make([]bool, workers)
	var wg sync.WaitGroup
	chunk := (len(e.seqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(e.seqs))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			anyShard[w] = rewrite(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, a := range anyShard {
		if a {
			return true
		}
	}
	return false
}

// buildProgramScaled compacts away dictionary entries no surviving
// sequence references (transitively) and assembles the final Program,
// using scale(row) to fold the dequantization scale into each term.
func (e *encoder) buildProgramScaled(m, bits int, scale func(int) float32, stats *Stats) *Program {
	live := make([]bool, len(e.pairs))
	var mark func(s int32)
	mark = func(s int32) {
		if int(s) < e.k {
			return
		}
		j := int(s) - e.k
		if live[j] {
			return
		}
		live[j] = true
		mark(e.pairs[j].A)
		mark(e.pairs[j].B)
	}
	for _, s := range e.seqs {
		for _, sym := range s.syms {
			mark(sym)
		}
	}
	// Renumber live entries, preserving creation (dependency) order.
	remap := make([]int32, len(e.pairs))
	prog := &Program{K: e.k, M: m, Bits: bits, Config: e.cfg}
	for j, isLive := range live {
		if !isLive {
			remap[j] = -1
			stats.DeadPruned++
			continue
		}
		remap[j] = int32(e.k + len(prog.Pairs))
		p := e.pairs[j]
		prog.Pairs = append(prog.Pairs, Pair{A: remapSym(p.A, e.k, remap), B: remapSym(p.B, e.k, remap)})
		prog.Depth = append(prog.Depth, e.depth[j])
	}
	prog.Rows = make([]Row, m)
	for _, s := range e.seqs {
		syms := make([]int32, len(s.syms))
		for i, sym := range s.syms {
			syms[i] = remapSym(sym, e.k, remap)
		}
		prog.Rows[s.row].Terms = append(prog.Rows[s.row].Terms, Term{
			Code:  s.code,
			Value: float32(s.code) * scale(s.row),
			Syms:  syms,
		})
	}
	return prog
}

func remapSym(s int32, k int, remap []int32) int32 {
	if int(s) < k {
		return s
	}
	return remap[int(s)-k]
}
