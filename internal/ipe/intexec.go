package ipe

import (
	"fmt"
	"math"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Integer inference path: activations are quantized to b-bit codes, the
// whole program evaluates in integer arithmetic (exactly — see
// ExecuteInt), and the result is requantized with the product of the
// activation and per-row weight scales. This is how a fixed-point
// accelerator would run the encoded stream; the float path exists for
// verification and CPU deployment.

// rowScale recovers the weight scale of row r from its first term
// (Value = Scale·Code, so Scale = Value/Code). Rows with no terms have an
// arbitrary scale; they always produce zero.
func (p *Program) rowScale(r int) float32 {
	for _, t := range p.Rows[r].Terms {
		if t.Code != 0 {
			return t.Value / float32(t.Code)
		}
	}
	return 0
}

// QuantizeActivations converts a float activation slice to integer codes
// under the given params (symmetric: zero point 0), clamping to the int8
// range when bits <= 8.
func QuantizeActivations(x []float32, params quant.Params, bits int) []int32 {
	qmax := int32(1<<(bits-1)) - 1
	if qmax == 0 {
		qmax = 1
	}
	inv := float64(0)
	if params.Scale != 0 {
		inv = 1 / float64(params.Scale)
	}
	codes := make([]int32, len(x))
	for i, v := range x {
		c := int32(math.RoundToEven(float64(v) * inv))
		if c > qmax {
			c = qmax
		}
		if c < -qmax {
			c = -qmax
		}
		codes[i] = c
	}
	return codes
}

// ExecuteQuantized runs the full integer path on one input vector: x is
// quantized with xParams at xBits, evaluated exactly in int64, and
// requantized into y. The result approximates the float path within the
// activation quantization error.
func (p *Program) ExecuteQuantized(x []float32, y []float32, xParams quant.Params, xBits int) {
	if len(x) < p.K || len(y) < p.M {
		panic(fmt.Sprintf("ipe: ExecuteQuantized buffers too small (|x|=%d K=%d |y|=%d M=%d)",
			len(x), p.K, len(y), p.M))
	}
	codes := QuantizeActivations(x[:p.K], xParams, xBits)
	acc := make([]int64, p.M)
	p.Compiled().ExecuteInt(codes, acc)
	for r := 0; r < p.M; r++ {
		y[r] = float32(acc[r]) * xParams.Scale * p.rowScale(r)
	}
}

// ForwardInt8 runs the encoded convolution with 8-bit integer activations:
// activations are quantized per layer with xParams, all arithmetic is
// integer, and outputs are requantized to float. Bias (kept float, as
// accelerators do with 32-bit bias registers) is added after
// requantization.
func (l *ConvLayer) ForwardInt8(in *tensor.Tensor, xParams quant.Params) *tensor.Tensor {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	ocg := spec.OutC / spec.Groups
	out := tensor.New(n, spec.OutC, oh, ow)
	od := out.Data()
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			prog := l.Programs[g]
			cp := prog.Compiled()
			col := tensor.Im2colGroup(in, b, g, spec)
			p := col.Dim(1)
			cd := col.Data()
			// Quantize the whole column matrix once; the integer
			// scratchpad is hoisted out of the per-column loop, and row
			// scales are precomputed instead of re-derived per output.
			codes := QuantizeActivations(cd, xParams, 8)
			scales := prog.RowScales()
			xCol := make([]int32, laneCount*prog.K)
			acc := make([]int64, laneCount*prog.M)
			lanes := make([]int64, laneCount*cp.ScratchLen())
			emit := func(c int, acc []int64) {
				for oc := 0; oc < ocg; oc++ {
					v := float32(acc[oc]) * xParams.Scale * scales[oc]
					if l.Bias != nil {
						v += l.Bias.Data()[g*ocg+oc]
					}
					od[((b*spec.OutC+g*ocg+oc)*oh)*ow+c] = v
				}
			}
			c := 0
			// Four im2col columns per stream sweep (exact integer
			// arithmetic, identical to the per-column walk below).
			for ; c+laneCount <= p; c += laneCount {
				for i := 0; i < prog.K; i++ {
					o := i * p
					xCol[i] = codes[o+c]
					xCol[prog.K+i] = codes[o+c+1]
					xCol[2*prog.K+i] = codes[o+c+2]
					xCol[3*prog.K+i] = codes[o+c+3]
				}
				cp.ExecuteIntScratch4(
					xCol[:prog.K], xCol[prog.K:2*prog.K], xCol[2*prog.K:3*prog.K], xCol[3*prog.K:],
					acc[:prog.M], acc[prog.M:2*prog.M], acc[2*prog.M:3*prog.M], acc[3*prog.M:],
					lanes)
				for lane := 0; lane < laneCount; lane++ {
					emit(c+lane, acc[lane*prog.M:(lane+1)*prog.M])
				}
			}
			for ; c < p; c++ {
				for i := 0; i < prog.K; i++ {
					xCol[i] = codes[i*p+c]
				}
				cp.ExecuteIntScratch(xCol[:prog.K], acc[:prog.M], lanes[:cp.ScratchLen()])
				emit(c, acc[:prog.M])
			}
		}
	}
	return out
}

// ForwardInt8 runs the encoded dense layer with 8-bit integer activations,
// mirroring ConvLayer.ForwardInt8.
func (l *DenseLayer) ForwardInt8(in *tensor.Tensor, xParams quant.Params) *tensor.Tensor {
	n, k := in.Dim(0), in.Dim(1)
	if k != l.Program.K {
		panic(fmt.Sprintf("ipe: DenseLayer input width %d != K %d", k, l.Program.K))
	}
	out := tensor.New(n, l.Program.M)
	for b := 0; b < n; b++ {
		l.Program.ExecuteQuantized(in.Data()[b*k:(b+1)*k],
			out.Data()[b*l.Program.M:(b+1)*l.Program.M], xParams, 8)
	}
	if l.Bias != nil {
		bd := l.Bias.Data()
		od := out.Data()
		for b := 0; b < n; b++ {
			for i := 0; i < l.Program.M; i++ {
				od[b*l.Program.M+i] += bd[i]
			}
		}
	}
	return out
}

// rowCodeSum returns Σ codes of row r — the zero-point correction factor
// of asymmetric activation quantization: Σ w·(q−z) = Σ w·q − z·Σ w, with
// the code-domain weight sum precomputable offline.
func (p *Program) rowCodeSum(r int) int64 {
	var sum int64
	for _, t := range p.Rows[r].Terms {
		var n int64
		for _, s := range t.Syms {
			n += int64(len(p.ExpandSymbol(s)))
		}
		sum += int64(t.Code) * n
	}
	return sum
}

// RowCodeSums precomputes every row's zero-point correction (offline,
// once per program).
func (p *Program) RowCodeSums() []int64 {
	sums := make([]int64, p.M)
	for r := range sums {
		sums[r] = p.rowCodeSum(r)
	}
	return sums
}

// ExecuteQuantizedAsym runs the integer path with *asymmetric* activation
// codes: x is quantized to unsigned bits-wide codes with a zero point, the
// program evaluates the raw codes exactly, and each row subtracts its
// precomputed zero-point correction before requantization. rowSums must
// come from RowCodeSums.
func (p *Program) ExecuteQuantizedAsym(x, y []float32, xParams quant.Params, xBits int, rowSums []int64) {
	if len(x) < p.K || len(y) < p.M || len(rowSums) < p.M {
		panic("ipe: ExecuteQuantizedAsym buffers too small")
	}
	codes := quant.QuantizeAsym(x[:p.K], xParams, xBits)
	acc := make([]int64, p.M)
	p.Compiled().ExecuteInt(codes, acc)
	z := int64(xParams.ZeroPoint)
	for r := 0; r < p.M; r++ {
		y[r] = float32(acc[r]-z*rowSums[r]) * xParams.Scale * p.rowScale(r)
	}
}
