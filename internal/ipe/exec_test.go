package ipe

import (
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// denseRef computes y = W_deq · x with float64 accumulation as the oracle.
func denseRef(q *quant.Quantized, x []float32) []float32 {
	deq := q.Dequantize()
	m := q.Shape[0]
	k := q.NumElements() / m
	y := make([]float32, m)
	for r := 0; r < m; r++ {
		var acc float64
		for i := 0; i < k; i++ {
			acc += float64(deq.Data()[r*k+i]) * float64(x[i])
		}
		y[r] = float32(acc)
	}
	return y
}

func TestExecuteMatchesDenseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 16, 48, 1+r.Intn(6), float64(r.Intn(2))*0.5)
		prog, _, err := Encode(q, Config{MaxDict: 256, MaxDepth: 8, TileSize: 16})
		if err != nil {
			return false
		}
		k := q.NumElements() / q.Shape[0]
		x := make([]float32, k)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		y := make([]float32, q.Shape[0])
		prog.Execute(x, y)
		want := denseRef(q, x)
		for i := range y {
			d := float64(y[i] - want[i])
			if d < 0 {
				d = -d
			}
			if d > 1e-3+1e-3*abs64(float64(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestExecuteIntBitExactProperty(t *testing.T) {
	// The integer path must agree exactly with a direct integer dot
	// product of the quantized codes.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 16, 48, 1+r.Intn(6), 0)
		cfg := Config{MaxDict: r.Intn(2) * 128, MaxDepth: r.Intn(3) * 4}
		prog, _, err := Encode(q, cfg)
		if err != nil {
			return false
		}
		m := q.Shape[0]
		k := q.NumElements() / m
		x := make([]int32, k)
		for i := range x {
			x[i] = int32(r.Intn(255)) - 127
		}
		y := make([]int64, m)
		prog.ExecuteInt(x, y)
		for row := 0; row < m; row++ {
			var want int64
			for i := 0; i < k; i++ {
				want += int64(q.Codes[row*k+i]) * int64(x[i])
			}
			if y[row] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteMatrixMatchesVectorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 12, 32, 3, 0)
		prog, _, err := Encode(q, Config{})
		if err != nil {
			return false
		}
		k := q.NumElements() / q.Shape[0]
		p := 1 + r.Intn(200) // cross the colBlock boundary sometimes
		cols := tensor.New(k, p)
		tensor.FillGaussian(cols, r, 1)
		got := prog.ExecuteMatrix(cols)
		x := make([]float32, k)
		y := make([]float32, q.Shape[0])
		for c := 0; c < p; c++ {
			for i := 0; i < k; i++ {
				x[i] = cols.At(i, c)
			}
			prog.Execute(x, y)
			for row := range y {
				d := float64(got.At(row, c) - y[row])
				if d < 0 {
					d = -d
				}
				if d > 1e-4+1e-4*abs64(float64(y[row])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutePanicsOnShortBuffers(t *testing.T) {
	q := qm([]int32{1, 1}, 1, 2)
	prog, _, _ := Encode(q, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short input")
		}
	}()
	prog.Execute([]float32{1}, []float32{0})
}

func TestExecuteKnownValues(t *testing.T) {
	// W = [[2, 2, 0], [0, 2, 2]] (codes, scale 1), x = [1, 10, 100].
	q := qm([]int32{2, 2, 0, 0, 2, 2}, 2, 3)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float32, 2)
	prog.Execute([]float32{1, 10, 100}, y)
	if y[0] != 22 || y[1] != 220 {
		t.Fatalf("Execute = %v, want [22 220]", y)
	}
}

func TestConvLayerMatchesReferenceConv(t *testing.T) {
	r := tensor.NewRNG(20)
	spec := tensor.ConvSpec{InC: 4, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, r, 0.1)
	layer, st, err := EncodeConv(w, bias, spec, 4, quant.PerChannel, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.InputSymbols == 0 {
		t.Fatal("encoder saw no symbols")
	}
	in := tensor.New(2, spec.InC, 8, 8)
	tensor.FillGaussian(in, r, 1)
	got := layer.Forward(in)
	want := tensor.Conv2D(in, layer.Quant.Dequantize(), bias, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("encoded conv diverges from reference: max diff %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvLayerGroupedMatchesReference(t *testing.T) {
	r := tensor.NewRNG(21)
	spec := tensor.ConvSpec{InC: 6, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 3}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	layer, _, err := EncodeConv(w, nil, spec, 4, quant.PerTensor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, spec.InC, 6, 6)
	tensor.FillGaussian(in, r, 1)
	got := layer.Forward(in)
	want := tensor.Conv2D(in, layer.Quant.Dequantize(), nil, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("grouped encoded conv diverges: max diff %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvLayerCostScalesWithPixels(t *testing.T) {
	r := tensor.NewRNG(22)
	spec := tensor.ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	layer, _, err := EncodeConv(w, nil, spec, 4, quant.PerTensor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c8 := layer.Cost(1, 8, 8)
	c16 := layer.Cost(1, 16, 16)
	if c16.Total() != 4*c8.Total() {
		t.Fatalf("cost should scale with output pixels: %d vs 4×%d", c16.Total(), c8.Total())
	}
}

func TestDenseLayerMatchesReference(t *testing.T) {
	r := tensor.NewRNG(23)
	w := tensor.New(10, 32)
	tensor.FillGaussian(w, r, 0.2)
	bias := tensor.New(10)
	tensor.FillGaussian(bias, r, 0.1)
	layer, _, err := EncodeDense(w, bias, 4, quant.PerChannel, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 32)
	tensor.FillGaussian(in, r, 1)
	got := layer.Forward(in)
	want := tensor.Dense(in, layer.Quant.Dequantize(), bias)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("encoded dense diverges: max diff %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestEncodeConvRejectsWrongWeightShape(t *testing.T) {
	spec := tensor.ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	w := tensor.New(4, 3, 2, 2) // wrong kernel dims
	if _, _, err := EncodeConv(w, nil, spec, 4, quant.PerTensor, Config{}); err == nil {
		t.Fatal("wrong weight shape must be rejected")
	}
}
