package ipe

import (
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// qm builds a Quantized directly from explicit codes for precise test cases.
func qm(codes []int32, m, k int) *quant.Quantized {
	return &quant.Quantized{
		Codes:  codes,
		Shape:  tensor.Shape{m, k},
		Bits:   8,
		Scheme: quant.PerTensor,
		Params: []quant.Params{{Scale: 1}},
	}
}

// randQuant builds a random quantized matrix with controllable size range.
func randQuant(r *tensor.RNG, maxM, maxK int, bits int, sparsity float64) *quant.Quantized {
	m, k := 1+r.Intn(maxM), 2+r.Intn(maxK-1)
	w := tensor.New(m, k)
	tensor.FillGaussian(w, r, 1)
	if sparsity > 0 {
		quant.PruneMagnitude(w, sparsity)
	}
	return quant.Quantize(w, bits, quant.PerTensor)
}

func TestEncodeEmptyDictForNoRepeats(t *testing.T) {
	// Two rows with disjoint single values: no pair repeats, no merging.
	q := qm([]int32{
		1, 0, 0, 0,
		0, 0, 2, 0,
	}, 2, 4)
	prog, st, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() != 0 {
		t.Fatalf("expected empty dictionary, got %d entries", prog.DictSize())
	}
	if st.Merges != 0 {
		t.Fatalf("expected 0 merges, got %d", st.Merges)
	}
}

func TestEncodeMergesSharedPair(t *testing.T) {
	// Rows 0 and 1 both contain value 1 at indices {0, 1}: the pair (0,1)
	// repeats and must be merged into one dictionary entry.
	q := qm([]int32{
		1, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, 0,
	}, 3, 4)
	prog, st, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() != 1 {
		t.Fatalf("expected 1 dictionary entry, got %d", prog.DictSize())
	}
	if prog.Pairs[0].A != 0 || prog.Pairs[0].B != 1 {
		t.Fatalf("expected pair (0,1), got %+v", prog.Pairs[0])
	}
	// Both rows should now emit the single merged symbol.
	for r := 0; r < 2; r++ {
		if len(prog.Rows[r].Terms) != 1 || len(prog.Rows[r].Terms[0].Syms) != 1 {
			t.Fatalf("row %d should emit exactly one merged symbol: %+v", r, prog.Rows[r])
		}
		if prog.Rows[r].Terms[0].Syms[0] != int32(prog.K) {
			t.Fatalf("row %d should reference dict symbol %d", r, prog.K)
		}
	}
	if st.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio %v should exceed 1", st.CompressionRatio())
	}
	if prog.Rows[2].Terms != nil {
		t.Fatal("all-zero row must have no terms")
	}
}

func TestEncodeCrossValueSharing(t *testing.T) {
	// The same index pair appearing under *different* values must still be
	// shared: value grouping separates coefficients, but the partial sum
	// x[2]+x[3] is value-agnostic.
	q := qm([]int32{
		0, 0, 3, 3,
		0, 0, 5, 5,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() != 1 {
		t.Fatalf("pair (2,3) shared across values should give 1 entry, got %d", prog.DictSize())
	}
}

func TestEncodeRespectsMaxDict(t *testing.T) {
	r := tensor.NewRNG(7)
	q := randQuant(r, 32, 64, 3, 0)
	for _, d := range []int{1, 2, 8, 64} {
		prog, _, err := Encode(q, Config{MaxDict: d})
		if err != nil {
			t.Fatal(err)
		}
		if prog.DictSize() > d {
			t.Fatalf("MaxDict=%d violated: dict has %d entries", d, prog.DictSize())
		}
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEncodeRespectsMaxDepth(t *testing.T) {
	r := tensor.NewRNG(8)
	q := randQuant(r, 32, 64, 2, 0)
	for _, l := range []int{1, 2, 4} {
		prog, _, err := Encode(q, Config{MaxDepth: l})
		if err != nil {
			t.Fatal(err)
		}
		if got := prog.MaxDepthUsed(); got > l {
			t.Fatalf("MaxDepth=%d violated: got depth %d", l, got)
		}
	}
}

func TestEncodeTileLocality(t *testing.T) {
	r := tensor.NewRNG(9)
	q := randQuant(r, 24, 96, 2, 0)
	const tile = 16
	prog, _, err := Encode(q, Config{TileSize: tile})
	if err != nil {
		t.Fatal(err)
	}
	// Every dictionary entry must expand to raw indices within one tile.
	for j := range prog.Pairs {
		raws := prog.ExpandSymbol(int32(prog.K + j))
		t0 := raws[0] / tile
		for _, ri := range raws {
			if ri/tile != t0 {
				t.Fatalf("dict entry %d spans tiles %d and %d", j, t0, ri/tile)
			}
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		bits := 1 + r.Intn(5)
		sparsity := float64(r.Intn(3)) * 0.3
		q := randQuant(r, 16, 48, bits, sparsity)
		cfg := Config{
			MaxDict:  r.Intn(3) * 50,
			MaxDepth: r.Intn(3) * 4,
			TileSize: r.Intn(2) * 8,
		}
		if r.Intn(2) == 1 {
			cfg.Policy = PolicyGreedy
		}
		prog, _, err := Encode(q, cfg)
		if err != nil {
			return false
		}
		if err := prog.Validate(); err != nil {
			return false
		}
		return prog.VerifyAgainst(q) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMonotoneCostProperty(t *testing.T) {
	// Encoding must never need more scalar ops than the factorized
	// (no-merging) form it starts from.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 16, 48, 2+r.Intn(3), 0)
		prog, _, err := Encode(q, Config{})
		if err != nil {
			return false
		}
		m := q.Shape[0]
		k := q.NumElements() / m
		nnz := make([]int, m)
		terms := make([]int, m)
		for row := 0; row < m; row++ {
			vals := map[int32]bool{}
			for i := 0; i < k; i++ {
				if c := q.Codes[row*k+i]; c != 0 {
					nnz[row]++
					vals[c] = true
				}
			}
			terms[row] = len(vals)
		}
		return prog.Cost().Total() <= FactorizedCost(nnz, terms).Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyAndLayeredBothRoundTrip(t *testing.T) {
	r := tensor.NewRNG(10)
	q := randQuant(r, 12, 32, 2, 0)
	for _, pol := range []Policy{PolicyLayered, PolicyGreedy} {
		prog, _, err := Encode(q, Config{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if err := prog.VerifyAgainst(q); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestGreedyNotWorseThanLayeredOnSmallCase(t *testing.T) {
	// Exact greedy picks the globally most frequent pair each step; on a
	// crafted case it should compress at least as well as one layered
	// round would.
	q := qm([]int32{
		1, 1, 1, 1,
		1, 1, 1, 1,
		1, 1, 1, 1,
	}, 3, 4)
	pg, _, _ := Encode(q, Config{Policy: PolicyGreedy})
	pl, _, _ := Encode(q, Config{Policy: PolicyLayered})
	if pg.Cost().Total() > pl.Cost().Total()+1 {
		t.Fatalf("greedy cost %d much worse than layered %d", pg.Cost().Total(), pl.Cost().Total())
	}
}

func TestEncodeRejectsBadConfig(t *testing.T) {
	q := qm([]int32{1, 1}, 1, 2)
	if _, _, err := Encode(q, Config{MaxDict: -1}); err == nil {
		t.Fatal("negative MaxDict must be rejected")
	}
	if _, _, err := Encode(q, Config{Policy: Policy(9)}); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
}

func TestEncodeRejectsScalarShape(t *testing.T) {
	q := &quant.Quantized{Codes: []int32{1}, Shape: tensor.Shape{1}, Bits: 8,
		Scheme: quant.PerTensor, Params: []quant.Params{{Scale: 1}}}
	if _, _, err := Encode(q, Config{}); err == nil {
		t.Fatal("rank-1 weight must be rejected")
	}
}

func TestStatsCompressionRatio(t *testing.T) {
	s := Stats{InputSymbols: 100, OutputSymbols: 25}
	if s.CompressionRatio() != 4 {
		t.Fatalf("ratio = %v, want 4", s.CompressionRatio())
	}
	if (Stats{}).CompressionRatio() != 1 {
		t.Fatal("empty stats ratio should be 1")
	}
}

func TestDeadEntryPruning(t *testing.T) {
	// With a layered pass, a pair counted twice can end up replaced once
	// or zero times because of overlap; any dictionary entry that ends up
	// unreferenced must be pruned. We check the global invariant: every
	// dictionary entry is referenced by some row or some later pair.
	r := tensor.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		q := randQuant(r, 16, 40, 2, 0)
		prog, _, err := Encode(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		refd := make([]bool, prog.DictSize())
		for _, row := range prog.Rows {
			for _, term := range row.Terms {
				for _, s := range term.Syms {
					if int(s) >= prog.K {
						refd[int(s)-prog.K] = true
					}
				}
			}
		}
		// Walk backward: an entry referenced by a live later entry is live.
		for j := prog.DictSize() - 1; j >= 0; j-- {
			if !refd[j] {
				continue
			}
			for _, op := range []int32{prog.Pairs[j].A, prog.Pairs[j].B} {
				if int(op) >= prog.K {
					refd[int(op)-prog.K] = true
				}
			}
		}
		for j, ok := range refd {
			if !ok {
				t.Fatalf("trial %d: dictionary entry %d is dead but survived pruning", trial, j)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLayered.String() != "layered" || PolicyGreedy.String() != "greedy" {
		t.Fatal("policy names wrong")
	}
}

// quantize4 quantizes a tensor at the main 4-bit operating point.
func quantize4(w *tensor.Tensor) *quant.Quantized {
	return quant.Quantize(w, 4, quant.PerTensor)
}
