package ipe

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// FuzzUnmarshalBinary feeds arbitrary bytes to the wire-format parser: it
// must either return an error or produce a structurally valid program —
// never panic, never accept garbage that later crashes the executor.
func FuzzUnmarshalBinary(f *testing.F) {
	// Seed with a real serialized program and a few mutations.
	r := tensor.NewRNG(1)
	q := randQuant(r, 8, 24, 4, 0)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x45, 0x50, 0x49})

	f.Fuzz(func(t *testing.T, b []byte) {
		var p Program
		if err := p.UnmarshalBinary(b); err != nil {
			return
		}
		// Accepted programs must be safe to run.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
		if p.K > 1<<16 || p.M > 1<<16 {
			return // avoid pathological allocations in the fuzz loop
		}
		x := make([]float32, p.K)
		y := make([]float32, p.M)
		p.Execute(x, y)
	})
}

// FuzzEncodeRoundTrip drives the encoder with fuzzer-chosen shapes, bit
// widths and constraints: every encode must decode back to the exact code
// matrix and satisfy its own bounds.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(2), uint8(8), uint8(3), uint8(16))
	f.Fuzz(func(t *testing.T, seed uint64, bits, dict, depth, tile uint8) {
		b := int(bits%8) + 1
		r := tensor.NewRNG(seed)
		m := 1 + r.Intn(12)
		k := 2 + r.Intn(40)
		w := tensor.New(m, k)
		tensor.FillGaussian(w, r, 1)
		q := quant.Quantize(w, b, quant.PerTensor)
		cfg := Config{MaxDict: int(dict), MaxDepth: int(depth), TileSize: int(tile)}
		prog, _, err := Encode(q, cfg)
		if err != nil {
			t.Fatalf("encode rejected valid input: %v", err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := prog.VerifyAgainst(q); err != nil {
			t.Fatal(err)
		}
		// Serialization round trip under fuzzed configs too.
		data, err := prog.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Program
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	})
}
