package ipe

import (
	"repro/internal/tensor"
)

// Register-blocked block executor for the compiled matrix path.
//
// Three changes over the PR-4 emit (see executeMatrixCols for the
// baseline's structure, which emitWide keeps):
//
//   - Block-local slabs are strided by the *actual* block width bw instead
//     of the fixed colBlock. Full blocks are identical, but a narrow final
//     block — and the whole execution for layers with few output pixels,
//     e.g. late SqueezeNet fire modules at 2x2 — shrinks its block scratch
//     by colBlock/bw and stops wasting 15/16 of every cache line: at bw=4
//     a K=512 layer's block scratch drops from ~256 KiB strided to ~16 KiB
//     contiguous, L1-resident.
//
//   - Narrow blocks (bw < emitWideCutoff) flip the emit nest: each
//     destination row walks its terms once per 4-wide column chunk with
//     the chunk accumulators and the term group sums held in locals —
//     straight-line unrolled Go over fixed-size sub-slices so the compiler
//     keeps them in registers. The destination is written once per chunk
//     and each symbol slab costs one bounds check and four loads, so the
//     emit does ~1 memory op per multiply-add. bw==4 blocks (one chunk)
//     additionally specialize the gather and pair stream.
//
//   - Wide blocks keep the baseline's fused slab passes (per-term decode
//     amortizes over >=32 columns there, and the streaming passes beat
//     register chunking once the block no longer fits in registers), with
//     two refinements: a row's first term *writes* its pass (0 + value *
//     group, folding away the zeroing pass over the destination), and
//     consecutive short terms fuse into a single pass when their combined
//     symbol count allows, halving destination traffic on encodings
//     dominated by 1-2 symbol terms.
//
// Per element every variant performs the identical addition chain in the
// identical order as the interpreter: the accumulator starts at 0 and adds
// value*group term by term, and each group sum starts as 0+firstSym and
// adds the remaining symbol slabs in stream order. Only the interleaving
// across a block's independent columns changes, which cannot affect any
// element's result — the conformance sweep enforces bit-identity against
// the interpreter across its full seed matrix.

// emitWideCutoff is the block width at or above which the fused-slab-pass
// emit beats the register-chunked emit (measured on the BENCH_3 shapes:
// streaming passes win once a term's decode is amortized over >=32
// columns).
const emitWideCutoff = 32

func (c *Compiled) executeMatrixColsBlocked(dst, cols []float32, pTotal, lo, hi int, s *tensor.Scratch) {
	mark := s.Mark()
	scratch := s.Take(c.ScratchLen() * colBlock)
	group := s.Take(colBlock)
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	K := c.K
	for c0 := lo; c0 < hi; c0 += colBlock {
		bw := min(colBlock, hi-c0)
		if bw == 4 {
			c.executeBlock4(dst, cols, scratch, pTotal, c0)
			continue
		}
		// Gather the raw input rows the emit stream re-reads into bw-strided
		// contiguous slabs.
		for _, gr := range c.gatherRows {
			i := int(gr)
			copy(scratch[i*bw:i*bw+bw], cols[i*pTotal+c0:i*pTotal+c0+bw])
		}
		// Pair stream: one vector add per entry into its compacted slab. The
		// raw-vs-slab branch per operand is perfectly predictable — every
		// stream position resolves the same way on every block.
		for i := range pd {
			d := scratch[int(pd[i])*bw : int(pd[i])*bw+bw]
			var a, b []float32
			if la := int(pa[i]); la < K {
				o := la*pTotal + c0
				a = cols[o : o+bw : o+bw]
			} else {
				o := la * bw
				a = scratch[o : o+bw : o+bw]
			}
			if lb := int(pb[i]); lb < K {
				o := lb*pTotal + c0
				b = cols[o : o+bw : o+bw]
			} else {
				o := lb * bw
				b = scratch[o : o+bw : o+bw]
			}
			_ = a[len(d)-1]
			_ = b[len(d)-1]
			for k := range d {
				d[k] = a[k] + b[k]
			}
		}
		if bw >= emitWideCutoff {
			c.emitWide(dst, scratch, group, pTotal, c0, bw)
		} else {
			c.emitNarrow(dst, scratch, pTotal, c0, bw)
		}
	}
	s.Release(mark)
}

// executeBlock4 runs one whole 4-column block — gather, pair stream, emit —
// with every slab a fixed 4-float sub-slice and all accumulators in locals.
// This is the serving shape for late SqueezeNet fire modules (2x2 feature
// maps) and the unit the 4-lane tape executors share.
func (c *Compiled) executeBlock4(dst, cols, scratch []float32, pTotal, c0 int) {
	K := c.K
	for _, gr := range c.gatherRows {
		i := int(gr)
		o := i*pTotal + c0
		src := cols[o : o+4 : o+4]
		d := scratch[i*4 : i*4+4 : i*4+4]
		d[0] = src[0]
		d[1] = src[1]
		d[2] = src[2]
		d[3] = src[3]
	}
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	for i := range pd {
		var a, b []float32
		if la := int(pa[i]); la < K {
			o := la*pTotal + c0
			a = cols[o : o+4 : o+4]
		} else {
			o := la * 4
			a = scratch[o : o+4 : o+4]
		}
		if lb := int(pb[i]); lb < K {
			o := lb*pTotal + c0
			b = cols[o : o+4 : o+4]
		} else {
			o := lb * 4
			b = scratch[o : o+4 : o+4]
		}
		o := int(pd[i]) * 4
		d := scratch[o : o+4 : o+4]
		d[0] = a[0] + b[0]
		d[1] = a[1] + b[1]
		d[2] = a[2] + b[2]
		d[3] = a[3] + b[3]
	}
	symStream, termOff, values, rowOff := c.syms, c.termOff, c.values, c.rowOff
	for r := 0; r < c.M; r++ {
		var a0, a1, a2, a3 float32
		for t := rowOff[r]; t < rowOff[r+1]; t++ {
			v := values[t]
			j0, j1 := int(termOff[t]), int(termOff[t+1])
			o := int(symStream[j0]) * 4
			s := scratch[o : o+4 : o+4]
			g0 := 0 + s[0]
			g1 := 0 + s[1]
			g2 := 0 + s[2]
			g3 := 0 + s[3]
			for j := j0 + 1; j < j1; j++ {
				o := int(symStream[j]) * 4
				s := scratch[o : o+4 : o+4]
				g0 += s[0]
				g1 += s[1]
				g2 += s[2]
				g3 += s[3]
			}
			a0 += v * g0
			a1 += v * g1
			a2 += v * g2
			a3 += v * g3
		}
		o := r*pTotal + c0
		out := dst[o : o+4 : o+4]
		out[0] = a0
		out[1] = a1
		out[2] = a2
		out[3] = a3
	}
}

// emitNarrow is the register-chunked emit for narrow blocks (4 < bw <
// emitWideCutoff, plus narrow final blocks of any width): per row, the
// column block is processed in 4-wide chunks (then scalars) with the chunk
// accumulators and per-term group sums in locals.
func (c *Compiled) emitNarrow(dst, scratch []float32, pTotal, c0, bw int) {
	symStream, termOff, values, rowOff := c.syms, c.termOff, c.values, c.rowOff
	for r := 0; r < c.M; r++ {
		out := dst[r*pTotal+c0 : r*pTotal+c0+bw]
		t0, t1 := rowOff[r], rowOff[r+1]
		cc := 0
		for ; cc+4 <= bw; cc += 4 {
			var a0, a1, a2, a3 float32
			for t := t0; t < t1; t++ {
				v := values[t]
				j0, j1 := int(termOff[t]), int(termOff[t+1])
				o := int(symStream[j0])*bw + cc
				s := scratch[o : o+4 : o+4]
				g0 := 0 + s[0]
				g1 := 0 + s[1]
				g2 := 0 + s[2]
				g3 := 0 + s[3]
				for j := j0 + 1; j < j1; j++ {
					o := int(symStream[j])*bw + cc
					s := scratch[o : o+4 : o+4]
					g0 += s[0]
					g1 += s[1]
					g2 += s[2]
					g3 += s[3]
				}
				a0 += v * g0
				a1 += v * g1
				a2 += v * g2
				a3 += v * g3
			}
			o := out[cc : cc+4 : cc+4]
			o[0] = a0
			o[1] = a1
			o[2] = a2
			o[3] = a3
		}
		for ; cc < bw; cc++ {
			var a float32
			for t := t0; t < t1; t++ {
				j0, j1 := int(termOff[t]), int(termOff[t+1])
				g := 0 + scratch[int(symStream[j0])*bw+cc]
				for j := j0 + 1; j < j1; j++ {
					g += scratch[int(symStream[j])*bw+cc]
				}
				a += values[t] * g
			}
			out[cc] = a
		}
	}
}

// slabW returns location l's block-local slab of width bw at stride bw.
func slabW(scratch []float32, l int32, bw int) []float32 {
	o := int(l) * bw
	return scratch[o : o+bw : o+bw]
}

// emitWide is the fused-slab-pass emit for full-width blocks: terms outer,
// columns inner. A row's first pass writes the destination (0 + value *
// group, subsuming the zeroing pass), consecutive terms with small
// combined symbol counts share one fused pass, and terms of four or more
// symbols fold four source slabs per group pass with the value multiply
// merged into the final pass.
func (c *Compiled) emitWide(dst, scratch, group []float32, pTotal, c0, bw int) {
	symStream, termOff, values, rowOff := c.syms, c.termOff, c.values, c.rowOff
	for r := 0; r < c.M; r++ {
		out := dst[r*pTotal+c0 : r*pTotal+c0+bw]
		t0, t1 := rowOff[r], rowOff[r+1]
		if t0 == t1 {
			for i := range out {
				out[i] = 0
			}
			continue
		}
		// First pass: write out = 0 + v*group instead of zeroing then
		// accumulating — the identical expression element for element.
		{
			t := t0
			ts := symStream[termOff[t]:termOff[t+1]]
			v := values[t]
			src0 := slabW(scratch, ts[0], bw)
			switch len(ts) {
			case 1:
				for i, sv := range src0 {
					out[i] = 0 + v*(0+sv)
				}
			case 2:
				s1 := slabW(scratch, ts[1], bw)
				_ = s1[len(src0)-1]
				for i, sv := range src0 {
					out[i] = 0 + v*((0+sv)+s1[i])
				}
			case 3:
				s1 := slabW(scratch, ts[1], bw)
				s2 := slabW(scratch, ts[2], bw)
				_ = s1[len(src0)-1]
				_ = s2[len(src0)-1]
				for i, sv := range src0 {
					out[i] = 0 + v*(((0+sv)+s1[i])+s2[i])
				}
			default:
				for i := range out {
					out[i] = 0
				}
				c.emitGroupTerm(out, scratch, group, ts, v, bw)
			}
		}
		for t := t0 + 1; t < t1; t++ {
			ts := symStream[termOff[t]:termOff[t+1]]
			v := values[t]
			// Fuse a (1,1)- or (2,1)/(1,2)-symbol pair of consecutive terms
			// into one pass: ((out + v1*g1) + v2*g2) element for element,
			// the identical chain with half the destination traffic.
			if n := len(ts); n <= 2 && t+1 < t1 {
				ts2 := symStream[termOff[t+1]:termOff[t+2]]
				if len(ts)+len(ts2) <= 3 {
					v2 := values[t+1]
					s0 := slabW(scratch, ts[0], bw)
					u0 := slabW(scratch, ts2[0], bw)
					_ = u0[len(s0)-1]
					switch {
					case n == 1 && len(ts2) == 1:
						for i, sv := range s0 {
							out[i] = (out[i] + v*(0+sv)) + v2*(0+u0[i])
						}
					case n == 2:
						s1 := slabW(scratch, ts[1], bw)
						_ = s1[len(s0)-1]
						for i, sv := range s0 {
							out[i] = (out[i] + v*((0+sv)+s1[i])) + v2*(0+u0[i])
						}
					default: // n == 1, len(ts2) == 2
						u1 := slabW(scratch, ts2[1], bw)
						_ = u1[len(s0)-1]
						for i, sv := range s0 {
							out[i] = (out[i] + v*(0+sv)) + v2*((0+u0[i])+u1[i])
						}
					}
					t++
					continue
				}
			}
			src0 := slabW(scratch, ts[0], bw)
			switch len(ts) {
			case 1:
				for i, sv := range src0 {
					out[i] += v * (0 + sv)
				}
			case 2:
				s1 := slabW(scratch, ts[1], bw)
				_ = s1[len(src0)-1]
				for i, sv := range src0 {
					out[i] += v * ((0 + sv) + s1[i])
				}
			case 3:
				s1 := slabW(scratch, ts[1], bw)
				s2 := slabW(scratch, ts[2], bw)
				_ = s1[len(src0)-1]
				_ = s2[len(src0)-1]
				for i, sv := range src0 {
					out[i] += v * (((0 + sv) + s1[i]) + s2[i])
				}
			default:
				c.emitGroupTerm(out, scratch, group, ts, v, bw)
			}
		}
	}
}

// emitGroupTerm accumulates one >=4-symbol term into out via the staged
// group buffer, folding four source slabs per pass and merging the value
// multiply into the final pass (the baseline emit's long-term path).
func (c *Compiled) emitGroupTerm(out, scratch, group []float32, ts []int32, v float32, bw int) {
	src0 := slabW(scratch, ts[0], bw)
	g := group[:bw]
	for i, sv := range src0 {
		g[i] = 0 + sv
	}
	rest := ts[1:]
	tail := (len(rest)-1)%4 + 1
	for len(rest) > tail {
		s1 := slabW(scratch, rest[0], bw)
		s2 := slabW(scratch, rest[1], bw)
		s3 := slabW(scratch, rest[2], bw)
		s4 := slabW(scratch, rest[3], bw)
		_ = s1[len(g)-1]
		_ = s2[len(g)-1]
		_ = s3[len(g)-1]
		_ = s4[len(g)-1]
		for i := range g {
			g[i] = (((g[i] + s1[i]) + s2[i]) + s3[i]) + s4[i]
		}
		rest = rest[4:]
	}
	switch tail {
	case 1:
		s1 := slabW(scratch, rest[0], bw)
		_ = s1[len(g)-1]
		for i, gv := range g {
			out[i] += v * (gv + s1[i])
		}
	case 2:
		s1 := slabW(scratch, rest[0], bw)
		s2 := slabW(scratch, rest[1], bw)
		_ = s1[len(g)-1]
		_ = s2[len(g)-1]
		for i, gv := range g {
			out[i] += v * ((gv + s1[i]) + s2[i])
		}
	case 3:
		s1 := slabW(scratch, rest[0], bw)
		s2 := slabW(scratch, rest[1], bw)
		s3 := slabW(scratch, rest[2], bw)
		_ = s1[len(g)-1]
		_ = s2[len(g)-1]
		_ = s3[len(g)-1]
		for i, gv := range g {
			out[i] += v * (((gv + s1[i]) + s2[i]) + s3[i])
		}
	default:
		s1 := slabW(scratch, rest[0], bw)
		s2 := slabW(scratch, rest[1], bw)
		s3 := slabW(scratch, rest[2], bw)
		s4 := slabW(scratch, rest[3], bw)
		_ = s1[len(g)-1]
		_ = s2[len(g)-1]
		_ = s3[len(g)-1]
		_ = s4[len(g)-1]
		for i, gv := range g {
			out[i] += v * ((((gv + s1[i]) + s2[i]) + s3[i]) + s4[i])
		}
	}
}
