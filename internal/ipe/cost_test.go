package ipe

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestDenseCost(t *testing.T) {
	c := DenseCost(10, 100)
	if c.Muls != 1000 || c.Adds != 990 {
		t.Fatalf("DenseCost = %+v", c)
	}
	if c.Total() != 1990 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestSparseCost(t *testing.T) {
	c := SparseCost(123)
	if c.Adds != 123 || c.Muls != 123 {
		t.Fatalf("SparseCost = %+v", c)
	}
}

func TestFactorizedCost(t *testing.T) {
	// One row: 10 nonzeros over 3 values → 10 adds, 3 muls.
	c := FactorizedCost([]int{10}, []int{3})
	if c.Adds != 10 || c.Muls != 3 {
		t.Fatalf("FactorizedCost = %+v", c)
	}
	// Zero rows contribute nothing.
	c = FactorizedCost([]int{0, 5}, []int{0, 1})
	if c.Adds != 5 || c.Muls != 1 {
		t.Fatalf("FactorizedCost with zero row = %+v", c)
	}
}

func TestProgramCostCountsExactly(t *testing.T) {
	// Program from TestEncodeMergesSharedPair: 1 pair, 2 rows each with a
	// single 1-symbol term.
	q := qm([]int32{
		1, 1, 0, 0,
		1, 1, 0, 0,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Cost()
	// 1 add to build the pair, per row: 1 group add (n=1) + 1 mul.
	if c.Adds != 1+2 || c.Muls != 2 {
		t.Fatalf("Cost = %+v, want Adds=3 Muls=2", c)
	}
	if c.DictEntries != 1 || c.StreamSymbols != 2 {
		t.Fatalf("Cost = %+v", c)
	}
	if c.ScratchWords != int64(prog.K+1) {
		t.Fatalf("ScratchWords = %d", c.ScratchWords)
	}
}

func TestSpeedup(t *testing.T) {
	base := Cost{Adds: 50, Muls: 50}
	c := Cost{Adds: 20, Muls: 5}
	if got := c.Speedup(base); got != 4 {
		t.Fatalf("Speedup = %v, want 4", got)
	}
	if (Cost{}).Speedup(base) != 0 {
		t.Fatal("empty cost speedup should be 0")
	}
}

func TestIPECostBeatsDenseOnLowBit(t *testing.T) {
	// At 2-bit quantization a sizeable layer must need far fewer scalar
	// ops than dense — this is the paper's headline effect.
	r := tensor.NewRNG(30)
	q := randQuant(r, 64, 256, 2, 0)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := q.Shape[0]
	k := q.NumElements() / m
	sp := prog.Cost().Speedup(DenseCost(m, k))
	if sp < 1.5 {
		t.Fatalf("2-bit IPE speedup over dense = %v, expected ≥ 1.5", sp)
	}
}

func TestIPEGainShrinksWithBits(t *testing.T) {
	// Value multiplicity drops as bit-width grows, so the advantage over
	// dense must be monotone non-increasing (within noise) from 2 to 8
	// bits on the same weights.
	r := tensor.NewRNG(31)
	w := tensor.New(48, 192)
	tensor.FillGaussian(w, r, 1)
	var prev float64 = 1e18
	for _, bits := range []int{2, 4, 8} {
		q := quant.Quantize(w, bits, quant.PerTensor)
		prog, _, err := Encode(q, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sp := prog.Cost().Speedup(DenseCost(48, 192))
		if sp > prev*1.05 { // small tolerance: dead pruning adds noise
			t.Fatalf("speedup increased with bits: %v then %v", prev, sp)
		}
		prev = sp
	}
}
