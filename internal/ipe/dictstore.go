package ipe

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// DictStore is a content-addressed interner for encoded programs — the
// shared dictionary store of the multi-model serving path. INSPIRE's pair
// dictionaries are per-layer lookup structures, so identical entries recur
// across layers, across models, and across successive versions of the same
// model (a weight hot-swap usually re-encodes most layers to the exact same
// program). Interning collapses those duplicates to one canonical *Program,
// which also shares the lazily memoized Compiled form (emit passes and
// partial-sum slot plan), shrinking the resident bytes per served model.
//
// Two levels of sharing:
//
//   - program level: byte-identical programs (same K/M/Bits/Config, same
//     pair dictionary, same emit rows including values) intern to one
//     canonical Program; callers must treat interned programs as immutable;
//   - dictionary level: programs whose pair dictionaries match but whose
//     emit rows differ (e.g. two dense heads over one shared backbone
//     encoding) alias one Pairs/Depth slice pair.
//
// Sharing is purely structural — a canonical program executes the exact
// instruction stream of every duplicate it replaced, so results stay
// bit-identical to per-model encoding (enforced by conformance's
// shared-dict variant). All methods are safe for concurrent use; a nil
// *DictStore is a valid no-op interner.
type DictStore struct {
	mu       sync.Mutex
	programs map[[32]byte]*Program
	dicts    map[[32]byte]dictEntry

	// Stats fields are atomics so hot-path readers (metrics gauges) never
	// take the map lock.
	lookups        atomic.Int64
	programHits    atomic.Int64
	dictHits       atomic.Int64
	uniquePrograms atomic.Int64
	uniqueBytes    atomic.Int64
	savedBytes     atomic.Int64
}

type dictEntry struct {
	pairs []Pair
	depth []int32
}

// NewDictStore returns an empty shared dictionary store.
func NewDictStore() *DictStore {
	return &DictStore{
		programs: make(map[[32]byte]*Program),
		dicts:    make(map[[32]byte]dictEntry),
	}
}

// DictStats is a point-in-time snapshot of what the store deduplicated.
type DictStats struct {
	// Lookups counts Intern calls; ProgramHits of them returned an
	// existing canonical program and DictHits shared only the pair
	// dictionary (emit rows differed).
	Lookups     int64 `json:"lookups"`
	ProgramHits int64 `json:"program_hits"`
	DictHits    int64 `json:"dict_hits"`
	// UniquePrograms/UniqueBytes measure the canonical set actually
	// resident; SavedBytes estimates the heap the duplicates would have
	// kept alive without interning.
	UniquePrograms int64 `json:"unique_programs"`
	UniqueBytes    int64 `json:"unique_bytes"`
	SavedBytes     int64 `json:"saved_bytes"`
}

// Stats returns a consistent-enough snapshot of the store's counters.
func (s *DictStore) Stats() DictStats {
	if s == nil {
		return DictStats{}
	}
	return DictStats{
		Lookups:        s.lookups.Load(),
		ProgramHits:    s.programHits.Load(),
		DictHits:       s.dictHits.Load(),
		UniquePrograms: s.uniquePrograms.Load(),
		UniqueBytes:    s.uniqueBytes.Load(),
		SavedBytes:     s.savedBytes.Load(),
	}
}

// Len returns the number of canonical programs resident in the store.
func (s *DictStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.programs)
}

// Intern returns the canonical program for p, registering p as canonical if
// its content was not seen before. On a program-level hit the caller must
// drop p and use the returned program (whose Compiled form is shared); on a
// dictionary-level hit p itself is returned with its Pairs/Depth slices
// re-aliased to the canonical dictionary. Interned programs are shared
// across plans and must not be mutated. A nil store interns nothing.
func (s *DictStore) Intern(p *Program) *Program {
	if s == nil || p == nil {
		return p
	}
	s.lookups.Add(1)
	key, ok := programKey(p)
	if !ok {
		// Unhashable programs (outside the wire format's ranges) stay
		// private to their plan; correctness is unaffected.
		return p
	}

	s.mu.Lock()
	if canon, hit := s.programs[key]; hit {
		s.mu.Unlock()
		s.programHits.Add(1)
		s.savedBytes.Add(p.MemoryBytes())
		s.publish()
		return canon
	}
	if len(p.Pairs) > 0 {
		dk := dictKey(p)
		if d, hit := s.dicts[dk]; hit {
			s.dictHits.Add(1)
			s.savedBytes.Add(int64(len(p.Pairs))*pairBytes + int64(len(p.Depth))*4)
			p.Pairs = d.pairs
			p.Depth = d.depth
		} else {
			s.dicts[dk] = dictEntry{pairs: p.Pairs, depth: p.Depth}
		}
	}
	s.programs[key] = p
	s.mu.Unlock()
	s.uniquePrograms.Add(1)
	s.uniqueBytes.Add(p.MemoryBytes())
	s.publish()
	return p
}

// publish pushes the store's counters to the process recorder (nil-safe).
func (s *DictStore) publish() {
	metrics.Get().SetSharedDict(metrics.SharedDictStats{
		Lookups:        s.lookups.Load(),
		ProgramHits:    s.programHits.Load(),
		DictHits:       s.dictHits.Load(),
		UniquePrograms: s.uniquePrograms.Load(),
		UniqueBytes:    s.uniqueBytes.Load(),
		SavedBytes:     s.savedBytes.Load(),
	})
}

// programKey hashes the full program content — wire form (K, M, Bits, pair
// dictionary, emit rows with codes and values) plus the encoder Config,
// which the wire format drops but Validate consults.
func programKey(p *Program) ([32]byte, bool) {
	wire, err := p.MarshalBinary()
	if err != nil {
		return [32]byte{}, false
	}
	h := sha256.New()
	h.Write(wire)
	var cfg [24]byte
	le := binary.LittleEndian
	le.PutUint32(cfg[0:], uint32(p.Config.MaxDict))
	le.PutUint32(cfg[4:], uint32(p.Config.MaxDepth))
	le.PutUint32(cfg[8:], uint32(p.Config.TileSize))
	le.PutUint32(cfg[12:], uint32(p.Config.Policy))
	le.PutUint32(cfg[16:], uint32(p.Config.MinPairCount))
	h.Write(cfg[:])
	var key [32]byte
	h.Sum(key[:0])
	return key, true
}

// dictKey hashes only the pair dictionary and its input width, the unit of
// dictionary-level sharing.
func dictKey(p *Program) [32]byte {
	h := sha256.New()
	var buf [8]byte
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(p.K))
	le.PutUint32(buf[4:], uint32(len(p.Pairs)))
	h.Write(buf[:])
	for _, pr := range p.Pairs {
		le.PutUint32(buf[0:], uint32(pr.A))
		le.PutUint32(buf[4:], uint32(pr.B))
		h.Write(buf[:])
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// Per-element heap cost estimates used by the residency accounting. Slice
// headers and allocator rounding are approximated by flat per-object
// constants; the point is comparability across shared and unshared plans,
// not allocator-exact byte counts.
const (
	pairBytes   = 8  // Pair{A,B int32}
	sliceHeader = 24 // ptr+len+cap
	termFixed   = 4 + 4 + sliceHeader
)

// MemoryBytes estimates the resident heap bytes of the program structure,
// including its compiled form when already lowered. Shared slices are
// counted at every owner — pair it with pointer-identity dedup (see
// runtime.Plan.ResidentBytes) when summing across interned programs.
func (p *Program) MemoryBytes() int64 {
	if p == nil {
		return 0
	}
	size := int64(128) // struct header + fixed fields
	size += int64(len(p.Pairs)) * pairBytes
	size += int64(len(p.Depth)) * 4
	for _, row := range p.Rows {
		size += sliceHeader
		for _, t := range row.Terms {
			size += termFixed + int64(len(t.Syms))*4
		}
	}
	compileMu.RLock()
	c := p.compiled
	compileMu.RUnlock()
	size += c.MemoryBytes()
	return size
}

// MemoryBytes estimates the resident heap bytes of the compiled form.
func (c *Compiled) MemoryBytes() int64 {
	if c == nil {
		return 0
	}
	words := len(c.pairA) + len(c.pairB) + len(c.pairDst) +
		len(c.syms) + len(c.termOff) + len(c.values) + len(c.codes) +
		len(c.rowOff) + len(c.tape) + len(c.gatherRows)
	return int64(words)*4 + 96
}
