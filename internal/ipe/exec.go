package ipe

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Execute evaluates the program on one input vector x of length K, writing
// the M outputs to y. The float path uses the dequantized term values; it
// matches a dense float GEMV on the dequantized weights up to accumulation
// order.
func (p *Program) Execute(x, y []float32) {
	p.ExecuteScratch(x, y, make([]float32, p.NumSymbols()))
}

// ExecuteScratch is Execute with a caller-provided scratch buffer of at
// least NumSymbols() floats, for allocation-free steady-state inference.
func (p *Program) ExecuteScratch(x, y, scratch []float32) {
	metrics.Count(metrics.KernelIPEInterp)
	if len(x) < p.K || len(y) < p.M {
		panic(fmt.Sprintf("ipe: Execute buffers too small (|x|=%d K=%d |y|=%d M=%d)",
			len(x), p.K, len(y), p.M))
	}
	if len(scratch) < p.NumSymbols() {
		panic(fmt.Sprintf("ipe: scratch %d < symbols %d", len(scratch), p.NumSymbols()))
	}
	copy(scratch, x[:p.K])
	p.executeInto(scratch, y)
}

// executeInto assumes vals[:K] already holds the input and uses
// vals[K:] as the dictionary scratch.
func (p *Program) executeInto(vals, y []float32) {
	for j, pr := range p.Pairs {
		vals[p.K+j] = vals[pr.A] + vals[pr.B]
	}
	for r := range p.Rows {
		var acc float32
		for _, t := range p.Rows[r].Terms {
			var g float32
			for _, s := range t.Syms {
				g += vals[s]
			}
			acc += t.Value * g
		}
		y[r] = acc
	}
}

// ExecuteInt evaluates the program exactly in integer arithmetic: x holds
// quantized input codes and y receives the int64 accumulators
// Σ code·Σ x[i]. This is the bit-exact path used by the equivalence
// property tests.
func (p *Program) ExecuteInt(x []int32, y []int64) {
	p.ExecuteIntScratch(x, y, make([]int64, p.NumSymbols()))
}

// ExecuteIntScratch is ExecuteInt with a caller-provided scratch buffer of
// at least NumSymbols() int64 accumulators, for allocation-free fixed-point
// inference. The scratch contents are fully overwritten.
func (p *Program) ExecuteIntScratch(x []int32, y, vals []int64) {
	if len(x) < p.K || len(y) < p.M {
		panic("ipe: ExecuteInt buffers too small")
	}
	if len(vals) < p.NumSymbols() {
		panic(fmt.Sprintf("ipe: int scratch %d < symbols %d", len(vals), p.NumSymbols()))
	}
	for i := 0; i < p.K; i++ {
		vals[i] = int64(x[i])
	}
	for j, pr := range p.Pairs {
		vals[p.K+j] = vals[pr.A] + vals[pr.B]
	}
	for r := range p.Rows {
		var acc int64
		for _, t := range p.Rows[r].Terms {
			var g int64
			for _, s := range t.Syms {
				g += vals[s]
			}
			acc += int64(t.Code) * g
		}
		y[r] = acc
	}
}

// colBlock is the number of input columns processed per scratch refill in
// ExecuteMatrix. It trades scratch size ((K+dict)·colBlock floats) against
// amortization of the instruction stream walk.
const colBlock = 64

// ExecuteMatrix evaluates the program on an input matrix of shape [K, P]
// (e.g. an im2col lowering, one column per output pixel), producing the
// [M, P] result. Columns are processed in blocks so each dictionary partial
// sum is computed once per column with contiguous inner loops.
func (p *Program) ExecuteMatrix(cols *tensor.Tensor) *tensor.Tensor {
	if cols.Shape().Rank() != 2 || cols.Dim(0) != p.K {
		panic(fmt.Sprintf("ipe: ExecuteMatrix wants [K=%d, P] input, got %v", p.K, cols.Shape()))
	}
	pTotal := cols.Dim(1)
	out := tensor.New(p.M, pTotal)
	var s tensor.Scratch
	p.ExecuteMatrixInto(out.Data(), cols.Data(), pTotal, &s)
	return out
}

// ExecuteMatrixInto is ExecuteMatrix over raw row-major buffers: cols holds
// the [K, pTotal] input, dst receives the [M, pTotal] result (every element
// is written). Transient block buffers come from the caller's Scratch, so
// warmed steady-state execution performs no heap allocations. The scratch
// watermark is restored before returning.
func (p *Program) ExecuteMatrixInto(dst, cols []float32, pTotal int, s *tensor.Scratch) {
	metrics.Count(metrics.KernelIPEInterp)
	checkMatrixBuffers("ExecuteMatrixInto", p.K, p.M, len(dst), len(cols), pTotal)
	p.executeMatrixCols(dst, cols, pTotal, 0, pTotal, s)
}

// checkMatrixBuffers panics when dst/cols cannot hold the [M, pTotal] /
// [K, pTotal] matrices the named executor is about to touch. Shared by the
// interpreted and compiled matrix paths so every panic names the function
// actually called.
func checkMatrixBuffers(fn string, k, m, dstLen, colsLen, pTotal int) {
	if colsLen < k*pTotal || dstLen < m*pTotal {
		panic(fmt.Sprintf("ipe: %s buffers too small (|cols|=%d K·P=%d |dst|=%d M·P=%d)",
			fn, colsLen, k*pTotal, dstLen, m*pTotal))
	}
}

// ExecuteMatrixIntoPar is ExecuteMatrixInto sharded over column ranges of
// the input matrix on the given parallelism context, each shard drawing its
// block buffers from its private scratch (one shard runs serially on shard
// 0's scratch). Shard boundaries are colBlock-aligned, so every column
// falls in the same block position and sees the same arithmetic as the
// serial walk — results are bit-identical for any shard count.
func (p *Program) ExecuteMatrixIntoPar(dst, cols []float32, pTotal int, par *tensor.Par) {
	metrics.Count(metrics.KernelIPEInterp)
	checkMatrixBuffers("ExecuteMatrixIntoPar", p.K, p.M, len(dst), len(cols), pTotal)
	if par.Parallel() {
		par.ForBlocks(pTotal, colBlock, func(shard, lo, hi int) {
			p.executeMatrixCols(dst, cols, pTotal, lo, hi, par.Scratch(shard))
		})
		return
	}
	p.executeMatrixCols(dst, cols, pTotal, 0, pTotal, par.Scratch(0))
}

// executeMatrixCols processes input columns [lo, hi) (lo colBlock-aligned)
// of the [K, pTotal] matrix, writing the matching columns of the [M,
// pTotal] destination. The scratch watermark is restored before returning.
func (p *Program) executeMatrixCols(dst, cols []float32, pTotal, lo, hi int, s *tensor.Scratch) {
	cd, od := cols, dst
	nsym := p.NumSymbols()
	mark := s.Mark()
	scratch := s.Take(nsym * colBlock)
	acc := s.Take(colBlock)
	group := s.Take(colBlock)
	for c0 := lo; c0 < hi; c0 += colBlock {
		bw := min(colBlock, hi-c0)
		// Load the raw input rows for this column block.
		for i := 0; i < p.K; i++ {
			copy(scratch[i*colBlock:i*colBlock+bw], cd[i*pTotal+c0:i*pTotal+c0+bw])
		}
		// Build dictionary partial sums, each a vector add over the block.
		for j, pr := range p.Pairs {
			dst := scratch[(p.K+j)*colBlock : (p.K+j)*colBlock+bw]
			a := scratch[int(pr.A)*colBlock : int(pr.A)*colBlock+bw]
			b := scratch[int(pr.B)*colBlock : int(pr.B)*colBlock+bw]
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		}
		// Emit rows.
		for r := range p.Rows {
			for i := range acc[:bw] {
				acc[i] = 0
			}
			for _, t := range p.Rows[r].Terms {
				for i := range group[:bw] {
					group[i] = 0
				}
				for _, s := range t.Syms {
					src := scratch[int(s)*colBlock : int(s)*colBlock+bw]
					for i := range src {
						group[i] += src[i]
					}
				}
				for i := 0; i < bw; i++ {
					acc[i] += t.Value * group[i]
				}
			}
			copy(od[r*pTotal+c0:r*pTotal+c0+bw], acc[:bw])
		}
	}
	s.Release(mark)
}
