package ipe

import (
	"fmt"

	"repro/internal/quant"
)

// EncodeShared jointly encodes several quantized weight matrices with the
// same reduction length K into programs that share one pair dictionary.
// CNNs repeat layer shapes heavily (ResNet-18's 512×512×3×3 appears three
// times), and a shared dictionary means one scratchpad image and one
// decode-table load serves all of them — the cross-layer extension the
// encoder's formulation gets for free, since pair counting simply runs
// over the union of all (row, value) index sets.
//
// The returned programs alias one Pairs/Depth table; program i's Rows are
// exactly matrix i's rows. Every program independently satisfies
// Validate and VerifyAgainst its own input.
func EncodeShared(qs []*quant.Quantized, cfg Config) ([]*Program, Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(qs) == 0 {
		return nil, Stats{}, fmt.Errorf("ipe: EncodeShared needs at least one matrix")
	}
	k := -1
	bits := qs[0].Bits
	for i, q := range qs {
		if q.Shape.Rank() < 2 || q.Shape[0] == 0 || q.NumElements() == 0 {
			return nil, Stats{}, fmt.Errorf("ipe: matrix %d has unusable shape %v", i, q.Shape)
		}
		ki := q.NumElements() / q.Shape[0]
		if k == -1 {
			k = ki
		} else if ki != k {
			return nil, Stats{}, fmt.Errorf("ipe: matrix %d has K=%d, want %d (shared encoding needs equal reduction lengths)", i, ki, k)
		}
		if q.Bits != bits {
			return nil, Stats{}, fmt.Errorf("ipe: matrix %d has %d bits, want %d", i, q.Bits, bits)
		}
	}

	enc := &encoder{cfg: cfg, k: k}
	enc.initTiles()
	stats := Stats{}
	// Row offsets map each matrix's rows into one global row space.
	offsets := make([]int, len(qs)+1)
	for i, q := range qs {
		offsets[i+1] = offsets[i] + q.Shape[0]
		enc.appendSequences(q, offsets[i], &stats)
	}

	switch cfg.Policy {
	case PolicyGreedy:
		enc.runGreedy(&stats)
	default:
		enc.runLayered(&stats)
	}
	stats.Merges = len(enc.pairs)
	for _, s := range enc.seqs {
		stats.OutputSymbols += len(s.syms)
	}

	combined := enc.buildProgramScaled(offsets[len(qs)], bits, func(row int) float32 {
		for i := len(qs) - 1; i >= 0; i-- {
			if row >= offsets[i] {
				return scaleOf(qs[i], row-offsets[i])
			}
		}
		return 1
	}, &stats)

	progs := make([]*Program, len(qs))
	for i := range qs {
		progs[i] = &Program{
			K:      k,
			M:      qs[i].Shape[0],
			Pairs:  combined.Pairs,
			Depth:  combined.Depth,
			Rows:   combined.Rows[offsets[i]:offsets[i+1]],
			Bits:   bits,
			Config: cfg,
		}
	}
	return progs, stats, nil
}

// scaleOf returns the dequantization scale of a matrix row.
func scaleOf(q *quant.Quantized, row int) float32 {
	if q.Scheme == quant.PerChannel && len(q.Params) > row {
		return q.Params[row].Scale
	}
	return q.Params[0].Scale
}
