package ipe

// Cost is the arithmetic and storage footprint of evaluating an encoded
// layer on ONE input vector. The simulated accelerator (internal/accel)
// converts these counts into cycles and energy; Table 2 reports them
// directly.
type Cost struct {
	// Adds is the number of scalar additions: one per dictionary entry
	// (building the partial sums), len(Syms)-1 per term group (plus one to
	// accumulate the term into the row), counted exactly.
	Adds int64
	// Muls is the number of scalar multiplications: one per term.
	Muls int64
	// DictEntries is the number of live pair entries (scratchpad words).
	DictEntries int64
	// StreamSymbols is the total emit-stream length (Σ len(Syms)).
	StreamSymbols int64
	// ScratchWords is the peak scratch requirement in words:
	// K inputs + dictionary entries.
	ScratchWords int64
}

// Total returns Adds+Muls, the scalar op count the evaluation figures use.
func (c Cost) Total() int64 { return c.Adds + c.Muls }

// Cost computes the exact per-input-vector cost of the program.
func (p *Program) Cost() Cost {
	c := Cost{
		DictEntries:  int64(len(p.Pairs)),
		ScratchWords: int64(p.K + len(p.Pairs)),
	}
	c.Adds += int64(len(p.Pairs)) // one add per partial-sum entry
	for _, row := range p.Rows {
		for _, t := range row.Terms {
			n := int64(len(t.Syms))
			c.StreamSymbols += n
			// n-1 adds to sum the group, 1 mul to scale it, 1 add to
			// accumulate it into the row (the first term's accumulate is
			// free, but we count it to keep the model simple and
			// conservative against IPE).
			c.Adds += n // (n-1) group adds + 1 accumulate
			c.Muls++
		}
	}
	return c
}

// DenseCost returns the cost of a dense float GEMV of the same shape:
// M·K multiplies and M·(K-1) adds, with no scratch beyond the input.
func DenseCost(m, k int) Cost {
	return Cost{
		Adds:          int64(m) * int64(k-1),
		Muls:          int64(m) * int64(k),
		StreamSymbols: int64(m) * int64(k),
		ScratchWords:  int64(k),
	}
}

// FactorizedCost returns the cost of value-factorized execution *without*
// pair merging (the UCNN-style baseline): every (row, value) group sums its
// raw indices directly. nnzPerRow[i] is the nonzero count of row i and
// termsPerRow[i] its distinct nonzero value count.
func FactorizedCost(nnzPerRow, termsPerRow []int) Cost {
	var c Cost
	for i := range nnzPerRow {
		n, v := int64(nnzPerRow[i]), int64(termsPerRow[i])
		if n == 0 {
			continue
		}
		// Per value group of size g: g-1 adds + 1 mul + 1 accumulate add.
		// Summed over groups: (n - v) + v adds and v muls.
		c.Adds += n
		c.Muls += v
		c.StreamSymbols += n
	}
	return c
}

// SparseCost returns the cost of CSR sparse execution: one multiply and one
// add per stored nonzero.
func SparseCost(nnz int64) Cost {
	return Cost{Adds: nnz, Muls: nnz, StreamSymbols: nnz}
}

// Speedup returns baseline.Total()/c.Total(), i.e. how many times fewer
// scalar ops c needs than baseline. Returns +Inf-free 0 when c is empty.
func (c Cost) Speedup(baseline Cost) float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(baseline.Total()) / float64(c.Total())
}
