package ipe

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestAllocateScratchValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 16, 48, 1+r.Intn(5), 0)
		prog, _, err := Encode(q, Config{MaxDict: 200, MaxDepth: 8})
		if err != nil {
			return false
		}
		plan := prog.AllocateScratch()
		if !plan.Validate(prog) {
			return false
		}
		return plan.NumSlots <= prog.DictSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteSlotsMatchesExecuteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 12, 40, 4, 0)
		prog, _, err := Encode(q, DefaultConfig())
		if err != nil {
			return false
		}
		plan := prog.AllocateScratch()
		x := make([]float32, prog.K)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		y1 := make([]float32, prog.M)
		y2 := make([]float32, prog.M)
		prog.Execute(x, y1)
		prog.ExecuteSlots(x, y2, plan)
		for i := range y1 {
			if y1[i] != y2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateScratchShrinksWithDeepMerging(t *testing.T) {
	// With deep merging, intermediate pairs die as soon as their parents
	// consume them, so slots must be reused: NumSlots < DictSize.
	r := tensor.NewRNG(9)
	w := tensor.New(48, 256)
	tensor.FillGaussian(w, r, 1)
	q := quantize4(w)
	prog, _, err := Encode(q, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if prog.MaxDepthUsed() < 2 {
		t.Skip("encoding produced no deep entries on this input")
	}
	plan := prog.AllocateScratch()
	if plan.NumSlots >= prog.DictSize() {
		t.Fatalf("no slot reuse: %d slots for %d entries", plan.NumSlots, prog.DictSize())
	}
}

func TestAllocateScratchEmptyDict(t *testing.T) {
	q := qm([]int32{1, 0, 0, 2}, 2, 2)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan := prog.AllocateScratch()
	if plan.NumSlots != 0 || len(plan.Slot) != 0 {
		t.Fatalf("empty dictionary should need no slots: %+v", plan)
	}
	if !plan.Validate(prog) {
		t.Fatal("empty plan should validate")
	}
}

func TestScratchPlanValidateRejectsBadPlan(t *testing.T) {
	q := qm([]int32{
		1, 1, 0, 0,
		1, 1, 1, 1,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() < 2 {
		t.Skip("need at least two entries")
	}
	bad := ScratchPlan{Slot: make([]int32, prog.DictSize()), NumSlots: 1}
	// All entries in slot 0: entries overlapping in time must collide.
	if bad.Validate(prog) {
		t.Fatal("overlapping same-slot plan accepted")
	}
}
