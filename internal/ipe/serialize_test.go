package ipe

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestMarshalRoundTripSmall(t *testing.T) {
	q := qm([]int32{
		1, 1, 0, 2,
		1, 1, 2, 0,
	}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.K != prog.K || back.M != prog.M || back.Bits != prog.Bits {
		t.Fatalf("header mismatch: %+v vs %+v", back, prog)
	}
	if len(back.Pairs) != len(prog.Pairs) {
		t.Fatalf("dict size %d vs %d", len(back.Pairs), len(prog.Pairs))
	}
	if err := back.VerifyAgainst(q); err != nil {
		t.Fatalf("round-tripped program decodes wrong: %v", err)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		q := randQuant(r, 16, 48, 1+r.Intn(6), float64(r.Intn(2))*0.5)
		prog, _, err := Encode(q, Config{MaxDict: 200, MaxDepth: 6, TileSize: 16})
		if err != nil {
			return false
		}
		data, err := prog.MarshalBinary()
		if err != nil {
			return false
		}
		if int64(len(data)) != prog.WireSize() {
			return false
		}
		var back Program
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		// The round-tripped program must execute identically.
		k := prog.K
		x := make([]int32, k)
		for i := range x {
			x[i] = int32(r.Intn(200)) - 100
		}
		y1 := make([]int64, prog.M)
		y2 := make([]int64, prog.M)
		prog.ExecuteInt(x, y1)
		back.ExecuteInt(x, y2)
		for i := range y1 {
			if y1[i] != y2[i] {
				return false
			}
		}
		// Depth is recomputed, not stored: must match.
		for j := range prog.Depth {
			if prog.Depth[j] != back.Depth[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	r := tensor.NewRNG(3)
	q := randQuant(r, 8, 32, 4, 0)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := prog.MarshalBinary()
	b, _ := prog.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("serialization must be deterministic")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	r := tensor.NewRNG(4)
	q := randQuant(r, 8, 32, 4, 0)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":   func(d []byte) []byte { d[0] ^= 0xff; return d },
		"truncated":   func(d []byte) []byte { return d[:len(d)/2] },
		"trailing":    func(d []byte) []byte { return append(d, 0) },
		"bad symW":    func(d []byte) []byte { d[13] = 3; return d },
		"empty":       func(d []byte) []byte { return nil },
		"header only": func(d []byte) []byte { return d[:16] },
	}
	for name, corrupt := range cases {
		d := corrupt(append([]byte(nil), data...))
		var back Program
		if err := back.UnmarshalBinary(d); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestUnmarshalRejectsOutOfOrderPair(t *testing.T) {
	// Build a minimal valid program, then corrupt a pair to reference a
	// future symbol.
	q := qm([]int32{1, 1, 1, 1, 1, 1, 1, 1}, 2, 4)
	prog, _, err := Encode(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.DictSize() == 0 {
		t.Skip("no dictionary to corrupt")
	}
	prog.Pairs[0].A = int32(prog.K) // self/forward reference
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := back.UnmarshalBinary(data); err == nil {
		t.Fatal("forward pair reference accepted")
	}
}

func TestWireSizeSmallerThanDenseAtLowBits(t *testing.T) {
	// The encoded stream must beat dense float32 storage comfortably at 4
	// bits — the Table 5 claim.
	r := tensor.NewRNG(5)
	w := tensor.New(64, 576)
	tensor.FillGaussian(w, r, 0.1)
	q := quantize4(w)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	denseBytes := int64(q.NumElements()) * 4
	if ws := prog.WireSize(); ws >= denseBytes/2 {
		t.Fatalf("wire size %d should be well under half of dense %d", ws, denseBytes)
	}
}
