package ipe

import (
	"fmt"

	"repro/internal/tensor"
)

// Window-restricted forward passes backing the fused-region executor. The
// conv output window of one batch element is evaluated into a compact
// [outC, th, tw] tile: the im2col lowering is restricted to the window's
// columns and the encoded program runs over exactly those columns. The
// compiled matrix executor accumulates each output column independently
// (per-column scratch lanes), so every tile element is bit-identical to the
// corresponding element of a whole-layer ForwardInto — the property the
// conformance harness checks for the tiled path.

// ForwardWindowInto evaluates the conv output window rows [oy0,oy1) × cols
// [ox0,ox1) of batch element b into tile ([outC, oy1-oy0, ox1-ox0]),
// drawing the im2col and program buffers from the caller's Scratch. An
// empty window is a no-op. tile must not come from s (take it before
// calling, or from a different arena).
func (l *ConvLayer) ForwardWindowInto(tile []float32, in *tensor.Tensor, b, oy0, oy1, ox0, ox1 int, s *tensor.Scratch) {
	spec := l.Spec
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	thw := l.checkWindow(tile, in, oy0, oy1, ox0, ox1)
	if thw == 0 {
		return
	}
	mark := s.Mark()
	col := s.Take(icg * spec.KH * spec.KW * thw)
	res := s.Take(ocg * thw)
	for g := 0; g < spec.Groups; g++ {
		tensor.Im2colWindowInto(col, in, b, g, spec, oy0, oy1, ox0, ox1)
		l.Programs[g].Compiled().ExecuteMatrixInto(res, col, thw, s)
		l.addBiasTile(tile, res, g, ocg, thw)
	}
	s.Release(mark)
}

// ForwardWindowIntoPar is ForwardWindowInto with the im2col lowering and
// program execution sharded on the parallelism context; staging buffers
// come from shard 0's scratch, exactly like ForwardIntoPar. Results are
// bit-identical to ForwardWindowInto.
func (l *ConvLayer) ForwardWindowIntoPar(tile []float32, in *tensor.Tensor, b, oy0, oy1, ox0, ox1 int, par *tensor.Par) {
	spec := l.Spec
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	thw := l.checkWindow(tile, in, oy0, oy1, ox0, ox1)
	if thw == 0 {
		return
	}
	s0 := par.Scratch(0)
	mark := s0.Mark()
	col := s0.Take(icg * spec.KH * spec.KW * thw)
	res := s0.Take(ocg * thw)
	for g := 0; g < spec.Groups; g++ {
		tensor.Im2colWindowIntoPar(col, in, b, g, spec, oy0, oy1, ox0, ox1, par)
		l.Programs[g].Compiled().ExecuteMatrixIntoPar(res, col, thw, par)
		l.addBiasTile(tile, res, g, ocg, thw)
	}
	s0.Release(mark)
}

// checkWindow validates the window against the layer and tile buffer and
// returns the window's pixel count (0 when empty).
func (l *ConvLayer) checkWindow(tile []float32, in *tensor.Tensor, oy0, oy1, ox0, ox1 int) int {
	spec := l.Spec
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if oy0 < 0 || oy1 > oh || ox0 < 0 || ox1 > ow {
		panic(fmt.Sprintf("ipe: ForwardWindow [%d,%d)x[%d,%d) outside %dx%d", oy0, oy1, ox0, ox1, oh, ow))
	}
	if oy1 <= oy0 || ox1 <= ox0 {
		return 0
	}
	thw := (oy1 - oy0) * (ox1 - ox0)
	if len(tile) < spec.OutC*thw {
		panic(fmt.Sprintf("ipe: ForwardWindow tile %d < %d", len(tile), spec.OutC*thw))
	}
	return thw
}

// addBiasTile copies group g's [ocg, thw] result block into the tile's
// channel planes, adding the per-channel bias — addBias with the tile's
// single-image layout.
func (l *ConvLayer) addBiasTile(tile, res []float32, g, ocg, thw int) {
	for oc := 0; oc < ocg; oc++ {
		dst := tile[(g*ocg+oc)*thw : (g*ocg+oc+1)*thw]
		src := res[oc*thw : (oc+1)*thw]
		var bv float32
		if l.Bias != nil {
			bv = l.Bias.Data()[g*ocg+oc]
		}
		for i, v := range src {
			dst[i] = v + bv
		}
	}
}
