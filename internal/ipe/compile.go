package ipe

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Compilation of a Program into the form the serving paths execute.
//
// The interpreter walks the pointer-heavy Rows[r].Terms[t].Syms
// slice-of-slices on every input and gives every dictionary entry its own
// scratchpad word, so the working set scales with NumSymbols(). Compiled is
// the one-time lowering of that structure into flat struct-of-arrays
// streams with the scratch.go liveness plan baked in:
//
//   - the pair dictionary becomes three parallel []int32 arrays
//     (source A, source B, destination), each element a *location* in a
//     slot-compacted scratchpad of K + NumSlots words — entries whose
//     lifetimes do not overlap share a slot, so the hot working set is
//     L1/L2-resident even for large dictionaries;
//   - dictionary entries never reached from any emit term are eliminated
//     before slot assignment (DeadPairs counts them); surviving entries
//     keep the encoder's creation order, which clusters related slabs and
//     is what the emit phase's cache locality comes from;
//   - the emit side becomes one CSR structure: a flat syms stream indexed
//     by termOff, per-term values/codes, and rowOff over terms.
//
// Every Compiled executor performs the same floating-point (and integer)
// operations in the same order as its interpreted counterpart, so results
// are bit-identical; the conformance harness enforces that across its full
// seed sweep (see impls.go).

// Compiled is the flat, slot-compacted executable form of a Program.
type Compiled struct {
	// K and M mirror the source program's input and output sizes.
	K, M int
	// NumSlots is the number of scratchpad words beyond the K input words
	// (≤ live dictionary entries; equality means no reuse was possible).
	NumSlots int
	// LivePairs and DeadPairs partition the source dictionary into entries
	// that made it into the pair stream and entries eliminated because no
	// emit term (transitively) reads them.
	LivePairs, DeadPairs int

	// Pair stream: entry i computes scratch[pairDst[i]] =
	// scratch[pairA[i]] + scratch[pairB[i]]. All three are locations in
	// [0, K+NumSlots): raw input i lives at location i, a dictionary entry
	// at K + its slot.
	pairA, pairB, pairDst []int32

	// Emit stream, CSR over rows → terms → symbol locations: row r spans
	// terms rowOff[r]..rowOff[r+1], term t sums the locations
	// syms[termOff[t]:termOff[t+1]] and contributes values[t]·Σ (float
	// path) or codes[t]·Σ (integer path). The matrix executors walk this
	// form: per-term decode cost is amortized over a whole column block.
	syms    []int32
	termOff []int32
	values  []float32
	codes   []int32
	rowOff  []int32

	// tape is the same emit stream flattened for the single-vector
	// executors, where per-term decode is *not* amortized: one []int32
	// walked with one cursor — per row [nTerms], per term [valueBits,
	// code, nSyms, sym locations...]. Keeping a single slice live in the
	// emit loop (instead of the four CSR arrays) is what lets the
	// compiler hold the cursor and accumulators in registers.
	tape []int32

	// gatherRows lists the raw inputs (locations < K) the emit stream
	// reads. Only their column slabs are gathered into block scratch —
	// emit terms re-read slabs, so those must be contiguous — while raw
	// inputs consumed solely by the pair phase are read from cols in
	// place, exactly once.
	gatherRows []int32
}

// ScratchLen returns the scratchpad length (in words) the compiled
// executors need: the K input words plus the compacted slots.
func (c *Compiled) ScratchLen() int { return c.K + c.NumSlots }

// compileMu guards the lazy compiled-form cache on Program. Compilation is
// linear in the program and happens once per program, so a package-wide
// lock (contended only on first use) is cheaper than widening Program with
// a copy-hostile sync type — serialize.go overwrites whole Program values.
var compileMu sync.RWMutex

// Compiled returns the compiled form of the program, lowering it on first
// use and caching the result. The cache is reset whenever the Program
// value is overwritten (UnmarshalBinary builds a fresh value); callers
// that mutate Pairs/Rows in place must not reuse a previously obtained
// Compiled.
func (p *Program) Compiled() *Compiled {
	compileMu.RLock()
	c := p.compiled
	compileMu.RUnlock()
	if c != nil {
		return c
	}
	compileMu.Lock()
	defer compileMu.Unlock()
	if p.compiled == nil {
		p.compiled = compile(p)
	}
	return p.compiled
}

// compile lowers p. It trusts only Pairs/Rows/K/M (Depth is recomputed, so
// hand-built test programs compile too).
func compile(p *Program) *Compiled {
	d := len(p.Pairs)

	// Liveness: an entry is live iff some emit term reaches it, directly
	// or through later live pairs. Backward sweep over the dependency
	// order.
	live := make([]bool, d)
	for _, row := range p.Rows {
		for _, t := range row.Terms {
			for _, s := range t.Syms {
				if int(s) >= p.K {
					live[int(s)-p.K] = true
				}
			}
		}
	}
	mark := func(s int32) {
		if int(s) >= p.K {
			live[int(s)-p.K] = true
		}
	}
	for j := d - 1; j >= 0; j-- {
		if live[j] {
			mark(p.Pairs[j].A)
			mark(p.Pairs[j].B)
		}
	}

	// Schedule: live entries in original (dependency) order. Keeping the
	// encoder's creation order matters for speed: BPE mints related pairs
	// adjacently, and emit terms read creation-adjacent slabs — sorting by
	// expansion depth (tried for adder-tree stage framing) scatters that
	// locality and measurably slows the emit phase.
	order := make([]int, 0, d)
	for j := 0; j < d; j++ {
		if live[j] {
			order = append(order, j)
		}
	}
	nLive := len(order)
	pos := make([]int, d) // original entry → scheduled position
	for i, j := range order {
		pos[j] = i
	}

	// Lifetimes in scheduled order: lastPair[i] is the last pair step that
	// reads entry order[i] (-1 if none); rowRead pins the slot for the
	// whole emit phase.
	lastPair := make([]int, nLive)
	rowRead := make([]bool, nLive)
	for i := range lastPair {
		lastPair[i] = -1
	}
	useAt := func(s int32, step int) {
		if int(s) >= p.K {
			i := pos[int(s)-p.K]
			if step > lastPair[i] {
				lastPair[i] = step
			}
		}
	}
	for i, j := range order {
		useAt(p.Pairs[j].A, i)
		useAt(p.Pairs[j].B, i)
	}
	for _, row := range p.Rows {
		for _, t := range row.Terms {
			for _, s := range t.Syms {
				if int(s) >= p.K {
					rowRead[pos[int(s)-p.K]] = true
				}
			}
		}
	}

	// Linear-scan slot allocation over the scheduled pair stream — the
	// scratch.go discipline: a slot frees one step after its owner's last
	// pair read, entries read by the emit phase never free, and the lowest
	// free slot wins for determinism.
	slotOf := make([]int32, nLive)
	expiring := make(map[int][]int32)
	var free []int32
	var next int32
	for i := range order {
		if dead, ok := expiring[i]; ok {
			free = append(free, dead...)
			sort.Slice(free, func(a, b int) bool { return free[a] < free[b] })
			delete(expiring, i)
		}
		var slot int32
		if len(free) > 0 {
			slot = free[0]
			free = free[1:]
		} else {
			slot = next
			next++
		}
		slotOf[i] = slot
		if !rowRead[i] && lastPair[i] >= 0 {
			expiring[lastPair[i]+1] = append(expiring[lastPair[i]+1], slot)
		}
	}

	c := &Compiled{
		K: p.K, M: p.M,
		NumSlots:  int(next),
		LivePairs: nLive,
		DeadPairs: d - nLive,
	}

	// Location of a symbol in the compacted scratchpad. Safe at any read
	// site: a pair operand's slot cannot be recycled before the reading
	// pair (lastPair ≥ reader's step), and emit-read slots never recycle.
	loc := func(s int32) int32 {
		if int(s) < p.K {
			return s
		}
		return int32(p.K) + slotOf[pos[int(s)-p.K]]
	}

	c.pairA = make([]int32, nLive)
	c.pairB = make([]int32, nLive)
	c.pairDst = make([]int32, nLive)
	for i, j := range order {
		c.pairA[i] = loc(p.Pairs[j].A)
		c.pairB[i] = loc(p.Pairs[j].B)
		c.pairDst[i] = int32(p.K) + slotOf[i]
	}

	var nTerms, nSyms int
	for _, row := range p.Rows {
		nTerms += len(row.Terms)
		for _, t := range row.Terms {
			nSyms += len(t.Syms)
		}
	}
	c.syms = make([]int32, 0, nSyms)
	c.termOff = make([]int32, 1, nTerms+1)
	c.values = make([]float32, 0, nTerms)
	c.codes = make([]int32, 0, nTerms)
	c.rowOff = make([]int32, 1, p.M+1)
	c.tape = make([]int32, 0, p.M+3*nTerms+nSyms)
	for _, row := range p.Rows {
		nt := 0
		for _, t := range row.Terms {
			if len(t.Syms) > 0 {
				nt++
			}
		}
		c.tape = append(c.tape, int32(nt))
		for _, t := range row.Terms {
			// Terms without symbols are rejected by Program.Validate;
			// skipping them here keeps the executors free of empty-group
			// guards even on unvalidated inputs.
			if len(t.Syms) == 0 {
				continue
			}
			c.tape = append(c.tape, int32(math.Float32bits(t.Value)), t.Code, int32(len(t.Syms)))
			for _, s := range t.Syms {
				l := loc(s)
				c.syms = append(c.syms, l)
				c.tape = append(c.tape, l)
			}
			c.termOff = append(c.termOff, int32(len(c.syms)))
			c.values = append(c.values, t.Value)
			c.codes = append(c.codes, t.Code)
		}
		c.rowOff = append(c.rowOff, int32(len(c.values)))
	}
	emitReads := make([]bool, p.K)
	for _, l := range c.syms {
		if int(l) < p.K {
			emitReads[l] = true
		}
	}
	for l, ok := range emitReads {
		if ok {
			c.gatherRows = append(c.gatherRows, int32(l))
		}
	}
	return c
}

// Execute evaluates the compiled program on one input vector, allocating a
// transient scratchpad. Results are bit-identical to Program.Execute.
func (c *Compiled) Execute(x, y []float32) {
	c.ExecuteScratch(x, y, make([]float32, c.ScratchLen()))
}

// ExecuteScratch is Execute with a caller-provided scratchpad of at least
// ScratchLen() floats (NumSlots compacted words past the K inputs, vs the
// interpreter's NumSymbols()).
func (c *Compiled) ExecuteScratch(x, y, scratch []float32) {
	metrics.Count(metrics.KernelIPECompiled)
	if len(x) < c.K || len(y) < c.M {
		panic(fmt.Sprintf("ipe: compiled ExecuteScratch buffers too small (|x|=%d K=%d |y|=%d M=%d)",
			len(x), c.K, len(y), c.M))
	}
	if len(scratch) < c.ScratchLen() {
		panic(fmt.Sprintf("ipe: compiled scratch %d < %d", len(scratch), c.ScratchLen()))
	}
	vals := scratch[:c.ScratchLen()]
	copy(vals, x[:c.K])
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	for i := range pd {
		vals[pd[i]] = vals[pa[i]] + vals[pb[i]]
	}
	tape := c.tape
	i := 0
	for r := 0; r < c.M; r++ {
		nt := tape[i]
		i++
		var acc float32
		for ; nt > 0; nt-- {
			v := math.Float32frombits(uint32(tape[i]))
			ns := int(tape[i+2])
			i += 3
			sub := tape[i : i+ns : i+ns]
			i += ns
			// Four chained adds per iteration: the identical addition
			// sequence with a quarter of the loop control.
			var g float32
			for len(sub) >= 4 {
				g = (((g + vals[sub[0]]) + vals[sub[1]]) + vals[sub[2]]) + vals[sub[3]]
				sub = sub[4:]
			}
			for _, s := range sub {
				g += vals[s]
			}
			acc += v * g
		}
		y[r] = acc
	}
}

// ExecuteInt evaluates the compiled program exactly in integer arithmetic,
// allocating a transient scratchpad. Equal to Program.ExecuteInt (integer
// addition is associative, and the emit order is identical anyway).
func (c *Compiled) ExecuteInt(x []int32, y []int64) {
	c.ExecuteIntScratch(x, y, make([]int64, c.ScratchLen()))
}

// ExecuteIntScratch is ExecuteInt with a caller-provided scratchpad of at
// least ScratchLen() int64 accumulators.
func (c *Compiled) ExecuteIntScratch(x []int32, y, vals []int64) {
	if len(x) < c.K || len(y) < c.M {
		panic("ipe: compiled ExecuteInt buffers too small")
	}
	if len(vals) < c.ScratchLen() {
		panic(fmt.Sprintf("ipe: compiled int scratch %d < %d", len(vals), c.ScratchLen()))
	}
	for i := 0; i < c.K; i++ {
		vals[i] = int64(x[i])
	}
	pa, pb, pd := c.pairA, c.pairB, c.pairDst
	for i := range pd {
		vals[pd[i]] = vals[pa[i]] + vals[pb[i]]
	}
	tape := c.tape
	i := 0
	for r := 0; r < c.M; r++ {
		nt := tape[i]
		i++
		var acc int64
		for ; nt > 0; nt-- {
			code := int64(tape[i+1])
			ns := int(tape[i+2])
			i += 3
			sub := tape[i : i+ns : i+ns]
			i += ns
			var g int64
			for len(sub) >= 4 {
				g = (((g + vals[sub[0]]) + vals[sub[1]]) + vals[sub[2]]) + vals[sub[3]]
				sub = sub[4:]
			}
			for _, s := range sub {
				g += vals[s]
			}
			acc += code * g
		}
		y[r] = acc
	}
}

// ExecuteMatrix evaluates the compiled program on a [K, P] column matrix,
// producing the [M, P] result (convenience wrapper over
// ExecuteMatrixInto).
func (c *Compiled) ExecuteMatrix(cols *tensor.Tensor) *tensor.Tensor {
	if cols.Shape().Rank() != 2 || cols.Dim(0) != c.K {
		panic(fmt.Sprintf("ipe: compiled ExecuteMatrix wants [K=%d, P] input, got %v", c.K, cols.Shape()))
	}
	pTotal := cols.Dim(1)
	out := tensor.New(c.M, pTotal)
	var s tensor.Scratch
	c.ExecuteMatrixInto(out.Data(), cols.Data(), pTotal, &s)
	return out
}

// ExecuteMatrixInto is the compiled column-blocked matrix executor: cols
// holds the [K, pTotal] input, dst receives the [M, pTotal] result. The
// block scratchpad is ScratchLen()·colBlock words — NumSlots compacted
// slabs past the inputs instead of the interpreter's per-entry slabs — and
// comes from the caller's Scratch. Bit-identical to
// Program.ExecuteMatrixInto.
func (c *Compiled) ExecuteMatrixInto(dst, cols []float32, pTotal int, s *tensor.Scratch) {
	metrics.Count(metrics.KernelIPECompiled)
	checkMatrixBuffers("compiled ExecuteMatrixInto", c.K, c.M, len(dst), len(cols), pTotal)
	c.executeMatrixCols(dst, cols, pTotal, 0, pTotal, s)
}

// ExecuteMatrixIntoPar is ExecuteMatrixInto sharded over colBlock-aligned
// column ranges on the given parallelism context (see
// Program.ExecuteMatrixIntoPar for the bit-identity argument; it holds
// unchanged here).
func (c *Compiled) ExecuteMatrixIntoPar(dst, cols []float32, pTotal int, par *tensor.Par) {
	metrics.Count(metrics.KernelIPECompiled)
	checkMatrixBuffers("compiled ExecuteMatrixIntoPar", c.K, c.M, len(dst), len(cols), pTotal)
	if par.Parallel() {
		par.ForBlocks(pTotal, colBlock, func(shard, lo, hi int) {
			c.executeMatrixCols(dst, cols, pTotal, lo, hi, par.Scratch(shard))
		})
		return
	}
	c.executeMatrixCols(dst, cols, pTotal, 0, pTotal, par.Scratch(0))
}

// executeMatrixCols processes input columns [lo, hi) (lo colBlock-aligned)
// against the flat streams; see emitblock.go for the register-blocked
// implementation and its bit-identity argument.
func (c *Compiled) executeMatrixCols(dst, cols []float32, pTotal, lo, hi int, s *tensor.Scratch) {
	c.executeMatrixColsBlocked(dst, cols, pTotal, lo, hi, s)
}
