package ipe

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// TestForwardWindowMatchesForward checks that windowed IPE conv execution
// reproduces the whole-layer forward pass bit-for-bit on every window of a
// covering grid, for plain and grouped layers.
func TestForwardWindowMatchesForward(t *testing.T) {
	specs := []tensor.ConvSpec{
		{InC: 1, OutC: 6, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
		{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2},
	}
	rng := tensor.NewRNG(21)
	for _, spec := range specs {
		w := tensor.New(spec.WeightShape()...)
		tensor.FillGaussian(w, rng, 1)
		bias := tensor.New(spec.OutC)
		tensor.FillGaussian(bias, rng, 1)
		layer, _, err := EncodeConv(w, bias, spec, 4, quant.PerChannel, DefaultConfig())
		if err != nil {
			t.Fatalf("EncodeConv: %v", err)
		}
		in := tensor.New(2, spec.InC, 12, 12)
		tensor.FillGaussian(in, rng, 1)
		want := layer.Forward(in)
		oh, ow := spec.OutDims(12, 12)

		var s tensor.Scratch
		for b := 0; b < 2; b++ {
			for oy0 := 0; oy0 < oh; oy0 += 5 {
				for ox0 := 0; ox0 < ow; ox0 += 7 {
					oy1, ox1 := min(oy0+5, oh), min(ox0+7, ow)
					th, tw := oy1-oy0, ox1-ox0
					tile := make([]float32, spec.OutC*th*tw)
					layer.ForwardWindowInto(tile, in, b, oy0, oy1, ox0, ox1, &s)
					for oc := 0; oc < spec.OutC; oc++ {
						for oy := oy0; oy < oy1; oy++ {
							for ox := ox0; ox < ox1; ox++ {
								wv := want.Data()[((b*spec.OutC+oc)*oh+oy)*ow+ox]
								gv := tile[(oc*th+(oy-oy0))*tw+(ox-ox0)]
								if gv != wv {
									t.Fatalf("spec %+v b%d oc%d (%d,%d): got %v want %v", spec, b, oc, oy, ox, gv, wv)
								}
							}
						}
					}

					// The sharded variant must agree bit-for-bit too.
					par := tensor.NewPar(nil, 3)
					tile2 := make([]float32, spec.OutC*th*tw)
					layer.ForwardWindowIntoPar(tile2, in, b, oy0, oy1, ox0, ox1, par)
					for i := range tile {
						if tile[i] != tile2[i] {
							t.Fatalf("sharded window differs at %d: %v vs %v", i, tile[i], tile2[i])
						}
					}
				}
			}
		}
	}
}
