package ipe

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// encodeRandom encodes a fresh random matrix from the given seed; equal
// seeds produce byte-identical programs.
func encodeRandom(t *testing.T, seed uint64, m, k int) *Program {
	t.Helper()
	r := tensor.NewRNG(seed)
	w := tensor.New(m, k)
	tensor.FillGaussian(w, r, 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	p, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return p
}

func TestDictStoreInternsIdenticalPrograms(t *testing.T) {
	s := NewDictStore()
	a := encodeRandom(t, 7, 12, 48)
	b := encodeRandom(t, 7, 12, 48)
	if a == b {
		t.Fatal("test wants two distinct Program values")
	}
	ca := s.Intern(a)
	if ca != a {
		t.Fatalf("first intern must canonicalize the argument, got %p want %p", ca, a)
	}
	cb := s.Intern(b)
	if cb != a {
		t.Fatalf("duplicate content must intern to the canonical program")
	}
	st := s.Stats()
	if st.Lookups != 2 || st.ProgramHits != 1 || st.UniquePrograms != 1 {
		t.Fatalf("stats = %+v, want 2 lookups / 1 program hit / 1 unique", st)
	}
	if st.SavedBytes <= 0 || st.UniqueBytes <= 0 {
		t.Fatalf("byte accounting not populated: %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// The shared canonical program serves both call sites with one
	// compiled form.
	if ca.Compiled() != cb.Compiled() {
		t.Fatal("interned programs must share the compiled form")
	}
}

func TestDictStoreKeepsDistinctPrograms(t *testing.T) {
	s := NewDictStore()
	a := s.Intern(encodeRandom(t, 1, 10, 40))
	b := s.Intern(encodeRandom(t, 2, 10, 40))
	if a == b {
		t.Fatal("distinct content must not intern to one program")
	}
	st := s.Stats()
	if st.ProgramHits != 0 || st.UniquePrograms != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 unique", st)
	}
}

func TestDictStoreSharesDictionaryAcrossHeads(t *testing.T) {
	// Two programs built by EncodeShared alias one Pairs/Depth table but
	// have different emit rows — the "two heads over one backbone" shape.
	// A store must dedup the dictionary even when the programs arrive
	// through separate Intern calls after a round-trip that severed the
	// aliasing.
	r := tensor.NewRNG(3)
	w0, w1 := tensor.New(8, 64), tensor.New(6, 64)
	tensor.FillGaussian(w0, r, 1)
	tensor.FillGaussian(w1, r, 1)
	qs := []*quant.Quantized{
		quant.Quantize(w0, 4, quant.PerTensor),
		quant.Quantize(w1, 4, quant.PerTensor),
	}
	progs, _, err := EncodeShared(qs, DefaultConfig())
	if err != nil {
		t.Fatalf("EncodeShared: %v", err)
	}
	if len(progs[0].Pairs) == 0 {
		t.Skip("seed produced an empty dictionary")
	}
	// Round-trip the second program so its Pairs slice is a fresh copy.
	wire, err := progs[1].MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var copy1 Program
	if err := copy1.UnmarshalBinary(wire); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	copy1.Config = progs[1].Config
	if &copy1.Pairs[0] == &progs[1].Pairs[0] {
		t.Fatal("round-trip should have copied the dictionary")
	}

	s := NewDictStore()
	s.Intern(progs[0])
	got := s.Intern(&copy1)
	if got != &copy1 {
		t.Fatal("different emit rows must keep the program distinct")
	}
	if &got.Pairs[0] != &progs[0].Pairs[0] {
		t.Fatal("identical dictionaries must re-alias to the canonical Pairs slice")
	}
	st := s.Stats()
	if st.DictHits != 1 {
		t.Fatalf("stats = %+v, want 1 dict hit", st)
	}
}

func TestDictStoreDistinguishesConfig(t *testing.T) {
	// Same weights, different encoder config: wire bytes can coincide for
	// tiny layers, but Validate consults Config, so the store must not
	// merge across configs.
	r := tensor.NewRNG(5)
	w := tensor.New(4, 16)
	tensor.FillGaussian(w, r, 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	p1, _, err := Encode(q, Config{MaxDict: 4, MaxDepth: 2, TileSize: 8})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	p2, _, err := Encode(q, Config{MaxDict: 4, MaxDepth: 2, TileSize: 8, MinPairCount: 3})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s := NewDictStore()
	a, b := s.Intern(p1), s.Intern(p2)
	if a == b && a.Config != b.Config {
		t.Fatal("programs with different configs merged")
	}
}

func TestDictStoreNilSafe(t *testing.T) {
	var s *DictStore
	p := encodeRandom(t, 9, 4, 16)
	if got := s.Intern(p); got != p {
		t.Fatal("nil store must pass programs through")
	}
	if s.Len() != 0 || s.Stats() != (DictStats{}) {
		t.Fatal("nil store must report zero state")
	}
	if s.Intern(nil) != nil {
		t.Fatal("nil program must pass through")
	}
}

func TestDictStoreConcurrentIntern(t *testing.T) {
	// Compile fans out per-node: many goroutines intern concurrently, some
	// with identical content. All duplicates must collapse to one pointer.
	s := NewDictStore()
	const workers = 8
	results := make([]*Program, workers)
	done := make(chan int, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			results[i] = s.Intern(encodeRandom(t, 42, 10, 32))
			done <- i
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different canonical program", i)
		}
	}
	if got := s.Stats().UniquePrograms; got != 1 {
		t.Fatalf("UniquePrograms = %d, want 1", got)
	}
}

func TestMemoryBytesGrowsWithCompilation(t *testing.T) {
	p := encodeRandom(t, 11, 16, 64)
	before := p.MemoryBytes()
	if before <= 0 {
		t.Fatalf("MemoryBytes = %d, want > 0", before)
	}
	p.Compiled()
	after := p.MemoryBytes()
	if after <= before {
		t.Fatalf("MemoryBytes after compile = %d, want > %d", after, before)
	}
}
