package ipe

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// ConvLayer is a 2-D convolution whose weights have been index-pair
// encoded. Grouped convolutions hold one program per group, each encoding
// the [outC/groups, inC/groups·kH·kW] weight slice of that group.
type ConvLayer struct {
	Spec     tensor.ConvSpec
	Programs []*Program
	Bias     *tensor.Tensor // nil or [outC]
	Quant    *quant.Quantized
}

// EncodeConv quantizes an OIHW weight tensor to the given bit-width and
// index-pair encodes it (per group). The returned layer computes the same
// convolution as tensor.Conv2D over the *dequantized* weights.
func EncodeConv(w, bias *tensor.Tensor, spec tensor.ConvSpec, bits int, scheme quant.Scheme, cfg Config) (*ConvLayer, Stats, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if !w.Shape().Equal(spec.WeightShape()) {
		return nil, Stats{}, fmt.Errorf("ipe: weight shape %v != expected %v for spec %+v",
			w.Shape(), spec.WeightShape(), spec)
	}
	q := quant.Quantize(w, bits, scheme)
	layer := &ConvLayer{Spec: spec, Bias: bias, Quant: q}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	kSize := icg * spec.KH * spec.KW
	var total Stats
	for g := 0; g < spec.Groups; g++ {
		gq := &quant.Quantized{
			Codes:  q.Codes[g*ocg*kSize : (g+1)*ocg*kSize],
			Shape:  tensor.Shape{ocg, icg, spec.KH, spec.KW},
			Bits:   q.Bits,
			Scheme: q.Scheme,
		}
		if q.Scheme == quant.PerChannel {
			gq.Params = q.Params[g*ocg : (g+1)*ocg]
		} else {
			gq.Params = q.Params
		}
		prog, st, err := Encode(gq, cfg)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("ipe: encoding group %d: %w", g, err)
		}
		layer.Programs = append(layer.Programs, prog)
		total.Rounds += st.Rounds
		total.Merges += st.Merges
		total.DeadPruned += st.DeadPruned
		total.InputSymbols += st.InputSymbols
		total.OutputSymbols += st.OutputSymbols
	}
	return layer, total, nil
}

// Forward runs the encoded convolution on an NCHW input. The result
// matches tensor.Conv2D(in, dequantized weights, bias, spec) up to float
// accumulation order.
func (l *ConvLayer) Forward(in *tensor.Tensor) *tensor.Tensor {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	out := tensor.New(n, spec.OutC, oh, ow)
	var s tensor.Scratch
	l.ForwardInto(out, in, &s)
	return out
}

// ForwardInto is Forward writing into a preallocated [n, outC, oh, ow]
// destination, drawing the im2col and program buffers from the caller's
// Scratch: once the scratch is warm, execution performs no heap
// allocations. Programs run in their compiled form (compile.go), which is
// bit-identical to the interpreter. dst must not alias in.
func (l *ConvLayer) ForwardInto(dst, in *tensor.Tensor, s *tensor.Scratch) {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("ipe: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	mark := s.Mark()
	col := s.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s.Take(ocg * oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupInto(col, in, b, g, spec)
			l.Programs[g].Compiled().ExecuteMatrixInto(res, col, oh*ow, s) // [ocg, oh*ow]
			l.addBias(od, res, b, g, ocg, oh*ow)
		}
	}
	s.Release(mark)
}

// ForwardIntoPar is ForwardInto sharded on the given parallelism context:
// the im2col lowering shards over matrix rows and the program execution
// over column blocks, with per-shard scratch arenas. The shared col/res
// staging buffers come from shard 0's scratch — taken before each parallel
// region starts and released after it joins, so no two goroutines ever use
// one Scratch concurrently. Results are bit-identical to ForwardInto.
func (l *ConvLayer) ForwardIntoPar(dst, in *tensor.Tensor, par *tensor.Par) {
	spec := l.Spec
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	oh, ow := spec.OutDims(h, w)
	if dst.NumElements() != n*spec.OutC*oh*ow {
		panic(fmt.Sprintf("ipe: ForwardInto dst %v != [%d %d %d %d]", dst.Shape(), n, spec.OutC, oh, ow))
	}
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	od := dst.Data()
	s0 := par.Scratch(0)
	mark := s0.Mark()
	col := s0.Take(icg * spec.KH * spec.KW * oh * ow)
	res := s0.Take(ocg * oh * ow)
	for b := 0; b < n; b++ {
		for g := 0; g < spec.Groups; g++ {
			tensor.Im2colGroupIntoPar(col, in, b, g, spec, par)
			l.Programs[g].Compiled().ExecuteMatrixIntoPar(res, col, oh*ow, par)
			l.addBias(od, res, b, g, ocg, oh*ow)
		}
	}
	s0.Release(mark)
}

// addBias copies group g's [ocg, hw] result block into the output tensor
// of batch element b, adding the per-channel bias.
func (l *ConvLayer) addBias(od, res []float32, b, g, ocg, hw int) {
	spec := l.Spec
	for oc := 0; oc < ocg; oc++ {
		dst := od[(b*spec.OutC+g*ocg+oc)*hw : (b*spec.OutC+g*ocg+oc)*hw+hw]
		src := res[oc*hw : (oc+1)*hw]
		var bv float32
		if l.Bias != nil {
			bv = l.Bias.Data()[g*ocg+oc]
		}
		for i, v := range src {
			dst[i] = v + bv
		}
	}
}

// Cost returns the total arithmetic cost of one forward pass over an input
// of spatial size h×w with batch n: the per-pixel program cost scaled by
// the number of output pixels, summed over groups.
func (l *ConvLayer) Cost(n, h, w int) Cost {
	oh, ow := l.Spec.OutDims(h, w)
	pixels := int64(n) * int64(oh) * int64(ow)
	var total Cost
	for _, p := range l.Programs {
		c := p.Cost()
		total.Adds += c.Adds * pixels
		total.Muls += c.Muls * pixels
		total.StreamSymbols += c.StreamSymbols
		total.DictEntries += c.DictEntries
		if c.ScratchWords > total.ScratchWords {
			total.ScratchWords = c.ScratchWords
		}
	}
	return total
}

// DenseLayer is a fully connected layer with index-pair-encoded weights.
type DenseLayer struct {
	Program *Program
	Bias    *tensor.Tensor // nil or [m]
	Quant   *quant.Quantized
}

// EncodeDense quantizes an [m, k] weight matrix and index-pair encodes it.
func EncodeDense(w, bias *tensor.Tensor, bits int, scheme quant.Scheme, cfg Config) (*DenseLayer, Stats, error) {
	if w.Shape().Rank() != 2 {
		return nil, Stats{}, fmt.Errorf("ipe: EncodeDense wants [m, k] weight, got %v", w.Shape())
	}
	q := quant.Quantize(w, bits, scheme)
	prog, st, err := Encode(q, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return &DenseLayer{Program: prog, Bias: bias, Quant: q}, st, nil
}

// Forward computes y = W_q·x + b for each row of the [n, k] input.
func (l *DenseLayer) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Dim(0), l.Program.M)
	var s tensor.Scratch
	l.ForwardInto(out, in, &s)
	return out
}

// ForwardInto is Forward writing into a preallocated [n, m] destination,
// drawing the (slot-compacted, compiled-form) partial-sum scratchpad from
// the caller's Scratch. dst must not alias in.
func (l *DenseLayer) ForwardInto(dst, in *tensor.Tensor, s *tensor.Scratch) {
	n, k := in.Dim(0), in.Dim(1)
	if k != l.Program.K {
		panic(fmt.Sprintf("ipe: DenseLayer input width %d != K %d", k, l.Program.K))
	}
	if dst.NumElements() != n*l.Program.M {
		panic(fmt.Sprintf("ipe: ForwardInto dst %v != [%d %d]", dst.Shape(), n, l.Program.M))
	}
	c := l.Program.Compiled()
	m := l.Program.M
	mark := s.Mark()
	od := dst.Data()
	id := in.Data()
	b := 0
	if n >= laneCount {
		// 4 batch rows per stream sweep (bit-identical per lane to the
		// single-vector walk below).
		lanes := s.Take(laneCount * c.ScratchLen())
		for ; b+laneCount <= n; b += laneCount {
			c.ExecuteScratch4(
				id[b*k:(b+1)*k], id[(b+1)*k:(b+2)*k], id[(b+2)*k:(b+3)*k], id[(b+3)*k:(b+4)*k],
				od[b*m:(b+1)*m], od[(b+1)*m:(b+2)*m], od[(b+2)*m:(b+3)*m], od[(b+3)*m:(b+4)*m],
				lanes)
		}
	}
	scratch := s.Take(c.ScratchLen())
	for ; b < n; b++ {
		c.ExecuteScratch(id[b*k:(b+1)*k], od[b*m:(b+1)*m], scratch)
	}
	if l.Bias != nil {
		bd := l.Bias.Data()
		for b := 0; b < n; b++ {
			for i := 0; i < l.Program.M; i++ {
				od[b*l.Program.M+i] += bd[i]
			}
		}
	}
	s.Release(mark)
}

// EncodeConvShared is EncodeConv with one pair dictionary shared across
// all groups of a grouped convolution. Every group has the same reduction
// length (inC/groups·kH·kW), so the groups' index sets can be counted
// jointly (ipe.EncodeShared); for depthwise convolutions — tens to
// hundreds of tiny single-channel groups — this collapses per-group
// dictionaries into one decode-table image. For groups == 1 it is
// identical to EncodeConv.
func EncodeConvShared(w, bias *tensor.Tensor, spec tensor.ConvSpec, bits int, scheme quant.Scheme, cfg Config) (*ConvLayer, Stats, error) {
	spec = spec.Normalize()
	if spec.Groups <= 1 {
		return EncodeConv(w, bias, spec, bits, scheme, cfg)
	}
	if err := spec.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if !w.Shape().Equal(spec.WeightShape()) {
		return nil, Stats{}, fmt.Errorf("ipe: weight shape %v != expected %v for spec %+v",
			w.Shape(), spec.WeightShape(), spec)
	}
	q := quant.Quantize(w, bits, scheme)
	icg := spec.InC / spec.Groups
	ocg := spec.OutC / spec.Groups
	kSize := icg * spec.KH * spec.KW
	qs := make([]*quant.Quantized, spec.Groups)
	for g := 0; g < spec.Groups; g++ {
		gq := &quant.Quantized{
			Codes:  q.Codes[g*ocg*kSize : (g+1)*ocg*kSize],
			Shape:  tensor.Shape{ocg, icg, spec.KH, spec.KW},
			Bits:   q.Bits,
			Scheme: q.Scheme,
		}
		if q.Scheme == quant.PerChannel {
			gq.Params = q.Params[g*ocg : (g+1)*ocg]
		} else {
			gq.Params = q.Params
		}
		qs[g] = gq
	}
	progs, stats, err := EncodeShared(qs, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return &ConvLayer{Spec: spec, Programs: progs, Bias: bias, Quant: q}, stats, nil
}
