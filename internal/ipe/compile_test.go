package ipe

import (
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// fillDepth recomputes the Depth table of a hand-built program so it
// passes Validate.
func fillDepth(p *Program) {
	p.Depth = make([]int32, len(p.Pairs))
	d := func(s int32) int32 {
		if int(s) < p.K {
			return 0
		}
		return p.Depth[int(s)-p.K]
	}
	for j, pr := range p.Pairs {
		p.Depth[j] = max(d(pr.A), d(pr.B)) + 1
	}
}

// assertCompiledMatches runs the interpreted and compiled executors on the
// same deterministic inputs and requires bitwise-identical float results
// and exactly equal integer results, over the vector, matrix (at block
// boundary and ragged column counts), and integer paths.
func assertCompiledMatches(t *testing.T, p *Program) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	c := p.Compiled()
	if c.ScratchLen() > p.NumSymbols() {
		t.Fatalf("compiled scratch %d exceeds interpreter footprint %d", c.ScratchLen(), p.NumSymbols())
	}

	r := tensor.NewRNG(42)
	x := make([]float32, p.K)
	for i := range x {
		x[i] = r.Float32() - 0.5
	}
	want := make([]float32, p.M)
	got := make([]float32, p.M)
	p.Execute(x, want)
	c.Execute(x, got)
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("vector element %d: interpreted %v != compiled %v", i, want[i], got[i])
		}
	}

	xi := make([]int32, p.K)
	for i := range xi {
		xi[i] = int32(r.Float32()*16) - 8
	}
	wantI := make([]int64, p.M)
	gotI := make([]int64, p.M)
	p.ExecuteInt(xi, wantI)
	c.ExecuteInt(xi, gotI)
	for i := range wantI {
		if wantI[i] != gotI[i] {
			t.Fatalf("int element %d: interpreted %d != compiled %d", i, wantI[i], gotI[i])
		}
	}

	for _, pTotal := range []int{1, colBlock, colBlock + 5} {
		cols := make([]float32, p.K*pTotal)
		for i := range cols {
			cols[i] = r.Float32() - 0.5
		}
		wantM := make([]float32, p.M*pTotal)
		gotM := make([]float32, p.M*pTotal)
		var s1, s2 tensor.Scratch
		p.ExecuteMatrixInto(wantM, cols, pTotal, &s1)
		c.ExecuteMatrixInto(gotM, cols, pTotal, &s2)
		for i := range wantM {
			if math.Float32bits(wantM[i]) != math.Float32bits(gotM[i]) {
				t.Fatalf("matrix P=%d element %d: interpreted %v != compiled %v", pTotal, i, wantM[i], gotM[i])
			}
		}
	}
}

// TestCompiledEmptyDictionary: a program with no pairs compiles to an
// empty pair stream and zero slots; the emit stream alone must reproduce
// the interpreter.
func TestCompiledEmptyDictionary(t *testing.T) {
	p := &Program{
		K: 6, M: 2, Bits: 4,
		Rows: []Row{
			{Terms: []Term{{Code: 3, Value: 0.75, Syms: []int32{0, 2, 4}}}},
			{Terms: []Term{{Code: -2, Value: -0.5, Syms: []int32{1, 3, 5}}, {Code: 1, Value: 0.25, Syms: []int32{0}}}},
		},
	}
	fillDepth(p)
	c := p.Compiled()
	if c.NumSlots != 0 || c.LivePairs != 0 || c.DeadPairs != 0 {
		t.Fatalf("empty dictionary compiled to %d slots, %d live, %d dead", c.NumSlots, c.LivePairs, c.DeadPairs)
	}
	if c.ScratchLen() != p.K {
		t.Fatalf("scratch length %d != K %d", c.ScratchLen(), p.K)
	}
	assertCompiledMatches(t, p)
}

// TestCompiledZeroTermRows: rows without terms are legal (an all-zero
// weight row encodes to nothing) and must produce exactly 0 on every path.
func TestCompiledZeroTermRows(t *testing.T) {
	p := &Program{
		K: 4, M: 3, Bits: 4,
		Pairs: []Pair{{A: 0, B: 1}},
		Rows: []Row{
			{}, // no terms at all
			{Terms: []Term{{Code: 2, Value: 1.5, Syms: []int32{4, 2}}}},
			{},
		},
	}
	fillDepth(p)
	assertCompiledMatches(t, p)
	y := make([]float32, p.M)
	p.Compiled().Execute([]float32{1, 2, 3, 4}, y)
	if y[0] != 0 || y[2] != 0 {
		t.Fatalf("zero-term rows produced %v", y)
	}
}

// TestCompiledSingleSymbolTerms: terms with one symbol exercise the
// smallest emit groups (the compiled path must still zero-init the group
// accumulator to stay bit-identical, e.g. for signed zeros).
func TestCompiledSingleSymbolTerms(t *testing.T) {
	p := &Program{
		K: 5, M: 2, Bits: 4,
		Pairs: []Pair{{A: 1, B: 3}},
		Rows: []Row{
			{Terms: []Term{{Code: 1, Value: 0.5, Syms: []int32{5}}, {Code: -1, Value: -0.5, Syms: []int32{0}}}},
			{Terms: []Term{{Code: 7, Value: 1.75, Syms: []int32{4}}}},
		},
	}
	fillDepth(p)
	assertCompiledMatches(t, p)
}

// TestCompiledDeadEntryElimination: dictionary entries no emit term
// reaches are dropped from the pair stream without changing results, and
// slot compaction keeps the scratchpad at the live width.
func TestCompiledDeadEntryElimination(t *testing.T) {
	p := &Program{
		K: 6, M: 1, Bits: 4,
		Pairs: []Pair{
			{A: 0, B: 1}, // 6: live (read by row)
			{A: 2, B: 3}, // 7: dead
			{A: 7, B: 4}, // 8: dead (reads a dead entry)
			{A: 6, B: 5}, // 9: live chain through 6
		},
		Rows: []Row{
			{Terms: []Term{{Code: 2, Value: 1, Syms: []int32{9, 6}}}},
		},
	}
	fillDepth(p)
	c := p.Compiled()
	if c.LivePairs != 2 || c.DeadPairs != 2 {
		t.Fatalf("expected 2 live / 2 dead pairs, got %d / %d", c.LivePairs, c.DeadPairs)
	}
	if c.NumSlots != 2 {
		t.Fatalf("expected 2 slots for 2 live row-read entries, got %d", c.NumSlots)
	}
	assertCompiledMatches(t, p)
}

// TestCompiledSlotReuse: a long chain where every entry is consumed only
// by the next pair must compact to far fewer slots than entries.
func TestCompiledSlotReuse(t *testing.T) {
	const k, links = 8, 12
	p := &Program{K: k, M: 1, Bits: 4}
	// Chain: e0 = x0+x1, e_i = e_{i-1} + x_{(i+1)%k}; only the last entry
	// is emitted, so every intermediate dies at its single pair read.
	p.Pairs = append(p.Pairs, Pair{A: 0, B: 1})
	for i := 1; i < links; i++ {
		p.Pairs = append(p.Pairs, Pair{A: int32(k + i - 1), B: int32((i + 1) % k)})
	}
	p.Rows = []Row{{Terms: []Term{{Code: 1, Value: 1, Syms: []int32{int32(k + links - 1)}}}}}
	fillDepth(p)
	c := p.Compiled()
	if c.NumSlots > 2 {
		t.Fatalf("chain program should need ≤2 slots, got %d (of %d entries)", c.NumSlots, links)
	}
	assertCompiledMatches(t, p)
}

// boundaryProgram builds a validating program whose symbol count is
// exactly total: K = total - pairs raw inputs plus a small dictionary.
func boundaryProgram(total, pairs int) *Program {
	k := total - pairs
	p := &Program{K: k, M: 2, Bits: 4}
	for j := 0; j < pairs; j++ {
		p.Pairs = append(p.Pairs, Pair{A: int32(2 * j), B: int32(2*j + 1)})
	}
	last := int32(k + pairs - 1) // highest symbol id
	p.Rows = []Row{
		{Terms: []Term{{Code: 1, Value: 0.5, Syms: []int32{last, 0}}}},
		{Terms: []Term{{Code: -3, Value: -1.5, Syms: []int32{int32(k), int32(k - 1)}}}},
	}
	fillDepth(p)
	return p
}

// TestCompiledSymbolWidthBoundary: programs at the 2-byte/4-byte symbol
// width boundary of the wire format must survive a serialize round trip
// and compile (from the freshly unmarshaled value, whose cache starts
// cold) to bit-identical results.
func TestCompiledSymbolWidthBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 64k-symbol programs")
	}
	for _, tc := range []struct {
		total, wantW int
	}{
		{1 << 16, 2},     // largest 2-byte program
		{1<<16 + 1, 4},   // smallest 4-byte program
		{1<<16 - 255, 2}, // comfortably inside 2-byte
	} {
		p := boundaryProgram(tc.total, 4)
		if got := p.symbolWidth(); got != tc.wantW {
			t.Fatalf("total %d: symbol width %d, want %d", tc.total, got, tc.wantW)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("total %d: marshal: %v", tc.total, err)
		}
		var rt Program
		if err := rt.UnmarshalBinary(data); err != nil {
			t.Fatalf("total %d: unmarshal: %v", tc.total, err)
		}
		if rt.NumSymbols() != tc.total {
			t.Fatalf("total %d: round trip changed symbol count to %d", tc.total, rt.NumSymbols())
		}
		assertCompiledMatches(t, &rt)
	}
}

// TestCompiledCache: Compiled() memoizes per program value, and
// deserializing over a program drops the stale lowering.
func TestCompiledCache(t *testing.T) {
	w := tensor.New(16, 32)
	tensor.FillGaussian(w, tensor.NewRNG(3), 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	p, _, err := Encode(q, Config{MaxDict: 64, MaxDepth: 4, TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	c1 := p.Compiled()
	if c2 := p.Compiled(); c1 != c2 {
		t.Fatal("Compiled() did not memoize")
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if c3 := p.Compiled(); c3 == c1 {
		t.Fatal("UnmarshalBinary kept a stale compiled cache")
	}
	assertCompiledMatches(t, p)
}

// TestCompiledEncodedPrograms sweeps real encoder outputs (both policies,
// with and without tiling) through the bit-identity assertion, and checks
// that slot compaction actually shrinks the scratchpad on a typical layer.
func TestCompiledEncodedPrograms(t *testing.T) {
	r := tensor.NewRNG(9)
	for _, cfg := range []Config{
		DefaultConfig(),
		{MaxDict: 128, MaxDepth: 3, TileSize: 32},
		{Policy: PolicyGreedy, MaxDict: 64, MaxDepth: 8, TileSize: 0},
	} {
		w := tensor.New(24, 96)
		tensor.FillGaussian(w, r, 1)
		q := quant.Quantize(w, 4, quant.PerTensor)
		p, _, err := Encode(q, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		assertCompiledMatches(t, p)
		c := p.Compiled()
		if len(p.Pairs) > 0 && c.NumSlots > len(p.Pairs) {
			t.Fatalf("cfg %+v: %d slots for %d entries", cfg, c.NumSlots, len(p.Pairs))
		}
	}
}

func BenchmarkInterpretedMatrix(b *testing.B) { benchMatrix(b, false) }
func BenchmarkCompiledMatrix(b *testing.B)    { benchMatrix(b, true) }

func BenchmarkInterpretedVector(b *testing.B) { benchVector(b, false) }
func BenchmarkCompiledVector(b *testing.B)    { benchVector(b, true) }

// benchVector mirrors a LeNet-5 fc1-sized dense layer (120 rows of 400
// inputs), the single-column path the dense serving code takes.
func benchVector(b *testing.B, compiled bool) {
	w := tensor.New(120, 400)
	tensor.FillGaussian(w, tensor.NewRNG(7), 1)
	prog, _, err := Encode(quant.Quantize(w, 4, quant.PerTensor), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, prog.K)
	r := tensor.NewRNG(8)
	for i := range x {
		x[i] = r.Float32()
	}
	y := make([]float32, prog.M)
	c := prog.Compiled()
	interpScratch := make([]float32, prog.NumSymbols())
	compiledScratch := make([]float32, c.ScratchLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compiled {
			c.ExecuteScratch(x, y, compiledScratch)
		} else {
			prog.ExecuteScratch(x, y, interpScratch)
		}
	}
}

func benchMatrix(b *testing.B, compiled bool) {
	w := tensor.New(64, 288)
	tensor.FillGaussian(w, tensor.NewRNG(5), 1)
	prog, _, err := Encode(quant.Quantize(w, 4, quant.PerTensor), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const pTotal = 256
	cols := make([]float32, prog.K*pTotal)
	r := tensor.NewRNG(6)
	for i := range cols {
		cols[i] = r.Float32()
	}
	dst := make([]float32, prog.M*pTotal)
	var s tensor.Scratch
	c := prog.Compiled()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compiled {
			c.ExecuteMatrixInto(dst, cols, pTotal, &s)
		} else {
			prog.ExecuteMatrixInto(dst, cols, pTotal, &s)
		}
	}
}
