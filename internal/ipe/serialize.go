package ipe

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire format of an encoded program — the flat, position-independent
// instruction stream a fixed-function decoder consumes ("hardware-friendly
// fixed-width streams", DESIGN.md §1). All integers are little-endian.
//
//	magic   uint32  "IPE1"
//	k       uint32  raw input count
//	m       uint32  output row count
//	bits    uint8   quantization bit-width
//	symW    uint8   symbol width in bytes: 2 or 4
//	_pad    uint16  zero
//	dict    uint32  dictionary entry count
//	pairs   dict × {a symW, b symW}
//	rows    m × {
//	    terms uint16
//	    term × { code int16, value float32, n uint32, syms n×symW }
//	}
//
// Depth is not stored: it is recomputed from the pair table on load.
const magic = 0x49504531 // "IPE1"

// symbolWidth returns the fixed symbol width (2 or 4 bytes) for a program.
func (p *Program) symbolWidth() int {
	if p.NumSymbols() <= 1<<16 {
		return 2
	}
	return 4
}

// MarshalBinary serializes the program to its wire format.
func (p *Program) MarshalBinary() ([]byte, error) {
	symW := p.symbolWidth()
	buf := make([]byte, 0, 20+len(p.Pairs)*2*symW)
	le := binary.LittleEndian
	var scratch [8]byte

	putU32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	putSym := func(s int32) {
		if symW == 2 {
			le.PutUint16(scratch[:2], uint16(s))
			buf = append(buf, scratch[:2]...)
		} else {
			putU32(uint32(s))
		}
	}

	putU32(magic)
	putU32(uint32(p.K))
	putU32(uint32(p.M))
	buf = append(buf, byte(p.Bits), byte(symW), 0, 0)
	putU32(uint32(len(p.Pairs)))
	for _, pr := range p.Pairs {
		putSym(pr.A)
		putSym(pr.B)
	}
	for _, row := range p.Rows {
		if len(row.Terms) > math.MaxUint16 {
			return nil, fmt.Errorf("ipe: row has %d terms, wire format caps at %d",
				len(row.Terms), math.MaxUint16)
		}
		le.PutUint16(scratch[:2], uint16(len(row.Terms)))
		buf = append(buf, scratch[:2]...)
		for _, t := range row.Terms {
			if t.Code > math.MaxInt16 || t.Code < math.MinInt16 {
				return nil, fmt.Errorf("ipe: code %d exceeds int16 wire range", t.Code)
			}
			le.PutUint16(scratch[:2], uint16(int16(t.Code)))
			buf = append(buf, scratch[:2]...)
			putU32(math.Float32bits(t.Value))
			putU32(uint32(len(t.Syms)))
			for _, s := range t.Syms {
				putSym(s)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary parses a program from its wire format and revalidates
// its structural invariants (dependency order, symbol ranges, depth
// recomputation).
func (p *Program) UnmarshalBinary(data []byte) error {
	le := binary.LittleEndian
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("ipe: truncated program (need %d bytes at offset %d of %d)",
				n, off, len(data))
		}
		return nil
	}
	getU32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := le.Uint32(data[off:])
		off += 4
		return v, nil
	}
	mg, err := getU32()
	if err != nil {
		return err
	}
	if mg != magic {
		return fmt.Errorf("ipe: bad magic %#x", mg)
	}
	k32, err := getU32()
	if err != nil {
		return err
	}
	m32, err := getU32()
	if err != nil {
		return err
	}
	if err := need(4); err != nil {
		return err
	}
	bits := int(data[off])
	symW := int(data[off+1])
	off += 4
	if symW != 2 && symW != 4 {
		return fmt.Errorf("ipe: invalid symbol width %d", symW)
	}
	getSym := func() (int32, error) {
		if err := need(symW); err != nil {
			return 0, err
		}
		var v int32
		if symW == 2 {
			v = int32(le.Uint16(data[off:]))
		} else {
			v = int32(le.Uint32(data[off:]))
		}
		off += symW
		return v, nil
	}
	dict, err := getU32()
	if err != nil {
		return err
	}
	// Resource sanity: every row costs at least 2 bytes (its term count)
	// and every dictionary entry 2·symW bytes, so a forged header cannot
	// demand allocations the payload could never back. K is bounded by the
	// symbol width's address space.
	remaining := int64(len(data) - off)
	if int64(m32)*2 > remaining {
		return fmt.Errorf("ipe: header claims %d rows but only %d payload bytes remain", m32, remaining)
	}
	if int64(dict)*int64(2*symW) > remaining {
		return fmt.Errorf("ipe: header claims %d dictionary entries but only %d payload bytes remain", dict, remaining)
	}
	if symW == 2 && int(k32)+int(dict) > 1<<16 {
		return fmt.Errorf("ipe: %d symbols do not fit 2-byte ids", int(k32)+int(dict))
	}
	if k32 > 1<<28 {
		return fmt.Errorf("ipe: implausible input count %d", k32)
	}
	np := &Program{K: int(k32), M: int(m32), Bits: bits}
	np.Pairs = make([]Pair, dict)
	np.Depth = make([]int32, dict)
	for j := range np.Pairs {
		a, err := getSym()
		if err != nil {
			return err
		}
		b, err := getSym()
		if err != nil {
			return err
		}
		lim := int32(np.K + j)
		if a < 0 || b < 0 || a >= lim || b >= lim {
			return fmt.Errorf("ipe: pair %d out of dependency order", j)
		}
		np.Pairs[j] = Pair{A: a, B: b}
		da, db := int32(0), int32(0)
		if int(a) >= np.K {
			da = np.Depth[a-int32(np.K)]
		}
		if int(b) >= np.K {
			db = np.Depth[b-int32(np.K)]
		}
		np.Depth[j] = max(da, db) + 1
	}
	np.Rows = make([]Row, np.M)
	nsym := int32(np.NumSymbols())
	for r := range np.Rows {
		if err := need(2); err != nil {
			return err
		}
		terms := int(le.Uint16(data[off:]))
		off += 2
		if terms == 0 {
			continue
		}
		np.Rows[r].Terms = make([]Term, terms)
		for ti := 0; ti < terms; ti++ {
			if err := need(2); err != nil {
				return err
			}
			code := int32(int16(le.Uint16(data[off:])))
			off += 2
			vbits, err := getU32()
			if err != nil {
				return err
			}
			n, err := getU32()
			if err != nil {
				return err
			}
			if int64(n) > int64(len(data)) {
				return fmt.Errorf("ipe: term claims %d symbols in %d-byte stream", n, len(data))
			}
			syms := make([]int32, n)
			for si := range syms {
				s, err := getSym()
				if err != nil {
					return err
				}
				if s < 0 || s >= nsym {
					return fmt.Errorf("ipe: row %d references invalid symbol %d", r, s)
				}
				syms[si] = s
			}
			np.Rows[r].Terms[ti] = Term{
				Code:  code,
				Value: math.Float32frombits(vbits),
				Syms:  syms,
			}
		}
	}
	if off != len(data) {
		return fmt.Errorf("ipe: %d trailing bytes after program", len(data)-off)
	}
	if err := np.Validate(); err != nil {
		return err
	}
	*p = *np
	return nil
}

// WireSize returns the serialized size in bytes without materializing the
// buffer — the "model size" metric of the storage comparison (Table 5).
func (p *Program) WireSize() int64 {
	symW := int64(p.symbolWidth())
	size := int64(20) + int64(len(p.Pairs))*2*symW
	for _, row := range p.Rows {
		size += 2
		for _, t := range row.Terms {
			size += 2 + 4 + 4 + int64(len(t.Syms))*symW
		}
	}
	return size
}
