package ipe

import (
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func twoMats(r *tensor.RNG, m, k, bits int) []*quant.Quantized {
	qs := make([]*quant.Quantized, 2)
	for i := range qs {
		w := tensor.New(m, k)
		tensor.FillGaussian(w, r, 1)
		qs[i] = quant.Quantize(w, bits, quant.PerTensor)
	}
	return qs
}

func TestEncodeSharedRoundTripsEachMatrix(t *testing.T) {
	r := tensor.NewRNG(1)
	qs := twoMats(r, 12, 48, 4)
	progs, _, err := EncodeShared(qs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("got %d programs", len(progs))
	}
	for i, p := range progs {
		if err := p.Validate(); err != nil {
			t.Fatalf("program %d invalid: %v", i, err)
		}
		if err := p.VerifyAgainst(qs[i]); err != nil {
			t.Fatalf("program %d round trip: %v", i, err)
		}
	}
}

func TestEncodeSharedSharesDictionary(t *testing.T) {
	r := tensor.NewRNG(2)
	qs := twoMats(r, 16, 64, 3)
	progs, _, err := EncodeShared(qs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if &progs[0].Pairs[0] != &progs[1].Pairs[0] {
		t.Fatal("programs must alias one dictionary")
	}
}

func TestEncodeSharedSmallerDictThanSeparate(t *testing.T) {
	// Shared encoding must need fewer total dictionary entries than
	// encoding each matrix separately (common pairs merge once).
	r := tensor.NewRNG(3)
	qs := twoMats(r, 24, 96, 3)
	shared, _, err := EncodeShared(qs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var separate int
	for _, q := range qs {
		p, _, err := Encode(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		separate += p.DictSize()
	}
	if shared[0].DictSize() >= separate {
		t.Fatalf("shared dict %d should beat separate total %d",
			shared[0].DictSize(), separate)
	}
}

func TestEncodeSharedExecutesCorrectlyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		k := 8 + r.Intn(32)
		nMats := 2 + r.Intn(2)
		qs := make([]*quant.Quantized, nMats)
		for i := range qs {
			w := tensor.New(2+r.Intn(8), k)
			tensor.FillGaussian(w, r, 1)
			qs[i] = quant.Quantize(w, 2+r.Intn(4), quant.PerTensor)
		}
		// Force equal bits (EncodeShared requires it).
		for i := range qs {
			qs[i].Bits = qs[0].Bits
		}
		progs, _, err := EncodeShared(qs, Config{MaxDict: 100, MaxDepth: 6, TileSize: 8})
		if err != nil {
			return false
		}
		x := make([]int32, k)
		for i := range x {
			x[i] = int32(r.Intn(100)) - 50
		}
		for i, p := range progs {
			y := make([]int64, p.M)
			p.ExecuteInt(x, y)
			m := qs[i].Shape[0]
			for row := 0; row < m; row++ {
				var want int64
				for j := 0; j < k; j++ {
					want += int64(qs[i].Codes[row*k+j]) * int64(x[j])
				}
				if y[row] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSharedRejectsMismatchedK(t *testing.T) {
	r := tensor.NewRNG(4)
	a := quant.Quantize(tensor.New(4, 8), 4, quant.PerTensor)
	w := tensor.New(4, 16)
	tensor.FillGaussian(w, r, 1)
	b := quant.Quantize(w, 4, quant.PerTensor)
	if _, _, err := EncodeShared([]*quant.Quantized{a, b}, Config{}); err == nil {
		t.Fatal("mismatched K must be rejected")
	}
}

func TestEncodeSharedRejectsEmpty(t *testing.T) {
	if _, _, err := EncodeShared(nil, Config{}); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestEncodeSharedSingleMatchesEncode(t *testing.T) {
	// Sharing with a single matrix must be equivalent to plain Encode.
	r := tensor.NewRNG(5)
	w := tensor.New(10, 40)
	tensor.FillGaussian(w, r, 1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	ps, _, err := EncodeShared([]*quant.Quantized{q}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].DictSize() != p.DictSize() || ps[0].Cost() != p.Cost() {
		t.Fatalf("shared-of-one differs from Encode: dict %d vs %d",
			ps[0].DictSize(), p.DictSize())
	}
}

func TestEncodeConvSharedMatchesReference(t *testing.T) {
	// Depthwise conv with shared dictionary must compute the same result
	// as the reference conv over dequantized weights.
	r := tensor.NewRNG(60)
	spec := tensor.ConvSpec{InC: 16, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Groups: 16}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	layer, _, err := EncodeConvShared(w, nil, spec, 4, quant.PerTensor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 16, 8, 8)
	tensor.FillGaussian(in, r, 1)
	got := layer.Forward(in)
	want := tensor.Conv2D(in, layer.Quant.Dequantize(), nil, spec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("shared depthwise conv diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestEncodeConvSharedReducesWork(t *testing.T) {
	// Grouped conv with several output channels per group: per-group
	// encoding finds repeats only within a group, shared encoding also
	// harvests cross-group repetition, so its total arithmetic (group sums
	// plus ONE dictionary build) must not exceed the separate encodings'.
	r := tensor.NewRNG(61)
	spec := tensor.ConvSpec{InC: 32, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Groups: 8}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	sep, _, err := EncodeConv(w, nil, spec, 3, quant.PerTensor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := EncodeConvShared(w, nil, spec, 3, quant.PerTensor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sepOps int64
	for _, p := range sep.Programs {
		sepOps += p.Cost().Total()
	}
	var sharedOps int64
	for _, p := range shared.Programs {
		c := p.Cost()
		sharedOps += c.Total() - c.DictEntries // dictionary builds once
	}
	sharedOps += int64(shared.Programs[0].DictSize())
	if sharedOps > sepOps {
		t.Fatalf("shared encoding total ops %d exceed separate %d", sharedOps, sepOps)
	}
	// All shared programs alias one dictionary slice.
	for g := 1; g < len(shared.Programs); g++ {
		if len(shared.Programs[g].Pairs) != len(shared.Programs[0].Pairs) {
			t.Fatal("groups do not share the dictionary")
		}
	}
	// Pure depthwise: per-group dicts are empty (one row each, 9 weights —
	// too few for in-group repeats) while sharing still finds the pairs
	// the groups have in common — sharing is the only way any merging
	// happens at all. Craft filters sharing a corner pattern so the
	// cross-group pair is guaranteed.
	dwSpec := tensor.ConvSpec{InC: 32, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Groups: 32}
	dw := tensor.New(dwSpec.WeightShape()...)
	for g := 0; g < 32; g++ {
		dw.Set(0.5, g, 0, 0, 0)
		dw.Set(0.5, g, 0, 0, 1) // same code at indices {0,1} in every group
		dw.Set(0.1*float32(g%3), g, 0, 2, 2)
	}
	dwSep, _, err := EncodeConv(dw, nil, dwSpec, 2, quant.PerTensor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dwSep.Programs {
		if p.DictSize() != 0 {
			t.Fatal("single-row groups cannot merge alone")
		}
	}
	dwShared, _, err := EncodeConvShared(dw, nil, dwSpec, 2, quant.PerTensor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dwShared.Programs[0].DictSize() == 0 {
		t.Fatal("shared depthwise encoding should find cross-group pairs")
	}
	// Functional equivalence under sharing.
	in := tensor.New(1, 32, 6, 6)
	tensor.FillGaussian(in, r, 1)
	got := dwShared.Forward(in)
	want := tensor.Conv2D(in, dwShared.Quant.Dequantize(), nil, dwSpec)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("shared depthwise diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestEncodeConvSharedGroups1EqualsPlain(t *testing.T) {
	r := tensor.NewRNG(62)
	spec := tensor.ConvSpec{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.3)
	a, _, err := EncodeConvShared(w, nil, spec, 4, quant.PerTensor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EncodeConv(w, nil, spec, 4, quant.PerTensor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Programs[0].DictSize() != b.Programs[0].DictSize() {
		t.Fatal("groups=1 shared encoding should equal plain EncodeConv")
	}
}

func TestDenseLayerForwardInt8(t *testing.T) {
	r := tensor.NewRNG(63)
	w := tensor.New(12, 48)
	tensor.FillGaussian(w, r, 0.2)
	bias := tensor.New(12)
	tensor.FillGaussian(bias, r, 0.1)
	layer, _, err := EncodeDense(w, bias, 4, quant.PerChannel, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(2, 48)
	tensor.FillGaussian(in, r, 1)
	xp := quant.Calibrate([]*tensor.Tensor{in}, 8)
	got := layer.ForwardInt8(in, xp)
	want := layer.Forward(in)
	if !tensor.AllClose(got, want, 0.05, 0.05) {
		t.Fatalf("dense int8 forward diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}
