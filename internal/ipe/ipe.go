// Package ipe implements INSPIRE's core contribution: hardware-friendly
// Index-Pair Encoding of quantized weight matrices.
//
// A dot product over b-bit quantized weights can be refactored by weight
// value: y[o] = Σ_v v · Σ_{i ∈ S(o,v)} x[i], where S(o,v) is the set of
// input indices whose weight in row o equals code v. The multiplies collapse
// to one per distinct value per row; the remaining cost is summing the index
// sets. Those sets overlap heavily across rows and values, and IPE harvests
// the overlap the way byte-pair encoding compresses text: it repeatedly
// replaces a frequently co-occurring *pair* of symbols with a fresh symbol
// whose partial sum x[a]+x[b] is computed once per input and reused
// everywhere the pair appeared.
//
// "Hardware-friendly" is enforced by three encoder constraints:
//
//   - MaxDict bounds the pair dictionary so the partial-sum scratchpad fits
//     in on-chip SRAM;
//   - MaxDepth bounds each symbol's expansion depth, bounding the adder
//     dependency chain of the decode pipeline;
//   - TileSize restricts merging to input tiles, so both operands of every
//     pair are co-resident in the input buffer (no long-range gathers).
//
// The resulting Program is a flat, position-independent instruction stream
// (PAIR entries followed by per-row EMIT terms) that internal/accel maps to
// cycles and energy on the simulated accelerator.
package ipe

import (
	"fmt"
)

// Policy selects the merge strategy of the encoder.
type Policy int

const (
	// PolicyLayered (default) performs batched rounds: each round counts
	// all adjacent symbol pairs once and merges every legal pair that
	// repeats, left to right without overlap. Rounds align naturally with
	// adder-tree stages in hardware, and encoding is O(rounds·stream).
	PolicyLayered Policy = iota
	// PolicyGreedy is textbook BPE: recount and merge the single most
	// frequent pair per iteration. Quadratic in the worst case; used for
	// small layers and as an ablation reference.
	PolicyGreedy
)

// String returns the policy's name.
func (p Policy) String() string {
	switch p {
	case PolicyLayered:
		return "layered"
	case PolicyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config holds the hardware-friendliness knobs of the encoder.
type Config struct {
	// MaxDict bounds the number of pair dictionary entries (merged
	// symbols). 0 means unlimited.
	MaxDict int
	// MaxDepth bounds the expansion depth of merged symbols: raw inputs
	// have depth 0 and a pair has depth max(depth(a), depth(b))+1.
	// 0 means unlimited.
	MaxDepth int
	// TileSize restricts pairs to symbols living in the same input tile of
	// this many raw indices. 0 disables the tile constraint (global
	// encoding).
	TileSize int
	// Policy selects the merge strategy; the zero value is PolicyLayered.
	Policy Policy
	// MinPairCount is the minimum number of co-occurrences a pair needs to
	// be merged. Values below 2 are treated as 2 (a single occurrence can
	// never pay for its dictionary entry).
	MinPairCount int
}

// DefaultConfig returns the configuration used throughout the paper's main
// experiments: a 4096-entry dictionary, depth 8, 256-wide tiles.
func DefaultConfig() Config {
	return Config{MaxDict: 4096, MaxDepth: 8, TileSize: 256, Policy: PolicyLayered}
}

func (c Config) minCount() int {
	if c.MinPairCount < 2 {
		return 2
	}
	return c.MinPairCount
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.MaxDict < 0 || c.MaxDepth < 0 || c.TileSize < 0 {
		return fmt.Errorf("ipe: negative config value: %+v", c)
	}
	if c.Policy != PolicyLayered && c.Policy != PolicyGreedy {
		return fmt.Errorf("ipe: unknown policy %d", c.Policy)
	}
	return nil
}

// Pair is one dictionary entry: the merged symbol's partial sum is
// vals[A] + vals[B]. A and B are symbol ids (raw input index if < K, or
// K+j for dictionary entry j < current).
type Pair struct {
	A, B int32
}

// Term is one value group of an output row: the row accumulates
// Value · Σ vals[sym] over Syms. Code keeps the integer weight code for the
// exact integer execution path; Value is the dequantized (scale-folded)
// coefficient used by the float path.
type Term struct {
	Code  int32
	Value float32
	Syms  []int32
}

// Row is the encoded form of one output neuron (one weight matrix row).
type Row struct {
	Terms []Term
}

// Program is a complete encoded layer: a pair dictionary in dependency
// order followed by per-row emit terms. Symbol ids 0..K-1 denote raw
// inputs; K+j denotes dictionary entry j.
type Program struct {
	// K is the reduction (input) length of the encoded matrix.
	K int
	// M is the number of output rows.
	M int
	// Pairs is the dictionary in dependency order: Pairs[j] may reference
	// raw symbols and dictionary entries < j only.
	Pairs []Pair
	// Rows holds the per-output emit terms.
	Rows []Row
	// Bits records the quantization bit-width the program was built from.
	Bits int
	// Config echoes the encoder configuration for reporting.
	Config Config
	// Depth[j] is the expansion depth of dictionary entry j.
	Depth []int32

	// compiled caches the lowered executable form (see compile.go),
	// populated lazily by Compiled() under the package compile lock.
	compiled *Compiled
}

// NumSymbols returns the total symbol count, raw inputs plus dictionary.
func (p *Program) NumSymbols() int { return p.K + len(p.Pairs) }

// DictSize returns the number of live dictionary entries.
func (p *Program) DictSize() int { return len(p.Pairs) }

// MaxDepthUsed returns the deepest dictionary entry, 0 if the dictionary is
// empty.
func (p *Program) MaxDepthUsed() int {
	var m int32
	for _, d := range p.Depth {
		if d > m {
			m = d
		}
	}
	return int(m)
}

// Validate checks the structural invariants of the program: dependency
// order of the dictionary, symbol ids in range, and — when the program was
// built with bounds — that the bounds hold.
func (p *Program) Validate() error {
	for j, pr := range p.Pairs {
		lim := int32(p.K + j)
		if pr.A < 0 || pr.B < 0 || pr.A >= lim || pr.B >= lim {
			return fmt.Errorf("ipe: pair %d references symbol out of dependency order (A=%d B=%d limit=%d)",
				j, pr.A, pr.B, lim)
		}
	}
	if len(p.Depth) != len(p.Pairs) {
		return fmt.Errorf("ipe: depth table length %d != dictionary size %d", len(p.Depth), len(p.Pairs))
	}
	if p.Config.MaxDict > 0 && len(p.Pairs) > p.Config.MaxDict {
		return fmt.Errorf("ipe: dictionary size %d exceeds MaxDict %d", len(p.Pairs), p.Config.MaxDict)
	}
	if p.Config.MaxDepth > 0 && p.MaxDepthUsed() > p.Config.MaxDepth {
		return fmt.Errorf("ipe: depth %d exceeds MaxDepth %d", p.MaxDepthUsed(), p.Config.MaxDepth)
	}
	if len(p.Rows) != p.M {
		return fmt.Errorf("ipe: row count %d != M %d", len(p.Rows), p.M)
	}
	n := int32(p.NumSymbols())
	for r, row := range p.Rows {
		for _, t := range row.Terms {
			if t.Code == 0 {
				return fmt.Errorf("ipe: row %d has a zero-code term", r)
			}
			if len(t.Syms) == 0 {
				return fmt.Errorf("ipe: row %d has an empty term", r)
			}
			for _, s := range t.Syms {
				if s < 0 || s >= n {
					return fmt.Errorf("ipe: row %d references invalid symbol %d", r, s)
				}
			}
		}
	}
	return nil
}

// Stats reports what the encoder did.
type Stats struct {
	// Rounds is the number of merge rounds (layered) or iterations
	// (greedy) performed.
	Rounds int
	// Merges is the number of dictionary entries created before dead-entry
	// compaction.
	Merges int
	// DeadPruned is the number of provisional entries removed because no
	// surviving row referenced them.
	DeadPruned int
	// InputSymbols is the total index-stream length before merging
	// (i.e. the number of nonzero weight codes).
	InputSymbols int
	// OutputSymbols is the total stream length after merging.
	OutputSymbols int
}

// CompressionRatio is InputSymbols/OutputSymbols, the stream-length shrink
// achieved by pair merging (≥ 1).
func (s Stats) CompressionRatio() float64 {
	if s.OutputSymbols == 0 {
		return 1
	}
	return float64(s.InputSymbols) / float64(s.OutputSymbols)
}
