package ipe

import (
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Registration shims for the conformance harness (internal/conformance):
// every execution path of an encoded program or layer, enumerated so the
// differential driver can run them all without knowing this package's
// internals. Variants inside one enumeration entry share an accumulation
// order and must be bit-identical; the harness enforces that.

// RowScale exposes the per-row weight scale the integer requantization path
// uses (Value = Scale·Code on every term of the row), so an external
// reference can replicate the float requantization bit for bit.
func (p *Program) RowScale(r int) float32 { return p.rowScale(r) }

// ConvVariant is one execution path of an encoded convolution layer.
type ConvVariant struct {
	Name    string
	UsesPar bool
	F       func(l *ConvLayer, dst, in *tensor.Tensor, par *tensor.Par)
}

// ConvVariants enumerates the float execution paths of ConvLayer. All of
// them are bit-identical for any shard count (documented on
// ForwardIntoPar).
func ConvVariants() []ConvVariant {
	var s tensor.Scratch
	return []ConvVariant{
		{Name: "forward", F: func(l *ConvLayer, dst, in *tensor.Tensor, par *tensor.Par) {
			copy(dst.Data(), l.Forward(in).Data())
		}},
		{Name: "forward-into", F: func(l *ConvLayer, dst, in *tensor.Tensor, par *tensor.Par) {
			l.ForwardInto(dst, in, &s)
		}},
		{Name: "forward-into-par", UsesPar: true, F: func(l *ConvLayer, dst, in *tensor.Tensor, par *tensor.Par) {
			l.ForwardIntoPar(dst, in, par)
		}},
	}
}

// DenseVariant is one execution path of an encoded dense layer.
type DenseVariant struct {
	Name string
	F    func(l *DenseLayer, dst, in *tensor.Tensor)
}

// DenseVariants enumerates the float execution paths of DenseLayer
// (bit-identical: Forward delegates to ForwardInto).
func DenseVariants() []DenseVariant {
	var s tensor.Scratch
	return []DenseVariant{
		{Name: "forward", F: func(l *DenseLayer, dst, in *tensor.Tensor) {
			copy(dst.Data(), l.Forward(in).Data())
		}},
		{Name: "forward-into", F: func(l *DenseLayer, dst, in *tensor.Tensor) {
			l.ForwardInto(dst, in, &s)
		}},
	}
}

// VectorVariant is one execution path of Program evaluation on a single
// input vector.
type VectorVariant struct {
	Name string
	F    func(p *Program, x, y []float32)
}

// VectorVariants enumerates the single-vector float paths: the interpreter
// (Execute delegates to ExecuteScratch) and the compiled executors, which
// must all be bit-identical. The scratch buffers are hoisted into the
// variant closures and grown on demand, so repeated invocations measure
// the kernel rather than the allocator.
func VectorVariants() []VectorVariant {
	var scratch []float32
	var compiledScratch []float32
	return []VectorVariant{
		{Name: "execute", F: func(p *Program, x, y []float32) { p.Execute(x, y) }},
		{Name: "execute-scratch", F: func(p *Program, x, y []float32) {
			if cap(scratch) < p.NumSymbols() {
				scratch = make([]float32, p.NumSymbols())
			}
			p.ExecuteScratch(x, y, scratch[:p.NumSymbols()])
		}},
		{Name: "compiled", F: func(p *Program, x, y []float32) { p.Compiled().Execute(x, y) }},
		{Name: "compiled-scratch", F: func(p *Program, x, y []float32) {
			c := p.Compiled()
			if cap(compiledScratch) < c.ScratchLen() {
				compiledScratch = make([]float32, c.ScratchLen())
			}
			c.ExecuteScratch(x, y, compiledScratch[:c.ScratchLen()])
		}},
	}
}

// MatrixVariant is one execution path of Program evaluation on a [K, P]
// column matrix, writing the [M, P] result into dst.
type MatrixVariant struct {
	Name    string
	UsesPar bool
	F       func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par)
}

// MatrixVariants enumerates the column-blocked matrix paths, interpreted
// and compiled. Shard boundaries are colBlock-aligned, so all variants are
// bit-identical for any shard count (documented on ExecuteMatrixIntoPar),
// and the compiled executors replay the interpreter's arithmetic exactly.
func MatrixVariants() []MatrixVariant {
	var s, cs tensor.Scratch
	return []MatrixVariant{
		{Name: "matrix", F: func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par) {
			copy(dst, p.ExecuteMatrix(tensor.From(cols, p.K, pTotal)).Data())
		}},
		{Name: "matrix-into", F: func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par) {
			p.ExecuteMatrixInto(dst, cols, pTotal, &s)
		}},
		{Name: "matrix-into-par", UsesPar: true, F: func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par) {
			p.ExecuteMatrixIntoPar(dst, cols, pTotal, par)
		}},
		{Name: "compiled-matrix-into", F: func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par) {
			p.Compiled().ExecuteMatrixInto(dst, cols, pTotal, &cs)
		}},
		{Name: "compiled-matrix-into-par", UsesPar: true, F: func(p *Program, dst, cols []float32, pTotal int, par *tensor.Par) {
			p.Compiled().ExecuteMatrixIntoPar(dst, cols, pTotal, par)
		}},
	}
}

// IntVariant is one execution path of exact integer program evaluation.
type IntVariant struct {
	Name string
	F    func(p *Program, x []int32, y []int64)
}

// IntVariants enumerates the integer paths, interpreted and compiled
// (exactly equal by int associativity; the harness checks them bitwise
// against a straight-loop reference). Scratch buffers are reused across
// invocations.
func IntVariants() []IntVariant {
	var vals []int64
	var compiledVals []int64
	return []IntVariant{
		{Name: "int", F: func(p *Program, x []int32, y []int64) { p.ExecuteInt(x, y) }},
		{Name: "int-scratch", F: func(p *Program, x []int32, y []int64) {
			if cap(vals) < p.NumSymbols() {
				vals = make([]int64, p.NumSymbols())
			}
			p.ExecuteIntScratch(x, y, vals[:p.NumSymbols()])
		}},
		{Name: "compiled-int", F: func(p *Program, x []int32, y []int64) { p.Compiled().ExecuteInt(x, y) }},
		{Name: "compiled-int-scratch", F: func(p *Program, x []int32, y []int64) {
			c := p.Compiled()
			if cap(compiledVals) < c.ScratchLen() {
				compiledVals = make([]int64, c.ScratchLen())
			}
			c.ExecuteIntScratch(x, y, compiledVals[:c.ScratchLen()])
		}},
	}
}

// ConvEncoders enumerates the ways a convolution can be encoded into a
// ConvLayer; each encoder yields its own program (and thus its own
// accumulation order), so the harness treats each as a separate family.
type ConvEncoder struct {
	Name string
	F    func(w, bias *tensor.Tensor, spec tensor.ConvSpec, bits int, scheme quant.Scheme, cfg Config) (*ConvLayer, Stats, error)
}

// ConvEncoders returns the per-group and shared-dictionary encoders.
func ConvEncoders() []ConvEncoder {
	return []ConvEncoder{
		{Name: "ipe", F: EncodeConv},
		{Name: "ipe-shared", F: EncodeConvShared},
	}
}
