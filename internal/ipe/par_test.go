package ipe

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// forcedPar builds a Par with real helper tokens so the sharded paths run
// on goroutines even on single-core machines.
func forcedPar(shards int) *tensor.Par {
	return tensor.NewPar(parallel.NewPool(shards), shards)
}

func encodeTestProgram(t *testing.T, m, k int, seed uint64) *Program {
	t.Helper()
	w := tensor.New(m, k)
	tensor.FillGaussian(w, tensor.NewRNG(seed), 0.1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	prog, _, err := Encode(q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestExecuteMatrixIntoParBitIdentical checks the column-sharded matrix
// executor against the serial walk for column counts below, at, and
// straddling the colBlock quantum.
func TestExecuteMatrixIntoParBitIdentical(t *testing.T) {
	prog := encodeTestProgram(t, 16, 32, 41)
	for _, pTotal := range []int{1, 63, 64, 65, 300} {
		cols := tensor.New(prog.K, pTotal)
		tensor.FillGaussian(cols, tensor.NewRNG(42), 1)
		want := make([]float32, prog.M*pTotal)
		var s tensor.Scratch
		prog.ExecuteMatrixInto(want, cols.Data(), pTotal, &s)
		for _, shards := range []int{1, 2, 3, 16} {
			got := make([]float32, prog.M*pTotal)
			prog.ExecuteMatrixIntoPar(got, cols.Data(), pTotal, forcedPar(shards))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pTotal=%d shards=%d: [%d] = %v != serial %v", pTotal, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestConvLayerForwardIntoParBitIdentical checks the fully sharded encoded
// convolution (parallel im2col + parallel program execution) against the
// serial ForwardInto, including a grouped layer.
func TestConvLayerForwardIntoParBitIdentical(t *testing.T) {
	specs := []tensor.ConvSpec{
		{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2},
	}
	for _, spec := range specs {
		w := tensor.New(spec.WeightShape()...)
		tensor.FillGaussian(w, tensor.NewRNG(43), 0.1)
		bias := tensor.New(spec.OutC)
		tensor.FillGaussian(bias, tensor.NewRNG(44), 0.1)
		layer, _, err := EncodeConv(w, bias, spec, 4, quant.PerChannel, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(2, spec.InC, 11, 11)
		tensor.FillGaussian(in, tensor.NewRNG(45), 1)
		oh, ow := spec.Normalize().OutDims(11, 11)
		want := tensor.New(2, spec.OutC, oh, ow)
		var s tensor.Scratch
		layer.ForwardInto(want, in, &s)
		for _, shards := range []int{1, 2, 4, 9} {
			got := tensor.New(2, spec.OutC, oh, ow)
			layer.ForwardIntoPar(got, in, forcedPar(shards))
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("groups=%d shards=%d: [%d] = %v != serial %v",
						spec.Groups, shards, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}
