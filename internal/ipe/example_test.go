package ipe_test

import (
	"fmt"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// ExampleEncode shows the core flow: quantize a weight matrix, index-pair
// encode it, and inspect what the encoder found.
func ExampleEncode() {
	// Two rows sharing the index pair {0,1} under value 1.
	w := tensor.From([]float32{
		1, 1, 0, 0,
		1, 1, 0, 2,
	}, 2, 4)
	q := quant.Quantize(w, 8, quant.PerTensor)
	prog, stats, err := ipe.Encode(q, ipe.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("dictionary entries: %d\n", prog.DictSize())
	fmt.Printf("stream: %d symbols -> %d symbols\n", stats.InputSymbols, stats.OutputSymbols)
	fmt.Printf("round trip ok: %v\n", prog.VerifyAgainst(q) == nil)
	// Output:
	// dictionary entries: 1
	// stream: 5 symbols -> 3 symbols
	// round trip ok: true
}

// ExampleProgram_Execute evaluates an encoded program on an input vector.
func ExampleProgram_Execute() {
	w := tensor.From([]float32{
		2, 2, 0,
		0, 2, 2,
	}, 2, 3)
	q := quant.Quantize(w, 8, quant.PerTensor)
	prog, _, _ := ipe.Encode(q, ipe.Config{})
	y := make([]float32, 2)
	prog.Execute([]float32{1, 10, 100}, y)
	fmt.Println(y[0], y[1])
	// Output: 22 220
}

// ExampleProgram_Cost compares the encoded op count against dense
// execution.
func ExampleProgram_Cost() {
	r := tensor.NewRNG(7)
	w := tensor.New(32, 128)
	tensor.FillGaussian(w, r, 0.1)
	q := quant.Quantize(w, 4, quant.PerTensor)
	prog, _, _ := ipe.Encode(q, ipe.DefaultConfig())
	dense := ipe.DenseCost(32, 128)
	fmt.Printf("ipe needs fewer ops than dense: %v\n", prog.Cost().Total() < dense.Total())
	// Output: ipe needs fewer ops than dense: true
}

// ExampleProgram_MarshalBinary round-trips a program through its wire
// format.
func ExampleProgram_MarshalBinary() {
	w := tensor.From([]float32{1, 1, 1, 1}, 2, 2)
	q := quant.Quantize(w, 8, quant.PerTensor)
	prog, _, _ := ipe.Encode(q, ipe.Config{})
	data, _ := prog.MarshalBinary()
	var back ipe.Program
	if err := back.UnmarshalBinary(data); err != nil {
		panic(err)
	}
	fmt.Printf("loaded K=%d M=%d, valid: %v\n", back.K, back.M, back.Validate() == nil)
	// Output: loaded K=2 M=2, valid: true
}
