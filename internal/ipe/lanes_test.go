package ipe

import (
	"testing"

	"repro/internal/tensor"
)

// TestExecuteScratch4MatchesSingle checks the 4-lane float executor lane by
// lane against ExecuteScratch: each lane must be bit-identical to the
// single-vector run on that lane's input.
func TestExecuteScratch4MatchesSingle(t *testing.T) {
	c := emitProg(t, 16, 150)
	r := tensor.NewRNG(9)
	xs := make([][]float32, 4)
	for l := range xs {
		xs[l] = make([]float32, c.K)
		for i := range xs[l] {
			xs[l][i] = r.Float32()*2 - 1
		}
	}
	ys := make([][]float32, 4)
	for l := range ys {
		ys[l] = make([]float32, c.M)
	}
	lanes := make([]float32, 4*c.ScratchLen())
	c.ExecuteScratch4(xs[0], xs[1], xs[2], xs[3], ys[0], ys[1], ys[2], ys[3], lanes)

	want := make([]float32, c.M)
	scratch := make([]float32, c.ScratchLen())
	for l := 0; l < 4; l++ {
		c.ExecuteScratch(xs[l], want, scratch)
		for i := range want {
			if ys[l][i] != want[i] {
				t.Fatalf("lane %d row %d: %x want %x", l, i, ys[l][i], want[i])
			}
		}
	}
}

// TestExecuteIntScratch4MatchesSingle is the integer analog: exact
// equality with four ExecuteIntScratch calls.
func TestExecuteIntScratch4MatchesSingle(t *testing.T) {
	c := emitProg(t, 64, 27)
	r := tensor.NewRNG(11)
	xs := make([][]int32, 4)
	for l := range xs {
		xs[l] = make([]int32, c.K)
		for i := range xs[l] {
			xs[l][i] = int32(r.Uint64()%255) - 127
		}
	}
	ys := make([][]int64, 4)
	for l := range ys {
		ys[l] = make([]int64, c.M)
	}
	lanes := make([]int64, 4*c.ScratchLen())
	c.ExecuteIntScratch4(xs[0], xs[1], xs[2], xs[3], ys[0], ys[1], ys[2], ys[3], lanes)

	want := make([]int64, c.M)
	scratch := make([]int64, c.ScratchLen())
	for l := 0; l < 4; l++ {
		c.ExecuteIntScratch(xs[l], want, scratch)
		for i := range want {
			if ys[l][i] != want[i] {
				t.Fatalf("lane %d row %d: %d want %d", l, i, ys[l][i], want[i])
			}
		}
	}
}

// TestDenseForwardBatchRemainders drives DenseLayer.ForwardInto across
// batch sizes straddling the 4-lane boundary (1..9), checking every row
// equals the single-vector execution (lane main path + remainder path).
func TestDenseForwardBatchRemainders(t *testing.T) {
	const m, k = 16, 150
	w := tensor.New(m, k)
	tensor.FillGaussian(w, tensor.NewRNG(3), 1)
	layer, _, err := EncodeDense(w, nil, 4, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := layer.Program.Compiled()
	for n := 1; n <= 9; n++ {
		in := tensor.New(n, k)
		tensor.FillGaussian(in, tensor.NewRNG(uint64(n)), 1)
		out := tensor.New(n, m)
		var s tensor.Scratch
		layer.ForwardInto(out, in, &s)
		want := make([]float32, m)
		scratch := make([]float32, c.ScratchLen())
		for b := 0; b < n; b++ {
			c.ExecuteScratch(in.Data()[b*k:(b+1)*k], want, scratch)
			for i := range want {
				if out.Data()[b*m+i] != want[i] {
					t.Fatalf("n=%d row %d out %d: %x want %x", n, b, i, out.Data()[b*m+i], want[i])
				}
			}
		}
	}
}
