package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Clone returns a deep copy of the graph: fresh nodes with re-linked
// inputs, deep-copied parameter and constant tensors, and the same IDs.
// Optimization passes (and runtime.Compile, which runs them) mutate graphs
// in place, so callers that compile one graph several ways — the
// conformance driver compiles one generated graph once per forced
// implementation — clone it per compilation.
func (g *Graph) Clone() *Graph {
	c := &Graph{Nodes: make([]*Node, len(g.Nodes)), nextID: g.nextID}
	old2new := make(map[*Node]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		nn := &Node{
			ID:       n.ID,
			Name:     n.Name,
			Kind:     n.Kind,
			Attrs:    n.Attrs,
			OutShape: n.OutShape.Clone(),
		}
		if n.Value != nil {
			nn.Value = n.Value.Clone()
		}
		for role, t := range n.Params {
			nn.setParam(role, t.Clone())
		}
		c.Nodes[i] = nn
		old2new[n] = nn
	}
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			nin, ok := old2new[in]
			if !ok {
				panic(fmt.Sprintf("graph: Clone: %s has input outside the node list", n))
			}
			c.Nodes[i].Inputs = append(c.Nodes[i].Inputs, nin)
		}
	}
	c.In = old2new[g.In]
	c.Out = old2new[g.Out]
	// Regions hold pointers into the original node list; they are an
	// Optimize-produced annotation and are recomputed on the clone by the
	// next Optimize, so the copy starts with none.
	return c
}

// EvalInto executes the graph through the destination-passing node kernels,
// allocating one plain output tensor per node (no arena, no aliasing). It
// computes the same per-element arithmetic as Eval, so the two are
// bit-identical; the conformance harness checks that.
func EvalInto(g *Graph, input *tensor.Tensor) (*tensor.Tensor, error) {
	return evalIntoPar(g, input, nil)
}

// EvalIntoPar is EvalInto with the heavy operators sharded on the given
// parallelism context; results are bit-identical to EvalInto for any shard
// count (see EvalNodeIntoPar).
func EvalIntoPar(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error) {
	return evalIntoPar(g, input, par)
}

func evalIntoPar(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error) {
	if !input.Shape().Equal(g.In.OutShape) {
		return nil, fmt.Errorf("graph: input shape %v != declared %v", input.Shape(), g.In.OutShape)
	}
	vals := make(map[*Node]*tensor.Tensor)
	vals[g.In] = input
	for _, n := range g.Topo() {
		switch n.Kind {
		case OpInput:
			continue
		case OpConst:
			vals[n] = n.Value
			continue
		}
		if !n.OutShape.Valid() {
			return nil, fmt.Errorf("graph: %s has no inferred shape; run InferShapes first", n)
		}
		out := tensor.New(n.OutShape...)
		var err error
		if par != nil {
			err = EvalNodeIntoPar(out, n, inputsOf(n, vals), par)
		} else {
			err = EvalNodeInto(out, n, inputsOf(n, vals))
		}
		if err != nil {
			return nil, fmt.Errorf("graph: evaluating %s: %w", n, err)
		}
		vals[n] = out
	}
	return vals[g.Out], nil
}

// ExecVariant is one registered whole-graph execution path for the
// conformance harness. All variants share the tensor kernels' per-element
// accumulation order, so they form one bit-identical family.
type ExecVariant struct {
	Name    string
	UsesPar bool
	F       func(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error)
}

// ExecVariants enumerates the reference graph executors: the map-based
// allocating walker and the destination-passing walker, serial and sharded.
func ExecVariants() []ExecVariant {
	return []ExecVariant{
		{Name: "eval", F: func(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error) {
			return Eval(g, input)
		}},
		{Name: "eval-into", F: func(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error) {
			return EvalInto(g, input)
		}},
		{Name: "eval-into-par", UsesPar: true, F: func(g *Graph, input *tensor.Tensor, par *tensor.Par) (*tensor.Tensor, error) {
			return EvalIntoPar(g, input, par)
		}},
	}
}
