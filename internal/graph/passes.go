package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Pass is one graph-to-graph rewrite. Run reports whether it changed the
// graph so the driver can iterate to a fixpoint.
type Pass interface {
	Name() string
	Run(g *Graph) (bool, error)
}

// Optimize runs the standard INSPIRE pre-lowering pipeline to a fixpoint:
// constant folding, batch-norm folding, ReLU fusion, common-subexpression
// elimination and dead-code elimination. Shapes are re-inferred afterwards.
func Optimize(g *Graph) error {
	passes := []Pass{FoldConstants{}, FoldBatchNorm{}, FuseReLU{}, EliminateCommon{}, EliminateDead{}}
	for iter := 0; ; iter++ {
		if iter > 100 {
			return fmt.Errorf("graph: optimization did not reach a fixpoint")
		}
		changed := false
		for _, p := range passes {
			c, err := p.Run(g)
			if err != nil {
				return fmt.Errorf("graph: pass %s: %w", p.Name(), err)
			}
			changed = changed || c
		}
		if !changed {
			break
		}
	}
	if err := g.InferShapes(); err != nil {
		return err
	}
	// Region fusion is an analysis annotation and must see the final
	// structure, so it runs once after the fixpoint (relu-fuse and dce in
	// particular change which chains exist and who consumes whom).
	_, err := RegionFusion{}.Run(g)
	return err
}

// replaceUses rewires every use of old (as an input or as the graph output)
// to point at new.
func replaceUses(g *Graph, old, new *Node) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	if g.Out == old {
		g.Out = new
	}
}

// EliminateDead removes nodes that do not reach the graph output.
type EliminateDead struct{}

// Name implements Pass.
func (EliminateDead) Name() string { return "dce" }

// Run implements Pass.
func (EliminateDead) Run(g *Graph) (bool, error) {
	live := make(map[*Node]bool)
	for _, n := range g.Topo() {
		live[n] = true
	}
	live[g.In] = true
	if len(live) == len(g.Nodes) {
		return false, nil
	}
	kept := g.Nodes[:0]
	for _, n := range g.Nodes {
		if live[n] {
			kept = append(kept, n)
		}
	}
	changed := len(kept) != len(g.Nodes)
	g.Nodes = kept
	return changed, nil
}

// FoldConstants evaluates nodes whose inputs are all constants and replaces
// them with OpConst nodes.
type FoldConstants struct{}

// Name implements Pass.
func (FoldConstants) Name() string { return "const-fold" }

// Run implements Pass.
func (FoldConstants) Run(g *Graph) (bool, error) {
	changed := false
	for _, n := range g.Topo() {
		if n.Kind == OpConst || n.Kind == OpInput || len(n.Inputs) == 0 {
			continue
		}
		allConst := true
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			if in.Kind != OpConst {
				allConst = false
				break
			}
			ins[i] = in.Value
		}
		if !allConst {
			continue
		}
		v, err := EvalNode(n, ins)
		if err != nil {
			return false, err
		}
		folded := g.Const(n.Name+".folded", v)
		replaceUses(g, n, folded)
		changed = true
	}
	return changed, nil
}

// FoldBatchNorm folds an inference batch normalization into the preceding
// convolution's weights and bias when the convolution has no other
// consumer: w'[oc,...] = w[oc,...]·s[oc], b'[oc] = (b[oc]-mean[oc])·s[oc] +
// beta[oc] with s = gamma/sqrt(var+eps).
type FoldBatchNorm struct{}

// Name implements Pass.
func (FoldBatchNorm) Name() string { return "bn-fold" }

// Run implements Pass.
func (FoldBatchNorm) Run(g *Graph) (bool, error) {
	cons := g.Consumers()
	changed := false
	for _, n := range g.Topo() {
		if n.Kind != OpBatchNorm {
			continue
		}
		conv := n.Inputs[0]
		if conv.Kind != OpConv || len(cons[conv]) != 1 {
			continue
		}
		w := conv.Param("weight")
		if w == nil {
			continue
		}
		gamma, beta := n.Param("gamma").Data(), n.Param("beta").Data()
		mean, variance := n.Param("mean").Data(), n.Param("var").Data()
		eps := n.Attrs.Eps
		oc := w.Dim(0)
		perOC := w.NumElements() / oc
		nw := w.Clone()
		nb := tensor.New(oc)
		var oldBias []float32
		if b := conv.Param("bias"); b != nil {
			oldBias = b.Data()
		}
		for c := 0; c < oc; c++ {
			s := gamma[c] / float32(sqrt64(float64(variance[c]+eps)))
			wd := nw.Data()[c*perOC : (c+1)*perOC]
			for i := range wd {
				wd[i] *= s
			}
			var b0 float32
			if oldBias != nil {
				b0 = oldBias[c]
			}
			nb.Data()[c] = (b0-mean[c])*s + beta[c]
		}
		conv.setParam("weight", nw)
		conv.setParam("bias", nb)
		replaceUses(g, n, conv)
		changed = true
	}
	return changed, nil
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// FuseReLU absorbs a ReLU into its producing Conv, Dense or Add node when
// the producer has no other consumer, eliminating one intermediate tensor.
type FuseReLU struct{}

// Name implements Pass.
func (FuseReLU) Name() string { return "relu-fuse" }

// Run implements Pass.
func (FuseReLU) Run(g *Graph) (bool, error) {
	cons := g.Consumers()
	changed := false
	for _, n := range g.Topo() {
		if n.Kind != OpReLU {
			continue
		}
		p := n.Inputs[0]
		switch p.Kind {
		case OpConv, OpDense, OpAdd:
		default:
			continue
		}
		if len(cons[p]) != 1 || p.Attrs.FusedReLU {
			continue
		}
		p.Attrs.FusedReLU = true
		replaceUses(g, n, p)
		changed = true
	}
	return changed, nil
}

// EliminateCommon merges structurally identical nodes: same kind, same
// attributes, identical input nodes and identical parameter tensors (by
// pointer). Classic CSE over the DAG.
type EliminateCommon struct{}

// Name implements Pass.
func (EliminateCommon) Name() string { return "cse" }

// Run implements Pass.
func (EliminateCommon) Run(g *Graph) (bool, error) {
	type key struct {
		kind  OpKind
		attrs Attrs
		sig   string
	}
	seen := make(map[key]*Node)
	changed := false
	for _, n := range g.Topo() {
		if n.Kind == OpInput || n.Kind == OpConst {
			continue
		}
		sig := ""
		for _, in := range n.Inputs {
			sig += fmt.Sprintf("i%d;", in.ID)
		}
		for _, role := range []string{"weight", "bias", "gamma", "beta", "mean", "var"} {
			if p := n.Param(role); p != nil {
				sig += fmt.Sprintf("%s%p;", role, p)
			}
		}
		k := key{n.Kind, n.Attrs, sig}
		if prev, ok := seen[k]; ok {
			replaceUses(g, n, prev)
			changed = true
			continue
		}
		seen[k] = n
	}
	return changed, nil
}
