package graph

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// The pass-pipeline golden tests: three small committed .igm graphs run
// through bn-fold → relu-fuse → region-fusion → dce pass by pass, with the
// structural outcome of every stage pinned and the numeric output checked
// against the unoptimized evaluation. Regenerate the graphs with
//
//	go test ./internal/graph -run TestPassPipeline -update

var update = flag.Bool("update", false, "rewrite the committed pass-pipeline graphs under testdata/")

func gaussT(r *tensor.RNG, scale float64, dims ...int) *tensor.Tensor {
	t := tensor.New(dims...)
	tensor.FillGaussian(t, r, scale)
	return t
}

// bnParams builds per-channel batch-norm parameters with strictly positive
// variance so the fold's rescaling is well-conditioned.
func bnParams(r *tensor.RNG, c int) (gamma, beta, mean, variance *tensor.Tensor) {
	gamma = gaussT(r, 0.5, c)
	beta = gaussT(r, 0.5, c)
	mean = gaussT(r, 0.5, c)
	variance = tensor.New(c)
	for i, v := range gaussT(r, 1, c).Data() {
		variance.Data()[i] = 0.2 + v*v
	}
	return
}

type pipelineCase struct {
	name  string
	build func() *Graph
	check func(t *testing.T, g *Graph)
}

func pipelineCases() []pipelineCase {
	return []pipelineCase{
		{
			// The canonical serving chain: the batch norm folds into the
			// conv, the ReLU fuses into it, and region fusion groups
			// conv+pool into one tiled region.
			name: "conv_bn_relu_pool",
			build: func() *Graph {
				r := tensor.NewRNG(41)
				g := New("in", 1, 3, 8, 8)
				spec := tensor.ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3,
					StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
				x := g.Conv(g.In, "conv1", spec,
					gaussT(r, 0.5, spec.WeightShape()...), gaussT(r, 0.5, 4))
				gamma, beta, mean, variance := bnParams(r, 4)
				x = g.BatchNorm(x, "bn1", gamma, beta, mean, variance, 1e-5)
				x = g.ReLU(x, "relu1")
				x = g.MaxPool(x, "pool1", PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
				g.SetOutput(x)
				return g
			},
			check: func(t *testing.T, g *Graph) {
				if n := countKind(g, OpBatchNorm); n != 0 {
					t.Errorf("bn-fold left %d batch-norm nodes", n)
				}
				if n := countKind(g, OpReLU); n != 0 {
					t.Errorf("relu-fuse left %d explicit ReLU nodes", n)
				}
				if n := len(g.Topo()); n != 3 {
					t.Errorf("got %d reachable nodes after dce, want 3 (input, conv, pool)", n)
				}
				if len(g.Regions) != 1 {
					t.Fatalf("got %d regions, want 1: %+v", len(g.Regions), g.Regions)
				}
				reg := g.Regions[0]
				if reg.Head.Name != "conv1" || !reg.Head.Attrs.FusedReLU {
					t.Errorf("region head = %s (fusedReLU=%v), want conv1 with fused ReLU",
						reg.Head.Name, reg.Head.Attrs.FusedReLU)
				}
				if reg.Pool == nil || reg.Tail != reg.Pool || len(reg.Relus) != 0 {
					t.Errorf("region shape = %+v, want conv head + pool tail, no interior ReLU", reg)
				}
				if got := reg.Name(); got != "conv1+pool1" {
					t.Errorf("region name = %q, want conv1+pool1", got)
				}
			},
		},
		{
			// A dense chain with a double ReLU: the first rectifier fuses
			// into the dense node, the second survives as the interior of an
			// elementwise region (the runtime replays it in place).
			name: "dense_relu",
			build: func() *Graph {
				r := tensor.NewRNG(42)
				g := New("in", 1, 6)
				x := g.Dense(g.In, "fc1", gaussT(r, 0.5, 5, 6), gaussT(r, 0.5, 5))
				x = g.ReLU(x, "relu_a")
				x = g.ReLU(x, "relu_b")
				x = g.Dense(x, "fc2", gaussT(r, 0.5, 3, 5), gaussT(r, 0.5, 3))
				g.SetOutput(x)
				return g
			},
			check: func(t *testing.T, g *Graph) {
				if n := countKind(g, OpReLU); n != 1 {
					t.Errorf("got %d explicit ReLU nodes, want 1 (relu_a fused, relu_b kept)", n)
				}
				if len(g.Regions) != 1 {
					t.Fatalf("got %d regions, want 1: %+v", len(g.Regions), g.Regions)
				}
				reg := g.Regions[0]
				if reg.Head.Name != "fc1" || !reg.Head.Attrs.FusedReLU {
					t.Errorf("region head = %s (fusedReLU=%v), want fc1 with fused ReLU",
						reg.Head.Name, reg.Head.Attrs.FusedReLU)
				}
				if reg.Pool != nil || len(reg.Relus) != 1 || reg.Relus[0].Name != "relu_b" {
					t.Errorf("region shape = %+v, want dense head + interior relu_b, no pool", reg)
				}
				if got := reg.Name(); got != "fc1+relu_b" {
					t.Errorf("region name = %q, want fc1+relu_b", got)
				}
			},
		},
		{
			// A stem feeding two branches: the stem's ReLU still fuses (the
			// stem had a single consumer at fuse time), but the stem itself
			// must not head a region — its output has two consumers and must
			// materialize. Each branch fuses into its own conv+pool region.
			name: "multi_consumer",
			build: func() *Graph {
				r := tensor.NewRNG(43)
				g := New("in", 1, 2, 8, 8)
				spec := func(in, out int) tensor.ConvSpec {
					return tensor.ConvSpec{InC: in, OutC: out, KH: 3, KW: 3,
						StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
				}
				s0 := spec(2, 3)
				stem := g.Conv(g.In, "stem", s0, gaussT(r, 0.5, s0.WeightShape()...), gaussT(r, 0.5, 3))
				stem = g.ReLU(stem, "stem_relu")
				var branches []*Node
				for _, name := range []string{"a", "b"} {
					sp := spec(3, 2)
					x := g.Conv(stem, "br_"+name, sp,
						gaussT(r, 0.5, sp.WeightShape()...), gaussT(r, 0.5, 2))
					x = g.ReLU(x, "br_"+name+"_relu")
					x = g.MaxPool(x, "br_"+name+"_pool", PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
					branches = append(branches, x)
				}
				g.SetOutput(g.Concat("cat", branches...))
				return g
			},
			check: func(t *testing.T, g *Graph) {
				if n := countKind(g, OpReLU); n != 0 {
					t.Errorf("got %d explicit ReLU nodes, want 0 (all single-consumer producers)", n)
				}
				if len(g.Regions) != 2 {
					t.Fatalf("got %d regions, want 2 branch regions: %+v", len(g.Regions), g.Regions)
				}
				for _, reg := range g.Regions {
					if reg.Head.Name == "stem" {
						t.Errorf("stem headed a region; its two consumers require it to materialize")
					}
					if reg.Pool == nil || !reg.Head.Attrs.FusedReLU {
						t.Errorf("branch region %s: want fused-ReLU conv head + pool tail, got %+v",
							reg.Name(), reg)
					}
				}
				if a, b := g.Regions[0].Name(), g.Regions[1].Name(); a != "br_a+br_a_pool" || b != "br_b+br_b_pool" {
					t.Errorf("region names = %q, %q; want br_a+br_a_pool, br_b+br_b_pool", a, b)
				}
				stem := findNode(g, "stem")
				if stem == nil || !stem.Attrs.FusedReLU {
					t.Errorf("stem conv should carry the fused ReLU")
				}
			},
		},
	}
}

func findNode(g *Graph, name string) *Node {
	for _, n := range g.Topo() {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TestPassPipelineGolden loads each committed graph, pins its byte-level
// serialization (Save∘ReadGraph must reproduce the file), runs the pass
// pipeline stage by stage, checks the optimized graph still computes the
// same function, and asserts the expected structure and region annotations.
func TestPassPipelineGolden(t *testing.T) {
	for _, c := range pipelineCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", c.name+".igm")
			if *update {
				var buf bytes.Buffer
				if err := c.build().Save(&buf); err != nil {
					t.Fatalf("save: %v", err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("write %s: %v", path, err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing committed graph (regenerate with -update): %v", err)
			}
			g, err := ReadGraph(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadGraph: %v", err)
			}

			// Round-trip determinism: re-serializing the loaded graph must
			// reproduce the committed bytes exactly.
			var buf bytes.Buffer
			if err := g.Save(&buf); err != nil {
				t.Fatalf("re-save: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), raw) {
				t.Errorf("serialization round-trip diverged from the committed file")
			}

			in := tensor.New(g.In.OutShape...)
			tensor.FillGaussian(in, tensor.NewRNG(7), 1)
			before, err := Eval(g, in)
			if err != nil {
				t.Fatalf("eval before pipeline: %v", err)
			}
			want := append([]float32(nil), before.Data()...)

			for _, p := range []Pass{FoldBatchNorm{}, FuseReLU{}, RegionFusion{}, EliminateDead{}} {
				if _, err := p.Run(g); err != nil {
					t.Fatalf("pass %s: %v", p.Name(), err)
				}
			}
			if err := g.InferShapes(); err != nil {
				t.Fatalf("InferShapes after pipeline: %v", err)
			}

			after, err := Eval(g, in)
			if err != nil {
				t.Fatalf("eval after pipeline: %v", err)
			}
			if len(after.Data()) != len(want) {
				t.Fatalf("output size changed: %d -> %d", len(want), len(after.Data()))
			}
			for i, got := range after.Data() {
				// bn-fold rescales weights, so outputs match only up to
				// float rounding of the refactored arithmetic.
				d := float64(got - want[i])
				if d < 0 {
					d = -d
				}
				m := float64(want[i])
				if m < 0 {
					m = -m
				}
				if d > 1e-4+1e-4*m {
					t.Fatalf("output[%d] diverged after pipeline: got %v, want %v", i, got, want[i])
				}
			}

			c.check(t, g)
		})
	}
}
