package graph

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// corpusGraphs builds a few representative graphs for the deserialization
// seed corpus: a conv/pool/dense classifier, a residual block, and a
// minimal input→dense chain.
func corpusGraphs() []*Graph {
	var gs []*Graph

	g := New("mini", 1, 2, 6, 6)
	spec := tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(1), 0.5)
	b := tensor.New(3)
	x := g.Conv(g.In, "c1", spec, w, b)
	x = g.ReLU(x, "r1")
	x = g.MaxPool(x, "p1", PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	x = g.Flatten(x, "f")
	fcw := tensor.New(4, 3*3*3)
	tensor.FillGaussian(fcw, tensor.NewRNG(2), 0.1)
	x = g.Dense(x, "fc", fcw, nil)
	g.SetOutput(g.Softmax(x, "sm"))
	gs = append(gs, g)

	g = New("res", 1, 2, 5, 5)
	spec = tensor.ConvSpec{InC: 2, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w = tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(3), 0.5)
	c := g.Conv(g.In, "c", spec, w, nil)
	x = g.Add(c, g.In, "add")
	x = g.GlobalAvgPool(x, "gap")
	g.SetOutput(g.Flatten(x, "f"))
	gs = append(gs, g)

	g = New("dense-only", 2, 3)
	dw := tensor.New(2, 3)
	tensor.FillGaussian(dw, tensor.NewRNG(4), 1)
	g.SetOutput(g.Dense(g.In, "fc", dw, tensor.New(2)))
	gs = append(gs, g)

	return gs
}

// FuzzGraphDeserialize feeds arbitrary bytes to ReadGraph. The invariants:
// ReadGraph never panics (malformed streams return errors), and any stream
// it accepts round-trips — Save produces bytes that parse again and
// re-serialize byte-identically.
func FuzzGraphDeserialize(f *testing.F) {
	for _, g := range corpusGraphs() {
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("IGM1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := g.Save(&b1); err != nil {
			t.Fatalf("accepted graph fails to save: %v", err)
		}
		g2, err := ReadGraph(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("saved graph fails to reload: %v", err)
		}
		var b2 bytes.Buffer
		if err := g2.Save(&b2); err != nil {
			t.Fatalf("reloaded graph fails to save: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("save/load/save is not byte-stable: %d vs %d bytes", b1.Len(), b2.Len())
		}
	})
}

// TestReadGraphRejectsHugeTensorHeader pins the chunked-read hardening: a
// tiny stream claiming a maximal tensor must fail fast on truncation, not
// allocate the claimed size up front.
func TestReadGraphRejectsHugeTensorHeader(t *testing.T) {
	g := corpusGraphs()[2]
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The dense weight tensor [2, 3] serializes as rank=2, dims 2 and 3.
	// Inflate the dims to claim ~2^28 elements with no payload behind them.
	i := bytes.Index(data, []byte{2, 2, 0, 0, 0, 3, 0, 0, 0})
	if i < 0 {
		t.Fatal("could not locate the weight tensor header in the stream")
	}
	data = append([]byte(nil), data[:i+1]...)
	data = append(data, []byte{0, 0, 255, 0, 0, 0, 255, 0}...) // dims 0xff0000 × 0xff00
	if _, err := ReadGraph(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated stream with a huge tensor header was accepted")
	}
}
