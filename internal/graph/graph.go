// Package graph provides the computational-graph intermediate
// representation of the INSPIRE compiler stack: typed operator nodes, shape
// inference, a reference executor, and the optimization passes (constant
// folding, batch-norm folding, ReLU fusion, dead-code and common-subgraph
// elimination) that run before per-operator lowering and encoding.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// OpKind enumerates the operator types of the IR.
type OpKind int

// Operator kinds. Shapes below use NCHW activations.
const (
	// OpInput is the graph input placeholder.
	OpInput OpKind = iota
	// OpConst produces a constant tensor (stored in Node.Value).
	OpConst
	// OpConv is 2-D convolution; attrs carry the tensor.ConvSpec.
	OpConv
	// OpDense is a fully connected layer on [n, k] inputs.
	OpDense
	// OpBatchNorm is inference-mode batch normalization.
	OpBatchNorm
	// OpReLU is the rectifier.
	OpReLU
	// OpMaxPool is 2-D max pooling.
	OpMaxPool
	// OpAvgPool is 2-D average pooling.
	OpAvgPool
	// OpGlobalAvgPool reduces spatial dims to 1x1.
	OpGlobalAvgPool
	// OpAdd is elementwise addition of two same-shape inputs.
	OpAdd
	// OpFlatten reshapes [n, c, h, w] to [n, c*h*w].
	OpFlatten
	// OpSoftmax applies softmax over the last dim of a rank-2 tensor.
	OpSoftmax
	// OpConcat concatenates rank-4 inputs along the channel dimension.
	OpConcat
)

var opNames = map[OpKind]string{
	OpInput: "Input", OpConst: "Const", OpConv: "Conv2D", OpDense: "Dense",
	OpBatchNorm: "BatchNorm", OpReLU: "ReLU", OpMaxPool: "MaxPool",
	OpAvgPool: "AvgPool", OpGlobalAvgPool: "GlobalAvgPool", OpAdd: "Add",
	OpFlatten: "Flatten", OpSoftmax: "Softmax", OpConcat: "Concat",
}

// String returns the operator's conventional name.
func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// PoolAttrs parameterizes max/avg pooling.
type PoolAttrs struct {
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
}

// Attrs carries the operator-specific parameters of a node. Only the fields
// relevant to the node's kind are meaningful.
type Attrs struct {
	Conv      tensor.ConvSpec
	Pool      PoolAttrs
	Eps       float32 // batch norm epsilon
	FusedReLU bool    // set by the fusion pass on Conv/Dense/Add producers
}

// Node is one operator instance in a graph.
type Node struct {
	ID     int
	Name   string
	Kind   OpKind
	Inputs []*Node
	Attrs  Attrs
	// Params holds learned tensors by role: "weight", "bias", "gamma",
	// "beta", "mean", "var".
	Params map[string]*tensor.Tensor
	// Value is the payload of OpConst nodes.
	Value *tensor.Tensor
	// OutShape is filled by InferShapes.
	OutShape tensor.Shape
}

// Param returns the named parameter tensor or nil.
func (n *Node) Param(role string) *tensor.Tensor {
	if n.Params == nil {
		return nil
	}
	return n.Params[role]
}

func (n *Node) setParam(role string, t *tensor.Tensor) {
	if t == nil {
		return
	}
	if n.Params == nil {
		n.Params = make(map[string]*tensor.Tensor)
	}
	n.Params[role] = t
}

// String identifies the node for error messages.
func (n *Node) String() string { return fmt.Sprintf("%s#%d(%s)", n.Kind, n.ID, n.Name) }

// Graph is a single-input single-output computational graph.
type Graph struct {
	Nodes  []*Node
	In     *Node
	Out    *Node
	nextID int

	// Regions holds the fusible operator chains found by the RegionFusion
	// analysis pass (see fusion.go). It is an annotation over Nodes, not
	// part of the graph structure: serialization ignores it, Clone drops
	// it, and Optimize recomputes it after every structural change.
	Regions []Region
}

// New creates a graph with one input node of the given shape.
func New(name string, inputShape ...int) *Graph {
	g := &Graph{}
	g.In = g.add(&Node{Name: name, Kind: OpInput, OutShape: tensor.Shape(inputShape).Clone()})
	g.Out = g.In
	return g
}

func (g *Graph) add(n *Node) *Node {
	n.ID = g.nextID
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// Const adds a constant node.
func (g *Graph) Const(name string, v *tensor.Tensor) *Node {
	return g.add(&Node{Name: name, Kind: OpConst, Value: v})
}

// Conv adds a convolution node consuming x.
func (g *Graph) Conv(x *Node, name string, spec tensor.ConvSpec, w, b *tensor.Tensor) *Node {
	n := &Node{Name: name, Kind: OpConv, Inputs: []*Node{x}, Attrs: Attrs{Conv: spec.Normalize()}}
	n.setParam("weight", w)
	n.setParam("bias", b)
	return g.add(n)
}

// Dense adds a fully connected node consuming x.
func (g *Graph) Dense(x *Node, name string, w, b *tensor.Tensor) *Node {
	n := &Node{Name: name, Kind: OpDense, Inputs: []*Node{x}}
	n.setParam("weight", w)
	n.setParam("bias", b)
	return g.add(n)
}

// BatchNorm adds an inference batch-normalization node.
func (g *Graph) BatchNorm(x *Node, name string, gamma, beta, mean, variance *tensor.Tensor, eps float32) *Node {
	n := &Node{Name: name, Kind: OpBatchNorm, Inputs: []*Node{x}, Attrs: Attrs{Eps: eps}}
	n.setParam("gamma", gamma)
	n.setParam("beta", beta)
	n.setParam("mean", mean)
	n.setParam("var", variance)
	return g.add(n)
}

// ReLU adds a rectifier node.
func (g *Graph) ReLU(x *Node, name string) *Node {
	return g.add(&Node{Name: name, Kind: OpReLU, Inputs: []*Node{x}})
}

// MaxPool adds a max pooling node.
func (g *Graph) MaxPool(x *Node, name string, p PoolAttrs) *Node {
	return g.add(&Node{Name: name, Kind: OpMaxPool, Inputs: []*Node{x}, Attrs: Attrs{Pool: p}})
}

// AvgPool adds an average pooling node.
func (g *Graph) AvgPool(x *Node, name string, p PoolAttrs) *Node {
	return g.add(&Node{Name: name, Kind: OpAvgPool, Inputs: []*Node{x}, Attrs: Attrs{Pool: p}})
}

// GlobalAvgPool adds a global average pooling node.
func (g *Graph) GlobalAvgPool(x *Node, name string) *Node {
	return g.add(&Node{Name: name, Kind: OpGlobalAvgPool, Inputs: []*Node{x}})
}

// Add adds an elementwise addition node.
func (g *Graph) Add(a, b *Node, name string) *Node {
	return g.add(&Node{Name: name, Kind: OpAdd, Inputs: []*Node{a, b}})
}

// Flatten adds a flatten node.
func (g *Graph) Flatten(x *Node, name string) *Node {
	return g.add(&Node{Name: name, Kind: OpFlatten, Inputs: []*Node{x}})
}

// Softmax adds a softmax node.
func (g *Graph) Softmax(x *Node, name string) *Node {
	return g.add(&Node{Name: name, Kind: OpSoftmax, Inputs: []*Node{x}})
}

// Concat adds a channel-dimension concatenation node over two or more
// rank-4 inputs.
func (g *Graph) Concat(name string, xs ...*Node) *Node {
	if len(xs) < 2 {
		panic("graph: Concat needs at least two inputs")
	}
	return g.add(&Node{Name: name, Kind: OpConcat, Inputs: xs})
}

// SetOutput marks n as the graph output.
func (g *Graph) SetOutput(n *Node) { g.Out = n }

// Topo returns the nodes in a deterministic topological order ending at the
// output. Nodes not reaching the output are excluded.
func (g *Graph) Topo() []*Node {
	var order []*Node
	state := make(map[*Node]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(n *Node)
	visit = func(n *Node) {
		if state[n] == 2 {
			return
		}
		if state[n] == 1 {
			panic(fmt.Sprintf("graph: cycle through %s", n))
		}
		state[n] = 1
		for _, in := range n.Inputs {
			visit(in)
		}
		state[n] = 2
		order = append(order, n)
	}
	visit(g.Out)
	return order
}

// Consumers returns, for each node, the nodes that consume its output,
// considering only nodes reachable from the graph output.
func (g *Graph) Consumers() map[*Node][]*Node {
	cons := make(map[*Node][]*Node)
	for _, n := range g.Topo() {
		for _, in := range n.Inputs {
			cons[in] = append(cons[in], n)
		}
	}
	return cons
}

// InferShapes computes OutShape for every node reachable from the output.
func (g *Graph) InferShapes() error {
	for _, n := range g.Topo() {
		s, err := inferShape(n)
		if err != nil {
			return fmt.Errorf("graph: %s: %w", n, err)
		}
		n.OutShape = s
	}
	return nil
}

func inferShape(n *Node) (tensor.Shape, error) {
	// Validate arity before touching n.Inputs: deserialized graphs can
	// carry any input list, and shape inference must reject them with an
	// error, not an index panic.
	switch {
	case n.Kind == OpInput || n.Kind == OpConst:
		if len(n.Inputs) != 0 {
			return nil, fmt.Errorf("%v takes no inputs, has %d", n.Kind, len(n.Inputs))
		}
	case n.Kind == OpAdd:
		if len(n.Inputs) != 2 {
			return nil, fmt.Errorf("add takes 2 inputs, has %d", len(n.Inputs))
		}
	case n.Kind == OpConcat:
		if len(n.Inputs) == 0 {
			return nil, fmt.Errorf("concat needs at least one input")
		}
	default:
		if len(n.Inputs) != 1 {
			return nil, fmt.Errorf("%v takes 1 input, has %d", n.Kind, len(n.Inputs))
		}
	}
	in := func(i int) tensor.Shape { return n.Inputs[i].OutShape }
	switch n.Kind {
	case OpInput:
		if !n.OutShape.Valid() {
			return nil, fmt.Errorf("input has invalid shape %v", n.OutShape)
		}
		return n.OutShape, nil
	case OpConst:
		if n.Value == nil {
			return nil, fmt.Errorf("const has no value")
		}
		return n.Value.Shape(), nil
	case OpConv:
		s := in(0)
		if s.Rank() != 4 {
			return nil, fmt.Errorf("conv input must be rank 4, got %v", s)
		}
		spec := n.Attrs.Conv
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if s[1] != spec.InC {
			return nil, fmt.Errorf("conv input channels %d != spec.InC %d", s[1], spec.InC)
		}
		oh, ow := spec.OutDims(s[2], s[3])
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("conv output is empty (%dx%d)", oh, ow)
		}
		return tensor.Shape{s[0], spec.OutC, oh, ow}, nil
	case OpDense:
		s := in(0)
		if s.Rank() != 2 {
			return nil, fmt.Errorf("dense input must be rank 2, got %v", s)
		}
		w := n.Param("weight")
		if w == nil || w.Shape().Rank() != 2 {
			return nil, fmt.Errorf("dense needs [m,k] weight")
		}
		if w.Dim(1) != s[1] {
			return nil, fmt.Errorf("dense weight k %d != input width %d", w.Dim(1), s[1])
		}
		return tensor.Shape{s[0], w.Dim(0)}, nil
	case OpBatchNorm, OpReLU:
		return in(0), nil
	case OpMaxPool, OpAvgPool:
		s := in(0)
		if s.Rank() != 4 {
			return nil, fmt.Errorf("pool input must be rank 4, got %v", s)
		}
		p := n.Attrs.Pool
		if p.KH <= 0 || p.KW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 || p.PadH < 0 || p.PadW < 0 {
			return nil, fmt.Errorf("invalid pool attrs %+v", p)
		}
		oh := (s[2]+2*p.PadH-p.KH)/p.StrideH + 1
		ow := (s[3]+2*p.PadW-p.KW)/p.StrideW + 1
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("pool output is empty (%dx%d)", oh, ow)
		}
		return tensor.Shape{s[0], s[1], oh, ow}, nil
	case OpGlobalAvgPool:
		s := in(0)
		if s.Rank() != 4 {
			return nil, fmt.Errorf("global pool input must be rank 4, got %v", s)
		}
		return tensor.Shape{s[0], s[1], 1, 1}, nil
	case OpAdd:
		a, b := in(0), in(1)
		if !a.Equal(b) {
			return nil, fmt.Errorf("add operands differ: %v vs %v", a, b)
		}
		return a, nil
	case OpFlatten:
		s := in(0)
		if s.Rank() < 1 {
			return nil, fmt.Errorf("flatten input must have a batch dim, got %v", s)
		}
		return tensor.Shape{s[0], s.NumElements() / s[0]}, nil
	case OpSoftmax:
		s := in(0)
		if s.Rank() != 2 {
			return nil, fmt.Errorf("softmax input must be rank 2, got %v", s)
		}
		return s, nil
	case OpConcat:
		first := in(0)
		if first.Rank() != 4 {
			return nil, fmt.Errorf("concat inputs must be rank 4, got %v", first)
		}
		chans := 0
		for i := range n.Inputs {
			s := in(i)
			if s.Rank() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3] {
				return nil, fmt.Errorf("concat operand %d shape %v incompatible with %v", i, s, first)
			}
			chans += s[1]
		}
		return tensor.Shape{first[0], chans, first[2], first[3]}, nil
	default:
		return nil, fmt.Errorf("unknown op kind %d", n.Kind)
	}
}

// NumParams returns the total learned parameter count of the graph.
func (g *Graph) NumParams() int64 {
	var total int64
	for _, n := range g.Topo() {
		roles := make([]string, 0, len(n.Params))
		for r := range n.Params {
			roles = append(roles, r)
		}
		sort.Strings(roles)
		for _, r := range roles {
			total += int64(n.Params[r].NumElements())
		}
	}
	return total
}

// MACs returns the total multiply-accumulate count of all conv and dense
// nodes for the graph's inferred shapes. InferShapes must have run.
func (g *Graph) MACs() int64 {
	var total int64
	for _, n := range g.Topo() {
		switch n.Kind {
		case OpConv:
			s := n.Inputs[0].OutShape
			total += n.Attrs.Conv.MACs(s[0], s[2], s[3])
		case OpDense:
			w := n.Param("weight")
			total += int64(n.Inputs[0].OutShape[0]) * int64(w.Dim(0)) * int64(w.Dim(1))
		}
	}
	return total
}
