package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func countKind(g *Graph, k OpKind) int {
	n := 0
	for _, node := range g.Topo() {
		if node.Kind == k {
			n++
		}
	}
	return n
}

func TestFoldBatchNormPreservesOutput(t *testing.T) {
	g, in := tinyConvGraph(10)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	before, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := (FoldBatchNorm{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("bn-fold should fire on conv→bn")
	}
	if countKind(g, OpBatchNorm) != 0 {
		t.Fatal("batch norm should be gone")
	}
	after, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(after, before, 1e-4, 1e-4) {
		t.Fatalf("bn-fold changed the output: max diff %v", tensor.MaxAbsDiff(after, before))
	}
}

func TestFoldBatchNormSkipsSharedConv(t *testing.T) {
	// The conv output feeds both a BN and another consumer: folding would
	// corrupt the second consumer, so the pass must skip it.
	r := tensor.NewRNG(11)
	g := New("in", 1, 2, 4, 4)
	spec := tensor.ConvSpec{InC: 2, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 1)
	c := g.Conv(g.In, "conv", spec, w, nil)
	ones, zeros := tensor.New(2).Fill(1), tensor.New(2)
	bn := g.BatchNorm(c, "bn", ones, zeros, zeros, ones, 1e-5)
	g.SetOutput(g.Add(bn, c, "add"))
	changed, err := (FoldBatchNorm{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("bn-fold must not fire when the conv has other consumers")
	}
}

func TestFuseReLU(t *testing.T) {
	g, in := tinyConvGraph(12)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if countKind(g, OpReLU) != 0 {
		t.Fatal("relu should be fused into the conv")
	}
	out, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatal("fused ReLU must still rectify")
		}
	}
}

func TestFuseReLUSkipsSharedProducer(t *testing.T) {
	g := New("in", 1, 2)
	w := tensor.New(2, 2).Fill(1)
	d := g.Dense(g.In, "dense", w, nil)
	rl := g.ReLU(d, "relu")
	g.SetOutput(g.Add(rl, d, "add")) // d also consumed raw
	changed, err := (FuseReLU{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("relu-fuse must not fire when the producer has other consumers")
	}
}

func TestFoldConstants(t *testing.T) {
	g := New("in", 1, 4)
	c1 := g.Const("c1", tensor.From([]float32{1, 2, 3, 4}, 1, 4))
	c2 := g.Const("c2", tensor.From([]float32{10, 20, 30, 40}, 1, 4))
	sum := g.Add(c1, c2, "sum")
	g.SetOutput(g.Add(sum, g.In, "out"))
	changed, err := (FoldConstants{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("const-fold should fire on const+const")
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	out, err := Eval(g, tensor.New(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 44}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("folded output = %v, want %v", out.Data(), want)
		}
	}
	// The folded add must now be a constant input to the final add.
	if g.Out.Inputs[0].Kind != OpConst {
		t.Fatal("sum should have been replaced by a constant")
	}
}

func TestEliminateDead(t *testing.T) {
	g, _ := tinyConvGraph(13)
	g.ReLU(g.In, "dead1")
	g.ReLU(g.In, "dead2")
	total := len(g.Nodes)
	changed, err := (EliminateDead{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || len(g.Nodes) != total-2 {
		t.Fatalf("dce should remove 2 nodes: had %d, now %d", total, len(g.Nodes))
	}
}

func TestEliminateCommon(t *testing.T) {
	g := New("in", 1, 2)
	w := tensor.New(2, 2).Fill(1)
	a := g.Dense(g.In, "a", w, nil)
	b := g.Dense(g.In, "b", w, nil) // structurally identical to a
	g.SetOutput(g.Add(a, b, "add"))
	changed, err := (EliminateCommon{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("cse should merge identical dense nodes")
	}
	if g.Out.Inputs[0] != g.Out.Inputs[1] {
		t.Fatal("add operands should be the same node after cse")
	}
}

func TestCSEDistinguishesDifferentWeights(t *testing.T) {
	g := New("in", 1, 2)
	w1 := tensor.New(2, 2).Fill(1)
	w2 := tensor.New(2, 2).Fill(2)
	a := g.Dense(g.In, "a", w1, nil)
	b := g.Dense(g.In, "b", w2, nil)
	g.SetOutput(g.Add(a, b, "add"))
	changed, err := (EliminateCommon{}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("cse must not merge nodes with different weights")
	}
}

func TestOptimizePreservesOutputProperty(t *testing.T) {
	// The whole pipeline must be semantics-preserving on random small
	// conv/bn/relu/add graphs.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		g := New("in", 1, 2, 6, 6)
		spec := tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		w := tensor.New(spec.WeightShape()...)
		tensor.FillGaussian(w, r, 0.3)
		x := g.Conv(g.In, "conv", spec, w, nil)
		if r.Intn(2) == 1 {
			gamma, beta := tensor.New(3).Fill(1.1), tensor.New(3).Fill(0.2)
			mean, variance := tensor.New(3).Fill(0.1), tensor.New(3).Fill(0.8)
			x = g.BatchNorm(x, "bn", gamma, beta, mean, variance, 1e-5)
		}
		if r.Intn(2) == 1 {
			x = g.ReLU(x, "relu")
		}
		g.SetOutput(g.Flatten(x, "flat"))
		if err := g.InferShapes(); err != nil {
			return false
		}
		in := tensor.New(1, 2, 6, 6)
		tensor.FillGaussian(in, r, 1)
		before, err := Eval(g, in)
		if err != nil {
			return false
		}
		if err := Optimize(g); err != nil {
			return false
		}
		after, err := Eval(g, in)
		if err != nil {
			return false
		}
		return tensor.AllClose(after, before, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	g, _ := tinyConvGraph(14)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	n1 := len(g.Topo())
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if len(g.Topo()) != n1 {
		t.Fatal("second Optimize changed the graph")
	}
}
