package graph

import (
	"testing"

	"repro/internal/tensor"
)

// tinyConvGraph builds input → conv → bn → relu → softmax-ready flatten.
func tinyConvGraph(seed uint64) (*Graph, *tensor.Tensor) {
	r := tensor.NewRNG(seed)
	g := New("in", 1, 3, 8, 8)
	spec := tensor.ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	b := tensor.New(4)
	tensor.FillGaussian(b, r, 0.1)
	c := g.Conv(g.In, "conv", spec, w, b)
	gamma := tensor.New(4).Fill(1.2)
	beta := tensor.New(4).Fill(0.1)
	mean := tensor.New(4).Fill(0.05)
	variance := tensor.New(4).Fill(0.9)
	bn := g.BatchNorm(c, "bn", gamma, beta, mean, variance, 1e-5)
	rl := g.ReLU(bn, "relu")
	g.SetOutput(g.Flatten(rl, "flat"))
	in := tensor.New(1, 3, 8, 8)
	tensor.FillGaussian(in, r, 1)
	return g, in
}

func TestInferShapes(t *testing.T) {
	g, _ := tinyConvGraph(1)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Out.OutShape.Equal(tensor.Shape{1, 4 * 8 * 8}) {
		t.Fatalf("output shape = %v", g.Out.OutShape)
	}
}

func TestInferShapesRejectsChannelMismatch(t *testing.T) {
	g := New("in", 1, 3, 8, 8)
	spec := tensor.ConvSpec{InC: 5, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	w := tensor.New(spec.WeightShape()...)
	g.SetOutput(g.Conv(g.In, "conv", spec, w, nil))
	if err := g.InferShapes(); err == nil {
		t.Fatal("channel mismatch must be rejected")
	}
}

func TestInferShapesRejectsAddMismatch(t *testing.T) {
	g := New("in", 1, 2)
	w1 := tensor.New(3, 2)
	w2 := tensor.New(4, 2)
	a := g.Dense(g.In, "a", w1, nil)
	b := g.Dense(g.In, "b", w2, nil)
	g.SetOutput(g.Add(a, b, "add"))
	if err := g.InferShapes(); err == nil {
		t.Fatal("add shape mismatch must be rejected")
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	g, _ := tinyConvGraph(2)
	pos := make(map[*Node]int)
	for i, n := range g.Topo() {
		pos[n] = i
	}
	for _, n := range g.Topo() {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Fatalf("%s appears before its input %s", n, in)
			}
		}
	}
}

func TestTopoExcludesUnreachable(t *testing.T) {
	g, _ := tinyConvGraph(3)
	// Dangling node not connected to output.
	g.ReLU(g.In, "dangling")
	for _, n := range g.Topo() {
		if n.Name == "dangling" {
			t.Fatal("Topo must exclude nodes that do not reach the output")
		}
	}
}

func TestEvalRunsGraph(t *testing.T) {
	g, in := tinyConvGraph(4)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	out, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(g.Out.OutShape) {
		t.Fatalf("eval shape %v != inferred %v", out.Shape(), g.Out.OutShape)
	}
	// ReLU output must be non-negative.
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatal("post-ReLU output must be non-negative")
		}
	}
}

func TestEvalRejectsWrongInputShape(t *testing.T) {
	g, _ := tinyConvGraph(5)
	if _, err := Eval(g, tensor.New(1, 3, 4, 4)); err == nil {
		t.Fatal("wrong input shape must be rejected")
	}
}

func TestConsumers(t *testing.T) {
	g := New("in", 1, 2)
	w := tensor.New(2, 2)
	a := g.Dense(g.In, "a", w, nil)
	b := g.Dense(g.In, "b", w, nil)
	g.SetOutput(g.Add(a, b, "add"))
	cons := g.Consumers()
	if len(cons[g.In]) != 2 {
		t.Fatalf("input should have 2 consumers, got %d", len(cons[g.In]))
	}
	if len(cons[a]) != 1 || cons[a][0].Name != "add" {
		t.Fatal("a should feed add")
	}
}

func TestNumParamsAndMACs(t *testing.T) {
	g, _ := tinyConvGraph(6)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	// conv weight 4*3*3*3=108 + bias 4 + bn 4*4=16.
	if got := g.NumParams(); got != 108+4+16 {
		t.Fatalf("NumParams = %d, want 128", got)
	}
	// 8x8 same conv: 4*64 outputs × 27 taps.
	if got := g.MACs(); got != 4*64*27 {
		t.Fatalf("MACs = %d, want %d", got, 4*64*27)
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "Conv2D" || OpKind(99).String() != "OpKind(99)" {
		t.Fatal("OpKind names wrong")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("in", 1, 2)
	a := g.ReLU(g.In, "a")
	b := g.ReLU(a, "b")
	a.Inputs[0] = b // create a cycle
	g.SetOutput(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cycle")
		}
	}()
	g.Topo()
}

func TestAllOpKindsBuildInferAndEval(t *testing.T) {
	// One graph touching every operator kind, exercised end to end.
	r := tensor.NewRNG(40)
	g := New("in", 1, 4, 8, 8)
	spec := tensor.ConvSpec{InC: 4, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	conv := g.Conv(g.In, "conv", spec, w, nil)
	ones, zeros := tensor.New(4).Fill(1), tensor.New(4)
	bn := g.BatchNorm(conv, "bn", ones, zeros, zeros, ones, 1e-5)
	rl := g.ReLU(bn, "relu")
	mp := g.MaxPool(rl, "maxpool", PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	ap := g.AvgPool(rl, "avgpool", PoolAttrs{KH: 2, KW: 2, StrideH: 2, StrideW: 2})
	cat := g.Concat("concat", mp, ap)
	added := g.Add(mp, ap, "add")
	cat2 := g.Concat("concat2", cat, added)
	gap := g.GlobalAvgPool(cat2, "gap")
	fl := g.Flatten(gap, "flatten")
	wd := tensor.New(5, 12)
	tensor.FillGaussian(wd, r, 0.3)
	d := g.Dense(fl, "fc", wd, nil)
	g.SetOutput(g.Softmax(d, "softmax"))
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Out.OutShape.Equal(tensor.Shape{1, 5}) {
		t.Fatalf("final shape = %v", g.Out.OutShape)
	}
	in := tensor.New(1, 4, 8, 8)
	tensor.FillGaussian(in, r, 1)
	out, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestInferShapeErrorBranches(t *testing.T) {
	w4 := tensor.New(4, 8)
	cases := []func(g *Graph) *Node{
		// conv on rank-2 input
		func(g *Graph) *Node {
			return g.Conv(g.Dense(g.In, "d", w4, nil), "conv",
				tensor.ConvSpec{InC: 1, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
				tensor.New(1, 1, 1, 1), nil)
		},
		// dense on rank-4 reshaped? feed dense with mismatched k
		func(g *Graph) *Node {
			return g.Dense(g.In, "d", tensor.New(3, 99), nil)
		},
		// pool with empty output
		func(g *Graph) *Node {
			return g.MaxPool(g.ReLU4(g), "p", PoolAttrs{KH: 99, KW: 99, StrideH: 1, StrideW: 1})
		},
		// softmax on rank-4
		func(g *Graph) *Node {
			return g.Softmax(g.ReLU4(g), "sm")
		},
		// conv producing empty output
		func(g *Graph) *Node {
			return g.Conv(g.ReLU4(g), "conv",
				tensor.ConvSpec{InC: 4, OutC: 2, KH: 50, KW: 50, StrideH: 1, StrideW: 1},
				tensor.New(2, 4, 50, 50), nil)
		},
	}
	for i, build := range cases {
		g := New("in", 1, 8) // rank-2 input for dense cases
		if i != 1 {
			g = New("in", 1, 4, 8, 8)
		}
		g.SetOutput(build(g))
		if err := g.InferShapes(); err == nil {
			t.Errorf("case %d: invalid graph accepted", i)
		}
	}
}

// ReLU4 is a test helper that returns a rank-4 intermediate.
func (g *Graph) ReLU4(_ *Graph) *Node { return g.ReLU(g.In, "r4") }

func TestPassNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Pass{EliminateDead{}, FoldConstants{}, FoldBatchNorm{}, FuseReLU{}, EliminateCommon{}} {
		if p.Name() == "" || names[p.Name()] {
			t.Fatalf("pass name %q empty or duplicated", p.Name())
		}
		names[p.Name()] = true
	}
}
