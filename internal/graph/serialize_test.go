package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestGraphWriteReadRoundTrip(t *testing.T) {
	g, in := tinyConvGraph(30)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	want, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(back, in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Fatalf("round-tripped graph diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestGraphRoundTripPreservesStructure(t *testing.T) {
	g, _ := tinyConvGraph(31)
	if err := Optimize(g); err != nil { // exercise FusedReLU serialization
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := g.Topo()
	gotOrder := back.Topo()
	if len(wantOrder) != len(gotOrder) {
		t.Fatalf("node counts differ: %d vs %d", len(wantOrder), len(gotOrder))
	}
	for i := range wantOrder {
		a, b := wantOrder[i], gotOrder[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.Attrs.FusedReLU != b.Attrs.FusedReLU {
			t.Fatalf("node %d differs: %s vs %s", i, a, b)
		}
		if !a.OutShape.Equal(b.OutShape) {
			t.Fatalf("node %d shape differs: %v vs %v", i, a.OutShape, b.OutShape)
		}
	}
}

func TestGraphSerializeDeterministic(t *testing.T) {
	g, _ := tinyConvGraph(32)
	var a, b bytes.Buffer
	if err := g.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization must be deterministic")
	}
}

func TestReadGraphRejectsCorruption(t *testing.T) {
	g, _ := tinyConvGraph(33)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte{9, 9, 9, 9}, data[4:]...),
		"truncated": data[:len(data)/3],
	}
	for name, d := range cases {
		if _, err := ReadGraph(bytes.NewReader(d)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestGraphRoundTripResidualTopology(t *testing.T) {
	// Shared nodes (residual pattern) must deduplicate properly: the add's
	// two paths must converge to the same node instance after loading.
	g := New("in", 1, 4)
	w := tensor.New(4, 4).Fill(0.5)
	x := g.Dense(g.In, "pre", w, nil)
	y := g.ReLU(x, "relu")
	g.SetOutput(g.Add(y, x, "res"))
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	add := back.Out
	if add.Kind != OpAdd {
		t.Fatalf("output is %v", add.Kind)
	}
	if add.Inputs[0].Inputs[0] != add.Inputs[1] {
		t.Fatal("residual sharing lost: relu's input is not the same node as add's second operand")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := tinyConvGraph(50)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph model", "Conv2D", "->", "peripheries=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count: conv←in, bn←conv, relu←bn, flat←relu = 4 edges.
	if strings.Count(out, "->") != 4 {
		t.Fatalf("edge count = %d, want 4:\n%s", strings.Count(out, "->"), out)
	}
}
