package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT syntax for visualization:
// one box per node labeled with its name, kind and inferred shape, edges
// following dataflow. Only nodes reachable from the output are emitted.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph model {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	order := g.Topo()
	for _, n := range order {
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Kind)
		if n.OutShape.Valid() {
			label += fmt.Sprintf("\\n%v", n.OutShape)
		}
		if n.Attrs.FusedReLU {
			label += "\\n+ReLU"
		}
		style := ""
		switch n.Kind {
		case OpInput:
			style = ", style=filled, fillcolor=lightblue"
		case OpConv, OpDense:
			style = ", style=filled, fillcolor=lightyellow"
		case OpConst:
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", n.ID, label, style)
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	if g.Out != nil {
		fmt.Fprintf(&b, "  n%d [peripheries=2];\n", g.Out.ID)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
