package graph

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Eval executes the graph with the reference tensor kernels and returns the
// output. It is the functional oracle: every optimization pass and every
// specialized runtime implementation is verified against it.
func Eval(g *Graph, input *tensor.Tensor) (*tensor.Tensor, error) {
	if !input.Shape().Equal(g.In.OutShape) {
		return nil, fmt.Errorf("graph: input shape %v != declared %v", input.Shape(), g.In.OutShape)
	}
	vals := make(map[*Node]*tensor.Tensor)
	vals[g.In] = input
	for _, n := range g.Topo() {
		if n == g.In {
			continue
		}
		out, err := EvalNode(n, inputsOf(n, vals))
		if err != nil {
			return nil, fmt.Errorf("graph: evaluating %s: %w", n, err)
		}
		vals[n] = out
	}
	return vals[g.Out], nil
}

func inputsOf(n *Node, vals map[*Node]*tensor.Tensor) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, in := range n.Inputs {
		ins[i] = vals[in]
	}
	return ins
}

// EvalNode executes a single node given its input tensors, honoring the
// FusedReLU attribute.
func EvalNode(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	var out *tensor.Tensor
	switch n.Kind {
	case OpConst:
		out = n.Value
	case OpConv:
		out = tensor.Conv2D(ins[0], n.Param("weight"), n.Param("bias"), n.Attrs.Conv)
	case OpDense:
		out = tensor.Dense(ins[0], n.Param("weight"), n.Param("bias"))
	case OpBatchNorm:
		out = tensor.BatchNorm(ins[0], n.Param("gamma"), n.Param("beta"),
			n.Param("mean"), n.Param("var"), n.Attrs.Eps)
	case OpReLU:
		out = tensor.ReLU(ins[0])
	case OpMaxPool:
		p := n.Attrs.Pool
		out = tensor.MaxPool2D(ins[0], p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW)
	case OpAvgPool:
		p := n.Attrs.Pool
		out = tensor.AvgPool2D(ins[0], p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW)
	case OpGlobalAvgPool:
		out = tensor.GlobalAvgPool2D(ins[0])
	case OpAdd:
		out = tensor.AddTensors(ins[0], ins[1])
	case OpFlatten:
		s := ins[0].Shape()
		out = ins[0].Reshape(s[0], s.NumElements()/s[0])
	case OpSoftmax:
		out = tensor.Softmax(ins[0])
	case OpConcat:
		out = concatChannels(ins)
	default:
		return nil, fmt.Errorf("unsupported op kind %v", n.Kind)
	}
	if n.Attrs.FusedReLU {
		out = tensor.ReLU(out)
	}
	return out, nil
}

// EvalNodeInto executes a single node writing the result into a
// preallocated destination tensor of the node's output shape, honoring the
// FusedReLU attribute. It is the destination-passing counterpart of
// EvalNode: no output (or intermediate) tensor is allocated, so a planned
// runtime can point dst straight into its activation arena. dst must not
// alias any input (the memory planner guarantees this for planned buffers).
// OpInput and OpConst nodes produce no computation and are rejected.
func EvalNodeInto(dst *tensor.Tensor, n *Node, ins []*tensor.Tensor) error {
	switch n.Kind {
	case OpConv:
		tensor.Conv2DInto(dst, ins[0], n.Param("weight"), n.Param("bias"), n.Attrs.Conv)
	case OpDense:
		tensor.DenseInto(dst, ins[0], n.Param("weight"), n.Param("bias"))
	case OpBatchNorm:
		tensor.BatchNormInto(dst, ins[0], n.Param("gamma"), n.Param("beta"),
			n.Param("mean"), n.Param("var"), n.Attrs.Eps)
	case OpReLU:
		tensor.ReLUInto(dst, ins[0])
	case OpMaxPool:
		p := n.Attrs.Pool
		tensor.MaxPool2DInto(dst, ins[0], p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW)
	case OpAvgPool:
		p := n.Attrs.Pool
		tensor.AvgPool2DInto(dst, ins[0], p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW)
	case OpGlobalAvgPool:
		tensor.GlobalAvgPool2DInto(dst, ins[0])
	case OpAdd:
		tensor.AddInto(dst, ins[0], ins[1])
	case OpFlatten:
		copy(dst.Data(), ins[0].Data())
	case OpSoftmax:
		tensor.SoftmaxInto(dst, ins[0])
	case OpConcat:
		concatChannelsInto(dst, ins)
	default:
		return fmt.Errorf("unsupported op kind %v", n.Kind)
	}
	if n.Attrs.FusedReLU {
		tensor.ReLUInto(dst, dst)
	}
	return nil
}

// EvalNodeIntoPar is EvalNodeInto with the heavy operators (conv, dense)
// sharded on the given parallelism context; everything else runs serially
// through EvalNodeInto. Results are bit-identical to EvalNodeInto for any
// shard count.
func EvalNodeIntoPar(dst *tensor.Tensor, n *Node, ins []*tensor.Tensor, par *tensor.Par) error {
	switch n.Kind {
	case OpConv:
		tensor.Conv2DIntoPar(dst, ins[0], n.Param("weight"), n.Param("bias"), n.Attrs.Conv, par)
	case OpDense:
		tensor.DenseIntoPar(dst, ins[0], n.Param("weight"), n.Param("bias"), par)
	default:
		// Conv and dense count themselves inside their tensor kernels; the
		// remaining operators are the generic walker's.
		metrics.Count(metrics.KernelGeneric)
		return EvalNodeInto(dst, n, ins)
	}
	if n.Attrs.FusedReLU {
		tensor.ReLUInto(dst, dst)
	}
	return nil
}

// concatChannels concatenates NCHW tensors along the channel dimension.
func concatChannels(ins []*tensor.Tensor) *tensor.Tensor {
	n, h, w := ins[0].Dim(0), ins[0].Dim(2), ins[0].Dim(3)
	chans := 0
	for _, t := range ins {
		chans += t.Dim(1)
	}
	out := tensor.New(n, chans, h, w)
	concatChannelsInto(out, ins)
	return out
}

// concatChannelsInto concatenates NCHW tensors along the channel dimension
// into a preallocated destination.
func concatChannelsInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	n, h, w := ins[0].Dim(0), ins[0].Dim(2), ins[0].Dim(3)
	chans := 0
	for _, t := range ins {
		chans += t.Dim(1)
	}
	if out.NumElements() != n*chans*h*w {
		panic(fmt.Sprintf("graph: concat dst %v != [%d %d %d %d]", out.Shape(), n, chans, h, w))
	}
	od := out.Data()
	hw := h * w
	for b := 0; b < n; b++ {
		cOff := 0
		for _, t := range ins {
			c := t.Dim(1)
			src := t.Data()[b*c*hw : (b+1)*c*hw]
			copy(od[(b*chans+cOff)*hw:], src)
			cOff += c
		}
	}
}
