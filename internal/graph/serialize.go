package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Binary model format ("IGM1"): the whole graph — topology, operator
// attributes and parameter tensors — in one deterministic stream, so
// compiled tools can save a model once and reload it byte-identically.
// All integers little-endian.
//
//	magic    uint32 "IGM1"
//	nodes    uint32
//	inID     uint32   graph input node id (index into node list)
//	outID    uint32   graph output node id
//	node × {
//	    kind     uint8
//	    fused    uint8   FusedReLU flag
//	    name     str     (uint16 length + bytes)
//	    attrs    12×int32 (conv spec) + 6×int32 (pool) + float32 eps
//	    inputs   uint16 count + uint32 ids
//	    params   uint8 count + { role str, tensor }
//	    value    uint8 present + tensor (consts)
//	}
//	tensor = uint8 rank + int32 dims + float32 data
const graphMagic = 0x49474d31 // "IGM1"

// Save serializes the graph. Only nodes reachable from the output are
// written, in topological order, so node ids are dense and deterministic.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	order := g.Topo()
	id := make(map[*Node]uint32, len(order))
	inIdx := -1
	for i, n := range order {
		id[n] = uint32(i)
		if n == g.In {
			inIdx = i
		}
	}
	if inIdx < 0 {
		return fmt.Errorf("graph: input node does not reach the output; cannot serialize")
	}
	le := binary.LittleEndian
	var scratch [8]byte
	putU32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}
	putU16 := func(v uint16) {
		le.PutUint16(scratch[:2], v)
		bw.Write(scratch[:2])
	}
	putStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("graph: string %q too long for format", s[:32])
		}
		putU16(uint16(len(s)))
		bw.WriteString(s)
		return nil
	}
	putTensor := func(t *tensor.Tensor) {
		bw.WriteByte(byte(t.Shape().Rank()))
		for _, d := range t.Shape() {
			putU32(uint32(d))
		}
		for _, v := range t.Data() {
			putU32(math.Float32bits(v))
		}
	}

	putU32(graphMagic)
	putU32(uint32(len(order)))
	putU32(uint32(inIdx))
	putU32(id[g.Out])
	for _, n := range order {
		bw.WriteByte(byte(n.Kind))
		fused := byte(0)
		if n.Attrs.FusedReLU {
			fused = 1
		}
		bw.WriteByte(fused)
		if err := putStr(n.Name); err != nil {
			return err
		}
		c := n.Attrs.Conv
		for _, v := range []int{c.InC, c.OutC, c.KH, c.KW, c.StrideH, c.StrideW,
			c.PadH, c.PadW, c.Groups} {
			putU32(uint32(int32(v)))
		}
		p := n.Attrs.Pool
		for _, v := range []int{p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW} {
			putU32(uint32(int32(v)))
		}
		putU32(math.Float32bits(n.Attrs.Eps))
		// Input nodes carry their declared shape (other nodes re-infer).
		if n.Kind == OpInput {
			bw.WriteByte(byte(n.OutShape.Rank()))
			for _, d := range n.OutShape {
				putU32(uint32(d))
			}
		}
		putU16(uint16(len(n.Inputs)))
		for _, in := range n.Inputs {
			nid, ok := id[in]
			if !ok {
				return fmt.Errorf("graph: %s has input outside the reachable set", n)
			}
			putU32(nid)
		}
		roles := make([]string, 0, len(n.Params))
		for r := range n.Params {
			roles = append(roles, r)
		}
		sort.Strings(roles)
		bw.WriteByte(byte(len(roles)))
		for _, role := range roles {
			if err := putStr(role); err != nil {
				return err
			}
			putTensor(n.Params[role])
		}
		if n.Value != nil {
			bw.WriteByte(1)
			putTensor(n.Value)
		} else {
			bw.WriteByte(0)
		}
	}
	return bw.Flush()
}

// ReadGraph parses a graph previously written with Save and re-infers
// its shapes.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var scratch [4]byte
	le := binary.LittleEndian
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	getU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return le.Uint16(scratch[:2]), nil
	}
	getStr := func() (string, error) {
		n, err := getU16()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	getTensor := func() (*tensor.Tensor, error) {
		rank, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		dims := make([]int, rank)
		elems := 1
		for i := range dims {
			d, err := getU32()
			if err != nil {
				return nil, err
			}
			if d == 0 || d > 1<<24 {
				return nil, fmt.Errorf("graph: implausible tensor dim %d", d)
			}
			dims[i] = int(d)
			elems *= int(d)
			if elems > 1<<28 {
				return nil, fmt.Errorf("graph: implausible tensor size")
			}
		}
		// Read the payload in bounded chunks, growing the buffer only as
		// data actually arrives: a few adversarial header bytes claiming a
		// maximal element count must not force a gigabyte allocation
		// before the stream runs dry.
		const chunk = 1 << 16
		data := make([]float32, 0, min(elems, chunk))
		buf := make([]byte, 4*min(elems, chunk))
		for remaining := elems; remaining > 0; {
			c := min(remaining, chunk)
			if _, err := io.ReadFull(br, buf[:4*c]); err != nil {
				return nil, err
			}
			for i := 0; i < c; i++ {
				data = append(data, math.Float32frombits(le.Uint32(buf[4*i:])))
			}
			remaining -= c
		}
		return tensor.From(data, dims...), nil
	}

	magic, err := getU32()
	if err != nil {
		return nil, err
	}
	if magic != graphMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	count, err := getU32()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > 1<<20 {
		return nil, fmt.Errorf("graph: implausible node count %d", count)
	}
	inID, err := getU32()
	if err != nil {
		return nil, err
	}
	outID, err := getU32()
	if err != nil {
		return nil, err
	}
	if inID >= count || outID >= count {
		return nil, fmt.Errorf("graph: input/output id out of range")
	}
	nodes := make([]*Node, count)
	g := &Graph{}
	for i := range nodes {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		fused, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		n := &Node{ID: i, Name: name, Kind: OpKind(kind), Attrs: Attrs{FusedReLU: fused == 1}}
		var convVals [9]int32
		for j := range convVals {
			v, err := getU32()
			if err != nil {
				return nil, err
			}
			convVals[j] = int32(v)
		}
		n.Attrs.Conv = tensor.ConvSpec{
			InC: int(convVals[0]), OutC: int(convVals[1]),
			KH: int(convVals[2]), KW: int(convVals[3]),
			StrideH: int(convVals[4]), StrideW: int(convVals[5]),
			PadH: int(convVals[6]), PadW: int(convVals[7]),
			Groups: int(convVals[8]),
		}
		var poolVals [6]int32
		for j := range poolVals {
			v, err := getU32()
			if err != nil {
				return nil, err
			}
			poolVals[j] = int32(v)
		}
		n.Attrs.Pool = PoolAttrs{
			KH: int(poolVals[0]), KW: int(poolVals[1]),
			StrideH: int(poolVals[2]), StrideW: int(poolVals[3]),
			PadH: int(poolVals[4]), PadW: int(poolVals[5]),
		}
		epsBits, err := getU32()
		if err != nil {
			return nil, err
		}
		n.Attrs.Eps = math.Float32frombits(epsBits)
		if n.Kind == OpInput {
			rank, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			shape := make(tensor.Shape, rank)
			for j := range shape {
				d, err := getU32()
				if err != nil {
					return nil, err
				}
				if d == 0 || d > 1<<24 {
					return nil, fmt.Errorf("graph: implausible input dim %d", d)
				}
				shape[j] = int(d)
			}
			n.OutShape = shape
		}
		nIn, err := getU16()
		if err != nil {
			return nil, err
		}
		for j := 0; j < int(nIn); j++ {
			idx, err := getU32()
			if err != nil {
				return nil, err
			}
			if idx >= uint32(i) {
				return nil, fmt.Errorf("graph: node %d input %d violates topological order", i, idx)
			}
			n.Inputs = append(n.Inputs, nodes[idx])
		}
		nParams, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		for j := 0; j < int(nParams); j++ {
			role, err := getStr()
			if err != nil {
				return nil, err
			}
			t, err := getTensor()
			if err != nil {
				return nil, err
			}
			n.setParam(role, t)
		}
		hasValue, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasValue == 1 {
			if n.Value, err = getTensor(); err != nil {
				return nil, err
			}
		}
		nodes[i] = n
		g.Nodes = append(g.Nodes, n)
	}
	g.nextID = len(nodes)
	g.In = nodes[inID]
	g.Out = nodes[outID]
	if g.In.Kind != OpInput {
		return nil, fmt.Errorf("graph: declared input node is %v, not Input", g.In.Kind)
	}
	reachesIn := false
	for _, n := range g.Topo() {
		if n == g.In {
			reachesIn = true
			break
		}
	}
	if !reachesIn {
		return nil, fmt.Errorf("graph: input node does not reach the output")
	}
	if err := g.InferShapes(); err != nil {
		return nil, fmt.Errorf("graph: loaded model fails shape inference: %w", err)
	}
	return g, nil
}
