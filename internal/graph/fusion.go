package graph

// Region fusion: the graph-level analysis behind the scheduler's fused
// subgraphs. A Region is a producer/consumer chain that the runtime can
// execute as one arena-resident pass — a Conv or Dense head, any number of
// interior single-consumer ReLU nodes, and (for conv heads) at most one
// trailing max/avg pool. Interior tensors of a fused region never
// materialize as whole-layer activations: elementwise chains write through
// to the tail's buffer, and pooled chains stream conv-output tiles through
// scratch into the pool (see internal/sched and DESIGN.md §10).
//
// The pass is an analysis, not a rewrite: it annotates Graph.Regions and
// leaves the node structure untouched, so every non-fusing consumer of the
// IR (reference executor, serializer, per-op lowering) is unaffected and
// the runtime remains free to ignore regions (Options.Fuse off) or spill
// individual regions whose working sets cannot be tiled.

// Region is one fusible chain: Head, then Relus in chain order, then the
// optional Pool. Tail is the last node of the chain (== Pool when Pool is
// non-nil); only the tail's output is observable outside the region.
type Region struct {
	// Head is the Conv or Dense node that starts the chain.
	Head *Node
	// Relus are the explicit interior ReLU nodes, in chain order. The head
	// may additionally carry Attrs.FusedReLU from the relu-fuse pass.
	Relus []*Node
	// Pool is the trailing OpMaxPool/OpAvgPool node, or nil for an
	// elementwise (conv→relu / dense→relu) chain.
	Pool *Node
	// Tail is the final node of the chain.
	Tail *Node
}

// Nodes returns the region's members in execution order (head first).
func (r Region) Nodes() []*Node {
	out := make([]*Node, 0, len(r.Relus)+2)
	out = append(out, r.Head)
	out = append(out, r.Relus...)
	if r.Pool != nil {
		out = append(out, r.Pool)
	}
	return out
}

// Interior returns the members whose outputs are invisible outside the
// region — every node except the tail.
func (r Region) Interior() []*Node {
	ns := r.Nodes()
	return ns[:len(ns)-1]
}

// Name labels the region for metrics and reports: "head+tail", or just the
// head's name for two-node chains ending in a fused elementwise op.
func (r Region) Name() string {
	if r.Tail == r.Head {
		return r.Head.Name
	}
	return r.Head.Name + "+" + r.Tail.Name
}

// FuseRegions finds every fusible chain of g. A chain grows from a Conv or
// Dense head while the current node has exactly one reachable consumer and
// is not the graph output; it absorbs ReLU nodes, and for conv heads a
// single max/avg pool, stopping right after the pool. Chains with no
// interior node (a bare conv or dense) are not regions. Every node belongs
// to at most one region: heads are Conv/Dense, interiors are single-
// consumer ReLU/pool nodes on a unique producer chain.
func FuseRegions(g *Graph) []Region {
	cons := g.Consumers()
	var regions []Region
	for _, n := range g.Topo() {
		if n.Kind != OpConv && n.Kind != OpDense {
			continue
		}
		r := Region{Head: n, Tail: n}
		cur := n
		for {
			if cur == g.Out {
				break // output must materialize; cannot absorb its consumer
			}
			cs := cons[cur]
			if len(cs) != 1 {
				break
			}
			next := cs[0]
			switch next.Kind {
			case OpReLU:
				r.Relus = append(r.Relus, next)
				r.Tail = next
				cur = next
				continue
			case OpMaxPool, OpAvgPool:
				if n.Kind != OpConv {
					break // dense outputs are rank 2; pools never follow
				}
				r.Pool = next
				r.Tail = next
			}
			break
		}
		if r.Tail != r.Head {
			regions = append(regions, r)
		}
	}
	return regions
}

// RegionFusion is the annotation pass wrapping FuseRegions. It always
// reports changed=false: it rewrites nothing, so running it can never
// perturb the Optimize fixpoint.
type RegionFusion struct{}

// Name implements Pass.
func (RegionFusion) Name() string { return "region-fusion" }

// Run implements Pass.
func (RegionFusion) Run(g *Graph) (bool, error) {
	g.Regions = FuseRegions(g)
	return false, nil
}
