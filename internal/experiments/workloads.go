package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// UniqueConv is one computationally-distinct convolution of a model: the
// evaluation groups convolutions with identical input/output shape, kernel,
// stride and padding (the c1..cN grouping of per-layer figures).
type UniqueConv struct {
	// ID is the group label: "c1", "c2", ...
	ID string
	// Info is a representative layer of the group.
	Info nn.ConvLayerInfo
	// Count is how many layers share the shape.
	Count int
}

// UniqueConvs extracts and groups the convolutions of a graph in
// topological order. InferShapes must have run.
func UniqueConvs(g *graph.Graph) []UniqueConv {
	type key struct {
		spec    tensor.ConvSpec
		n, h, w int
	}
	var out []UniqueConv
	index := make(map[key]int)
	for _, info := range nn.ConvLayers(g) {
		k := key{info.Spec.Normalize(), info.Batch, info.InH, info.InW}
		if i, ok := index[k]; ok {
			out[i].Count++
			continue
		}
		index[k] = len(out)
		out = append(out, UniqueConv{
			ID:    fmt.Sprintf("c%d", len(out)+1),
			Info:  info,
			Count: 1,
		})
	}
	return out
}

// resnetUniqueConvs builds ResNet-18 at the config's input size and returns
// its unique convolutions (trimmed in Fast mode).
func resnetUniqueConvs(cfg Config) ([]UniqueConv, error) {
	g := nn.ResNet18(1, cfg.HW, 10, cfg.Seed)
	if err := g.InferShapes(); err != nil {
		return nil, err
	}
	convs := UniqueConvs(g)
	if cfg.Fast && len(convs) > 6 {
		convs = convs[:6]
	}
	return convs, nil
}

// pruneAndQuantize clones the weight, applies magnitude pruning at the
// given sparsity, and quantizes it.
func pruneAndQuantize(w *tensor.Tensor, sparsity float64, bits int, scheme quant.Scheme) *quant.Quantized {
	wc := w.Clone()
	if sparsity > 0 {
		quant.PruneMagnitude(wc, sparsity)
	}
	return quant.Quantize(wc, bits, scheme)
}

// midLayer returns the mid-network ResNet-18-style layer used by the
// sensitivity studies (conv3_x shape: 128→128, 3×3). In Fast mode the
// channel counts shrink 4×.
func midLayer(cfg Config) (tensor.ConvSpec, *tensor.Tensor, int, int) {
	c := 128
	hw := cfg.HW / 8
	if cfg.Fast {
		c = 32
	}
	if hw < 4 {
		hw = 4
	}
	spec := tensor.ConvSpec{InC: c, OutC: c, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := tensor.NewRNG(cfg.Seed + 100)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, tensor.KaimingStd(c*9))
	return spec, w, hw, hw
}

// zooModels returns the evaluation model set, trimmed in Fast mode.
func zooModels(cfg Config) []nn.Model {
	zoo := nn.Zoo(cfg.HW)
	if cfg.Fast {
		return zoo[:2] // LeNet-5, ResNet-18
	}
	return zoo
}
