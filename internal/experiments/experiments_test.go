package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// runFast executes an experiment in Fast mode and returns its output.
func runFast(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Fast: true}
	if err := Run(id, cfg); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10", "fig11"}
	reg := Registry()
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", Config{Fast: true}); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTable1(t *testing.T) {
	out := runFast(t, "table1")
	for _, want := range []string{"ResNet-18", "LeNet-5", "MACs", "vals@4b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := runFast(t, "table2")
	for _, want := range []string{"c1", "dense", "ucnn", "ipe/dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	out := runFast(t, "table3")
	for _, want := range []string{"rounds", "dict", "stream-compr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4(t *testing.T) {
	out := runFast(t, "table4")
	for _, want := range []string{"dense", "csr", "ucnn", "ipe", "energy(uJ)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4(t *testing.T) {
	out := runFast(t, "fig4")
	if !strings.Contains(out, "ipe") || !strings.Contains(out, "layer") {
		t.Fatalf("fig4 output malformed:\n%s", out)
	}
}

func TestFig5(t *testing.T) {
	out := runFast(t, "fig5")
	for _, want := range []string{"dense-tuned", "auto", "LeNet-5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig6a(t *testing.T) {
	out := runFast(t, "fig6a")
	if !strings.Contains(out, "bits") || !strings.Contains(out, "ipe") {
		t.Fatalf("fig6a malformed:\n%s", out)
	}
}

func TestFig6b(t *testing.T) {
	out := runFast(t, "fig6b")
	if !strings.Contains(out, "maxDict") || !strings.Contains(out, "liveDict") {
		t.Fatalf("fig6b malformed:\n%s", out)
	}
}

func TestFig6c(t *testing.T) {
	out := runFast(t, "fig6c")
	if !strings.Contains(out, "sparsity%") || !strings.Contains(out, "csr") {
		t.Fatalf("fig6c malformed:\n%s", out)
	}
}

func TestFig7(t *testing.T) {
	out := runFast(t, "fig7")
	for _, want := range []string{"random", "genetic", "annealing", "surrogate", "trials"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8(t *testing.T) {
	out := runFast(t, "fig8")
	for _, want := range []string{"default", "global", "depth L=1", "greedy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllFast(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covers every driver; individual tests cover them in -short")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Out: &buf, Fast: true}); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "===== "+id+" =====") {
			t.Fatalf("RunAll missing section %s", id)
		}
	}
}

func TestUniqueConvsGroupsResNet(t *testing.T) {
	cfg := Config{Fast: true}.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(convs) == 0 {
		t.Fatal("no unique convs found")
	}
	// ResNet-18 at any input size has 20 convs but far fewer unique
	// shapes; Fast mode trims to at most 6.
	if len(convs) > 6 {
		t.Fatalf("fast mode should trim to 6 unique convs, got %d", len(convs))
	}
	seen := map[string]bool{}
	for _, c := range convs {
		if seen[c.ID] {
			t.Fatalf("duplicate ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.HW != 64 || c.Bits != 4 || c.Seed != 1 || c.Accel.PEs == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	f := Config{Fast: true}.withDefaults()
	if f.HW != 32 {
		t.Fatalf("fast default HW = %d, want 32", f.HW)
	}
}

func TestTable5(t *testing.T) {
	out := runFast(t, "table5")
	for _, want := range []string{"dense-fp32", "packed-dense", "ipe-stream", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6(t *testing.T) {
	out := runFast(t, "table6")
	for _, want := range []string{"sep-dict", "shared-dict", "dict-saving"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table6 missing %q:\n%s", want, out)
		}
	}
}

func TestFig9(t *testing.T) {
	out := runFast(t, "fig9")
	for _, want := range []string{"banks", "tile-local", "global"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig9 missing %q:\n%s", want, out)
		}
	}
}

func TestFig10(t *testing.T) {
	out := runFast(t, "fig10")
	for _, want := range []string{"PEs", "GB/s", "ipe/dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig10 missing %q:\n%s", want, out)
		}
	}
}

func TestFig11(t *testing.T) {
	out := runFast(t, "fig11")
	for _, want := range []string{"gaussian", "uniform", "laplacian", "bimodal", "ipe-speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Every driver must print byte-identical output across runs — the
	// whole evaluation is seeded.
	for _, id := range []string{"table2", "fig4", "fig6b", "fig7"} {
		a := runFast(t, id)
		b := runFast(t, id)
		if a != b {
			t.Fatalf("%s output differs across runs", id)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", Config{Out: &buf, Fast: true, CSV: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "model,convs,params") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "---") {
		t.Fatal("CSV output must not contain table rules")
	}
	buf.Reset()
	if err := Run("fig6a", Config{Out: &buf, Fast: true, CSV: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bits,ipe,ucnn") {
		t.Fatalf("figure CSV header missing:\n%s", buf.String())
	}
}
