// Package experiments contains one driver per table and figure of the
// evaluation (see DESIGN.md §4). Each driver prints the same rows/series
// the paper reports, using the synthetic workloads of internal/nn, the cost
// models of internal/ipe, and the simulated accelerator of internal/accel.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/accel"
	"repro/internal/ipe"
	"repro/internal/report"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the printed tables/figures.
	Out io.Writer
	// HW is the model input spatial size (default 64; the paper-scale run
	// uses 224). Weight-side statistics are independent of it.
	HW int
	// Bits is the main quantization bit-width (default 4).
	Bits int
	// Seed drives every RNG (default 1).
	Seed uint64
	// Accel is the simulated hardware (default accel.Default()).
	Accel accel.Config
	// IPE is the encoder configuration (default ipe.DefaultConfig()).
	IPE ipe.Config
	// Fast trims layer and model sets so the full suite finishes in
	// seconds; used by tests and the default bench run.
	Fast bool
	// CSV switches output from aligned text to comma-separated values, for
	// artifact-evaluation post-processing.
	CSV bool
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.HW == 0 {
		if c.Fast {
			c.HW = 32
		} else {
			c.HW = 64
		}
	}
	if c.Bits == 0 {
		c.Bits = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Accel.PEs == 0 {
		c.Accel = accel.Default()
	}
	if c.IPE == (ipe.Config{}) {
		c.IPE = ipe.DefaultConfig()
	}
	return c
}

// emit renders a table in the configured format.
func emit(cfg Config, t *report.Table) {
	if cfg.CSV {
		t.CSV(cfg.Out)
		return
	}
	t.Fprint(cfg.Out)
}

// emitFig renders a figure in the configured format.
func emitFig(cfg Config, f *report.Figure) {
	if cfg.CSV {
		f.CSV(cfg.Out)
		return
	}
	f.Fprint(cfg.Out)
}

// Runner is one experiment driver.
type Runner func(Config) error

// Registry maps experiment ids ("table1".."table4", "fig4".."fig8") to
// their drivers.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": Table1Workloads,
		"table2": Table2Arithmetic,
		"table3": Table3Encoding,
		"table4": Table4Energy,
		"table5": Table5Storage,
		"table6": Table6Sharing,
		"fig4":   Fig4PerLayer,
		"fig5":   Fig5EndToEnd,
		"fig6a":  Fig6aBits,
		"fig6b":  Fig6bDict,
		"fig6c":  Fig6cSparsity,
		"fig7":   Fig7Tuning,
		"fig8":   Fig8Ablation,
		"fig9":   Fig9Banks,
		"fig10":  Fig10Hardware,
		"fig11":  Fig11Distributions,
	}
}

// IDs returns the registry keys in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, cfg Config) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// RunAll executes every experiment in id order.
func RunAll(cfg Config) error {
	for _, id := range IDs() {
		fmt.Fprintf(cfg.withDefaults().Out, "\n===== %s =====\n", id)
		if err := Run(id, cfg); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
	}
	return nil
}
